# Fig-5-style plot: load fraction on X, overall p99.9 slowdown (log) on Y,
# one line per system. Expects CSV columns:
# load,system,p999_slowdown,...
if (!exists("datafile")) datafile = 'fig05.csv'
set datafile separator ','
set terminal pngcairo size 900,600 font ',11'
set output datafile.'.png'
set key top left
set xlabel 'load (fraction of peak)'
set ylabel 'overall p99.9 slowdown (log scale)'
set logscale y
set grid ytics
plot for [p in "shenango-d-FCFS shenango-c-FCFS shinjuku-mq(5us) shinjuku-sq(5us) persephone-DARC"] \
  datafile using (strcol(2) eq p ? column(1) : NaN):3 \
  with linespoints lw 2 title p
