# Fig-1-style plot: offered load (Mrps) on X, p99.9 slowdown (log) on Y,
# one line per policy. Expects the fig01 CSV columns:
# load,offered_Mrps,policy,p999_slow_short,p999_slow_long,...
if (!exists("datafile")) datafile = 'fig01.csv'
set datafile separator ','
set terminal pngcairo size 900,600 font ',11'
set output datafile.'.png'
set key top left
set xlabel 'offered load (Mrps)'
set ylabel 'p99.9 slowdown (max of types, log scale)'
set logscale y
set grid ytics
# 10x SLO reference line (the paper's target)
set arrow from graph 0, first 10 to graph 1, first 10 nohead dt 2 lc rgb 'gray40'
plot for [p in "d-FCFS c-FCFS TS(5us,1us) DARC"] \
  datafile using (strcol(3) eq p ? column(2) : NaN):(column(4) > column(5) ? column(4) : column(5)) \
  with linespoints lw 2 title p
