// The telemetry facade: a metrics registry (named counters / gauges /
// histograms, safe for concurrent writers) plus the per-thread lifecycle
// trace rings and the sampling knob, bundled so an engine owns exactly one
// observability object and snapshots it with one call.
//
// Hot-path cost model:
//   * Counter::Add is a relaxed atomic increment (a handful of cycles);
//   * an *unsampled* request costs one TraceSampler branch and nothing else;
//   * a sampled request costs a few clock reads plus one TraceRing push.
// bench/micro_telemetry measures the on/off delta; at the default 1-in-64
// sampling it must stay within 5% of tracing disabled.
#ifndef PSP_SRC_TELEMETRY_TELEMETRY_H_
#define PSP_SRC_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/time.h"
#include "src/telemetry/lifecycle.h"
#include "src/telemetry/slo.h"
#include "src/telemetry/snapshot.h"
#include "src/telemetry/timeseries.h"

namespace psp {

// Monotonic counter; writers use relaxed increments (counts, not ordering).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value (queue depth, utilization per-mille, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Histogram with a spinlock guard: Record() is safe from any thread. Meant
// for off-hot-path distributions (the hot path uses lifecycle traces).
class TimingHistogram {
 public:
  void Record(int64_t value) {
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
    hist_.Add(value);
    lock_.clear(std::memory_order_release);
  }

  Histogram SnapshotHistogram() const {
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
    Histogram copy = hist_;
    lock_.clear(std::memory_order_release);
    return copy;
  }

 private:
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  Histogram hist_;
};

// Named metric registry. Get* registers on first use and returns a stable
// reference (instruments are never deleted while the registry lives), so hot
// paths resolve a metric once and then touch only the instrument.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  TimingHistogram& GetHistogram(const std::string& name);

  // Adds every instrument's current value to `out`.
  void Export(TelemetrySnapshot* out) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<TimingHistogram>> histograms_;
};

struct TelemetryConfig {
  // Master switch for lifecycle tracing (counters are always on).
  bool enable_tracing = true;
  // Trace 1 in N requests; 0 disables tracing, 1 traces everything.
  uint32_t sample_every = 64;
  // Records retained per thread ring (rounded up to a power of two).
  size_t trace_ring_capacity = 4096;
  // Continuous windowed time-series (off by default; see timeseries.h).
  TimeSeriesConfig timeseries;
  // SLO targets + flight recorder (inactive without targets; requires the
  // time-series recorder to be enabled — violation counts live there).
  SloConfig slo;

  // Empty string = valid; otherwise a description of the problem.
  std::string Validate() const;
};

class Telemetry {
 public:
  // `num_rings` = number of producer threads that will commit traces
  // (workers in the threaded runtime; 1 for the single-threaded simulator).
  explicit Telemetry(TelemetryConfig config = {}, size_t num_rings = 1);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryConfig& config() const { return config_; }
  bool tracing_enabled() const {
    return config_.enable_tracing && sample_every() > 0;
  }
  // The *live* sampling period: starts at config.sample_every, adjustable at
  // runtime through SetSampleEvery. Engines re-read this each dispatch-loop
  // iteration (one relaxed load) so an admin `sampling=N` takes effect
  // without a restart.
  uint32_t sample_every() const {
    return config_.enable_tracing
               ? live_sample_every_.load(std::memory_order_relaxed)
               : 0;
  }

  // Adjusts the live sampling period (0 pauses tracing, 1 traces all).
  // Returns "" on success; an error when tracing was compiled out of the
  // config entirely (enable_tracing false — there are no rings to fill).
  std::string SetSampleEvery(uint32_t every);

  // Re-arms the slowdown target for one type at runtime: updates the SLO
  // monitor's threshold and the recorder's violation counting. The type must
  // already have a target (adding one mid-run would need budget history).
  // Returns "" on success, else the error.
  std::string SetSloTarget(const std::string& type_name, double slowdown);

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  TraceRing& ring(size_t index) { return *rings_[index]; }
  size_t num_rings() const { return rings_.size(); }

  // Appends a timestamped annotation (bounded; oldest dropped first).
  void RecordEvent(Nanos at, std::string what);

  // --- Continuous observability (PR 2) --------------------------------------

  // nullptr when config.timeseries.enabled is false.
  TimeSeriesRecorder* timeseries() { return timeseries_.get(); }
  const TimeSeriesRecorder* timeseries() const { return timeseries_.get(); }
  // nullptr when no SLO targets are configured.
  SloMonitor* slo() { return slo_.get(); }
  const SloMonitor* slo() const { return slo_.get(); }

  // Registers a per-type series (no-op returning SIZE_MAX when the recorder
  // is off) and arms its violation threshold if an SLO target names it.
  size_t RegisterSeries(uint32_t type_key, const std::string& name);

  // Appends a structured reservation update (bounded like events) and counts
  // it into the current time-series interval.
  void RecordReservationUpdate(ReservationUpdate update);
  std::vector<ReservationUpdate> reservation_updates() const;

  // Closes due time-series intervals at `now` (flush = also the partial
  // one), then performs any pending flight-recorder dump. Engines call this
  // from their sampler thread (runtime) or virtual-time rollover events
  // (sim); the recorder also self-closes inline on the writer side, so this
  // is the watchdog for idle stretches plus the dump trigger.
  void AdvanceTimeSeries(Nanos now, bool flush = false);

  // Supplies the snapshot embedded in flight-recorder dumps (engines pass
  // their full telemetry_snapshot(), which includes scheduler/worker state;
  // default: this object's own Snapshot()). Called off the roll lock.
  void set_flight_snapshot_provider(
      std::function<TelemetrySnapshot()> provider) {
    flight_provider_ = std::move(provider);
  }

  // Point-in-time view: registry instruments + all ring contents + events +
  // time-series history + reservation updates.
  TelemetrySnapshot Snapshot() const;

 private:
  static constexpr size_t kMaxEvents = 1024;
  static constexpr size_t kMaxReservationUpdates = 4096;

  void MaybeDumpFlight();

  TelemetryConfig config_;
  std::atomic<uint32_t> live_sample_every_{0};
  MetricsRegistry registry_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::unique_ptr<TimeSeriesRecorder> timeseries_;
  std::unique_ptr<SloMonitor> slo_;
  std::function<TelemetrySnapshot()> flight_provider_;
  mutable std::mutex events_mutex_;
  std::deque<TelemetryEvent> events_;
  std::deque<ReservationUpdate> reservation_updates_;
  // Series-name resolution for the SLO monitor (type key -> name), built at
  // RegisterSeries time; read-only afterwards.
  std::map<uint32_t, std::string> series_names_;
};

}  // namespace psp

#endif  // PSP_SRC_TELEMETRY_TELEMETRY_H_
