#include "src/telemetry/lifecycle.h"

namespace psp {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kRx:
      return "rx";
    case TraceStage::kClassified:
      return "classified";
    case TraceStage::kEnqueued:
      return "enqueued";
    case TraceStage::kDispatched:
      return "dispatched";
    case TraceStage::kHandlerStart:
      return "handler_start";
    case TraceStage::kHandlerEnd:
      return "handler_end";
    case TraceStage::kTx:
      return "tx";
  }
  return "?";
}

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TraceRing::TraceRing(size_t capacity)
    : mask_(RoundUpPow2(capacity) - 1),
      slots_(new Slot[RoundUpPow2(capacity)]) {}

void TraceRing::Push(const RequestTrace& record) {
  const uint64_t index = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[index & mask_];
  // Odd sequence = write in flight; readers that land here discard the slot.
  // The release fence keeps the field stores from hoisting above the odd
  // mark; the final release store keeps them from sinking below the even
  // mark (the standard seqlock-with-fences recipe).
  slot.seq.store(2 * index + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.request_id.store(record.request_id, std::memory_order_relaxed);
  slot.type.store(record.type, std::memory_order_relaxed);
  slot.worker.store(record.worker, std::memory_order_relaxed);
  slot.wire_request_id.store(record.wire_request_id, std::memory_order_relaxed);
  slot.client_id.store(record.client_id, std::memory_order_relaxed);
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    slot.stamp[i].store(record.stamp[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * (index + 1), std::memory_order_release);
  head_.store(index + 1, std::memory_order_release);
}

size_t TraceRing::Snapshot(std::vector<RequestTrace>* out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t depth = capacity();
  const uint64_t first = head > depth ? head - depth : 0;
  size_t added = 0;
  for (uint64_t index = first; index < head; ++index) {
    const Slot& slot = slots_[index & mask_];
    const uint64_t expected = 2 * (index + 1);
    if (slot.seq.load(std::memory_order_acquire) != expected) {
      continue;  // overwritten or mid-write
    }
    RequestTrace copy;
    copy.request_id = slot.request_id.load(std::memory_order_relaxed);
    copy.type = slot.type.load(std::memory_order_relaxed);
    copy.worker = slot.worker.load(std::memory_order_relaxed);
    copy.wire_request_id = slot.wire_request_id.load(std::memory_order_relaxed);
    copy.client_id = slot.client_id.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kNumTraceStages; ++i) {
      copy.stamp[i] = slot.stamp[i].load(std::memory_order_relaxed);
    }
    // Re-validate: if the producer lapped us mid-copy the copy is torn. The
    // acquire fence pins the field loads above this second seq read.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != expected) {
      continue;
    }
    out->push_back(copy);
    ++added;
  }
  return added;
}

}  // namespace psp
