#include "src/telemetry/lifecycle.h"

namespace psp {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kRx:
      return "rx";
    case TraceStage::kClassified:
      return "classified";
    case TraceStage::kEnqueued:
      return "enqueued";
    case TraceStage::kDispatched:
      return "dispatched";
    case TraceStage::kHandlerStart:
      return "handler_start";
    case TraceStage::kHandlerEnd:
      return "handler_end";
    case TraceStage::kTx:
      return "tx";
  }
  return "?";
}

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TraceRing::TraceRing(size_t capacity)
    : mask_(RoundUpPow2(capacity) - 1),
      slots_(new Slot[RoundUpPow2(capacity)]) {}

void TraceRing::Push(const RequestTrace& record) {
  const uint64_t index = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[index & mask_];
  // Odd sequence = write in flight; readers that land here discard the slot.
  slot.seq.store(2 * index + 1, std::memory_order_release);
  slot.record = record;
  slot.seq.store(2 * (index + 1), std::memory_order_release);
  head_.store(index + 1, std::memory_order_release);
}

size_t TraceRing::Snapshot(std::vector<RequestTrace>* out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t depth = capacity();
  const uint64_t first = head > depth ? head - depth : 0;
  size_t added = 0;
  for (uint64_t index = first; index < head; ++index) {
    const Slot& slot = slots_[index & mask_];
    const uint64_t expected = 2 * (index + 1);
    if (slot.seq.load(std::memory_order_acquire) != expected) {
      continue;  // overwritten or mid-write
    }
    RequestTrace copy = slot.record;
    // Re-validate: if the producer lapped us mid-copy the copy is torn.
    if (slot.seq.load(std::memory_order_acquire) != expected) {
      continue;
    }
    out->push_back(copy);
    ++added;
  }
  return added;
}

}  // namespace psp
