#include "src/telemetry/timeseries.h"

#include <cmath>
#include <cstdio>

namespace psp {

std::string TimeSeriesConfig::Validate() const {
  if (!enabled) {
    return "";
  }
  if (interval <= 0) {
    return "timeseries: interval must be > 0";
  }
  if (capacity == 0) {
    return "timeseries: capacity must be > 0";
  }
  return "";
}

size_t SlotHistogram::IndexFor(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  // Tier t covers [2^(kSubBucketBits+t-1), 2^(kSubBucketBits+t)) with
  // kSubBuckets/2 slots of width 2^t (same tiering as common/histogram.h,
  // just coarser).
  const int msb = 63 - __builtin_clzll(value);
  const int tier = msb - static_cast<int>(kSubBucketBits) + 1;
  const uint64_t offset_in_tier =
      (value >> static_cast<uint64_t>(tier)) - (kSubBuckets >> 1);
  return static_cast<size_t>(kSubBuckets +
                             static_cast<uint64_t>(tier - 1) *
                                 (kSubBuckets >> 1) +
                             offset_in_tier);
}

int64_t SlotHistogram::ValueFor(size_t idx) {
  if (idx < kSubBuckets) {
    return static_cast<int64_t>(idx);
  }
  const size_t rel = idx - kSubBuckets;
  const uint64_t tier = rel / (kSubBuckets / 2) + 1;
  const uint64_t offset = rel % (kSubBuckets / 2);
  const uint64_t base = (kSubBuckets >> 1) + offset + 1;
  if (tier >= 64 || base > (UINT64_MAX >> tier)) {
    return INT64_MAX;
  }
  const uint64_t top = (base << tier) - 1;
  return top > static_cast<uint64_t>(INT64_MAX) ? INT64_MAX
                                                : static_cast<int64_t>(top);
}

int64_t DeltaPercentile(const uint64_t* delta, size_t slots, double p) {
  uint64_t total = 0;
  for (size_t i = 0; i < slots; ++i) {
    total += delta[i];
  }
  if (total == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  if (rank == 0) {
    rank = 1;
  }
  if (rank > total) {
    rank = total;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < slots; ++i) {
    seen += delta[i];
    if (seen >= rank) {
      return SlotHistogram::ValueFor(i);
    }
  }
  return SlotHistogram::ValueFor(slots - 1);
}

TimeSeriesRecorder::TimeSeriesRecorder(TimeSeriesConfig config)
    : config_(config) {}

TimeSeriesRecorder::~TimeSeriesRecorder() = default;

size_t TimeSeriesRecorder::RegisterSeries(uint32_t type_key,
                                          std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto series = std::make_unique<Series>();
  series->type_key = type_key;
  series->name = std::move(name);
  series->prev_slots = std::make_unique<uint64_t[]>(SlotHistogram::kSlots);
  for (size_t i = 0; i < SlotHistogram::kSlots; ++i) {
    series->prev_slots[i] = 0;
  }
  series_.push_back(std::move(series));
  return series_.size() - 1;
}

void TimeSeriesRecorder::SetSlowdownTarget(size_t slot, double slowdown) {
  series_[slot]->target_milli.store(
      slowdown > 0 ? static_cast<int64_t>(slowdown * 1000.0) : 0,
      std::memory_order_relaxed);
}

void TimeSeriesRecorder::set_gauge_sampler(
    std::function<void(IntervalRecord*)> sampler) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauge_sampler_ = std::move(sampler);
}

void TimeSeriesRecorder::RecordSlowdownSample(Series* s, Nanos latency,
                                              Nanos service) {
  // Slowdown in milli units; a request with no recorded service time (e.g.
  // a zero-cost stub) counts as slowdown 0 rather than poisoning the tail.
  const int64_t slowdown_milli = service > 0 ? (latency * 1000) / service : 0;
  s->slowdown.Record(slowdown_milli);
  Bump(&s->slowdown_samples);
}

std::vector<IntervalRecord> TimeSeriesRecorder::Roll(Nanos now, bool flush) {
  std::vector<IntervalRecord> closed;
  std::lock_guard<std::mutex> lock(mutex_);
  RollLocked(now, flush, &closed);
  return closed;
}

void TimeSeriesRecorder::RollLocked(Nanos now, bool flush,
                                    std::vector<IntervalRecord>* closed) {
  if (now < 0) {
    now = 0;
  }
  if (!aligned_) {
    // Pin the grid to floor(now / interval): the runtime's first roll lands
    // mid-epoch on the TSC clock, the sim's at virtual time 0.
    interval_start_ = now - (now % config_.interval);
    interval_end_.store(interval_start_ + config_.interval,
                        std::memory_order_relaxed);
    aligned_ = true;
    return;
  }
  Nanos end = interval_end_.load(std::memory_order_relaxed);
  if (now >= end + static_cast<Nanos>(config_.capacity) * config_.interval) {
    // Long idle gap: close the one stale interval (all pending counts belong
    // to it) and realign, instead of grinding through > capacity empties.
    CloseIntervalLocked(end);
    closed->push_back(history_.back());
    interval_start_ = now - (now % config_.interval);
    interval_end_.store(interval_start_ + config_.interval,
                        std::memory_order_relaxed);
    return;
  }
  while (now >= (end = interval_end_.load(std::memory_order_relaxed))) {
    CloseIntervalLocked(end);
    closed->push_back(history_.back());
    interval_start_ = end;
    interval_end_.store(end + config_.interval, std::memory_order_relaxed);
  }
  if (flush && now > interval_start_) {
    // Close the in-progress partial interval (end = now); the grid itself is
    // unchanged, so a later record resumes on the same boundaries.
    CloseIntervalLocked(now);
    closed->push_back(history_.back());
    interval_start_ = now;
  }
}

void TimeSeriesRecorder::CloseIntervalLocked(Nanos end) {
  IntervalRecord rec;
  rec.seq = intervals_closed_.load(std::memory_order_relaxed);
  rec.start = interval_start_;
  rec.end = end;

  uint64_t total_arrivals = 0;
  uint64_t total_completions = 0;
  uint64_t scratch[SlotHistogram::kSlots];
  rec.types.reserve(series_.size());
  for (const auto& sp : series_) {
    Series& s = *sp;
    TypeIntervalStats t;
    t.type = s.type_key;

    uint64_t cur = s.arrivals.load(std::memory_order_relaxed);
    t.arrivals = cur - s.prev_arrivals;
    s.prev_arrivals = cur;
    cur = s.completions.load(std::memory_order_relaxed);
    t.completions = cur - s.prev_completions;
    s.prev_completions = cur;
    cur = s.drops.load(std::memory_order_relaxed);
    t.drops = cur - s.prev_drops;
    s.prev_drops = cur;
    cur = s.violations.load(std::memory_order_relaxed);
    t.slo_violations = cur - s.prev_violations;
    s.prev_violations = cur;
    cur = s.slowdown_samples.load(std::memory_order_relaxed);
    t.slowdown_samples = cur - s.prev_samples;
    s.prev_samples = cur;
    cur = s.deadline_misses.load(std::memory_order_relaxed);
    t.deadline_misses = cur - s.prev_deadline_misses;
    s.prev_deadline_misses = cur;
    cur = s.deadline_sheds.load(std::memory_order_relaxed);
    t.deadline_sheds = cur - s.prev_deadline_sheds;
    s.prev_deadline_sheds = cur;
    total_arrivals += t.arrivals;
    total_completions += t.completions;

    if (t.slowdown_samples > 0) {
      s.slowdown.CopyTo(scratch);
      for (size_t i = 0; i < SlotHistogram::kSlots; ++i) {
        const uint64_t c = scratch[i];
        scratch[i] = c - s.prev_slots[i];
        s.prev_slots[i] = c;
      }
      t.slowdown_p50_milli =
          DeltaPercentile(scratch, SlotHistogram::kSlots, 50);
      t.slowdown_p99_milli =
          DeltaPercentile(scratch, SlotHistogram::kSlots, 99);
      t.slowdown_p999_milli =
          DeltaPercentile(scratch, SlotHistogram::kSlots, 99.9);
    }
    rec.types.push_back(std::move(t));
  }

  const uint64_t updates =
      reservation_updates_.load(std::memory_order_relaxed);
  rec.reservation_updates = updates - prev_reservation_updates_;
  prev_reservation_updates_ = updates;

  const double seconds =
      static_cast<double>(end - rec.start) / 1e9;
  if (seconds > 0) {
    rec.arrival_rate_rps = static_cast<double>(total_arrivals) / seconds;
    rec.completion_rate_rps =
        static_cast<double>(total_completions) / seconds;
  }

  if (gauge_sampler_) {
    gauge_sampler_(&rec);
  }

  history_.push_back(std::move(rec));
  while (history_.size() > config_.capacity) {
    history_.pop_front();
  }
  intervals_closed_.store(
      intervals_closed_.load(std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  if (on_interval_) {
    on_interval_(history_.back());
  }
}

std::vector<IntervalRecord> TimeSeriesRecorder::History() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<IntervalRecord>(history_.begin(), history_.end());
}

std::vector<IntervalRecord> TimeSeriesRecorder::Recent(size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t count = n < history_.size() ? n : history_.size();
  return std::vector<IntervalRecord>(history_.end() - count, history_.end());
}

std::string TimeSeriesRecorder::ToCsv() const {
  std::map<uint32_t, std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& s : series_) {
      names.emplace(s->type_key, s->name);
    }
  }
  return IntervalsToCsv(History(), names);
}

std::string IntervalsToCsv(const std::vector<IntervalRecord>& intervals,
                           const std::map<uint32_t, std::string>& type_names) {
  std::string out =
      "seq,start_ns,end_ns,type,name,arrivals,completions,drops,"
      "slo_violations,queue_depth,reserved_workers,slowdown_samples,"
      "slowdown_p50_milli,slowdown_p99_milli,slowdown_p999_milli,"
      "interval_reservation_updates,arrival_rps,completion_rps,"
      "worker_busy_permille\n";
  for (const IntervalRecord& rec : intervals) {
    std::string busy;
    for (size_t w = 0; w < rec.worker_busy_permille.size(); ++w) {
      if (w > 0) {
        busy += '|';
      }
      busy += std::to_string(rec.worker_busy_permille[w]);
    }
    for (const TypeIntervalStats& t : rec.types) {
      const auto it = type_names.find(t.type);
      const std::string name = it != type_names.end()
                                   ? it->second
                                   : "type-" + std::to_string(t.type);
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%llu,%lld,%lld,%u,%s,%llu,%llu,%llu,%llu,%lld,%lld,%llu,%lld,"
          "%lld,%lld,%llu,%.1f,%.1f,%s\n",
          static_cast<unsigned long long>(rec.seq),
          static_cast<long long>(rec.start), static_cast<long long>(rec.end),
          t.type, name.c_str(), static_cast<unsigned long long>(t.arrivals),
          static_cast<unsigned long long>(t.completions),
          static_cast<unsigned long long>(t.drops),
          static_cast<unsigned long long>(t.slo_violations),
          static_cast<long long>(t.queue_depth),
          static_cast<long long>(t.reserved_workers),
          static_cast<unsigned long long>(t.slowdown_samples),
          static_cast<long long>(t.slowdown_p50_milli),
          static_cast<long long>(t.slowdown_p99_milli),
          static_cast<long long>(t.slowdown_p999_milli),
          static_cast<unsigned long long>(rec.reservation_updates),
          rec.arrival_rate_rps, rec.completion_rate_rps, busy.c_str());
      out += buf;
    }
  }
  return out;
}

}  // namespace psp
