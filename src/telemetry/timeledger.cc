#include "src/telemetry/timeledger.h"

namespace psp {
namespace {

// Matches kMaxWorkers in src/core/worker_set.h (telemetry cannot include it
// without inverting the layer dependency); +1 for the dispatcher pseudo-slot.
constexpr uint32_t kLedgerCapacity = 256 + 1;

}  // namespace

const char* WorkerTimeStateName(WorkerTimeState state) {
  switch (state) {
    case WorkerTimeState::kBusy:
      return "busy";
    case WorkerTimeState::kSteal:
      return "steal";
    case WorkerTimeState::kReservedIdle:
      return "reserved_idle";
    case WorkerTimeState::kFreeIdle:
      return "free_idle";
    case WorkerTimeState::kPollSpin:
      return "poll_spin";
    case WorkerTimeState::kDispatchOverhead:
      return "dispatch_overhead";
  }
  return "unknown";
}

WorkerTimeLedger::WorkerTimeLedger()
    : capacity_(kLedgerCapacity), slots_(new Slot[kLedgerCapacity]) {}

WorkerTimeLedger::~WorkerTimeLedger() = default;

void WorkerTimeLedger::OpenSlot(Slot* slot, Nanos now) {
  if (slot->opened_at.load(std::memory_order_relaxed) >= 0) {
    return;  // re-activated after a shrink: keep its history
  }
  slot->opened_at.store(now, std::memory_order_relaxed);
  slot->since.store(now, std::memory_order_relaxed);
  slot->packed.store(Pack(WorkerTimeState::kFreeIdle, kUntyped),
                     std::memory_order_relaxed);
}

void WorkerTimeLedger::Open(uint32_t num_workers, Nanos now) {
  if (opened_.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  if (num_workers > capacity_ - 1) {
    num_workers = capacity_ - 1;
  }
  for (uint32_t w = 0; w < num_workers; ++w) {
    OpenSlot(&slots_[w], now);
  }
  OpenSlot(&slots_[dispatcher_slot()], now);
  active_workers_.store(num_workers, std::memory_order_relaxed);
}

void WorkerTimeLedger::SetNumWorkers(uint32_t num_workers, Nanos now) {
  if (num_workers > capacity_ - 1) {
    num_workers = capacity_ - 1;
  }
  const uint32_t old = active_workers_.load(std::memory_order_relaxed);
  for (uint32_t w = old; w < num_workers; ++w) {
    OpenSlot(&slots_[w], now);
  }
  active_workers_.store(num_workers, std::memory_order_relaxed);
}

void WorkerTimeLedger::Transition(uint32_t slot_id, WorkerTimeState state,
                                  uint32_t type, Nanos now) {
  if (slot_id >= capacity_) {
    return;
  }
  Slot& slot = slots_[slot_id];
  const uint32_t prev = slot.packed.load(std::memory_order_relaxed);
  const Nanos since = slot.since.load(std::memory_order_relaxed);
  const Nanos span = now > since ? now - since : 0;
  if (span > 0) {
    const WorkerTimeState prev_state = UnpackState(prev);
    slot.accum[static_cast<size_t>(prev_state)].fetch_add(
        static_cast<uint64_t>(span), std::memory_order_relaxed);
    if (prev_state == WorkerTimeState::kBusy ||
        prev_state == WorkerTimeState::kSteal) {
      const uint32_t prev_type = UnpackType(prev);
      if (prev_type < kMaxLedgerTypes) {
        slot.type_ns[prev_type].fetch_add(static_cast<uint64_t>(span),
                                          std::memory_order_relaxed);
      }
    }
  }
  slot.since.store(now, std::memory_order_relaxed);
  slot.packed.store(Pack(state, type), std::memory_order_relaxed);
}

void WorkerTimeLedger::Add(uint32_t slot_id, WorkerTimeState state,
                           Nanos span) {
  if (slot_id >= capacity_ || span <= 0) {
    return;
  }
  slots_[slot_id].accum[static_cast<size_t>(state)].fetch_add(
      static_cast<uint64_t>(span), std::memory_order_relaxed);
}

void WorkerTimeLedger::AccountSpan(uint32_t slot_id, WorkerTimeState state,
                                   Nanos now) {
  if (slot_id >= capacity_) {
    return;
  }
  Slot& slot = slots_[slot_id];
  const Nanos since = slot.since.load(std::memory_order_relaxed);
  const Nanos span = now > since ? now - since : 0;
  if (span > 0) {
    slot.accum[static_cast<size_t>(state)].fetch_add(
        static_cast<uint64_t>(span), std::memory_order_relaxed);
  }
  slot.since.store(now, std::memory_order_relaxed);
  slot.packed.store(Pack(state, kUntyped), std::memory_order_relaxed);
}

void WorkerTimeLedger::SetRemainderState(uint32_t slot_id,
                                         WorkerTimeState state) {
  if (slot_id >= capacity_) {
    return;
  }
  slots_[slot_id].remainder_state.store(static_cast<uint8_t>(state),
                                        std::memory_order_relaxed);
}

const std::atomic<uint32_t>* WorkerTimeLedger::packed_state(
    uint32_t slot_id) const {
  return slot_id < capacity_ ? &slots_[slot_id].packed : nullptr;
}

void WorkerTimeLedger::FillRecord(const Slot& slot, uint32_t index,
                                  const char* role, Nanos now,
                                  const TypeNamer& namer,
                                  WorkerTimeRecord* out) const {
  out->slot = index;
  out->role = role;
  std::array<uint64_t, kMaxLedgerTypes> type_totals{};
  for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
    out->state_ns[s] = slot.accum[s].load(std::memory_order_relaxed);
  }
  for (size_t t = 0; t < kMaxLedgerTypes; ++t) {
    type_totals[t] = slot.type_ns[t].load(std::memory_order_relaxed);
  }
  const uint8_t remainder = slot.remainder_state.load(std::memory_order_relaxed);
  const Nanos opened = slot.opened_at.load(std::memory_order_relaxed);
  if (remainder != kNoRemainder) {
    // The slot's writer charges spans without moving a cursor (sim
    // dispatcher); whatever wall time is unaccounted belongs to the
    // remainder state by construction.
    const uint64_t wall =
        now > opened ? static_cast<uint64_t>(now - opened) : 0;
    uint64_t sum = 0;
    for (const uint64_t v : out->state_ns) {
      sum += v;
    }
    if (wall > sum) {
      out->state_ns[remainder] += wall - sum;
    }
  } else {
    // Charge the in-progress span so totals sum to wall time.
    const uint32_t packed = slot.packed.load(std::memory_order_relaxed);
    const Nanos since = slot.since.load(std::memory_order_relaxed);
    const Nanos span = now > since ? now - since : 0;
    if (span > 0) {
      const WorkerTimeState state = UnpackState(packed);
      out->state_ns[static_cast<size_t>(state)] +=
          static_cast<uint64_t>(span);
      if (state == WorkerTimeState::kBusy ||
          state == WorkerTimeState::kSteal) {
        const uint32_t type = UnpackType(packed);
        if (type < kMaxLedgerTypes) {
          type_totals[type] += static_cast<uint64_t>(span);
        }
      }
    }
  }
  for (uint32_t t = 0; t < kMaxLedgerTypes; ++t) {
    if (type_totals[t] == 0) {
      continue;
    }
    std::string name =
        namer ? namer(t) : std::string("type-") + std::to_string(t);
    if (name.empty()) {
      name = "type-" + std::to_string(t);
    }
    out->busy_type_ns.emplace_back(std::move(name), type_totals[t]);
  }
}

std::vector<WorkerTimeRecord> WorkerTimeLedger::SnapshotTotals(
    Nanos now, const TypeNamer& namer) const {
  std::vector<WorkerTimeRecord> records;
  if (!opened_.load(std::memory_order_relaxed)) {
    return records;
  }
  const uint32_t workers = active_workers_.load(std::memory_order_relaxed);
  records.reserve(workers + 1);
  for (uint32_t w = 0; w < workers; ++w) {
    WorkerTimeRecord rec;
    FillRecord(slots_[w], w, "worker", now, namer, &rec);
    records.push_back(std::move(rec));
  }
  WorkerTimeRecord dispatcher;
  FillRecord(slots_[dispatcher_slot()], dispatcher_slot(), "dispatcher", now,
             namer, &dispatcher);
  records.push_back(std::move(dispatcher));
  return records;
}

}  // namespace psp
