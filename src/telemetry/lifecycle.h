// Per-request lifecycle tracing: the pipeline-stage timeline of a single
// request (rx → classified → enqueued → dispatched → handler-start →
// handler-end → tx), sampled 1-in-N and committed into fixed-size lock-free
// per-thread rings so the dispatcher's ~100 ns per-request budget (§4.3.3)
// is preserved.
//
// The stamps travel *in-band* with the request (TraceContext rides inside
// psp::Request and the dispatcher→worker WorkOrder), so a record is only
// ever written by the thread currently owning the request; the completed
// record is committed once, by the worker, into its own TraceRing. Readers
// (TelemetrySnapshot assembly) never block writers: each ring slot carries a
// seqlock-style sequence number and torn reads are simply discarded.
#ifndef PSP_SRC_TELEMETRY_LIFECYCLE_H_
#define PSP_SRC_TELEMETRY_LIFECYCLE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/time.h"

namespace psp {

// Pipeline stages in lifecycle order. Both engines map onto the same axis:
// the threaded runtime stamps every stage; the simulator collapses the
// dispatcher pipeline (classified == enqueued) and the channel hop
// (dispatched == handler-start) because its model charges them as one cost.
enum class TraceStage : uint8_t {
  kRx = 0,          // frame left the NIC RX queue (or sim: arrived at server)
  kClassified,      // parsed + classified by the dispatcher
  kEnqueued,        // entered its typed queue
  kDispatched,      // Algorithm 1 picked it and a worker
  kHandlerStart,    // application handler began executing
  kHandlerEnd,      // application handler returned
  kTx,              // response handed to the NIC TX queue
};

inline constexpr size_t kNumTraceStages = 7;

const char* TraceStageName(TraceStage stage);

// One completed lifecycle record. `type` is the engine's type key: the dense
// TypeIndex in the threaded runtime, the wire TypeId in the simulator; the
// TelemetrySnapshot's type_names map makes either self-describing.
struct RequestTrace {
  uint64_t request_id = 0;
  uint32_t type = 0;
  uint32_t worker = 0;
  // Wire identity (client's request_id / client_id echoed from the PSP
  // header). Lets an offline join pair this server-side record with the
  // client's per-request sample; both 0 for requests that never crossed a
  // wire (simulator, in-process NIC ring).
  uint64_t wire_request_id = 0;
  uint32_t client_id = 0;
  // Stamp per stage; 0 = the stage was never reached/recorded.
  std::array<Nanos, kNumTraceStages> stamp{};

  Nanos At(TraceStage stage) const {
    return stamp[static_cast<size_t>(stage)];
  }

  // Span between two stages; 0 when either stamp is missing or the span
  // would be negative (clock read on another core).
  Nanos Span(TraceStage from, TraceStage to) const {
    const Nanos a = At(from);
    const Nanos b = At(to);
    if (a == 0 || b == 0 || b < a) {
      return 0;
    }
    return b - a;
  }
};

// In-band stamp carrier embedded in a request while it flows through the
// pipeline. Only the thread currently owning the request touches it, so no
// synchronisation is needed until the final commit into a TraceRing.
struct TraceContext {
  std::array<Nanos, kNumTraceStages> stamp{};
  uint8_t sampled = 0;  // 1 = this request is being traced

  void Mark(TraceStage stage, Nanos now) {
    stamp[static_cast<size_t>(stage)] = now;
  }
};

// 1-in-N sampling decision, owned by a single thread (the dispatcher / the
// sim engine). every == 0 disables sampling entirely; every == 1 traces all.
class TraceSampler {
 public:
  explicit TraceSampler(uint32_t every) : every_(every) {}

  bool Tick() {
    if (every_ == 0) {
      return false;
    }
    if (++count_ >= every_) {
      count_ = 0;
      return true;
    }
    return false;
  }

  uint32_t every() const { return every_; }

  // Live re-arm (the admin plane's sampling=N knob). Owning-thread only,
  // like Tick(); the counter resets so the new period starts immediately.
  void set_every(uint32_t every) {
    if (every == every_) {
      return;
    }
    every_ = every;
    count_ = 0;
  }

 private:
  uint32_t every_;
  uint32_t count_ = 0;
};

// Fixed-size lock-free trace ring: one single-writer producer (the owning
// worker thread) overwriting the oldest record, and wait-free concurrent
// readers. Each slot carries a sequence number (seqlock pattern): odd while
// a write is in flight, 2*(index+1) once committed. A reader copies the
// record and re-validates the sequence; torn copies are dropped.
class TraceRing {
 public:
  // Capacity is rounded up to a power of two (minimum 8).
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Producer side; single writer. Never blocks, overwrites the oldest record.
  void Push(const RequestTrace& record);

  // Reader side; safe concurrently with Push. Appends up to capacity() most
  // recent complete records to `out` in push order. Returns records added.
  size_t Snapshot(std::vector<RequestTrace>* out) const;

  // Total records ever pushed (including overwritten ones).
  uint64_t pushed() const { return head_.load(std::memory_order_acquire); }

  size_t capacity() const { return mask_ + 1; }

 private:
  // Record fields are individually relaxed atomics (not a plain struct):
  // readers race with the producer by design, and the seqlock re-validation
  // discards torn copies — atomic fields make that a defined-behaviour,
  // TSan-clean race instead of a formal data race on plain memory.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> request_id{0};
    std::atomic<uint32_t> type{0};
    std::atomic<uint32_t> worker{0};
    std::atomic<uint64_t> wire_request_id{0};
    std::atomic<uint32_t> client_id{0};
    std::array<std::atomic<Nanos>, kNumTraceStages> stamp{};
  };

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  // next logical write index
};

}  // namespace psp

#endif  // PSP_SRC_TELEMETRY_LIFECYCLE_H_
