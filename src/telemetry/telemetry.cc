#include "src/telemetry/telemetry.h"

namespace psp {

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

TimingHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<TimingHistogram>();
  }
  return *slot;
}

void MetricsRegistry::Export(TelemetrySnapshot* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    out->counters[name] += counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out->gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    out->histograms[name].Merge(hist->SnapshotHistogram());
  }
}

std::string TelemetryConfig::Validate() const {
  if (enable_tracing && sample_every > 0 && trace_ring_capacity == 0) {
    return "telemetry: trace_ring_capacity must be > 0 when tracing is on";
  }
  if (const std::string error = timeseries.Validate(); !error.empty()) {
    return error;
  }
  if (const std::string error = slo.Validate(); !error.empty()) {
    return error;
  }
  if (!slo.targets.empty() && !timeseries.enabled) {
    return "telemetry: SLO targets require timeseries.enabled (violation "
           "counts live in the time-series recorder)";
  }
  return "";
}

Telemetry::Telemetry(TelemetryConfig config, size_t num_rings)
    : config_(config) {
  live_sample_every_.store(config_.sample_every, std::memory_order_relaxed);
  if (num_rings == 0) {
    num_rings = 1;
  }
  const size_t capacity =
      config_.trace_ring_capacity > 0 ? config_.trace_ring_capacity : 1;
  rings_.reserve(num_rings);
  for (size_t i = 0; i < num_rings; ++i) {
    rings_.push_back(std::make_unique<TraceRing>(capacity));
  }
  if (config_.timeseries.enabled) {
    timeseries_ = std::make_unique<TimeSeriesRecorder>(config_.timeseries);
    if (!config_.slo.targets.empty()) {
      slo_ = std::make_unique<SloMonitor>(config_.slo);
      timeseries_->set_on_interval([this](const IntervalRecord& rec) {
        slo_->OnInterval(rec, series_names_);
      });
    }
  }
}

std::string Telemetry::SetSampleEvery(uint32_t every) {
  if (!config_.enable_tracing) {
    return "telemetry: tracing is disabled; sampling cannot be changed";
  }
  live_sample_every_.store(every, std::memory_order_relaxed);
  return "";
}

std::string Telemetry::SetSloTarget(const std::string& type_name,
                                    double slowdown) {
  if (slowdown <= 1.0) {
    return "telemetry: slowdown target must be > 1.0";
  }
  if (!slo_) {
    return "telemetry: no SLO monitor configured";
  }
  if (const std::string error = slo_->SetSlowdown(type_name, slowdown);
      !error.empty()) {
    return error;
  }
  // Re-arm the recorder's violation counting for the matching series.
  if (timeseries_) {
    for (size_t slot = 0; slot < timeseries_->num_series(); ++slot) {
      if (timeseries_->name_of(slot) == type_name) {
        timeseries_->SetSlowdownTarget(slot, slowdown);
      }
    }
  }
  return "";
}

void Telemetry::RecordEvent(Nanos at, std::string what) {
  std::lock_guard<std::mutex> lock(events_mutex_);
  if (events_.size() >= kMaxEvents) {
    events_.pop_front();
  }
  events_.push_back(TelemetryEvent{at, std::move(what)});
}

size_t Telemetry::RegisterSeries(uint32_t type_key, const std::string& name) {
  if (!timeseries_) {
    return SIZE_MAX;
  }
  const size_t slot = timeseries_->RegisterSeries(type_key, name);
  series_names_.emplace(type_key, name);
  if (slo_) {
    const double target = slo_->TargetSlowdownFor(name);
    if (target > 0) {
      timeseries_->SetSlowdownTarget(slot, target);
    }
  }
  return slot;
}

void Telemetry::RecordReservationUpdate(ReservationUpdate update) {
  if (timeseries_) {
    timeseries_->NoteReservationUpdate(update.at);
  }
  std::lock_guard<std::mutex> lock(events_mutex_);
  if (reservation_updates_.size() >= kMaxReservationUpdates) {
    reservation_updates_.pop_front();
  }
  reservation_updates_.push_back(std::move(update));
}

std::vector<ReservationUpdate> Telemetry::reservation_updates() const {
  std::lock_guard<std::mutex> lock(events_mutex_);
  return std::vector<ReservationUpdate>(reservation_updates_.begin(),
                                        reservation_updates_.end());
}

void Telemetry::AdvanceTimeSeries(Nanos now, bool flush) {
  if (!timeseries_) {
    return;
  }
  timeseries_->Roll(now, flush);
  MaybeDumpFlight();
}

void Telemetry::MaybeDumpFlight() {
  if (!slo_ || config_.slo.flight_path.empty()) {
    return;
  }
  const std::vector<SloAlert> pending = slo_->TakeUndumped();
  if (pending.empty()) {
    return;
  }
  // Build the dump outside any recorder/monitor lock: the snapshot provider
  // reads the recorder's history itself.
  const TelemetrySnapshot snap =
      flight_provider_ ? flight_provider_() : Snapshot();
  const std::string body = BuildFlightRecord(
      pending, timeseries_->Recent(config_.slo.flight_intervals), snap);
  if (WriteTextFile(config_.slo.flight_path, body)) {
    registry_.GetCounter("slo.flight_dumps").Add();
  } else {
    registry_.GetCounter("slo.flight_dump_failures").Add();
  }
}

TelemetrySnapshot Telemetry::Snapshot() const {
  TelemetrySnapshot snap;
  registry_.Export(&snap);
  for (const auto& ring : rings_) {
    ring->Snapshot(&snap.traces);
    snap.counters["telemetry.traces_recorded"] += ring->pushed();
  }
  {
    std::lock_guard<std::mutex> lock(events_mutex_);
    snap.events.insert(snap.events.end(), events_.begin(), events_.end());
    snap.reservation_updates.insert(snap.reservation_updates.end(),
                                    reservation_updates_.begin(),
                                    reservation_updates_.end());
  }
  if (timeseries_) {
    snap.timeseries = timeseries_->History();
    snap.counters["telemetry.intervals_closed"] +=
        timeseries_->intervals_closed();
    for (const auto& [key, name] : series_names_) {
      snap.type_names.emplace(key, name);
    }
  }
  if (slo_) {
    snap.counters["slo.alerts_total"] += slo_->alerts_total();
  }
  return snap;
}

}  // namespace psp
