#include "src/telemetry/telemetry.h"

namespace psp {

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

TimingHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<TimingHistogram>();
  }
  return *slot;
}

void MetricsRegistry::Export(TelemetrySnapshot* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    out->counters[name] += counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out->gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    out->histograms[name].Merge(hist->SnapshotHistogram());
  }
}

std::string TelemetryConfig::Validate() const {
  if (enable_tracing && sample_every > 0 && trace_ring_capacity == 0) {
    return "telemetry: trace_ring_capacity must be > 0 when tracing is on";
  }
  return "";
}

Telemetry::Telemetry(TelemetryConfig config, size_t num_rings)
    : config_(config) {
  if (num_rings == 0) {
    num_rings = 1;
  }
  const size_t capacity =
      config_.trace_ring_capacity > 0 ? config_.trace_ring_capacity : 1;
  rings_.reserve(num_rings);
  for (size_t i = 0; i < num_rings; ++i) {
    rings_.push_back(std::make_unique<TraceRing>(capacity));
  }
}

void Telemetry::RecordEvent(Nanos at, std::string what) {
  std::lock_guard<std::mutex> lock(events_mutex_);
  if (events_.size() >= kMaxEvents) {
    events_.pop_front();
  }
  events_.push_back(TelemetryEvent{at, std::move(what)});
}

TelemetrySnapshot Telemetry::Snapshot() const {
  TelemetrySnapshot snap;
  registry_.Export(&snap);
  for (const auto& ring : rings_) {
    ring->Snapshot(&snap.traces);
    snap.counters["telemetry.traces_recorded"] += ring->pushed();
  }
  {
    std::lock_guard<std::mutex> lock(events_mutex_);
    snap.events.insert(snap.events.end(), events_.begin(), events_.end());
  }
  return snap;
}

}  // namespace psp
