// SLO monitor + flight recorder: per-type slowdown targets evaluated as
// burn rates over a rolling window of time-series intervals. When a type
// burns its violation budget faster than allowed, an alert fires and the
// engine dumps a flight record — the last N intervals plus the current
// telemetry snapshot (which carries the recent sampled lifecycle traces) —
// to a file, so the state that led to the violation is preserved even if the
// process keeps running.
//
// The monitor consumes *closed intervals* (TimeSeriesRecorder's on_interval
// feed), never per-request data, so its cost is a few comparisons per
// interval — nothing on the dispatch hot path. Violation counting itself
// happens in the recorder (one multiply + compare per completion).
#ifndef PSP_SRC_TELEMETRY_SLO_H_
#define PSP_SRC_TELEMETRY_SLO_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/telemetry/snapshot.h"

namespace psp {

// One per-type objective. Targets are matched to recorder series by *name*
// (the human-stable key across both engines; TypeIndex and wire ids differ).
struct SloTarget {
  std::string type_name;
  // A completion violates when latency / service > slowdown. The paper
  // states objectives the same way (e.g. "10x slowdown", §5).
  double slowdown = 10.0;
  // Fraction of completions allowed to violate; burn rate 1.0 means the type
  // is consuming exactly this budget.
  double budget_fraction = 0.01;
};

struct SloConfig {
  std::vector<SloTarget> targets;  // empty = monitoring disabled
  // Rolling evaluation window, in closed time-series intervals.
  size_t window_intervals = 8;
  // Alert when (violations / completions) / budget_fraction >= this.
  double burn_rate_alert = 1.0;
  // Don't evaluate windows with fewer completions (startup noise guard).
  uint64_t min_window_completions = 100;
  // Re-alerting for the same type is suppressed for this many intervals.
  size_t cooldown_intervals = 16;
  // Flight recorder: where to dump on alert ("" disables dumps) and how many
  // trailing intervals the dump carries.
  std::string flight_path;
  size_t flight_intervals = 64;

  // Empty string = valid; otherwise a description of the problem.
  std::string Validate() const;
};

struct SloAlert {
  Nanos at = 0;           // end of the interval that tripped the alert
  uint64_t interval_seq = 0;
  std::string type_name;
  double burn_rate = 0;
  uint64_t window_completions = 0;
  uint64_t window_violations = 0;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  const SloConfig& config() const { return config_; }

  // Looks up the slowdown target for a series name; 0 when none is set.
  // Engines use this to arm the recorder's violation counting.
  double TargetSlowdownFor(const std::string& type_name) const;

  // Runtime update of an *existing* target's slowdown threshold (the admin
  // plane's slo.<TYPE>.slowdown knob). The rolling window keeps its history;
  // only future violation counting and burn rates use the new threshold.
  // Returns "" on success, else the error (unknown type, bad threshold).
  std::string SetSlowdown(const std::string& type_name, double slowdown);

  // Feeds one closed interval; returns the alerts it fired. Type matching is
  // by series name, resolved through `names` (type key -> name).
  std::vector<SloAlert> OnInterval(
      const IntervalRecord& interval,
      const std::map<uint32_t, std::string>& names);

  // All alerts fired so far (bounded; oldest dropped first).
  std::vector<SloAlert> alerts() const;
  uint64_t alerts_total() const;

  // Alerts fired since the last call (the flight-recorder dump feed). The
  // dump itself runs outside the recorder's roll lock, so alerts raised by a
  // writer-side inline interval close are picked up at the engine's next
  // sampler tick / virtual-time rollover.
  std::vector<SloAlert> TakeUndumped();

 private:
  struct TargetState {
    SloTarget target;
    // Per-interval (completions, violations) pairs for the rolling window.
    std::deque<std::pair<uint64_t, uint64_t>> window;
    uint64_t window_completions = 0;
    uint64_t window_violations = 0;
    uint64_t cooldown_until_seq = 0;
  };

  static constexpr size_t kMaxAlerts = 256;

  SloConfig config_;
  mutable std::mutex mutex_;
  std::vector<TargetState> targets_;
  std::deque<SloAlert> alerts_;
  std::deque<SloAlert> undumped_;
  uint64_t alerts_total_ = 0;
};

// Serialises a flight record: the alerts, the trailing intervals (CSV, same
// schema as TimeSeriesRecorder::ToCsv) and the full snapshot JSON (which
// includes the recent sampled traces), in one self-describing JSON object.
std::string BuildFlightRecord(const std::vector<SloAlert>& alerts,
                              const std::vector<IntervalRecord>& intervals,
                              const TelemetrySnapshot& snapshot);

// Best-effort whole-file write; returns false on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace psp

#endif  // PSP_SRC_TELEMETRY_SLO_H_
