#include "src/telemetry/snapshot.h"

#include <cstdio>

namespace psp {
namespace {

// Minimal JSON string escaping (names are ASCII identifiers in practice).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendHistogramJson(std::string* out, const Histogram& h) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"mean\":%.1f,\"p50\":%lld,\"p99\":%lld,"
                "\"p999\":%lld,\"max\":%lld}",
                static_cast<unsigned long long>(h.Count()), h.Mean(),
                static_cast<long long>(h.Percentile(50)),
                static_cast<long long>(h.Percentile(99)),
                static_cast<long long>(h.Percentile(99.9)),
                static_cast<long long>(h.Max()));
  *out += buf;
}

void AppendSpanRow(std::string* out, const char* label, const Histogram& h) {
  if (h.Count() == 0) {
    return;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "    %-10s %8llu samples  mean %9.2f us  p50 %9.2f us  "
                "p99 %9.2f us  max %9.2f us\n",
                label, static_cast<unsigned long long>(h.Count()),
                h.Mean() / 1e3, static_cast<double>(h.Percentile(50)) / 1e3,
                static_cast<double>(h.Percentile(99)) / 1e3,
                static_cast<double>(h.Max()) / 1e3);
  *out += buf;
}

}  // namespace

uint64_t TelemetrySnapshot::counter(const std::string& name,
                                    uint64_t fallback) const {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : fallback;
}

int64_t TelemetrySnapshot::gauge(const std::string& name,
                                 int64_t fallback) const {
  const auto it = gauges.find(name);
  return it != gauges.end() ? it->second : fallback;
}

void TelemetrySnapshot::Merge(const TelemetrySnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] = value;
  }
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
  traces.insert(traces.end(), other.traces.begin(), other.traces.end());
  events.insert(events.end(), other.events.begin(), other.events.end());
  timeseries.insert(timeseries.end(), other.timeseries.begin(),
                    other.timeseries.end());
  reservation_updates.insert(reservation_updates.end(),
                             other.reservation_updates.begin(),
                             other.reservation_updates.end());
  for (const auto& [type, name] : other.type_names) {
    type_names.emplace(type, name);
  }
  worker_time.insert(worker_time.end(), other.worker_time.begin(),
                     other.worker_time.end());
  deadline_types.insert(deadline_types.end(), other.deadline_types.begin(),
                        other.deadline_types.end());
}

std::map<uint32_t, TypeStageBreakdown> TelemetrySnapshot::StageBreakdown()
    const {
  std::map<uint32_t, TypeStageBreakdown> by_type;
  for (const RequestTrace& t : traces) {
    TypeStageBreakdown& b = by_type[t.type];
    if (b.traces == 0) {
      const auto it = type_names.find(t.type);
      b.name = it != type_names.end() ? it->second
                                      : "type-" + std::to_string(t.type);
    }
    ++b.traces;
    const struct {
      Histogram* hist;
      TraceStage from;
      TraceStage to;
    } spans[] = {
        {&b.preprocess, TraceStage::kRx, TraceStage::kEnqueued},
        {&b.queueing, TraceStage::kEnqueued, TraceStage::kDispatched},
        {&b.handoff, TraceStage::kDispatched, TraceStage::kHandlerStart},
        {&b.service, TraceStage::kHandlerStart, TraceStage::kHandlerEnd},
        {&b.reply, TraceStage::kHandlerEnd, TraceStage::kTx},
        {&b.total, TraceStage::kRx, TraceStage::kTx},
    };
    for (const auto& span : spans) {
      if (t.At(span.from) != 0 && t.At(span.to) != 0) {
        span.hist->Add(t.Span(span.from, span.to));
      }
    }
  }
  return by_type;
}

std::string TelemetrySnapshot::ToTable() const {
  std::string out;
  char buf[256];
  out += "counters:\n";
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "  %-36s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : gauges) {
      std::snprintf(buf, sizeof(buf), "  %-36s %lld\n", name.c_str(),
                    static_cast<long long>(value));
      out += buf;
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [name, hist] : histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-36s n=%llu mean=%.1f p50=%lld p99=%lld max=%lld\n",
                    name.c_str(), static_cast<unsigned long long>(hist.Count()),
                    hist.Mean(), static_cast<long long>(hist.Percentile(50)),
                    static_cast<long long>(hist.Percentile(99)),
                    static_cast<long long>(hist.Max()));
      out += buf;
    }
  }
  if (!events.empty()) {
    out += "events:\n";
    for (const TelemetryEvent& e : events) {
      std::snprintf(buf, sizeof(buf), "  [%9.3f ms] ",
                    static_cast<double>(e.at) / 1e6);
      out += buf;
      out += e.what;
      out += '\n';
    }
  }
  std::snprintf(buf, sizeof(buf), "traces: %zu sampled\n", traces.size());
  out += buf;
  return out;
}

std::string TelemetrySnapshot::ToJson() const {
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(name) + "\":";
    AppendHistogramJson(&out, hist);
  }
  out += "},\"events\":[";
  first = true;
  for (const TelemetryEvent& e : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"at\":" + std::to_string(e.at) + ",\"what\":\"" +
           JsonEscape(e.what) + "\"}";
  }
  out += "],\"timeseries\":[";
  first = true;
  for (const IntervalRecord& r : timeseries) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"seq\":" + std::to_string(r.seq) +
           ",\"start\":" + std::to_string(r.start) +
           ",\"end\":" + std::to_string(r.end) +
           ",\"reservation_updates\":" + std::to_string(r.reservation_updates);
    char rate[80];
    std::snprintf(rate, sizeof(rate),
                  ",\"arrival_rps\":%.1f,\"completion_rps\":%.1f",
                  r.arrival_rate_rps, r.completion_rate_rps);
    out += rate;
    out += ",\"types\":[";
    bool first_type = true;
    for (const TypeIntervalStats& t : r.types) {
      if (!first_type) {
        out += ',';
      }
      first_type = false;
      const auto it = type_names.find(t.type);
      const std::string name = it != type_names.end()
                                   ? it->second
                                   : "type-" + std::to_string(t.type);
      out += "{\"type\":" + std::to_string(t.type) + ",\"name\":\"" +
             JsonEscape(name) + "\",\"arrivals\":" +
             std::to_string(t.arrivals) +
             ",\"completions\":" + std::to_string(t.completions) +
             ",\"drops\":" + std::to_string(t.drops) +
             ",\"slo_violations\":" + std::to_string(t.slo_violations) +
             ",\"deadline_misses\":" + std::to_string(t.deadline_misses) +
             ",\"deadline_sheds\":" + std::to_string(t.deadline_sheds) +
             ",\"queue_depth\":" + std::to_string(t.queue_depth) +
             ",\"reserved_workers\":" + std::to_string(t.reserved_workers) +
             ",\"slowdown_samples\":" + std::to_string(t.slowdown_samples) +
             ",\"slowdown_p50_milli\":" +
             std::to_string(t.slowdown_p50_milli) +
             ",\"slowdown_p99_milli\":" +
             std::to_string(t.slowdown_p99_milli) +
             ",\"slowdown_p999_milli\":" +
             std::to_string(t.slowdown_p999_milli) + '}';
    }
    out += "],\"worker_busy_permille\":[";
    bool first_worker = true;
    for (const int64_t b : r.worker_busy_permille) {
      if (!first_worker) {
        out += ',';
      }
      first_worker = false;
      out += std::to_string(b);
    }
    out += "],\"worker_state_permille\":[";
    bool first_state = true;
    for (const int64_t p : r.worker_state_permille) {
      if (!first_state) {
        out += ',';
      }
      first_state = false;
      out += std::to_string(p);
    }
    out += "]}";
  }
  out += "],\"reservation_updates\":[";
  first = true;
  for (const ReservationUpdate& u : reservation_updates) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"at\":" + std::to_string(u.at) +
           ",\"seq\":" + std::to_string(u.seq) +
           ",\"window\":" + std::to_string(u.window) + ",\"shares\":[";
    bool first_share = true;
    for (const ReservationShare& s : u.shares) {
      if (!first_share) {
        out += ',';
      }
      first_share = false;
      out += "{\"type\":" + std::to_string(s.type) + ",\"name\":\"" +
             JsonEscape(s.name) + "\",\"reserved_workers\":" +
             std::to_string(s.reserved_workers) + '}';
    }
    out += "]}";
  }
  out += "],\"deadline_types\":[";
  first = true;
  for (const DeadlineTypeStats& d : deadline_types) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"type\":" + std::to_string(d.type) + ",\"name\":\"" +
           JsonEscape(d.name) + "\",\"missed\":" + std::to_string(d.missed) +
           ",\"shed\":" + std::to_string(d.shed) +
           ",\"slack_sum_nanos\":" + std::to_string(d.slack_sum_nanos) +
           ",\"slack_samples\":" + std::to_string(d.slack_samples) +
           ",\"budget_nanos\":" + std::to_string(d.budget_nanos) + '}';
  }
  out += "],\"stage_breakdown\":{";
  first = true;
  for (const auto& [type, b] : StageBreakdown()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(b.name) + "\":{\"traces\":" +
           std::to_string(b.traces);
    const struct {
      const char* label;
      const Histogram* hist;
    } spans[] = {{"preprocess", &b.preprocess}, {"queueing", &b.queueing},
                 {"handoff", &b.handoff},       {"service", &b.service},
                 {"reply", &b.reply},           {"total", &b.total}};
    for (const auto& span : spans) {
      out += ",\"";
      out += span.label;
      out += "\":";
      AppendHistogramJson(&out, *span.hist);
    }
    out += '}';
  }
  out += "},\"worker_time\":[";
  first = true;
  for (const WorkerTimeRecord& w : worker_time) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"slot\":" + std::to_string(w.slot) + ",\"role\":\"" +
           JsonEscape(w.role) + "\",\"state_ns\":{";
    for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
      if (s != 0) {
        out += ',';
      }
      out += '"';
      out += WorkerTimeStateName(static_cast<WorkerTimeState>(s));
      out += "\":" + std::to_string(w.state_ns[s]);
    }
    out += "},\"busy_type_ns\":{";
    bool first_type = true;
    for (const auto& [name, ns] : w.busy_type_ns) {
      if (!first_type) {
        out += ',';
      }
      first_type = false;
      out += '"' + JsonEscape(name) + "\":" + std::to_string(ns);
    }
    out += "}}";
  }
  out += "],\"num_traces\":" + std::to_string(traces.size());
  out += '}';
  return out;
}

std::string TelemetrySnapshot::StageReport() const {
  std::string out;
  const auto breakdown = StageBreakdown();
  if (breakdown.empty()) {
    return "no sampled traces\n";
  }
  out += "per-stage latency breakdown (sampled traces):\n";
  for (const auto& [type, b] : breakdown) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %s (%llu traces)\n", b.name.c_str(),
                  static_cast<unsigned long long>(b.traces));
    out += buf;
    AppendSpanRow(&out, "preprocess", b.preprocess);
    AppendSpanRow(&out, "queueing", b.queueing);
    AppendSpanRow(&out, "handoff", b.handoff);
    AppendSpanRow(&out, "service", b.service);
    AppendSpanRow(&out, "reply", b.reply);
    AppendSpanRow(&out, "total", b.total);
  }
  return out;
}

}  // namespace psp
