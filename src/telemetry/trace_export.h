// Chrome/Perfetto trace exporter: converts a TelemetrySnapshot — sampled
// lifecycle traces, scheduler events (reservation updates, window rollovers,
// queue drops), and time-series intervals — into catapult trace-event JSON
// loadable by ui.perfetto.dev or chrome://tracing.
//
// Track layout (one process):
//   tid 0           "scheduler": instant events (ph "i") for every
//                   TelemetryEvent, plus counter tracks (ph "C") for per-type
//                   queue depths and applied reservation shares — the series
//                   that makes DARC convergence (Fig. 7) visible.
//   tid 1 + worker  "worker N": one complete slice (ph "X") per sampled
//                   request's service span, with the per-stage latency
//                   decomposition (queueing, handoff, ...) in args.
//   async spans     one b/e pair per sampled request (rx → tx), named by
//                   type, so end-to-end sojourns are visible above the
//                   worker tracks.
// Every event carries ph/ts/pid/tid; events are sorted by ts, so timestamps
// are monotonic per track (tests/trace_export_test.cc holds the exporter to
// that format contract).
#ifndef PSP_SRC_TELEMETRY_TRACE_EXPORT_H_
#define PSP_SRC_TELEMETRY_TRACE_EXPORT_H_

#include <cstdint>
#include <string>

#include "src/common/time.h"
#include "src/telemetry/snapshot.h"

namespace psp {

struct TraceExportOptions {
  // Subtracted from every timestamp before the ns -> µs conversion. 0 = auto
  // (the earliest timestamp in the snapshot), which keeps runtime TSC values
  // readable; the simulator's virtual clock already starts at 0.
  Nanos origin = 0;
  uint32_t pid = 1;
  // Counter tracks from time-series intervals + reservation updates.
  bool include_counters = true;
  // Per-request async (b/e) spans; disable for very large snapshots.
  bool include_async_spans = true;
};

// Returns the complete trace JSON ({"traceEvents":[...]}). Deterministic for
// a deterministic snapshot (stable ordering, fixed float formatting).
std::string ExportCatapultTrace(const TelemetrySnapshot& snapshot,
                                const TraceExportOptions& options = {});

}  // namespace psp

#endif  // PSP_SRC_TELEMETRY_TRACE_EXPORT_H_
