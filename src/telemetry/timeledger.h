// Worker time-provenance ledger: decomposes each worker's wall time into
// exhaustive, mutually exclusive states so the paper's central tradeoff —
// deliberately idle reserved cores vs short-request tail latency — is
// directly observable instead of hidden behind a binary busy flag.
//
// States (see docs/OBSERVABILITY.md "Time provenance & profiling"):
//   busy{type=T}       running a request of type T
//   steal              running a request on a stolen (non-reserved) core
//   reserved_idle      held idle by a DARC reservation with no eligible work
//                      — the paper's "ideal idling"
//   free_idle          idle and unreserved (starved, or DARC inactive)
//   poll_spin          burning CPU polling with nothing to do (dispatcher)
//   dispatch_overhead  dispatch/completion bookkeeping (dispatcher)
//
// One ledger instance serves both substrates. In the threaded runtime every
// per-slot field is a relaxed atomic with a single writer (the dispatcher
// thread drives worker-slot transitions; the dispatcher's own pseudo-slot is
// written only by itself), so concurrent snapshot reads are race-free under
// TSan; cross-field skew is bounded by one in-flight span. In the simulator
// the single thread and virtual clock make totals bit-deterministic per seed.
#ifndef PSP_SRC_TELEMETRY_TIMELEDGER_H_
#define PSP_SRC_TELEMETRY_TIMELEDGER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/time.h"

namespace psp {

enum class WorkerTimeState : uint8_t {
  kBusy = 0,
  kSteal = 1,
  kReservedIdle = 2,
  kFreeIdle = 3,
  kPollSpin = 4,
  kDispatchOverhead = 5,
};

inline constexpr size_t kNumWorkerTimeStates = 6;

const char* WorkerTimeStateName(WorkerTimeState state);

// One slot's totals at a snapshot instant. busy_type_ns splits the busy +
// steal time by request type (names resolved by the snapshot assembler); any
// unattributed remainder is reported under "untyped" by the exporters.
struct WorkerTimeRecord {
  uint32_t slot = 0;
  std::string role;  // "worker" or "dispatcher"
  std::array<uint64_t, kNumWorkerTimeStates> state_ns{};
  std::vector<std::pair<std::string, uint64_t>> busy_type_ns;

  uint64_t WallNs() const {
    uint64_t sum = 0;
    for (const uint64_t v : state_ns) {
      sum += v;
    }
    return sum;
  }
  uint64_t BusyNs() const {
    return state_ns[static_cast<size_t>(WorkerTimeState::kBusy)] +
           state_ns[static_cast<size_t>(WorkerTimeState::kSteal)];
  }
  bool operator==(const WorkerTimeRecord&) const = default;
};

class WorkerTimeLedger {
 public:
  // Per-slot typed-busy resolution is capped: types registered past this
  // many dense indices still count as busy, just under "untyped".
  static constexpr uint32_t kMaxLedgerTypes = 64;
  // Sentinel "no request type" for non-busy transitions.
  static constexpr uint32_t kUntyped = ~uint32_t{0};

  WorkerTimeLedger();
  ~WorkerTimeLedger();
  WorkerTimeLedger(const WorkerTimeLedger&) = delete;
  WorkerTimeLedger& operator=(const WorkerTimeLedger&) = delete;

  // Opens worker slots [0, num_workers) plus the dispatcher pseudo-slot, all
  // starting in free_idle at `now`. Idempotent per instance lifetime.
  void Open(uint32_t num_workers, Nanos now);

  uint32_t num_workers() const {
    return active_workers_.load(std::memory_order_relaxed);
  }
  // The dispatcher pseudo-slot id (stable across worker resizes).
  uint32_t dispatcher_slot() const { return capacity_ - 1; }

  // Grows/shrinks the active worker range; newly active slots open in
  // free_idle at `now`.
  void SetNumWorkers(uint32_t num_workers, Nanos now);

  // Closes the slot's current span (charging it to the current state, and to
  // the current type when busy/stealing), then enters `state`. `type` is a
  // dense TypeIndex for kBusy/kSteal, kUntyped otherwise.
  void Transition(uint32_t slot, WorkerTimeState state, uint32_t type,
                  Nanos now);

  // Charges `span` directly to `state` without moving the span cursor — the
  // simulator's dispatcher serial resource uses this for its fixed
  // per-request dispatch/completion costs.
  void Add(uint32_t slot, WorkerTimeState state, Nanos span);

  // Charges [since, now) to `state` and restarts the span at `now` — the
  // runtime dispatcher classifies each loop iteration after the fact.
  void AccountSpan(uint32_t slot, WorkerTimeState state, Nanos now);

  // Slots flagged with a remainder state skip in-progress-span accounting at
  // snapshot time; the gap between accumulated totals and wall time is
  // attributed to `state` instead (sim dispatcher: unaccounted wall time is
  // poll_spin by construction).
  void SetRemainderState(uint32_t slot, WorkerTimeState state);

  // The slot's packed current (state, type) — async-signal-safe to read, so
  // the sampling profiler tags stacks with it from SIGPROF context.
  const std::atomic<uint32_t>* packed_state(uint32_t slot) const;

  static uint32_t Pack(WorkerTimeState state, uint32_t type) {
    const uint32_t type_field =
        type == kUntyped || type >= kMaxLedgerTypes ? 0u : type + 1;
    return (type_field << 3) | static_cast<uint32_t>(state);
  }
  static WorkerTimeState UnpackState(uint32_t packed) {
    return static_cast<WorkerTimeState>(packed & 7u);
  }
  static uint32_t UnpackType(uint32_t packed) {
    const uint32_t type_field = packed >> 3;
    return type_field == 0 ? kUntyped : type_field - 1;
  }

  using TypeNamer = std::function<std::string(uint32_t)>;

  // Totals for every active worker slot plus the dispatcher, including the
  // in-progress span up to `now` (each record's states then sum exactly to
  // now - open time, modulo cross-thread read skew in the runtime). `namer`
  // resolves dense type indices for busy_type_ns; null falls back to
  // "type-N". Const and idempotent: nothing in the ledger moves.
  std::vector<WorkerTimeRecord> SnapshotTotals(Nanos now,
                                               const TypeNamer& namer) const;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<uint64_t>, kNumWorkerTimeStates> accum{};
    std::array<std::atomic<uint64_t>, kMaxLedgerTypes> type_ns{};
    std::atomic<int64_t> since{0};
    std::atomic<int64_t> opened_at{-1};
    std::atomic<uint32_t> packed{0};
    std::atomic<uint8_t> remainder_state{kNoRemainder};
  };
  static constexpr uint8_t kNoRemainder = 0xff;

  void OpenSlot(Slot* slot, Nanos now);
  void FillRecord(const Slot& slot, uint32_t index, const char* role,
                  Nanos now, const TypeNamer& namer,
                  WorkerTimeRecord* out) const;

  const uint32_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint32_t> active_workers_{0};
  std::atomic<bool> opened_{false};
};

}  // namespace psp

#endif  // PSP_SRC_TELEMETRY_TIMELEDGER_H_
