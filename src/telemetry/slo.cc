#include "src/telemetry/slo.h"

#include <cstdio>

#include "src/telemetry/timeseries.h"

namespace psp {

std::string SloConfig::Validate() const {
  if (targets.empty()) {
    return "";
  }
  for (const SloTarget& t : targets) {
    if (t.type_name.empty()) {
      return "slo: target type_name must not be empty";
    }
    if (t.slowdown <= 0) {
      return "slo: target slowdown must be > 0";
    }
    if (t.budget_fraction <= 0 || t.budget_fraction > 1.0) {
      return "slo: budget_fraction must be in (0, 1]";
    }
  }
  if (window_intervals == 0) {
    return "slo: window_intervals must be > 0";
  }
  if (burn_rate_alert <= 0) {
    return "slo: burn_rate_alert must be > 0";
  }
  if (!flight_path.empty() && flight_intervals == 0) {
    return "slo: flight_intervals must be > 0 when flight_path is set";
  }
  return "";
}

SloMonitor::SloMonitor(SloConfig config) : config_(std::move(config)) {
  targets_.reserve(config_.targets.size());
  for (const SloTarget& t : config_.targets) {
    TargetState state;
    state.target = t;
    targets_.push_back(std::move(state));
  }
}

double SloMonitor::TargetSlowdownFor(const std::string& type_name) const {
  for (const TargetState& state : targets_) {
    if (state.target.type_name == type_name) {
      return state.target.slowdown;
    }
  }
  return 0;
}

std::string SloMonitor::SetSlowdown(const std::string& type_name,
                                    double slowdown) {
  if (slowdown <= 1.0) {
    return "slo: slowdown target must be > 1.0";
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (TargetState& state : targets_) {
    if (state.target.type_name == type_name) {
      state.target.slowdown = slowdown;
      return "";
    }
  }
  return "slo: no target for type \"" + type_name + "\"";
}

std::vector<SloAlert> SloMonitor::OnInterval(
    const IntervalRecord& interval,
    const std::map<uint32_t, std::string>& names) {
  std::vector<SloAlert> fired;
  std::lock_guard<std::mutex> lock(mutex_);
  for (TargetState& state : targets_) {
    // Find this target's per-type stats in the interval (by resolved name).
    const TypeIntervalStats* stats = nullptr;
    for (const TypeIntervalStats& t : interval.types) {
      const auto it = names.find(t.type);
      if (it != names.end() && it->second == state.target.type_name) {
        stats = &t;
        break;
      }
    }
    if (stats == nullptr) {
      continue;
    }
    state.window.emplace_back(stats->completions, stats->slo_violations);
    state.window_completions += stats->completions;
    state.window_violations += stats->slo_violations;
    while (state.window.size() > config_.window_intervals) {
      state.window_completions -= state.window.front().first;
      state.window_violations -= state.window.front().second;
      state.window.pop_front();
    }
    if (state.window_completions < config_.min_window_completions) {
      continue;
    }
    const double violation_fraction =
        static_cast<double>(state.window_violations) /
        static_cast<double>(state.window_completions);
    const double burn_rate = violation_fraction / state.target.budget_fraction;
    if (burn_rate < config_.burn_rate_alert) {
      continue;
    }
    if (interval.seq < state.cooldown_until_seq) {
      continue;
    }
    state.cooldown_until_seq = interval.seq + config_.cooldown_intervals;
    SloAlert alert;
    alert.at = interval.end;
    alert.interval_seq = interval.seq;
    alert.type_name = state.target.type_name;
    alert.burn_rate = burn_rate;
    alert.window_completions = state.window_completions;
    alert.window_violations = state.window_violations;
    fired.push_back(alert);
    alerts_.push_back(alert);
    undumped_.push_back(alert);
    ++alerts_total_;
    while (alerts_.size() > kMaxAlerts) {
      alerts_.pop_front();
    }
    while (undumped_.size() > kMaxAlerts) {
      undumped_.pop_front();
    }
  }
  return fired;
}

std::vector<SloAlert> SloMonitor::alerts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SloAlert>(alerts_.begin(), alerts_.end());
}

uint64_t SloMonitor::alerts_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alerts_total_;
}

std::vector<SloAlert> SloMonitor::TakeUndumped() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloAlert> out(undumped_.begin(), undumped_.end());
  undumped_.clear();
  return out;
}

std::string BuildFlightRecord(const std::vector<SloAlert>& alerts,
                              const std::vector<IntervalRecord>& intervals,
                              const TelemetrySnapshot& snapshot) {
  std::string out = "{\"alerts\":[";
  bool first = true;
  for (const SloAlert& a : alerts) {
    if (!first) {
      out += ',';
    }
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"at\":%lld,\"interval_seq\":%llu,\"type\":\"%s\","
                  "\"burn_rate\":%.3f,\"window_completions\":%llu,"
                  "\"window_violations\":%llu}",
                  static_cast<long long>(a.at),
                  static_cast<unsigned long long>(a.interval_seq),
                  a.type_name.c_str(), a.burn_rate,
                  static_cast<unsigned long long>(a.window_completions),
                  static_cast<unsigned long long>(a.window_violations));
    out += buf;
  }
  out += "],\"intervals_csv\":\"";
  // The CSV block is embedded as one JSON string (newlines escaped).
  for (const char c : IntervalsToCsv(intervals, snapshot.type_names)) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\",\"snapshot\":";
  out += snapshot.ToJson();
  out += '}';
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const int close_rc = std::fclose(f);
  return written == contents.size() && close_rc == 0;
}

}  // namespace psp
