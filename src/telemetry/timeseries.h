// Windowed time-series recorder: continuously folds per-type arrival /
// completion / drop counts and windowed slowdown percentiles into a bounded
// ring of fixed-width intervals, so DARC's *dynamics* (Fig. 7 convergence,
// reservation shifts at profiler window boundaries) are observable, not just
// its end state.
//
// Hot-path cost model (the dispatcher budget is ~100 ns/request, §4.3.3):
//   * Counters are CUMULATIVE and single-writer: an increment is one relaxed
//     load + one relaxed store (no RMW, no reset — interval values are
//     computed as deltas against the previous close, Prometheus-style), so a
//     RecordArrival/RecordCompletion pair costs a few nanoseconds.
//   * The windowed slowdown histogram is fed 1-in-K completions
//     (TimeSeriesConfig::slowdown_sample_every; sims use 1 for exactness).
//   * The SLO violation check is one multiply + compare (no division).
//   * Interval close is amortised: the writer performs one predictable
//     `now >= interval_end` branch per record and only pays the close path
//     (delta extraction + percentile walk, microseconds) at a rollover.
// bench/micro_timeseries gates the enabled-vs-disabled dispatch-loop delta
// at < 5%.
//
// Clock discipline: intervals close on the *writer's* clock (inline at the
// first record past the boundary) and additionally whenever the engine calls
// Roll() — a sampler thread in the threaded runtime, pre-scheduled
// virtual-time events in the simulator. Everything the simulator feeds in is
// virtual time, so its series are bit-deterministic for a fixed seed.
#ifndef PSP_SRC_TELEMETRY_TIMESERIES_H_
#define PSP_SRC_TELEMETRY_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/telemetry/snapshot.h"

namespace psp {

struct TimeSeriesConfig {
  bool enabled = false;
  // Interval width. The first record/roll aligns the grid to
  // floor(now / interval) * interval, so runtime series line up on wall-clock
  // boundaries and sim series on virtual-time boundaries.
  Nanos interval = 10 * kMillisecond;
  // Closed intervals retained (oldest dropped first).
  size_t capacity = 512;
  // Feed the windowed slowdown histogram 1-in-N completions; 1 = every
  // completion (use in the simulator, where determinism beats cheapness),
  // 0 = never (counts only).
  uint32_t slowdown_sample_every = 16;

  // Empty string = valid; otherwise a description of the problem.
  std::string Validate() const;
};

// Fixed-size log-linear histogram with single-writer relaxed-atomic slots.
// Values up to 32 are exact; larger values have ~3% relative precision
// (coarser than common/histogram.h's 0.05% — interval percentiles are plot
// fodder, and the fixed 1 KiB footprint keeps the per-type cost flat).
// Cumulative by design: it is never reset; readers diff slot counts against
// a previous copy to get windowed distributions.
class SlotHistogram {
 public:
  static constexpr uint32_t kSubBucketBits = 5;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;
  // Tiers cover the rest of the int64 range, kSubBuckets/2 slots each.
  static constexpr size_t kSlots =
      kSubBuckets + (64 - kSubBucketBits) * (kSubBuckets / 2);

  static size_t IndexFor(uint64_t value);
  // Highest value mapping to slot `idx` (representative for percentiles).
  static int64_t ValueFor(size_t idx);

  // Single writer.
  void Record(int64_t value) {
    const size_t idx = IndexFor(value < 0 ? 0 : static_cast<uint64_t>(value));
    slots_[idx].store(slots_[idx].load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  }

  // Copies all cumulative slot counts into `out[kSlots]`; any thread.
  void CopyTo(uint64_t* out) const {
    for (size_t i = 0; i < kSlots; ++i) {
      out[i] = slots_[i].load(std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<uint64_t> slots_[kSlots] = {};
};

// Percentile over a delta-count array produced by diffing two
// SlotHistogram::CopyTo snapshots. p in [0, 100]; 0 when the window is empty.
int64_t DeltaPercentile(const uint64_t* delta, size_t slots, double p);

class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(TimeSeriesConfig config);
  ~TimeSeriesRecorder();

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  // --- Registration (before traffic) ---------------------------------------

  // Adds a per-type series; returns its dense slot. `type_key` is the
  // engine's trace type key (TypeIndex / wire id) echoed back in
  // TypeIntervalStats::type.
  size_t RegisterSeries(uint32_t type_key, std::string name);
  // Completions slower than `slowdown` (a multiple of service time) count as
  // SLO violations for this series. 0 disables violation counting.
  void SetSlowdownTarget(size_t slot, double slowdown);
  // Called at every interval close (under the roll lock) so the engine can
  // stamp gauges: queue depths, reserved shares, worker busy fractions. Must
  // not call back into the recorder.
  void set_gauge_sampler(std::function<void(IntervalRecord*)> sampler);

  size_t num_series() const { return series_.size(); }
  const std::string& name_of(size_t slot) const { return series_[slot]->name; }
  const TimeSeriesConfig& config() const { return config_; }

  // --- Hot path (single writer: the dispatching thread) --------------------

  void RecordArrival(size_t slot, Nanos now) {
    MaybeRoll(now);
    Bump(&series_[slot]->arrivals);
  }

  void RecordDrop(size_t slot, Nanos now) {
    MaybeRoll(now);
    Bump(&series_[slot]->drops);
  }

  // `latency` is the end-to-end sojourn, `service` the request's service
  // time; slowdown = latency / service feeds the windowed histogram (in
  // milli units) and the violation check. Inline: this sits on the
  // dispatcher's completion-absorb path (bench/micro_timeseries gates the
  // full recorder delta at < 5% of the dispatch loop).
  void RecordCompletion(size_t slot, Nanos latency, Nanos service, Nanos now) {
    MaybeRoll(now);
    Series& s = *series_[slot];
    Bump(&s.completions);
    if (latency < 0) {
      latency = 0;
    }
    const int64_t target = s.target_milli.load(std::memory_order_relaxed);
    if (target > 0 && service > 0 && latency * 1000 > target * service) {
      Bump(&s.violations);
    }
    if (config_.slowdown_sample_every != 0 && --s.sample_countdown == 0) {
      s.sample_countdown = config_.slowdown_sample_every;
      RecordSlowdownSample(&s, latency, service);
    }
  }

  // Deadline tier: a completion that landed past its deadline.
  void RecordDeadlineMiss(size_t slot, Nanos now) {
    MaybeRoll(now);
    Bump(&series_[slot]->deadline_misses);
  }

  // Deadline tier: an admission-control shed (predicted miss at enqueue).
  void RecordDeadlineShed(size_t slot, Nanos now) {
    MaybeRoll(now);
    Bump(&series_[slot]->deadline_sheds);
  }

  // Counts a reservation update into the current interval.
  void NoteReservationUpdate(Nanos now) {
    MaybeRoll(now);
    Bump(&reservation_updates_);
  }

  // --- Interval close / read side ------------------------------------------

  // Closes every whole interval with end <= now; with `flush` also closes
  // the in-progress partial interval (end = now). Returns the records closed
  // by this call (they are also retained in the history ring). Safe from any
  // thread; engines drive it from a sampler thread (runtime) or virtual-time
  // events (sim) as a watchdog for idle stretches.
  std::vector<IntervalRecord> Roll(Nanos now, bool flush = false);

  // Closed intervals, oldest first (up to config().capacity).
  std::vector<IntervalRecord> History() const;
  // The most recent `n` closed intervals, oldest first.
  std::vector<IntervalRecord> Recent(size_t n) const;
  uint64_t intervals_closed() const {
    return intervals_closed_.load(std::memory_order_relaxed);
  }

  // CSV export of History(): one row per (interval, type), a stable schema
  // for determinism tests and offline plotting (docs/OBSERVABILITY.md).
  std::string ToCsv() const;

 private:
  struct Series {
    uint32_t type_key = 0;
    uint32_t sample_countdown = 1;  // writer-private 1-in-K cadence
    // Cumulative, single-writer (see file header). Kept together with the
    // violation threshold ahead of the multi-KB histogram so the whole
    // per-completion working set is a cache line or two.
    std::atomic<uint64_t> arrivals{0};
    std::atomic<uint64_t> completions{0};
    std::atomic<uint64_t> drops{0};
    std::atomic<uint64_t> violations{0};
    std::atomic<uint64_t> slowdown_samples{0};
    std::atomic<uint64_t> deadline_misses{0};
    std::atomic<uint64_t> deadline_sheds{0};
    // Violation threshold in milli units; 0 = disabled. Checked as
    // latency * 1000 > target_milli * service (one multiply, no division).
    std::atomic<int64_t> target_milli{0};
    std::string name;
    SlotHistogram slowdown;  // milli units (1000 = 1.0x)
    // Close-side state (guarded by mutex_): values at the previous close.
    uint64_t prev_arrivals = 0;
    uint64_t prev_completions = 0;
    uint64_t prev_drops = 0;
    uint64_t prev_violations = 0;
    uint64_t prev_samples = 0;
    uint64_t prev_deadline_misses = 0;
    uint64_t prev_deadline_sheds = 0;
    std::unique_ptr<uint64_t[]> prev_slots;  // [SlotHistogram::kSlots]
  };

  static void Bump(std::atomic<uint64_t>* v) {
    v->store(v->load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  }

  // Cold path of RecordCompletion (1-in-K): the division + histogram store
  // stay out of line so the common case inlines to a handful of loads.
  void RecordSlowdownSample(Series* s, Nanos latency, Nanos service);

  // One predictable branch on the hot path; the close runs off it the first
  // time a record lands past the current interval's end.
  void MaybeRoll(Nanos now) {
    if (now >= interval_end_.load(std::memory_order_relaxed)) {
      Roll(now);
    }
  }

  void RollLocked(Nanos now, bool flush, std::vector<IntervalRecord>* closed);
  void CloseIntervalLocked(Nanos end);

  TimeSeriesConfig config_;
  std::vector<std::unique_ptr<Series>> series_;
  std::atomic<uint64_t> reservation_updates_{0};
  uint64_t prev_reservation_updates_ = 0;

  // The writer reads interval_end_ relaxed on every record; rolls publish a
  // new value under mutex_. Starts at 0 so the very first record (virtual
  // time included, which begins at 0) takes the roll path and pins the grid.
  std::atomic<Nanos> interval_end_{0};

  mutable std::mutex mutex_;
  bool aligned_ = false;
  Nanos interval_start_ = 0;
  std::deque<IntervalRecord> history_;
  std::atomic<uint64_t> intervals_closed_{0};
  std::function<void(IntervalRecord*)> gauge_sampler_;
  std::function<void(const IntervalRecord&)> on_interval_;

 public:
  // Invoked (under the roll lock) for every closed interval, after gauges are
  // stamped — the SLO monitor's feed. Must not call back into the recorder.
  void set_on_interval(std::function<void(const IntervalRecord&)> fn) {
    on_interval_ = std::move(fn);
  }
};

// Serialises a span of interval records to the same CSV schema as
// TimeSeriesRecorder::ToCsv (used by flight-recorder dumps).
std::string IntervalsToCsv(const std::vector<IntervalRecord>& intervals,
                           const std::map<uint32_t, std::string>& type_names);

}  // namespace psp

#endif  // PSP_SRC_TELEMETRY_TIMESERIES_H_
