// TelemetrySnapshot: the single introspection surface for both execution
// engines. A snapshot is a point-in-time, self-contained value — named
// counters/gauges/histograms plus the sampled lifecycle traces — assembled
// by Persephone::telemetry_snapshot() (threaded runtime) and
// ClusterEngine::telemetry_snapshot() (simulator). The legacy
// Persephone::stats() / DarcScheduler::stats() accessors are thin shims over
// the same counters.
//
// Exporters: ToTable() (human-readable), ToJson() (machine-readable), and
// StageReport() — the per-type latency breakdown (queueing vs. service vs.
// channel time) that backs the paper's §5 per-type tail-latency analysis.
#ifndef PSP_SRC_TELEMETRY_SNAPSHOT_H_
#define PSP_SRC_TELEMETRY_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/time.h"
#include "src/telemetry/lifecycle.h"

namespace psp {

// A timestamped annotation emitted by a subsystem (e.g. the scheduler's
// reservation changes). Bounded; oldest entries are dropped first.
struct TelemetryEvent {
  Nanos at = 0;
  std::string what;
};

// Per-type latency decomposition derived from the sampled lifecycle traces.
// Span definitions (consecutive, so they sum to `total` when every stage was
// stamped):
//   preprocess = rx → enqueued        (parse + classify + typed-queue entry)
//   queueing   = enqueued → dispatched (typed-queue wait; DARC's target)
//   handoff    = dispatched → handler_start (dispatcher→worker channel)
//   service    = handler_start → handler_end (application handler)
//   reply      = handler_end → tx      (response formatting + TX)
struct TypeStageBreakdown {
  std::string name;
  uint64_t traces = 0;
  Histogram preprocess;
  Histogram queueing;
  Histogram handoff;
  Histogram service;
  Histogram reply;
  Histogram total;  // rx → tx
};

struct TelemetrySnapshot {
  // Monotonic counts, hierarchically named ("scheduler.dispatched").
  std::map<std::string, uint64_t> counters;
  // Point-in-time values ("worker.0.busy_permille").
  std::map<std::string, int64_t> gauges;
  // Value distributions recorded through the registry.
  std::map<std::string, Histogram> histograms;
  // Sampled per-request lifecycle records (merged across all rings).
  std::vector<RequestTrace> traces;
  // Subsystem event annotations (reservation changes, resizes, ...).
  std::vector<TelemetryEvent> events;
  // Maps RequestTrace::type keys to human-readable names.
  std::map<uint32_t, std::string> type_names;

  uint64_t counter(const std::string& name, uint64_t fallback = 0) const;
  int64_t gauge(const std::string& name, int64_t fallback = 0) const;

  // Folds `other` into this snapshot: counters add, gauges take the other's
  // value, histograms merge, traces/events/type_names append.
  void Merge(const TelemetrySnapshot& other);

  // Aggregates the sampled traces into per-type stage histograms, keyed by
  // the trace type key. Spans with missing stamps are skipped.
  std::map<uint32_t, TypeStageBreakdown> StageBreakdown() const;

  // --- Exporters ------------------------------------------------------------
  std::string ToTable() const;
  std::string ToJson() const;
  std::string StageReport() const;
};

}  // namespace psp

#endif  // PSP_SRC_TELEMETRY_SNAPSHOT_H_
