// TelemetrySnapshot: the single introspection surface for both execution
// engines. A snapshot is a point-in-time, self-contained value — named
// counters/gauges/histograms plus the sampled lifecycle traces — assembled
// by Persephone::telemetry_snapshot() (threaded runtime) and
// ClusterEngine::telemetry_snapshot() (simulator).
//
// Exporters: ToTable() (human-readable), ToJson() (machine-readable), and
// StageReport() — the per-type latency breakdown (queueing vs. service vs.
// channel time) that backs the paper's §5 per-type tail-latency analysis.
#ifndef PSP_SRC_TELEMETRY_SNAPSHOT_H_
#define PSP_SRC_TELEMETRY_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/time.h"
#include "src/telemetry/lifecycle.h"
#include "src/telemetry/timeledger.h"

namespace psp {

// A timestamped annotation emitted by a subsystem (e.g. the scheduler's
// reservation changes). Bounded; oldest entries are dropped first.
struct TelemetryEvent {
  Nanos at = 0;
  std::string what;
};

// One type's share in a reservation. `type` is the engine's trace type key
// (dense TypeIndex); `name` makes the record self-describing across engines.
struct ReservationShare {
  uint32_t type = 0;
  std::string name;
  uint32_t reserved_workers = 0;
};

// A structured DARC reservation update (Algorithm 2 output applied by the
// scheduler). Unlike the free-text TelemetryEvent the scheduler also emits,
// this carries machine-readable shares so figures can plot convergence.
struct ReservationUpdate {
  Nanos at = 0;
  uint64_t seq = 0;     // scheduler's reservation_updates ordinal (1-based)
  uint64_t window = 0;  // profiler windows completed when it was applied
  std::vector<ReservationShare> shares;
};

// Per-type stats over one time-series interval. Counts are interval deltas;
// gauges (queue_depth, reserved_workers) are sampled at interval close, -1
// when the engine provided no sampler. Slowdown percentiles are in milli
// units (1000 = 1.0x, matching sim/metrics.h's kSlowdownScale) and come from
// the windowed histogram; 0 when no completion was sampled in the interval.
struct TypeIntervalStats {
  uint32_t type = 0;  // engine type key, resolvable via type_names
  uint64_t arrivals = 0;
  uint64_t completions = 0;
  uint64_t drops = 0;
  uint64_t slo_violations = 0;
  uint64_t deadline_misses = 0;  // completions past their deadline
  uint64_t deadline_sheds = 0;   // admission-control drops
  int64_t queue_depth = -1;
  int64_t reserved_workers = -1;
  uint64_t slowdown_samples = 0;
  int64_t slowdown_p50_milli = 0;
  int64_t slowdown_p99_milli = 0;
  int64_t slowdown_p999_milli = 0;
};

// One closed interval of the time-series recorder.
struct IntervalRecord {
  uint64_t seq = 0;  // 0-based, monotonically increasing across the run
  Nanos start = 0;
  Nanos end = 0;
  uint64_t reservation_updates = 0;  // updates applied within the interval
  double arrival_rate_rps = 0;       // all types combined
  double completion_rate_rps = 0;
  std::vector<TypeIntervalStats> types;  // recorder slot order
  // Per-worker busy fraction over the interval, in permille; empty when the
  // engine provided no sampler (e.g. a bare recorder in unit tests). Derived
  // from the time-provenance ledger (busy + steal over wall) when the engine
  // carries one.
  std::vector<int64_t> worker_busy_permille;
  // Fleet-of-workers time decomposition over the interval, indexed by
  // WorkerTimeState and summed across all worker slots, in permille of
  // aggregate wall time; empty when the engine has no ledger.
  std::vector<int64_t> worker_state_permille;
};

// Per-type deadline-tier totals exported by the scheduler (src/sched/):
// cumulative misses and admission-control sheds, plus the dispatch-time
// slack distribution as a sum/count pair (renders as a Prometheus summary).
// slack_sum_nanos can be negative — dispatches past the deadline contribute
// negative slack. budget_nanos is the type's resolved relative budget
// (0 = no deadline configured for the type).
struct DeadlineTypeStats {
  uint32_t type = 0;  // engine type key, resolvable via type_names
  std::string name;
  uint64_t missed = 0;
  uint64_t shed = 0;
  int64_t slack_sum_nanos = 0;
  uint64_t slack_samples = 0;
  int64_t budget_nanos = 0;
};

// Per-type latency decomposition derived from the sampled lifecycle traces.
// Span definitions (consecutive, so they sum to `total` when every stage was
// stamped):
//   preprocess = rx → enqueued        (parse + classify + typed-queue entry)
//   queueing   = enqueued → dispatched (typed-queue wait; DARC's target)
//   handoff    = dispatched → handler_start (dispatcher→worker channel)
//   service    = handler_start → handler_end (application handler)
//   reply      = handler_end → tx      (response formatting + TX)
struct TypeStageBreakdown {
  std::string name;
  uint64_t traces = 0;
  Histogram preprocess;
  Histogram queueing;
  Histogram handoff;
  Histogram service;
  Histogram reply;
  Histogram total;  // rx → tx
};

struct TelemetrySnapshot {
  // Monotonic counts, hierarchically named ("scheduler.dispatched").
  std::map<std::string, uint64_t> counters;
  // Point-in-time values ("worker.0.busy_permille").
  std::map<std::string, int64_t> gauges;
  // Value distributions recorded through the registry.
  std::map<std::string, Histogram> histograms;
  // Sampled per-request lifecycle records (merged across all rings).
  std::vector<RequestTrace> traces;
  // Subsystem event annotations (reservation changes, resizes, ...).
  std::vector<TelemetryEvent> events;
  // Closed time-series intervals (oldest first); empty when the recorder is
  // disabled. See src/telemetry/timeseries.h.
  std::vector<IntervalRecord> timeseries;
  // Structured DARC reservation updates in application order.
  std::vector<ReservationUpdate> reservation_updates;
  // Deadline-tier per-type totals; empty when the deadline tier is off.
  std::vector<DeadlineTypeStats> deadline_types;
  // Maps RequestTrace::type keys to human-readable names.
  std::map<uint32_t, std::string> type_names;
  // Cumulative worker time-provenance totals (one record per worker slot
  // plus the dispatcher pseudo-slot); empty when the engine has no ledger.
  // See src/telemetry/timeledger.h for the state taxonomy.
  std::vector<WorkerTimeRecord> worker_time;

  uint64_t counter(const std::string& name, uint64_t fallback = 0) const;
  int64_t gauge(const std::string& name, int64_t fallback = 0) const;

  // Folds `other` into this snapshot: counters add, gauges take the other's
  // value, histograms merge, traces/events/timeseries/reservation_updates/
  // type_names append.
  void Merge(const TelemetrySnapshot& other);

  // Aggregates the sampled traces into per-type stage histograms, keyed by
  // the trace type key. Spans with missing stamps are skipped.
  std::map<uint32_t, TypeStageBreakdown> StageBreakdown() const;

  // --- Exporters ------------------------------------------------------------
  std::string ToTable() const;
  std::string ToJson() const;
  std::string StageReport() const;
};

}  // namespace psp

#endif  // PSP_SRC_TELEMETRY_SNAPSHOT_H_
