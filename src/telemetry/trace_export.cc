#include "src/telemetry/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace psp {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One pre-rendered trace event: the sort key (ns) plus everything after
// `"ts":<value>` in the final JSON object. Rendering ts last keeps the sort
// stable and the formatting in exactly one place.
struct PendingEvent {
  Nanos at = 0;
  int order = 0;  // tie-break so b < X < e < i/C at identical ts
  std::string tail;
};

std::string TypeName(const TelemetrySnapshot& snap, uint32_t type) {
  const auto it = snap.type_names.find(type);
  return it != snap.type_names.end() ? it->second
                                     : "type-" + std::to_string(type);
}

double ToMicros(Nanos at, Nanos origin) {
  // Events stamped before the origin (e.g. a pre-run annotation at 0 while
  // the runtime clock is TSC-based) clamp to 0 so no track goes backwards.
  return at <= origin ? 0.0 : static_cast<double>(at - origin) / 1000.0;
}

}  // namespace

std::string ExportCatapultTrace(const TelemetrySnapshot& snapshot,
                                const TraceExportOptions& options) {
  const uint32_t pid = options.pid;

  // Resolve the clock origin: the earliest timestamp anywhere, so exported
  // microsecond values stay small (the runtime's TSC epoch is arbitrary).
  Nanos origin = options.origin;
  if (origin == 0) {
    origin = INT64_MAX;
    for (const RequestTrace& t : snapshot.traces) {
      for (const Nanos s : t.stamp) {
        if (s > 0 && s < origin) {
          origin = s;
        }
      }
    }
    for (const TelemetryEvent& e : snapshot.events) {
      if (e.at > 0 && e.at < origin) {
        origin = e.at;
      }
    }
    for (const IntervalRecord& r : snapshot.timeseries) {
      if (r.start > 0 && r.start < origin) {
        origin = r.start;
      }
    }
    for (const ReservationUpdate& u : snapshot.reservation_updates) {
      if (u.at > 0 && u.at < origin) {
        origin = u.at;
      }
    }
    if (origin == INT64_MAX) {
      origin = 0;
    }
  }

  std::vector<PendingEvent> events;
  events.reserve(snapshot.traces.size() * 3 + snapshot.events.size() +
                 snapshot.timeseries.size() * 4);
  char buf[768];

  uint32_t max_worker = 0;
  for (const RequestTrace& t : snapshot.traces) {
    if (t.worker > max_worker) {
      max_worker = t.worker;
    }

    const Nanos start = t.At(TraceStage::kHandlerStart);
    const Nanos end = t.At(TraceStage::kHandlerEnd);
    const std::string name = TypeName(snapshot, t.type);
    if (start > 0 && end >= start) {
      // Service slice on the worker's track, with the stage decomposition
      // (matching snapshot.h's TypeStageBreakdown spans) as args.
      std::snprintf(
          buf, sizeof(buf),
          ",\"dur\":%.3f,\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"name\":\"%s\","
          "\"cat\":\"request\",\"args\":{\"request_id\":%llu,\"type\":%u,"
          "\"preprocess_ns\":%lld,\"queueing_ns\":%lld,\"handoff_ns\":%lld,"
          "\"service_ns\":%lld,\"reply_ns\":%lld,\"total_ns\":%lld}}",
          static_cast<double>(end - start) / 1000.0, pid, 1 + t.worker,
          JsonEscape(name).c_str(),
          static_cast<unsigned long long>(t.request_id), t.type,
          static_cast<long long>(
              t.Span(TraceStage::kRx, TraceStage::kEnqueued)),
          static_cast<long long>(
              t.Span(TraceStage::kEnqueued, TraceStage::kDispatched)),
          static_cast<long long>(
              t.Span(TraceStage::kDispatched, TraceStage::kHandlerStart)),
          static_cast<long long>(
              t.Span(TraceStage::kHandlerStart, TraceStage::kHandlerEnd)),
          static_cast<long long>(
              t.Span(TraceStage::kHandlerEnd, TraceStage::kTx)),
          static_cast<long long>(t.Span(TraceStage::kRx, TraceStage::kTx)));
      events.push_back(PendingEvent{start, 1, buf});
    }

    if (options.include_async_spans) {
      const Nanos rx = t.At(TraceStage::kRx);
      const Nanos tx = t.At(TraceStage::kTx);
      if (rx > 0 && tx >= rx) {
        std::snprintf(buf, sizeof(buf),
                      ",\"ph\":\"b\",\"pid\":%u,\"tid\":0,\"name\":\"%s\","
                      "\"cat\":\"lifecycle\",\"id\":\"%llx\"}",
                      pid, JsonEscape(name).c_str(),
                      static_cast<unsigned long long>(t.request_id));
        events.push_back(PendingEvent{rx, 0, buf});
        std::snprintf(buf, sizeof(buf),
                      ",\"ph\":\"e\",\"pid\":%u,\"tid\":0,\"name\":\"%s\","
                      "\"cat\":\"lifecycle\",\"id\":\"%llx\"}",
                      pid, JsonEscape(name).c_str(),
                      static_cast<unsigned long long>(t.request_id));
        events.push_back(PendingEvent{tx, 2, buf});
      }
    }
  }

  // Scheduler / subsystem annotations as global instant events.
  for (const TelemetryEvent& e : snapshot.events) {
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"i\",\"pid\":%u,\"tid\":0,\"name\":\"%s\","
                  "\"cat\":\"scheduler\",\"s\":\"g\"}",
                  pid, JsonEscape(e.what).c_str());
    events.push_back(PendingEvent{e.at, 3, buf});
  }

  if (options.include_counters) {
    // Reservation shares at each update: the DARC convergence counter track.
    for (const ReservationUpdate& u : snapshot.reservation_updates) {
      for (const ReservationShare& s : u.shares) {
        std::snprintf(buf, sizeof(buf),
                      ",\"ph\":\"C\",\"pid\":%u,\"tid\":0,"
                      "\"name\":\"reserved_cores:%s\",\"args\":{\"cores\":%u}}",
                      pid, JsonEscape(s.name).c_str(), s.reserved_workers);
        events.push_back(PendingEvent{u.at, 3, buf});
      }
    }
    // Interval-close samples: queue depth + windowed p99 slowdown per type.
    for (const IntervalRecord& r : snapshot.timeseries) {
      for (const TypeIntervalStats& t : r.types) {
        const std::string name =
            JsonEscape(TypeName(snapshot, t.type));
        if (t.queue_depth >= 0) {
          std::snprintf(buf, sizeof(buf),
                        ",\"ph\":\"C\",\"pid\":%u,\"tid\":0,"
                        "\"name\":\"queue_depth:%s\",\"args\":{\"depth\":%lld}}",
                        pid, name.c_str(),
                        static_cast<long long>(t.queue_depth));
          events.push_back(PendingEvent{r.end, 3, buf});
        }
        if (t.slowdown_samples > 0) {
          std::snprintf(
              buf, sizeof(buf),
              ",\"ph\":\"C\",\"pid\":%u,\"tid\":0,"
              "\"name\":\"p99_slowdown_milli:%s\",\"args\":{\"milli\":%lld}}",
              pid, name.c_str(),
              static_cast<long long>(t.slowdown_p99_milli));
          events.push_back(PendingEvent{r.end, 3, buf});
        }
      }
      // Time-ledger decomposition: one counter track per worker-time state,
      // the aggregate share (permille of worker wall time) each interval —
      // reserved_idle rising as DARC applies reservations is the paper's
      // "ideal idling" made visible on the timeline.
      for (size_t s = 0; s < r.worker_state_permille.size() &&
                         s < kNumWorkerTimeStates;
           ++s) {
        std::snprintf(
            buf, sizeof(buf),
            ",\"ph\":\"C\",\"pid\":%u,\"tid\":0,"
            "\"name\":\"worker_time_permille:%s\","
            "\"args\":{\"permille\":%lld}}",
            pid, WorkerTimeStateName(static_cast<WorkerTimeState>(s)),
            static_cast<long long>(r.worker_state_permille[s]));
        events.push_back(PendingEvent{r.end, 3, buf});
      }
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const PendingEvent& a, const PendingEvent& b) {
                     if (a.at != b.at) {
                       return a.at < b.at;
                     }
                     return a.order < b.order;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Metadata first (ph "M" names the process and every track).
  std::snprintf(buf, sizeof(buf),
                "{\"ts\":0,\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
                "\"name\":\"process_name\",\"args\":{\"name\":"
                "\"persephone\"}}",
                pid);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",{\"ts\":0,\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
                "\"name\":\"thread_name\",\"args\":{\"name\":\"scheduler\"}}",
                pid);
  out += buf;
  for (uint32_t w = 0; w <= max_worker; ++w) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"ts\":0,\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":"
                  "\"worker %u\"}}",
                  pid, 1 + w, w);
    out += buf;
  }
  first = false;

  for (const PendingEvent& e : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"ts\":%.3f",
                  ToMicros(e.at, origin));
    out += buf;
    out += e.tail;
  }
  out += "]}";
  return out;
}

}  // namespace psp
