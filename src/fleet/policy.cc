#include "src/fleet/policy.h"

#include <cassert>

namespace psp {
namespace {

class RandomPolicy final : public FleetDispatchPolicy {
 public:
  explicit RandomPolicy(uint32_t n) : n_(n) {}
  uint32_t Pick(uint32_t, Rng& rng, const FleetDepths&) override {
    return static_cast<uint32_t>(rng.NextBounded(n_));
  }
  std::string Name() const override { return "random"; }

 private:
  uint32_t n_;
};

class RssHashPolicy final : public FleetDispatchPolicy {
 public:
  explicit RssHashPolicy(uint32_t n) : n_(n) {}
  uint32_t Pick(uint32_t flow_hash, Rng&, const FleetDepths&) override {
    // Multiply-shift range reduction: uses the high hash bits, unlike `%`,
    // which keys off the low bits RSS hashes tend to skew.
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(flow_hash) * n_) >> 32);
  }
  std::string Name() const override { return "rss"; }

 private:
  uint32_t n_;
};

class RoundRobinPolicy final : public FleetDispatchPolicy {
 public:
  explicit RoundRobinPolicy(uint32_t n) : n_(n) {}
  uint32_t Pick(uint32_t, Rng&, const FleetDepths&) override {
    const uint32_t pick = next_;
    next_ = next_ + 1 == n_ ? 0 : next_ + 1;
    return pick;
  }
  std::string Name() const override { return "rr"; }

 private:
  uint32_t n_;
  uint32_t next_ = 0;
};

class PowerOfTwoPolicy final : public FleetDispatchPolicy {
 public:
  explicit PowerOfTwoPolicy(uint32_t n) : n_(n) {}
  uint32_t Pick(uint32_t, Rng& rng, const FleetDepths& depths) override {
    if (n_ == 1) {
      return 0;
    }
    const uint32_t a = static_cast<uint32_t>(rng.NextBounded(n_));
    // Second probe distinct from the first (sample without replacement).
    uint32_t b = static_cast<uint32_t>(rng.NextBounded(n_ - 1));
    if (b >= a) {
      ++b;
    }
    // Ties go to the first probe: deterministic given the rng draws.
    return depths.Depth(b) < depths.Depth(a) ? b : a;
  }
  std::string Name() const override { return "po2c"; }
  bool uses_depths() const override { return true; }

 private:
  uint32_t n_;
};

class ShortestQueuePolicy final : public FleetDispatchPolicy {
 public:
  explicit ShortestQueuePolicy(uint32_t n) : n_(n) {}
  uint32_t Pick(uint32_t, Rng&, const FleetDepths& depths) override {
    // Centralized tracker: full argmin over the (bounded-staleness) table,
    // ties to the lowest server index.
    uint32_t best = 0;
    for (uint32_t s = 1; s < n_; ++s) {
      if (depths.Depth(s) < depths.Depth(best)) {
        best = s;
      }
    }
    return best;
  }
  std::string Name() const override { return "shortest-q"; }
  bool uses_depths() const override { return true; }

 private:
  uint32_t n_;
};

}  // namespace

FleetPolicyConfig FleetPolicyConfig::Default(FleetPolicyKind kind) {
  FleetPolicyConfig config;
  config.kind = kind;
  config.depth_staleness =
      kind == FleetPolicyKind::kShortestQueue ? 10 * kMicrosecond : 0;
  return config;
}

std::string FleetPolicyConfig::Validate() const {
  if (depth_staleness < 0) {
    return "fleet policy: depth_staleness must be >= 0";
  }
  return "";
}

std::string FleetPolicyName(FleetPolicyKind kind) {
  switch (kind) {
    case FleetPolicyKind::kRandom:
      return "random";
    case FleetPolicyKind::kRssHash:
      return "rss";
    case FleetPolicyKind::kRoundRobin:
      return "rr";
    case FleetPolicyKind::kPowerOfTwo:
      return "po2c";
    case FleetPolicyKind::kShortestQueue:
      return "shortest-q";
  }
  return "unknown";
}

bool ParseFleetPolicy(const std::string& name, FleetPolicyKind* out) {
  const struct {
    const char* name;
    FleetPolicyKind kind;
  } table[] = {
      {"random", FleetPolicyKind::kRandom},
      {"rss", FleetPolicyKind::kRssHash},
      {"rr", FleetPolicyKind::kRoundRobin},
      {"round-robin", FleetPolicyKind::kRoundRobin},
      {"po2c", FleetPolicyKind::kPowerOfTwo},
      {"shortest-q", FleetPolicyKind::kShortestQueue},
      {"shortest-queue", FleetPolicyKind::kShortestQueue},
  };
  for (const auto& entry : table) {
    if (name == entry.name) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

std::unique_ptr<FleetDispatchPolicy> FleetDispatchPolicy::Create(
    const FleetPolicyConfig& config, uint32_t num_servers) {
  assert(num_servers > 0);
  switch (config.kind) {
    case FleetPolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(num_servers);
    case FleetPolicyKind::kRssHash:
      return std::make_unique<RssHashPolicy>(num_servers);
    case FleetPolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>(num_servers);
    case FleetPolicyKind::kPowerOfTwo:
      return std::make_unique<PowerOfTwoPolicy>(num_servers);
    case FleetPolicyKind::kShortestQueue:
      return std::make_unique<ShortestQueuePolicy>(num_servers);
  }
  return nullptr;
}

}  // namespace psp
