// FleetSnapshot: the fleet-wide introspection surface. One per-server
// TelemetrySnapshot per Perséphone instance plus the fleet dispatcher's own
// counters, merged on demand (TelemetrySnapshot::Merge / Histogram::Merge)
// into the rack-level view.
//
// Exporters:
//   * ToJson()       — the /fleet.json admin payload: per-server snapshots
//                      under "servers" and the merged rollup under "merged".
//   * ToPrometheus() — exposition-format page where every per-server sample
//                      carries a server="N" label, so one scrape of the fleet
//                      admin port yields the whole rack with the standard
//                      aggregation story (sum by (le/type), max by (server)).
#ifndef PSP_SRC_FLEET_FLEET_SNAPSHOT_H_
#define PSP_SRC_FLEET_FLEET_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/telemetry/snapshot.h"

namespace psp {

struct FleetSnapshot {
  // Inter-server policy name ("random", "rss", "rr", "po2c", "shortest-q").
  std::string policy;
  // Fleet-dispatcher counters (requests routed, per-server dispatch counts,
  // depth-table refreshes) and gauges (outstanding per server).
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  // One unified snapshot per server, index = server id.
  std::vector<TelemetrySnapshot> servers;

  uint32_t num_servers() const {
    return static_cast<uint32_t>(servers.size());
  }

  // Rack-level rollup: all per-server snapshots folded into one (counters
  // add, histograms merge; traces/events/timeseries append in server order).
  TelemetrySnapshot Merged() const;

  // {"policy":...,"num_servers":N,"counters":{...},"gauges":{...},
  //  "merged":{...},"servers":[{...},...]} — byte-deterministic for a
  // deterministic fleet run (backs the CI same-seed determinism smoke).
  std::string ToJson() const;

  // Prometheus text exposition 0.0.4. Fleet-level scalars (psp_fleet_servers,
  // dispatcher counters) are unlabelled; per-server counters/gauges/histogram
  // summaries carry server="N".
  std::string ToPrometheus() const;
};

}  // namespace psp

#endif  // PSP_SRC_FLEET_FLEET_SNAPSHOT_H_
