#include "src/fleet/fleet_sim.h"

#include <sys/stat.h>

#include <cassert>
#include <cerrno>
#include <cmath>

#include "src/telemetry/slo.h"

namespace psp {

std::string FleetSimConfig::Validate() const {
  if (num_servers == 0) {
    return "fleet: num_servers must be >= 1";
  }
  if (server.num_workers == 0) {
    return "fleet: server.num_workers must be >= 1";
  }
  if (rate_rps <= 0) {
    return "fleet: rate_rps must be > 0";
  }
  if (duration <= 0) {
    return "fleet: duration must be > 0";
  }
  if (warmup_fraction < 0 || warmup_fraction >= 1) {
    return "fleet: warmup_fraction must be in [0, 1)";
  }
  if (net_one_way < 0 || dispatch_cost < 0) {
    return "fleet: network/dispatch costs must be >= 0";
  }
  return policy.Validate();
}

FleetSimulation::FleetSimulation(WorkloadSpec workload, FleetSimConfig config,
                                 PolicyFactory factory)
    : config_(config),
      workload_(std::move(workload)),
      sim_(config.engine_backend),
      policy_(FleetDispatchPolicy::Create(config.policy, config.num_servers)),
      arrival_rng_(Rng::StreamSeed(config.seed, 0)),
      policy_rng_(Rng::StreamSeed(config.seed, 1)),
      outstanding_(config.num_servers, 0),
      depth_view_(config.num_servers, 0),
      dispatched_per_server_(config.num_servers, 0),
      metrics_(static_cast<Nanos>(config.warmup_fraction *
                                  static_cast<double>(config.duration))) {
  assert(config_.Validate().empty());
  assert(!workload_.phases.empty());
  // Steady-state pending events: the arrival chain, each server's worker
  // completions + dispatcher handoffs, and the time-series grids.
  sim_.Reserve(static_cast<size_t>(config_.num_servers) *
                   (config_.server.num_workers + 64) +
               64);
  for (const auto& t : workload_.AllTypes()) {
    metrics_.RegisterType(t.wire_id, t.name);
  }
  servers_.reserve(config_.num_servers);
  for (uint32_t i = 0; i < config_.num_servers; ++i) {
    ClusterConfig server_config = config_.server;
    server_config.duration = config_.duration;
    server_config.warmup_fraction = config_.warmup_fraction;
    server_config.seed = Rng::StreamSeed(config_.seed, 2 + i);
    if (!config_.introspect_dir.empty()) {
      server_config.introspect_dir =
          config_.introspect_dir + "/server" + std::to_string(i);
    }
    servers_.push_back(std::make_unique<ClusterEngine>(
        workload_, server_config, factory(i), &sim_));
    ClusterEngine* const engine = servers_.back().get();
    engine->set_completion_hook(
        [this, i](const SimRequest& request, Nanos receive) {
          metrics_.RecordCompletion(request.wire_type, request.send_time,
                                    receive, request.service);
          --outstanding_[i];
        });
    engine->set_drop_hook([this, i](const SimRequest& request) {
      metrics_.RecordDrop(request.wire_type);
      --outstanding_[i];
    });
  }
}

void FleetSimulation::StartPhase(size_t phase_index, Nanos start_time) {
  phase_index_ = phase_index;
  const WorkloadPhase& phase = workload_.phases[phase_index];
  sampler_ = std::make_unique<PhaseSampler>(phase);
  const double rate = config_.rate_rps * phase.load_scale;
  gap_mean_nanos_ = rate > 0 ? 1e9 / rate : 0;
  phase_end_ =
      phase.duration > 0 ? start_time + phase.duration : config_.duration;
}

void FleetSimulation::ScheduleNextArrival() {
  double u = arrival_rng_.NextDouble();
  if (u <= 0.0) {
    u = 1e-18;
  }
  next_send_ += static_cast<Nanos>(-gap_mean_nanos_ * std::log(1.0 - u)) + 1;
  while (next_send_ >= phase_end_ &&
         phase_index_ + 1 < workload_.phases.size()) {
    StartPhase(phase_index_ + 1, phase_end_);
  }
  if (next_send_ >= config_.duration) {
    return;  // sending window over
  }

  const Nanos send_time = next_send_;
  sim_.ScheduleAt(send_time, [this, send_time] {
    const MixtureDraw draw = sampler_->Sample(arrival_rng_);
    const TypeId wire = sampler_->type(draw.mode).wire_id;
    const uint32_t slot = draw.mode;
    const Nanos service = draw.service_time;
    const uint32_t flow_hash = static_cast<uint32_t>(arrival_rng_.Next());
    ++generated_;

    // Network flight to the fleet dispatcher, then its serial per-request
    // decision slot (the RackSched switch pipeline analogue).
    const Nanos rx_time = send_time + config_.net_one_way;
    const Nanos decide =
        std::max(rx_time, dispatcher_busy_until_) + config_.dispatch_cost;
    dispatcher_busy_until_ = decide;
    sim_.ScheduleAt(decide, [this, send_time, wire, slot, service, flow_hash] {
      Dispatch(send_time, wire, slot, service, flow_hash);
    });
    ScheduleNextArrival();
  });
}

void FleetSimulation::MaybeRefreshDepths() {
  if (!policy_->uses_depths()) {
    return;
  }
  const Nanos staleness = config_.policy.depth_staleness;
  if (staleness <= 0) {
    // Live probing (po2c): every decision reads current depths.
    depth_view_ = outstanding_;
    ++depth_refreshes_;
    return;
  }
  // Bounded-staleness tracker: the table is renewed at most once per grid
  // period, so a decision reads a view at most `staleness` old.
  const Nanos now = sim_.Now();
  const Nanos grid = now - now % staleness;
  if (grid > depth_refreshed_at_) {
    depth_view_ = outstanding_;
    depth_refreshed_at_ = grid;
    ++depth_refreshes_;
  }
}

void FleetSimulation::Dispatch(Nanos send_time, TypeId wire_type,
                               uint32_t phase_slot, Nanos service,
                               uint32_t flow_hash) {
  MaybeRefreshDepths();
  const FleetDepths depths{depth_view_.data(), config_.num_servers};
  const uint32_t pick = policy_->Pick(flow_hash, policy_rng_, depths);
  assert(pick < config_.num_servers);
  // The dispatcher always knows its own dispatches: the staleness bound only
  // blurs completion information. Without this self-correction a whole grid
  // period's arrivals would herd onto the momentary argmin.
  ++depth_view_[pick];
  ++outstanding_[pick];
  ++dispatched_per_server_[pick];
  servers_[pick]->InjectExternal(send_time, wire_type, phase_slot, service);
}

void FleetSimulation::Run() {
  StartPhase(0, 0);
  ScheduleNextArrival();
  for (auto& server : servers_) {
    server->PrepareExternalRun(config_.duration);
  }
  if (!config_.introspect_dir.empty()) {
    // Servers render into <dir>/server<i>; make sure the parent exists first.
    ::mkdir(config_.introspect_dir.c_str(), 0755);
  }
  sim_.RunToCompletion();
  for (auto& server : servers_) {
    server->FinishExternalRun();
  }
  if (!config_.introspect_dir.empty()) {
    const FleetSnapshot snap = fleet_snapshot();
    WriteTextFile(config_.introspect_dir + "/fleet.json", snap.ToJson());
    WriteTextFile(config_.introspect_dir + "/metrics.prom",
                  snap.ToPrometheus());
  }
}

FleetSnapshot FleetSimulation::fleet_snapshot() const {
  FleetSnapshot snap;
  snap.policy = policy_->Name();
  snap.counters["fleet.generated"] = generated_;
  snap.counters["fleet.depth_refreshes"] = depth_refreshes_;
  snap.gauges["fleet.num_servers"] = config_.num_servers;
  // The shared event queue's backend counters (per-server snapshots omit
  // them in fleet mode — the queue is fleet-owned, so it reports here once).
  snap.counters["fleet.sim.engine.executed"] = sim_.executed_events();
  snap.counters["fleet.sim.engine.cascades"] = sim_.wheel_cascades();
  snap.counters["fleet.sim.engine.rollovers"] = sim_.wheel_rollovers();
  snap.counters["fleet.sim.engine.backend_switches"] =
      sim_.backend_switches();
  snap.gauges["fleet.sim.engine.wheel_active"] = sim_.wheel_active() ? 1 : 0;
  for (uint32_t i = 0; i < config_.num_servers; ++i) {
    const std::string key = "fleet.server." + std::to_string(i);
    snap.counters[key + ".dispatched"] = dispatched_per_server_[i];
    snap.gauges[key + ".outstanding"] = outstanding_[i];
  }
  snap.servers.reserve(servers_.size());
  for (const auto& server : servers_) {
    snap.servers.push_back(server->telemetry_snapshot());
  }
  return snap;
}

}  // namespace psp
