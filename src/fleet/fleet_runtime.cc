#include "src/fleet/fleet_runtime.h"

#include <cstring>
#include <stdexcept>

#include "src/net/packet.h"

namespace psp {

std::string FleetRuntimeConfig::Validate() const {
  if (num_servers == 0) {
    return "fleet runtime: num_servers must be >= 1";
  }
  if (ingress_depth == 0 || (ingress_depth & (ingress_depth - 1)) != 0) {
    return "fleet runtime: ingress_depth must be a power of two";
  }
  const std::string policy_error = policy.Validate();
  if (!policy_error.empty()) {
    return policy_error;
  }
  return admin.Validate();
}

namespace {

// Validation must precede member construction: the ingress ring terminates on
// a non-power-of-two depth, so the config is checked before it is built.
FleetRuntimeConfig ValidatedFleetConfig(FleetRuntimeConfig config) {
  const std::string error = config.Validate();
  if (!error.empty()) {
    throw std::invalid_argument(error);
  }
  return config;
}

}  // namespace

FleetRuntime::FleetRuntime(FleetRuntimeConfig config)
    : config_(ValidatedFleetConfig(std::move(config))),
      policy_(FleetDispatchPolicy::Create(config_.policy,
                                          config_.num_servers)),
      ingress_(config_.ingress_depth, /*yield_on_idle=*/true),
      rng_(Rng::StreamSeed(config_.seed, 1)),
      depth_view_(config_.num_servers, 0),
      outstanding_(config_.num_servers, 0),
      dispatched_per_server_(config_.num_servers, 0),
      server_latency_(config_.num_servers) {
  servers_.reserve(config_.num_servers);
  for (uint32_t i = 0; i < config_.num_servers; ++i) {
    RuntimeConfig server_config = config_.server;
    // One scrape surface for the rack: the fleet admin plane.
    server_config.admin = AdminConfig{};
    servers_.push_back(std::make_unique<Persephone>(server_config));
  }
}

FleetRuntime::~FleetRuntime() { Stop(); }

void FleetRuntime::RegisterType(TypeId wire_id, std::string name,
                                RequestHandler handler, Nanos expected_mean,
                                double expected_ratio) {
  for (auto& server : servers_) {
    server->RegisterType(wire_id, name, handler, expected_mean,
                         expected_ratio);
  }
  type_ids_.push_back(wire_id);
  type_names_.push_back(std::move(name));
}

void FleetRuntime::Start() {
  if (running()) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  for (auto& server : servers_) {
    server->Start();
  }
  front_end_ = std::thread([this] { FrontEndLoop(); });
  if (config_.admin.enabled) {
    AdminHooks hooks;
    hooks.snapshot = [this] { return fleet_snapshot().Merged(); };
    hooks.metrics_text = [this] { return fleet_snapshot().ToPrometheus(); };
    hooks.fleet_json = [this] { return fleet_snapshot().ToJson(); };
    admin_ = std::make_unique<AdminServer>(config_.admin, std::move(hooks));
    const std::string error = admin_->Start();
    if (!error.empty()) {
      admin_.reset();
    }
  }
  running_.store(true, std::memory_order_release);
}

void FleetRuntime::Stop() {
  if (!running()) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (front_end_.joinable()) {
    front_end_.join();
  }
  if (admin_) {
    admin_->Stop();
    admin_.reset();
  }
  for (auto& server : servers_) {
    server->Stop();
  }
  running_.store(false, std::memory_order_release);
}

bool FleetRuntime::Submit(TypeId wire_type, uint32_t flow_hash,
                          const void* payload, uint32_t payload_length) {
  SubmitEntry entry;
  entry.wire_type = wire_type;
  entry.flow_hash = flow_hash;
  entry.request_id = next_request_id_;
  entry.client_timestamp = TscClock::Global().Now();
  if (payload != nullptr && payload_length > 0) {
    if (payload_length > kMaxInlinePayload) {
      return false;
    }
    entry.payload_length = payload_length;
    std::memcpy(entry.payload, payload, payload_length);
  }
  if (!ingress_.ring().TryPush(entry)) {
    return false;
  }
  ++next_request_id_;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FleetRuntime::MaybeRefreshDepths(Nanos now) {
  if (!policy_->uses_depths()) {
    return;
  }
  const Nanos staleness = config_.policy.depth_staleness;
  if (staleness <= 0) {
    depth_view_ = outstanding_;
    ++depth_refreshes_;
    return;
  }
  const Nanos grid = now - now % staleness;
  if (grid > depth_refreshed_at_) {
    depth_view_ = outstanding_;
    depth_refreshed_at_ = grid;
    ++depth_refreshes_;
  }
}

void FleetRuntime::DispatchLocked(const SubmitEntry& entry) {
  MaybeRefreshDepths(TscClock::Global().Now());
  const FleetDepths depths{depth_view_.data(), config_.num_servers};
  const uint32_t pick = policy_->Pick(entry.flow_hash, rng_, depths);
  // The dispatcher always knows its own dispatches: the staleness bound only
  // blurs completion information (prevents herding within a grid period).
  ++depth_view_[pick];
  Persephone& server = *servers_[pick];

  std::byte* buf = server.pool().AllocGlobal();
  if (buf == nullptr) {
    ++dispatch_drops_;
    return;
  }
  RequestFrame frame;
  frame.flow = FlowTuple{
      0x0A000000u | (entry.flow_hash & 0xFFu), 0x0A0000FF,
      static_cast<uint16_t>(1024 + ((entry.flow_hash >> 8) % 60000)), 6789};
  frame.request_type = entry.wire_type;
  frame.request_id = entry.request_id;
  frame.client_id = 1;
  frame.client_timestamp = entry.client_timestamp;
  frame.payload = entry.payload;
  frame.payload_length = entry.payload_length;
  const uint32_t len =
      BuildRequestPacket(frame, buf, server.pool().buffer_size());
  if (len == 0 || !server.nic().DeliverToQueue(0, PacketRef{buf, len})) {
    server.pool().FreeGlobal(buf);
    ++dispatch_drops_;
    return;
  }
  ++outstanding_[pick];
  ++dispatched_per_server_[pick];
  ++dispatched_total_;
}

bool FleetRuntime::HarvestOneLocked(uint32_t i) {
  PacketRef pkt;
  if (!servers_[i]->nic().PollEgress(&pkt)) {
    return false;
  }
  const Nanos now = TscClock::Global().Now();
  const auto parsed = ParseRequestPacket(pkt.data, pkt.length);
  if (parsed.has_value()) {
    const Nanos latency = now - parsed->psp.client_timestamp;
    latency_[parsed->psp.request_type].Add(latency);
    overall_latency_.Add(latency);
    server_latency_[i].Add(latency);
    ++responses_;
    --outstanding_[i];
  }
  servers_[i]->pool().FreeGlobal(pkt.data);
  return true;
}

void FleetRuntime::FrontEndLoop() {
  constexpr size_t kBurst = 16;
  SubmitEntry batch[kBurst];
  while (!stop_.load(std::memory_order_acquire)) {
    bool did_work = false;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      const size_t n = ingress_.PollBurst(batch, kBurst);
      for (size_t i = 0; i < n; ++i) {
        DispatchLocked(batch[i]);
      }
      did_work = n > 0;
      for (uint32_t i = 0; i < config_.num_servers; ++i) {
        for (size_t h = 0; h < kBurst && HarvestOneLocked(i); ++h) {
          did_work = true;
        }
      }
    }
    if (!did_work) {
      ingress_.IdleHint();
    }
  }
  // Final sweep so responses in flight at stop time still count.
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (uint32_t i = 0; i < config_.num_servers; ++i) {
    while (HarvestOneLocked(i)) {
    }
  }
}

FleetClientReport FleetRuntime::client_report() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  FleetClientReport report;
  report.submitted = submitted_.load(std::memory_order_relaxed);
  report.dispatched = dispatched_total_;
  report.dispatch_drops = dispatch_drops_;
  report.responses = responses_;
  report.latency = latency_;
  report.overall = overall_latency_;
  return report;
}

uint64_t FleetRuntime::dispatched(uint32_t server) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return dispatched_per_server_[server];
}

FleetSnapshot FleetRuntime::fleet_snapshot() const {
  FleetSnapshot snap;
  snap.policy = policy_->Name();
  std::vector<Histogram> server_latency;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    server_latency = server_latency_;
    snap.counters["fleet.submitted"] =
        submitted_.load(std::memory_order_relaxed);
    snap.counters["fleet.dispatched"] = dispatched_total_;
    snap.counters["fleet.dispatch_drops"] = dispatch_drops_;
    snap.counters["fleet.responses"] = responses_;
    snap.counters["fleet.depth_refreshes"] = depth_refreshes_;
    snap.gauges["fleet.num_servers"] = config_.num_servers;
    for (uint32_t i = 0; i < config_.num_servers; ++i) {
      const std::string key = "fleet.server." + std::to_string(i);
      snap.counters[key + ".dispatched"] = dispatched_per_server_[i];
      snap.gauges[key + ".outstanding"] = outstanding_[i];
    }
  }
  snap.servers.reserve(servers_.size());
  for (uint32_t i = 0; i < servers_.size(); ++i) {
    snap.servers.push_back(servers_[i]->telemetry_snapshot());
    snap.servers.back().histograms["fleet.client_latency"] =
        server_latency[i];
  }
  return snap;
}

}  // namespace psp
