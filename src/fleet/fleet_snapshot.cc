#include "src/fleet/fleet_snapshot.h"

#include <set>

#include "src/introspect/prometheus.h"

namespace psp {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendSummary(std::string* out, const std::string& metric,
                   const std::string& labels, const Histogram& h) {
  static constexpr struct {
    const char* label;
    double p;
  } kQuantiles[] = {{"0.5", 50.0}, {"0.99", 99.0}, {"0.999", 99.9}};
  for (const auto& q : kQuantiles) {
    *out += metric + "{" + labels + (labels.empty() ? "" : ",") +
            "quantile=\"" + q.label +
            "\"} " + std::to_string(h.Percentile(q.p)) + "\n";
  }
  *out += metric + "_sum{" + labels + "} " +
          std::to_string(static_cast<int64_t>(h.Mean() *
                                              static_cast<double>(h.Count()))) +
          "\n";
  *out += metric + "_count{" + labels + "} " + std::to_string(h.Count()) + "\n";
}

}  // namespace

TelemetrySnapshot FleetSnapshot::Merged() const {
  TelemetrySnapshot merged;
  for (const auto& server : servers) {
    merged.Merge(server);
  }
  return merged;
}

std::string FleetSnapshot::ToJson() const {
  std::string out = "{\"policy\":\"" + JsonEscape(policy) +
                    "\",\"num_servers\":" + std::to_string(servers.size());
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"merged\":" + Merged().ToJson();
  out += ",\"servers\":[";
  for (size_t i = 0; i < servers.size(); ++i) {
    if (i != 0) out += ',';
    out += servers[i].ToJson();
  }
  out += "]}";
  return out;
}

std::string FleetSnapshot::ToPrometheus() const {
  std::string out;

  out += "# HELP psp_fleet_servers Number of servers in the fleet.\n";
  out += "# TYPE psp_fleet_servers gauge\n";
  out += "psp_fleet_servers " + std::to_string(servers.size()) + "\n";

  out += "# HELP psp_fleet_policy Inter-server dispatch policy (info-style: "
         "value is always 1).\n";
  out += "# TYPE psp_fleet_policy gauge\n";
  out += "psp_fleet_policy{policy=\"" + PrometheusLabelEscape(policy) +
         "\"} 1\n";

  for (const auto& [name, value] : counters) {
    const std::string metric = "psp_fleet_" + PrometheusMetricName(name);
    out += "# TYPE " + metric + "_total counter\n";
    out += metric + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string metric = "psp_fleet_" + PrometheusMetricName(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(value) + "\n";
  }

  // Per-server instruments, grouped per metric family so every family is
  // declared once and its samples (one per server) sit together — the layout
  // the exposition format requires.
  std::set<std::string> counter_names;
  std::set<std::string> gauge_names;
  std::set<std::string> histogram_names;
  for (const auto& server : servers) {
    for (const auto& [name, _] : server.counters) counter_names.insert(name);
    for (const auto& [name, _] : server.gauges) gauge_names.insert(name);
    for (const auto& [name, _] : server.histograms)
      histogram_names.insert(name);
  }

  for (const auto& name : counter_names) {
    const std::string metric = "psp_" + PrometheusMetricName(name);
    out += "# TYPE " + metric + "_total counter\n";
    for (size_t i = 0; i < servers.size(); ++i) {
      const auto it = servers[i].counters.find(name);
      if (it == servers[i].counters.end()) continue;
      out += metric + "_total{server=\"" + std::to_string(i) + "\"} " +
             std::to_string(it->second) + "\n";
    }
  }
  for (const auto& name : gauge_names) {
    const std::string metric = "psp_" + PrometheusMetricName(name);
    out += "# TYPE " + metric + " gauge\n";
    for (size_t i = 0; i < servers.size(); ++i) {
      const auto it = servers[i].gauges.find(name);
      if (it == servers[i].gauges.end()) continue;
      out += metric + "{server=\"" + std::to_string(i) + "\"} " +
             std::to_string(it->second) + "\n";
    }
  }
  // Per-server time-provenance ledgers: one family, a sample per
  // (server, slot, state) — each server slot's samples sum to its wall.
  bool any_worker_time = false;
  for (const auto& server : servers) {
    if (!server.worker_time.empty()) {
      any_worker_time = true;
      break;
    }
  }
  if (any_worker_time) {
    out += "# TYPE psp_worker_time_ns gauge\n";
    for (size_t i = 0; i < servers.size(); ++i) {
      for (const WorkerTimeRecord& rec : servers[i].worker_time) {
        for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
          out += "psp_worker_time_ns{server=\"" + std::to_string(i) +
                 "\",worker=\"" + std::to_string(rec.slot) + "\",role=\"" +
                 rec.role + "\",state=\"" +
                 WorkerTimeStateName(static_cast<WorkerTimeState>(s)) +
                 "\"} " + std::to_string(rec.state_ns[s]) + "\n";
        }
      }
    }
  }

  for (const auto& name : histogram_names) {
    const std::string metric = "psp_" + PrometheusMetricName(name);
    out += "# TYPE " + metric + " summary\n";
    for (size_t i = 0; i < servers.size(); ++i) {
      const auto it = servers[i].histograms.find(name);
      if (it == servers[i].histograms.end()) continue;
      AppendSummary(&out, metric, "server=\"" + std::to_string(i) + "\"",
                    it->second);
    }
    // The rack-level rollup of the same family, labelled server="merged" so
    // it shares the family declaration without clashing with real indices.
    Histogram merged;
    for (const auto& server : servers) {
      const auto it = server.histograms.find(name);
      if (it != server.histograms.end()) {
        merged.Merge(it->second);
      }
    }
    AppendSummary(&out, metric, "server=\"merged\"", merged);
  }

  return out;
}

}  // namespace psp
