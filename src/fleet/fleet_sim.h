// FleetSimulation: N ClusterEngine server pipelines behind one inter-server
// dispatch policy, all driven off a single discrete-event queue — the rack
// tier layered over the per-server Perséphone model. Clients send open-loop
// Poisson traffic to the fleet dispatcher (one network hop + a serial
// per-request decision cost, mirroring the RackSched switch pipeline); the
// policy picks a server; the request takes the dispatcher→server hop and runs
// through that server's unmodified net-worker/dispatcher/policy pipeline;
// the response returns server→client directly.
//
// Determinism contract: every random draw derives from config.seed through
// fixed Rng streams (Rng::StreamSeed) —
//   stream 0            fleet arrival process (gaps, type/service draws,
//                       flow hashes) — identical across policies, so policy
//                       comparisons see the same offered trace;
//   stream 1            fleet policy randomness (random / po2c probes);
//   stream 2 + i        server i's engine seed, a pure function of
//                       (fleet seed, i) regardless of server count.
// Everything runs in virtual time, so same-seed runs are bit-deterministic:
// fleet_snapshot().ToJson() is byte-identical (the CI determinism smoke).
//
// Depth tracking: the fleet tier counts outstanding requests per server
// (dispatched − completed − dropped) via the engines' completion/drop hooks.
// Policies read a copy of that table refreshed on a depth_staleness grid
// (0 = copy live at every decision, the po2c probing model; > 0 = the copy
// is renewed at most once per grid period, RackSched's bounded-staleness
// centralized tracker).
#ifndef PSP_SRC_FLEET_FLEET_SIM_H_
#define PSP_SRC_FLEET_FLEET_SIM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fleet/fleet_snapshot.h"
#include "src/fleet/policy.h"
#include "src/sim/cluster.h"
#include "src/sim/metrics.h"
#include "src/sim/workload.h"

namespace psp {

struct FleetSimConfig {
  uint32_t num_servers = 4;
  // Per-server template. duration, warmup_fraction and seed are overridden
  // per server by the fleet (duration/warmup from the fleet's, seed from
  // stream 2+i); rate_rps is unused (servers generate no arrivals).
  ClusterConfig server;
  double rate_rps = 1e6;         // fleet-wide offered load
  Nanos duration = kSecond;      // client sending window
  double warmup_fraction = 0.1;  // discarded prefix, fleet-wide metrics
  Nanos net_one_way = 5 * kMicrosecond;  // client -> fleet dispatcher hop
  Nanos dispatch_cost = 50;      // fleet decision, serial per request
  uint64_t seed = 42;
  // Backend for the fleet's single shared event queue (servers in fleet mode
  // never build their own); auto = density heuristic, see EngineBackend.
  EngineBackend engine_backend = EngineBackend::kAuto;
  FleetPolicyConfig policy;
  // When non-empty, Run() writes fleet.json and metrics.prom here, plus the
  // usual per-server artifacts under <dir>/server<i>/.
  std::string introspect_dir;

  // Empty string = valid; otherwise a description of the misconfiguration.
  std::string Validate() const;
};

class FleetSimulation {
 public:
  // Builds the per-server SchedulingPolicy (e.g. DARC) for server `i`; the
  // fleet constructs one engine per server around it.
  using PolicyFactory =
      std::function<std::unique_ptr<SchedulingPolicy>(uint32_t server)>;

  FleetSimulation(WorkloadSpec workload, FleetSimConfig config,
                  PolicyFactory factory);

  // Runs the experiment to completion (all generated requests completed or
  // dropped on their servers) and renders introspection artifacts if
  // configured.
  void Run();

  // --- Results --------------------------------------------------------------
  // Fleet-wide client-observed metrics (all servers combined), warmed up on
  // the fleet window.
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  uint32_t num_servers() const { return config_.num_servers; }
  ClusterEngine& server(uint32_t i) { return *servers_[i]; }
  const ClusterEngine& server(uint32_t i) const { return *servers_[i]; }
  const FleetSimConfig& config() const { return config_; }
  const FleetDispatchPolicy& policy() const { return *policy_; }
  uint64_t generated() const { return generated_; }
  uint64_t dispatched(uint32_t server) const {
    return dispatched_per_server_[server];
  }
  uint64_t depth_refreshes() const { return depth_refreshes_; }

  Nanos MeasuredWindow() const {
    return config_.duration -
           static_cast<Nanos>(config_.warmup_fraction *
                              static_cast<double>(config_.duration));
  }

  // The fleet-wide introspection surface: per-server TelemetrySnapshots plus
  // the dispatcher's own counters, exportable as /fleet.json or Prometheus
  // text with server="N" labels.
  FleetSnapshot fleet_snapshot() const;

 private:
  void StartPhase(size_t phase_index, Nanos start_time);
  void ScheduleNextArrival();
  void Dispatch(Nanos send_time, TypeId wire_type, uint32_t phase_slot,
                Nanos service, uint32_t flow_hash);
  // Brings depth_view_ up to the staleness contract before a decision.
  void MaybeRefreshDepths();

  FleetSimConfig config_;
  WorkloadSpec workload_;
  Simulation sim_;
  std::unique_ptr<FleetDispatchPolicy> policy_;
  std::vector<std::unique_ptr<ClusterEngine>> servers_;

  Rng arrival_rng_;  // stream 0
  Rng policy_rng_;   // stream 1

  // Arrival generation (same phase machinery as ClusterEngine).
  size_t phase_index_ = 0;
  Nanos phase_end_ = 0;
  std::unique_ptr<PhaseSampler> sampler_;
  double gap_mean_nanos_ = 0;
  Nanos next_send_ = 0;
  uint64_t generated_ = 0;

  // Fleet dispatcher serial resource.
  Nanos dispatcher_busy_until_ = 0;

  // Depth tracking: live outstanding counts and the (possibly stale) copy
  // policies read.
  std::vector<int64_t> outstanding_;
  std::vector<int64_t> depth_view_;
  Nanos depth_refreshed_at_ = -1;
  uint64_t depth_refreshes_ = 0;

  std::vector<uint64_t> dispatched_per_server_;
  Metrics metrics_;  // fleet-wide, client-observed
};

}  // namespace psp

#endif  // PSP_SRC_FLEET_FLEET_SIM_H_
