// Inter-server dispatch policies for the rack-scale fleet layer: the tier
// that RackSched (NSDI '20) layers on top of per-server schedulers. A fleet
// front-end (the sim's FleetSimulation dispatcher or the threaded
// FleetRuntime's front-end thread) asks the policy to pick one of N
// Perséphone servers for each arriving request.
//
// Policies (FleetPolicyKind):
//   * kRandom        uniform random server — the memoryless baseline.
//   * kRssHash       flow-affine steering: flow_hash -> server, the ToR-RSS
//                    arrangement (a flow always lands on the same server).
//   * kRoundRobin    strict rotation — equalises counts, ignores state.
//   * kPowerOfTwo    power-of-two-choices on sampled queue depth: probe two
//                    distinct random servers, dispatch to the shallower.
//   * kShortestQueue RackSched-style centralized shortest-queue over a
//                    bounded-staleness depth table (the tracker refreshes
//                    every depth_staleness nanos, so a decision may act on a
//                    view at most that old — the paper's "bounded staleness"
//                    tracking).
//
// Depth semantics: "depth" is the number of requests dispatched to a server
// and not yet completed or dropped (outstanding), the quantity a rack-level
// scheduler can actually observe without reaching into the server.
//
// Determinism: policies draw randomness only from the Rng the caller passes
// in. In the simulator that Rng is the fleet stream split from the fleet
// seed (Rng::Split), so same-seed fleet runs are bit-deterministic.
#ifndef PSP_SRC_FLEET_POLICY_H_
#define PSP_SRC_FLEET_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace psp {

enum class FleetPolicyKind {
  kRandom,
  kRssHash,
  kRoundRobin,
  kPowerOfTwo,
  kShortestQueue,
};

struct FleetPolicyConfig {
  FleetPolicyKind kind = FleetPolicyKind::kPowerOfTwo;
  // Age bound on the depth table the policy reads. 0 = probe live depths at
  // every decision (the po2c default: two RPC probes per request); > 0 = the
  // substrate refreshes the table on this period and decisions read the
  // stale copy (the centralized-tracker default, 10 µs).
  Nanos depth_staleness = 0;

  // The conventional staleness for `kind` (0 for the probing policies, 10 µs
  // for the centralized tracker).
  static FleetPolicyConfig Default(FleetPolicyKind kind);

  // Empty string = valid; otherwise a description of the misconfiguration.
  std::string Validate() const;
};

// Round-trippable policy names ("random", "rss", "rr", "po2c", "shortest-q")
// for CLIs and bench tables.
std::string FleetPolicyName(FleetPolicyKind kind);
bool ParseFleetPolicy(const std::string& name, FleetPolicyKind* out);

// The depth view a policy decision reads: one sampled depth per server.
// Whether the values are live or bounded-staleness copies is the substrate's
// contract (FleetPolicyConfig::depth_staleness).
struct FleetDepths {
  const int64_t* depth = nullptr;
  uint32_t num_servers = 0;

  int64_t Depth(uint32_t server) const { return depth[server]; }
};

class FleetDispatchPolicy {
 public:
  virtual ~FleetDispatchPolicy() = default;

  // Picks the server for one request. `flow_hash` is the request's RSS-style
  // flow hash (only kRssHash uses it); `rng` supplies all randomness.
  virtual uint32_t Pick(uint32_t flow_hash, Rng& rng,
                        const FleetDepths& depths) = 0;

  virtual std::string Name() const = 0;

  // True when the policy reads queue depths at all (lets substrates skip
  // depth bookkeeping refreshes for the oblivious policies).
  virtual bool uses_depths() const { return false; }

  static std::unique_ptr<FleetDispatchPolicy> Create(
      const FleetPolicyConfig& config, uint32_t num_servers);
};

}  // namespace psp

#endif  // PSP_SRC_FLEET_POLICY_H_
