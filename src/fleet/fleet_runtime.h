// FleetRuntime: N in-process Persephone instances behind one front-end
// dispatch thread — the threaded-runtime substrate of the rack-scale fleet
// layer (the sim-substrate counterpart is FleetSimulation).
//
// Topology: a client thread Submit()s typed requests into a lock-free ingress
// ring. The front-end thread drains it, asks the inter-server policy
// (src/fleet/policy.h) to pick a server, builds the wire frame (PSP header
// with the client timestamp stamped at Submit) and delivers it to that
// server's NIC RX queue. Each server runs the unmodified Perséphone pipeline
// (net worker + dispatcher + DARC + workers). The front-end also harvests
// every server's NIC egress, records client-observed per-type latency, and
// maintains the per-server outstanding-request counts the depth-aware
// policies read (refreshed on the depth_staleness grid, like the sim).
//
// Threading: Submit is single-producer (one client thread); the front-end
// thread owns dispatch + harvest + depth tracking; fleet-tier stats are
// guarded by one mutex so the admin thread can snapshot mid-run.
//
// Observability: when config.admin.enabled, a fleet-level AdminServer serves
// GET /fleet.json (FleetSnapshot::ToJson), /metrics with server="N" labels
// (FleetSnapshot::ToPrometheus), and /snapshot.json as the merged rollup.
// Per-server admin planes are forced off — the fleet endpoint is the one
// scrape surface.
#ifndef PSP_SRC_FLEET_FLEET_RUNTIME_H_
#define PSP_SRC_FLEET_FLEET_RUNTIME_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/spsc_ring.h"
#include "src/fleet/fleet_snapshot.h"
#include "src/fleet/policy.h"
#include "src/introspect/admin.h"
#include "src/net/ingress.h"
#include "src/runtime/persephone.h"

namespace psp {

struct FleetRuntimeConfig {
  uint32_t num_servers = 2;
  // Per-server template. The per-server admin plane is forced off (the fleet
  // serves one endpoint for the whole rack).
  RuntimeConfig server;
  FleetPolicyConfig policy;
  // Fleet-level admin plane (off by default).
  AdminConfig admin;
  // Submit ring depth (power of two).
  size_t ingress_depth = 4096;
  uint64_t seed = 42;

  // Empty string = valid; otherwise a description of the misconfiguration.
  std::string Validate() const;
};

// Client-observed results accumulated by the front-end harvest loop.
struct FleetClientReport {
  uint64_t submitted = 0;
  uint64_t dispatched = 0;
  uint64_t dispatch_drops = 0;  // ingress full at the chosen server / no buffer
  uint64_t responses = 0;
  std::map<TypeId, Histogram> latency;  // per type, client-observed
  Histogram overall;
};

class FleetRuntime {
 public:
  explicit FleetRuntime(FleetRuntimeConfig config);
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  // --- Setup (before Start): fans out to every server ----------------------
  void RegisterType(TypeId wire_id, std::string name, RequestHandler handler,
                    Nanos expected_mean = 0, double expected_ratio = 0);

  // --- Lifecycle ------------------------------------------------------------
  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- Client-facing --------------------------------------------------------
  // Enqueues one request (single producer thread). `flow_hash` feeds the
  // RSS-affinity policy and the wire flow tuple; `payload` (up to
  // kMaxInlinePayload bytes) becomes the request payload — e.g. the 8-byte
  // spin duration of the synthetic app. Returns false when the ingress ring
  // is full (open-loop drop; counted in the report as neither submitted nor
  // dispatched).
  static constexpr uint32_t kMaxInlinePayload = 16;
  bool Submit(TypeId wire_type, uint32_t flow_hash,
              const void* payload = nullptr, uint32_t payload_length = 0);

  // --- Observability --------------------------------------------------------
  FleetClientReport client_report() const;
  FleetSnapshot fleet_snapshot() const;
  uint32_t num_servers() const { return config_.num_servers; }
  Persephone& server(uint32_t i) { return *servers_[i]; }
  uint64_t dispatched(uint32_t server) const;
  // The fleet admin plane, when config.admin.enabled (nullptr otherwise).
  const AdminServer* admin() const { return admin_.get(); }
  uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }

 private:
  struct SubmitEntry {
    TypeId wire_type = 0;
    uint32_t flow_hash = 0;
    uint64_t request_id = 0;
    Nanos client_timestamp = 0;
    uint32_t payload_length = 0;
    std::byte payload[kMaxInlinePayload];
  };

  void FrontEndLoop();
  // Dispatches one submitted request; stats_mu_ must be held.
  void DispatchLocked(const SubmitEntry& entry);
  // Harvests up to one egress frame from server `i`; stats_mu_ must be held.
  bool HarvestOneLocked(uint32_t i);
  // Brings depth_view_ up to the staleness contract (front-end thread only).
  void MaybeRefreshDepths(Nanos now);

  FleetRuntimeConfig config_;
  std::unique_ptr<FleetDispatchPolicy> policy_;
  std::vector<std::unique_ptr<Persephone>> servers_;
  std::vector<std::string> type_names_;  // parallel to registered wire ids
  std::vector<TypeId> type_ids_;

  // The submit ring behind the same IngressSource seam the per-server
  // runtime uses (typed SubmitEntry frames instead of packets): the client
  // pushes into ingress_.ring(), the front-end thread is the single
  // PollBurst consumer.
  RingIngressSource<SubmitEntry> ingress_;
  std::thread front_end_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  // Producer-side state (the single Submit caller).
  uint64_t next_request_id_ = 0;
  std::atomic<uint64_t> submitted_{0};

  // Front-end state. Depth views are plain: only the front-end touches them
  // outside the stats lock.
  Rng rng_;  // stream 1 of config.seed: policy randomness
  std::vector<int64_t> depth_view_;
  Nanos depth_refreshed_at_ = -1;
  uint64_t depth_refreshes_ = 0;

  // Fleet-tier stats: written by the front-end under stats_mu_, read by
  // snapshots from other threads.
  mutable std::mutex stats_mu_;
  std::vector<int64_t> outstanding_;
  std::vector<uint64_t> dispatched_per_server_;
  uint64_t dispatched_total_ = 0;
  uint64_t dispatch_drops_ = 0;
  uint64_t responses_ = 0;
  std::map<TypeId, Histogram> latency_;
  Histogram overall_latency_;
  // Client-observed latency split by serving server; surfaces in the fleet
  // snapshot as each server's "fleet.client_latency" histogram so the
  // Prometheus page gets per-server summaries plus the merged rollup.
  std::vector<Histogram> server_latency_;

  std::unique_ptr<AdminServer> admin_;
};

}  // namespace psp

#endif  // PSP_SRC_FLEET_FLEET_RUNTIME_H_
