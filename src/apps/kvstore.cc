#include "src/apps/kvstore.h"

#include <algorithm>
#include <cstring>
#include <functional>

namespace psp {

void KvStore::Put(uint64_t key, std::string value) {
  memtable_[key] = std::move(value);
  if (memtable_.size() >= memtable_limit_) {
    FreezeMemtable();
  }
}

void KvStore::Delete(uint64_t key) {
  memtable_[key] = std::nullopt;
  if (memtable_.size() >= memtable_limit_) {
    FreezeMemtable();
  }
}

KvStore::Run KvStore::SealRun(std::vector<Entry> entries) {
  Run run;
  run.bloom = BloomFilter(entries.size());
  for (const auto& e : entries) {
    run.bloom.Add(e.key);
  }
  run.entries = std::move(entries);
  return run;
}

void KvStore::FreezeMemtable() {
  std::vector<Entry> entries;
  entries.reserve(memtable_.size());
  for (auto& [key, value] : memtable_) {
    entries.push_back(
        Entry{key, value.value_or(std::string()), !value.has_value()});
  }
  runs_.push_back(SealRun(std::move(entries)));
  memtable_.clear();
  MaybeCompactTier();
}

void KvStore::MaybeCompactTier() {
  // Tiered compaction: when the run count exceeds the bound, merge the
  // *oldest half* of the runs (a contiguous age prefix) into one. Merging a
  // contiguous prefix is always version-safe: every surviving run is newer
  // than the merged one, so newest-run-wins lookups stay correct, and within
  // the merge the higher-indexed (newer) run's version of a key wins.
  // Tombstones survive the merge — a newer deletion must keep shadowing any
  // older value that might still live in the memtable path of future merges.
  if (runs_.size() <= max_runs_) {
    return;
  }
  const size_t merge_count = std::max<size_t>(2, runs_.size() / 2);
  std::map<uint64_t, Entry> merged;  // key -> newest version among victims
  for (size_t i = merge_count; i-- > 0;) {
    // Newest victim first: emplace keeps the first (newest) version.
    for (const auto& e : runs_[i].entries) {
      merged.emplace(e.key, e);
    }
  }
  std::vector<Entry> entries;
  entries.reserve(merged.size());
  for (auto& [key, e] : merged) {
    entries.push_back(std::move(e));
  }
  runs_.erase(runs_.begin(), runs_.begin() + static_cast<long>(merge_count));
  runs_.insert(runs_.begin(), SealRun(std::move(entries)));
}

const KvStore::Entry* KvStore::FindInRun(const Run& run, uint64_t key) {
  const auto it = std::lower_bound(
      run.entries.begin(), run.entries.end(), key,
      [](const Entry& e, uint64_t k) { return e.key < k; });
  if (it != run.entries.end() && it->key == key) {
    return &*it;
  }
  return nullptr;
}

std::optional<std::string> KvStore::Get(uint64_t key) const {
  const auto mem = memtable_.find(key);
  if (mem != memtable_.end()) {
    return mem->second;  // nullopt encodes a tombstone
  }
  // Newest run wins; Bloom filters skip runs that cannot hold the key.
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (!it->bloom.MayContain(key)) {
      ++bloom_skips_;
      continue;
    }
    if (const Entry* e = FindInRun(*it, key)) {
      if (e->tombstone) {
        return std::nullopt;
      }
      return e->value;
    }
  }
  return std::nullopt;
}

size_t KvStore::Scan(uint64_t start_key, size_t count,
                     std::vector<std::pair<uint64_t, std::string>>* out) const {
  // K-way merge across memtable + runs with newest-version-wins semantics.
  struct Cursor {
    size_t run;  // runs_.size() = memtable
    size_t pos;
  };
  std::vector<std::vector<Entry>::const_iterator> run_pos(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    run_pos[i] = std::lower_bound(
        runs_[i].entries.begin(), runs_[i].entries.end(), start_key,
        [](const Entry& e, uint64_t k) { return e.key < k; });
  }
  auto mem_pos = memtable_.lower_bound(start_key);

  size_t visited = 0;
  while (visited < count) {
    // Find the smallest candidate key across all sources.
    uint64_t best_key = UINT64_MAX;
    bool any = false;
    if (mem_pos != memtable_.end()) {
      best_key = mem_pos->first;
      any = true;
    }
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (run_pos[i] != runs_[i].entries.end() && run_pos[i]->key < best_key) {
        best_key = run_pos[i]->key;
        any = true;
      }
    }
    if (!any) {
      break;
    }
    // Resolve the newest version of best_key, advancing every source past it.
    bool resolved = false;
    bool tombstone = false;
    const std::string* value = nullptr;
    if (mem_pos != memtable_.end() && mem_pos->first == best_key) {
      resolved = true;
      tombstone = !mem_pos->second.has_value();
      if (!tombstone) {
        value = &*mem_pos->second;
      }
      ++mem_pos;
    }
    for (size_t i = runs_.size(); i-- > 0;) {
      if (run_pos[i] != runs_[i].entries.end() && run_pos[i]->key == best_key) {
        if (!resolved) {
          resolved = true;
          tombstone = run_pos[i]->tombstone;
          if (!tombstone) {
            value = &run_pos[i]->value;
          }
        }
        ++run_pos[i];
      }
    }
    if (!tombstone && value != nullptr) {
      if (out != nullptr) {
        out->emplace_back(best_key, *value);
      }
      ++visited;
    }
  }
  return visited;
}

size_t KvStore::ApproxEntries() const {
  size_t n = memtable_.size();
  for (const auto& run : runs_) {
    n += run.entries.size();
  }
  return n;
}

void KvStore::Compact() {
  if (!memtable_.empty()) {
    FreezeMemtable();
  }
  // Walk the full key space via Scan semantics, then replace all runs.
  std::vector<std::pair<uint64_t, std::string>> live;
  Scan(0, SIZE_MAX, &live);
  std::vector<Entry> merged;
  merged.reserve(live.size());
  for (auto& [key, value] : live) {
    merged.push_back(Entry{key, std::move(value), false});
  }
  runs_.clear();
  runs_.push_back(SealRun(std::move(merged)));
}

// --- Wire protocol -----------------------------------------------------------

namespace {

template <typename T>
void WriteScalar(std::byte* buf, uint32_t* offset, T value) {
  std::memcpy(buf + *offset, &value, sizeof(T));
  *offset += sizeof(T);
}

template <typename T>
bool ReadScalar(const std::byte* buf, uint32_t length, uint32_t* offset,
                T* value) {
  if (*offset + sizeof(T) > length) {
    return false;
  }
  std::memcpy(value, buf + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

uint32_t EncodeKvRequest(const KvRequest& request, std::byte* buf,
                         uint32_t capacity) {
  const uint32_t needed =
      1 + 8 +
      (request.op == KvOp::kPut ? 4 + request.value_length
       : request.op == KvOp::kScan ? 4
                                   : 0);
  if (needed > capacity) {
    return 0;
  }
  uint32_t offset = 0;
  WriteScalar(buf, &offset, static_cast<uint8_t>(request.op));
  WriteScalar(buf, &offset, request.key);
  if (request.op == KvOp::kPut) {
    WriteScalar(buf, &offset, request.value_length);
    if (request.value_length > 0) {
      std::memcpy(buf + offset, request.value, request.value_length);
      offset += request.value_length;
    }
  } else if (request.op == KvOp::kScan) {
    WriteScalar(buf, &offset, request.count);
  }
  return offset;
}

std::optional<KvRequest> DecodeKvRequest(const std::byte* buf,
                                         uint32_t length) {
  KvRequest request;
  uint32_t offset = 0;
  uint8_t op;
  if (!ReadScalar(buf, length, &offset, &op) ||
      !ReadScalar(buf, length, &offset, &request.key)) {
    return std::nullopt;
  }
  if (op < 1 || op > 3) {
    return std::nullopt;
  }
  request.op = static_cast<KvOp>(op);
  if (request.op == KvOp::kPut) {
    if (!ReadScalar(buf, length, &offset, &request.value_length) ||
        offset + request.value_length > length) {
      return std::nullopt;
    }
    request.value = buf + offset;
  } else if (request.op == KvOp::kScan) {
    if (!ReadScalar(buf, length, &offset, &request.count)) {
      return std::nullopt;
    }
  }
  return request;
}

uint32_t ExecuteKvRequest(KvStore& store, const KvRequest& request,
                          std::byte* response, uint32_t capacity) {
  uint32_t offset = 0;
  switch (request.op) {
    case KvOp::kGet: {
      const auto value = store.Get(request.key);
      if (capacity < 5) {
        return 0;
      }
      WriteScalar(response, &offset, static_cast<uint8_t>(value ? 1 : 0));
      const uint32_t len =
          value ? std::min<uint32_t>(static_cast<uint32_t>(value->size()),
                                     capacity - 5)
                : 0;
      WriteScalar(response, &offset, len);
      if (len > 0) {
        std::memcpy(response + offset, value->data(), len);
        offset += len;
      }
      return offset;
    }
    case KvOp::kPut: {
      store.Put(request.key,
                std::string(reinterpret_cast<const char*>(request.value),
                            request.value_length));
      if (capacity < 1) {
        return 0;
      }
      WriteScalar(response, &offset, static_cast<uint8_t>(1));
      return offset;
    }
    case KvOp::kScan: {
      std::vector<std::pair<uint64_t, std::string>> out;
      const size_t visited = store.Scan(request.key, request.count, &out);
      uint64_t bytes = 0;
      for (const auto& [key, value] : out) {
        bytes += value.size();
      }
      if (capacity < 12) {
        return 0;
      }
      WriteScalar(response, &offset, static_cast<uint32_t>(visited));
      WriteScalar(response, &offset, bytes);
      return offset;
    }
  }
  return 0;
}

void LoadKvDataset(KvStore& store, uint64_t keys, size_t value_size) {
  const std::string value(value_size, 'v');
  for (uint64_t k = 0; k < keys; ++k) {
    store.Put(k, value);
  }
  store.Compact();
}

}  // namespace psp
