// An in-memory log-structured key-value store standing in for RocksDB
// (§5.4.4): a mutable memtable plus immutable sorted runs with per-run Bloom
// filters and size-tiered compaction, point GETs and range SCANs. GETs touch
// the memtable, skip runs via the Bloom filters, and binary-search the rest
// (microsecond-scale); SCAN(5000) merges across runs (hundreds of µs) —
// matching the 1.5 µs / 635 µs service-time profile the paper measured.
#ifndef PSP_SRC_APPS_KVSTORE_H_
#define PSP_SRC_APPS_KVSTORE_H_

#include <cstdint>
#include <map>

#include "src/common/bloom_filter.h"
#include <optional>
#include <string>
#include <vector>

namespace psp {

class KvStore {
 public:
  // memtable_limit: entries before the memtable is frozen into a sorted run.
  // max_runs: freezing beyond this many runs triggers size-tiered
  // compaction (the smallest runs are merged), bounding read amplification.
  explicit KvStore(size_t memtable_limit = 4096, size_t max_runs = 8)
      : memtable_limit_(memtable_limit), max_runs_(max_runs) {}

  void Put(uint64_t key, std::string value);
  std::optional<std::string> Get(uint64_t key) const;

  // Collects up to `count` live entries with key >= start_key in key order.
  // Returns the number visited; values are appended to `out` if non-null.
  size_t Scan(uint64_t start_key, size_t count,
              std::vector<std::pair<uint64_t, std::string>>* out = nullptr) const;

  void Delete(uint64_t key);  // tombstone

  size_t ApproxEntries() const;
  size_t num_runs() const { return runs_.size(); }
  size_t memtable_size() const { return memtable_.size(); }
  // Runs skipped by Bloom filters across all Gets (read-path telemetry).
  uint64_t bloom_skips() const { return bloom_skips_; }

  // Merges all runs + memtable into one run (manual compaction).
  void Compact();

 private:
  struct Entry {
    uint64_t key;
    std::string value;
    bool tombstone;
  };
  // A frozen, key-sorted, deduplicated run with its Bloom filter.
  struct Run {
    std::vector<Entry> entries;
    BloomFilter bloom;
  };

  void FreezeMemtable();
  void MaybeCompactTier();
  static Run SealRun(std::vector<Entry> entries);
  static const Entry* FindInRun(const Run& run, uint64_t key);

  size_t memtable_limit_;
  size_t max_runs_;
  // tombstone: nullopt value.
  std::map<uint64_t, std::optional<std::string>> memtable_;
  std::vector<Run> runs_;  // oldest first
  mutable uint64_t bloom_skips_ = 0;
};

// Wire protocol for the KV service (payload after the PSP header).
//   GET : op=1 | key u64
//   PUT : op=2 | key u64 | len u32 | bytes
//   SCAN: op=3 | start u64 | count u32
enum class KvOp : uint8_t { kGet = 1, kPut = 2, kScan = 3 };

struct KvRequest {
  KvOp op = KvOp::kGet;
  uint64_t key = 0;
  uint32_t count = 0;
  const std::byte* value = nullptr;
  uint32_t value_length = 0;
};

// Returns bytes written, 0 if it does not fit.
uint32_t EncodeKvRequest(const KvRequest& request, std::byte* buf,
                         uint32_t capacity);
// Returns nullopt for malformed payloads.
std::optional<KvRequest> DecodeKvRequest(const std::byte* buf,
                                         uint32_t length);

// Executes a decoded request against the store, writing a response:
//   GET  -> found u8 | len u32 | bytes
//   PUT  -> ok u8
//   SCAN -> visited u32 | sum-of-value-lengths u64
uint32_t ExecuteKvRequest(KvStore& store, const KvRequest& request,
                          std::byte* response, uint32_t capacity);

// Populates `store` with `keys` sequential keys carrying `value_size`-byte
// values, then compacts — the "file pinned in memory" of §5.4.4.
void LoadKvDataset(KvStore& store, uint64_t keys, size_t value_size);

}  // namespace psp

#endif  // PSP_SRC_APPS_KVSTORE_H_
