// An in-memory OLTP database implementing the five TPC-C transaction
// profiles of Table 4 (Payment, OrderStatus, NewOrder, Delivery, StockLevel)
// over the standard warehouse/district/customer/stock/order schema.
//
// The paper profiles these transactions on an in-memory database and replays
// them as a synthetic workload (§5.1); we implement the transactions for real
// so the runtime examples execute genuine database work. Warehouses are
// independently locked: workers running transactions against different
// warehouses proceed in parallel (the paper assumes requests are independent).
#ifndef PSP_SRC_APPS_TPCC_H_
#define PSP_SRC_APPS_TPCC_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace psp {

// Wire ids for the five transactions (Table 4 order, ascending runtime).
enum class TpccTxn : uint32_t {
  kPayment = 1,
  kOrderStatus = 2,
  kNewOrder = 3,
  kDelivery = 4,
  kStockLevel = 5,
};

struct TpccScale {
  uint32_t warehouses = 2;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 300;
  uint32_t items = 1000;
  uint32_t max_lines_per_order = 15;
};

class TpccDb {
 public:
  explicit TpccDb(const TpccScale& scale, uint64_t seed = 1);

  // --- Transactions. Each returns false on invalid ids. ---------------------

  struct PaymentParams {
    uint32_t warehouse;
    uint32_t district;
    uint32_t customer;
    double amount;
    // TPC-C: 15% of payments are made through a remote warehouse (the
    // customer's home warehouse differs from the paying one).
    int32_t customer_warehouse = -1;  // -1 = home warehouse
  };
  bool Payment(const PaymentParams& params);

  // TPC-C's by-last-name variant (60% of payments in the spec): selects the
  // median customer with that last name in the district.
  bool PaymentByLastName(uint32_t warehouse, uint32_t district,
                         const std::string& last_name, double amount);

  // Canonical TPC-C last name for a customer number (syllable rule, §4.3.2.3
  // of the spec).
  static std::string LastNameFor(uint32_t number);

  struct OrderStatusResult {
    uint64_t order_id = 0;
    uint32_t line_count = 0;
    double total_amount = 0;
  };
  std::optional<OrderStatusResult> OrderStatus(uint32_t warehouse,
                                               uint32_t district,
                                               uint32_t customer);

  struct NewOrderLine {
    uint32_t item;
    uint32_t quantity;
  };
  struct NewOrderResult {
    uint64_t order_id = 0;
    double total_amount = 0;
  };
  // Per the spec, a line naming an unknown item rolls the whole transaction
  // back (≈1% of NewOrders exercise this path); nothing is mutated then.
  std::optional<NewOrderResult> NewOrder(uint32_t warehouse, uint32_t district,
                                         uint32_t customer,
                                         const std::vector<NewOrderLine>& lines);

  // Delivers the oldest undelivered order in every district of `warehouse`.
  // Returns the number of orders delivered.
  uint32_t Delivery(uint32_t warehouse, uint32_t carrier);

  // Counts distinct items from the district's 20 most recent orders whose
  // stock quantity is below `threshold`.
  std::optional<uint32_t> StockLevel(uint32_t warehouse, uint32_t district,
                                     uint32_t threshold);

  const TpccScale& scale() const { return scale_; }

  // Consistency probe for tests: Σ district ytd == warehouse ytd.
  bool CheckYtdConsistency(uint32_t warehouse);
  // History record count (every payment appends one, per the spec).
  size_t HistorySize(uint32_t warehouse);

 private:
  struct Order {
    uint64_t id;
    uint32_t customer;
    int32_t carrier = -1;  // -1 = undelivered
    std::vector<NewOrderLine> lines;
    std::vector<double> amounts;
    double total = 0;
  };
  struct District {
    uint64_t next_order_id = 1;
    double ytd = 0;
    std::deque<Order> orders;          // recent orders, oldest first
    std::deque<uint64_t> new_orders;   // undelivered order ids
  };
  struct Customer {
    double balance = 0;
    double ytd_payment = 0;
    uint32_t payment_count = 0;
    uint64_t last_order = 0;
  };
  struct HistoryRecord {
    uint32_t district;
    uint32_t customer;
    double amount;
  };
  struct Warehouse {
    double ytd = 0;
    std::vector<District> districts;
    std::vector<Customer> customers;  // district-major
    std::vector<uint32_t> stock_quantity;
    std::vector<double> stock_ytd;
    std::vector<HistoryRecord> history;
    std::mutex mutex;
  };

  Customer& CustomerAt(Warehouse& w, uint32_t district, uint32_t customer) {
    return w.customers[district * scale_.customers_per_district + customer];
  }
  bool ValidIds(uint32_t warehouse, uint32_t district, uint32_t customer) const;

  TpccScale scale_;
  std::vector<double> item_price_;
  std::vector<std::unique_ptr<Warehouse>> warehouses_;
};

// --- Wire protocol (payload after the PSP header, txn id in the header) -------
struct TpccRequest {
  TpccTxn txn = TpccTxn::kPayment;
  uint32_t warehouse = 0;
  uint32_t district = 0;
  uint32_t customer = 0;
  uint32_t aux = 0;  // carrier / threshold / amount-cents
  std::vector<TpccDb::NewOrderLine> lines;
};

uint32_t EncodeTpccRequest(const TpccRequest& request, std::byte* buf,
                           uint32_t capacity);
std::optional<TpccRequest> DecodeTpccRequest(TpccTxn txn, const std::byte* buf,
                                             uint32_t length);

// Executes against the database; writes an 8-byte status/result code.
uint32_t ExecuteTpccRequest(TpccDb& db, const TpccRequest& request,
                            std::byte* response, uint32_t capacity);

// Generates a random valid request of the given transaction type.
TpccRequest MakeRandomTpccRequest(TpccTxn txn, const TpccScale& scale,
                                  Rng& rng);

}  // namespace psp

#endif  // PSP_SRC_APPS_TPCC_H_
