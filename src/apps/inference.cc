#include "src/apps/inference.h"

#include <cstring>

namespace psp {

DecisionTree::DecisionTree(uint32_t depth, uint32_t num_features, Rng& rng)
    : depth_(depth) {
  const size_t node_count = (size_t{1} << (depth + 1)) - 1;
  nodes_.resize(node_count);
  const size_t first_leaf = (size_t{1} << depth) - 1;
  for (size_t i = 0; i < node_count; ++i) {
    if (i < first_leaf) {
      nodes_[i].feature = static_cast<uint32_t>(rng.NextBounded(num_features));
      nodes_[i].threshold = static_cast<float>(rng.NextDouble());
    } else {
      nodes_[i].value = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
    }
  }
}

float DecisionTree::Predict(const float* features, size_t count) const {
  const size_t first_leaf = (size_t{1} << depth_) - 1;
  size_t node = 0;
  while (node < first_leaf) {
    const Node& n = nodes_[node];
    const float x = n.feature < count ? features[n.feature] : 0.0f;
    node = 2 * node + (x <= n.threshold ? 1 : 2);
  }
  return nodes_[node].value;
}

GbdtModel::GbdtModel(uint32_t num_trees, uint32_t depth, uint32_t num_features,
                     uint64_t seed)
    : num_features_(num_features) {
  Rng rng(seed);
  trees_.reserve(num_trees);
  for (uint32_t i = 0; i < num_trees; ++i) {
    trees_.emplace_back(depth, num_features, rng);
  }
}

float GbdtModel::Predict(const float* features, size_t count) const {
  float sum = 0;
  for (const auto& tree : trees_) {
    sum += tree.Predict(features, count);
  }
  return sum;
}

uint32_t EncodeInferenceRequest(const float* features, uint32_t count,
                                std::byte* buf, uint32_t capacity) {
  const uint32_t needed = 4 + count * 4;
  if (needed > capacity) {
    return 0;
  }
  std::memcpy(buf, &count, 4);
  if (count > 0) {
    std::memcpy(buf + 4, features, count * 4);
  }
  return needed;
}

std::optional<InferenceRequest> DecodeInferenceRequest(const std::byte* buf,
                                                       uint32_t length) {
  if (length < 4) {
    return std::nullopt;
  }
  InferenceRequest request;
  std::memcpy(&request.feature_count, buf, 4);
  if (4 + static_cast<uint64_t>(request.feature_count) * 4 > length) {
    return std::nullopt;
  }
  request.features = reinterpret_cast<const float*>(buf + 4);
  return request;
}

uint32_t ExecuteInference(const GbdtModel& model,
                          const InferenceRequest& request, std::byte* response,
                          uint32_t capacity) {
  if (capacity < 4) {
    return 0;
  }
  const float prediction =
      model.Predict(request.features, request.feature_count);
  std::memcpy(response, &prediction, 4);
  return 4;
}

}  // namespace psp
