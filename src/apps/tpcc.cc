#include "src/apps/tpcc.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

namespace psp {

TpccDb::TpccDb(const TpccScale& scale, uint64_t seed) : scale_(scale) {
  Rng rng(seed);
  item_price_.reserve(scale_.items);
  for (uint32_t i = 0; i < scale_.items; ++i) {
    item_price_.push_back(1.0 + static_cast<double>(rng.NextBounded(9900)) / 100.0);
  }
  warehouses_.reserve(scale_.warehouses);
  for (uint32_t w = 0; w < scale_.warehouses; ++w) {
    auto wh = std::make_unique<Warehouse>();
    wh->districts.resize(scale_.districts_per_warehouse);
    wh->customers.resize(scale_.districts_per_warehouse *
                         scale_.customers_per_district);
    wh->stock_quantity.resize(scale_.items);
    wh->stock_ytd.resize(scale_.items, 0);
    for (auto& q : wh->stock_quantity) {
      q = 10 + static_cast<uint32_t>(rng.NextBounded(90));
    }
    warehouses_.push_back(std::move(wh));
  }
}

bool TpccDb::ValidIds(uint32_t warehouse, uint32_t district,
                      uint32_t customer) const {
  return warehouse < scale_.warehouses &&
         district < scale_.districts_per_warehouse &&
         customer < scale_.customers_per_district;
}

bool TpccDb::Payment(const PaymentParams& params) {
  if (!ValidIds(params.warehouse, params.district, params.customer)) {
    return false;
  }
  const uint32_t customer_wh =
      params.customer_warehouse < 0
          ? params.warehouse
          : static_cast<uint32_t>(params.customer_warehouse);
  if (customer_wh >= scale_.warehouses) {
    return false;
  }
  // Paying warehouse/district take the revenue; the customer's record lives
  // in their home warehouse (remote payments touch two warehouses, locked in
  // id order to avoid deadlock).
  Warehouse& pay_wh = *warehouses_[params.warehouse];
  Warehouse& home_wh = *warehouses_[customer_wh];
  std::unique_lock<std::mutex> first_lock;
  std::unique_lock<std::mutex> second_lock;
  if (&pay_wh == &home_wh) {
    first_lock = std::unique_lock<std::mutex>(pay_wh.mutex);
  } else if (params.warehouse < customer_wh) {
    first_lock = std::unique_lock<std::mutex>(pay_wh.mutex);
    second_lock = std::unique_lock<std::mutex>(home_wh.mutex);
  } else {
    first_lock = std::unique_lock<std::mutex>(home_wh.mutex);
    second_lock = std::unique_lock<std::mutex>(pay_wh.mutex);
  }
  pay_wh.ytd += params.amount;
  pay_wh.districts[params.district].ytd += params.amount;
  Customer& c = CustomerAt(home_wh, params.district, params.customer);
  c.balance -= params.amount;
  c.ytd_payment += params.amount;
  ++c.payment_count;
  pay_wh.history.push_back(
      HistoryRecord{params.district, params.customer, params.amount});
  return true;
}

std::string TpccDb::LastNameFor(uint32_t number) {
  static const char* kSyllables[] = {"BAR", "OUGHT", "ABLE", "PRI", "PRES",
                                     "ESE", "ANTI",  "CALLY", "ATION", "EING"};
  std::string name;
  name += kSyllables[(number / 100) % 10];
  name += kSyllables[(number / 10) % 10];
  name += kSyllables[number % 10];
  return name;
}

bool TpccDb::PaymentByLastName(uint32_t warehouse, uint32_t district,
                               const std::string& last_name, double amount) {
  if (warehouse >= scale_.warehouses ||
      district >= scale_.districts_per_warehouse) {
    return false;
  }
  // Customers are named by the syllable rule over (customer_id % 1000);
  // collect matches and pick the median, per the spec.
  std::vector<uint32_t> matches;
  for (uint32_t c = 0; c < scale_.customers_per_district; ++c) {
    if (LastNameFor(c % 1000) == last_name) {
      matches.push_back(c);
    }
  }
  if (matches.empty()) {
    return false;
  }
  const uint32_t customer = matches[matches.size() / 2];
  return Payment(PaymentParams{warehouse, district, customer, amount});
}

size_t TpccDb::HistorySize(uint32_t warehouse) {
  if (warehouse >= scale_.warehouses) {
    return 0;
  }
  Warehouse& w = *warehouses_[warehouse];
  std::lock_guard<std::mutex> lock(w.mutex);
  return w.history.size();
}

std::optional<TpccDb::OrderStatusResult> TpccDb::OrderStatus(
    uint32_t warehouse, uint32_t district, uint32_t customer) {
  if (!ValidIds(warehouse, district, customer)) {
    return std::nullopt;
  }
  Warehouse& w = *warehouses_[warehouse];
  std::lock_guard<std::mutex> lock(w.mutex);
  const Customer& c = CustomerAt(w, district, customer);
  OrderStatusResult result;
  if (c.last_order == 0) {
    return result;  // customer has no orders yet
  }
  const District& d = w.districts[district];
  // Scan recent orders newest-first for this customer's last order.
  for (auto it = d.orders.rbegin(); it != d.orders.rend(); ++it) {
    if (it->id == c.last_order) {
      result.order_id = it->id;
      result.line_count = static_cast<uint32_t>(it->lines.size());
      result.total_amount = it->total;
      break;
    }
  }
  return result;
}

std::optional<TpccDb::NewOrderResult> TpccDb::NewOrder(
    uint32_t warehouse, uint32_t district, uint32_t customer,
    const std::vector<NewOrderLine>& lines) {
  if (!ValidIds(warehouse, district, customer) || lines.empty() ||
      lines.size() > scale_.max_lines_per_order) {
    return std::nullopt;
  }
  for (const auto& line : lines) {
    if (line.item >= scale_.items || line.quantity == 0) {
      return std::nullopt;
    }
  }
  Warehouse& w = *warehouses_[warehouse];
  std::lock_guard<std::mutex> lock(w.mutex);
  District& d = w.districts[district];

  Order order;
  order.id = d.next_order_id++;
  order.customer = customer;
  order.lines = lines;
  order.amounts.reserve(lines.size());
  for (const auto& line : lines) {
    // Stock update: decrement with the standard TPC-C wraparound.
    uint32_t& quantity = w.stock_quantity[line.item];
    if (quantity >= line.quantity + 10) {
      quantity -= line.quantity;
    } else {
      quantity = quantity + 91 - line.quantity;
    }
    w.stock_ytd[line.item] += line.quantity;
    const double amount = item_price_[line.item] * line.quantity;
    order.amounts.push_back(amount);
    order.total += amount;
  }
  CustomerAt(w, district, customer).last_order = order.id;
  d.new_orders.push_back(order.id);
  d.orders.push_back(std::move(order));
  // Retain a bounded window of recent orders (enough for StockLevel's 20).
  while (d.orders.size() > 64) {
    if (!d.new_orders.empty() && d.new_orders.front() == d.orders.front().id) {
      break;  // never evict undelivered orders
    }
    d.orders.pop_front();
  }
  return NewOrderResult{d.orders.back().id, d.orders.back().total};
}

uint32_t TpccDb::Delivery(uint32_t warehouse, uint32_t carrier) {
  if (warehouse >= scale_.warehouses) {
    return 0;
  }
  Warehouse& w = *warehouses_[warehouse];
  std::lock_guard<std::mutex> lock(w.mutex);
  uint32_t delivered = 0;
  for (uint32_t di = 0; di < scale_.districts_per_warehouse; ++di) {
    District& d = w.districts[di];
    if (d.new_orders.empty()) {
      continue;
    }
    const uint64_t order_id = d.new_orders.front();
    d.new_orders.pop_front();
    for (auto& order : d.orders) {
      if (order.id == order_id) {
        order.carrier = static_cast<int32_t>(carrier);
        CustomerAt(w, di, order.customer).balance += order.total;
        ++delivered;
        break;
      }
    }
  }
  return delivered;
}

std::optional<uint32_t> TpccDb::StockLevel(uint32_t warehouse,
                                           uint32_t district,
                                           uint32_t threshold) {
  if (warehouse >= scale_.warehouses ||
      district >= scale_.districts_per_warehouse) {
    return std::nullopt;
  }
  Warehouse& w = *warehouses_[warehouse];
  std::lock_guard<std::mutex> lock(w.mutex);
  const District& d = w.districts[district];
  std::set<uint32_t> low;
  size_t seen_orders = 0;
  for (auto it = d.orders.rbegin(); it != d.orders.rend() && seen_orders < 20;
       ++it, ++seen_orders) {
    for (const auto& line : it->lines) {
      if (w.stock_quantity[line.item] < threshold) {
        low.insert(line.item);
      }
    }
  }
  return static_cast<uint32_t>(low.size());
}

bool TpccDb::CheckYtdConsistency(uint32_t warehouse) {
  if (warehouse >= scale_.warehouses) {
    return false;
  }
  Warehouse& w = *warehouses_[warehouse];
  std::lock_guard<std::mutex> lock(w.mutex);
  double district_sum = 0;
  for (const auto& d : w.districts) {
    district_sum += d.ytd;
  }
  return std::abs(district_sum - w.ytd) < 1e-6 * std::max(1.0, w.ytd);
}

// --- Wire protocol -------------------------------------------------------------

namespace {

template <typename T>
void WriteScalar(std::byte* buf, uint32_t* offset, T value) {
  std::memcpy(buf + *offset, &value, sizeof(T));
  *offset += sizeof(T);
}

template <typename T>
bool ReadScalar(const std::byte* buf, uint32_t length, uint32_t* offset,
                T* value) {
  if (*offset + sizeof(T) > length) {
    return false;
  }
  std::memcpy(value, buf + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

uint32_t EncodeTpccRequest(const TpccRequest& request, std::byte* buf,
                           uint32_t capacity) {
  const uint32_t needed =
      16 + 1 + static_cast<uint32_t>(request.lines.size()) * 8;
  if (needed > capacity || request.lines.size() > 255) {
    return 0;
  }
  uint32_t offset = 0;
  WriteScalar(buf, &offset, request.warehouse);
  WriteScalar(buf, &offset, request.district);
  WriteScalar(buf, &offset, request.customer);
  WriteScalar(buf, &offset, request.aux);
  WriteScalar(buf, &offset, static_cast<uint8_t>(request.lines.size()));
  for (const auto& line : request.lines) {
    WriteScalar(buf, &offset, line.item);
    WriteScalar(buf, &offset, line.quantity);
  }
  return offset;
}

std::optional<TpccRequest> DecodeTpccRequest(TpccTxn txn, const std::byte* buf,
                                             uint32_t length) {
  TpccRequest request;
  request.txn = txn;
  uint32_t offset = 0;
  uint8_t line_count = 0;
  if (!ReadScalar(buf, length, &offset, &request.warehouse) ||
      !ReadScalar(buf, length, &offset, &request.district) ||
      !ReadScalar(buf, length, &offset, &request.customer) ||
      !ReadScalar(buf, length, &offset, &request.aux) ||
      !ReadScalar(buf, length, &offset, &line_count)) {
    return std::nullopt;
  }
  request.lines.reserve(line_count);
  for (uint8_t i = 0; i < line_count; ++i) {
    TpccDb::NewOrderLine line;
    if (!ReadScalar(buf, length, &offset, &line.item) ||
        !ReadScalar(buf, length, &offset, &line.quantity)) {
      return std::nullopt;
    }
    request.lines.push_back(line);
  }
  return request;
}

uint32_t ExecuteTpccRequest(TpccDb& db, const TpccRequest& request,
                            std::byte* response, uint32_t capacity) {
  if (capacity < 8) {
    return 0;
  }
  uint64_t result = 0;
  switch (request.txn) {
    case TpccTxn::kPayment:
      result = db.Payment(TpccDb::PaymentParams{
                   request.warehouse, request.district, request.customer,
                   static_cast<double>(request.aux) / 100.0})
                   ? 1
                   : 0;
      break;
    case TpccTxn::kOrderStatus: {
      const auto status =
          db.OrderStatus(request.warehouse, request.district, request.customer);
      result = status ? status->order_id : 0;
      break;
    }
    case TpccTxn::kNewOrder: {
      const auto order = db.NewOrder(request.warehouse, request.district,
                                     request.customer, request.lines);
      result = order ? order->order_id : 0;
      break;
    }
    case TpccTxn::kDelivery:
      result = db.Delivery(request.warehouse, request.aux);
      break;
    case TpccTxn::kStockLevel: {
      const auto level =
          db.StockLevel(request.warehouse, request.district, request.aux);
      result = level ? *level : 0;
      break;
    }
  }
  uint32_t offset = 0;
  WriteScalar(response, &offset, result);
  return offset;
}

TpccRequest MakeRandomTpccRequest(TpccTxn txn, const TpccScale& scale,
                                  Rng& rng) {
  TpccRequest request;
  request.txn = txn;
  request.warehouse = static_cast<uint32_t>(rng.NextBounded(scale.warehouses));
  request.district =
      static_cast<uint32_t>(rng.NextBounded(scale.districts_per_warehouse));
  request.customer =
      static_cast<uint32_t>(rng.NextBounded(scale.customers_per_district));
  switch (txn) {
    case TpccTxn::kPayment:
      request.aux = static_cast<uint32_t>(rng.NextBounded(500000)) + 100;
      break;
    case TpccTxn::kNewOrder: {
      const size_t lines = 5 + rng.NextBounded(11);  // 5..15
      for (size_t i = 0; i < lines; ++i) {
        request.lines.push_back(TpccDb::NewOrderLine{
            static_cast<uint32_t>(rng.NextBounded(scale.items)),
            static_cast<uint32_t>(rng.NextBounded(10)) + 1});
      }
      break;
    }
    case TpccTxn::kDelivery:
      request.aux = static_cast<uint32_t>(rng.NextBounded(10)) + 1;
      break;
    case TpccTxn::kStockLevel:
      request.aux = static_cast<uint32_t>(rng.NextBounded(10)) + 10;
      break;
    case TpccTxn::kOrderStatus:
      break;
  }
  return request;
}

}  // namespace psp
