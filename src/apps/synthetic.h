// Synthetic spin workload for the threaded runtime: the client encodes the
// requested service time in the payload; the handler spins for that long.
// This is how the paper runs the High/Extreme Bimodal and TPC-C synthetic
// experiments on its testbed (§5.1).
#ifndef PSP_SRC_APPS_SYNTHETIC_H_
#define PSP_SRC_APPS_SYNTHETIC_H_

#include <cstring>

#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"
#include "src/runtime/spin_work.h"

namespace psp {

// Server-side handler: spins for the duration carried in the payload.
inline RequestHandler MakeSpinHandler() {
  return [](const std::byte* payload, uint32_t length, std::byte* response,
            uint32_t capacity) -> uint32_t {
    Nanos duration = 0;
    if (length >= sizeof(Nanos)) {
      std::memcpy(&duration, payload, sizeof(Nanos));
    }
    SpinFor(duration);
    if (capacity >= sizeof(Nanos)) {
      std::memcpy(response, &duration, sizeof(Nanos));
      return sizeof(Nanos);
    }
    return 0;
  };
}

// Client-side payload builder for a fixed service time.
inline ClientRequestSpec MakeSpinSpec(TypeId wire_id, std::string name,
                                      double ratio, Nanos service_time) {
  ClientRequestSpec spec;
  spec.wire_id = wire_id;
  spec.name = std::move(name);
  spec.ratio = ratio;
  spec.build_payload = [service_time](std::byte* payload, uint32_t capacity,
                                      Rng&) -> uint32_t {
    if (capacity < sizeof(Nanos)) {
      return 0;
    }
    std::memcpy(payload, &service_time, sizeof(Nanos));
    return sizeof(Nanos);
  };
  return spec;
}

}  // namespace psp

#endif  // PSP_SRC_APPS_SYNTHETIC_H_
