// A gradient-boosted-decision-tree inference engine, the "fast inference
// engine" service class the paper names as a Perséphone target (§4.1,
// LightGBM-style). Ensembles of binary decision trees over dense float
// features; request types map naturally to model sizes (a 10-tree "light"
// model answers in microseconds, a 1000-tree "heavy" model takes 100×
// longer), giving a realistic typed-service-time workload.
#ifndef PSP_SRC_APPS_INFERENCE_H_
#define PSP_SRC_APPS_INFERENCE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/rng.h"

namespace psp {

// One binary decision tree over dense features, stored as a flat array.
// Inner nodes: feature index + threshold; leaves: output value.
class DecisionTree {
 public:
  // Builds a random full tree of the given depth (deterministic per seed).
  DecisionTree(uint32_t depth, uint32_t num_features, Rng& rng);

  float Predict(const float* features, size_t count) const;

  uint32_t depth() const { return depth_; }

 private:
  struct Node {
    uint32_t feature;   // inner node: feature index
    float threshold;    // inner node: split threshold
    float value;        // leaf: output
  };

  uint32_t depth_;
  std::vector<Node> nodes_;  // heap layout: node i -> children 2i+1 / 2i+2
};

// An ensemble (sum of trees) with an identifier, mimicking a deployed model.
class GbdtModel {
 public:
  GbdtModel(uint32_t num_trees, uint32_t depth, uint32_t num_features,
            uint64_t seed);

  float Predict(const float* features, size_t count) const;

  uint32_t num_trees() const { return static_cast<uint32_t>(trees_.size()); }
  uint32_t num_features() const { return num_features_; }

 private:
  uint32_t num_features_;
  std::vector<DecisionTree> trees_;
};

// Wire protocol for the inference service (payload after the PSP header):
//   feature_count u32 | features f32 × count
struct InferenceRequest {
  const float* features = nullptr;
  uint32_t feature_count = 0;
};

uint32_t EncodeInferenceRequest(const float* features, uint32_t count,
                                std::byte* buf, uint32_t capacity);
std::optional<InferenceRequest> DecodeInferenceRequest(const std::byte* buf,
                                                       uint32_t length);

// Runs the model; response: prediction f32. Returns bytes written.
uint32_t ExecuteInference(const GbdtModel& model,
                          const InferenceRequest& request, std::byte* response,
                          uint32_t capacity);

}  // namespace psp

#endif  // PSP_SRC_APPS_INFERENCE_H_
