#include "src/common/time.h"

namespace psp {

TscClock::TscClock(std::chrono::milliseconds calibration_window) {
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t tsc_start = ReadTsc();
  const auto deadline = wall_start + calibration_window;
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy-wait: sleeping would let the governor change frequency mid-window.
  }
  const uint64_t tsc_end = ReadTsc();
  const auto wall_end = std::chrono::steady_clock::now();

  const double elapsed_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall_end - wall_start)
                              .count());
  const double elapsed_cycles = static_cast<double>(tsc_end - tsc_start);
  cycles_per_sec_ = elapsed_cycles / elapsed_ns * 1e9;
  nanos_per_cycle_ = elapsed_ns / elapsed_cycles;
  tsc_origin_ = ReadTsc();
}

const TscClock& TscClock::Global() {
  static const TscClock clock;
  return clock;
}

}  // namespace psp
