#include "src/common/histogram.h"

#include <algorithm>

namespace psp {

uint64_t Histogram::ValueFor(size_t idx) {
  if (idx < kSubBuckets) {
    return static_cast<uint64_t>(idx);
  }
  const uint64_t beyond = static_cast<uint64_t>(idx) - kSubBuckets;
  const uint64_t tier = beyond / (kSubBuckets >> 1) + 1;
  const uint64_t offset_in_tier = beyond % (kSubBuckets >> 1);
  const uint64_t base = ((kSubBuckets >> 1) + offset_in_tier) << tier;
  // Highest value in bucket: base + width - 1.
  return base + (1ULL << tier) - 1;
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample (1-based), matching nearest-rank semantics.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return static_cast<int64_t>(std::min<uint64_t>(
          ValueFor(i), static_cast<uint64_t>(max_)));
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = 0;
}

}  // namespace psp
