// Multi-producer single-consumer bounded lock-free queue.
//
// Backs the shared buffer memory pool (paper §4.3.1): any worker may release
// buffers after transmission (multi-producer) while allocation refills are
// drained by one thread at a time per cache (single consumer per Pop call is
// sufficient for our usage; Pop is also safe from one designated consumer).
//
// Implementation: classic bounded MPMC ring of Dmitry Vyukov, restricted here
// to the MPSC usage (the algorithm itself is MPMC-safe, which keeps the pool
// flexible if multiple threads ever drain it).
#ifndef PSP_SRC_COMMON_MPSC_RING_H_
#define PSP_SRC_COMMON_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <new>

#include "src/common/spsc_ring.h"  // for kCacheLineSize

namespace psp {

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(size_t capacity) : mask_(capacity - 1) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "MpscRing requires trivially copyable payloads");
    if ((capacity & (capacity - 1)) != 0 || capacity == 0) {
      std::terminate();  // capacity must be a power of two
    }
    cells_ = new Cell[capacity];
    for (size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  ~MpscRing() { delete[] cells_; }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  bool TryPush(const T& value) {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *out = cell->value;
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  size_t SizeApprox() const {
    const size_t enq = enqueue_pos_.load(std::memory_order_acquire);
    const size_t deq = dequeue_pos_.load(std::memory_order_acquire);
    return enq >= deq ? enq - deq : 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    T value;
  };

  const size_t mask_;
  Cell* cells_;
  alignas(kCacheLineSize) std::atomic<size_t> enqueue_pos_{0};
  alignas(kCacheLineSize) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace psp

#endif  // PSP_SRC_COMMON_MPSC_RING_H_
