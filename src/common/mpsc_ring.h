// Multi-producer single-consumer bounded lock-free queue.
//
// Backs the shared buffer memory pool (paper §4.3.1): any worker may release
// buffers after transmission (multi-producer) while allocation refills are
// drained by one thread at a time per cache (single consumer per Pop call is
// sufficient for our usage; Pop is also safe from one designated consumer).
//
// Implementation: classic bounded MPMC ring of Dmitry Vyukov, restricted here
// to the MPSC usage (the algorithm itself is MPMC-safe, which keeps the pool
// flexible if multiple threads ever drain it).
#ifndef PSP_SRC_COMMON_MPSC_RING_H_
#define PSP_SRC_COMMON_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <new>

#include "src/common/spsc_ring.h"  // for kCacheLineSize

namespace psp {

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(size_t capacity) : mask_(capacity - 1) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "MpscRing requires trivially copyable payloads");
    if ((capacity & (capacity - 1)) != 0 || capacity == 0) {
      std::terminate();  // capacity must be a power of two
    }
    cells_ = new Cell[capacity];
    for (size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  ~MpscRing() { delete[] cells_; }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  bool TryPush(const T& value) {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Multi-producer burst push: claims a contiguous range of cells with ONE
  // CAS on the enqueue index (vs one per item), then fills and releases the
  // cells in order. Returns the number pushed (0 when full; may be < n).
  //
  // Range safety: consumers advance dequeue_pos in strictly increasing
  // order, so every cell below dequeue_pos + capacity is either recycled or
  // mid-consumption; the claim is capped to that bound before the CAS. A
  // consumer bumps dequeue_pos BEFORE it finishes reading the cell, though,
  // so each write below still waits for the cell's recycled sequence — the
  // common case is a single already-satisfied acquire load, and the wait is
  // bounded by the consumer's wait-free read+release.
  size_t TryPushBurst(const T* items, size_t n) {
    if (n == 0) {
      return 0;
    }
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    size_t count;
    for (;;) {
      const size_t deq = dequeue_pos_.load(std::memory_order_acquire);
      const size_t writable = deq + mask_ + 1 - pos;  // capacity - occupancy
      count = n < writable ? n : writable;
      if (count == 0 || count > mask_ + 1) {
        // Full, or `pos` went stale enough to underflow `writable`: re-read.
        const size_t fresh = enqueue_pos_.load(std::memory_order_relaxed);
        if (fresh != pos) {
          pos = fresh;
          continue;
        }
        return 0;
      }
      if (enqueue_pos_.compare_exchange_weak(pos, pos + count,
                                             std::memory_order_relaxed)) {
        break;  // cells [pos, pos + count) are exclusively ours
      }
      // CAS failure reloads `pos`; loop re-derives the writable bound.
    }
    for (size_t i = 0; i < count; ++i) {
      Cell& cell = cells_[(pos + i) & mask_];
      while (cell.sequence.load(std::memory_order_acquire) != pos + i) {
        // The consumer that recycles this cell has already claimed it and
        // releases the sequence right after its read completes.
      }
      cell.value = items[i];
      cell.sequence.store(pos + i + 1, std::memory_order_release);
    }
    return count;
  }

  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *out = cell->value;
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  // Single-consumer burst pop: drains up to `max_n` ready cells, then
  // publishes the dequeue index once. Requires the MPSC discipline (one
  // draining thread; do not mix with concurrent TryPop callers).
  size_t TryPopBurst(T* out, size_t max_n) {
    const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    size_t count = 0;
    while (count < max_n) {
      Cell& cell = cells_[(pos + count) & mask_];
      const size_t seq = cell.sequence.load(std::memory_order_acquire);
      if (seq != pos + count + 1) {
        break;  // next cell not yet published by its producer
      }
      out[count] = cell.value;
      cell.sequence.store(pos + count + mask_ + 1, std::memory_order_release);
      ++count;
    }
    if (count > 0) {
      dequeue_pos_.store(pos + count, std::memory_order_relaxed);
    }
    return count;
  }

  size_t SizeApprox() const {
    const size_t enq = enqueue_pos_.load(std::memory_order_acquire);
    const size_t deq = dequeue_pos_.load(std::memory_order_acquire);
    return enq >= deq ? enq - deq : 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    T value;
  };

  const size_t mask_;
  Cell* cells_;
  alignas(kCacheLineSize) std::atomic<size_t> enqueue_pos_{0};
  alignas(kCacheLineSize) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace psp

#endif  // PSP_SRC_COMMON_MPSC_RING_H_
