#include "src/common/memory_pool.h"

#include <cassert>

namespace psp {
namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

MemoryPool::MemoryPool(size_t buffer_size, size_t num_buffers)
    : buffer_size_((buffer_size + 63) & ~size_t{63}),
      num_buffers_(RoundUpPow2(num_buffers)) {
  // Buffers must start on cache-line boundaries (DMA-friendly, no false
  // sharing between adjacent buffers).
  storage_.reset(static_cast<std::byte*>(
      ::operator new[](buffer_size_ * num_buffers_, std::align_val_t{64})));
  // Ring is one slot class larger than the population so a full free list
  // always fits.
  free_ring_ = std::make_unique<MpscRing<uint32_t>>(num_buffers_);
  for (uint32_t i = 0; i < num_buffers_; ++i) {
    const bool ok = free_ring_->TryPush(i);
    assert(ok);
    (void)ok;
  }
}

std::byte* MemoryPool::AllocGlobal() {
  uint32_t idx;
  if (!free_ring_->TryPop(&idx)) {
    return nullptr;
  }
  return BufferAt(idx);
}

void MemoryPool::FreeGlobal(std::byte* ptr) {
  const bool ok = free_ring_->TryPush(IndexOf(ptr));
  assert(ok && "pool free ring can never overflow by construction");
  (void)ok;
}

bool MemoryPool::Owns(const std::byte* ptr) const {
  if (ptr < storage_.get() ||
      ptr >= storage_.get() + buffer_size_ * num_buffers_) {
    return false;
  }
  return (static_cast<size_t>(ptr - storage_.get()) % buffer_size_) == 0;
}

uint32_t MemoryPool::IndexOf(const std::byte* ptr) const {
  assert(Owns(ptr));
  return static_cast<uint32_t>(
      static_cast<size_t>(ptr - storage_.get()) / buffer_size_);
}

void BufferCache::FlushAll() {
  for (const uint32_t idx : local_) {
    const bool ok = pool_->free_ring_->TryPush(idx);
    assert(ok);
    (void)ok;
  }
  local_.clear();
}

bool BufferCache::Refill() {
  for (size_t i = 0; i < batch_; ++i) {
    uint32_t idx;
    if (!pool_->free_ring_->TryPop(&idx)) {
      break;
    }
    local_.push_back(idx);
  }
  return !local_.empty();
}

void BufferCache::FlushHalf() {
  const size_t keep = local_.size() / 2;
  while (local_.size() > keep) {
    const bool ok = pool_->free_ring_->TryPush(local_.back());
    assert(ok);
    (void)ok;
    local_.pop_back();
  }
}

}  // namespace psp
