// Fixed-size network buffer pool, modelled after DPDK mempools as the paper
// uses them (§4.3.1): a statically allocated region registered once, backed by
// a multi-producer ring so any worker can release buffers after transmission,
// with per-thread buffer caches to keep the hot path off the shared ring.
#ifndef PSP_SRC_COMMON_MEMORY_POOL_H_
#define PSP_SRC_COMMON_MEMORY_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/mpsc_ring.h"

namespace psp {

class BufferCache;

// The shared pool. Thread-safe alloc/free through BufferCache handles or the
// direct (ring-hitting) AllocGlobal/FreeGlobal calls.
class MemoryPool {
 public:
  // num_buffers is rounded up to a power of two; buffer_size is rounded up to
  // a multiple of 64 so buffers never share cache lines.
  MemoryPool(size_t buffer_size, size_t num_buffers);

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  // Allocates straight from the shared ring. Returns nullptr when exhausted.
  std::byte* AllocGlobal();
  // Returns a buffer to the shared ring. `ptr` must come from this pool.
  void FreeGlobal(std::byte* ptr);

  size_t buffer_size() const { return buffer_size_; }
  size_t num_buffers() const { return num_buffers_; }
  // Buffers currently available in the shared ring (excludes cached ones).
  size_t AvailableApprox() const { return free_ring_->SizeApprox(); }

  // True if ptr points at the start of a buffer owned by this pool.
  bool Owns(const std::byte* ptr) const;
  uint32_t IndexOf(const std::byte* ptr) const;
  std::byte* BufferAt(uint32_t index) {
    return storage_.get() + static_cast<size_t>(index) * buffer_size_;
  }

 private:
  friend class BufferCache;

  struct AlignedDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };

  size_t buffer_size_;
  size_t num_buffers_;
  std::unique_ptr<std::byte[], AlignedDelete> storage_;
  std::unique_ptr<MpscRing<uint32_t>> free_ring_;
};

// A thread-local allocation cache bound to a MemoryPool. Not thread-safe:
// each worker owns exactly one cache (paper: "thread-local buffer cache to
// decrease interactions with the main memory pool").
class BufferCache {
 public:
  // batch: how many buffers to move per refill/flush (power of locality).
  explicit BufferCache(MemoryPool* pool, size_t batch = 32)
      : pool_(pool), batch_(batch) {
    local_.reserve(2 * batch);
  }

  ~BufferCache() { FlushAll(); }

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  // Returns nullptr when the pool is exhausted.
  std::byte* Alloc() {
    if (local_.empty() && !Refill()) {
      return nullptr;
    }
    const uint32_t idx = local_.back();
    local_.pop_back();
    return pool_->BufferAt(idx);
  }

  void Free(std::byte* ptr) {
    local_.push_back(pool_->IndexOf(ptr));
    if (local_.size() >= 2 * batch_) {
      FlushHalf();
    }
  }

  // Returns every cached buffer to the shared pool.
  void FlushAll();

  size_t CachedCount() const { return local_.size(); }

 private:
  bool Refill();
  void FlushHalf();

  MemoryPool* pool_;
  size_t batch_;
  std::vector<uint32_t> local_;
};

}  // namespace psp

#endif  // PSP_SRC_COMMON_MEMORY_POOL_H_
