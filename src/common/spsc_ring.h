// Single-producer single-consumer lock-free circular buffer used as the
// dispatcher <-> worker communication channel (paper §4.3.2).
//
// The design follows the lightweight RPC pattern inspired by Barrelfish that
// the paper describes: sender and receiver each keep a *local* copy of the
// remote head/tail and only re-read the shared (cache-coherent) index when
// their local state says the ring is full (producer) or empty (consumer).
// This keeps the common-case operation free of cache-coherence traffic on the
// peer's index line.
#ifndef PSP_SRC_COMMON_SPSC_RING_H_
#define PSP_SRC_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <new>

namespace psp {

// 64 bytes on every mainstream x86/ARM server part; fixed rather than using
// std::hardware_destructive_interference_size so the ABI does not depend on
// compiler tuning flags.
inline constexpr size_t kCacheLineSize = 64;

// T must be trivially copyable (slots are raw storage; typical payloads are
// pointers or small PODs). Capacity must be a power of two.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(new T[capacity]) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "SpscRing requires trivially copyable payloads");
    if ((capacity & (capacity - 1)) != 0 || capacity == 0) {
      std::terminate();  // programming error: capacity must be a power of two
    }
  }

  ~SpscRing() { delete[] slots_; }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false when the ring is full.
  bool TryPush(const T& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      // Local view says full: refresh from the shared head (the only
      // cross-core read on this path, taken rarely).
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) {
        return false;
      }
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer side, burst variant (mirrors DPDK rx_burst/tx_burst): copies up
  // to `n` items and publishes them with a single release store of the tail,
  // so the consumer-visible index (and its cache line) is touched once per
  // burst instead of once per item. Returns the number actually pushed
  // (0 when full; may be < n on a partially full ring).
  size_t TryPushBurst(const T* items, size_t n) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t free = capacity_ - (tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (tail - head_cache_);
    }
    const size_t count = n < free ? n : free;
    for (size_t i = 0; i < count; ++i) {
      slots_[(tail + i) & mask_] = items[i];
    }
    if (count > 0) {
      tail_.store(tail + count, std::memory_order_release);
    }
    return count;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;
      }
    }
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side, burst variant: drains up to `max_n` items and publishes
  // the new head with a single release store. Returns the number popped.
  size_t TryPopBurst(T* out, size_t max_n) {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t avail = tail_cache_ - head;
    if (avail < max_n) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
    }
    const size_t count = max_n < avail ? max_n : avail;
    for (size_t i = 0; i < count; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    if (count > 0) {
      head_.store(head + count, std::memory_order_release);
    }
    return count;
  }

  // Approximate occupancy (exact only when called from the consumer with a
  // quiescent producer, and vice versa).
  size_t SizeApprox() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  const size_t mask_;
  T* const slots_;

  // Producer-owned line: shared tail + producer's cached view of head.
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  size_t head_cache_ = 0;

  // Consumer-owned line: shared head + consumer's cached view of tail.
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  size_t tail_cache_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_COMMON_SPSC_RING_H_
