// Deterministic, fast pseudo-random number generation for the simulator and
// load generators. xoshiro256++ seeded via SplitMix64, per Blackman & Vigna.
// Deterministic seeding keeps every experiment reproducible bit-for-bit.
#ifndef PSP_SRC_COMMON_RNG_H_
#define PSP_SRC_COMMON_RNG_H_

#include <cstdint>

namespace psp {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256++ 1.0. Passes BigCrush; period 2^256 - 1.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    seed_ = seed;
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  // The seed this generator was (last) seeded with; Split derives stream
  // seeds from it, never from the evolving state.
  uint64_t seed() const { return seed_; }

  // Derives the seed of stream `stream_id` under root seed `root_seed`: a
  // pure function of (root_seed, stream_id), so stream k is the same
  // regardless of how many sibling streams exist or in which order they are
  // split off. Two SplitMix64 scrambles keep nearby (seed, stream) pairs
  // decorrelated (splitmix64 is a bijection, so distinct inputs stay
  // distinct).
  static uint64_t StreamSeed(uint64_t root_seed, uint64_t stream_id) {
    SplitMix64 root(root_seed);
    SplitMix64 stream(root.Next() + 0x9E3779B97F4A7C15ULL * stream_id);
    return stream.Next();
  }

  // A child generator for stream `stream_id`, split off this generator's
  // seed. Independent of how many values this generator has produced: the
  // fleet layer splits one per server, and same-fleet-seed runs are
  // bit-deterministic regardless of server count.
  Rng Split(uint64_t stream_id) const {
    return Rng(StreamSeed(seed_, stream_id));
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  // multiply-shift reduction (slightly biased for huge bounds; fine here).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // UniformRandomBitGenerator interface for <random> compatibility.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  uint64_t seed_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_COMMON_RNG_H_
