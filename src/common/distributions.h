// Service-time and inter-arrival distributions used by workload generators.
//
// The paper's workloads (Tables 3 & 4, the RocksDB mix) are n-modal discrete
// mixtures of (nearly) fixed service times; arrivals follow a Poisson process
// (exponential inter-arrivals). We also provide exponential and lognormal
// service distributions for sensitivity experiments.
#ifndef PSP_SRC_COMMON_DISTRIBUTIONS_H_
#define PSP_SRC_COMMON_DISTRIBUTIONS_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace psp {

// A draw from an n-modal workload mixture: which mode (request type slot) was
// selected and the service time drawn for it.
struct MixtureDraw {
  uint32_t mode = 0;
  Nanos service_time = 0;
};

// Abstract positive-valued distribution over nanoseconds.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual Nanos Sample(Rng& rng) const = 0;
  virtual double MeanNanos() const = 0;
  virtual std::string Describe() const = 0;
};

// Always returns the same value.
class FixedDistribution final : public Distribution {
 public:
  explicit FixedDistribution(Nanos value) : value_(value) {}
  Nanos Sample(Rng&) const override { return value_; }
  double MeanNanos() const override { return static_cast<double>(value_); }
  std::string Describe() const override;

 private:
  Nanos value_;
};

// Exponential with the given mean.
class ExponentialDistribution final : public Distribution {
 public:
  explicit ExponentialDistribution(double mean_nanos) : mean_(mean_nanos) {}
  Nanos Sample(Rng& rng) const override {
    // Inverse CDF; clamp u away from 0 to avoid log(0).
    double u = rng.NextDouble();
    if (u <= 0.0) {
      u = 1e-18;
    }
    const double v = -mean_ * std::log(1.0 - u);
    return static_cast<Nanos>(v) + 1;  // strictly positive
  }
  double MeanNanos() const override { return mean_; }
  std::string Describe() const override;

 private:
  double mean_;
};

// Lognormal parameterised by its (linear-space) mean and sigma of the
// underlying normal.
class LognormalDistribution final : public Distribution {
 public:
  LognormalDistribution(double mean_nanos, double sigma);
  Nanos Sample(Rng& rng) const override;
  double MeanNanos() const override { return mean_; }
  std::string Describe() const override;

 private:
  double mean_;
  double mu_;
  double sigma_;
};

// Uniform over [lo, hi].
class UniformDistribution final : public Distribution {
 public:
  UniformDistribution(Nanos lo, Nanos hi) : lo_(lo), hi_(hi) {}
  Nanos Sample(Rng& rng) const override {
    return lo_ + static_cast<Nanos>(
                     rng.NextBounded(static_cast<uint64_t>(hi_ - lo_ + 1)));
  }
  double MeanNanos() const override {
    return 0.5 * (static_cast<double>(lo_) + static_cast<double>(hi_));
  }
  std::string Describe() const override;

 private:
  Nanos lo_;
  Nanos hi_;
};

// Discrete mixture of component distributions with occurrence ratios; this is
// the n-modal shape of all paper workloads. Ratios are normalised internally.
class DiscreteMixture final : public Distribution {
 public:
  struct Component {
    double ratio;                                // occurrence ratio (weight)
    std::shared_ptr<const Distribution> dist;    // per-mode service time
  };

  explicit DiscreteMixture(std::vector<Component> components);

  // Distribution interface: samples a mode, then its service time.
  Nanos Sample(Rng& rng) const override { return SampleDraw(rng).service_time; }
  double MeanNanos() const override { return mean_; }
  std::string Describe() const override;

  // Returns both the mode index and the drawn service time.
  MixtureDraw SampleDraw(Rng& rng) const;

  size_t num_components() const { return components_.size(); }
  const Component& component(size_t i) const { return components_[i]; }
  // Normalised occurrence ratio of mode i.
  double ratio(size_t i) const { return components_[i].ratio; }

 private:
  std::vector<Component> components_;  // ratios normalised to sum 1
  std::vector<double> cumulative_;     // prefix sums of ratios
  double mean_ = 0;
};

// Convenience constructors for the paper's workload mixes.
// Each mode is a fixed service time with an occurrence ratio.
struct ModeSpec {
  double microseconds;
  double ratio;
};
std::shared_ptr<const DiscreteMixture> MakeModalMixture(
    const std::vector<ModeSpec>& modes);

// A Poisson arrival process: exponential gaps with mean 1/rate.
class PoissonProcess {
 public:
  // rate_per_sec: average arrivals per second.
  PoissonProcess(double rate_per_sec, uint64_t seed)
      : gap_mean_nanos_(1e9 / rate_per_sec), rng_(seed) {}

  // Advances and returns the next arrival instant (strictly increasing).
  Nanos NextArrival() {
    double u = rng_.NextDouble();
    if (u <= 0.0) {
      u = 1e-18;
    }
    const double gap = -gap_mean_nanos_ * std::log(1.0 - u);
    next_ += static_cast<Nanos>(gap) + 1;
    return next_;
  }

  void set_rate_per_sec(double rate_per_sec) {
    gap_mean_nanos_ = 1e9 / rate_per_sec;
  }
  double rate_per_sec() const { return 1e9 / gap_mean_nanos_; }

 private:
  double gap_mean_nanos_;
  Nanos next_ = 0;
  Rng rng_;
};

}  // namespace psp

#endif  // PSP_SRC_COMMON_DISTRIBUTIONS_H_
