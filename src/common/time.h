// Time utilities: nanosecond time points for both the discrete-event simulator
// and the threaded runtime, plus a calibrated TSC clock for cycle-accurate
// measurement on real hardware.
#ifndef PSP_SRC_COMMON_TIME_H_
#define PSP_SRC_COMMON_TIME_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace psp {

// Nanoseconds since an arbitrary epoch. Both engines (simulated and real time)
// express instants and durations in this unit so the core scheduler code is
// engine-agnostic.
using Nanos = int64_t;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

constexpr Nanos FromMicros(double us) { return static_cast<Nanos>(us * 1e3); }
constexpr double ToMicros(Nanos ns) { return static_cast<double>(ns) / 1e3; }

// Reads the CPU timestamp counter. Falls back to steady_clock on non-x86.
inline uint64_t ReadTsc() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// A calibrated TSC clock. Calibration measures the TSC frequency once against
// steady_clock; afterwards Now() costs a single rdtsc plus a multiply.
class TscClock {
 public:
  // Calibrates for roughly `calibration_window` of wall time (default 20 ms).
  explicit TscClock(std::chrono::milliseconds calibration_window =
                        std::chrono::milliseconds(20));

  // Nanoseconds since this clock was constructed.
  Nanos Now() const {
    return CyclesToNanos(ReadTsc() - tsc_origin_);
  }

  // Estimated TSC frequency in cycles per second.
  double cycles_per_sec() const { return cycles_per_sec_; }

  Nanos CyclesToNanos(uint64_t cycles) const {
    return static_cast<Nanos>(static_cast<double>(cycles) * nanos_per_cycle_);
  }

  uint64_t NanosToCycles(Nanos ns) const {
    return static_cast<uint64_t>(static_cast<double>(ns) / nanos_per_cycle_);
  }

  // Busy-waits until Now() >= deadline (sub-microsecond precision).
  void SpinUntil(Nanos deadline) const {
    while (Now() < deadline) {
#if defined(__x86_64__) || defined(_M_X64)
      _mm_pause();
#endif
    }
  }

  // Process-wide shared instance (calibrated on first use).
  static const TscClock& Global();

 private:
  uint64_t tsc_origin_ = 0;
  double cycles_per_sec_ = 0;
  double nanos_per_cycle_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_COMMON_TIME_H_
