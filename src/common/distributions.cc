#include "src/common/distributions.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psp {

std::string FixedDistribution::Describe() const {
  std::ostringstream os;
  os << "Fixed(" << ToMicros(value_) << "us)";
  return os.str();
}

std::string ExponentialDistribution::Describe() const {
  std::ostringstream os;
  os << "Exp(mean=" << mean_ / 1e3 << "us)";
  return os.str();
}

LognormalDistribution::LognormalDistribution(double mean_nanos, double sigma)
    : mean_(mean_nanos), sigma_(sigma) {
  if (mean_nanos <= 0) {
    throw std::invalid_argument("lognormal mean must be positive");
  }
  // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
  mu_ = std::log(mean_nanos) - 0.5 * sigma * sigma;
}

Nanos LognormalDistribution::Sample(Rng& rng) const {
  // Box-Muller transform.
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-18;
  }
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double v = std::exp(mu_ + sigma_ * z);
  return static_cast<Nanos>(v) + 1;
}

std::string LognormalDistribution::Describe() const {
  std::ostringstream os;
  os << "Lognormal(mean=" << mean_ / 1e3 << "us, sigma=" << sigma_ << ")";
  return os.str();
}

std::string UniformDistribution::Describe() const {
  std::ostringstream os;
  os << "Uniform(" << ToMicros(lo_) << "us, " << ToMicros(hi_) << "us)";
  return os.str();
}

DiscreteMixture::DiscreteMixture(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("mixture needs at least one component");
  }
  double total = 0;
  for (const auto& c : components_) {
    if (c.ratio < 0 || c.dist == nullptr) {
      throw std::invalid_argument("mixture component needs ratio>=0 and dist");
    }
    total += c.ratio;
  }
  if (total <= 0) {
    throw std::invalid_argument("mixture ratios must sum to > 0");
  }
  cumulative_.reserve(components_.size());
  double acc = 0;
  for (auto& c : components_) {
    c.ratio /= total;
    acc += c.ratio;
    cumulative_.push_back(acc);
    mean_ += c.ratio * c.dist->MeanNanos();
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

MixtureDraw DiscreteMixture::SampleDraw(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto mode = static_cast<uint32_t>(
      std::min<size_t>(static_cast<size_t>(it - cumulative_.begin()),
                       components_.size() - 1));
  return MixtureDraw{mode, components_[mode].dist->Sample(rng)};
}

std::string DiscreteMixture::Describe() const {
  std::ostringstream os;
  os << "Mixture[";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << components_[i].ratio * 100 << "% " << components_[i].dist->Describe();
  }
  os << "]";
  return os.str();
}

std::shared_ptr<const DiscreteMixture> MakeModalMixture(
    const std::vector<ModeSpec>& modes) {
  std::vector<DiscreteMixture::Component> components;
  components.reserve(modes.size());
  for (const auto& m : modes) {
    components.push_back(DiscreteMixture::Component{
        m.ratio, std::make_shared<FixedDistribution>(FromMicros(m.microseconds))});
  }
  return std::make_shared<DiscreteMixture>(std::move(components));
}

}  // namespace psp
