// A Bloom filter over 64-bit keys, used by the log-structured KV store to
// skip sorted runs that cannot contain a key (the standard LSM read-path
// optimisation RocksDB applies per SSTable).
#ifndef PSP_SRC_COMMON_BLOOM_FILTER_H_
#define PSP_SRC_COMMON_BLOOM_FILTER_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace psp {

class BloomFilter {
 public:
  // Sizes the filter for `expected_keys` at roughly `false_positive_rate`
  // using the standard m = -n ln p / ln^2 2, k = (m/n) ln 2 formulas.
  explicit BloomFilter(size_t expected_keys = 1024,
                       double false_positive_rate = 0.01) {
    expected_keys = expected_keys == 0 ? 1 : expected_keys;
    const double ln2 = std::log(2.0);
    const double m = -static_cast<double>(expected_keys) *
                     std::log(false_positive_rate) / (ln2 * ln2);
    bits_.assign((static_cast<size_t>(m) + 63) / 64 + 1, 0);
    num_hashes_ = std::max(1, static_cast<int>(std::lround(
                                  m / static_cast<double>(expected_keys) * ln2)));
  }

  void Add(uint64_t key) {
    const auto [h1, h2] = Hashes(key);
    for (int i = 0; i < num_hashes_; ++i) {
      SetBit(h1 + static_cast<uint64_t>(i) * h2);
    }
  }

  // False positives possible; false negatives are not.
  bool MayContain(uint64_t key) const {
    const auto [h1, h2] = Hashes(key);
    for (int i = 0; i < num_hashes_; ++i) {
      if (!TestBit(h1 + static_cast<uint64_t>(i) * h2)) {
        return false;
      }
    }
    return true;
  }

  size_t bit_count() const { return bits_.size() * 64; }
  int num_hashes() const { return num_hashes_; }

 private:
  // Double hashing from one SplitMix-style mix.
  static std::pair<uint64_t, uint64_t> Hashes(uint64_t key) {
    uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    const uint64_t h1 = z ^ (z >> 31);
    const uint64_t h2 = (z * 0xff51afd7ed558ccdULL) | 1;  // odd stride
    return {h1, h2};
  }

  void SetBit(uint64_t hash) {
    const size_t bit = hash % (bits_.size() * 64);
    bits_[bit >> 6] |= 1ULL << (bit & 63);
  }
  bool TestBit(uint64_t hash) const {
    const size_t bit = hash % (bits_.size() * 64);
    return (bits_[bit >> 6] >> (bit & 63)) & 1ULL;
  }

  std::vector<uint64_t> bits_;
  int num_hashes_ = 1;
};

}  // namespace psp

#endif  // PSP_SRC_COMMON_BLOOM_FILTER_H_
