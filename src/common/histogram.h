// Log-linear latency histogram (HDR-histogram style) for recording response
// times and slowdowns with bounded memory and <0.1% relative error, plus exact
// percentile extraction helpers used by benchmark harnesses.
#ifndef PSP_SRC_COMMON_HISTOGRAM_H_
#define PSP_SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace psp {

// Records non-negative int64 values. Values up to `kSubBuckets` are exact;
// larger values are bucketed with relative precision 1/kSubBuckets (~0.05%).
class Histogram {
 public:
  Histogram() : counts_(kInitialSlots, 0) {}

  void Add(int64_t value) {
    if (value < 0) {
      value = 0;
    }
    const size_t idx = IndexFor(static_cast<uint64_t>(value));
    if (idx >= counts_.size()) {
      counts_.resize(idx + 1, 0);
    }
    ++counts_[idx];
    ++count_;
    sum_ += value;
    if (value > max_) {
      max_ = value;
    }
    if (value < min_ || count_ == 1) {
      min_ = value;
    }
  }

  // Value at percentile p in [0, 100]. Returns a representative value with
  // bucket precision. Returns 0 when empty.
  int64_t Percentile(double p) const;

  uint64_t Count() const { return count_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  int64_t Max() const { return max_; }
  int64_t Min() const { return count_ == 0 ? 0 : min_; }

  void Merge(const Histogram& other);
  void Reset();

 private:
  static constexpr uint64_t kSubBucketBits = 11;  // 2048 sub-buckets per tier
  static constexpr uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  static constexpr size_t kInitialSlots = 4096;

  // Maps a value to a dense bucket index.
  static size_t IndexFor(uint64_t value) {
    if (value < kSubBuckets) {
      return static_cast<size_t>(value);
    }
    // Tier t covers [2^(kSubBucketBits+t-1), 2^(kSubBucketBits+t)) with
    // kSubBuckets/2 buckets of width 2^t.
    const int msb = 63 - __builtin_clzll(value);
    const int tier = msb - static_cast<int>(kSubBucketBits) + 1;
    const uint64_t width_shift = static_cast<uint64_t>(tier);
    const uint64_t offset_in_tier =
        (value >> width_shift) - (kSubBuckets >> 1);
    return static_cast<size_t>(kSubBuckets +
                               static_cast<uint64_t>(tier - 1) *
                                   (kSubBuckets >> 1) +
                               offset_in_tier);
  }

  // Highest value mapping to bucket `idx` (used for percentile reporting).
  static uint64_t ValueFor(size_t idx);

  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
  int64_t min_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_COMMON_HISTOGRAM_H_
