// Slack-aware DARC reservation (PolicyMode::kDarcSlack): Algorithm 2 with
// the demand inputs re-weighted by *deadline risk* instead of occurrence
// alone. Plain DARC sizes a type's reserved group by its CPU demand
// R_i × S_i; the slack variant asks how close the type runs to its deadline
// budget D_i and inflates the demand of types whose budget leaves little
// slack — "deadline at risk" types get cores first, types with generous
// budgets cede them.
//
// Urgency of type i:  u_i = S_i / max(D_i − S_i, ε)
// (service time over remaining slack). A type whose budget is 2× its mean
// has u = 1; a 10× budget has u ≈ 0.11; a budget at or below the mean is
// clamped to the fully-at-risk ceiling. The inflated ratio R_i × (1 + u_i)
// feeds the *unchanged* ComputeReservation — grouping, rounding, spillway
// and stealing all reuse src/core/reservation.cc verbatim, so the variant
// inherits Algorithm 2's invariants (every type served, shorter groups steal
// from longer, never the reverse).
//
// Types without a deadline budget (D_i = 0) keep their plain ratio: with no
// budgets at all the computation degenerates to exactly plain DARC.
#ifndef PSP_SRC_SCHED_SLACK_RESERVATION_H_
#define PSP_SRC_SCHED_SLACK_RESERVATION_H_

#include <vector>

#include "src/common/time.h"
#include "src/core/reservation.h"

namespace psp {

// Caps u_i so a pathological budget (at or below the mean) cannot starve
// every other type of the pool: a fully-at-risk type weighs at most
// 1 + kMaxUrgency = 9× its plain demand.
inline constexpr double kMaxUrgency = 8.0;

// Risk weight for one type: 1 + u_i, in [1, 1 + kMaxUrgency]. `budget` is
// the type's relative deadline budget (DeadlineConfig resolution); 0 = no
// deadline = weight 1.
double SlackRiskWeight(double mean_service_nanos, Nanos budget);

// Algorithm 2 over risk-inflated demands. `budgets` is parallel to `demands`
// (budgets[i] belongs to demands[i]); missing/zero entries mean no deadline.
// Ratios need not be normalised (ComputeReservation normalises internally,
// which is what makes a pure multiplicative re-weighting sufficient).
Reservation ComputeSlackReservation(const std::vector<TypeDemand>& demands,
                                    const std::vector<Nanos>& budgets,
                                    const ReservationConfig& config);

}  // namespace psp

#endif  // PSP_SRC_SCHED_SLACK_RESERVATION_H_
