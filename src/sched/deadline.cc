#include "src/sched/deadline.h"

#include <cmath>
#include <set>

namespace psp {

Nanos DeadlineConfig::BudgetFor(const std::string& type_name,
                                Nanos expected_mean) const {
  for (const DeadlineTarget& t : targets) {
    if (t.type_name == type_name) {
      if (t.budget > 0) {
        return t.budget;
      }
      if (t.slowdown > 0 && expected_mean > 0) {
        return static_cast<Nanos>(
            std::llround(t.slowdown * static_cast<double>(expected_mean)));
      }
      return 0;
    }
  }
  if (default_slowdown > 0 && expected_mean > 0) {
    return static_cast<Nanos>(
        std::llround(default_slowdown * static_cast<double>(expected_mean)));
  }
  return 0;
}

std::string DeadlineConfig::Validate() const {
  std::set<std::string> seen;
  for (const DeadlineTarget& t : targets) {
    if (t.type_name.empty()) {
      return "deadline target with empty type name";
    }
    if (!seen.insert(t.type_name).second) {
      return "duplicate deadline target for type \"" + t.type_name + "\"";
    }
    if (t.budget < 0) {
      return "negative deadline budget for type \"" + t.type_name + "\"";
    }
    if (t.slowdown < 0 || !std::isfinite(t.slowdown)) {
      return "bad deadline slowdown for type \"" + t.type_name + "\"";
    }
    if (t.budget == 0 && t.slowdown == 0) {
      return "deadline target for type \"" + t.type_name +
             "\" sets neither budget nor slowdown";
    }
  }
  if (default_slowdown < 0 || !std::isfinite(default_slowdown)) {
    return "bad deadline default_slowdown";
  }
  if (shed_safety <= 0 || !std::isfinite(shed_safety)) {
    return "shed_safety must be positive";
  }
  return "";
}

DeadlineConfig DeadlineConfigFromSlo(const SloConfig& slo, bool shed) {
  DeadlineConfig out;
  out.shed = shed;
  out.targets.reserve(slo.targets.size());
  for (const SloTarget& t : slo.targets) {
    DeadlineTarget target;
    target.type_name = t.type_name;
    target.slowdown = t.slowdown;
    out.targets.push_back(std::move(target));
  }
  return out;
}

}  // namespace psp
