// Deadline tier configuration (ROADMAP item 3): per-type completion budgets
// that close the loop from *observing* SLOs (the PR 2 monitor) to *enforcing*
// them. A DeadlineConfig names per-type targets — either an absolute budget
// or a slowdown multiple of the type's expected mean — which the engines
// resolve to absolute `Request::deadline` stamps at ingress. The stamps feed
// three consumers: the EDF dispatch order (PolicyMode::kEdf), the slack-aware
// DARC reservation (PolicyMode::kDarcSlack), and the admission-control shed
// predicate (src/sched/admission.h).
//
// Clients can override the per-type target per request by carrying a budget
// on the wire (PspHeader::deadline_us); the ingress stamp then uses the wire
// value and the config is the fallback.
#ifndef PSP_SRC_SCHED_DEADLINE_H_
#define PSP_SRC_SCHED_DEADLINE_H_

#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/telemetry/slo.h"

namespace psp {

// One per-type deadline target, matched to scheduler types by *name* (the
// human-stable key across both engines, same convention as SloTarget).
// Exactly one of {budget, slowdown} should be set: an absolute budget wins;
// otherwise the budget is slowdown × the type's expected mean service time.
struct DeadlineTarget {
  std::string type_name;
  Nanos budget = 0;      // absolute budget from arrival; 0 = derive
  double slowdown = 0;   // budget = slowdown * expected mean when budget == 0
};

struct DeadlineConfig {
  std::vector<DeadlineTarget> targets;  // empty + default off = tier disabled
  // Types without an explicit target get default_slowdown × expected mean as
  // their budget; 0 means untargeted types carry no deadline.
  double default_slowdown = 0;
  // Admission control: when true, requests whose predicted completion
  // (src/sched/admission.h) exceeds their deadline are shed at enqueue.
  bool shed = false;
  // Inflates the predicted completion before comparing against the deadline;
  // >1 sheds earlier (conservative), <1 sheds later (optimistic).
  double shed_safety = 1.0;

  // True when any stamping rule exists — the engines skip all deadline work
  // otherwise, so the tier is pay-for-what-you-use.
  bool enabled() const { return !targets.empty() || default_slowdown > 0; }

  // Resolves the budget for a type: explicit target first (absolute budget
  // wins over slowdown), then default_slowdown. 0 = no deadline.
  Nanos BudgetFor(const std::string& type_name, Nanos expected_mean) const;

  // Empty string = valid; otherwise a description of the misconfiguration
  // (duplicate type names, non-positive budgets/slowdowns, bad safety).
  std::string Validate() const;
};

// Seeds a DeadlineConfig from the SLO monitor's slowdown targets: each
// SloTarget becomes a DeadlineTarget with the same slowdown multiple, so the
// deadline the scheduler *enforces* is exactly the objective the monitor
// *observes*. `shed` carries through to the returned config.
DeadlineConfig DeadlineConfigFromSlo(const SloConfig& slo, bool shed = false);

}  // namespace psp

#endif  // PSP_SRC_SCHED_DEADLINE_H_
