// Admission control for the deadline tier: a pure, deterministic shed
// predicate evaluated at enqueue time. A request already destined to miss its
// deadline is worthless work — admitting it wastes a core that could serve a
// request which can still make it (the RackSched/RAIN argument, applied
// inside one server). Shedding feeds the engines' existing drop telemetry
// plus dedicated `scheduler.deadline.shed` counters.
//
// The prediction is intentionally a first-order queueing model, not an
// oracle: the work ahead of the request (queue depth × the type's expected
// mean) drains across the workers serving the type, then the request itself
// runs for one mean. Everything is integer arithmetic on engine-clock Nanos —
// no wall clock, no RNG — so same-seed simulator replays stay bit-identical
// with shedding enabled.
#ifndef PSP_SRC_SCHED_ADMISSION_H_
#define PSP_SRC_SCHED_ADMISSION_H_

#include <cstdint>

#include "src/common/time.h"

namespace psp {

struct AdmissionDecision {
  bool admit = true;
  Nanos predicted_completion = 0;  // 0 when no prediction applies
};

// Inputs to the shed predicate for one request:
//   now            engine clock at enqueue
//   deadline       the request's absolute deadline (0 = no deadline: admit)
//   queue_depth    requests already waiting ahead of it in its queue
//   expected_mean  the type's expected mean service time (profiled or seed);
//                  0 = no model: admit (never shed blind)
//   workers        cores currently serving the type (its reserved group when
//                  DARC is active, else the whole pool); clamped to >= 1
//   safety_milli   shed_safety in milli units (1000 = 1.0); the predicted
//                  sojourn is scaled by this before the comparison, keeping
//                  the arithmetic integral and replay-deterministic
inline AdmissionDecision PredictAdmission(Nanos now, Nanos deadline,
                                          uint64_t queue_depth,
                                          Nanos expected_mean,
                                          uint32_t workers,
                                          int64_t safety_milli = 1000) {
  AdmissionDecision out;
  if (deadline <= 0 || expected_mean <= 0) {
    return out;  // nothing to predict against
  }
  const uint64_t servers = workers == 0 ? 1 : workers;
  // Work ahead drains across `servers` cores; the request then occupies one
  // core for its own mean. Integer division floors the wait — optimistic by
  // less than one mean, which shed_safety can compensate for.
  const Nanos wait = static_cast<Nanos>(
      queue_depth * static_cast<uint64_t>(expected_mean) / servers);
  const Nanos sojourn = wait + expected_mean;
  const Nanos scaled =
      static_cast<Nanos>(static_cast<int64_t>(sojourn) * safety_milli / 1000);
  out.predicted_completion = now + scaled;
  out.admit = out.predicted_completion <= deadline;
  return out;
}

}  // namespace psp

#endif  // PSP_SRC_SCHED_ADMISSION_H_
