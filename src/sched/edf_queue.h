// Bucketed earliest-deadline-first queue in the Eiffel find-first-set style
// already used by the simulator's timer wheel (src/sim/event_queue.h): a ring
// of deadline buckets with a two-level occupancy bitmap, so push and
// pop-earliest are O(1) — one bucket append and one constant-bound bitmap
// scan — instead of the O(log n) of a comparison heap.
//
// Layout: bucket b holds requests whose absolute deadline falls in tick
// b = deadline >> bucket_shift. The queue keeps a monotone cursor (the tick
// of the earliest live bucket); all live entries sit in the ring window
// [cursor, cursor + kBuckets), so a circular find-first-set scan starting at
// the cursor's ring slot finds the globally earliest deadline exactly.
// Clamping handles both edges deterministically:
//   * already-late deadlines (tick < cursor) clamp to the cursor bucket —
//     late work is the most urgent and drains first, in FIFO order;
//   * far-future deadlines (tick >= cursor + kBuckets) clamp to the last
//     ring bucket — ordering beyond the horizon is approximate by design
//     (the horizon is kBuckets × bucket width ≈ 4.2 s at the 1 µs default,
//     far beyond any sane deadline), and requests without a deadline (0)
//     park there explicitly so deadlined work always goes first.
// Within a bucket, order is FIFO push order — the deterministic tie-break
// the replay goldens rely on.
//
// Single-writer discipline mirrors TypedQueue: all mutation happens on the
// scheduling thread; size/drops are relaxed atomics only so cross-thread
// telemetry snapshots read them race-free.
#ifndef PSP_SRC_SCHED_EDF_QUEUE_H_
#define PSP_SRC_SCHED_EDF_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/request.h"

namespace psp {

class EdfQueue {
 public:
  // 4096 buckets × 64 bits-per-word = a 64-word bitmap with a single
  // summary word on top — the same two-level FFS shape as the timer wheel's
  // per-level bitmaps, sized so one summary word covers the whole ring.
  static constexpr uint32_t kBuckets = 4096;
  static constexpr uint32_t kBitmapWords = kBuckets / 64;

  // `bucket_shift` sets the bucket width to 2^shift nanos (default 2^10 ≈
  // 1 µs — finer than any service time the paper's workloads schedule, so
  // same-bucket ties are genuinely simultaneous deadlines).
  explicit EdfQueue(size_t capacity = 4096, uint32_t bucket_shift = 10)
      : capacity_(capacity), bucket_shift_(bucket_shift), buckets_(kBuckets) {}

  // Enqueues by absolute deadline; false (and a counted drop) when the queue
  // is at capacity. Requests with deadline 0 park in the horizon bucket.
  bool Push(const Request& request) {
    const size_t size = size_.load(std::memory_order_relaxed);
    if (size == capacity_) {
      drops_.store(drops_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
      return false;
    }
    // Re-anchor an empty ring at the incoming *arrival* so the window tracks
    // the engine clock: a long idle gap can leave the cursor behind (precise
    // deadlines would clamp to the horizon bucket), and a pop can leave it
    // parked at a future deadline tick (earlier deadlines pushed next would
    // clamp to it as "late"). Deadlines are stamped arrival + budget, so
    // anchoring at the arrival keeps every upcoming deadline inside the
    // precise window. Safe in both directions: no live entries constrain an
    // empty ring's cursor. Falls back to the deadline when the caller did
    // not stamp an arrival.
    if (size == 0) {
      const Nanos anchor =
          request.arrival > 0 ? request.arrival : request.deadline;
      if (anchor > 0) {
        cursor_ = static_cast<uint64_t>(anchor) >> bucket_shift_;
      }
    }
    const uint64_t tick = TickFor(request);
    const uint32_t slot = static_cast<uint32_t>(tick) & (kBuckets - 1);
    buckets_[slot].push_back(request);
    MarkOccupied(slot);
    size_.store(size + 1, std::memory_order_relaxed);
    return true;
  }

  // Pops the earliest-deadline request (FIFO within a bucket). False when
  // empty. Advances the cursor to the popped bucket's tick, so the window
  // invariant holds for subsequent pushes.
  bool PopEarliest(Request* out) {
    const size_t size = size_.load(std::memory_order_relaxed);
    if (size == 0) {
      return false;
    }
    const uint32_t slot = FindFirstOccupied();
    auto& bucket = buckets_[slot];
    *out = bucket.front();
    bucket.erase(bucket.begin());
    if (bucket.empty()) {
      ClearOccupied(slot);
    }
    // Commit the cursor to the popped bucket so the ring window stays
    // anchored at the earliest live deadline.
    cursor_ = AbsoluteTickOf(slot);
    size_.store(size - 1, std::memory_order_relaxed);
    return true;
  }

  // Deadline of the earliest request without popping; false when empty.
  bool PeekEarliest(Request* out) const {
    if (Empty()) {
      return false;
    }
    *out = buckets_[FindFirstOccupied()].front();
    return true;
  }

  bool Empty() const { return Size() == 0; }
  size_t Size() const { return size_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }
  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  Nanos bucket_width() const { return Nanos{1} << bucket_shift_; }

 private:
  // Ring tick for a request: deadline bucket clamped into the live window.
  uint64_t TickFor(const Request& request) const {
    if (request.deadline <= 0) {
      return cursor_ + kBuckets - 1;  // no deadline: drain last
    }
    const uint64_t tick =
        static_cast<uint64_t>(request.deadline) >> bucket_shift_;
    if (tick < cursor_) {
      return cursor_;  // already late: most urgent
    }
    if (tick >= cursor_ + kBuckets - 1) {
      return cursor_ + kBuckets - 1;  // beyond the horizon: approximate
    }
    return tick;
  }

  // Absolute tick of a ring slot within the window [cursor, cursor+kBuckets).
  uint64_t AbsoluteTickOf(uint32_t slot) const {
    const uint32_t cursor_slot = static_cast<uint32_t>(cursor_) &
                                 (kBuckets - 1);
    const uint32_t delta = (slot - cursor_slot) & (kBuckets - 1);
    return cursor_ + delta;
  }

  void MarkOccupied(uint32_t slot) {
    bitmap_[slot >> 6] |= uint64_t{1} << (slot & 63);
    summary_ |= uint64_t{1} << (slot >> 6);
  }

  void ClearOccupied(uint32_t slot) {
    bitmap_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
    if (bitmap_[slot >> 6] == 0) {
      summary_ &= ~(uint64_t{1} << (slot >> 6));
    }
  }

  // Circular find-first-set starting at the cursor's ring slot. Because all
  // live entries fall in [cursor, cursor + kBuckets), the first hit going
  // clockwise from the cursor is the earliest absolute tick. Two-level:
  // the summary word narrows to a 64-bucket word, one ctz narrows to the
  // bucket — constant work regardless of population.
  uint32_t FindFirstOccupied() const {
    const uint32_t start = static_cast<uint32_t>(cursor_) & (kBuckets - 1);
    const uint32_t start_word = start >> 6;
    // The start word needs its low bits masked; subsequent words are whole.
    const uint64_t head =
        bitmap_[start_word] & (~uint64_t{0} << (start & 63));
    if (head != 0) {
      return start_word * 64 + static_cast<uint32_t>(__builtin_ctzll(head));
    }
    // Rotate the summary so the search starts just past start_word, then one
    // ctz picks the next occupied word in circular order.
    const uint32_t from = (start_word + 1) & (kBitmapWords - 1);
    const uint64_t rotated =
        from == 0 ? summary_
                  : (summary_ >> from) | (summary_ << (kBitmapWords - from));
    const uint32_t word =
        (from + static_cast<uint32_t>(__builtin_ctzll(rotated))) &
        (kBitmapWords - 1);
    return word * 64 + static_cast<uint32_t>(__builtin_ctzll(bitmap_[word]));
  }

  size_t capacity_;
  uint32_t bucket_shift_;
  std::vector<std::vector<Request>> buckets_;
  uint64_t bitmap_[kBitmapWords] = {};
  uint64_t summary_ = 0;  // bit w set iff bitmap_[w] != 0
  uint64_t cursor_ = 0;   // absolute tick of the earliest live bucket
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> drops_{0};
};

}  // namespace psp

#endif  // PSP_SRC_SCHED_EDF_QUEUE_H_
