#include "src/sched/slack_reservation.h"

namespace psp {

double SlackRiskWeight(double mean_service_nanos, Nanos budget) {
  if (budget <= 0 || mean_service_nanos <= 0) {
    return 1.0;
  }
  const double slack = static_cast<double>(budget) - mean_service_nanos;
  if (slack <= 0) {
    return 1.0 + kMaxUrgency;  // budget at or below the mean: fully at risk
  }
  const double urgency = mean_service_nanos / slack;
  return 1.0 + (urgency > kMaxUrgency ? kMaxUrgency : urgency);
}

Reservation ComputeSlackReservation(const std::vector<TypeDemand>& demands,
                                    const std::vector<Nanos>& budgets,
                                    const ReservationConfig& config) {
  std::vector<TypeDemand> inflated = demands;
  for (size_t i = 0; i < inflated.size(); ++i) {
    const Nanos budget = i < budgets.size() ? budgets[i] : 0;
    inflated[i].ratio *=
        SlackRiskWeight(inflated[i].mean_service_nanos, budget);
  }
  return ComputeReservation(inflated, config);
}

}  // namespace psp
