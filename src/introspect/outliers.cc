#include "src/introspect/outliers.h"

#include <algorithm>

namespace psp {
namespace {

// Min-heap order: the root is the *least* slow retained record (the next
// eviction candidate). Ties rank by request id so the retained set — and
// therefore the JSON — is deterministic when totals collide.
bool HeapAfter(const OutlierEntry& a, const OutlierEntry& b) {
  if (a.total != b.total) {
    return a.total > b.total;
  }
  return a.trace.request_id > b.trace.request_id;
}

// Display order: slowest first.
bool SlowestFirst(const OutlierEntry& a, const OutlierEntry& b) {
  if (a.total != b.total) {
    return a.total > b.total;
  }
  return a.trace.request_id < b.trace.request_id;
}

void AppendEntryJson(std::string* out, const OutlierEntry& e) {
  *out += "{\"request_id\":" + std::to_string(e.trace.request_id) +
          ",\"worker\":" + std::to_string(e.trace.worker) +
          ",\"total_nanos\":" + std::to_string(e.total) + ",\"stages\":{";
  const struct {
    const char* label;
    TraceStage from;
    TraceStage to;
  } spans[] = {
      {"preprocess", TraceStage::kRx, TraceStage::kEnqueued},
      {"queueing", TraceStage::kEnqueued, TraceStage::kDispatched},
      {"handoff", TraceStage::kDispatched, TraceStage::kHandlerStart},
      {"service", TraceStage::kHandlerStart, TraceStage::kHandlerEnd},
      {"reply", TraceStage::kHandlerEnd, TraceStage::kTx},
  };
  bool first = true;
  for (const auto& span : spans) {
    if (!first) {
      *out += ',';
    }
    first = false;
    *out += '"';
    *out += span.label;
    *out += "\":" + std::to_string(e.trace.Span(span.from, span.to));
  }
  *out += "},\"stamps\":[";
  for (size_t s = 0; s < kNumTraceStages; ++s) {
    if (s != 0) {
      *out += ',';
    }
    *out += std::to_string(e.trace.stamp[s]);
  }
  *out += "]}";
}

}  // namespace

std::string OutlierConfig::Validate() const {
  if (!enabled) {
    return "";
  }
  if (k == 0) {
    return "outliers: k must be > 0";
  }
  if (window < 0) {
    return "outliers: window must be >= 0";
  }
  return "";
}

OutlierRecorder::OutlierRecorder(OutlierConfig config) : config_(config) {}

void OutlierRecorder::Offer(const RequestTrace& trace, Nanos now) {
  if (trace.At(TraceStage::kRx) == 0 || trace.At(TraceStage::kTx) == 0) {
    return;  // no ranking key without both endpoints
  }
  OutlierEntry entry;
  entry.trace = trace;
  entry.total = trace.Span(TraceStage::kRx, TraceStage::kTx);

  std::lock_guard<std::mutex> lock(mutex_);
  ++offered_;
  if (config_.window > 0) {
    if (window_end_ == 0) {
      // First offer pins the grid, like the time-series recorder.
      window_start_ = now / config_.window * config_.window;
      window_end_ = window_start_ + config_.window;
      window_seq_ = static_cast<uint64_t>(window_start_ / config_.window);
    } else if (now >= window_end_) {
      RotateLocked(now);
    }
  }
  TypeRing& ring = current_[trace.type];
  if (ring.heap.size() < config_.k) {
    ring.heap.push_back(entry);
    std::push_heap(ring.heap.begin(), ring.heap.end(), HeapAfter);
    return;
  }
  // Full: keep only if slower than the current cheapest retained record.
  if (!HeapAfter(entry, ring.heap.front())) {
    return;
  }
  std::pop_heap(ring.heap.begin(), ring.heap.end(), HeapAfter);
  ring.heap.back() = entry;
  std::push_heap(ring.heap.begin(), ring.heap.end(), HeapAfter);
}

void OutlierRecorder::RotateLocked(Nanos now) {
  previous_ = OutlierWindow{};
  previous_.seq = window_seq_;
  previous_.start = window_start_;
  previous_.end = window_end_;
  for (const auto& [type, ring] : current_) {
    if (ring.heap.empty()) {
      continue;
    }
    std::vector<OutlierEntry> sorted = ring.heap;
    std::sort(sorted.begin(), sorted.end(), SlowestFirst);
    previous_.per_type.emplace(type, std::move(sorted));
  }
  has_previous_ = true;
  current_.clear();
  ++rotations_;
  // Jump straight to the window containing `now` (idle stretches skip
  // windows instead of replaying them).
  window_start_ = now / config_.window * config_.window;
  window_end_ = window_start_ + config_.window;
  window_seq_ = static_cast<uint64_t>(window_start_ / config_.window);
}

std::vector<OutlierWindow> OutlierRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<OutlierWindow> out;
  OutlierWindow cur;
  cur.seq = window_seq_;
  cur.start = window_start_;
  cur.end = 0;  // still open
  for (const auto& [type, ring] : current_) {
    if (ring.heap.empty()) {
      continue;
    }
    std::vector<OutlierEntry> sorted = ring.heap;
    std::sort(sorted.begin(), sorted.end(), SlowestFirst);
    cur.per_type.emplace(type, std::move(sorted));
  }
  out.push_back(std::move(cur));
  if (has_previous_) {
    out.push_back(previous_);
  }
  return out;
}

uint64_t OutlierRecorder::offered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return offered_;
}

uint64_t OutlierRecorder::windows_rotated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rotations_;
}

std::string OutlierRecorder::ToJson(
    const std::map<uint32_t, std::string>& type_names) const {
  const std::vector<OutlierWindow> windows = Snapshot();
  std::string out = "{\"k\":" + std::to_string(config_.k) +
                    ",\"window_nanos\":" + std::to_string(config_.window) +
                    ",\"windows\":[";
  bool first_window = true;
  for (const OutlierWindow& w : windows) {
    if (!first_window) {
      out += ',';
    }
    first_window = false;
    out += "{\"seq\":" + std::to_string(w.seq) +
           ",\"start\":" + std::to_string(w.start) +
           ",\"end\":" + std::to_string(w.end) +
           ",\"open\":" + (w.end == 0 ? "true" : "false") + ",\"types\":[";
    bool first_type = true;
    for (const auto& [type, entries] : w.per_type) {
      if (!first_type) {
        out += ',';
      }
      first_type = false;
      const auto it = type_names.find(type);
      const std::string name = it != type_names.end()
                                   ? it->second
                                   : "type-" + std::to_string(type);
      std::string escaped;
      for (const char c : name) {
        if (c == '"' || c == '\\') {
          escaped += '\\';
        }
        if (c == '\n') {
          escaped += "\\n";
          continue;
        }
        escaped += c;
      }
      out += "{\"type\":" + std::to_string(type) + ",\"name\":\"" + escaped +
             "\",\"outliers\":[";
      bool first_entry = true;
      for (const OutlierEntry& e : entries) {
        if (!first_entry) {
          out += ',';
        }
        first_entry = false;
        AppendEntryJson(&out, e);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace psp
