#include "src/introspect/prometheus.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <map>
#include <utility>
#include <vector>

namespace psp {
namespace {

// Splits "<prefix><N>.<field>" into (N, field); false for any other shape.
// Folds indexed instrument names ("worker.3.requests",
// "ingress.shard.1.rx_datagrams") into one labelled metric per field.
bool SplitIndexedMetric(const std::string& name, const char* prefix,
                        std::string* index, std::string* field) {
  const size_t prefix_len = std::strlen(prefix);
  if (name.compare(0, prefix_len, prefix) != 0) {
    return false;
  }
  const size_t dot = name.find('.', prefix_len);
  if (dot == std::string::npos || dot == prefix_len ||
      dot + 1 >= name.size()) {
    return false;
  }
  for (size_t i = prefix_len; i < dot; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  *index = name.substr(prefix_len, dot - prefix_len);
  *field = name.substr(dot + 1);
  return true;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendTypeHeader(std::string* out, const std::string& metric,
                      const char* type, const std::string& help) {
  *out += "# HELP " + metric + ' ' + help + '\n';
  *out += "# TYPE " + metric + ' ';
  *out += type;
  *out += '\n';
}

// One sample line with an arbitrary label set:
//   name{l1="v1",l2="v2"} v
void AppendMultiLabelSample(
    std::string* out, const std::string& metric,
    std::initializer_list<std::pair<const char*, std::string>> labels,
    const std::string& value) {
  *out += metric;
  *out += '{';
  bool first = true;
  for (const auto& [label, label_value] : labels) {
    if (!first) {
      *out += ',';
    }
    first = false;
    *out += label;
    *out += "=\"" + PrometheusLabelEscape(label_value) + "\"";
  }
  *out += "} ";
  *out += value;
  *out += '\n';
}

// One labelled sample line: name{label="value"} v
void AppendSample(std::string* out, const std::string& metric,
                  const char* label, const std::string& label_value,
                  const std::string& value) {
  *out += metric;
  if (label != nullptr) {
    *out += '{';
    *out += label;
    *out += "=\"" + PrometheusLabelEscape(label_value) + "\"";
    *out += '}';
  }
  *out += ' ';
  *out += value;
  *out += '\n';
}

std::string ResolveTypeName(const TelemetrySnapshot& snap, uint32_t type) {
  const auto it = snap.type_names.find(type);
  return it != snap.type_names.end() ? it->second
                                     : "type-" + std::to_string(type);
}

// Renders a family of scalar instruments, folding worker.<N>.<field> names
// into one labelled metric per field. `suffix` is "_total" for counters.
template <typename Map>
void RenderScalars(std::string* out, const Map& values, const char* prom_type,
                   const char* suffix, const char* source_kind) {
  // field -> [(index, value)]; plain names render directly in map order.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      per_worker;
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      per_shard;
  for (const auto& [name, value] : values) {
    std::string index, field;
    if (SplitIndexedMetric(name, "worker.", &index, &field)) {
      per_worker[field].emplace_back(index, std::to_string(value));
      continue;
    }
    if (SplitIndexedMetric(name, "ingress.shard.", &index, &field)) {
      per_shard[field].emplace_back(index, std::to_string(value));
      continue;
    }
    const std::string metric = "psp_" + PrometheusMetricName(name) + suffix;
    AppendTypeHeader(out, metric, prom_type,
                     std::string(source_kind) + " \"" + name + "\"");
    AppendSample(out, metric, nullptr, "", std::to_string(value));
  }
  for (const auto& [field, samples] : per_worker) {
    const std::string metric =
        "psp_worker_" + PrometheusMetricName(field) + suffix;
    AppendTypeHeader(out, metric, prom_type,
                     std::string(source_kind) + " \"worker.<N>." + field +
                         "\" per worker");
    for (const auto& [worker, value] : samples) {
      AppendSample(out, metric, "worker", worker, value);
    }
  }
  for (const auto& [field, samples] : per_shard) {
    const std::string metric =
        "psp_ingress_shard_" + PrometheusMetricName(field) + suffix;
    AppendTypeHeader(out, metric, prom_type,
                     std::string(source_kind) + " \"ingress.shard.<N>." +
                         field + "\" per socket shard");
    for (const auto& [shard, value] : samples) {
      AppendSample(out, metric, "shard", shard, value);
    }
  }
}

void RenderSummaries(std::string* out, const TelemetrySnapshot& snap) {
  for (const auto& [name, hist] : snap.histograms) {
    const std::string metric = "psp_" + PrometheusMetricName(name);
    AppendTypeHeader(out, metric, "summary",
                     "histogram \"" + name + "\" as quantile summary");
    const struct {
      const char* q;
      double p;
    } quantiles[] = {{"0.5", 50.0}, {"0.99", 99.0}, {"0.999", 99.9}};
    for (const auto& q : quantiles) {
      AppendSample(out, metric, "quantile", q.q,
                   std::to_string(hist.Count() > 0 ? hist.Percentile(q.p)
                                                   : 0));
    }
    std::string sum;
    AppendDouble(&sum, hist.Mean() * static_cast<double>(hist.Count()));
    *out += metric + "_sum " + sum + '\n';
    *out += metric + "_count " + std::to_string(hist.Count()) + '\n';
  }
}

// The latest closed time-series interval: per-type windowed gauges (the
// live "what is each type doing right now" view DARC analysis needs).
void RenderLatestInterval(std::string* out, const TelemetrySnapshot& snap) {
  if (snap.timeseries.empty()) {
    return;
  }
  const IntervalRecord& rec = snap.timeseries.back();

  const struct {
    const char* metric;
    std::string value;
    const char* help;
  } scalars[] = {
      {"psp_interval_seq", std::to_string(rec.seq),
       "sequence number of the latest closed time-series interval"},
      {"psp_interval_end_nanos", std::to_string(rec.end),
       "end timestamp of the latest closed interval"},
      {"psp_interval_reservation_updates",
       std::to_string(rec.reservation_updates),
       "DARC reservation updates applied within the latest interval"},
  };
  for (const auto& s : scalars) {
    AppendTypeHeader(out, s.metric, "gauge", s.help);
    AppendSample(out, s.metric, nullptr, "", s.value);
  }
  {
    AppendTypeHeader(out, "psp_interval_arrival_rate_rps", "gauge",
                     "arrival rate over the latest interval, all types");
    std::string v;
    AppendDouble(&v, rec.arrival_rate_rps);
    AppendSample(out, "psp_interval_arrival_rate_rps", nullptr, "", v);
    AppendTypeHeader(out, "psp_interval_completion_rate_rps", "gauge",
                     "completion rate over the latest interval, all types");
    v.clear();
    AppendDouble(&v, rec.completion_rate_rps);
    AppendSample(out, "psp_interval_completion_rate_rps", nullptr, "", v);
  }

  struct TypeMetric {
    const char* metric;
    const char* help;
    int64_t (*value)(const TypeIntervalStats&);
    bool skip_negative;
    // Render the family only when some type has a non-zero value (used by
    // the deadline families so deadline-free engines keep their exact
    // pre-existing scrape output).
    bool skip_if_all_zero = false;
  };
  const TypeMetric type_metrics[] = {
      {"psp_type_interval_arrivals", "arrivals in the latest interval",
       [](const TypeIntervalStats& t) {
         return static_cast<int64_t>(t.arrivals);
       },
       false},
      {"psp_type_interval_completions", "completions in the latest interval",
       [](const TypeIntervalStats& t) {
         return static_cast<int64_t>(t.completions);
       },
       false},
      {"psp_type_interval_drops", "flow-control drops in the latest interval",
       [](const TypeIntervalStats& t) {
         return static_cast<int64_t>(t.drops);
       },
       false},
      {"psp_type_interval_slo_violations",
       "SLO violations in the latest interval",
       [](const TypeIntervalStats& t) {
         return static_cast<int64_t>(t.slo_violations);
       },
       false},
      {"psp_deadline_type_interval_misses",
       "deadline misses in the latest interval",
       [](const TypeIntervalStats& t) {
         return static_cast<int64_t>(t.deadline_misses);
       },
       false, /*skip_if_all_zero=*/true},
      {"psp_deadline_type_interval_sheds",
       "admission-control sheds in the latest interval",
       [](const TypeIntervalStats& t) {
         return static_cast<int64_t>(t.deadline_sheds);
       },
       false, /*skip_if_all_zero=*/true},
      {"psp_type_queue_depth",
       "typed-queue depth sampled at the latest interval close",
       [](const TypeIntervalStats& t) { return t.queue_depth; }, true},
      {"psp_type_reserved_workers",
       "DARC reserved-core share sampled at the latest interval close",
       [](const TypeIntervalStats& t) { return t.reserved_workers; }, true},
      {"psp_type_slowdown_p50_milli",
       "windowed p50 slowdown, milli units (1000 = 1.0x)",
       [](const TypeIntervalStats& t) { return t.slowdown_p50_milli; }, false},
      {"psp_type_slowdown_p99_milli",
       "windowed p99 slowdown, milli units (1000 = 1.0x)",
       [](const TypeIntervalStats& t) { return t.slowdown_p99_milli; }, false},
      {"psp_type_slowdown_p999_milli",
       "windowed p99.9 slowdown, milli units (1000 = 1.0x)",
       [](const TypeIntervalStats& t) { return t.slowdown_p999_milli; },
       false},
  };
  for (const TypeMetric& m : type_metrics) {
    if (m.skip_if_all_zero) {
      bool any_nonzero = false;
      for (const TypeIntervalStats& t : rec.types) {
        if (m.value(t) != 0) {
          any_nonzero = true;
          break;
        }
      }
      if (!any_nonzero) {
        continue;
      }
    }
    bool any = false;
    for (const TypeIntervalStats& t : rec.types) {
      if (m.skip_negative && m.value(t) < 0) {
        continue;
      }
      if (!any) {
        AppendTypeHeader(out, m.metric, "gauge", m.help);
        any = true;
      }
      AppendSample(out, m.metric, "type", ResolveTypeName(snap, t.type),
                   std::to_string(m.value(t)));
    }
  }

  if (!rec.worker_busy_permille.empty()) {
    AppendTypeHeader(out, "psp_worker_interval_busy_permille", "gauge",
                     "per-worker busy fraction over the latest interval, "
                     "permille");
    for (size_t w = 0; w < rec.worker_busy_permille.size(); ++w) {
      AppendSample(out, "psp_worker_interval_busy_permille", "worker",
                   std::to_string(w),
                   std::to_string(rec.worker_busy_permille[w]));
    }
  }
  if (!rec.worker_state_permille.empty()) {
    AppendTypeHeader(out, "psp_interval_worker_state_permille", "gauge",
                     "aggregate worker-time share by ledger state over the "
                     "latest interval, permille (sums to ~1000)");
    for (size_t s = 0;
         s < rec.worker_state_permille.size() && s < kNumWorkerTimeStates;
         ++s) {
      AppendSample(out, "psp_interval_worker_state_permille", "state",
                   WorkerTimeStateName(static_cast<WorkerTimeState>(s)),
                   std::to_string(rec.worker_state_permille[s]));
    }
  }
}

// Deadline-tier per-type families (the scheduler exports these only when the
// deadline tier is in play, so deadline-free engines render nothing here).
// The flat totals (psp_deadline_stamped_total etc.) come out of the generic
// counter renderer; this adds the per-type split and the dispatch-time slack
// distribution as a Prometheus summary (sum + count, no quantiles — slack is
// tracked as a race-free atomic pair, not a histogram).
void RenderDeadline(std::string* out, const TelemetrySnapshot& snap) {
  if (snap.deadline_types.empty()) {
    return;
  }
  const struct {
    const char* metric;
    const char* prom_type;
    const char* help;
    int64_t (*value)(const DeadlineTypeStats&);
  } families[] = {
      {"psp_deadline_type_missed_total", "counter",
       "completions past their deadline, per type",
       [](const DeadlineTypeStats& d) {
         return static_cast<int64_t>(d.missed);
       }},
      {"psp_deadline_type_shed_total", "counter",
       "admission-control sheds (predicted deadline misses), per type",
       [](const DeadlineTypeStats& d) {
         return static_cast<int64_t>(d.shed);
       }},
      {"psp_deadline_type_budget_ns", "gauge",
       "resolved relative deadline budget, per type (0 = no deadline)",
       [](const DeadlineTypeStats& d) { return d.budget_nanos; }},
  };
  for (const auto& f : families) {
    AppendTypeHeader(out, f.metric, f.prom_type, f.help);
    for (const DeadlineTypeStats& d : snap.deadline_types) {
      AppendSample(out, f.metric, "type",
                   d.name.empty() ? ResolveTypeName(snap, d.type) : d.name,
                   std::to_string(f.value(d)));
    }
  }
  AppendTypeHeader(out, "psp_deadline_type_slack_ns", "summary",
                   "dispatch-time slack (deadline - dispatch), per type; "
                   "negative sums mean dispatches past the deadline");
  for (const DeadlineTypeStats& d : snap.deadline_types) {
    const std::string type_name =
        d.name.empty() ? ResolveTypeName(snap, d.type) : d.name;
    AppendSample(out, "psp_deadline_type_slack_ns_sum", "type", type_name,
                 std::to_string(d.slack_sum_nanos));
    AppendSample(out, "psp_deadline_type_slack_ns_count", "type", type_name,
                 std::to_string(d.slack_samples));
  }
}

// The worker time-provenance ledger: cumulative wall time per slot,
// decomposed into exhaustive states (the samples of one slot sum to its
// wall time), plus the typed split of busy+steal time.
void RenderWorkerTime(std::string* out, const TelemetrySnapshot& snap) {
  if (snap.worker_time.empty()) {
    return;
  }
  AppendTypeHeader(out, "psp_worker_time_ns", "gauge",
                   "cumulative wall time per slot by time-ledger state "
                   "(one slot's samples sum to its wall time)");
  for (const WorkerTimeRecord& rec : snap.worker_time) {
    for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
      AppendMultiLabelSample(
          out, "psp_worker_time_ns",
          {{"worker", std::to_string(rec.slot)},
           {"role", rec.role},
           {"state", WorkerTimeStateName(static_cast<WorkerTimeState>(s))}},
          std::to_string(rec.state_ns[s]));
    }
  }
  bool any_busy = false;
  for (const WorkerTimeRecord& rec : snap.worker_time) {
    if (rec.BusyNs() > 0 || !rec.busy_type_ns.empty()) {
      any_busy = true;
      break;
    }
  }
  if (!any_busy) {
    return;
  }
  AppendTypeHeader(out, "psp_worker_busy_type_ns", "gauge",
                   "busy+steal time per slot split by request type "
                   "(type=\"untyped\" is the unattributed remainder)");
  for (const WorkerTimeRecord& rec : snap.worker_time) {
    uint64_t typed = 0;
    for (const auto& [type_name, ns] : rec.busy_type_ns) {
      AppendMultiLabelSample(out, "psp_worker_busy_type_ns",
                             {{"worker", std::to_string(rec.slot)},
                              {"type", type_name}},
                             std::to_string(ns));
      typed += ns;
    }
    const uint64_t busy = rec.BusyNs();
    if (busy > typed) {
      AppendMultiLabelSample(out, "psp_worker_busy_type_ns",
                             {{"worker", std::to_string(rec.slot)},
                              {"type", "untyped"}},
                             std::to_string(busy - typed));
    }
  }
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderPrometheusText(const TelemetrySnapshot& snapshot) {
  std::string out;
  out.reserve(8192);
  RenderScalars(&out, snapshot.counters, "counter", "_total", "counter");
  RenderScalars(&out, snapshot.gauges, "gauge", "", "gauge");
  RenderSummaries(&out, snapshot);
  RenderLatestInterval(&out, snapshot);
  RenderDeadline(&out, snapshot);
  RenderWorkerTime(&out, snapshot);
  // Always-present marker so a scrape of an idle server is still non-empty
  // and scrapers can assert liveness.
  AppendTypeHeader(&out, "psp_up", "gauge", "introspection plane liveness");
  AppendSample(&out, "psp_up", nullptr, "", "1");
  return out;
}

}  // namespace psp
