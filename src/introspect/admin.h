// The live admin plane: a dependency-free HTTP/1.1 endpoint served from one
// dedicated thread over loopback TCP and/or a Unix-domain socket. This is
// the *serving* side of observability — everything PRs 1–2 record
// (snapshot, time series, Perfetto capture, flight recorder) plus the
// tail-outlier ring becomes scrapeable while the server runs, with the
// polling cost kept entirely off the data path: a scrape assembles one
// snapshot on the admin thread, the hot path never blocks on it.
//
// Security posture: the TCP listener binds 127.0.0.1 only (never a routable
// interface) and the UDS path inherits filesystem permissions; there is no
// auth layer, so treat the endpoint as machine-local (docs/OBSERVABILITY.md,
// "Live introspection").
//
// Routes (all responses close the connection; see docs/OBSERVABILITY.md):
//   GET  /metrics              Prometheus text exposition
//   GET  /snapshot.json        full TelemetrySnapshot JSON
//   GET  /timeseries.json      time-series intervals (snapshot JSON subset)
//   GET  /outliers.json        K-slowest-per-type tail capture
//   GET  /lifecycle.json       sampled per-request lifecycle records
//   GET  /fleet.json           fleet-wide aggregation (fleet endpoints only)
//   GET  /healthz              liveness probe ("ok")
//   GET  /profile.folded       collected CPU samples as folded stacks
//   POST /trace/start          arm an on-demand bounded Perfetto capture
//   POST /trace/stop           finish the capture, returns the trace JSON
//   POST /profile/start        arm the sampling profiler (?hz=99&dur=10)
//   POST /profile/stop         disarm it (samples stay readable)
//   POST /flightrecorder/dump  build + return a flight record now
//   POST /config               runtime knobs: body "key=value" per line
//                              (sampling=N, slo.<TYPE>.slowdown=X)
#ifndef PSP_SRC_INTROSPECT_ADMIN_H_
#define PSP_SRC_INTROSPECT_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "src/telemetry/snapshot.h"

namespace psp {

struct AdminConfig {
  bool enabled = false;
  // Loopback TCP listener. 0 = pick an ephemeral port (read it back via
  // AdminServer::port() — tests and examples print it for the scraper).
  uint16_t port = 0;
  bool listen_tcp = true;
  // Unix-domain socket path; empty = no UDS listener. A stale socket file is
  // unlinked on Start.
  std::string uds_path;

  // Empty string = valid; otherwise a description of the problem.
  std::string Validate() const;
};

// The engine side of the plane: everything the server can serve, as
// callbacks so the admin thread never reaches into engine internals
// directly. `snapshot` is required when `enabled`; the rest degrade to 404 /
// 501 when unset.
struct AdminHooks {
  std::function<TelemetrySnapshot()> snapshot;
  // Default (unset): /metrics renders snapshot() through
  // RenderPrometheusText. A fleet endpoint overrides this with its own
  // exposition page (per-server samples labelled server="N").
  std::function<std::string()> metrics_text;
  // GET /fleet.json: the fleet-wide aggregation (FleetSnapshot::ToJson).
  // Unset (single-server endpoints) answers 404.
  std::function<std::string()> fleet_json;
  // Default (unset): derived from snapshot() — intervals + type names only.
  std::function<std::string()> timeseries_json;
  std::function<std::string()> outliers_json;
  // GET /lifecycle.json: sampled lifecycle records with wire identity, the
  // server half of the cross-process trace join (tools/psp_tracejoin).
  // Default (unset): derived from snapshot().
  std::function<std::string()> lifecycle_json;
  // POST handlers return the response body; on failure they return "" and
  // set *error (the server answers 409 with the error text).
  std::function<std::string(std::string* error)> trace_start;
  std::function<std::string(std::string* error)> trace_stop;
  std::function<std::string(std::string* error)> flight_dump;
  // POST /profile/start: receives the raw query string ("hz=99&dur=10");
  // same body/error contract as the other POST hooks (409 on conflict, e.g.
  // a capture already running).
  std::function<std::string(const std::string& query, std::string* error)>
      profile_start;
  std::function<std::string(std::string* error)> profile_stop;
  // GET /profile.folded: folded-stack text of the last/live capture.
  std::function<std::string()> profile_folded;
  // Applies one key=value pair; returns "" on success, else the error.
  std::function<std::string(const std::string& key, const std::string& value)>
      set_config;
};

// Builds the /timeseries.json body from a snapshot by re-exporting only the
// interval records + type names through TelemetrySnapshot::ToJson.
std::string TimeseriesJsonFromSnapshot(const TelemetrySnapshot& snapshot);

// Builds the /lifecycle.json body: every sampled RequestTrace in the
// snapshot's rings as one record with wire identity (wire_request_id /
// client_id) and the 7 stage stamps keyed by TraceStageName. This is the
// fetchable server half of a distributed trace.
std::string LifecycleJsonFromSnapshot(const TelemetrySnapshot& snapshot);

class AdminServer {
 public:
  AdminServer(AdminConfig config, AdminHooks hooks);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Binds the listeners and spawns the serving thread. Returns "" on
  // success, else a description of the failure (nothing is left running).
  std::string Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // The bound TCP port (resolves an ephemeral request); 0 when TCP is off.
  uint16_t port() const { return port_; }
  const std::string& uds_path() const { return config_.uds_path; }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void ServeLoop();
  void HandleConnection(int fd);
  // Dispatches one parsed request; fills status/content_type/body. `query`
  // is the raw query string (text after '?'), "" when absent.
  void HandleRequest(const std::string& method, const std::string& path,
                     const std::string& query, const std::string& body,
                     int* status, std::string* content_type,
                     std::string* response);

  AdminConfig config_;
  AdminHooks hooks_;
  int tcp_fd_ = -1;
  int uds_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace psp

#endif  // PSP_SRC_INTROSPECT_ADMIN_H_
