// Tail-outlier capture: retains the K slowest sampled requests per type in
// the current time window, each with its full 7-stage lifecycle breakdown,
// so "why was p99.9 slow" is answerable *live* — the exact requests that
// populate the tail, not just their percentile.
//
// Feed point: every committed lifecycle record (already 1-in-N sampled, so
// Offer runs well off the hot path; the mutex is uncontended in practice).
// Windows rotate on the offering thread's clock, aligned to the window grid
// like the time-series recorder; the previous window is retained so a scrape
// right after a rotation still sees a full window. In the simulator all
// offers carry virtual time, so the captured set is bit-deterministic for a
// fixed seed (tests/introspect_outliers_test.cc holds both the K-slowest
// invariant and the determinism contract).
#ifndef PSP_SRC_INTROSPECT_OUTLIERS_H_
#define PSP_SRC_INTROSPECT_OUTLIERS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/telemetry/lifecycle.h"

namespace psp {

struct OutlierConfig {
  bool enabled = false;
  // Slowest records retained per type per window.
  size_t k = 8;
  // Window width; rotation is grid-aligned (floor(now / window) * window).
  // 0 = one window covering the whole run (never rotates).
  Nanos window = kSecond;

  // Empty string = valid; otherwise a description of the problem.
  std::string Validate() const;
};

// One captured outlier: the full lifecycle record plus its derived rx→tx
// sojourn (the ranking key).
struct OutlierEntry {
  RequestTrace trace;
  Nanos total = 0;
};

// Point-in-time view of one window's capture, per type, slowest first.
struct OutlierWindow {
  uint64_t seq = 0;  // rotation ordinal (0-based)
  Nanos start = 0;
  Nanos end = 0;  // 0 while the window is still open
  std::map<uint32_t, std::vector<OutlierEntry>> per_type;
};

class OutlierRecorder {
 public:
  explicit OutlierRecorder(OutlierConfig config);

  OutlierRecorder(const OutlierRecorder&) = delete;
  OutlierRecorder& operator=(const OutlierRecorder&) = delete;

  const OutlierConfig& config() const { return config_; }

  // Offers one completed lifecycle record; keeps it only if it ranks among
  // the K slowest of its type in the current window. Records without both an
  // rx and a tx stamp are ignored (no ranking key). Thread-safe.
  void Offer(const RequestTrace& trace, Nanos now);

  // Current (possibly still-filling) window followed by the previous one, if
  // a rotation has happened. Entries are sorted slowest-first, ties broken
  // by request id (stable across runs).
  std::vector<OutlierWindow> Snapshot() const;

  uint64_t offered() const;
  uint64_t windows_rotated() const;

  // JSON export: {"k":...,"window_nanos":...,"windows":[{...,"types":[
  // {"type":..,"name":..,"outliers":[{request_id, worker, total_nanos,
  // stages:{...}, stamps:[...]}]}]}]} — the /outliers.json body.
  std::string ToJson(const std::map<uint32_t, std::string>& type_names) const;

 private:
  // Min-heap by (total, request_id) so the root is the cheapest record to
  // evict; capped at config_.k entries per type.
  struct TypeRing {
    std::vector<OutlierEntry> heap;
  };

  void RotateLocked(Nanos now);

  OutlierConfig config_;
  mutable std::mutex mutex_;
  std::map<uint32_t, TypeRing> current_;
  Nanos window_start_ = 0;
  Nanos window_end_ = 0;  // exclusive; 0 until the first offer aligns it
  uint64_t window_seq_ = 0;
  OutlierWindow previous_;
  bool has_previous_ = false;
  uint64_t offered_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_INTROSPECT_OUTLIERS_H_
