#include "src/introspect/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/introspect/prometheus.h"
#include "src/telemetry/snapshot.h"

namespace psp {
namespace {

// Header block is small by construction (pspctl / curl); body is bounded so
// a misbehaving client cannot balloon the admin thread.
constexpr size_t kMaxHeaderBytes = 16 * 1024;
constexpr size_t kMaxBodyBytes = 64 * 1024;

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 501:
      return "Not Implemented";
    default:
      return "Error";
  }
}

void SetIoTimeouts(int fd) {
  struct timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

// Splits "a=b" into key/value; returns false when '=' is missing.
bool SplitKeyValue(const std::string& line, std::string* key,
                   std::string* value) {
  const size_t eq = line.find('=');
  if (eq == std::string::npos || eq == 0) {
    return false;
  }
  *key = line.substr(0, eq);
  *value = line.substr(eq + 1);
  return true;
}

std::string JsonEscapeError(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string AdminConfig::Validate() const {
  if (!enabled) {
    return "";
  }
  if (!listen_tcp && uds_path.empty()) {
    return "admin: enabled but no listener (listen_tcp false, uds_path empty)";
  }
  if (!uds_path.empty() && uds_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return "admin: uds_path too long for sockaddr_un";
  }
  return "";
}

std::string TimeseriesJsonFromSnapshot(const TelemetrySnapshot& snapshot) {
  TelemetrySnapshot trimmed;
  trimmed.timeseries = snapshot.timeseries;
  trimmed.type_names = snapshot.type_names;
  return trimmed.ToJson();
}

std::string LifecycleJsonFromSnapshot(const TelemetrySnapshot& snapshot) {
  std::string out = "{\"traces\":[";
  bool first = true;
  for (const RequestTrace& t : snapshot.traces) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"request_id\":" + std::to_string(t.request_id) +
           ",\"type\":" + std::to_string(t.type);
    const auto name = snapshot.type_names.find(t.type);
    if (name != snapshot.type_names.end()) {
      out += ",\"type_name\":\"" + JsonEscapeError(name->second) + "\"";
    }
    out += ",\"worker\":" + std::to_string(t.worker) +
           ",\"wire_request_id\":" + std::to_string(t.wire_request_id) +
           ",\"client_id\":" + std::to_string(t.client_id) + ",\"stamps\":{";
    for (size_t i = 0; i < kNumTraceStages; ++i) {
      if (i > 0) {
        out += ',';
      }
      out += '"';
      out += TraceStageName(static_cast<TraceStage>(i));
      out += "\":" + std::to_string(t.stamp[i]);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

AdminServer::AdminServer(AdminConfig config, AdminHooks hooks)
    : config_(std::move(config)), hooks_(std::move(hooks)) {}

AdminServer::~AdminServer() { Stop(); }

std::string AdminServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return "admin: already running";
  }
  const std::string err = config_.Validate();
  if (!err.empty()) {
    return err;
  }
  if (!hooks_.snapshot) {
    return "admin: snapshot hook is required";
  }

  if (config_.listen_tcp) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      return std::string("admin: socket: ") + std::strerror(errno);
    }
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never a routable iface
    addr.sin_port = htons(config_.port);
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const std::string msg =
          std::string("admin: bind 127.0.0.1:") +
          std::to_string(config_.port) + ": " + std::strerror(errno);
      ::close(tcp_fd_);
      tcp_fd_ = -1;
      return msg;
    }
    if (::listen(tcp_fd_, 16) < 0) {
      const std::string msg =
          std::string("admin: listen: ") + std::strerror(errno);
      ::close(tcp_fd_);
      tcp_fd_ = -1;
      return msg;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }

  if (!config_.uds_path.empty()) {
    uds_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (uds_fd_ < 0) {
      const std::string msg =
          std::string("admin: unix socket: ") + std::strerror(errno);
      Stop();
      return msg;
    }
    ::unlink(config_.uds_path.c_str());  // drop a stale socket file
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(uds_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(uds_fd_, 16) < 0) {
      const std::string msg = std::string("admin: bind ") + config_.uds_path +
                              ": " + std::strerror(errno);
      Stop();
      return msg;
    }
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return "";
}

void AdminServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  if (uds_fd_ >= 0) {
    ::close(uds_fd_);
    uds_fd_ = -1;
    ::unlink(config_.uds_path.c_str());
  }
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void AdminServer::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd fds[2];
    nfds_t nfds = 0;
    if (tcp_fd_ >= 0) {
      fds[nfds].fd = tcp_fd_;
      fds[nfds].events = POLLIN;
      fds[nfds].revents = 0;
      ++nfds;
    }
    if (uds_fd_ >= 0) {
      fds[nfds].fd = uds_fd_;
      fds[nfds].events = POLLIN;
      fds[nfds].revents = 0;
      ++nfds;
    }
    // Short poll timeout so Stop() is observed promptly even when idle.
    const int ready = ::poll(fds, nfds, /*timeout_ms=*/100);
    if (ready <= 0) {
      continue;
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) {
        continue;
      }
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) {
        continue;
      }
      SetIoTimeouts(client);
      HandleConnection(client);
      ::close(client);
    }
  }
}

void AdminServer::HandleConnection(int fd) {
  // Read the header block.
  std::string buf;
  size_t header_end = std::string::npos;
  char chunk[4096];
  while (buf.size() < kMaxHeaderBytes) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      break;
    }
    buf.append(chunk, static_cast<size_t>(n));
    header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      break;
    }
  }
  if (header_end == std::string::npos) {
    return;  // malformed or truncated; nothing sensible to answer
  }

  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = buf.find("\r\n");
  const std::string request_line = buf.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    status = 400;
    response = "malformed request line\n";
  } else {
    const std::string method = request_line.substr(0, sp1);
    std::string path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string query;
    const size_t query_pos = path.find('?');
    if (query_pos != std::string::npos) {
      query = path.substr(query_pos + 1);
      path.resize(query_pos);
    }

    // Content-Length, case-insensitive scan of the header block.
    size_t content_length = 0;
    {
      size_t pos = line_end + 2;
      while (pos < header_end) {
        size_t eol = buf.find("\r\n", pos);
        if (eol == std::string::npos || eol > header_end) {
          eol = header_end;
        }
        const std::string line = buf.substr(pos, eol - pos);
        const size_t colon = line.find(':');
        if (colon != std::string::npos) {
          std::string key = line.substr(0, colon);
          for (char& c : key) {
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          }
          if (key == "content-length") {
            content_length = static_cast<size_t>(
                std::strtoul(line.c_str() + colon + 1, nullptr, 10));
          }
        }
        pos = eol + 2;
      }
    }

    std::string body;
    if (content_length > kMaxBodyBytes) {
      status = 400;
      response = "body too large\n";
    } else {
      body = buf.substr(header_end + 4);
      while (body.size() < content_length) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) {
          if (n < 0 && errno == EINTR) {
            continue;
          }
          break;
        }
        body.append(chunk, static_cast<size_t>(n));
      }
      if (body.size() < content_length) {
        status = 400;
        response = "truncated body\n";
      } else {
        body.resize(content_length);
        HandleRequest(method, path, query, body, &status, &content_type,
                      &response);
      }
    }
  }

  requests_served_.fetch_add(1, std::memory_order_relaxed);
  std::string head = "HTTP/1.1 " + std::to_string(status) + ' ' +
                     StatusReason(status) + "\r\nContent-Type: " +
                     content_type + "\r\nContent-Length: " +
                     std::to_string(response.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (WriteAll(fd, head.data(), head.size())) {
    WriteAll(fd, response.data(), response.size());
  }
  ::shutdown(fd, SHUT_WR);
  // Drain until the peer closes so its final read never sees a reset.
  while (::read(fd, chunk, sizeof(chunk)) > 0) {
  }
}

void AdminServer::HandleRequest(const std::string& method,
                                const std::string& path,
                                const std::string& query,
                                const std::string& body, int* status,
                                std::string* content_type,
                                std::string* response) {
  const auto not_wired = [&](const char* what) {
    *status = 501;
    *response = std::string(what) + " not wired on this endpoint\n";
  };
  const auto run_post = [&](const std::function<std::string(std::string*)>& fn,
                            const char* what, const char* type) {
    if (!fn) {
      not_wired(what);
      return;
    }
    std::string error;
    std::string out = fn(&error);
    if (!error.empty()) {
      *status = 409;
      *response = error + "\n";
      return;
    }
    *content_type = type;
    *response = std::move(out);
  };

  if (method == "GET") {
    if (path == "/metrics") {
      *content_type = "text/plain; version=0.0.4; charset=utf-8";
      *response = hooks_.metrics_text ? hooks_.metrics_text()
                                      : RenderPrometheusText(hooks_.snapshot());
      return;
    }
    if (path == "/fleet.json") {
      if (!hooks_.fleet_json) {
        *status = 404;
        *response = "not a fleet endpoint\n";
        return;
      }
      *content_type = "application/json";
      *response = hooks_.fleet_json();
      return;
    }
    if (path == "/snapshot.json") {
      *content_type = "application/json";
      *response = hooks_.snapshot().ToJson();
      return;
    }
    if (path == "/timeseries.json") {
      *content_type = "application/json";
      *response = hooks_.timeseries_json
                      ? hooks_.timeseries_json()
                      : TimeseriesJsonFromSnapshot(hooks_.snapshot());
      return;
    }
    if (path == "/lifecycle.json") {
      *content_type = "application/json";
      *response = hooks_.lifecycle_json
                      ? hooks_.lifecycle_json()
                      : LifecycleJsonFromSnapshot(hooks_.snapshot());
      return;
    }
    if (path == "/outliers.json") {
      if (!hooks_.outliers_json) {
        *status = 404;
        *response = "outlier capture not enabled\n";
        return;
      }
      *content_type = "application/json";
      *response = hooks_.outliers_json();
      return;
    }
    if (path == "/profile.folded") {
      if (!hooks_.profile_folded) {
        *status = 404;
        *response = "profiler not wired on this endpoint\n";
        return;
      }
      *response = hooks_.profile_folded();
      return;
    }
    if (path == "/healthz") {
      *response = "ok\n";
      return;
    }
    *status = 404;
    *response = "unknown path: " + path + "\n";
    return;
  }

  if (method == "POST") {
    if (path == "/trace/start") {
      run_post(hooks_.trace_start, "trace capture",
               "application/json");
      return;
    }
    if (path == "/trace/stop") {
      run_post(hooks_.trace_stop, "trace capture", "application/json");
      return;
    }
    if (path == "/flightrecorder/dump") {
      run_post(hooks_.flight_dump, "flight recorder",
               "text/plain; charset=utf-8");
      return;
    }
    if (path == "/profile/start") {
      if (!hooks_.profile_start) {
        not_wired("profiler");
        return;
      }
      run_post(
          [this, &query](std::string* error) {
            return hooks_.profile_start(query, error);
          },
          "profiler", "application/json");
      return;
    }
    if (path == "/profile/stop") {
      run_post(hooks_.profile_stop, "profiler", "application/json");
      return;
    }
    if (path == "/config") {
      if (!hooks_.set_config) {
        not_wired("runtime config");
        return;
      }
      // Body: one key=value per line ('&' also accepted as a separator so a
      // urlencoded-style body works).
      size_t applied = 0;
      size_t pos = 0;
      while (pos <= body.size()) {
        size_t end = body.find_first_of("\n&", pos);
        if (end == std::string::npos) {
          end = body.size();
        }
        std::string line = body.substr(pos, end - pos);
        pos = end + 1;
        while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
          line.pop_back();
        }
        if (line.empty()) {
          continue;
        }
        std::string key, value;
        if (!SplitKeyValue(line, &key, &value)) {
          *status = 400;
          *response = "expected key=value, got: " + line + "\n";
          return;
        }
        const std::string error = hooks_.set_config(key, value);
        if (!error.empty()) {
          *status = 400;
          *response = error + "\n";
          return;
        }
        ++applied;
      }
      if (applied == 0) {
        *status = 400;
        *response = "empty config body\n";
        return;
      }
      *content_type = "application/json";
      *response =
          "{\"ok\":true,\"applied\":" + std::to_string(applied) + "}\n";
      return;
    }
    *status = 404;
    *response = "unknown path: " + path + "\n";
    return;
  }

  *status = 405;
  *response =
      "{\"error\":\"" + JsonEscapeError("method not allowed: " + method) +
      "\"}\n";
}

}  // namespace psp
