#include "src/introspect/tracejoin.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

namespace psp {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader. Only what the two trace bodies
// need: objects, arrays, strings, numbers, bools, null; depth-bounded so
// adversarial nesting cannot blow the stack. Integers are kept exact
// (timestamps exceed double's 2^53 integer range on long-uptime TSC clocks).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  int64_t integer = 0;
  bool is_integer = false;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  int64_t AsInt() const {
    return is_integer ? integer : static_cast<int64_t>(number);
  }
};

class JsonReader {
 public:
  JsonReader(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing garbage");
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* why) {
    if (error_ != nullptr) {
      *error_ = std::string(why) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) {
      return Fail("bad literal");
    }
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            *out += esc;
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
          case 'f':
            break;  // dropped; never appears in our producers
          case 'u':
            // Neither producer emits non-ASCII; decode the BMP code point to
            // '?' outside ASCII rather than carrying a UTF-8 encoder.
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            {
              unsigned cp = 0;
              for (int i = 0; i < 4; ++i) {
                const char h = text_[pos_++];
                cp <<= 4;
                if (h >= '0' && h <= '9') {
                  cp |= static_cast<unsigned>(h - '0');
                } else if (h >= 'a' && h <= 'f') {
                  cp |= static_cast<unsigned>(h - 'a' + 10);
                } else if (h >= 'A' && h <= 'F') {
                  cp |= static_cast<unsigned>(h - 'A' + 10);
                } else {
                  return Fail("bad \\u escape");
                }
              }
              *out += cp < 0x80 ? static_cast<char>(cp) : '?';
            }
            break;
          default:
            return Fail("bad escape");
        }
        continue;
      }
      *out += c;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) {
      return Fail("expected number");
    }
    const std::string tok = text_.substr(begin, pos_ - begin);
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(tok.c_str(), nullptr);
    if (integral) {
      out->is_integer = true;
      out->integer = std::strtoll(tok.c_str(), nullptr, 10);
    }
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      out->kind = JsonValue::Kind::kObject;
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
          return Fail("expected object key");
        }
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out->kind = JsonValue::Kind::kArray;
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) {
          return false;
        }
        out->array.push_back(std::move(value));
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    return ParseNumber(out);
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

int64_t IntField(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->AsInt() : 0;
}

// ---------------------------------------------------------------------------
// Joined-trace rendering (same pre-render-then-sort shape as trace_export.cc)
// ---------------------------------------------------------------------------

struct PendingEvent {
  Nanos at = 0;
  int order = 0;  // tie-break: M < b < X < e at identical ts
  std::string tail;
};

double Micros(Nanos at, Nanos origin) {
  return at <= origin ? 0.0 : static_cast<double>(at - origin) / 1000.0;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

Nanos ClampedSpan(Nanos from, Nanos to) { return to > from ? to - from : 0; }

std::string JsonEscapeName(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

bool ParseClientSamplesJson(const std::string& json,
                            std::vector<ClientTraceRecord>* out,
                            std::string* error) {
  JsonValue root;
  if (!JsonReader(json, error).Parse(&root)) {
    return false;
  }
  const JsonValue* samples = nullptr;
  if (root.kind == JsonValue::Kind::kArray) {
    samples = &root;  // bare array form
  } else if (root.kind == JsonValue::Kind::kObject) {
    samples = root.Find("samples");
    if (samples == nullptr) {
      return true;  // a report without sampling: empty but well-formed
    }
  } else {
    if (error != nullptr) {
      *error = "client report: expected object or array";
    }
    return false;
  }
  if (samples->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) {
      *error = "client report: \"samples\" is not an array";
    }
    return false;
  }
  for (const JsonValue& s : samples->array) {
    if (s.kind != JsonValue::Kind::kObject) {
      if (error != nullptr) {
        *error = "client report: sample is not an object";
      }
      return false;
    }
    ClientTraceRecord rec;
    rec.request_id = static_cast<uint64_t>(IntField(s, "request_id"));
    rec.flow = static_cast<uint32_t>(IntField(s, "flow"));
    rec.wire_type = static_cast<uint32_t>(IntField(s, "wire_type"));
    rec.due_ns = IntField(s, "due_ns");
    rec.send_ns = IntField(s, "send_ns");
    rec.recv_ns = IntField(s, "recv_ns");
    rec.server_rx_ns = IntField(s, "server_rx_ns");
    rec.server_tx_ns = IntField(s, "server_tx_ns");
    out->push_back(rec);
  }
  return true;
}

bool ParseLifecycleJson(const std::string& json,
                        std::vector<ServerTraceRecord>* out,
                        std::string* error) {
  JsonValue root;
  if (!JsonReader(json, error).Parse(&root)) {
    return false;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) {
      *error = "lifecycle: expected an object";
    }
    return false;
  }
  const JsonValue* traces = root.Find("traces");
  if (traces == nullptr || traces->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) {
      *error = "lifecycle: missing \"traces\" array";
    }
    return false;
  }
  for (const JsonValue& t : traces->array) {
    if (t.kind != JsonValue::Kind::kObject) {
      if (error != nullptr) {
        *error = "lifecycle: trace is not an object";
      }
      return false;
    }
    ServerTraceRecord rec;
    rec.request_id = static_cast<uint64_t>(IntField(t, "request_id"));
    rec.type = static_cast<uint32_t>(IntField(t, "type"));
    rec.worker = static_cast<uint32_t>(IntField(t, "worker"));
    rec.wire_request_id = static_cast<uint64_t>(IntField(t, "wire_request_id"));
    rec.client_id = static_cast<uint32_t>(IntField(t, "client_id"));
    const JsonValue* name = t.Find("type_name");
    if (name != nullptr && name->kind == JsonValue::Kind::kString) {
      rec.type_name = name->str;
    }
    const JsonValue* stamps = t.Find("stamps");
    if (stamps != nullptr && stamps->kind == JsonValue::Kind::kObject) {
      for (size_t i = 0; i < kNumTraceStages; ++i) {
        const JsonValue* v =
            stamps->Find(TraceStageName(static_cast<TraceStage>(i)));
        if (v != nullptr && v->kind == JsonValue::Kind::kNumber) {
          rec.stamp[i] = v->AsInt();
        }
      }
    }
    out->push_back(rec);
  }
  return true;
}

ClockOffsetEstimate EstimateClockOffset(
    const std::vector<ClientTraceRecord>& samples) {
  ClockOffsetEstimate est;
  Nanos min_forward = 0;
  Nanos min_backward = 0;
  for (const ClientTraceRecord& s : samples) {
    if (s.server_rx_ns <= 0 || s.server_tx_ns <= 0 || s.send_ns <= 0 ||
        s.recv_ns <= 0) {
      continue;  // never stamped (lost before the server, or unsampled echo)
    }
    const Nanos forward = s.server_rx_ns - s.send_ns;
    const Nanos backward = s.recv_ns - s.server_tx_ns;
    if (est.samples == 0 || forward < min_forward) {
      min_forward = forward;
    }
    if (est.samples == 0 || backward < min_backward) {
      min_backward = backward;
    }
    ++est.samples;
  }
  if (est.samples == 0) {
    return est;
  }
  est.valid = true;
  // Halving before subtracting keeps the intermediate in range even when the
  // two clocks are wildly apart (TSC epochs differ by machine uptime).
  est.offset = min_forward / 2 - min_backward / 2;
  est.uncertainty = min_forward / 2 + min_backward / 2;
  if (est.uncertainty < 0) {
    est.uncertainty = -est.uncertainty;
  }
  return est;
}

std::vector<JoinedSpan> JoinTraces(
    const std::vector<ClientTraceRecord>& client,
    const std::vector<ServerTraceRecord>& server, JoinStats* stats) {
  JoinStats local;
  // First record wins per (client_id, wire_request_id): the ring snapshot
  // can technically surface a key twice if a torn overwrite recommitted it.
  std::map<std::pair<uint32_t, uint64_t>, size_t> by_key;
  for (size_t i = 0; i < server.size(); ++i) {
    const auto key = std::make_pair(server[i].client_id,
                                    server[i].wire_request_id);
    if (!by_key.emplace(key, i).second) {
      ++local.duplicate_keys;
    }
  }
  std::vector<bool> used(server.size(), false);
  std::vector<JoinedSpan> spans;
  spans.reserve(client.size());
  for (const ClientTraceRecord& c : client) {
    JoinedSpan span;
    span.client = c;
    const auto it = by_key.find(std::make_pair(c.flow, c.request_id));
    if (it != by_key.end()) {
      span.server = server[it->second];
      span.has_server = true;
      used[it->second] = true;
      ++local.joined;
    } else {
      ++local.client_only;
    }
    spans.push_back(std::move(span));
  }
  for (const auto& [key, index] : by_key) {
    if (!used[index]) {
      ++local.server_only;
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const JoinedSpan& a, const JoinedSpan& b) {
              if (a.client.send_ns != b.client.send_ns) {
                return a.client.send_ns < b.client.send_ns;
              }
              if (a.client.flow != b.client.flow) {
                return a.client.flow < b.client.flow;
              }
              return a.client.request_id < b.client.request_id;
            });
  if (stats != nullptr) {
    *stats = local;
  }
  return spans;
}

std::string ExportJoinedTrace(const std::vector<JoinedSpan>& spans,
                              const ClockOffsetEstimate& clocks) {
  // Consecutive lifecycle stage pairs -> six server slices covering all
  // seven stamps.
  static constexpr struct {
    TraceStage from, to;
    const char* name;
  } kServerSlices[] = {
      {TraceStage::kRx, TraceStage::kClassified, "classify"},
      {TraceStage::kClassified, TraceStage::kEnqueued, "enqueue"},
      {TraceStage::kEnqueued, TraceStage::kDispatched, "queue"},
      {TraceStage::kDispatched, TraceStage::kHandlerStart, "handoff"},
      {TraceStage::kHandlerStart, TraceStage::kHandlerEnd, "service"},
      {TraceStage::kHandlerEnd, TraceStage::kTx, "reply"},
  };
  constexpr uint32_t kClientPid = 1;
  constexpr uint32_t kServerPid = 2;
  constexpr uint32_t kClientTid = 0;   // send loop
  constexpr uint32_t kNetworkTid = 1;  // wire both ways

  // Origin: earliest client-clock instant so timestamps are small and
  // non-negative regardless of clock epoch.
  Nanos origin = 0;
  bool have_origin = false;
  for (const JoinedSpan& s : spans) {
    const Nanos first = s.client.due_ns > 0 && s.client.due_ns < s.client.send_ns
                            ? s.client.due_ns
                            : s.client.send_ns;
    if (!have_origin || first < origin) {
      origin = first;
      have_origin = true;
    }
  }

  std::vector<PendingEvent> events;
  std::vector<uint32_t> workers_seen;
  bool server_process_seen = false;

  const auto emit = [&](Nanos at, int order, std::string tail) {
    events.push_back(PendingEvent{at, order, std::move(tail)});
  };

  for (const JoinedSpan& s : spans) {
    const ClientTraceRecord& c = s.client;
    std::string name = s.has_server && !s.server.type_name.empty()
                           ? JsonEscapeName(s.server.type_name)
                           : "type-" + std::to_string(c.wire_type);
    const std::string id =
        "f" + std::to_string(c.flow) + "r" + std::to_string(c.request_id);
    const Nanos due = c.due_ns > 0 && c.due_ns < c.send_ns ? c.due_ns
                                                           : c.send_ns;

    // Per-request async envelope: due -> recv on the client process.
    emit(due, 0,
         ",\"ph\":\"b\",\"cat\":\"request\",\"id\":\"" + id + "\",\"name\":\"" +
             name + "\",\"pid\":" + std::to_string(kClientPid) +
             ",\"tid\":" + std::to_string(kClientTid) + "}");
    emit(c.recv_ns, 2,
         ",\"ph\":\"e\",\"cat\":\"request\",\"id\":\"" + id + "\",\"name\":\"" +
             name + "\",\"pid\":" + std::to_string(kClientPid) +
             ",\"tid\":" + std::to_string(kClientTid) + "}");

    // Client queue: scheduled instant to the actual send.
    emit(due, 1,
         ",\"ph\":\"X\",\"name\":\"client-queue\",\"dur\":" +
             Num(static_cast<double>(ClampedSpan(due, c.send_ns)) / 1000.0) +
             ",\"pid\":" + std::to_string(kClientPid) +
             ",\"tid\":" + std::to_string(kClientTid) + ",\"args\":{\"id\":\"" +
             id + "\"}}");

    if (c.server_rx_ns > 0 && c.server_tx_ns > 0 && clocks.valid) {
      const Nanos rx_client = clocks.ToClientClock(c.server_rx_ns);
      const Nanos tx_client = clocks.ToClientClock(c.server_tx_ns);
      emit(c.send_ns, 1,
           ",\"ph\":\"X\",\"name\":\"wire-out\",\"dur\":" +
               Num(static_cast<double>(ClampedSpan(c.send_ns, rx_client)) /
                   1000.0) +
               ",\"pid\":" + std::to_string(kClientPid) +
               ",\"tid\":" + std::to_string(kNetworkTid) +
               ",\"args\":{\"id\":\"" + id + "\"}}");
      emit(tx_client, 1,
           ",\"ph\":\"X\",\"name\":\"wire-back\",\"dur\":" +
               Num(static_cast<double>(ClampedSpan(tx_client, c.recv_ns)) /
                   1000.0) +
               ",\"pid\":" + std::to_string(kClientPid) +
               ",\"tid\":" + std::to_string(kNetworkTid) +
               ",\"args\":{\"id\":\"" + id + "\"}}");
    }

    if (s.has_server && clocks.valid) {
      server_process_seen = true;
      const uint32_t tid = s.server.worker + 1;
      if (std::find(workers_seen.begin(), workers_seen.end(),
                    s.server.worker) == workers_seen.end()) {
        workers_seen.push_back(s.server.worker);
      }
      for (const auto& slice : kServerSlices) {
        const Nanos from = s.server.stamp[static_cast<size_t>(slice.from)];
        const Nanos to = s.server.stamp[static_cast<size_t>(slice.to)];
        if (from == 0 || to == 0) {
          continue;  // stage never recorded
        }
        emit(clocks.ToClientClock(from), 1,
             ",\"ph\":\"X\",\"name\":\"" + std::string(slice.name) +
                 "\",\"dur\":" +
                 Num(static_cast<double>(ClampedSpan(from, to)) / 1000.0) +
                 ",\"pid\":" + std::to_string(kServerPid) +
                 ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"id\":\"" +
                 id + "\",\"type\":\"" + name + "\"}}");
      }
    }
  }

  // Metadata first: process/thread names (the joined view's track labels).
  std::vector<PendingEvent> meta;
  const auto emit_meta = [&](uint32_t pid, int tid, const char* what,
                             const std::string& label) {
    std::string tail = ",\"ph\":\"M\",\"name\":\"";
    tail += what;
    tail += "\",\"pid\":" + std::to_string(pid);
    if (tid >= 0) {
      tail += ",\"tid\":" + std::to_string(tid);
    }
    tail += ",\"args\":{\"name\":\"" + label + "\"}}";
    meta.push_back(PendingEvent{0, -1, std::move(tail)});
  };
  emit_meta(kClientPid, -1, "process_name", "psp client (loadgen)");
  emit_meta(kClientPid, kClientTid, "thread_name", "client");
  emit_meta(kClientPid, kNetworkTid, "thread_name", "network");
  if (server_process_seen) {
    emit_meta(kServerPid, -1, "process_name", "psp server");
    std::sort(workers_seen.begin(), workers_seen.end());
    for (const uint32_t w : workers_seen) {
      emit_meta(kServerPid, static_cast<int>(w + 1), "thread_name",
                "worker " + std::to_string(w));
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const PendingEvent& a, const PendingEvent& b) {
                     if (a.at != b.at) {
                       return a.at < b.at;
                     }
                     return a.order < b.order;
                   });

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const PendingEvent& e : meta) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"ts\":0" + e.tail;
  }
  for (const PendingEvent& e : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"ts\":" + Num(Micros(e.at, origin)) + e.tail;
  }
  out += "]}";
  return out;
}

}  // namespace psp
