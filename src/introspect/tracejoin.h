// Cross-process trace join: pairs the loadgen's sampled per-request records
// (client clock) with the server's sampled lifecycle records fetched from
// /lifecycle.json (server clock), estimates the clock offset between the two
// domains by min-one-way-delay alignment, and renders one catapult/Perfetto
// trace where each sampled request is a single async span decomposed into
// client-queue → wire-out → the server's 7 lifecycle stages → wire-back.
//
// The two processes share no clock. Both one-way delays embed the unknown
// offset with opposite sign:
//   forward  = server_rx - client_send =  offset + out_delay
//   backward = client_recv - server_tx = -offset + back_delay
// Taking the minimum of each over many samples and assuming the *minimum*
// out/back delays are symmetric (the standard NTP argument) gives
//   offset ≈ (min_forward - min_backward) / 2
// with uncertainty (min_forward + min_backward) / 2 — the minimum RTT the
// estimate cannot see inside. On loopback this is a few microseconds.
//
// Everything here is snapshot-shaped (no sockets): callers fetch the JSON
// bodies (pspctl lifecycle / psp_loadgen --json) and hand them over. The
// parse functions are exposed so adversarial-timing tests can drive the
// estimator and join directly.
#ifndef PSP_SRC_INTROSPECT_TRACEJOIN_H_
#define PSP_SRC_INTROSPECT_TRACEJOIN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/telemetry/lifecycle.h"

namespace psp {

// One sampled request as the client saw it (psp_loadgen --json "samples").
// Client-clock ns except the echoed server stamps.
struct ClientTraceRecord {
  uint64_t request_id = 0;
  uint32_t flow = 0;       // wire client_id
  uint32_t wire_type = 0;
  Nanos due_ns = 0;        // scheduled open-loop send instant
  Nanos send_ns = 0;
  Nanos recv_ns = 0;
  Nanos server_rx_ns = 0;  // server clock; 0 = not stamped
  Nanos server_tx_ns = 0;  // server clock
};

// One sampled request as the server saw it (/lifecycle.json "traces").
struct ServerTraceRecord {
  uint64_t request_id = 0;  // server-local id, not the join key
  uint32_t type = 0;
  std::string type_name;
  uint32_t worker = 0;
  uint64_t wire_request_id = 0;  // join key, with client_id
  uint32_t client_id = 0;
  std::array<Nanos, kNumTraceStages> stamp{};
};

struct ClockOffsetEstimate {
  bool valid = false;
  Nanos offset = 0;       // server clock minus client clock
  Nanos uncertainty = 0;  // half the minimum observable RTT
  size_t samples = 0;     // records that contributed (stamped both ways)

  // Maps a server-clock instant into the client clock domain.
  Nanos ToClientClock(Nanos server_ns) const { return server_ns - offset; }
};

// Parses the psp_loadgen --json report (or a bare array of sample objects)
// into client records. Returns false and sets *error on malformed input; a
// report without a "samples" key parses as an empty vector.
bool ParseClientSamplesJson(const std::string& json,
                            std::vector<ClientTraceRecord>* out,
                            std::string* error);

// Parses a /lifecycle.json body into server records.
bool ParseLifecycleJson(const std::string& json,
                        std::vector<ServerTraceRecord>* out,
                        std::string* error);

// Min-one-way-delay clock alignment over the echoed stamps. Records without
// server stamps are skipped; with zero usable records the estimate is
// invalid (offset 0 — callers should then render server spans verbatim or
// drop them).
ClockOffsetEstimate EstimateClockOffset(
    const std::vector<ClientTraceRecord>& samples);

// One request across both processes. has_server is false when no lifecycle
// record matched (ring overwrote it, or the response was lost after the
// server stamped it).
struct JoinedSpan {
  ClientTraceRecord client;
  ServerTraceRecord server;
  bool has_server = false;
};

struct JoinStats {
  size_t joined = 0;
  size_t client_only = 0;     // sampled response seen, no lifecycle record
  size_t server_only = 0;     // lifecycle record, no client sample
  size_t duplicate_keys = 0;  // server records sharing (client_id, req_id)
};

// Joins on (client_id, wire_request_id) — request_ids repeat across flows,
// so the flow index must be part of the key. First server record wins on
// duplicates. Output is sorted by client send time (ties by request_id) for
// deterministic export.
std::vector<JoinedSpan> JoinTraces(
    const std::vector<ClientTraceRecord>& client,
    const std::vector<ServerTraceRecord>& server, JoinStats* stats);

// Renders the joined spans as catapult trace-event JSON ({"traceEvents":...})
// in the client clock domain: pid 1 = client process (client-queue slices +
// per-request async spans + wire-out/wire-back slices on a "network" track),
// pid 2 = server process (per-worker tracks, one slice per consecutive
// lifecycle stage pair). Deterministic for deterministic input.
std::string ExportJoinedTrace(const std::vector<JoinedSpan>& spans,
                              const ClockOffsetEstimate& clocks);

}  // namespace psp

#endif  // PSP_SRC_INTROSPECT_TRACEJOIN_H_
