// Offline introspection: the simulator has no live endpoint to scrape, so at
// the end of a run ClusterEngine renders the *same* formats the admin plane
// serves — Prometheus exposition, snapshot JSON, time-series JSON, outlier
// JSON — into files under a directory. Because every input is derived from
// virtual time and the seeded RNG, the files are byte-identical across runs
// with the same seed (held by tests/introspect_outliers_test.cc).
#ifndef PSP_SRC_INTROSPECT_OFFLINE_H_
#define PSP_SRC_INTROSPECT_OFFLINE_H_

#include <string>

#include "src/introspect/outliers.h"
#include "src/telemetry/snapshot.h"

namespace psp {

// Writes metrics.prom, snapshot.json and timeseries.json (and outliers.json
// when `outliers` is non-null) under `dir`, creating the directory if
// needed (one level). Returns "" on success, else a description of the
// first failure.
std::string WriteIntrospectionFiles(const std::string& dir,
                                    const TelemetrySnapshot& snapshot,
                                    const OutlierRecorder* outliers);

}  // namespace psp

#endif  // PSP_SRC_INTROSPECT_OFFLINE_H_
