// Prometheus text exposition (format version 0.0.4) rendered from a
// TelemetrySnapshot: the read side of the live introspection plane. One pure
// function turns the unified snapshot — registry counters/gauges/histograms,
// the latest closed time-series interval, per-worker occupancy — into the
// `# HELP` / `# TYPE` / sample-line format every Prometheus-compatible
// scraper understands.
//
// Mapping rules (held by tests/introspect_prometheus_test.cc):
//   * snapshot counters  -> `psp_<name>_total` counter samples; hierarchical
//     dots become underscores ("scheduler.dispatched" ->
//     psp_scheduler_dispatched_total). `worker.<N>.<field>` counters fold
//     into one metric with a {worker="N"} label.
//   * snapshot gauges    -> `psp_<name>` gauges, same name/label folding.
//   * snapshot histograms-> summaries: {quantile="0.5|0.99|0.999"} samples
//     plus `_sum` and `_count`.
//   * the latest closed interval -> per-type gauges labelled {type="NAME"}:
//     interval arrivals/completions/drops, queue depth, reserved workers,
//     windowed slowdown percentiles (milli units), plus scalar arrival/
//     completion rates and per-worker busy permille.
// Label values are escaped per the exposition spec (backslash, quote,
// newline); metric names are sanitised to [a-zA-Z_:][a-zA-Z0-9_:]*. Output
// is byte-deterministic for a deterministic snapshot (maps iterate sorted,
// floats use fixed formatting).
#ifndef PSP_SRC_INTROSPECT_PROMETHEUS_H_
#define PSP_SRC_INTROSPECT_PROMETHEUS_H_

#include <string>

#include "src/telemetry/snapshot.h"

namespace psp {

// Sanitises an instrument name into a legal Prometheus metric-name fragment:
// every character outside [a-zA-Z0-9_:] becomes '_', and a leading digit is
// prefixed with '_'.
std::string PrometheusMetricName(const std::string& name);

// Escapes a label value: backslash, double quote and newline, per the text
// exposition format.
std::string PrometheusLabelEscape(const std::string& value);

// Renders the complete exposition page. Every metric is prefixed "psp_".
std::string RenderPrometheusText(const TelemetrySnapshot& snapshot);

}  // namespace psp

#endif  // PSP_SRC_INTROSPECT_PROMETHEUS_H_
