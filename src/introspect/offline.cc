#include "src/introspect/offline.h"

#include <sys/stat.h>

#include <cerrno>

#include "src/introspect/admin.h"
#include "src/introspect/prometheus.h"
#include "src/telemetry/slo.h"

namespace psp {

std::string WriteIntrospectionFiles(const std::string& dir,
                                    const TelemetrySnapshot& snapshot,
                                    const OutlierRecorder* outliers) {
  if (dir.empty()) {
    return "introspect: output directory is empty";
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return "introspect: mkdir " + dir + " failed";
  }
  const struct {
    const char* file;
    std::string body;
  } files[] = {
      {"metrics.prom", RenderPrometheusText(snapshot)},
      {"snapshot.json", snapshot.ToJson()},
      {"timeseries.json", TimeseriesJsonFromSnapshot(snapshot)},
  };
  for (const auto& f : files) {
    const std::string path = dir + "/" + f.file;
    if (!WriteTextFile(path, f.body)) {
      return "introspect: write " + path + " failed";
    }
  }
  if (outliers != nullptr) {
    const std::string path = dir + "/outliers.json";
    if (!WriteTextFile(path, outliers->ToJson(snapshot.type_names))) {
      return "introspect: write " + path + " failed";
    }
  }
  return "";
}

}  // namespace psp
