#include "src/profile/sampler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <string.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "src/telemetry/timeledger.h"

// Older libcs spell the SIGEV_THREAD_ID target field differently.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace psp {
namespace {

// One captured stack. Plain data only: written inside the signal handler.
struct RawSample {
  uint32_t packed_state = 0;
  uint32_t depth = 0;
  uintptr_t pcs[CpuSampler::kMaxDepth] = {};
};

}  // namespace

// Everything the signal handler touches lives here, fully initialised before
// the thread-local pointer is published and never freed while the sampler is
// alive (slots of exited threads are retired, not erased, so their samples
// stay renderable).
struct CpuSampler::ThreadSlot {
  char role[16] = {};
  const std::atomic<uint32_t>* state_word = nullptr;
  uint32_t fallback_packed = 0;

  pid_t tid = 0;
  clockid_t cpu_clock = CLOCK_THREAD_CPUTIME_ID;
  timer_t timer{};
  bool timer_armed = false;  // guarded by mu_
  bool alive = false;        // guarded by mu_

  uintptr_t stack_lo = 0;
  uintptr_t stack_hi = 0;

  size_t capacity = 0;
  std::unique_ptr<RawSample[]> samples;
  // Publication index: the handler fills samples[head] then bumps head, so
  // readers only ever see complete entries. Reset by Start (under mu_, with
  // every timer disarmed), written by the owning thread's handler otherwise.
  std::atomic<uint32_t> head{0};
  std::atomic<uint64_t> dropped{0};
  // Handler gate, flipped around timer arm/disarm.
  std::atomic<bool> armed{false};
};

namespace {

thread_local CpuSampler::ThreadSlot* g_tls_slot = nullptr;

// SIGPROF, delivered on the sampled thread itself (SIGEV_THREAD_ID): walk
// the frame-pointer chain from the interrupted context. Async-signal-safe:
// atomic loads/stores and bounds-checked memory reads only, errno preserved.
// The acquire on `armed` pairs with ArmSlot's release: a handler that sees
// the new capture also sees its head reset, and its sample writes are
// ordered after any Folded() reads of the previous capture's buffer.
void SigprofAction(int /*signo*/, siginfo_t* /*info*/, void* ucontext_raw) {
  CpuSampler::ThreadSlot* slot = g_tls_slot;
  if (slot == nullptr || !slot->armed.load(std::memory_order_acquire)) {
    return;
  }
  const int saved_errno = errno;
  const uint32_t index = slot->head.load(std::memory_order_relaxed);
  if (index >= slot->capacity) {
    slot->dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }

  uintptr_t pc = 0;
  uintptr_t fp = 0;
  uintptr_t sp = 0;
  auto* uc = static_cast<ucontext_t*>(ucontext_raw);
#if defined(__x86_64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)uc;
  errno = saved_errno;
  return;  // unsupported architecture: take no samples
#endif

  RawSample& sample = slot->samples[index];
  sample.packed_state =
      slot->state_word != nullptr
          ? slot->state_word->load(std::memory_order_relaxed)
          : slot->fallback_packed;
  uint32_t depth = 0;
  sample.pcs[depth++] = pc;
  // Frame layout (with -fno-omit-frame-pointer): [fp] = caller fp,
  // [fp + 8] = return address. Validate every hop against the thread's
  // stack bounds and require monotonically increasing addresses.
  uintptr_t frame = fp;
  constexpr uintptr_t kWord = sizeof(uintptr_t);
  while (depth < CpuSampler::kMaxDepth) {
    if (frame < sp || frame < slot->stack_lo ||
        frame + 2 * kWord > slot->stack_hi || (frame & (kWord - 1)) != 0) {
      break;
    }
    const uintptr_t next_fp = reinterpret_cast<const uintptr_t*>(frame)[0];
    const uintptr_t ret = reinterpret_cast<const uintptr_t*>(frame)[1];
    if (ret == 0) {
      break;
    }
    sample.pcs[depth++] = ret;
    if (next_fp <= frame) {
      break;
    }
    frame = next_fp;
  }
  sample.depth = depth;
  slot->head.store(index + 1, std::memory_order_release);
  errno = saved_errno;
}

// Off-path symbolization: nearest dynamic symbol via dladdr, demangled when
// possible, raw address otherwise. Separators are scrubbed so the output
// stays one-stack-per-line folded format.
std::string SymbolizePc(uintptr_t pc,
                        std::unordered_map<uintptr_t, std::string>* cache) {
  auto it = cache->find(pc);
  if (it != cache->end()) {
    return it->second;
  }
  std::string name;
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = status == 0 && demangled != nullptr ? demangled : info.dli_sname;
    free(demangled);  // NOLINT: __cxa_demangle mallocs
  } else {
    char buf[32];
    snprintf(buf, sizeof(buf), "pc_0x%zx", static_cast<size_t>(pc));
    name = buf;
  }
  for (char& c : name) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') {
      c = '_';
    }
  }
  (*cache)[pc] = name;
  return name;
}

}  // namespace

CpuSampler::CpuSampler(SamplerOptions options) : options_(options) {
  if (options_.buffer_entries == 0) {
    options_.buffer_entries = 1;
  }
}

CpuSampler::~CpuSampler() {
  Stop();
  if (watcher_.joinable()) {
    watcher_.join();
  }
}

void CpuSampler::RegisterCurrentThread(
    const char* role, const std::atomic<uint32_t>* state_word,
    uint32_t fallback_packed) {
  auto slot = std::make_unique<ThreadSlot>();
  snprintf(slot->role, sizeof(slot->role), "%s", role != nullptr ? role : "?");
  slot->state_word = state_word;
  slot->fallback_packed = fallback_packed;
  slot->tid = static_cast<pid_t>(syscall(SYS_gettid));
  if (pthread_getcpuclockid(pthread_self(), &slot->cpu_clock) != 0) {
    slot->cpu_clock = CLOCK_THREAD_CPUTIME_ID;
  }
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    size_t stack_size = 0;
    if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
      slot->stack_lo = reinterpret_cast<uintptr_t>(stack_addr);
      slot->stack_hi = slot->stack_lo + stack_size;
    }
    pthread_attr_destroy(&attr);
  }
  slot->capacity = options_.buffer_entries;
  slot->samples = std::make_unique<RawSample[]>(slot->capacity);
  slot->alive = true;

  std::lock_guard<std::mutex> lock(mu_);
  g_tls_slot = slot.get();  // fully initialised before the handler can see it
  if (running_.load(std::memory_order_acquire)) {
    ArmSlot(slot.get(), hz_);  // join the live capture
  }
  slots_.push_back(std::move(slot));
}

void CpuSampler::UnregisterCurrentThread() {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadSlot* slot = g_tls_slot;
  if (slot == nullptr) {
    return;
  }
  DisarmSlot(slot);
  slot->alive = false;  // retired: samples stay renderable
  g_tls_slot = nullptr;
}

bool CpuSampler::Start(int hz, double duration_sec) {
  if (hz <= 0) {
    hz = 99;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_acquire)) {
    return false;
  }
  if (watcher_.joinable()) {
    watcher_.join();  // previous capture is stopped, so it exits promptly
  }
  if (!handler_installed_) {
    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &SigprofAction;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      return false;
    }
    handler_installed_ = true;
  }
  hz_ = hz;
  ++generation_;
  for (auto& slot : slots_) {
    slot->head.store(0, std::memory_order_relaxed);
    slot->dropped.store(0, std::memory_order_relaxed);
  }
  running_.store(true, std::memory_order_release);
  for (auto& slot : slots_) {
    ArmSlot(slot.get(), hz);
  }
  if (duration_sec > 0) {
    watcher_ = std::thread(&CpuSampler::WatcherMain, this, generation_,
                           duration_sec);
  }
  return true;
}

bool CpuSampler::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  return StopLocked();
}

bool CpuSampler::StopLocked() {
  if (!running_.load(std::memory_order_acquire)) {
    return false;
  }
  for (auto& slot : slots_) {
    DisarmSlot(slot.get());
  }
  {
    std::lock_guard<std::mutex> watch_lock(watch_mu_);
    running_.store(false, std::memory_order_release);
  }
  watch_cv_.notify_all();
  return true;
}

void CpuSampler::WatcherMain(uint64_t generation, double duration_sec) {
  {
    std::unique_lock<std::mutex> lock(watch_mu_);
    watch_cv_.wait_for(
        lock, std::chrono::duration<double>(duration_sec),
        [this] { return !running_.load(std::memory_order_acquire); });
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (generation_ == generation) {
    StopLocked();  // duration elapsed with this capture still live
  }
}

bool CpuSampler::ArmSlot(ThreadSlot* slot, int hz) {
  if (!slot->alive || slot->timer_armed) {
    return false;
  }
  struct sigevent sev;
  memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = slot->tid;
  if (timer_create(slot->cpu_clock, &sev, &slot->timer) != 0) {
    return false;
  }
  const long interval_ns = 1000000000L / hz;
  struct itimerspec spec;
  memset(&spec, 0, sizeof(spec));
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  // Release pairs with the handler's acquire on `armed`: the handler then
  // observes the head reset, and its writes into the (possibly re-used)
  // sample buffer are ordered after any reads of the previous capture.
  slot->armed.store(true, std::memory_order_release);
  if (timer_settime(slot->timer, 0, &spec, nullptr) != 0) {
    slot->armed.store(false, std::memory_order_relaxed);
    timer_delete(slot->timer);
    return false;
  }
  slot->timer_armed = true;
  return true;
}

void CpuSampler::DisarmSlot(ThreadSlot* slot) {
  if (!slot->timer_armed) {
    return;
  }
  slot->armed.store(false, std::memory_order_relaxed);
  timer_delete(slot->timer);
  slot->timer_armed = false;
}

std::string CpuSampler::Folded(
    const std::function<std::string(uint32_t)>& type_namer) const {
  std::unordered_map<uintptr_t, std::string> symbol_cache;
  std::map<std::string, uint64_t> stacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& slot : slots_) {
      const uint32_t count = std::min(
          slot->head.load(std::memory_order_acquire),
          static_cast<uint32_t>(slot->capacity));
      for (uint32_t i = 0; i < count; ++i) {
        const RawSample& sample = slot->samples[i];
        std::string key = slot->role;
        key += ";state:";
        key += WorkerTimeStateName(
            WorkerTimeLedger::UnpackState(sample.packed_state));
        const uint32_t type = WorkerTimeLedger::UnpackType(sample.packed_state);
        if (type != WorkerTimeLedger::kUntyped) {
          std::string name = type_namer ? type_namer(type) : std::string();
          if (name.empty()) {
            name = "type" + std::to_string(type);
          }
          for (char& c : name) {
            if (c == ';' || c == ' ') {
              c = '_';
            }
          }
          key += ";type:";
          key += name;
        }
        // Walk order is leaf -> root; folded format wants root -> leaf.
        for (uint32_t d = sample.depth; d > 0; --d) {
          const uintptr_t raw_pc = sample.pcs[d - 1];
          // Return addresses point one past the call; bias them back so the
          // call site's symbol wins. pcs[0] is the interrupted PC: exact.
          const uintptr_t pc = d - 1 == 0 ? raw_pc : raw_pc - 1;
          key += ';';
          key += SymbolizePc(pc, &symbol_cache);
        }
        ++stacks[key];
      }
    }
  }
  std::vector<std::pair<std::string, uint64_t>> ordered(stacks.begin(),
                                                        stacks.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::string out;
  for (const auto& [key, count] : ordered) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

uint64_t CpuSampler::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& slot : slots_) {
    total += std::min(slot->head.load(std::memory_order_relaxed),
                      static_cast<uint32_t>(slot->capacity));
  }
  return total;
}

uint64_t CpuSampler::dropped_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& slot : slots_) {
    total += slot->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace psp
