// In-process sampling CPU profiler ("where do the cycles go?").
//
// Each registered thread gets a POSIX per-thread CPU-time timer
// (timer_create on the clock from pthread_getcpuclockid, delivered as
// SIGPROF directly to that thread via SIGEV_THREAD_ID). The signal handler
// walks the stack by frame pointers (the build compiles with
// -fno-omit-frame-pointer) into a pre-allocated per-thread sample buffer —
// no locks, no allocation, no syscalls on the signal path. Samples carry the
// thread's current time-ledger state word (see src/telemetry/timeledger.h),
// so every stack is attributed to busy{type}/steal/idle/poll_spin/... at the
// instant it was taken. Symbolization (dladdr + demangling) happens off-path
// when the folded output is rendered.
//
// Because the timers run on *CPU time*, a thread that sleeps takes no
// samples, while a busy-polling thread is sampled at the full rate — which
// is exactly the attribution the paper's idling argument needs.
#ifndef PSP_SRC_PROFILE_SAMPLER_H_
#define PSP_SRC_PROFILE_SAMPLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace psp {

struct SamplerOptions {
  // Per-thread sample buffer capacity. The buffer is fill-once per capture
  // (not a ring): at 99 Hz, 4096 entries cover ~40 s of per-thread CPU time;
  // overflow increments dropped_samples() instead of overwriting.
  size_t buffer_entries = 4096;
};

// Process-wide sampling profiler. One instance per runtime; engine threads
// call RegisterCurrentThread on entry to their loops. Start/Stop may be
// called from any thread (the admin plane, pspctl, tests).
class CpuSampler {
 public:
  static constexpr size_t kMaxDepth = 20;  // frames kept per sample

  // Per-thread sampling state; public only so the signal handler (a free
  // function — sigaction cannot take a member) can reach it.
  struct ThreadSlot;

  explicit CpuSampler(SamplerOptions options = {});
  ~CpuSampler();

  CpuSampler(const CpuSampler&) = delete;
  CpuSampler& operator=(const CpuSampler&) = delete;

  // Registers the calling thread for sampling. `role` labels the thread in
  // folded output ("dispatcher", "worker", ...). `state_word`, when
  // non-null, is the thread's packed ledger-state atomic
  // (WorkerTimeLedger::packed_state); it is read inside the signal handler,
  // so it must outlive the registration. Threads without a ledger slot pass
  // nullptr and `fallback_packed` tags their samples instead.
  void RegisterCurrentThread(const char* role,
                             const std::atomic<uint32_t>* state_word,
                             uint32_t fallback_packed);
  // Unregisters the calling thread (disarms its timer if a capture is
  // live). Must be called before the thread exits if it registered.
  void UnregisterCurrentThread();

  // Arms every registered thread's timer at `hz` samples per CPU-second and
  // clears previously collected samples. `duration_sec` > 0 auto-stops the
  // capture after that much wall time. Returns false — with no side
  // effects — if a capture is already running (the admin plane maps this to
  // HTTP 409).
  bool Start(int hz, double duration_sec = 0.0);
  // Disarms the timers. Collected samples remain readable until the next
  // Start. Returns false if no capture was running.
  bool Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  int hz() const { return hz_; }

  // Renders everything collected since the last Start as folded stacks:
  //   role;state:<state>[;type:<NAME>];outermost;...;leaf <count>
  // one line per unique stack, highest count first. `type_namer` resolves
  // ledger type indices to request-type names (may be empty; falls back to
  // "type<N>"). Safe to call while a capture runs (reads published samples
  // only).
  std::string Folded(
      const std::function<std::string(uint32_t)>& type_namer) const;

  uint64_t total_samples() const;
  uint64_t dropped_samples() const;

 private:
  // Arms/disarms one slot's timer; callers hold mu_.
  bool ArmSlot(ThreadSlot* slot, int hz);
  void DisarmSlot(ThreadSlot* slot);
  bool StopLocked();
  void WatcherMain(uint64_t generation, double duration_sec);

  SamplerOptions options_;
  std::atomic<bool> running_{false};
  int hz_ = 0;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;
  uint64_t generation_ = 0;  // bumped by Start; lets the watcher detect stale
  std::thread watcher_;
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;

  // The SIGPROF handler is installed once, on the first Start, and left in
  // place (it is a no-op for unarmed threads); POSIX leaves the fate of
  // signals pending from a deleted timer unspecified, so restoring the
  // default disposition at Stop could terminate the process.
  bool handler_installed_ = false;
};

}  // namespace psp

#endif  // PSP_SRC_PROFILE_SAMPLER_H_
