// Experiment metrics: per-type and overall latency + slowdown distributions,
// exactly the two performance views of §5.1 — "the slowdown at the tail taken
// across all requests" and "the typed tail latency". Optional time-series
// buckets support the Fig 7 adaptation timeline.
#ifndef PSP_SRC_SIM_METRICS_H_
#define PSP_SRC_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/time.h"
#include "src/core/request.h"
#include "src/telemetry/snapshot.h"

namespace psp {

// Slowdown is stored in fixed-point milli-units (slowdown × 1000).
inline constexpr int64_t kSlowdownScale = 1000;

class Metrics {
 public:
  // Samples with send time before `warmup_end` are discarded (the paper
  // discards the first 10% of each run).
  explicit Metrics(Nanos warmup_end = 0) : warmup_end_(warmup_end) {}

  void RegisterType(TypeId wire_id, std::string name);

  // Enables per-bucket time series (exact percentiles within each bucket).
  void EnableTimeSeries(Nanos bucket_width) { bucket_width_ = bucket_width; }

  // `deadline` is the request's absolute deadline (0 = none) and
  // `completion_time` the server-side completion instant it is judged
  // against — matching the runtime, which counts misses when the dispatcher
  // absorbs the completion, not when the client sees the response.
  void RecordCompletion(TypeId wire_id, Nanos send_time, Nanos receive_time,
                        Nanos service_time, Nanos deadline = 0,
                        Nanos completion_time = 0);
  void RecordDrop(TypeId wire_id);
  // A deadlined request shed before service (admission control / queue full).
  void RecordDeadlineShed(TypeId wire_id, Nanos send_time);

  // --- Aggregate views ------------------------------------------------------
  // All percentile arguments in [0,100], e.g. 99.9.
  double OverallSlowdown(double pct) const;
  double TypeSlowdown(TypeId wire_id, double pct) const;
  Nanos TypeLatency(TypeId wire_id, double pct) const;
  Nanos OverallLatency(double pct) const;
  double TypeMeanLatency(TypeId wire_id) const;

  uint64_t TypeCount(TypeId wire_id) const;
  uint64_t TotalCount() const { return total_completions_; }
  uint64_t TotalDrops() const { return total_drops_; }
  uint64_t TypeDrops(TypeId wire_id) const;

  // --- Deadline views (deadline tier; all zero when no request carried a
  // deadline) -----------------------------------------------------------------
  uint64_t TotalDeadlined() const { return deadline_total_; }
  uint64_t TotalDeadlineMisses() const { return deadline_missed_; }
  uint64_t TotalDeadlineSheds() const { return deadline_shed_; }
  uint64_t TypeDeadlineMisses(TypeId wire_id) const;
  uint64_t TypeDeadlineSheds(TypeId wire_id) const;
  // Fraction of deadlined requests that failed their budget — sheds count as
  // misses (the request never completed in time by construction).
  double DeadlineMissRate() const {
    const uint64_t offered = deadline_total_ + deadline_shed_;
    return offered > 0 ? static_cast<double>(deadline_missed_ + deadline_shed_) /
                             static_cast<double>(offered)
                       : 0.0;
  }
  // Deadline-meeting completions per second: the throughput that "counts".
  double GoodputRps(Nanos measured_duration) const {
    const uint64_t good = total_completions_ - deadline_missed_;
    return measured_duration > 0 ? static_cast<double>(good) * 1e9 /
                                       static_cast<double>(measured_duration)
                                 : 0;
  }

  // Completed-requests throughput over the measured window.
  double ThroughputRps(Nanos measured_duration) const {
    return measured_duration > 0 ? static_cast<double>(total_completions_) *
                                       1e9 /
                                       static_cast<double>(measured_duration)
                                 : 0;
  }

  const std::vector<TypeId>& type_ids() const { return type_ids_; }
  const std::string& TypeName(TypeId wire_id) const;

  // Publishes the experiment's results into the unified snapshot: overall +
  // per-type completion/drop counters, latency and slowdown histograms, and
  // the wire-id → name map. This is how the simulator joins the single
  // TelemetrySnapshot API shared with the threaded runtime.
  void ExportTelemetry(TelemetrySnapshot* out) const;

  // --- Time series ----------------------------------------------------------
  struct BucketStats {
    Nanos start = 0;
    uint64_t count = 0;
    Nanos p999_latency = 0;
    Nanos p50_latency = 0;
    double mean_latency = 0;
  };
  // Exact per-bucket percentiles for one type (time keyed by *send* time,
  // matching the paper: "the X axis is the sending time").
  std::vector<BucketStats> TimeSeries(TypeId wire_id, double pct = 99.9) const;

 private:
  struct PerType {
    std::string name;
    Histogram latency;
    Histogram slowdown;
    uint64_t drops = 0;
    uint64_t deadline_total = 0;   // completions that carried a deadline
    uint64_t deadline_missed = 0;  // ... of which finished past it
    uint64_t deadline_shed = 0;    // deadlined requests shed before service
    // bucket index -> raw latency samples (time-series mode only).
    std::map<int64_t, std::vector<Nanos>> buckets;
  };

  PerType& SlotFor(TypeId wire_id);
  const PerType* FindSlot(TypeId wire_id) const;

  Nanos warmup_end_;
  Nanos bucket_width_ = 0;
  std::map<TypeId, size_t> index_;
  std::vector<TypeId> type_ids_;
  std::vector<PerType> types_;
  Histogram overall_slowdown_;
  Histogram overall_latency_;
  uint64_t total_completions_ = 0;
  uint64_t total_drops_ = 0;
  uint64_t deadline_total_ = 0;
  uint64_t deadline_missed_ = 0;
  uint64_t deadline_shed_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_METRICS_H_
