// Trace-driven workload replay: run experiments against recorded arrival
// traces (production captures or synthesised ones) instead of the synthetic
// Poisson generators. CSV format, one request per line:
//
//     send_time_us,type_id,service_us
//
// Lines starting with '#' are comments. Times are relative to trace start
// and must be non-decreasing.
#ifndef PSP_SRC_SIM_TRACE_H_
#define PSP_SRC_SIM_TRACE_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/core/request.h"
#include "src/sim/workload.h"

namespace psp {

// Parses a CSV trace. Returns nullopt on malformed input (and sets *error,
// when provided, to a line-numbered description).
std::optional<std::vector<TraceEntry>> ParseTraceCsv(
    std::istream& in, std::string* error = nullptr);
std::optional<std::vector<TraceEntry>> ParseTraceCsvFile(
    const std::string& path, std::string* error = nullptr);

// Serialises a trace in the same format.
void WriteTraceCsv(const std::vector<TraceEntry>& trace, std::ostream& out);

// Synthesises a Poisson trace from a workload spec (phase 0) — useful for
// generating reproducible trace files and for round-trip tests.
std::vector<TraceEntry> SynthesizeTrace(const WorkloadSpec& workload,
                                        double rate_rps, Nanos duration,
                                        uint64_t seed);

}  // namespace psp

#endif  // PSP_SRC_SIM_TRACE_H_
