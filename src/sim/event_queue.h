// Discrete-event simulation core: a time-ordered event queue with stable FIFO
// ordering for simultaneous events, driving all paper-figure experiments.
//
// The engine is allocation-free in steady state (the substrate discipline the
// paper applies to its data path — preallocated pools, no per-item malloc):
//
//   * Events are fixed-size slots: one type-erased trampoline pointer plus an
//     inline POD payload (the handler's captures), the whole slot
//     static-asserted to fit one cache line. There is no std::function and no
//     per-event heap allocation; the only allocations ever made are geometric
//     growths of the slot arena and queue storage, which stop once the run
//     reaches its peak pending-event count (see arena_allocations()).
//   * Slots are recycled through an intrusive free list threaded through the
//     arena (the link reuses the payload bytes of free slots).
//   * The ready queue has TWO backends behind one API, selected by
//     EngineBackend (default: auto):
//       - a 4-ary implicit heap of 16-byte (time, seq-packed) entries in
//         64-byte-aligned storage (one cache line per sibling group, half a
//         binary heap's depth) — O(log n), best for sparse far-future
//         schedules;
//       - a hierarchical timer wheel (Eiffel-style calendar queue): 8 levels
//         of 256 single-byte-indexed buckets with a find-first-set bitmap
//         summary per level, covering the full 64-bit time range, with
//         cascade-on-rollover pouring higher-level buckets into lower ones —
//         O(1) amortised enqueue/dequeue, best for the dense short-horizon
//         schedules every paper sweep produces (see docs/PERF.md §1b).
//     Auto mode observes horizon density (mean schedule span vs pending
//     population) every kAutoWindow schedules and migrates between backends;
//     both directions preserve the ordering contract exactly.
//
// Ordering contract (unchanged from the seed engine, and what the
// determinism goldens rely on): events execute in ascending (time, seq)
// order, where seq is the global schedule-call sequence number — FIFO among
// simultaneous events. Both backends reproduce this bit-for-bit: the heap
// compares packed (time, seq) keys; the wheel relies on the invariant that
// every bucket list holds its same-tick events in seq order (appends happen
// in global seq order, cascades preserve relative order, and backend
// migrations drain in (time, seq) order).
#ifndef PSP_SRC_SIM_EVENT_QUEUE_H_
#define PSP_SRC_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "src/common/time.h"

namespace psp {

// One cache line on every mainstream x86/ARM server part (mirrors
// kCacheLineSize in src/common/spsc_ring.h; redefined here so the simulator
// core does not depend on the concurrency headers).
inline constexpr size_t kEventCacheLine = 64;

// Ready-queue backend selection. kAuto starts on the wheel (the common dense
// case) and re-evaluates horizon density as the run unfolds; kHeap/kWheel
// pin one backend (config override / paired benchmarking).
enum class EngineBackend : uint8_t { kAuto = 0, kHeap = 1, kWheel = 2 };

inline const char* EngineBackendName(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::kHeap:
      return "heap";
    case EngineBackend::kWheel:
      return "wheel";
    default:
      return "auto";
  }
}

// Parses "auto" / "heap" / "wheel"; returns false on anything else.
inline bool ParseEngineBackend(const char* name, EngineBackend* out) {
  if (std::strcmp(name, "auto") == 0) {
    *out = EngineBackend::kAuto;
  } else if (std::strcmp(name, "heap") == 0) {
    *out = EngineBackend::kHeap;
  } else if (std::strcmp(name, "wheel") == 0) {
    *out = EngineBackend::kWheel;
  } else {
    return false;
  }
  return true;
}

class Simulation {
 public:
  // Inline payload budget for a scheduled handler's captures. Big enough for
  // every engine/policy handler (this + a pointer + a few scalars; the
  // largest today is trace replay's [this, TraceEntry, index] at 40 bytes).
  static constexpr size_t kEventPayloadSize =
      kEventCacheLine - sizeof(void (*)(void*));

  explicit Simulation(EngineBackend backend = EngineBackend::kAuto)
      : requested_(backend),
        use_wheel_(backend != EngineBackend::kHeap) {}
  ~Simulation() {
    std::free(heap_);
    std::free(wheel_);
  }

  // The queue storage is manually managed; nothing in the tree copies engines.
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Nanos Now() const { return now_; }

  // Pre-sizes the arena and ready queue for `events` concurrently-pending
  // events so even the first iterations allocate nothing.
  void Reserve(size_t events) {
    if (events + kHeapPad > heap_cap_) {
      GrowHeap(events + kHeapPad);
    }
    ReserveSlots(events);
    if (requested_ != EngineBackend::kHeap) {
      EnsureWheel();
      if (events > wheel_nodes_.capacity()) {
        wheel_nodes_.reserve(events);
      }
    }
  }

  // Schedules `fn` to run at absolute simulated time `t` (>= Now()).
  //
  // `fn` must be a trivially-copyable callable (lambdas capturing pointers
  // and scalars qualify) whose state fits the inline payload. It is stored
  // by value inside the event slot: no allocation, no destructor.
  template <typename Fn>
  void ScheduleAt(Nanos t, Fn fn) {
    static_assert(std::is_trivially_copyable_v<Fn>,
                  "event handlers are stored inline: captures must be "
                  "trivially copyable (capture pointers, not owning objects)");
    static_assert(sizeof(Fn) <= kEventPayloadSize,
                  "event handler captures exceed the inline payload budget; "
                  "capture a pointer to the state instead");
    static_assert(alignof(Fn) <= alignof(void*),
                  "over-aligned captures are not supported");
    assert(t >= 0 && "simulated time is non-negative");
    assert(t >= now_ && "events must not be scheduled in the past");
    const uint32_t slot = AllocSlot();
    EventSlot& s = slots_[slot];
    // The trampoline copies the captures to its own stack before running the
    // handler: the handler may schedule events, growing the arena and moving
    // every slot. The copy is sizeof(Fn) bytes, not the full payload budget.
    s.invoke = [](void* payload) {
      Fn handler(*static_cast<Fn*>(payload));
      handler();
    };
    ::new (static_cast<void*>(s.payload)) Fn(fn);
    const uint64_t lo = (next_seq_++ << kSlotBits) | slot;
    if (use_wheel_) {
      WheelInsert(static_cast<uint64_t>(t), lo);
    } else {
      HeapPushEntry(static_cast<uint64_t>(t), lo);
    }
    if (requested_ == EngineBackend::kAuto) {
      AutoObserve(t);
    }
  }

  template <typename Fn>
  void ScheduleAfter(Nanos delay, Fn fn) {
    ScheduleAt(now_ + delay, fn);
  }

  // Runs events until the queue drains or simulated time exceeds `until`.
  // Events scheduled at exactly `until` do run; Now() lands on `until` even
  // when the queue drains early.
  void RunUntil(Nanos until) {
    Nanos t;
    // The peek is bounded by `until`: on the wheel backend an unbounded peek
    // would commit wheel_time_ to the next pending tick even when that tick
    // is beyond the horizon, and events scheduled afterwards in the gap
    // [until, tick) would land behind the wheel. Bounding keeps
    // wheel_time_ <= until = Now() on exit, preserving the wheel's
    // lower-bound invariant for any follow-up ScheduleAt.
    while (PeekNextTime(until, &t)) {
      StepOne();
    }
    if (now_ < until) {
      now_ = until;
    }
  }

  // Runs until the event queue is completely drained.
  void RunToCompletion() {
    while (pending_events() > 0) {
      StepOne();
    }
  }

  uint64_t executed_events() const { return executed_; }
  size_t pending_events() const {
    return use_wheel_ ? wheel_count_ : heap_count_;
  }

  // Number of heap allocations the engine has performed (arena + queue
  // storage growths). Flat across iterations once warmed up — the property
  // bench/micro_sim_engine gates on.
  uint64_t arena_allocations() const { return arena_allocations_; }
  size_t arena_capacity() const { return slots_.capacity(); }

  // --- Backend introspection --------------------------------------------------
  EngineBackend requested_backend() const { return requested_; }
  bool wheel_active() const { return use_wheel_; }
  const char* active_backend_name() const {
    return use_wheel_ ? "wheel" : "heap";
  }
  // Entries poured one level down during a bucket rollover (per-event moves).
  uint64_t wheel_cascades() const { return cascades_; }
  // Higher-level buckets cascaded (per-bucket rollover operations).
  uint64_t wheel_rollovers() const { return rollovers_; }
  // Auto-mode backend migrations (0 when a backend is pinned).
  uint64_t backend_switches() const { return backend_switches_; }

 private:
  using InvokeFn = void (*)(void* payload);

  // --- Heap layout -----------------------------------------------------------
  // Logical node j lives at physical index j + 3 of a 64-byte-aligned array,
  // so every 4-sibling group (4 × 16-byte entries) starts on a cache-line
  // boundary and one sift level touches exactly one line. Physical 0..2 are
  // padding; the root sits at physical 3.
  //   children(p) = 4p - 8 .. 4p - 5      parent(c) = (c + 8) >> 2
  static constexpr size_t kHeapRoot = 3;
  static constexpr size_t kHeapPad = 3;

  // Heaps up to this many entries (32 KiB of the 48 KiB L1D) take the
  // unrolled sift-down; larger ones the rolled loop. See HeapPop.
  static constexpr size_t kUnrolledPopLimit = 2048;

  // --- Wheel layout ----------------------------------------------------------
  // 8 levels of 256 buckets, one byte of the event time per level: level l
  // bucket index is byte l of the time, and 8 levels cover the full 64-bit
  // range — there is no overflow list; arbitrarily far-future events simply
  // start at a high level and cascade down as the wheel reaches them. Each
  // level carries a 256-bit occupancy bitmap for find-first-set scans.
  //
  // wheel_time_ is the tick the wheel has advanced to (every pending event's
  // time is >= it). An event inserts at the HIGHEST byte in which its time
  // differs from wheel_time_ (level 0 for same-tick). Consequences that make
  // the O(1) pop work:
  //   * a level-0 bucket inside the current 256-tick window holds exactly one
  //     tick's events, in seq order (appends happen in global seq order and
  //     cascades preserve relative order);
  //   * at any level, bucket indices below wheel_time_'s byte are empty (they
  //     were drained or cascaded when the wheel passed them), so a bitmap
  //     find-first-set from that byte finds the next pending work.
  static constexpr uint32_t kWheelLevelBits = 8;
  static constexpr uint32_t kWheelBuckets = 1u << kWheelLevelBits;  // 256
  static constexpr uint32_t kWheelLevels = 8;  // 8 bytes = full uint64 range
  static constexpr uint32_t kWheelBitmapWords = kWheelBuckets / 64;

  // Auto-selection heuristic: every kAutoWindow schedules, compare the mean
  // schedule span (t - Now()) against the pending population. The wheel wins
  // while events land densely within a short horizon (cascades stay shallow
  // and buckets stay hot); the heap wins when few events spread over a huge
  // horizon (log n of a small n beats walking empty levels). The 4x band is
  // hysteresis so borderline runs don't thrash. Decisions depend only on the
  // schedule sequence (virtual time), so they are deterministic per seed.
  static constexpr uint32_t kAutoWindow = 1024;
  static constexpr uint32_t kDensityShift = 12;  // span/4096 vs pending

  // A pending event's storage: trampoline + inline captures. Free slots
  // thread the arena free list through their payload bytes.
  struct alignas(kEventCacheLine) EventSlot {
    InvokeFn invoke;
    alignas(alignof(void*)) unsigned char payload[kEventPayloadSize];

    uint32_t free_link() const {
      uint32_t link;
      std::memcpy(&link, payload, sizeof(link));
      return link;
    }
    void set_free_link(uint32_t link) {
      std::memcpy(payload, &link, sizeof(link));
    }
  };
  static_assert(sizeof(EventSlot) == kEventCacheLine,
                "an event (trampoline + payload) must fit one cache line");

  // Heap entry: a single 16-byte key `(time << 64) | (seq << 24) | slot`.
  // Comparing keys is one branchless 128-bit compare, and orders by
  // (time, seq) exactly — seq values are unique, so the slot bits never
  // break a tie — reproducing the seed engine's stable-FIFO ordering
  // bit-for-bit. Sim time is non-negative (asserted at the schedule sites),
  // so the unsigned compare matches signed time order; 2^40 schedules
  // (≈10^12) and 2^24 concurrently-pending events are far beyond any paper
  // experiment.
  struct HeapEntry {
    uint64_t hi;  // time
    uint64_t lo;  // (seq << kSlotBits) | slot

    Nanos time() const { return static_cast<Nanos>(hi); }
    uint32_t slot() const { return static_cast<uint32_t>(lo) & kSlotMask; }
  };
  static_assert(sizeof(HeapEntry) == 16);

  // Wheel node for a pending event, indexed by its arena slot (each pending
  // event owns exactly one slot, so the parallel array needs no free list of
  // its own). `lo` keeps the packed (seq, slot) key so a backend switch can
  // rebuild heap entries without re-sequencing.
  struct WheelNode {
    uint64_t time;
    uint64_t lo;
    uint32_t next;  // next slot in the bucket's list; kNoSlot at the tail
  };

  struct WheelBucket {
    uint32_t head;
    uint32_t tail;
  };

  struct WheelLevel {
    WheelBucket buckets[kWheelBuckets];
    uint64_t bitmap[kWheelBitmapWords];
  };

  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;

  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    // Two-limb compare with short-circuit on time: ties in `hi` are rare
    // outside simultaneous events, and the `lo` limb then resolves them by
    // global schedule order (seq is unique; slot bits never decide).
    if (a.hi != b.hi) {
      return a.hi < b.hi;
    }
    return a.lo < b.lo;
  }

  uint32_t AllocSlot() {
    if (free_head_ != kNoSlot) {
      const uint32_t slot = free_head_;
      free_head_ = slots_[slot].free_link();
      return slot;
    }
    const size_t old_cap = slots_.capacity();
    slots_.emplace_back();
    if (slots_.capacity() != old_cap) {
      ++arena_allocations_;
      if (wheel_ != nullptr) {
        wheel_nodes_.reserve(slots_.capacity());
      }
    }
    assert(slots_.size() <= kSlotMask && "pending-event arena exceeds 2^24");
    return static_cast<uint32_t>(slots_.size() - 1);
  }

  void FreeSlot(uint32_t slot) {
    slots_[slot].set_free_link(free_head_);
    free_head_ = slot;
  }

  void ReserveSlots(size_t n) {
    if (n > slots_.capacity()) {
      slots_.reserve(n);
      ++arena_allocations_;
    }
  }

  // Grows the aligned heap array to at least `min_physical` entries.
  void GrowHeap(size_t min_physical) {
    size_t cap = heap_cap_ == 0 ? 64 : heap_cap_ * 2;
    if (cap < min_physical) {
      cap = min_physical;
    }
    cap = (cap + 3) & ~size_t{3};  // byte size stays a multiple of 64
    auto* fresh = static_cast<HeapEntry*>(
        std::aligned_alloc(kEventCacheLine, cap * sizeof(HeapEntry)));
    if (fresh == nullptr) {
      throw std::bad_alloc();
    }
    if (heap_ != nullptr) {
      std::memcpy(fresh, heap_,
                  (heap_count_ + kHeapPad) * sizeof(HeapEntry));
      std::free(heap_);
    }
    heap_ = fresh;
    heap_cap_ = cap;
    ++arena_allocations_;
  }

  void HeapPushEntry(uint64_t hi, uint64_t lo) {
    const HeapEntry entry{hi, lo};
    if (heap_count_ + kHeapPad + 1 > heap_cap_) {
      GrowHeap(heap_count_ + kHeapPad + 1);
    }
    // Sift up, holding the new entry in registers and shifting parents down
    // (half the moves of a swap-based sift).
    HeapEntry* const h = heap_;
    size_t i = heap_count_ + kHeapPad;
    ++heap_count_;
    while (i > kHeapRoot) {
      const size_t parent = (i + 8) >> 2;
      if (!Before(entry, h[parent])) {
        break;
      }
      h[i] = h[parent];
      i = parent;
    }
    h[i] = entry;
  }

  void HeapPop() {
    const size_t last_idx = heap_count_ + kHeapPad - 1;  // physical tail
    --heap_count_;
    if (heap_count_ == 0) {
      return;
    }
    // Floyd's bottom-up deletion: walk the hole from the root to a leaf along
    // the min-child path (one comparison round per level, no test against the
    // displaced tail element), then bubble the tail up from the leaf. The
    // tail is usually heap-large, so the bubble-up almost always stops
    // immediately — cheaper than the classic test-children-then-stop sift.
    HeapEntry* const h = heap_;
    // The displaced tail is read only after the descent; start its line fetch
    // now so it overlaps the level-by-level walk.
    __builtin_prefetch(&h[last_idx]);
    size_t hole = kHeapRoot;
    // Size-adaptive descent (both measured, neither dominates): the unrolled
    // scan is ~15% faster while the heap is L1-resident, but once it spills
    // to L2 the rolled loop's codegen overlaps the next level's line fetch
    // with this level's compares and wins by ~2x. The branch on size is
    // fixed for a whole run, so it predicts perfectly. Either way the
    // sibling-min select is a ternary -> cmov: which sibling wins is
    // data-dependent and ~50/50, a branch there would mispredict constantly.
    if (last_idx <= kUnrolledPopLimit) {
      for (;;) {
        const size_t first_child = (hole << 2) - 8;
        if (first_child + 4 <= last_idx) {
          size_t best = first_child;
          best = Before(h[first_child + 1], h[best]) ? first_child + 1 : best;
          best = Before(h[first_child + 2], h[best]) ? first_child + 2 : best;
          best = Before(h[first_child + 3], h[best]) ? first_child + 3 : best;
          h[hole] = h[best];
          hole = best;
          continue;
        }
        if (first_child >= last_idx) {
          break;
        }
        // Partial group at the array frontier: this is the final level.
        size_t best = first_child;
        for (size_t c = first_child + 1; c < last_idx; ++c) {
          best = Before(h[c], h[best]) ? c : best;
        }
        h[hole] = h[best];
        hole = best;
      }
    } else {
      for (;;) {
        const size_t first_child = (hole << 2) - 8;
        if (first_child >= last_idx) {
          break;
        }
        size_t best = first_child;
        const size_t end =
            first_child + 4 < last_idx ? first_child + 4 : last_idx;
        for (size_t c = first_child + 1; c < end; ++c) {
          best = Before(h[c], h[best]) ? c : best;
        }
        h[hole] = h[best];
        hole = best;
      }
    }
    const HeapEntry last = h[last_idx];
    size_t i = hole;
    while (i > kHeapRoot) {
      const size_t parent = (i + 8) >> 2;
      if (!Before(last, h[parent])) {
        break;
      }
      h[i] = h[parent];
      i = parent;
    }
    h[i] = last;
  }

  // --- Wheel operations -------------------------------------------------------

  void EnsureWheel() {
    if (wheel_ != nullptr) {
      return;
    }
    wheel_ = static_cast<WheelLevel*>(
        std::malloc(sizeof(WheelLevel) * kWheelLevels));
    if (wheel_ == nullptr) {
      throw std::bad_alloc();
    }
    ++arena_allocations_;
    for (uint32_t level = 0; level < kWheelLevels; ++level) {
      // 0xFF bytes make every head/tail kNoSlot in one pass.
      std::memset(wheel_[level].buckets, 0xFF, sizeof(wheel_[level].buckets));
      std::memset(wheel_[level].bitmap, 0, sizeof(wheel_[level].bitmap));
    }
    if (!wheel_nodes_.empty() || slots_.capacity() > 0) {
      wheel_nodes_.reserve(slots_.capacity());
    }
  }

  // First set bucket index >= `from`, or -1. Bits below the wheel's current
  // byte are structurally clear (see the layout comment), so this is the
  // "next pending bucket" scan.
  static int BitmapFindFrom(const uint64_t* words, uint32_t from) {
    uint32_t w = from >> 6;
    uint64_t cur = words[w] & (~uint64_t{0} << (from & 63));
    for (;;) {
      if (cur != 0) {
        return static_cast<int>(w * 64 +
                                static_cast<uint32_t>(__builtin_ctzll(cur)));
      }
      if (++w >= kWheelBitmapWords) {
        return -1;
      }
      cur = words[w];
    }
  }

  // Appends `slot` (whose node carries `time`) to the bucket for the highest
  // byte in which `time` differs from wheel_time_. Appending at the tail is
  // what preserves per-tick seq order.
  void WheelEnqueue(uint64_t time, uint32_t slot) {
    const uint64_t diff = time ^ wheel_time_;
    const uint32_t level =
        diff == 0
            ? 0
            : (63u - static_cast<uint32_t>(__builtin_clzll(diff))) >>
                  3;  // byte index of the highest differing bit
    const uint32_t index =
        static_cast<uint32_t>(time >> (level * kWheelLevelBits)) &
        (kWheelBuckets - 1);
    WheelLevel& L = wheel_[level];
    WheelBucket& bucket = L.buckets[index];
    if (bucket.head == kNoSlot) {
      bucket.head = slot;
      bucket.tail = slot;
      L.bitmap[index >> 6] |= uint64_t{1} << (index & 63);
    } else {
      wheel_nodes_[bucket.tail].next = slot;
      bucket.tail = slot;
    }
  }

  void WheelInsert(uint64_t time, uint64_t lo) {
    if (wheel_ == nullptr) {
      EnsureWheel();
    }
    assert(time >= wheel_time_ && "wheel time lower-bounds pending events");
    const uint32_t slot = static_cast<uint32_t>(lo) & kSlotMask;
    if (slot >= wheel_nodes_.size()) {
      wheel_nodes_.resize(slots_.size());
    }
    WheelNode& node = wheel_nodes_[slot];
    node.time = time;
    node.lo = lo;
    node.next = kNoSlot;
    WheelEnqueue(time, slot);
    ++wheel_count_;
  }

  // Advances the wheel so the earliest pending event sits at the head of its
  // exact-tick level-0 bucket, cascading higher-level buckets down as needed;
  // returns true and writes that tick when it is <= `bound`. wheel_time_
  // NEVER advances past `bound`: a bounded peek (RunUntil's horizon check)
  // must not move the wheel beyond times the caller may still schedule into,
  // or a later ScheduleAt in the gap would land behind the wheel and become
  // undiscoverable. Idempotent and cheap to repeat (the level-0 bitmap hit
  // short-circuits), so peek + pop is fine.
  bool WheelPrepareMin(uint64_t bound, uint64_t* time_out) {
    if (wheel_count_ == 0) {
      return false;
    }
    for (;;) {
      const uint32_t idx0 =
          static_cast<uint32_t>(wheel_time_) & (kWheelBuckets - 1);
      const int hit = BitmapFindFrom(wheel_[0].bitmap, idx0);
      if (hit >= 0) {
        const uint64_t tick = (wheel_time_ & ~uint64_t{kWheelBuckets - 1}) |
                              static_cast<uint32_t>(hit);
        if (tick > bound) {
          return false;
        }
        wheel_time_ = tick;
        *time_out = tick;
        return true;
      }
      // Level 0 is drained: roll the first pending bucket of the lowest
      // non-empty level over, pouring its entries one level down (they
      // re-enqueue relative to the advanced wheel_time_).
      uint32_t level = 1;
      int bucket = -1;
      for (; level < kWheelLevels; ++level) {
        const uint32_t from = static_cast<uint32_t>(
                                  wheel_time_ >> (level * kWheelLevelBits)) &
                              (kWheelBuckets - 1);
        bucket = BitmapFindFrom(wheel_[level].bitmap, from);
        if (bucket >= 0) {
          break;
        }
      }
      assert(bucket >= 0 && "wheel_count_ > 0 but every bitmap is empty");
      const uint32_t shift = level * kWheelLevelBits;
      // Jump to the start of the bucket's span: keep the bytes above the
      // level, set the level's byte, zero everything below. When the bucket
      // is the current byte's own, this moves wheel_time_ *down* within its
      // span — safe, since it lowers every byte and scans only start earlier.
      const uint64_t keep_mask =
          level + 1 >= kWheelLevels
              ? uint64_t{0}
              : ~uint64_t{0} << ((level + 1) * kWheelLevelBits);
      const uint64_t jump = (wheel_time_ & keep_mask) |
                            (static_cast<uint64_t>(bucket) << shift);
      if (jump > bound) {
        // Every pending event's time >= the start of this bucket's span.
        return false;
      }
      wheel_time_ = jump;
      WheelLevel& L = wheel_[level];
      WheelBucket& b = L.buckets[bucket];
      uint32_t cur = b.head;
      b.head = kNoSlot;
      b.tail = kNoSlot;
      L.bitmap[bucket >> 6] &= ~(uint64_t{1} << (bucket & 63));
      ++rollovers_;
      while (cur != kNoSlot) {
        const uint32_t next = wheel_nodes_[cur].next;
        wheel_nodes_[cur].next = kNoSlot;
        WheelEnqueue(wheel_nodes_[cur].time, cur);
        ++cascades_;
        cur = next;
      }
    }
  }

  // Unlinks and returns the head of the current tick's bucket. Only valid
  // directly after WheelPrepareMin returned true.
  uint32_t WheelPopFront() {
    const uint32_t index =
        static_cast<uint32_t>(wheel_time_) & (kWheelBuckets - 1);
    WheelBucket& bucket = wheel_[0].buckets[index];
    const uint32_t slot = bucket.head;
    assert(slot != kNoSlot);
    bucket.head = wheel_nodes_[slot].next;
    if (bucket.head == kNoSlot) {
      bucket.tail = kNoSlot;
      wheel_[0].bitmap[index >> 6] &= ~(uint64_t{1} << (index & 63));
    }
    --wheel_count_;
    return slot;
  }

  // --- Backend selection and migration ---------------------------------------

  void AutoObserve(Nanos t) {
    window_span_sum_ += static_cast<uint64_t>(t - now_);
    if (++window_scheduled_ < kAutoWindow) {
      return;
    }
    // sum >> 12 compared against pending * 1024 is mean_span/4096 vs pending.
    const uint64_t span_scaled = window_span_sum_ >> kDensityShift;
    const uint64_t pivot =
        (static_cast<uint64_t>(pending_events()) + 1) * kAutoWindow;
    if (use_wheel_) {
      if (span_scaled > pivot * 4) {
        SwitchToHeap();
      }
    } else {
      if (span_scaled * 4 < pivot) {
        SwitchToWheel();
      }
    }
    window_span_sum_ = 0;
    window_scheduled_ = 0;
  }

  void SwitchToWheel() {
    EnsureWheel();
    // wheel_time_ must lower-bound every pending time; events are never
    // scheduled in the past, so Now() qualifies (and never lower it).
    if (static_cast<uint64_t>(now_) > wheel_time_) {
      wheel_time_ = static_cast<uint64_t>(now_);
    }
    // Drain the heap in (time, seq) order so every bucket receives its
    // same-tick events in FIFO order — the invariant the wheel's O(1) pop
    // relies on for the bit-for-bit ordering contract.
    use_wheel_ = true;
    while (heap_count_ > 0) {
      const HeapEntry top = heap_[kHeapRoot];
      HeapPop();
      WheelInsert(top.hi, top.lo);
    }
    ++backend_switches_;
  }

  void SwitchToHeap() {
    // Bucket walk order is irrelevant: the heap orders by the full
    // (time, seq) key, which every wheel node carries.
    for (uint32_t level = 0; level < kWheelLevels; ++level) {
      WheelLevel& L = wheel_[level];
      for (uint32_t w = 0; w < kWheelBitmapWords; ++w) {
        uint64_t bits = L.bitmap[w];
        L.bitmap[w] = 0;
        while (bits != 0) {
          const uint32_t index =
              w * 64 + static_cast<uint32_t>(__builtin_ctzll(bits));
          bits &= bits - 1;
          uint32_t cur = L.buckets[index].head;
          L.buckets[index].head = kNoSlot;
          L.buckets[index].tail = kNoSlot;
          while (cur != kNoSlot) {
            const uint32_t next = wheel_nodes_[cur].next;
            HeapPushEntry(wheel_nodes_[cur].time, wheel_nodes_[cur].lo);
            cur = next;
          }
        }
      }
    }
    wheel_count_ = 0;
    use_wheel_ = false;
    ++backend_switches_;
  }

  // --- Dispatch ---------------------------------------------------------------

  // True iff an event is pending at a time <= `bound`; writes that time.
  // On the wheel backend this may advance wheel_time_ (never past `bound`).
  bool PeekNextTime(Nanos bound, Nanos* t) {
    if (use_wheel_) {
      uint64_t wheel_t;
      if (!WheelPrepareMin(static_cast<uint64_t>(bound), &wheel_t)) {
        return false;
      }
      *t = static_cast<Nanos>(wheel_t);
      return true;
    }
    if (heap_count_ == 0 || heap_[kHeapRoot].time() > bound) {
      return false;
    }
    *t = heap_[kHeapRoot].time();
    return true;
  }

  void StepOne() {
    uint32_t slot;
    if (use_wheel_) {
      uint64_t t;
      // Unbounded prepare is safe here: the pop below immediately brings
      // now_ up to wheel_time_, so no schedule can land behind the wheel.
      const bool ok = WheelPrepareMin(~uint64_t{0}, &t);
      assert(ok && "StepOne on an empty wheel");
      (void)ok;
      slot = WheelPopFront();
      assert(wheel_nodes_[slot].time == t);
      now_ = static_cast<Nanos>(t);
    } else {
      const HeapEntry top = heap_[kHeapRoot];
      slot = top.slot();
      // Pull the slot's line into cache while the sift-down below runs.
      __builtin_prefetch(&slots_[slot]);
      HeapPop();
      now_ = top.time();
    }
    EventSlot& s = slots_[slot];
    // The trampoline copies the captures out of the arena on entry (see
    // ScheduleAt), so scheduling from inside the handler is safe even when
    // it grows the arena. The slot is released only afterwards — by index,
    // since `s` may dangle once the arena has grown.
    s.invoke(s.payload);
    FreeSlot(slot);
    ++executed_;
  }

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  // 4-ary implicit min-heap over (time, seq); 64-byte-aligned storage so
  // sibling groups share cache lines (see layout comment above). Manually
  // managed: std::vector cannot guarantee over-aligned allocation.
  HeapEntry* heap_ = nullptr;
  size_t heap_count_ = 0;  // live entries (logical heap size)
  size_t heap_cap_ = 0;    // physical capacity, including the 3-entry pad
  std::vector<EventSlot> slots_;  // slot arena; free list through payloads
  uint32_t free_head_ = kNoSlot;
  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t arena_allocations_ = 0;

  // Hierarchical timer wheel (lazily allocated on first use; 16 KiB + the
  // per-slot node array). wheel_time_ is the tick the wheel advanced to.
  WheelLevel* wheel_ = nullptr;
  std::vector<WheelNode> wheel_nodes_;  // indexed by arena slot
  uint64_t wheel_time_ = 0;
  size_t wheel_count_ = 0;

  // Backend state + instrumentation.
  EngineBackend requested_ = EngineBackend::kAuto;
  bool use_wheel_ = true;
  uint64_t cascades_ = 0;
  uint64_t rollovers_ = 0;
  uint64_t backend_switches_ = 0;
  uint64_t window_span_sum_ = 0;
  uint32_t window_scheduled_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_EVENT_QUEUE_H_
