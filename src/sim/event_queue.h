// Discrete-event simulation core: a time-ordered event heap with stable FIFO
// ordering for simultaneous events, driving all paper-figure experiments.
//
// The engine is allocation-free in steady state (the substrate discipline the
// paper applies to its data path — preallocated pools, no per-item malloc):
//
//   * Events are fixed-size slots: one type-erased trampoline pointer plus an
//     inline POD payload (the handler's captures), the whole slot
//     static-asserted to fit one cache line. There is no std::function and no
//     per-event heap allocation; the only allocations ever made are geometric
//     growths of the slot arena and heap array, which stop once the run
//     reaches its peak pending-event count (see arena_allocations()).
//   * Slots are recycled through an intrusive free list threaded through the
//     arena (the link reuses the payload bytes of free slots).
//   * The ready queue is a 4-ary implicit heap of 16-byte (time, seq-packed)
//     entries in 64-byte-aligned storage, laid out so each 4-sibling group is
//     exactly one cache line: a sift level costs one line fetch, and the tree
//     is half the depth of a binary heap.
//
// Ordering contract (unchanged from the seed engine, and what the
// determinism goldens rely on): events execute in ascending (time, seq)
// order, where seq is the global schedule-call sequence number — FIFO among
// simultaneous events.
#ifndef PSP_SRC_SIM_EVENT_QUEUE_H_
#define PSP_SRC_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "src/common/time.h"

namespace psp {

// One cache line on every mainstream x86/ARM server part (mirrors
// kCacheLineSize in src/common/spsc_ring.h; redefined here so the simulator
// core does not depend on the concurrency headers).
inline constexpr size_t kEventCacheLine = 64;

class Simulation {
 public:
  // Inline payload budget for a scheduled handler's captures. Big enough for
  // every engine/policy handler (this + a pointer + a few scalars; the
  // largest today is trace replay's [this, TraceEntry, index] at 40 bytes).
  static constexpr size_t kEventPayloadSize =
      kEventCacheLine - sizeof(void (*)(void*));

  Simulation() = default;
  ~Simulation() { std::free(heap_); }

  // The heap array is manually managed; nothing in the tree copies engines.
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Nanos Now() const { return now_; }

  // Pre-sizes the arena and heap for `events` concurrently-pending events so
  // even the first iterations allocate nothing.
  void Reserve(size_t events) {
    if (events + kHeapPad > heap_cap_) {
      GrowHeap(events + kHeapPad);
    }
    ReserveSlots(events);
  }

  // Schedules `fn` to run at absolute simulated time `t` (>= Now()).
  //
  // `fn` must be a trivially-copyable callable (lambdas capturing pointers
  // and scalars qualify) whose state fits the inline payload. It is stored
  // by value inside the event slot: no allocation, no destructor.
  template <typename Fn>
  void ScheduleAt(Nanos t, Fn fn) {
    static_assert(std::is_trivially_copyable_v<Fn>,
                  "event handlers are stored inline: captures must be "
                  "trivially copyable (capture pointers, not owning objects)");
    static_assert(sizeof(Fn) <= kEventPayloadSize,
                  "event handler captures exceed the inline payload budget; "
                  "capture a pointer to the state instead");
    static_assert(alignof(Fn) <= alignof(void*),
                  "over-aligned captures are not supported");
    const uint32_t slot = AllocSlot();
    EventSlot& s = slots_[slot];
    // The trampoline copies the captures to its own stack before running the
    // handler: the handler may schedule events, growing the arena and moving
    // every slot. The copy is sizeof(Fn) bytes, not the full payload budget.
    s.invoke = [](void* payload) {
      Fn handler(*static_cast<Fn*>(payload));
      handler();
    };
    ::new (static_cast<void*>(s.payload)) Fn(fn);
    HeapPush(t, slot);
  }

  template <typename Fn>
  void ScheduleAfter(Nanos delay, Fn fn) {
    ScheduleAt(now_ + delay, fn);
  }

  // Runs events until the queue drains or simulated time exceeds `until`.
  // Events scheduled at exactly `until` do run; Now() lands on `until` even
  // when the queue drains early.
  void RunUntil(Nanos until) {
    while (heap_count_ > 0 && heap_[kHeapRoot].time() <= until) {
      StepOne();
    }
    if (now_ < until) {
      now_ = until;
    }
  }

  // Runs until the event queue is completely drained.
  void RunToCompletion() {
    while (heap_count_ > 0) {
      StepOne();
    }
  }

  uint64_t executed_events() const { return executed_; }
  size_t pending_events() const { return heap_count_; }

  // Number of heap allocations the engine has performed (arena + heap-array
  // growths). Flat across iterations once warmed up — the property
  // bench/micro_sim_engine gates on.
  uint64_t arena_allocations() const { return arena_allocations_; }
  size_t arena_capacity() const { return slots_.capacity(); }

 private:
  using InvokeFn = void (*)(void* payload);

  // --- Heap layout -----------------------------------------------------------
  // Logical node j lives at physical index j + 3 of a 64-byte-aligned array,
  // so every 4-sibling group (4 × 16-byte entries) starts on a cache-line
  // boundary and one sift level touches exactly one line. Physical 0..2 are
  // padding; the root sits at physical 3.
  //   children(p) = 4p - 8 .. 4p - 5      parent(c) = (c + 8) >> 2
  static constexpr size_t kHeapRoot = 3;
  static constexpr size_t kHeapPad = 3;

  // Heaps up to this many entries (32 KiB of the 48 KiB L1D) take the
  // unrolled sift-down; larger ones the rolled loop. See HeapPop.
  static constexpr size_t kUnrolledPopLimit = 2048;

  // A pending event's storage: trampoline + inline captures. Free slots
  // thread the arena free list through their payload bytes.
  struct alignas(kEventCacheLine) EventSlot {
    InvokeFn invoke;
    alignas(alignof(void*)) unsigned char payload[kEventPayloadSize];

    uint32_t free_link() const {
      uint32_t link;
      std::memcpy(&link, payload, sizeof(link));
      return link;
    }
    void set_free_link(uint32_t link) {
      std::memcpy(payload, &link, sizeof(link));
    }
  };
  static_assert(sizeof(EventSlot) == kEventCacheLine,
                "an event (trampoline + payload) must fit one cache line");

  // Heap entry: a single 16-byte key `(time << 64) | (seq << 24) | slot`.
  // Comparing keys is one branchless 128-bit compare, and orders by
  // (time, seq) exactly — seq values are unique, so the slot bits never
  // break a tie — reproducing the seed engine's stable-FIFO ordering
  // bit-for-bit. Sim time is non-negative (asserted at the schedule sites),
  // so the unsigned compare matches signed time order; 2^40 schedules
  // (≈10^12) and 2^24 concurrently-pending events are far beyond any paper
  // experiment.
  struct HeapEntry {
    uint64_t hi;  // time
    uint64_t lo;  // (seq << kSlotBits) | slot

    Nanos time() const { return static_cast<Nanos>(hi); }
    uint32_t slot() const { return static_cast<uint32_t>(lo) & kSlotMask; }
  };
  static_assert(sizeof(HeapEntry) == 16);

  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;

  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    // Two-limb compare with short-circuit on time: ties in `hi` are rare
    // outside simultaneous events, and the `lo` limb then resolves them by
    // global schedule order (seq is unique; slot bits never decide).
    if (a.hi != b.hi) {
      return a.hi < b.hi;
    }
    return a.lo < b.lo;
  }

  uint32_t AllocSlot() {
    if (free_head_ != kNoSlot) {
      const uint32_t slot = free_head_;
      free_head_ = slots_[slot].free_link();
      return slot;
    }
    const size_t old_cap = slots_.capacity();
    slots_.emplace_back();
    if (slots_.capacity() != old_cap) {
      ++arena_allocations_;
    }
    assert(slots_.size() <= kSlotMask && "pending-event arena exceeds 2^24");
    return static_cast<uint32_t>(slots_.size() - 1);
  }

  void FreeSlot(uint32_t slot) {
    slots_[slot].set_free_link(free_head_);
    free_head_ = slot;
  }

  void ReserveSlots(size_t n) {
    if (n > slots_.capacity()) {
      slots_.reserve(n);
      ++arena_allocations_;
    }
  }

  // Grows the aligned heap array to at least `min_physical` entries.
  void GrowHeap(size_t min_physical) {
    size_t cap = heap_cap_ == 0 ? 64 : heap_cap_ * 2;
    if (cap < min_physical) {
      cap = min_physical;
    }
    cap = (cap + 3) & ~size_t{3};  // byte size stays a multiple of 64
    auto* fresh = static_cast<HeapEntry*>(
        std::aligned_alloc(kEventCacheLine, cap * sizeof(HeapEntry)));
    if (fresh == nullptr) {
      throw std::bad_alloc();
    }
    if (heap_ != nullptr) {
      std::memcpy(fresh, heap_,
                  (heap_count_ + kHeapPad) * sizeof(HeapEntry));
      std::free(heap_);
    }
    heap_ = fresh;
    heap_cap_ = cap;
    ++arena_allocations_;
  }

  void HeapPush(Nanos time, uint32_t slot) {
    assert(time >= 0 && "simulated time is non-negative");
    const HeapEntry entry{static_cast<uint64_t>(time),
                          (next_seq_++ << kSlotBits) | slot};
    if (heap_count_ + kHeapPad + 1 > heap_cap_) {
      GrowHeap(heap_count_ + kHeapPad + 1);
    }
    // Sift up, holding the new entry in registers and shifting parents down
    // (half the moves of a swap-based sift).
    HeapEntry* const h = heap_;
    size_t i = heap_count_ + kHeapPad;
    ++heap_count_;
    while (i > kHeapRoot) {
      const size_t parent = (i + 8) >> 2;
      if (!Before(entry, h[parent])) {
        break;
      }
      h[i] = h[parent];
      i = parent;
    }
    h[i] = entry;
  }

  void HeapPop() {
    const size_t last_idx = heap_count_ + kHeapPad - 1;  // physical tail
    --heap_count_;
    if (heap_count_ == 0) {
      return;
    }
    // Floyd's bottom-up deletion: walk the hole from the root to a leaf along
    // the min-child path (one comparison round per level, no test against the
    // displaced tail element), then bubble the tail up from the leaf. The
    // tail is usually heap-large, so the bubble-up almost always stops
    // immediately — cheaper than the classic test-children-then-stop sift.
    HeapEntry* const h = heap_;
    // The displaced tail is read only after the descent; start its line fetch
    // now so it overlaps the level-by-level walk.
    __builtin_prefetch(&h[last_idx]);
    size_t hole = kHeapRoot;
    // Size-adaptive descent (both measured, neither dominates): the unrolled
    // scan is ~15% faster while the heap is L1-resident, but once it spills
    // to L2 the rolled loop's codegen overlaps the next level's line fetch
    // with this level's compares and wins by ~2x. The branch on size is
    // fixed for a whole run, so it predicts perfectly. Either way the
    // sibling-min select is a ternary -> cmov: which sibling wins is
    // data-dependent and ~50/50, a branch there would mispredict constantly.
    if (last_idx <= kUnrolledPopLimit) {
      for (;;) {
        const size_t first_child = (hole << 2) - 8;
        if (first_child + 4 <= last_idx) {
          size_t best = first_child;
          best = Before(h[first_child + 1], h[best]) ? first_child + 1 : best;
          best = Before(h[first_child + 2], h[best]) ? first_child + 2 : best;
          best = Before(h[first_child + 3], h[best]) ? first_child + 3 : best;
          h[hole] = h[best];
          hole = best;
          continue;
        }
        if (first_child >= last_idx) {
          break;
        }
        // Partial group at the array frontier: this is the final level.
        size_t best = first_child;
        for (size_t c = first_child + 1; c < last_idx; ++c) {
          best = Before(h[c], h[best]) ? c : best;
        }
        h[hole] = h[best];
        hole = best;
      }
    } else {
      for (;;) {
        const size_t first_child = (hole << 2) - 8;
        if (first_child >= last_idx) {
          break;
        }
        size_t best = first_child;
        const size_t end =
            first_child + 4 < last_idx ? first_child + 4 : last_idx;
        for (size_t c = first_child + 1; c < end; ++c) {
          best = Before(h[c], h[best]) ? c : best;
        }
        h[hole] = h[best];
        hole = best;
      }
    }
    const HeapEntry last = h[last_idx];
    size_t i = hole;
    while (i > kHeapRoot) {
      const size_t parent = (i + 8) >> 2;
      if (!Before(last, h[parent])) {
        break;
      }
      h[i] = h[parent];
      i = parent;
    }
    h[i] = last;
  }

  void StepOne() {
    const HeapEntry top = heap_[kHeapRoot];
    const uint32_t slot = top.slot();
    // Pull the slot's line into cache while the sift-down below runs.
    __builtin_prefetch(&slots_[slot]);
    HeapPop();
    now_ = top.time();
    EventSlot& s = slots_[slot];
    // The trampoline copies the captures out of the arena on entry (see
    // ScheduleAt), so scheduling from inside the handler is safe even when
    // it grows the arena. The slot is released only afterwards — by index,
    // since `s` may dangle once the arena has grown.
    s.invoke(s.payload);
    FreeSlot(slot);
    ++executed_;
  }

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  // 4-ary implicit min-heap over (time, seq); 64-byte-aligned storage so
  // sibling groups share cache lines (see layout comment above). Manually
  // managed: std::vector cannot guarantee over-aligned allocation.
  HeapEntry* heap_ = nullptr;
  size_t heap_count_ = 0;  // live entries (logical heap size)
  size_t heap_cap_ = 0;    // physical capacity, including the 3-entry pad
  std::vector<EventSlot> slots_;  // slot arena; free list through payloads
  uint32_t free_head_ = kNoSlot;
  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t arena_allocations_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_EVENT_QUEUE_H_
