// Discrete-event simulation core: a time-ordered event heap with stable FIFO
// ordering for simultaneous events, driving all paper-figure experiments.
#ifndef PSP_SRC_SIM_EVENT_QUEUE_H_
#define PSP_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/time.h"

namespace psp {

class Simulation {
 public:
  using Handler = std::function<void()>;

  Nanos Now() const { return now_; }

  // Schedules `fn` at absolute simulated time `t` (>= Now()).
  void ScheduleAt(Nanos t, Handler fn) {
    heap_.push(Event{t, next_seq_++, std::move(fn)});
  }

  void ScheduleAfter(Nanos delay, Handler fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs events until the queue drains or simulated time exceeds `until`.
  void RunUntil(Nanos until) {
    while (!heap_.empty() && heap_.top().time <= until) {
      // Moving out of a priority_queue top requires a const_cast; the element
      // is popped immediately after, so this is safe.
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      now_ = ev.time;
      ev.fn();
      ++executed_;
    }
    if (now_ < until) {
      now_ = until;
    }
  }

  // Runs until the event queue is completely drained.
  void RunToCompletion() {
    while (!heap_.empty()) {
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      now_ = ev.time;
      ev.fn();
      ++executed_;
    }
  }

  uint64_t executed_events() const { return executed_; }
  size_t pending_events() const { return heap_.size(); }

 private:
  struct Event {
    Nanos time;
    uint64_t seq;  // tie-breaker: FIFO among simultaneous events
    Handler fn;

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_EVENT_QUEUE_H_
