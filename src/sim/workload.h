// Workload specifications for every paper experiment: the bimodal synthetic
// mixes of Table 3, the TPC-C mix of Table 4, the RocksDB GET/SCAN mix
// (§5.4.4), and the 4-phase adaptation workload of §5.5 (Fig 7).
#ifndef PSP_SRC_SIM_WORKLOAD_H_
#define PSP_SRC_SIM_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/distributions.h"
#include "src/common/time.h"
#include "src/core/request.h"
#include "src/core/request.h"

namespace psp {

enum class ServiceShape { kFixed, kExponential, kLognormal };

struct WorkloadType {
  TypeId wire_id = 0;          // value carried in the request header
  std::string name;
  double mean_us = 0;          // mean service time
  double ratio = 0;            // occurrence ratio (normalised per phase)
  ServiceShape shape = ServiceShape::kFixed;
  double lognormal_sigma = 1.0;  // only for kLognormal
};

struct WorkloadPhase {
  Nanos duration = 0;               // 0 on the last phase = until sim end
  std::vector<WorkloadType> types;  // the phase's mix
  double load_scale = 1.0;          // multiplies the experiment's base rate
};

struct WorkloadSpec {
  std::string name;
  std::vector<WorkloadPhase> phases;

  const std::vector<WorkloadType>& types() const {
    return phases.front().types;
  }

  // Mean service time of phase 0 in nanos (Σ S_i·R_i).
  double MeanServiceNanos() const;

  // Offered load (requests/sec) that saturates `workers` cores at 100%
  // utilisation for phase 0: workers / mean service time.
  double PeakLoadRps(uint32_t workers) const;

  // The union of all type wire ids across phases (stable order of first
  // appearance) — what a server must register.
  std::vector<WorkloadType> AllTypes() const;
};

// Table 3, "High Bimodal": 50% × 1 µs, 50% × 100 µs (100× dispersion).
WorkloadSpec HighBimodal();

// Table 3, "Extreme Bimodal": 99.5% × 0.5 µs, 0.5% × 500 µs (1000×).
WorkloadSpec ExtremeBimodal();

// Table 4, TPC-C transaction mix (5 types, 17.5× dispersion).
WorkloadSpec TpccMix();

// §5.4.4 RocksDB service: 50% GET (1.5 µs), 50% SCAN (635 µs), 420×.
WorkloadSpec RocksDbMix();

// A Facebook-USR-style cache mix (the paper's §5.1 cites Atikoglu et al. as
// the "majority of short requests with a small amount of very long requests"
// archetype): 97% tiny GETs, 2.5% mid-size multigets, 0.5% large range reads.
WorkloadSpec FacebookUsrLike();

// §5.5 / Fig 7: four 5-second phases over two types A and B.
//   P1: A long (100 µs) 50%, B short (1 µs) 50%
//   P2: service times swapped (misclassification stress)
//   P3: ratio change: A 1 µs @ 94%, B 100 µs @ 6% (A's demand fraction
//       rises to 2/14 cores; rate scaled to hold 80% utilisation)
//   P4: A only (B demand drains to zero; spillway must serve stragglers)
WorkloadSpec FourPhaseAdaptation(Nanos phase_duration = 5 * kSecond);

// One recorded arrival for trace-driven replay (see src/sim/trace.h for the
// CSV loader). Defined here so the engine can hold traces by value.
struct TraceEntry {
  Nanos send_time = 0;
  TypeId wire_type = 0;
  Nanos service = 0;
};

// Builds the per-phase sampler: mixture over the phase's types.
class PhaseSampler {
 public:
  explicit PhaseSampler(const WorkloadPhase& phase);

  // Draws a type slot + service time. `slot` indexes phase.types.
  MixtureDraw Sample(Rng& rng) const { return mixture_->SampleDraw(rng); }
  const WorkloadType& type(uint32_t slot) const { return phase_->types[slot]; }

 private:
  const WorkloadPhase* phase_;
  std::shared_ptr<const DiscreteMixture> mixture_;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_WORKLOAD_H_
