#include "src/sim/workload.h"

#include <stdexcept>

namespace psp {

double WorkloadSpec::MeanServiceNanos() const {
  double total_ratio = 0;
  double weighted = 0;
  for (const auto& t : types()) {
    total_ratio += t.ratio;
    weighted += t.ratio * t.mean_us * 1e3;
  }
  return total_ratio > 0 ? weighted / total_ratio : 0;
}

double WorkloadSpec::PeakLoadRps(uint32_t workers) const {
  const double mean = MeanServiceNanos();
  return mean > 0 ? static_cast<double>(workers) * 1e9 / mean : 0;
}

std::vector<WorkloadType> WorkloadSpec::AllTypes() const {
  std::vector<WorkloadType> out;
  for (const auto& phase : phases) {
    for (const auto& t : phase.types) {
      bool seen = false;
      for (const auto& existing : out) {
        if (existing.wire_id == t.wire_id) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        out.push_back(t);
      }
    }
  }
  return out;
}

WorkloadSpec HighBimodal() {
  WorkloadSpec w;
  w.name = "high-bimodal";
  w.phases.push_back(WorkloadPhase{
      0,
      {WorkloadType{1, "SHORT", 1.0, 0.50},
       WorkloadType{2, "LONG", 100.0, 0.50}},
      1.0});
  return w;
}

WorkloadSpec ExtremeBimodal() {
  WorkloadSpec w;
  w.name = "extreme-bimodal";
  w.phases.push_back(WorkloadPhase{
      0,
      {WorkloadType{1, "SHORT", 0.5, 0.995},
       WorkloadType{2, "LONG", 500.0, 0.005}},
      1.0});
  return w;
}

WorkloadSpec TpccMix() {
  WorkloadSpec w;
  w.name = "tpc-c";
  w.phases.push_back(WorkloadPhase{
      0,
      {WorkloadType{1, "Payment", 5.7, 0.44},
       WorkloadType{2, "OrderStatus", 6.0, 0.04},
       WorkloadType{3, "NewOrder", 20.0, 0.44},
       WorkloadType{4, "Delivery", 88.0, 0.04},
       WorkloadType{5, "StockLevel", 100.0, 0.04}},
      1.0});
  return w;
}

WorkloadSpec RocksDbMix() {
  WorkloadSpec w;
  w.name = "rocksdb";
  w.phases.push_back(WorkloadPhase{
      0,
      {WorkloadType{1, "GET", 1.5, 0.50},
       WorkloadType{2, "SCAN", 635.0, 0.50}},
      1.0});
  return w;
}

WorkloadSpec FacebookUsrLike() {
  WorkloadSpec w;
  w.name = "fb-usr-like";
  w.phases.push_back(WorkloadPhase{
      0,
      {WorkloadType{1, "GET", 2.0, 0.97},
       WorkloadType{2, "MULTIGET", 40.0, 0.025},
       WorkloadType{3, "RANGE", 800.0, 0.005}},
      1.0});
  return w;
}

WorkloadSpec FourPhaseAdaptation(Nanos phase_duration) {
  WorkloadSpec w;
  w.name = "four-phase";
  // Type ids stay stable across phases: A=1, B=2.
  w.phases.push_back(WorkloadPhase{
      phase_duration,
      {WorkloadType{1, "A", 100.0, 0.50}, WorkloadType{2, "B", 1.0, 0.50}},
      1.0});
  w.phases.push_back(WorkloadPhase{
      phase_duration,
      {WorkloadType{1, "A", 1.0, 0.50}, WorkloadType{2, "B", 100.0, 0.50}},
      1.0});
  // Phase 3 changes the ratios: A now makes up 94% of the mix, lifting its
  // CPU-demand fraction to 2/14 so DARC re-reserves it 2 cores (paper:
  // "their CPU demand increases and DARC reserves them 2 cores"). The
  // load_scale keeps the server at the same utilisation despite the lighter
  // mean service time ("For this new composition, 80% utilization on the
  // server results in increased throughput").
  const double phase1_mean = 0.5 * 100.0 + 0.5 * 1.0;   // 50.5 us
  const double phase3_mean = 0.94 * 1.0 + 0.06 * 100.0;  // 6.94 us
  w.phases.push_back(WorkloadPhase{
      phase_duration,
      {WorkloadType{1, "A", 1.0, 0.94}, WorkloadType{2, "B", 100.0, 0.06}},
      phase1_mean / phase3_mean});
  // Phase 4: A only. The sending rate stays at phase 3's level; pending B
  // requests drain via the spillway while A may run on every core.
  w.phases.push_back(WorkloadPhase{
      phase_duration,
      {WorkloadType{1, "A", 1.0, 1.0}},
      phase1_mean / phase3_mean});
  return w;
}

PhaseSampler::PhaseSampler(const WorkloadPhase& phase) : phase_(&phase) {
  std::vector<DiscreteMixture::Component> components;
  components.reserve(phase.types.size());
  for (const auto& t : phase.types) {
    std::shared_ptr<const Distribution> dist;
    switch (t.shape) {
      case ServiceShape::kFixed:
        dist = std::make_shared<FixedDistribution>(FromMicros(t.mean_us));
        break;
      case ServiceShape::kExponential:
        dist = std::make_shared<ExponentialDistribution>(t.mean_us * 1e3);
        break;
      case ServiceShape::kLognormal:
        dist = std::make_shared<LognormalDistribution>(t.mean_us * 1e3,
                                                       t.lognormal_sigma);
        break;
    }
    components.push_back(DiscreteMixture::Component{t.ratio, std::move(dist)});
  }
  if (components.empty()) {
    throw std::invalid_argument("phase has no types");
  }
  mixture_ = std::make_shared<DiscreteMixture>(std::move(components));
}

}  // namespace psp
