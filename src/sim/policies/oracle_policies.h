// Reference policies from the paper's comparison table (Table 5) used by the
// policy-taxonomy bench and ablations:
//   * SJF  — non-preemptive Shortest Job First over a central queue, with an
//     oracle that knows each request's true service demand;
//   * EDF  — Earliest Deadline First with per-request deadlines derived from
//     a slowdown SLO (deadline = send + slo × service);
//   * SP   — Static Partitioning: each type owns a fixed worker share, no
//     stealing, no work conservation across partitions.
// CSCQ (Cycle Stealing with Central Queue) is expressible as DARC-static via
// PersephonePolicy (see DESIGN.md).
#ifndef PSP_SRC_SIM_POLICIES_ORACLE_POLICIES_H_
#define PSP_SRC_SIM_POLICIES_ORACLE_POLICIES_H_

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <vector>

#include "src/sim/cluster.h"

namespace psp {

// Non-preemptive SJF with oracle service times.
class ShortestJobFirstPolicy final : public SchedulingPolicy {
 public:
  explicit ShortestJobFirstPolicy(size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  void Attach(ClusterEngine* engine) override {
    SchedulingPolicy::Attach(engine);
    bank_.Init(engine, [this](uint32_t worker) { OnWorkerIdle(worker); });
  }

  void OnArrival(SimRequest* request) override {
    if (bank_.HasIdle()) {
      bank_.Run(bank_.PopIdle(), request);
      return;
    }
    if (heap_.size() >= capacity_) {
      engine_->DropRequest(request);
      return;
    }
    heap_.push(request);
  }

  std::string Name() const override { return "sjf"; }

 private:
  struct Longer {
    bool operator()(const SimRequest* a, const SimRequest* b) const {
      if (a->service != b->service) {
        return a->service > b->service;
      }
      return a->send_time > b->send_time;  // FIFO tie-break
    }
  };

  void OnWorkerIdle(uint32_t worker) {
    if (heap_.empty()) {
      return;
    }
    SimRequest* next = heap_.top();
    heap_.pop();
    bank_.ClaimIdle(worker);
    bank_.Run(worker, next);
  }

  size_t capacity_;
  std::priority_queue<SimRequest*, std::vector<SimRequest*>, Longer> heap_;
  WorkerBank bank_;
};

// Non-preemptive EDF; deadline = send_time + slo_slowdown × service.
class EarliestDeadlineFirstPolicy final : public SchedulingPolicy {
 public:
  explicit EarliestDeadlineFirstPolicy(double slo_slowdown = 10.0,
                                       size_t capacity = 1 << 20)
      : slo_(slo_slowdown), capacity_(capacity) {}

  void Attach(ClusterEngine* engine) override {
    SchedulingPolicy::Attach(engine);
    bank_.Init(engine, [this](uint32_t worker) { OnWorkerIdle(worker); });
  }

  void OnArrival(SimRequest* request) override {
    if (bank_.HasIdle()) {
      bank_.Run(bank_.PopIdle(), request);
      return;
    }
    if (heap_.size() >= capacity_) {
      engine_->DropRequest(request);
      return;
    }
    heap_.push(Entry{Deadline(request), request});
  }

  std::string Name() const override { return "edf"; }

 private:
  struct Entry {
    Nanos deadline;
    SimRequest* request;
    bool operator>(const Entry& other) const {
      return deadline > other.deadline;
    }
  };

  Nanos Deadline(const SimRequest* r) const {
    return r->send_time +
           static_cast<Nanos>(slo_ * static_cast<double>(r->service));
  }

  void OnWorkerIdle(uint32_t worker) {
    if (heap_.empty()) {
      return;
    }
    SimRequest* next = heap_.top().request;
    heap_.pop();
    bank_.ClaimIdle(worker);
    bank_.Run(worker, next);
  }

  double slo_;
  size_t capacity_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  WorkerBank bank_;
};

// Static Partitioning: worker shares proportional to each type's CPU demand
// (computed from the workload spec), hard walls between partitions.
class StaticPartitionPolicy final : public SchedulingPolicy {
 public:
  explicit StaticPartitionPolicy(size_t per_type_capacity = 1 << 16)
      : capacity_(per_type_capacity) {}

  void Attach(ClusterEngine* engine) override;
  void OnArrival(SimRequest* request) override;

  std::string Name() const override { return "static-partition"; }

 private:
  struct Partition {
    std::vector<uint32_t> workers;
    std::vector<uint32_t> idle;
    std::deque<SimRequest*> queue;
  };

  void RunOn(Partition& p, uint32_t worker, SimRequest* request);

  size_t capacity_;
  std::map<TypeId, size_t> partition_of_;
  std::vector<Partition> partitions_;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_POLICIES_ORACLE_POLICIES_H_
