// Elastic DARC (§6, "DARC in the datacenter ecosystem"): DARC cooperating
// with a core allocator that grants and revokes cores as load changes. A
// simple utilisation-band allocator samples the busy fraction of the active
// worker pool on a fixed period and calls DarcScheduler::ResizeWorkers —
// reservations are re-derived on every allocation event, and DARC keeps
// prioritising short requests throughout.
#ifndef PSP_SRC_SIM_POLICIES_ELASTIC_H_
#define PSP_SRC_SIM_POLICIES_ELASTIC_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/core/scheduler.h"
#include "src/sim/cluster.h"

namespace psp {

struct ElasticOptions {
  SchedulerConfig scheduler;          // mode must be kDarc / kDarcStatic
  uint32_t min_workers = 2;
  uint32_t initial_workers = 2;       // engine num_workers is the maximum
  Nanos allocation_period = 10 * kMillisecond;
  // Grow when the queued backlog exceeds this many core-periods of work.
  // (Raw busy fraction is the wrong growth signal under DARC: its reserved
  // idle cores cap measured utilisation below 1.0 by design.)
  double grow_backlog_cores = 0.25;
  double shrink_below = 0.50;         // busy fraction that triggers -1 core
};

class ElasticDarcPolicy final : public SchedulingPolicy {
 public:
  explicit ElasticDarcPolicy(ElasticOptions options)
      : options_(std::move(options)) {}

  void Attach(ClusterEngine* engine) override {
    SchedulingPolicy::Attach(engine);
    max_workers_ = engine->num_workers();
    active_workers_ = std::min(
        std::max(options_.initial_workers, options_.min_workers),
        max_workers_);
    SchedulerConfig config = options_.scheduler;
    config.num_workers = active_workers_;
    scheduler_ = std::make_unique<DarcScheduler>(config);
    for (const auto& t : engine->workload().AllTypes()) {
      scheduler_->RegisterType(t.wire_id, t.name, FromMicros(t.mean_us),
                               t.ratio);
    }
    scheduler_->ActivateSeededReservation();
    engine->sim().ScheduleAfter(options_.allocation_period,
                                [this] { AllocatorTick(); });
  }

  void OnArrival(SimRequest* request) override {
    const Nanos now = engine_->Now();
    Request r;
    r.id = next_id_++;
    r.type = scheduler_->ResolveType(request->wire_type);
    r.arrival = now;
    r.service_demand = request->service;
    r.payload = request;
    if (!scheduler_->Enqueue(r, now)) {
      engine_->DropRequest(request);
      return;
    }
    Pump();
  }

  std::string Name() const override { return "elastic-darc"; }

  uint32_t active_workers() const { return active_workers_; }
  const std::vector<std::pair<Nanos, uint32_t>>& allocation_log() const {
    return allocation_log_;
  }
  DarcScheduler& scheduler() { return *scheduler_; }

 private:
  void Pump() {
    const Nanos now = engine_->Now();
    while (auto a = scheduler_->NextAssignment(now)) {
      auto* sim_request = static_cast<SimRequest*>(a->request.payload);
      const WorkerId worker = a->worker;
      const TypeIndex type = a->request.type;
      engine_->NoteServiceStart(sim_request, worker);
      busy_accum_ += sim_request->service;
      ++outstanding_;
      engine_->sim().ScheduleAfter(
          sim_request->service, [this, worker, type, sim_request] {
            const Nanos service = sim_request->service;
            engine_->CompleteRequest(sim_request);
            scheduler_->OnCompletion(worker, type, service, engine_->Now());
            --outstanding_;
            Pump();
          });
    }
  }

  bool WorkRemains() const {
    if (outstanding_ > 0) {
      return true;
    }
    for (TypeIndex t = 0; t < scheduler_->num_types(); ++t) {
      if (scheduler_->queue_depth(t) > 0) {
        return true;
      }
    }
    return false;
  }

  void AllocatorTick() {
    const double capacity = static_cast<double>(active_workers_) *
                            static_cast<double>(options_.allocation_period);
    const double busy_fraction =
        capacity > 0 ? static_cast<double>(busy_accum_) / capacity : 0;
    busy_accum_ = 0;

    // Backlog in core-periods: queued work that this period's capacity did
    // not absorb.
    double backlog = 0;
    for (TypeIndex t = 0; t < scheduler_->num_types(); ++t) {
      backlog += static_cast<double>(scheduler_->queue_depth(t)) *
                 static_cast<double>(scheduler_->profiler().MeanServiceTime(t));
    }
    const double backlog_cores =
        backlog / static_cast<double>(options_.allocation_period);

    if (std::getenv("PSP_ELASTIC_DEBUG") != nullptr) {
      std::fprintf(stderr, "tick t=%lldms busy=%.3f backlog=%.3f active=%u\n",
                   static_cast<long long>(engine_->Now() / kMillisecond),
                   busy_fraction, backlog_cores, active_workers_);
    }
    uint32_t target = active_workers_;
    if (backlog_cores > options_.grow_backlog_cores &&
        active_workers_ < max_workers_) {
      ++target;
    } else if (busy_fraction < options_.shrink_below &&
               backlog_cores == 0 && active_workers_ > options_.min_workers) {
      --target;
    }
    if (target != active_workers_) {
      active_workers_ = target;
      scheduler_->ResizeWorkers(target);
      allocation_log_.emplace_back(engine_->Now(), target);
      Pump();  // grown cores can take queued work immediately
    }
    // Stop ticking once the client is done and the system drained; otherwise
    // the periodic event would keep the simulation alive forever.
    if (engine_->Now() >= engine_->config().duration && !WorkRemains()) {
      return;
    }
    engine_->sim().ScheduleAfter(options_.allocation_period,
                                 [this] { AllocatorTick(); });
  }

  ElasticOptions options_;
  std::unique_ptr<DarcScheduler> scheduler_;
  uint32_t max_workers_ = 0;
  uint32_t active_workers_ = 0;
  uint64_t next_id_ = 0;
  uint64_t outstanding_ = 0;  // dispatched, not yet completed
  // Approximation of busy time granted this period (service time of work
  // started; good enough for a band controller).
  Nanos busy_accum_ = 0;
  std::vector<std::pair<Nanos, uint32_t>> allocation_log_;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_POLICIES_ELASTIC_H_
