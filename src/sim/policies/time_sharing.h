// Shinjuku-style preemptive time sharing (§2, §5.1, §6).
//
// A central dispatcher hands requests to workers; a request runs for at most
// one quantum before a user-level interrupt preempts it. Preemption costs:
//   * preempt_delay: time to propagate the preemption event to the worker —
//     the running request keeps making progress during it;
//   * preempt_overhead: time the worker spends performing the preemption —
//     pure loss (the paper measured ≈2 µs per interrupt; its idealised §2
//     simulation uses 1 µs; Fig 10 sweeps 0/1/2/4 µs).
// Two queue disciplines, per the Shinjuku paper: a single queue (preempted
// requests re-enter at the *tail*) and a multi-queue with one queue per type
// selected by a Borrowed-Virtual-Time variant (preempted requests re-enter at
// the *head* of their type's queue).
#ifndef PSP_SRC_SIM_POLICIES_TIME_SHARING_H_
#define PSP_SRC_SIM_POLICIES_TIME_SHARING_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/sim/cluster.h"

namespace psp {

struct TimeSharingOptions {
  Nanos quantum = 5 * kMicrosecond;
  Nanos preempt_overhead = 1 * kMicrosecond;
  Nanos preempt_delay = 0;
  bool multi_queue = false;
  size_t queue_capacity = 1 << 16;  // total queued requests (flow control)
  // Block-triggered preemption — the model of §2/§6: "a preemption event can
  // be triggered as soon as a short request is blocked in the queue by long
  // requests running on workers". When set, requests run to completion unless
  // an arrival with less demand than some running request's remaining time
  // fires a preemption (after preempt_delay, costing preempt_overhead).
  // When clear, classic periodic quanta (the Shinjuku implementation).
  bool trigger_on_block = false;
};

class TimeSharingPolicy final : public SchedulingPolicy {
 public:
  explicit TimeSharingPolicy(TimeSharingOptions options = {})
      : options_(options) {}

  void Attach(ClusterEngine* engine) override;
  void OnArrival(SimRequest* request) override;

  std::string Name() const override {
    return options_.multi_queue ? "shinjuku-mq" : "shinjuku-sq";
  }
  uint64_t preemptions() const override { return preemptions_; }

 private:
  struct WorkerState {
    SimRequest* current = nullptr;
    Nanos slice = 0;        // length of the in-flight slice
    Nanos slice_start = 0;  // when the slice began
    uint64_t epoch = 0;     // invalidates stale slice/preempt events
    bool preempt_pending = false;
  };

  size_t QueueIndexOf(TypeId wire_type);
  bool QueuesEmpty() const { return queued_total_ == 0; }
  SimRequest* Dequeue();
  void Requeue(SimRequest* request);
  void StartOn(uint32_t worker, SimRequest* request);
  void OnSliceEnd(uint32_t worker, uint64_t epoch);
  void PickNext(uint32_t worker);
  void MaybeTriggerPreempt(const SimRequest* blocked);
  void FirePreempt(uint32_t worker, uint64_t epoch);

  TimeSharingOptions options_;
  std::vector<WorkerState> workers_;
  std::vector<uint32_t> idle_;

  // Single-queue mode uses queues_[0]; multi-queue mode maps types to queues.
  std::vector<std::deque<SimRequest*>> queues_;
  std::vector<double> virtual_time_;  // BVT per queue (multi-queue mode)
  std::map<TypeId, size_t> type_to_queue_;
  size_t queued_total_ = 0;
  uint64_t preemptions_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_POLICIES_TIME_SHARING_H_
