// Shenango-style c-FCFS approximation (§5.1): the IOKernel steers packets to
// per-worker queues with RSS; idle workers steal work from victims' queues,
// paying a per-steal coordination cost. This captures how Shenango/ZygOS
// "simulate c-FCFS with per-worker queues and work stealing" (§2).
#ifndef PSP_SRC_SIM_POLICIES_WORK_STEALING_H_
#define PSP_SRC_SIM_POLICIES_WORK_STEALING_H_

#include <deque>
#include <vector>

#include "src/sim/cluster.h"

namespace psp {

struct WorkStealingOptions {
  size_t per_worker_capacity = 1 << 16;
  Nanos steal_cost = 120;  // cross-worker queue coordination per steal
};

class WorkStealingPolicy final : public SchedulingPolicy {
 public:
  explicit WorkStealingPolicy(WorkStealingOptions options = {})
      : options_(options) {}

  void Attach(ClusterEngine* engine) override {
    SchedulingPolicy::Attach(engine);
    queues_.assign(engine->num_workers(), {});
    bank_.Init(engine, [this](uint32_t worker) { OnWorkerIdle(worker); });
  }

  void OnArrival(SimRequest* request) override {
    const uint32_t home = request->flow_hash % engine_->num_workers();
    if (bank_.ClaimIdle(home)) {
      bank_.Run(home, request);
      return;
    }
    // Home worker busy: any other idle worker picks it up immediately (the
    // steady-state effect of stealing on enqueue/wakeup paths).
    if (bank_.HasIdle()) {
      ++steals_;
      bank_.Run(bank_.PopIdle(), request, options_.steal_cost);
      return;
    }
    if (queues_[home].size() >= options_.per_worker_capacity) {
      engine_->DropRequest(request);
      return;
    }
    queues_[home].push_back(request);
  }

  std::string Name() const override { return "shenango-ws"; }
  uint64_t steals() const override { return steals_; }

 private:
  void OnWorkerIdle(uint32_t worker) {
    // Serve own queue first.
    if (!queues_[worker].empty()) {
      SimRequest* next = queues_[worker].front();
      queues_[worker].pop_front();
      bank_.ClaimIdle(worker);
      bank_.Run(worker, next);
      return;
    }
    // Steal from the victim with the longest queue (idealised steal choice).
    uint32_t victim = worker;
    size_t best = 0;
    for (uint32_t w = 0; w < queues_.size(); ++w) {
      if (queues_[w].size() > best) {
        best = queues_[w].size();
        victim = w;
      }
    }
    if (best == 0) {
      return;
    }
    SimRequest* next = queues_[victim].front();
    queues_[victim].pop_front();
    ++steals_;
    bank_.ClaimIdle(worker);
    bank_.Run(worker, next, options_.steal_cost);
  }

  WorkStealingOptions options_;
  std::vector<std::deque<SimRequest*>> queues_;
  WorkerBank bank_;
  uint64_t steals_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_POLICIES_WORK_STEALING_H_
