#include "src/sim/policies/persephone.h"

namespace psp {

void PersephonePolicy::Attach(ClusterEngine* engine) {
  SchedulingPolicy::Attach(engine);
  SchedulerConfig config = options_.scheduler;
  config.num_workers = engine->num_workers();
  scheduler_ = std::make_unique<DarcScheduler>(config);
  scheduler_->AttachTelemetry(&engine->telemetry());
  scheduler_->AttachTimeLedger(engine->time_ledger());
  for (const auto& t : engine->workload().AllTypes()) {
    scheduler_->RegisterType(t.wire_id, t.name, FromMicros(t.mean_us),
                             t.ratio);
  }
  if (options_.seed_profiles) {
    scheduler_->ActivateSeededReservation(engine->Now());
  }
}

std::string PersephonePolicy::Name() const {
  std::string base;
  switch (options_.scheduler.mode) {
    case PolicyMode::kDarc:
      base = "darc";
      break;
    case PolicyMode::kDarcStatic:
      base = "darc-static-" +
             std::to_string(options_.scheduler.static_reserved);
      break;
    case PolicyMode::kCFcfs:
      base = "psp-c-fcfs";
      break;
    case PolicyMode::kFixedPriority:
      base = "fixed-priority";
      break;
    case PolicyMode::kEdf:
      base = "edf";
      break;
    case PolicyMode::kDarcSlack:
      base = "darc-slack";
      break;
  }
  if (options_.random_classifier) {
    base += "-random";
  }
  return base;
}

void PersephonePolicy::OnArrival(SimRequest* request) {
  const Nanos now = engine_->Now();
  Request r;
  r.id = next_request_id_++;
  if (options_.random_classifier) {
    // Broken classifier (Fig 9): uniformly random registered type, skipping
    // the UNKNOWN slot (index 0).
    const auto num_real = static_cast<uint32_t>(scheduler_->num_types() - 1);
    r.type = 1 + static_cast<TypeIndex>(engine_->rng().NextBounded(num_real));
  } else {
    r.type = scheduler_->ResolveType(request->wire_type);
  }
  r.arrival = now;
  r.service_demand = request->service;
  r.payload = request;
  // Deadline stamping at (simulated) ingress: per-type budgets resolved at
  // RegisterType apply relative to policy arrival, mirroring the runtime's
  // IngestPacket. The stamp rides on the SimRequest so the engine can judge
  // misses and sheds at completion/drop time.
  if (const Nanos budget = scheduler_->DeadlineTargetOf(r.type); budget > 0) {
    r.deadline = now + budget;
  }
  request->deadline = r.deadline;
  if (scheduler_->TryEnqueue(r, now) != DarcScheduler::EnqueueResult::kOk) {
    engine_->DropRequest(request);  // flow control (§4.3.3) or admission shed
    return;
  }
  Pump();
}

void PersephonePolicy::Pump() {
  const Nanos now = engine_->Now();
  while (auto assignment = scheduler_->NextAssignment(now)) {
    auto* sim_request = static_cast<SimRequest*>(assignment->request.payload);
    const WorkerId worker = assignment->worker;
    const TypeIndex type = assignment->request.type;
    engine_->NoteServiceStart(sim_request, worker);
    engine_->sim().ScheduleAfter(sim_request->service,
                                 [this, worker, type, sim_request] {
                                   OnWorkerDone(worker, type, sim_request);
                                 });
  }
}

void PersephonePolicy::ExportTelemetry(TelemetrySnapshot* out) const {
  if (scheduler_ != nullptr) {
    scheduler_->ExportTelemetry(out);
  }
}

void PersephonePolicy::SampleTimeSeriesGauges(IntervalRecord* rec) {
  if (scheduler_ == nullptr) {
    return;
  }
  for (TypeIntervalStats& stats : rec->types) {
    const TypeIndex type =
        scheduler_->ResolveType(static_cast<TypeId>(stats.type));
    stats.queue_depth = static_cast<int64_t>(scheduler_->queue_depth(type));
    stats.reserved_workers = scheduler_->reserved_workers_of(type);
  }
}

void PersephonePolicy::OnWorkerDone(WorkerId worker, TypeIndex type,
                                    SimRequest* request) {
  const Nanos service = request->service;
  const Nanos deadline = request->deadline;
  engine_->CompleteRequest(request);
  scheduler_->OnCompletion(worker, type, service, engine_->Now(), deadline);
  Pump();
}

}  // namespace psp
