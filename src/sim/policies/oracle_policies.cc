#include "src/sim/policies/oracle_policies.h"

#include <cmath>

namespace psp {

void StaticPartitionPolicy::Attach(ClusterEngine* engine) {
  SchedulingPolicy::Attach(engine);
  partitions_.clear();
  partition_of_.clear();

  // Worker shares proportional to Eq. 1 demand, largest remainder rounding,
  // minimum one worker per type.
  const auto types = engine->workload().AllTypes();
  const uint32_t num_workers = engine->num_workers();
  double total = 0;
  for (const auto& t : types) {
    total += t.mean_us * t.ratio;
  }
  std::vector<double> exact(types.size(), 0);
  std::vector<uint32_t> grant(types.size(), 1);
  uint32_t granted = static_cast<uint32_t>(types.size());
  for (size_t i = 0; i < types.size(); ++i) {
    exact[i] = total > 0
                   ? types[i].mean_us * types[i].ratio / total * num_workers
                   : static_cast<double>(num_workers) / types.size();
    const auto extra = static_cast<uint32_t>(std::floor(exact[i]));
    const uint32_t add = extra > 1 ? extra - 1 : 0;
    grant[i] += add;
    granted += add;
  }
  while (granted < num_workers) {
    // Hand leftovers to the largest fractional remainder.
    size_t best = 0;
    double best_frac = -1;
    for (size_t i = 0; i < types.size(); ++i) {
      const double frac = exact[i] - static_cast<double>(grant[i]);
      if (frac > best_frac) {
        best_frac = frac;
        best = i;
      }
    }
    ++grant[best];
    ++granted;
  }
  while (granted > num_workers) {
    // Take back from the most over-granted partition (keep minimum 1).
    size_t best = 0;
    double best_over = -1e18;
    for (size_t i = 0; i < types.size(); ++i) {
      if (grant[i] <= 1) {
        continue;
      }
      const double over = static_cast<double>(grant[i]) - exact[i];
      if (over > best_over) {
        best_over = over;
        best = i;
      }
    }
    --grant[best];
    --granted;
  }

  uint32_t next_worker = 0;
  for (size_t i = 0; i < types.size(); ++i) {
    Partition p;
    for (uint32_t j = 0; j < grant[i] && next_worker < num_workers; ++j) {
      p.workers.push_back(next_worker);
      p.idle.push_back(next_worker);
      ++next_worker;
    }
    partition_of_[types[i].wire_id] = partitions_.size();
    partitions_.push_back(std::move(p));
  }
}

void StaticPartitionPolicy::OnArrival(SimRequest* request) {
  const auto it = partition_of_.find(request->wire_type);
  if (it == partition_of_.end()) {
    engine_->DropRequest(request);
    return;
  }
  Partition& p = partitions_[it->second];
  if (!p.idle.empty()) {
    const uint32_t worker = p.idle.back();
    p.idle.pop_back();
    RunOn(p, worker, request);
    return;
  }
  if (p.queue.size() >= capacity_) {
    engine_->DropRequest(request);
    return;
  }
  p.queue.push_back(request);
}

void StaticPartitionPolicy::RunOn(Partition& p, uint32_t worker,
                                  SimRequest* request) {
  engine_->sim().ScheduleAfter(request->service, [this, &p, worker, request] {
    engine_->CompleteRequest(request);
    if (!p.queue.empty()) {
      SimRequest* next = p.queue.front();
      p.queue.pop_front();
      RunOn(p, worker, next);
    } else {
      p.idle.push_back(worker);
    }
  });
}

}  // namespace psp
