// Centralized first-come-first-served (Table 1): a single queue feeding idle
// workers. The idealised form of ZygOS/Shenango-style scheduling; work
// conserving, type-blind, non-preemptive.
#ifndef PSP_SRC_SIM_POLICIES_C_FCFS_H_
#define PSP_SRC_SIM_POLICIES_C_FCFS_H_

#include <deque>

#include "src/sim/cluster.h"

namespace psp {

class CentralFcfsPolicy final : public SchedulingPolicy {
 public:
  explicit CentralFcfsPolicy(size_t queue_capacity = 1 << 20)
      : capacity_(queue_capacity) {}

  void Attach(ClusterEngine* engine) override {
    SchedulingPolicy::Attach(engine);
    bank_.Init(engine, [this](uint32_t worker) { OnWorkerIdle(worker); });
  }

  void OnArrival(SimRequest* request) override {
    if (bank_.HasIdle()) {
      bank_.Run(bank_.PopIdle(), request);
      return;
    }
    if (queue_.size() >= capacity_) {
      engine_->DropRequest(request);
      return;
    }
    queue_.push_back(request);
  }

  std::string Name() const override { return "c-FCFS"; }

 private:
  void OnWorkerIdle(uint32_t worker) {
    if (queue_.empty()) {
      return;
    }
    SimRequest* next = queue_.front();
    queue_.pop_front();
    const bool claimed = bank_.ClaimIdle(worker);
    (void)claimed;
    bank_.Run(worker, next);
  }

  size_t capacity_;
  std::deque<SimRequest*> queue_;
  WorkerBank bank_;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_POLICIES_C_FCFS_H_
