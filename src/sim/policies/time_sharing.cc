#include "src/sim/policies/time_sharing.h"

#include <algorithm>

namespace psp {

void TimeSharingPolicy::Attach(ClusterEngine* engine) {
  SchedulingPolicy::Attach(engine);
  workers_.assign(engine->num_workers(), {});
  idle_.clear();
  for (uint32_t w = 0; w < engine->num_workers(); ++w) {
    idle_.push_back(w);
  }
  queues_.clear();
  virtual_time_.clear();
  type_to_queue_.clear();
  if (!options_.multi_queue) {
    queues_.emplace_back();
    virtual_time_.push_back(0);
  }
}

size_t TimeSharingPolicy::QueueIndexOf(TypeId wire_type) {
  if (!options_.multi_queue) {
    return 0;
  }
  const auto it = type_to_queue_.find(wire_type);
  if (it != type_to_queue_.end()) {
    return it->second;
  }
  const size_t idx = queues_.size();
  type_to_queue_[wire_type] = idx;
  queues_.emplace_back();
  // New queues start at the minimum live virtual time ("borrowing"), so a
  // late-arriving type is not starved nor unfairly boosted.
  double min_vt = 0;
  bool found = false;
  for (const double vt : virtual_time_) {
    if (!found || vt < min_vt) {
      min_vt = vt;
      found = true;
    }
  }
  virtual_time_.push_back(found ? min_vt : 0);
  return idx;
}

SimRequest* TimeSharingPolicy::Dequeue() {
  if (queued_total_ == 0) {
    return nullptr;
  }
  size_t best = SIZE_MAX;
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].empty()) {
      continue;
    }
    if (best == SIZE_MAX || virtual_time_[i] < virtual_time_[best]) {
      best = i;
    }
  }
  SimRequest* req = queues_[best].front();
  queues_[best].pop_front();
  --queued_total_;
  return req;
}

void TimeSharingPolicy::Requeue(SimRequest* request) {
  const size_t qi = QueueIndexOf(request->wire_type);
  if (options_.multi_queue) {
    // Preempted requests re-enter at the head of their typed queue.
    queues_[qi].push_front(request);
  } else {
    // Single-queue Shinjuku re-enqueues at the tail.
    queues_[qi].push_back(request);
  }
  ++queued_total_;
}

void TimeSharingPolicy::OnArrival(SimRequest* request) {
  if (!idle_.empty()) {
    const uint32_t worker = idle_.back();
    idle_.pop_back();
    StartOn(worker, request);
    return;
  }
  if (queued_total_ >= options_.queue_capacity) {
    engine_->DropRequest(request);
    return;
  }
  queues_[QueueIndexOf(request->wire_type)].push_back(request);
  ++queued_total_;
  if (options_.trigger_on_block) {
    MaybeTriggerPreempt(request);
  }
}

void TimeSharingPolicy::StartOn(uint32_t worker, SimRequest* request) {
  WorkerState& state = workers_[worker];
  // In trigger mode a request runs to completion unless preempted; in quantum
  // mode the interrupt lands quantum + delay after the slice starts.
  const Nanos slice =
      options_.trigger_on_block
          ? request->remaining
          : std::min(request->remaining,
                     options_.quantum + options_.preempt_delay);
  if (request->service_start == 0) {
    // First slice only: preempted requests keep their original start stamp.
    engine_->NoteServiceStart(request, worker);
  }
  state.current = request;
  state.slice = slice;
  state.slice_start = engine_->Now();
  state.preempt_pending = false;
  const uint64_t epoch = ++state.epoch;
  engine_->sim().ScheduleAfter(
      slice, [this, worker, epoch] { OnSliceEnd(worker, epoch); });
}

void TimeSharingPolicy::OnSliceEnd(uint32_t worker, uint64_t epoch) {
  WorkerState& state = workers_[worker];
  if (epoch != state.epoch) {
    return;  // preempted mid-slice: stale event
  }
  SimRequest* req = state.current;
  req->remaining -= state.slice;
  virtual_time_[QueueIndexOf(req->wire_type)] +=
      static_cast<double>(state.slice);
  state.current = nullptr;

  if (req->remaining <= 0) {
    engine_->CompleteRequest(req);
    PickNext(worker);
    return;
  }
  if (QueuesEmpty()) {
    // Nothing waiting: keep running the same request, no preemption charged.
    StartOn(worker, req);
    return;
  }
  // Quantum expiry with waiters: preempt, pay the overhead, switch.
  ++preemptions_;
  Requeue(req);
  engine_->sim().ScheduleAfter(options_.preempt_overhead,
                               [this, worker] { PickNext(worker); });
}

void TimeSharingPolicy::MaybeTriggerPreempt(const SimRequest* blocked) {
  // Pick the busy worker with the most remaining work; preempt it only if the
  // blocked request is meaningfully shorter than what remains there.
  uint32_t victim = UINT32_MAX;
  Nanos worst_remaining = 0;
  const Nanos now = engine_->Now();
  for (uint32_t w = 0; w < workers_.size(); ++w) {
    const WorkerState& state = workers_[w];
    if (state.current == nullptr || state.preempt_pending) {
      continue;
    }
    const Nanos progressed = now - state.slice_start;
    if (progressed + options_.preempt_delay < options_.quantum) {
      continue;  // "preempting as often as every 5 µs": respect the quantum
    }
    const Nanos remaining = state.current->remaining - progressed;
    if (remaining > worst_remaining) {
      worst_remaining = remaining;
      victim = w;
    }
  }
  if (victim == UINT32_MAX ||
      worst_remaining <= blocked->remaining + options_.preempt_overhead) {
    return;  // preempting would not help the blocked request
  }
  WorkerState& state = workers_[victim];
  state.preempt_pending = true;
  const uint64_t epoch = state.epoch;
  engine_->sim().ScheduleAfter(
      options_.preempt_delay,
      [this, victim, epoch] { FirePreempt(victim, epoch); });
}

void TimeSharingPolicy::FirePreempt(uint32_t worker, uint64_t epoch) {
  WorkerState& state = workers_[worker];
  if (epoch != state.epoch || state.current == nullptr) {
    return;  // the victim finished (or changed) before the interrupt landed
  }
  SimRequest* req = state.current;
  const Nanos progressed = engine_->Now() - state.slice_start;
  req->remaining -= progressed;
  virtual_time_[QueueIndexOf(req->wire_type)] +=
      static_cast<double>(progressed);
  ++state.epoch;  // invalidate the scheduled completion
  state.current = nullptr;
  state.preempt_pending = false;

  ++preemptions_;
  if (req->remaining <= 0) {
    engine_->CompleteRequest(req);
  } else {
    Requeue(req);
  }
  engine_->sim().ScheduleAfter(options_.preempt_overhead,
                               [this, worker] { PickNext(worker); });
}

void TimeSharingPolicy::PickNext(uint32_t worker) {
  SimRequest* next = Dequeue();
  if (next == nullptr) {
    idle_.push_back(worker);
    return;
  }
  StartOn(worker, next);
}

}  // namespace psp
