// Perséphone inside the simulated testbed: plugs the *actual* core
// DarcScheduler (Algorithms 1 & 2, profiling windows, flow control) into the
// cluster model. The same core code also runs in the threaded runtime.
//
// Policy modes (SchedulerConfig::mode) cover DARC, DARC-static (§5.3),
// c-FCFS-in-Perséphone and Fixed Priority (Fig 3/4 variants).
#ifndef PSP_SRC_SIM_POLICIES_PERSEPHONE_H_
#define PSP_SRC_SIM_POLICIES_PERSEPHONE_H_

#include <memory>
#include <string>

#include "src/core/scheduler.h"
#include "src/sim/cluster.h"

namespace psp {

struct PersephoneOptions {
  SchedulerConfig scheduler;  // num_workers is overwritten from the engine
  // Seed per-type profiles from the workload spec and start with the
  // steady-state reservation (skips the c-FCFS bootstrap window). Turn off
  // for adaptation experiments (Fig 7) and the bootstrap path itself.
  bool seed_profiles = true;
  // Use a broken classifier that assigns each request a uniformly random type
  // (Fig 9). The scheduler still runs DARC over the misclassified queues.
  bool random_classifier = false;
};

class PersephonePolicy final : public SchedulingPolicy {
 public:
  explicit PersephonePolicy(PersephoneOptions options = {})
      : options_(std::move(options)) {}

  void Attach(ClusterEngine* engine) override;
  void OnArrival(SimRequest* request) override;

  std::string Name() const override;

  // Publishes the embedded DarcScheduler's counters, reservation gauges and
  // per-type queue state into the unified snapshot.
  void ExportTelemetry(TelemetrySnapshot* out) const override;

  // Stamps per-type queue depths and reserved shares into a closing
  // time-series interval (entries are keyed by wire id; resolved through the
  // scheduler's registry).
  void SampleTimeSeriesGauges(IntervalRecord* rec) override;

  DarcScheduler& scheduler() { return *scheduler_; }
  const DarcScheduler& scheduler() const { return *scheduler_; }

 private:
  void Pump();
  void OnWorkerDone(WorkerId worker, TypeIndex type, SimRequest* request);

  PersephoneOptions options_;
  std::unique_ptr<DarcScheduler> scheduler_;
  uint64_t next_request_id_ = 0;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_POLICIES_PERSEPHONE_H_
