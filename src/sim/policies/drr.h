// Deficit (Weighted) Round Robin over typed queues — the Table 5 reference
// policy for "request flows with fairness requirements". Non-preemptive:
// each non-empty typed queue accumulates `quantum × weight` of deficit per
// round and may dispatch requests while its deficit covers their (true)
// service demand.
#ifndef PSP_SRC_SIM_POLICIES_DRR_H_
#define PSP_SRC_SIM_POLICIES_DRR_H_

#include <deque>
#include <map>
#include <vector>

#include "src/sim/cluster.h"

namespace psp {

struct DrrOptions {
  Nanos quantum = 10 * kMicrosecond;   // deficit added per visit
  size_t queue_capacity = 1 << 16;     // per-type bound
};

class DeficitRoundRobinPolicy final : public SchedulingPolicy {
 public:
  explicit DeficitRoundRobinPolicy(DrrOptions options = {})
      : options_(options) {}

  void Attach(ClusterEngine* engine) override {
    SchedulingPolicy::Attach(engine);
    bank_.Init(engine, [this](uint32_t worker) { OnWorkerIdle(worker); });
  }

  void OnArrival(SimRequest* request) override {
    Flow& flow = FlowFor(request->wire_type);
    if (flow.queue.size() >= options_.queue_capacity) {
      engine_->DropRequest(request);
      return;
    }
    flow.queue.push_back(request);
    PumpIdleWorkers();
  }

  std::string Name() const override { return "drr"; }

 private:
  struct Flow {
    std::deque<SimRequest*> queue;
    Nanos deficit = 0;
  };

  Flow& FlowFor(TypeId wire_type) {
    const auto it = flow_index_.find(wire_type);
    if (it != flow_index_.end()) {
      return flows_[it->second];
    }
    flow_index_[wire_type] = flows_.size();
    flows_.emplace_back();
    return flows_.back();
  }

  // Selects the next dispatchable request under DRR accounting, or nullptr.
  SimRequest* SelectNext() {
    if (flows_.empty()) {
      return nullptr;
    }
    // Visit each flow at most twice (once to top up deficit, once after a
    // full wrap) to guarantee progress without unbounded deficit growth.
    for (size_t visited = 0; visited < 2 * flows_.size(); ++visited) {
      Flow& flow = flows_[cursor_];
      if (flow.queue.empty()) {
        flow.deficit = 0;  // standard DRR: idle flows forfeit their deficit
        cursor_ = (cursor_ + 1) % flows_.size();
        continue;
      }
      SimRequest* head = flow.queue.front();
      if (flow.deficit >= head->service) {
        flow.deficit -= head->service;
        flow.queue.pop_front();
        return head;
      }
      flow.deficit += options_.quantum;
      cursor_ = (cursor_ + 1) % flows_.size();
    }
    // Nothing affordable even after a full top-up round: serve the cheapest
    // head to avoid stalling idle workers (work conservation).
    Flow* best = nullptr;
    for (auto& flow : flows_) {
      if (!flow.queue.empty() &&
          (best == nullptr ||
           flow.queue.front()->service < best->queue.front()->service)) {
        best = &flow;
      }
    }
    if (best == nullptr) {
      return nullptr;
    }
    SimRequest* head = best->queue.front();
    best->queue.pop_front();
    best->deficit = 0;
    return head;
  }

  void PumpIdleWorkers() {
    while (bank_.HasIdle()) {
      SimRequest* next = SelectNext();
      if (next == nullptr) {
        return;
      }
      bank_.Run(bank_.PopIdle(), next);
    }
  }

  void OnWorkerIdle(uint32_t) { PumpIdleWorkers(); }

  DrrOptions options_;
  std::map<TypeId, size_t> flow_index_;
  std::vector<Flow> flows_;
  size_t cursor_ = 0;
  WorkerBank bank_;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_POLICIES_DRR_H_
