// Decentralized first-come-first-served (Table 1): RSS steers each request to
// a per-worker queue; workers serve only their own queue. Models IX/Arrakis
// style dataplanes and Shenango with work stealing disabled (§5.1).
#ifndef PSP_SRC_SIM_POLICIES_D_FCFS_H_
#define PSP_SRC_SIM_POLICIES_D_FCFS_H_

#include <deque>
#include <vector>

#include "src/sim/cluster.h"

namespace psp {

class DecentralizedFcfsPolicy final : public SchedulingPolicy {
 public:
  explicit DecentralizedFcfsPolicy(size_t per_worker_capacity = 1 << 16)
      : capacity_(per_worker_capacity) {}

  void Attach(ClusterEngine* engine) override {
    SchedulingPolicy::Attach(engine);
    queues_.assign(engine->num_workers(), {});
    bank_.Init(engine, [this](uint32_t worker) { OnWorkerIdle(worker); });
  }

  void OnArrival(SimRequest* request) override {
    const uint32_t worker = request->flow_hash % engine_->num_workers();
    if (bank_.ClaimIdle(worker)) {
      bank_.Run(worker, request);
      return;
    }
    if (queues_[worker].size() >= capacity_) {
      engine_->DropRequest(request);
      return;
    }
    queues_[worker].push_back(request);
  }

  std::string Name() const override { return "d-FCFS"; }

 private:
  void OnWorkerIdle(uint32_t worker) {
    if (queues_[worker].empty()) {
      return;
    }
    SimRequest* next = queues_[worker].front();
    queues_[worker].pop_front();
    bank_.ClaimIdle(worker);
    bank_.Run(worker, next);
  }

  size_t capacity_;
  std::vector<std::deque<SimRequest*>> queues_;
  WorkerBank bank_;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_POLICIES_D_FCFS_H_
