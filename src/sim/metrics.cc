#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace psp {
namespace {

const std::string kUnnamed = "?";

}  // namespace

void Metrics::RegisterType(TypeId wire_id, std::string name) {
  if (index_.contains(wire_id)) {
    types_[index_[wire_id]].name = std::move(name);
    return;
  }
  index_[wire_id] = types_.size();
  type_ids_.push_back(wire_id);
  types_.emplace_back();
  types_.back().name = std::move(name);
}

Metrics::PerType& Metrics::SlotFor(TypeId wire_id) {
  auto it = index_.find(wire_id);
  if (it == index_.end()) {
    RegisterType(wire_id, "type-" + std::to_string(wire_id));
    it = index_.find(wire_id);
  }
  return types_[it->second];
}

const Metrics::PerType* Metrics::FindSlot(TypeId wire_id) const {
  const auto it = index_.find(wire_id);
  return it == index_.end() ? nullptr : &types_[it->second];
}

void Metrics::RecordCompletion(TypeId wire_id, Nanos send_time,
                               Nanos receive_time, Nanos service_time,
                               Nanos deadline, Nanos completion_time) {
  if (send_time < warmup_end_) {
    return;
  }
  const Nanos latency = receive_time - send_time;
  PerType& slot = SlotFor(wire_id);
  if (deadline > 0) {
    ++slot.deadline_total;
    ++deadline_total_;
    if (completion_time > deadline) {
      ++slot.deadline_missed;
      ++deadline_missed_;
    }
  }
  slot.latency.Add(latency);
  const int64_t slowdown_milli =
      service_time > 0
          ? static_cast<int64_t>(
                std::llround(static_cast<double>(latency) * kSlowdownScale /
                             static_cast<double>(service_time)))
          : kSlowdownScale;
  slot.slowdown.Add(slowdown_milli);
  overall_slowdown_.Add(slowdown_milli);
  overall_latency_.Add(latency);
  ++total_completions_;

  if (bucket_width_ > 0) {
    slot.buckets[send_time / bucket_width_].push_back(latency);
  }
}

void Metrics::RecordDrop(TypeId wire_id) {
  ++SlotFor(wire_id).drops;
  ++total_drops_;
}

void Metrics::RecordDeadlineShed(TypeId wire_id, Nanos send_time) {
  if (send_time < warmup_end_) {
    return;
  }
  ++SlotFor(wire_id).deadline_shed;
  ++deadline_shed_;
}

double Metrics::OverallSlowdown(double pct) const {
  return static_cast<double>(overall_slowdown_.Percentile(pct)) /
         kSlowdownScale;
}

double Metrics::TypeSlowdown(TypeId wire_id, double pct) const {
  const PerType* slot = FindSlot(wire_id);
  return slot == nullptr ? 0
                         : static_cast<double>(slot->slowdown.Percentile(pct)) /
                               kSlowdownScale;
}

Nanos Metrics::TypeLatency(TypeId wire_id, double pct) const {
  const PerType* slot = FindSlot(wire_id);
  return slot == nullptr ? 0 : slot->latency.Percentile(pct);
}

Nanos Metrics::OverallLatency(double pct) const {
  return overall_latency_.Percentile(pct);
}

double Metrics::TypeMeanLatency(TypeId wire_id) const {
  const PerType* slot = FindSlot(wire_id);
  return slot == nullptr ? 0 : slot->latency.Mean();
}

uint64_t Metrics::TypeCount(TypeId wire_id) const {
  const PerType* slot = FindSlot(wire_id);
  return slot == nullptr ? 0 : slot->latency.Count();
}

uint64_t Metrics::TypeDrops(TypeId wire_id) const {
  const PerType* slot = FindSlot(wire_id);
  return slot == nullptr ? 0 : slot->drops;
}

uint64_t Metrics::TypeDeadlineMisses(TypeId wire_id) const {
  const PerType* slot = FindSlot(wire_id);
  return slot == nullptr ? 0 : slot->deadline_missed;
}

uint64_t Metrics::TypeDeadlineSheds(TypeId wire_id) const {
  const PerType* slot = FindSlot(wire_id);
  return slot == nullptr ? 0 : slot->deadline_shed;
}

const std::string& Metrics::TypeName(TypeId wire_id) const {
  const PerType* slot = FindSlot(wire_id);
  return slot == nullptr ? kUnnamed : slot->name;
}

void Metrics::ExportTelemetry(TelemetrySnapshot* out) const {
  out->counters["engine.completed"] += total_completions_;
  out->counters["engine.dropped"] += total_drops_;
  // Deadline counters only appear once a deadlined request has been seen, so
  // deadline-free runs export byte-identical snapshots to earlier versions.
  if (deadline_total_ + deadline_shed_ > 0) {
    out->counters["engine.deadline_completions"] += deadline_total_;
    out->counters["engine.deadline_missed"] += deadline_missed_;
    out->counters["engine.deadline_shed"] += deadline_shed_;
  }
  out->histograms["engine.latency"].Merge(overall_latency_);
  out->histograms["engine.slowdown_milli"].Merge(overall_slowdown_);
  for (const TypeId wire_id : type_ids_) {
    const PerType& slot = types_[index_.at(wire_id)];
    out->type_names.emplace(wire_id, slot.name);
    const std::string prefix = "engine.type." + slot.name;
    out->counters[prefix + ".completed"] += slot.latency.Count();
    out->counters[prefix + ".dropped"] += slot.drops;
    out->histograms[prefix + ".latency"].Merge(slot.latency);
    out->histograms[prefix + ".slowdown_milli"].Merge(slot.slowdown);
  }
}

std::vector<Metrics::BucketStats> Metrics::TimeSeries(TypeId wire_id,
                                                      double pct) const {
  std::vector<BucketStats> out;
  const PerType* slot = FindSlot(wire_id);
  if (slot == nullptr || bucket_width_ == 0) {
    return out;
  }
  for (const auto& [bucket, samples_const] : slot->buckets) {
    std::vector<Nanos> samples = samples_const;
    std::sort(samples.begin(), samples.end());
    BucketStats stats;
    stats.start = bucket * bucket_width_;
    stats.count = samples.size();
    if (!samples.empty()) {
      const auto rank = [&](double q) {
        const size_t r = static_cast<size_t>(
            std::min<double>(static_cast<double>(samples.size()) - 1,
                             q / 100.0 * static_cast<double>(samples.size())));
        return samples[r];
      };
      stats.p999_latency = rank(pct);
      stats.p50_latency = rank(50.0);
      double sum = 0;
      for (const Nanos v : samples) {
        sum += static_cast<double>(v);
      }
      stats.mean_latency = sum / static_cast<double>(samples.size());
    }
    out.push_back(stats);
  }
  return out;
}

}  // namespace psp
