#include "src/sim/trace.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace psp {

std::optional<std::vector<TraceEntry>> ParseTraceCsv(std::istream& in,
                                                     std::string* error) {
  std::vector<TraceEntry> trace;
  std::string line;
  size_t line_no = 0;
  Nanos prev_time = 0;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + what;
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    double send_us = 0;
    double service_us = 0;
    uint64_t type = 0;
    char comma1 = 0;
    char comma2 = 0;
    if (!(fields >> send_us >> comma1 >> type >> comma2 >> service_us) ||
        comma1 != ',' || comma2 != ',') {
      return fail("expected 'send_us,type,service_us'");
    }
    if (send_us < 0 || service_us <= 0) {
      return fail("times must be positive");
    }
    TraceEntry entry;
    entry.send_time = FromMicros(send_us);
    entry.wire_type = static_cast<TypeId>(type);
    entry.service = FromMicros(service_us);
    if (entry.send_time < prev_time) {
      return fail("send times must be non-decreasing");
    }
    prev_time = entry.send_time;
    trace.push_back(entry);
  }
  return trace;
}

std::optional<std::vector<TraceEntry>> ParseTraceCsvFile(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  return ParseTraceCsv(in, error);
}

void WriteTraceCsv(const std::vector<TraceEntry>& trace, std::ostream& out) {
  // Full double precision so nanosecond-resolution times survive the
  // microsecond CSV representation exactly.
  out << std::setprecision(15);
  out << "# send_us,type,service_us\n";
  for (const auto& entry : trace) {
    out << ToMicros(entry.send_time) << ',' << entry.wire_type << ','
        << ToMicros(entry.service) << '\n';
  }
}

std::vector<TraceEntry> SynthesizeTrace(const WorkloadSpec& workload,
                                        double rate_rps, Nanos duration,
                                        uint64_t seed) {
  std::vector<TraceEntry> trace;
  Rng rng(seed);
  PhaseSampler sampler(workload.phases.front());
  const double gap_mean = 1e9 / rate_rps;
  Nanos t = 0;
  for (;;) {
    double u = rng.NextDouble();
    if (u <= 0.0) {
      u = 1e-18;
    }
    t += static_cast<Nanos>(-gap_mean * std::log(1.0 - u)) + 1;
    if (t >= duration) {
      break;
    }
    const MixtureDraw draw = sampler.Sample(rng);
    TraceEntry entry;
    entry.send_time = t;
    entry.wire_type = workload.phases.front().types[draw.mode].wire_id;
    entry.service = draw.service_time;
    trace.push_back(entry);
  }
  return trace;
}

}  // namespace psp
