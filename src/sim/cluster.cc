#include "src/sim/cluster.h"

#include <cassert>
#include <cmath>

#include "src/introspect/offline.h"
#include "src/sim/trace.h"

namespace psp {

ClusterEngine::ClusterEngine(WorkloadSpec workload, ClusterConfig config,
                             std::unique_ptr<SchedulingPolicy> policy)
    : ClusterEngine(std::move(workload), config, std::move(policy),
                    static_cast<Simulation*>(nullptr)) {}

ClusterEngine::ClusterEngine(WorkloadSpec workload, ClusterConfig config,
                             std::unique_ptr<SchedulingPolicy> policy,
                             Simulation* sim)
    : workload_(std::move(workload)),
      config_(config),
      policy_(std::move(policy)),
      own_sim_(config.engine_backend),
      sim_(sim != nullptr ? sim : &own_sim_),
      external_arrivals_(sim != nullptr),
      rng_(config.seed),
      metrics_(static_cast<Nanos>(config.warmup_fraction *
                                  static_cast<double>(config.duration))),
      telemetry_(std::make_unique<Telemetry>(config.telemetry,
                                             /*num_rings=*/1)),
      trace_sampler_(telemetry_->sample_every()) {
  assert(!workload_.phases.empty());
  // Pre-size the event arena past the usual steady-state pending count
  // (arrival chain + per-worker completions + grid events) so the hot loop
  // never allocates.
  sim_->Reserve(config_.num_workers + 64);
  for (const auto& t : workload_.AllTypes()) {
    metrics_.RegisterType(t.wire_id, t.name);
  }
  if (config_.time_series_bucket > 0) {
    metrics_.EnableTimeSeries(config_.time_series_bucket);
  }
  // Continuous observability: one recorder series per workload type (keyed
  // by wire id — everything the simulator feeds in is virtual time, so the
  // resulting series are bit-deterministic for a fixed seed).
  if (telemetry_->timeseries() != nullptr) {
    for (const auto& t : workload_.AllTypes()) {
      series_slot_by_wire_.emplace(t.wire_id,
                                   telemetry_->RegisterSeries(t.wire_id,
                                                              t.name));
    }
    telemetry_->timeseries()->set_gauge_sampler([this](IntervalRecord* rec) {
      policy_->SampleTimeSeriesGauges(rec);
      SampleWorkerTimeGauges(rec);
    });
    telemetry_->set_flight_snapshot_provider(
        [this] { return telemetry_snapshot(); });
  }
  if (config_.outliers.enabled) {
    assert(config_.outliers.Validate().empty());
    outliers_ = std::make_unique<OutlierRecorder>(config_.outliers);
  }
  // The ledger opens before the policy attaches so DARC-family policies can
  // hand it to their scheduler. The dispatcher pseudo-slot accumulates fixed
  // dispatch/completion costs; whatever wall time those leave unaccounted is
  // the serial resource sitting idle — poll_spin by construction.
  time_ledger_.Open(config_.num_workers, sim_->Now());
  time_ledger_.SetRemainderState(time_ledger_.dispatcher_slot(),
                                 WorkerTimeState::kPollSpin);
  policy_->Attach(this);
}

namespace {

ClusterConfig AdjustDurationForTrace(ClusterConfig config,
                                     const std::vector<TraceEntry>& trace) {
  if (!trace.empty()) {
    config.duration = trace.back().send_time + 1;
  }
  return config;
}

}  // namespace

ClusterEngine::ClusterEngine(WorkloadSpec workload, ClusterConfig config,
                             std::unique_ptr<SchedulingPolicy> policy,
                             std::vector<TraceEntry> trace)
    : ClusterEngine(std::move(workload), AdjustDurationForTrace(config, trace),
                    std::move(policy)) {
  trace_ = std::move(trace);
}

SimRequest* ClusterEngine::AllocRequest() {
  if (!free_list_.empty()) {
    SimRequest* r = free_list_.back();
    free_list_.pop_back();
    return r;
  }
  slab_.emplace_back();
  return &slab_.back();
}

void ClusterEngine::FreeRequest(SimRequest* request) {
  free_list_.push_back(request);
}

void ClusterEngine::StartPhase(size_t phase_index, Nanos start_time) {
  phase_index_ = phase_index;
  const WorkloadPhase& phase = workload_.phases[phase_index];
  sampler_ = std::make_unique<PhaseSampler>(phase);
  const double rate = config_.rate_rps * phase.load_scale;
  gap_mean_nanos_ = rate > 0 ? 1e9 / rate : 0;
  phase_end_ = phase.duration > 0 ? start_time + phase.duration
                                  : config_.duration;
}

void ClusterEngine::ScheduleNextArrival() {
  // Poisson gaps; crossing a phase boundary re-rolls the phase sampler.
  double u = rng_.NextDouble();
  if (u <= 0.0) {
    u = 1e-18;
  }
  next_send_ += static_cast<Nanos>(-gap_mean_nanos_ * std::log(1.0 - u)) + 1;
  while (next_send_ >= phase_end_ && phase_index_ + 1 < workload_.phases.size()) {
    StartPhase(phase_index_ + 1, phase_end_);
  }
  if (next_send_ >= config_.duration) {
    return;  // sending window over
  }

  const Nanos send_time = next_send_;
  sim_->ScheduleAt(send_time, [this, send_time] {
    const MixtureDraw draw = sampler_->Sample(rng_);
    InjectRequest(send_time, sampler_->type(draw.mode).wire_id, draw.mode,
                  draw.service_time);
    ScheduleNextArrival();
  });
}

void ClusterEngine::InjectRequest(Nanos send_time, TypeId wire_type,
                                  uint32_t phase_slot, Nanos service) {
  SimRequest* req = AllocRequest();
  req->id = next_id_++;
  req->wire_type = wire_type;
  req->phase_slot = phase_slot;
  req->service = service;
  req->remaining = service;
  req->send_time = send_time;
  req->deadline = 0;
  req->flow_hash = static_cast<uint32_t>(rng_.Next());
  req->ready_time = 0;
  req->service_start = 0;
  req->worker = 0;
  ++generated_;

  // Network flight, then the server's net-worker/dispatcher pipeline: a
  // serial resource charging dispatch_cost per request.
  const Nanos rx_time = send_time + config_.net_one_way;
  const Nanos ready =
      std::max(rx_time, dispatcher_busy_until_) + config_.dispatch_cost;
  dispatcher_busy_until_ = ready;
  time_ledger_.Add(time_ledger_.dispatcher_slot(),
                   WorkerTimeState::kDispatchOverhead, config_.dispatch_cost);
  req->ready_time = ready;
  sim_->ScheduleAt(ready, [this, req] {
    if (TimeSeriesRecorder* const ts = telemetry_->timeseries()) {
      const size_t slot = SeriesSlotFor(req->wire_type);
      if (slot != SIZE_MAX) {
        ts->RecordArrival(slot, Now());
      }
    }
    policy_->OnArrival(req);
  });
}

void ClusterEngine::ScheduleTraceArrival(size_t index) {
  if (index >= trace_.size()) {
    return;
  }
  // Capture the index only (the entry is re-read from trace_ at fire time):
  // keeps the event payload to two words.
  sim_->ScheduleAt(trace_[index].send_time, [this, index] {
    const TraceEntry& entry = trace_[index];
    InjectRequest(entry.send_time, entry.wire_type, /*phase_slot=*/0,
                  entry.service);
    ScheduleTraceArrival(index + 1);
  });
}

void ClusterEngine::PrepareExternalRun(Nanos duration) {
  // Pre-scheduled virtual-time rollovers: close every due interval (and run
  // any pending flight-recorder dump) at exact grid points, so idle stretches
  // still produce empty intervals and the series is deterministic.
  if (TimeSeriesRecorder* const ts = telemetry_->timeseries()) {
    const Nanos interval = ts->config().interval;
    for (Nanos t = interval; t <= duration; t += interval) {
      sim_->ScheduleAt(t, [this, t] { telemetry_->AdvanceTimeSeries(t); });
    }
  }
}

void ClusterEngine::FinishExternalRun() {
  // Completions tail off past the sending window: flush the final partial
  // interval so the series covers the whole run.
  if (telemetry_->timeseries() != nullptr) {
    telemetry_->AdvanceTimeSeries(Now(), /*flush=*/true);
  }
  // Offline introspection: render the same artifacts the live admin plane
  // serves. Everything below derives from virtual time + the seeded RNG, so
  // the files are byte-identical across same-seed runs.
  if (!config_.introspect_dir.empty()) {
    const std::string error = WriteIntrospectionFiles(
        config_.introspect_dir, telemetry_snapshot(), outliers_.get());
    if (!error.empty()) {
      telemetry_->RecordEvent(Now(), error);
    }
  }
}

void ClusterEngine::Run() {
  assert(!external_arrivals_ &&
         "fleet-mode engines are driven by the fleet's event loop");
  if (!trace_.empty()) {
    ScheduleTraceArrival(0);
  } else {
    StartPhase(0, 0);
    ScheduleNextArrival();
  }
  PrepareExternalRun(config_.duration);
  sim_->RunToCompletion();
  FinishExternalRun();
}

void ClusterEngine::InjectExternal(Nanos send_time, TypeId wire_type,
                                   uint32_t phase_slot, Nanos service) {
  assert(external_arrivals_);
  SimRequest* req = AllocRequest();
  req->id = next_id_++;
  req->wire_type = wire_type;
  req->phase_slot = phase_slot;
  req->service = service;
  req->remaining = service;
  req->send_time = send_time;
  req->deadline = 0;
  req->flow_hash = static_cast<uint32_t>(rng_.Next());
  req->ready_time = 0;
  req->service_start = 0;
  req->worker = 0;
  ++generated_;

  // Forwarding hop from the fleet dispatcher to this server's NIC, then the
  // server's own net-worker/dispatcher serial resource. The hop is timed
  // from Now() (the instant the dispatcher forwarded), not from send_time:
  // the client→dispatcher leg already elapsed at the fleet tier.
  const Nanos rx_time = Now() + config_.net_one_way;
  const Nanos ready =
      std::max(rx_time, dispatcher_busy_until_) + config_.dispatch_cost;
  dispatcher_busy_until_ = ready;
  time_ledger_.Add(time_ledger_.dispatcher_slot(),
                   WorkerTimeState::kDispatchOverhead, config_.dispatch_cost);
  req->ready_time = ready;
  sim_->ScheduleAt(ready, [this, req] {
    if (TimeSeriesRecorder* const ts = telemetry_->timeseries()) {
      const size_t slot = SeriesSlotFor(req->wire_type);
      if (slot != SIZE_MAX) {
        ts->RecordArrival(slot, Now());
      }
    }
    policy_->OnArrival(req);
  });
}

void ClusterEngine::CompleteRequest(SimRequest* request) {
  // Completion signal occupies the dispatcher briefly (§4.3.3); the response
  // itself is transmitted by the worker directly (§4.3.4).
  dispatcher_busy_until_ =
      std::max(dispatcher_busy_until_, Now()) + config_.completion_cost;
  time_ledger_.Add(time_ledger_.dispatcher_slot(),
                   WorkerTimeState::kDispatchOverhead,
                   config_.completion_cost);
  const Nanos receive_time = Now() + config_.net_one_way;
  // Deadlines are judged at server-side completion (matching the runtime's
  // dispatcher-absorb accounting), not at client receive.
  metrics_.RecordCompletion(request->wire_type, request->send_time,
                            receive_time, request->service, request->deadline,
                            Now());
  if (TimeSeriesRecorder* const ts = telemetry_->timeseries()) {
    const size_t slot = SeriesSlotFor(request->wire_type);
    if (slot != SIZE_MAX) {
      ts->RecordCompletion(slot, receive_time - request->send_time,
                           request->service, Now());
      if (request->deadline > 0 && Now() > request->deadline) {
        ts->RecordDeadlineMiss(slot, Now());
      }
    }
  }
  if (trace_sampler_.Tick()) {
    // The simulator maps onto the same stage axis the threaded runtime uses.
    // Its model collapses parse/classify/enqueue into dispatch_cost
    // (classified == enqueued == ready) and the channel hop into the service
    // span (dispatched == handler-start); tx happens at completion.
    RequestTrace trace;
    trace.request_id = request->id;
    trace.type = request->wire_type;
    trace.worker = request->worker;
    trace.stamp[static_cast<size_t>(TraceStage::kRx)] =
        request->send_time + config_.net_one_way;
    trace.stamp[static_cast<size_t>(TraceStage::kClassified)] =
        request->ready_time;
    trace.stamp[static_cast<size_t>(TraceStage::kEnqueued)] =
        request->ready_time;
    const Nanos start =
        request->service_start > 0 ? request->service_start : Now();
    trace.stamp[static_cast<size_t>(TraceStage::kDispatched)] = start;
    trace.stamp[static_cast<size_t>(TraceStage::kHandlerStart)] = start;
    trace.stamp[static_cast<size_t>(TraceStage::kHandlerEnd)] = Now();
    trace.stamp[static_cast<size_t>(TraceStage::kTx)] = Now();
    telemetry_->ring(0).Push(trace);
    if (outliers_) {
      // Virtual-time offers: the retained set is a pure function of the
      // seed, which is what makes the offline files byte-reproducible.
      outliers_->Offer(trace, Now());
    }
  }
  if (completion_hook_) {
    completion_hook_(*request, receive_time);
  }
  FreeRequest(request);
}

TelemetrySnapshot ClusterEngine::telemetry_snapshot() const {
  TelemetrySnapshot snap = telemetry_->Snapshot();
  snap.counters["engine.generated"] += generated_;
  metrics_.ExportTelemetry(&snap);
  snap.gauges["engine.num_workers"] = config_.num_workers;
  // Event-queue backend introspection (psp_sim_engine_* in /metrics). Only
  // when the engine owns its simulation: fleet servers share the fleet's
  // queue, which exports these once as fleet.sim.engine.* instead of N
  // double-counted copies.
  if (!external_arrivals_) {
    snap.counters["sim.engine.executed"] += sim_->executed_events();
    snap.counters["sim.engine.cascades"] += sim_->wheel_cascades();
    snap.counters["sim.engine.rollovers"] += sim_->wheel_rollovers();
    snap.counters["sim.engine.backend_switches"] += sim_->backend_switches();
    snap.counters["sim.engine.arena_allocations"] +=
        sim_->arena_allocations();
    snap.gauges["sim.engine.wheel_active"] = sim_->wheel_active() ? 1 : 0;
    snap.gauges["sim.engine.pending_events"] =
        static_cast<int64_t>(sim_->pending_events());
  }
  snap.counters["policy.preemptions"] += policy_->preemptions();
  snap.counters["policy.steals"] += policy_->steals();
  policy_->ExportTelemetry(&snap);
  // Worker time provenance, resolved against the names the policy just
  // exported (dense scheduler type indices).
  snap.worker_time = time_ledger_.SnapshotTotals(
      Now(), [&snap](uint32_t t) {
        const auto it = snap.type_names.find(t);
        return it != snap.type_names.end() ? it->second : std::string();
      });
  return snap;
}

void ClusterEngine::SampleWorkerTimeGauges(IntervalRecord* rec) {
  const std::vector<WorkerTimeRecord> records =
      time_ledger_.SnapshotTotals(Now(), nullptr);
  if (records.empty()) {
    return;
  }
  // Workers only: the dispatcher pseudo-slot (last record) is not a worker
  // core and would skew the fleet-of-workers shares.
  const size_t workers = records.size() - 1;
  if (ts_prev_state_.size() < workers) {
    ts_prev_state_.resize(workers);
  }
  rec->worker_busy_permille.assign(workers, 0);
  std::array<uint64_t, kNumWorkerTimeStates> delta_sum{};
  uint64_t wall_sum = 0;
  for (size_t w = 0; w < workers; ++w) {
    uint64_t wall = 0;
    std::array<uint64_t, kNumWorkerTimeStates> delta{};
    for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
      const uint64_t cur = records[w].state_ns[s];
      const uint64_t prev = ts_prev_state_[w][s];
      delta[s] = cur > prev ? cur - prev : 0;
      ts_prev_state_[w][s] = cur;
      wall += delta[s];
      delta_sum[s] += delta[s];
    }
    wall_sum += wall;
    if (wall > 0) {
      const uint64_t busy =
          delta[static_cast<size_t>(WorkerTimeState::kBusy)] +
          delta[static_cast<size_t>(WorkerTimeState::kSteal)];
      rec->worker_busy_permille[w] =
          static_cast<int64_t>(busy * 1000 / wall);
    }
  }
  rec->worker_state_permille.assign(kNumWorkerTimeStates, 0);
  if (wall_sum > 0) {
    for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
      rec->worker_state_permille[s] =
          static_cast<int64_t>(delta_sum[s] * 1000 / wall_sum);
    }
  }
}

void ClusterEngine::DropRequest(SimRequest* request) {
  metrics_.RecordDrop(request->wire_type);
  if (request->deadline > 0) {
    metrics_.RecordDeadlineShed(request->wire_type, request->send_time);
  }
  if (TimeSeriesRecorder* const ts = telemetry_->timeseries()) {
    const size_t slot = SeriesSlotFor(request->wire_type);
    if (slot != SIZE_MAX) {
      ts->RecordDrop(slot, Now());
      if (request->deadline > 0) {
        ts->RecordDeadlineShed(slot, Now());
      }
    }
  }
  if (drop_hook_) {
    drop_hook_(*request);
  }
  FreeRequest(request);
}

void WorkerBank::Init(ClusterEngine* engine, IdleCallback on_idle) {
  engine_ = engine;
  on_idle_ = std::move(on_idle);
  idle_.clear();
  busy_nanos_.assign(engine->num_workers(), 0);
  for (uint32_t w = 0; w < engine->num_workers(); ++w) {
    idle_.push_back(w);
  }
}

uint32_t WorkerBank::PopIdle() {
  const uint32_t w = idle_.back();
  idle_.pop_back();
  return w;
}

bool WorkerBank::IsIdle(uint32_t worker) const {
  for (const uint32_t w : idle_) {
    if (w == worker) {
      return true;
    }
  }
  return false;
}

bool WorkerBank::ClaimIdle(uint32_t worker) {
  for (size_t i = 0; i < idle_.size(); ++i) {
    if (idle_[i] == worker) {
      idle_[i] = idle_.back();
      idle_.pop_back();
      return true;
    }
  }
  return false;
}

void WorkerBank::Run(uint32_t worker, SimRequest* request, Nanos extra_cost) {
  engine_->NoteServiceStart(request, worker);
  const Nanos busy = extra_cost + request->service;
  busy_nanos_[worker] += static_cast<uint64_t>(busy);
  // Bank-managed policies have no dense type registry: busy time lands in
  // the ledger untyped (DARC-family policies stamp types via the scheduler).
  engine_->time_ledger()->Transition(worker, WorkerTimeState::kBusy,
                                     WorkerTimeLedger::kUntyped,
                                     engine_->Now());
  engine_->sim().ScheduleAfter(busy, [this, worker, request] {
    engine_->CompleteRequest(request);
    engine_->time_ledger()->Transition(worker, WorkerTimeState::kFreeIdle,
                                       WorkerTimeLedger::kUntyped,
                                       engine_->Now());
    idle_.push_back(worker);
    on_idle_(worker);
  });
}

}  // namespace psp
