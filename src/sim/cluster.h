// The simulated testbed: open-loop Poisson clients, a network with a fixed
// one-way delay, and a server pipeline (net worker + dispatcher as one serial
// resource feeding a pluggable scheduling policy over W worker cores) —
// mirroring the paper's CloudLab setup (§5.1) and its idealised §2 simulator
// (set net delay and pipeline costs to zero for the latter).
#ifndef PSP_SRC_SIM_CLUSTER_H_
#define PSP_SRC_SIM_CLUSTER_H_

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/introspect/outliers.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/workload.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeledger.h"

namespace psp {

struct SimRequest {
  uint64_t id = 0;
  TypeId wire_type = 0;    // request type id carried in the header
  uint32_t phase_slot = 0; // index into the generating phase's type list
  Nanos service = 0;       // total CPU demand
  Nanos remaining = 0;     // remaining demand (preemptive policies)
  Nanos send_time = 0;     // client send instant
  Nanos deadline = 0;      // absolute deadline (deadline tier; 0 = none)
  uint32_t flow_hash = 0;  // RSS steering input
  // Lifecycle stamps for telemetry (0 = not recorded). ready_time is set by
  // the engine when the dispatcher pipeline hands the request to the policy;
  // service_start/worker by WorkerBank::Run or NoteServiceStart.
  Nanos ready_time = 0;
  Nanos service_start = 0;
  uint32_t worker = 0;
};

struct ClusterConfig {
  uint32_t num_workers = 14;
  double rate_rps = 1e6;            // offered load (phase load_scale applies)
  Nanos duration = kSecond;         // client sending window
  double warmup_fraction = 0.1;     // discarded prefix (paper: first 10%)
  Nanos net_one_way = 5 * kMicrosecond;  // testbed RTT ≈ 10 µs
  Nanos dispatch_cost = 100;        // net worker + classifier + decision, per request
  Nanos completion_cost = 40;       // completion-signal handling on dispatcher
  uint64_t seed = 42;
  // Event-queue backend (auto = density heuristic picks wheel vs heap; see
  // EngineBackend in src/sim/event_queue.h). Ignored in fleet-server mode,
  // where the fleet's shared simulation owns the choice.
  EngineBackend engine_backend = EngineBackend::kAuto;
  Nanos time_series_bucket = 0;     // 0 = no time series
  // Observability: lifecycle-trace sampling + ring sizing, the same knobs as
  // the threaded runtime (RuntimeConfig::telemetry).
  TelemetryConfig telemetry;
  // Tail-outlier capture over sampled traces (virtual-time windows, so the
  // retained set is bit-deterministic per seed).
  OutlierConfig outliers;
  // Offline introspection: when non-empty, Run() renders the same artifacts
  // the live admin plane serves — metrics.prom, snapshot.json,
  // timeseries.json, outliers.json — into this directory at end of run.
  std::string introspect_dir;
};

class ClusterEngine;

// A scheduling policy plugged into the server model. Policies own the worker
// cores: they decide what runs where and call CompleteRequest/DropRequest.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual void Attach(ClusterEngine* engine) { engine_ = engine; }

  // Called when the dispatcher hands over a classified request.
  virtual void OnArrival(SimRequest* request) = 0;

  virtual std::string Name() const = 0;

  // Policy-specific counters surfaced in benches (e.g. preemptions, steals).
  virtual uint64_t preemptions() const { return 0; }
  virtual uint64_t steals() const { return 0; }

  // Publishes policy internals into the unified snapshot (counters, gauges,
  // reservation state, ...). Default: nothing beyond preemptions/steals,
  // which the engine exports itself.
  virtual void ExportTelemetry(TelemetrySnapshot* out) const { (void)out; }

  // Stamps policy-side gauges (queue depths, reserved shares) into a closing
  // time-series interval; entries are keyed by wire type id
  // (TypeIntervalStats::type). Called under the recorder's roll lock — must
  // not call back into the recorder. Default: leaves the -1 sentinels.
  virtual void SampleTimeSeriesGauges(IntervalRecord* rec) { (void)rec; }

 protected:
  ClusterEngine* engine_ = nullptr;
};

class ClusterEngine {
 public:
  ClusterEngine(WorkloadSpec workload, ClusterConfig config,
                std::unique_ptr<SchedulingPolicy> policy);

  // Trace-replay constructor: arrivals, types and service times come from
  // `trace` (see src/sim/trace.h) instead of the workload's generators; the
  // workload spec still names the types for metrics and policy seeding.
  // config.duration/rate_rps are ignored for generation (the warmup fraction
  // applies against the last trace send time).
  ClusterEngine(WorkloadSpec workload, ClusterConfig config,
                std::unique_ptr<SchedulingPolicy> policy,
                std::vector<TraceEntry> trace);

  // Fleet-server mode (src/fleet): the engine shares `sim` with its sibling
  // servers, generates no arrivals of its own, and receives requests through
  // InjectExternal. The fleet layer drives the shared event loop and calls
  // PrepareExternalRun / FinishExternalRun around it; Run() must not be
  // called on an engine built this way.
  ClusterEngine(WorkloadSpec workload, ClusterConfig config,
                std::unique_ptr<SchedulingPolicy> policy, Simulation* sim);

  // Runs the experiment to completion (all sent requests completed/dropped).
  void Run();

  // --- Fleet-server API (external-arrival mode) ----------------------------
  // Observes every completion (receive_time = client receive instant) or
  // flow-control drop; the fleet layer uses these for fleet-wide metrics and
  // outstanding-request tracking. Called before the request is recycled.
  using CompletionHook = std::function<void(const SimRequest&, Nanos receive)>;
  using DropHook = std::function<void(const SimRequest&)>;
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  // Delivers a classified request into this server's pipeline now: one
  // forwarding hop (config.net_one_way) to the server NIC, then the
  // net-worker/dispatcher serial resource. `send_time` stays the client send
  // instant so per-server metrics remain client-observed.
  void InjectExternal(Nanos send_time, TypeId wire_type, uint32_t phase_slot,
                      Nanos service);

  // Schedules the virtual-time time-series grid over [0, duration] on the
  // shared simulation (external mode's half of Run()'s setup).
  void PrepareExternalRun(Nanos duration);
  // Flushes the final partial interval and renders introspection artifacts
  // (external mode's half of Run()'s teardown).
  void FinishExternalRun();

  // --- Policy-facing API ----------------------------------------------------
  Simulation& sim() { return *sim_; }
  Nanos Now() const { return sim_->Now(); }
  uint32_t num_workers() const { return config_.num_workers; }
  Rng& rng() { return rng_; }

  // Stamps the moment `request` begins service on `worker` (policies that
  // bypass WorkerBank call this; WorkerBank::Run does it automatically).
  void NoteServiceStart(SimRequest* request, uint32_t worker) {
    request->service_start = Now();
    request->worker = worker;
  }

  // The request finished service now; routes the response to the client and
  // releases the request.
  void CompleteRequest(SimRequest* request);
  // The request was shed (queue full); recorded as a drop.
  void DropRequest(SimRequest* request);

  // --- Results --------------------------------------------------------------
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  const ClusterConfig& config() const { return config_; }
  const WorkloadSpec& workload() const { return workload_; }
  SchedulingPolicy& policy() { return *policy_; }
  uint64_t generated() const { return generated_; }

  // The unified introspection surface: the same TelemetrySnapshot API the
  // threaded runtime exposes (Persephone::telemetry_snapshot), fed by the
  // simulator's Metrics, the policy, and sampled lifecycle traces.
  Telemetry& telemetry() { return *telemetry_; }
  const Telemetry& telemetry() const { return *telemetry_; }
  TelemetrySnapshot telemetry_snapshot() const;
  // The tail-outlier recorder, when config.outliers.enabled.
  const OutlierRecorder* outliers() const { return outliers_.get(); }

  // The worker time-provenance ledger (src/telemetry/timeledger.h). The
  // engine charges the dispatcher serial resource's costs; DARC-family
  // policies attach it to their scheduler for worker-slot provenance, and
  // WorkerBank stamps plain busy/idle for the rest. Everything is driven by
  // virtual time, so totals are bit-deterministic per seed.
  WorkerTimeLedger* time_ledger() { return &time_ledger_; }
  const WorkerTimeLedger& time_ledger() const { return time_ledger_; }

  // Duration of the measured (post-warmup) sending window.
  Nanos MeasuredWindow() const {
    return config_.duration -
           static_cast<Nanos>(config_.warmup_fraction *
                              static_cast<double>(config_.duration));
  }

 private:
  void ScheduleNextArrival();
  void ScheduleTraceArrival(size_t index);
  void SampleWorkerTimeGauges(IntervalRecord* rec);
  void StartPhase(size_t phase_index, Nanos start_time);
  void InjectRequest(Nanos send_time, TypeId wire_type, uint32_t phase_slot,
                     Nanos service);

  // Time-series recorder slot for `wire`; SIZE_MAX when the recorder is off
  // or the type never registered (trace replay with unnamed types).
  size_t SeriesSlotFor(TypeId wire) const {
    const auto it = series_slot_by_wire_.find(wire);
    return it == series_slot_by_wire_.end() ? SIZE_MAX : it->second;
  }

  WorkloadSpec workload_;
  ClusterConfig config_;
  std::unique_ptr<SchedulingPolicy> policy_;
  // The engine normally owns its simulation; in fleet-server mode sim_
  // points at the fleet's shared event queue instead.
  Simulation own_sim_;
  Simulation* sim_ = &own_sim_;
  bool external_arrivals_ = false;
  CompletionHook completion_hook_;
  DropHook drop_hook_;
  Rng rng_;
  Metrics metrics_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<OutlierRecorder> outliers_;
  TraceSampler trace_sampler_;
  std::map<TypeId, size_t> series_slot_by_wire_;
  WorkerTimeLedger time_ledger_;
  // Previous-interval ledger totals per worker slot, for the time-series
  // gauge sampler's delta computation (single-threaded: sampler runs inline
  // in virtual time).
  std::vector<std::array<uint64_t, kNumWorkerTimeStates>> ts_prev_state_;

  // Arrival generation state.
  size_t phase_index_ = 0;
  Nanos phase_end_ = 0;
  std::unique_ptr<PhaseSampler> sampler_;
  double gap_mean_nanos_ = 0;
  Nanos next_send_ = 0;
  uint64_t next_id_ = 0;
  uint64_t generated_ = 0;

  // Dispatcher serial-resource state.
  Nanos dispatcher_busy_until_ = 0;

  // Trace replay (empty = generated workload).
  std::vector<TraceEntry> trace_;

  // Request storage: slab + free list.
  std::deque<SimRequest> slab_;
  std::vector<SimRequest*> free_list_;

  SimRequest* AllocRequest();
  void FreeRequest(SimRequest* request);
};

// Helper for non-preemptive policies: tracks idle workers and runs requests
// to completion, invoking a callback when a worker frees up.
class WorkerBank {
 public:
  using IdleCallback = std::function<void(uint32_t worker)>;

  void Init(ClusterEngine* engine, IdleCallback on_idle);

  bool HasIdle() const { return !idle_.empty(); }
  size_t idle_count() const { return idle_.size(); }
  // Pops an arbitrary idle worker (unspecified which).
  uint32_t PopIdle();
  // True if `worker` is currently idle (O(n); small n).
  bool IsIdle(uint32_t worker) const;
  // Removes a specific idle worker; false if busy.
  bool ClaimIdle(uint32_t worker);

  // Runs `request` on `worker` starting now, occupying it for
  // `extra_cost + request->service`, then completes it and reports idle.
  void Run(uint32_t worker, SimRequest* request, Nanos extra_cost = 0);

  uint64_t busy_nanos(uint32_t worker) const { return busy_nanos_[worker]; }

 private:
  ClusterEngine* engine_ = nullptr;
  IdleCallback on_idle_;
  std::vector<uint32_t> idle_;
  std::vector<uint64_t> busy_nanos_;
};

}  // namespace psp

#endif  // PSP_SRC_SIM_CLUSTER_H_
