// Wire formats for the UDP networking model (paper §4.1: "Our current
// prototype is designed for UDP networking").
//
// A request on the wire is:  Ethernet | IPv4 | UDP | PspHeader | payload.
// PspHeader mirrors the paper's client protocol: "TPC-C transaction ID,
// RocksDB query ID, and synthetic workload request types are located in the
// requests' header" (§5.1), so a classifier can read the type in O(1).
#ifndef PSP_SRC_NET_PACKET_H_
#define PSP_SRC_NET_PACKET_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>

#include "src/common/time.h"

namespace psp {

#pragma pack(push, 1)

struct EthernetHeader {
  std::array<uint8_t, 6> dst;
  std::array<uint8_t, 6> src;
  uint16_t ether_type;  // big-endian; 0x0800 = IPv4

  static constexpr uint16_t kEtherTypeIpv4 = 0x0800;
};
static_assert(sizeof(EthernetHeader) == 14);

struct Ipv4Header {
  uint8_t version_ihl;     // 0x45: IPv4, 5-word header
  uint8_t tos;
  uint16_t total_length;   // big-endian
  uint16_t identification;
  uint16_t flags_fragment;
  uint8_t ttl;
  uint8_t protocol;        // 17 = UDP
  uint16_t checksum;
  uint32_t src_addr;       // big-endian
  uint32_t dst_addr;       // big-endian

  static constexpr uint8_t kProtocolUdp = 17;
};
static_assert(sizeof(Ipv4Header) == 20);

struct UdpHeader {
  uint16_t src_port;  // big-endian
  uint16_t dst_port;  // big-endian
  uint16_t length;    // big-endian
  uint16_t checksum;
};
static_assert(sizeof(UdpHeader) == 8);

// Application-level request header (layer 4+ payload prefix).
//
// The trailing four fields are the wire-level trace context (Dapper-style
// in-band propagation): the client sets trace_flags and client_timestamp on
// the request; the server echoes the whole header on the response, stamping
// server_rx/tx_timestamp (its own clock domain) for sampled requests so an
// offline join can decompose client RTT into wire time and server sojourn
// without synchronised clocks.
struct PspHeader {
  uint32_t magic;        // kMagic
  uint32_t request_type; // application request type id (classifier input)
  uint64_t request_id;   // unique per client
  uint32_t client_id;
  uint32_t payload_length;  // bytes following this header
  int64_t client_timestamp; // client send time (ns) for RTT accounting
  uint32_t trace_flags;     // kFlagTraceSampled etc.; echoed on the response
  uint32_t deadline_us;     // absolute latency budget in µs from arrival at
                            // the server (0 = no deadline); also keeps the
                            // 64-bit stamps 8-byte positioned
  int64_t server_rx_timestamp;  // server clock; 0 until the server stamps it
  int64_t server_tx_timestamp;  // server clock; 0 until the server stamps it

  static constexpr uint32_t kMagic = 0x50535031;  // "PSP1"
  // Request bit: the client elected this request for distributed tracing.
  // The server honors it (forces lifecycle sampling) and echoes it back so
  // the client knows which responses carry server stamps.
  static constexpr uint32_t kFlagTraceSampled = 1u << 0;
};
static_assert(sizeof(PspHeader) == 56);

#pragma pack(pop)

inline constexpr size_t kHeadersSize =
    sizeof(EthernetHeader) + sizeof(Ipv4Header) + sizeof(UdpHeader);
inline constexpr size_t kRequestOffset = kHeadersSize;  // PspHeader offset
inline constexpr size_t kMaxPacketSize = 1518;           // standard MTU frame

// Big-endian helpers (network byte order).
constexpr uint16_t HostToNet16(uint16_t v) {
  return static_cast<uint16_t>((v << 8) | (v >> 8));
}
constexpr uint16_t NetToHost16(uint16_t v) { return HostToNet16(v); }
constexpr uint32_t HostToNet32(uint32_t v) {
  return ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
         (v >> 24);
}
constexpr uint32_t NetToHost32(uint32_t v) { return HostToNet32(v); }

// A reference to a packet living in a MemoryPool buffer.
struct PacketRef {
  std::byte* data = nullptr;
  uint32_t length = 0;
  // Hardware-style NIC timestamps: rx is stamped when the frame enters an RX
  // queue (telemetry reads it as the lifecycle rx stamp, so NIC-queue wait is
  // attributed correctly); tx when the frame enters a TX queue. 0 = not
  // stamped (frames built by hand in tests).
  Nanos rx_timestamp = 0;
  Nanos tx_timestamp = 0;
};

// Flow identity used for RSS steering.
struct FlowTuple {
  uint32_t src_addr = 0;
  uint32_t dst_addr = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
};

// Fields needed to build a request packet.
struct RequestFrame {
  FlowTuple flow;
  uint32_t request_type = 0;
  uint64_t request_id = 0;
  uint32_t client_id = 0;
  Nanos client_timestamp = 0;
  uint32_t trace_flags = 0;
  uint32_t deadline_us = 0;  // latency budget in µs; 0 = no deadline
  const std::byte* payload = nullptr;
  uint32_t payload_length = 0;
};

// Writes a full Eth/IP/UDP/PSP frame into `buf` (capacity `buf_size`).
// Returns the frame length, or 0 if it does not fit.
uint32_t BuildRequestPacket(const RequestFrame& frame, std::byte* buf,
                            size_t buf_size);

// Wraps a datagram already sitting at buf + kRequestOffset (as the UDP
// socket ingress receives it: PspHeader + payload, the kernel having consumed
// the real Ethernet/IP/UDP framing) into a full frame by synthesizing the
// three wire headers in front of it, zero-copy. `flow` carries the datagram's
// real endpoints (host byte order, as in BuildRequestPacket); `ident` is
// stashed in the IPv4 identification field, where it survives
// FormatResponseInPlace so the egress path can route the response back out
// the socket shard the request arrived on. Returns the frame length, or 0 if
// the datagram does not fit a standard frame.
uint32_t WrapDatagramFrame(std::byte* buf, uint32_t datagram_length,
                           const FlowTuple& flow, uint16_t ident);

// Reads back the shard tag WrapDatagramFrame stored (egress side).
uint16_t FrameIdent(const std::byte* frame);

// Naturally-aligned copy of the wire PspHeader (the packed wire struct's
// members have alignment 1, which poisons reference binding downstream).
struct RequestHeaderView {
  uint32_t magic = 0;
  uint32_t request_type = 0;
  uint64_t request_id = 0;
  uint32_t client_id = 0;
  uint32_t payload_length = 0;
  int64_t client_timestamp = 0;
  uint32_t trace_flags = 0;
  uint32_t deadline_us = 0;
  int64_t server_rx_timestamp = 0;
  int64_t server_tx_timestamp = 0;
};

// Parsed view of a received request packet. The payload pointer aliases the
// packet buffer (zero-copy, §4.3.1); the request header is copied out by
// value because its position in the frame is not naturally aligned.
struct ParsedRequest {
  FlowTuple flow;
  RequestHeaderView psp;
  const std::byte* payload = nullptr;
  uint32_t payload_length = 0;
};

// Validates Ethernet/IPv4/UDP framing and the PSP magic. The checks mirror
// the paper's net worker, "a layer 2 forwarder [that] performs simple checks
// on Ethernet and IP headers" (§6). Returns nullopt for malformed packets.
std::optional<ParsedRequest> ParseRequestPacket(const std::byte* data,
                                                uint32_t length);

// Rewrites a request frame in place into a response frame: swaps Ethernet
// MACs, IP addresses and UDP ports, and sets the new payload length. This is
// the paper's buffer-reuse TX path ("the worker reuses the ingress network
// buffer to host the egress packet", §4.3.1). Returns the new frame length.
uint32_t FormatResponseInPlace(std::byte* data, uint32_t response_payload_len);

// Writes the server's rx/tx lifecycle stamps into the PSP header of a frame
// about to leave as a response (the distributed-tracing echo). Same unaligned
// memcpy discipline as FormatResponseInPlace; call it after the response is
// formatted and immediately before the frame hits the egress sink.
void StampServerTimestamps(std::byte* frame, Nanos server_rx, Nanos server_tx);

// IPv4 header checksum (RFC 1071) over the 20-byte header.
uint16_t Ipv4Checksum(const Ipv4Header& header);

}  // namespace psp

#endif  // PSP_SRC_NET_PACKET_H_
