#include "src/net/nic.h"

namespace psp {

SimulatedNic::SimulatedNic(uint32_t num_queues, size_t queue_depth,
                           MemoryPool* pool)
    : num_queues_(num_queues), pool_(pool) {
  queues_.reserve(num_queues);
  egress_.reserve(num_queues);
  for (uint32_t i = 0; i < num_queues; ++i) {
    queues_.push_back(std::make_unique<NicQueuePair>(queue_depth));
    egress_.push_back(std::make_unique<SpscRing<PacketRef>>(queue_depth));
  }
}

bool SimulatedNic::DeliverFromWire(PacketRef packet) {
  const auto parsed = ParseRequestPacket(packet.data, packet.length);
  if (!parsed.has_value()) {
    rx_drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint32_t queue = RssQueueForFlow(parsed->flow, num_queues_);
  return DeliverToQueue(queue, packet);
}

bool SimulatedNic::DeliverToQueue(uint32_t queue, PacketRef packet) {
  // NIC-hardware-style RX timestamping (one rdtsc per frame): downstream
  // telemetry reads this as the lifecycle rx stamp.
  packet.rx_timestamp = TscClock::Global().Now();
  if (queue >= num_queues_ || !queues_[queue]->rx().TryPush(packet)) {
    rx_drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool SimulatedNic::PollRx(uint32_t queue, PacketRef* out) {
  return queues_[queue]->rx().TryPop(out);
}

bool SimulatedNic::Transmit(uint32_t queue, PacketRef packet) {
  packet.tx_timestamp = TscClock::Global().Now();
  return egress_[queue]->TryPush(packet);
}

bool SimulatedNic::PollEgress(PacketRef* out) {
  // Round-robin over per-queue egress rings; single consumer assumed.
  for (uint32_t i = 0; i < num_queues_; ++i) {
    const uint32_t q = (egress_cursor_ + i) % num_queues_;
    if (egress_[q]->TryPop(out)) {
      egress_cursor_ = (q + 1) % num_queues_;
      return true;
    }
  }
  return false;
}

}  // namespace psp
