#include "src/net/udp_ingress.h"

#include <arpa/inet.h>
#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/time.h"

namespace psp {
namespace {

// Datagrams per recvmmsg/sendmmsg round; matches the runtime's ingress burst.
constexpr size_t kBatch = 16;

Nanos ThreadClockNanos(clockid_t clock) {
  timespec ts{};
  clock_gettime(clock, &ts);
  return static_cast<Nanos>(ts.tv_sec) * kSecond + ts.tv_nsec;
}

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

UdpIngress::UdpIngress(const IngressConfig& config, size_t ring_depth,
                       MemoryPool* pool, bool yield_on_idle)
    : config_(config),
      ring_depth_(ring_depth),
      pool_(pool),
      yield_on_idle_(yield_on_idle) {
  shards_.resize(config_.num_net_workers);
  for (auto& shard : shards_) {
    shard.ring = std::make_unique<SpscRing<PacketRef>>(ring_depth_);
    shard.poller = std::make_unique<PollController>(config_.poll);
    shard.rx = std::make_unique<std::atomic<uint64_t>>(0);
  }
}

UdpIngress::~UdpIngress() { Close(); }

std::string UdpIngress::Open() {
  in_addr addr{};
  if (inet_pton(AF_INET, config_.listen_addr.c_str(), &addr) != 1) {
    return "ingress: cannot parse listen_addr '" + config_.listen_addr + "'";
  }
  listen_addr_host_ = NetToHost32(addr.s_addr);

  uint16_t bound_port = static_cast<uint16_t>(config_.listen_port);
  for (size_t i = 0; i < shards_.size(); ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      Close();
      return Errno("ingress: socket");
    }
    shards_[i].fd = fd;
    if (config_.reuseport) {
      const int one = 1;
      if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
        Close();
        return Errno("ingress: SO_REUSEPORT");
      }
    }
    // Best-effort buffer sizing: the kernel clamps to its own limits, and a
    // smaller-than-requested buffer is a throughput matter, not an error.
    const int buf = config_.socket_buffer_bytes;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));

    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr = addr;
    sin.sin_port = htons(bound_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
      Close();
      return Errno("ingress: bind");
    }
    if (i == 0 && bound_port == 0) {
      // Ephemeral bind: read the port back so the remaining reuseport shards
      // (and the caller) target the same one.
      socklen_t len = sizeof(sin);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) != 0) {
        Close();
        return Errno("ingress: getsockname");
      }
      bound_port = ntohs(sin.sin_port);
    }
  }
  port_ = bound_port;
  return "";
}

void UdpIngress::Close() {
  for (auto& shard : shards_) {
    if (shard.fd >= 0) {
      ::close(shard.fd);
      shard.fd = -1;
    }
  }
  port_ = 0;
}

void UdpIngress::RunNetWorker(uint32_t shard_index,
                              const std::atomic<bool>& stop) {
  Shard& shard = shards_[shard_index];
  PollController& poller = *shard.poller;
  BufferCache cache(pool_);

  // Datagram capacity per buffer: the frame must also hold the synthesized
  // headers and stay inside a standard frame.
  const size_t cap =
      std::min(pool_->buffer_size(), kMaxPacketSize) - kRequestOffset;

  const Nanos wall_start = ThreadClockNanos(CLOCK_MONOTONIC);
  const Nanos cpu_start = ThreadClockNanos(CLOCK_THREAD_CPUTIME_ID);

  std::vector<std::byte*> bufs;  // receive slots for the next round
  bufs.reserve(kBatch);

  while (!stop.load(std::memory_order_relaxed)) {
    while (bufs.size() < kBatch) {
      std::byte* buf = cache.Alloc();
      if (buf == nullptr) {
        break;  // pool exhausted: poll with what we have
      }
      bufs.push_back(buf);
    }
    if (bufs.empty()) {
      // Every buffer is in flight; wait for the pipeline to recycle some.
      poller.OnIdle();
      continue;
    }

    sockaddr_in addrs[kBatch];
    int received = 0;
#if defined(__linux__)
    mmsghdr msgs[kBatch];
    iovec iovs[kBatch];
    std::memset(msgs, 0, sizeof(mmsghdr) * bufs.size());
    for (size_t i = 0; i < bufs.size(); ++i) {
      iovs[i] = {bufs[i] + kRequestOffset, cap};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
    }
    received = ::recvmmsg(shard.fd, msgs, static_cast<unsigned>(bufs.size()),
                          0, nullptr);
#else
    // Portable fallback: one datagram per round.
    socklen_t addr_len = sizeof(addrs[0]);
    const ssize_t r =
        ::recvfrom(shard.fd, bufs[0] + kRequestOffset, cap, 0,
                   reinterpret_cast<sockaddr*>(&addrs[0]), &addr_len);
    received = r < 0 ? -1 : 1;
    size_t fallback_len = r < 0 ? 0 : static_cast<size_t>(r);
#endif

    if (received <= 0) {
      poller.OnIdle();
      continue;
    }
    poller.OnWork();

    size_t kept = 0;  // slots in bufs[] still free after this round
    for (int i = 0; i < received; ++i) {
      std::byte* buf = bufs[i];
#if defined(__linux__)
      const size_t len = msgs[i].msg_len;
      const bool truncated = (msgs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0;
#else
      const size_t len = fallback_len;
      const bool truncated = false;
#endif
      // The net worker's validation mirrors the paper's layer-2 forwarder:
      // cheap structural checks only; full parsing stays with the dispatcher.
      uint32_t magic = 0;
      if (len >= sizeof(PspHeader)) {
        std::memcpy(&magic, buf + kRequestOffset, sizeof(magic));
      }
      if (truncated || len < sizeof(PspHeader) || magic != PspHeader::kMagic) {
        rx_malformed_.fetch_add(1, std::memory_order_relaxed);
        bufs[kept++] = buf;  // reuse the slot next round
        continue;
      }

      FlowTuple flow;
      flow.src_addr = NetToHost32(addrs[i].sin_addr.s_addr);
      flow.src_port = ntohs(addrs[i].sin_port);
      flow.dst_addr = listen_addr_host_;
      flow.dst_port = port_;
      const uint32_t frame_len = WrapDatagramFrame(
          buf, static_cast<uint32_t>(len), flow,
          static_cast<uint16_t>(shard_index));
      if (frame_len == 0) {
        rx_malformed_.fetch_add(1, std::memory_order_relaxed);
        bufs[kept++] = buf;
        continue;
      }

      PacketRef pkt{buf, frame_len, TscClock::Global().Now(), 0};
      if (shard.ring->TryPush(pkt)) {
        rx_datagrams_.fetch_add(1, std::memory_order_relaxed);
        shard.rx->fetch_add(1, std::memory_order_relaxed);
      } else {
        ring_full_drops_.fetch_add(1, std::memory_order_relaxed);
        bufs[kept++] = buf;
      }
    }
    // Untouched slots (beyond `received`) stay available too.
    for (size_t i = static_cast<size_t>(received); i < bufs.size(); ++i) {
      bufs[kept++] = bufs[i];
    }
    bufs.resize(kept);
  }

  for (std::byte* buf : bufs) {
    cache.Free(buf);
  }
  net_cpu_nanos_.fetch_add(
      static_cast<uint64_t>(ThreadClockNanos(CLOCK_THREAD_CPUTIME_ID) -
                            cpu_start),
      std::memory_order_relaxed);
  net_wall_nanos_.fetch_add(
      static_cast<uint64_t>(ThreadClockNanos(CLOCK_MONOTONIC) - wall_start),
      std::memory_order_relaxed);
}

size_t UdpIngress::PollBurst(PacketRef* out, size_t max_n) {
  size_t total = 0;
  const size_t n = shards_.size();
  for (size_t i = 0; i < n && total < max_n; ++i) {
    Shard& shard = shards_[(next_shard_ + i) % n];
    total += shard.ring->TryPopBurst(out + total, max_n - total);
  }
  next_shard_ = (next_shard_ + 1) % n;
  return total;
}

void UdpIngress::IdleHint() {
  if (yield_on_idle_) {
    std::this_thread::yield();
  }
}

size_t UdpIngress::SendBurst(const PacketRef* frames, size_t n,
                             uint32_t queue) {
  (void)queue;  // the shard tag inside each frame names the TX socket
  size_t i = 0;
  while (i < n) {
    // Batch a run of frames bound for the same shard socket into one
    // sendmmsg: one syscall per run instead of one per response, the TX
    // mirror of the recvmmsg ingress rounds.
    const size_t shard_index = FrameIdent(frames[i].data) % shards_.size();
    const int fd = shards_[shard_index].fd;
    size_t run = 1;
    while (i + run < n && run < kBatch &&
           FrameIdent(frames[i + run].data) % shards_.size() == shard_index) {
      ++run;
    }

    // FormatResponseInPlace already swapped the endpoints: each frame's
    // destination (network byte order throughout) is the original client.
    sockaddr_in dsts[kBatch];
    for (size_t j = 0; j < run; ++j) {
      const PacketRef& pkt = frames[i + j];
      const auto* ip = reinterpret_cast<const Ipv4Header*>(
          pkt.data + sizeof(EthernetHeader));
      const auto* udp = reinterpret_cast<const UdpHeader*>(
          pkt.data + sizeof(EthernetHeader) + sizeof(Ipv4Header));
      dsts[j] = sockaddr_in{};
      dsts[j].sin_family = AF_INET;
      dsts[j].sin_addr.s_addr = ip->dst_addr;
      dsts[j].sin_port = udp->dst_port;
    }

    size_t sent_ok = 0;
#if defined(__linux__)
    mmsghdr msgs[kBatch];
    iovec iovs[kBatch];
    std::memset(msgs, 0, sizeof(mmsghdr) * run);
    for (size_t j = 0; j < run; ++j) {
      const PacketRef& pkt = frames[i + j];
      iovs[j] = {pkt.data + kRequestOffset, pkt.length - kHeadersSize};
      msgs[j].msg_hdr.msg_iov = &iovs[j];
      msgs[j].msg_hdr.msg_iovlen = 1;
      msgs[j].msg_hdr.msg_name = &dsts[j];
      msgs[j].msg_hdr.msg_namelen = sizeof(dsts[j]);
    }
    const int sent = ::sendmmsg(fd, msgs, static_cast<unsigned>(run), 0);
    sent_ok = sent > 0 ? static_cast<size_t>(sent) : 0;
#else
    // Portable fallback: per-frame sendto, still accounted as one batch.
    for (size_t j = 0; j < run; ++j) {
      const PacketRef& pkt = frames[i + j];
      const ssize_t sent = ::sendto(
          fd, pkt.data + kRequestOffset, pkt.length - kHeadersSize, 0,
          reinterpret_cast<const sockaddr*>(&dsts[j]), sizeof(dsts[j]));
      if (sent >= 0) {
        ++sent_ok;
      }
    }
#endif
    tx_batches_.fetch_add(1, std::memory_order_relaxed);
    tx_datagrams_.fetch_add(sent_ok, std::memory_order_relaxed);
    // A kernel-refused datagram is counted in tx_drops, not retried; either
    // way this sink owns every frame handed to it.
    tx_drops_.fetch_add(run - sent_ok, std::memory_order_relaxed);
    for (size_t j = 0; j < run; ++j) {
      pool_->FreeGlobal(frames[i + j].data);
    }
    i += run;
  }
  return n;
}

UdpIngressStats UdpIngress::stats() const {
  UdpIngressStats s;
  s.rx_datagrams = rx_datagrams_.load(std::memory_order_relaxed);
  s.rx_malformed = rx_malformed_.load(std::memory_order_relaxed);
  s.ring_full_drops = ring_full_drops_.load(std::memory_order_relaxed);
  s.tx_datagrams = tx_datagrams_.load(std::memory_order_relaxed);
  s.tx_batches = tx_batches_.load(std::memory_order_relaxed);
  s.tx_drops = tx_drops_.load(std::memory_order_relaxed);
  s.rx_per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    s.sleeps += shard.poller->sleeps();
    s.slept_nanos += static_cast<uint64_t>(shard.poller->slept_nanos());
    s.rx_per_shard.push_back(shard.rx->load(std::memory_order_relaxed));
  }
  s.net_cpu_nanos = net_cpu_nanos_.load(std::memory_order_relaxed);
  s.net_wall_nanos = net_wall_nanos_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace psp
