#include "src/net/ingress.h"

namespace psp {

std::string IngressConfig::Validate() const {
  const std::string poll_error = poll.Validate();
  if (!poll_error.empty()) {
    return "ingress: " + poll_error;
  }
  if (mode == IngressMode::kRing) {
    if (num_net_workers != 1) {
      return "ingress: ring mode has exactly one net worker (it is the "
             "in-process SimulatedNic path); num_net_workers applies to udp "
             "mode";
    }
    if (reuseport) {
      return "ingress: reuseport is a udp-mode socket option";
    }
    return "";
  }
  // udp mode.
  if (dedicated_net_worker) {
    return "ingress: udp mode always runs dedicated net workers; "
           "dedicated_net_worker is the ring-mode knob";
  }
  if (listen_port < 0) {
    return "ingress: udp mode needs listen_port (0 binds an ephemeral port)";
  }
  if (listen_port > 65535) {
    return "ingress: listen_port out of range";
  }
  if (listen_addr.empty()) {
    return "ingress: udp mode needs listen_addr";
  }
  if (num_net_workers == 0) {
    return "ingress: udp mode needs at least one net worker";
  }
  if (reuseport && num_net_workers == 1) {
    return "ingress: reuseport shards one port across several net-worker "
           "sockets; with num_net_workers == 1 it does nothing — drop it or "
           "add workers";
  }
  if (num_net_workers > 1 && !reuseport) {
    return "ingress: several net workers need reuseport (they all bind the "
           "same address:port)";
  }
  if (socket_buffer_bytes <= 0) {
    return "ingress: socket_buffer_bytes must be positive";
  }
  return "";
}

}  // namespace psp
