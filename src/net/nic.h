// A simulated NIC for the threaded runtime: hardware RX/TX queue pairs backed
// by lock-free rings, RSS steering on ingress, and per-thread NetworkContexts
// that give each worker "unique access to receive and transmit queues in the
// NIC" (paper §4.3.1).
//
// This stands in for the Intel X710 + DPDK substrate of the original testbed.
// The loopback hook lets an in-process load generator play the role of the
// client machines: frames pushed to TX are delivered back to the generator.
#ifndef PSP_SRC_NET_NIC_H_
#define PSP_SRC_NET_NIC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/memory_pool.h"
#include "src/common/spsc_ring.h"
#include "src/net/packet.h"
#include "src/net/rss.h"

namespace psp {

// One hardware queue pair (RX + TX descriptor rings).
class NicQueuePair {
 public:
  explicit NicQueuePair(size_t depth) : rx_(depth), tx_(depth) {}

  SpscRing<PacketRef>& rx() { return rx_; }
  SpscRing<PacketRef>& tx() { return tx_; }

 private:
  SpscRing<PacketRef> rx_;
  SpscRing<PacketRef> tx_;
};

class SimulatedNic {
 public:
  // num_queues RX/TX queue pairs, each `queue_depth` descriptors deep (power
  // of two). The NIC registers `pool` the way DPDK registers a mempool: all
  // frames must live in pool buffers.
  SimulatedNic(uint32_t num_queues, size_t queue_depth, MemoryPool* pool);

  // "Wire" ingress: steers a frame to an RX queue via RSS on its flow tuple.
  // Returns false (drop) when the queue is full or the frame is malformed.
  bool DeliverFromWire(PacketRef packet);

  // Delivers to an explicit queue (used when RSS is off / single net worker).
  bool DeliverToQueue(uint32_t queue, PacketRef packet);

  // Polls one frame from an RX queue.
  bool PollRx(uint32_t queue, PacketRef* out);

  // Transmits: in this simulation, TX frames land on the egress ring that the
  // in-process "client" drains.
  bool Transmit(uint32_t queue, PacketRef packet);
  bool PollEgress(PacketRef* out);

  uint32_t num_queues() const { return num_queues_; }
  MemoryPool* pool() { return pool_; }

  uint64_t rx_drops() const {
    return rx_drops_.load(std::memory_order_relaxed);
  }

 private:
  uint32_t num_queues_;
  MemoryPool* pool_;
  std::vector<std::unique_ptr<NicQueuePair>> queues_;
  // Egress back to the in-process load generator (MPSC: many TX queues, one
  // generator). Implemented as one SPSC per queue drained round-robin to stay
  // lock-free.
  std::vector<std::unique_ptr<SpscRing<PacketRef>>> egress_;
  uint32_t egress_cursor_ = 0;
  // Relaxed atomic: bumped by the ingress thread, read by telemetry snapshots
  // taken from other threads while traffic flows.
  std::atomic<uint64_t> rx_drops_{0};
};

// A thread's handle on the NIC: its RX/TX queue plus a private buffer cache.
// Matches the paper's network context handed to net and application workers.
class NetworkContext {
 public:
  NetworkContext(SimulatedNic* nic, uint32_t queue_id)
      : nic_(nic), queue_id_(queue_id), cache_(nic->pool()) {}

  bool PollRx(PacketRef* out) { return nic_->PollRx(queue_id_, out); }
  bool Transmit(PacketRef packet) { return nic_->Transmit(queue_id_, packet); }

  std::byte* AllocBuffer() { return cache_.Alloc(); }
  void FreeBuffer(std::byte* buf) { cache_.Free(buf); }

  uint32_t queue_id() const { return queue_id_; }

 private:
  SimulatedNic* nic_;
  uint32_t queue_id_;
  BufferCache cache_;
};

}  // namespace psp

#endif  // PSP_SRC_NET_NIC_H_
