// Kernel UDP socket ingress: the IngressSource/EgressSink implementation that
// lets an *external* process drive the runtime over real datagrams.
//
// Topology (paper §6, with the DPDK poll loop swapped for recvmmsg):
//
//   client ──UDP──▶ socket shard 0..N-1 ──recvmmsg──▶ net worker thread
//        net worker: validate (length + magic, the layer-2-style checks),
//        synthesize Eth/IPv4/UDP framing in front of the datagram
//        (WrapDatagramFrame, zero-copy), forward over an SPSC ring
//   dispatcher ──PollBurst──▶ parse → classify → DARC → app worker
//   app worker ──SendBurst──▶ sendmmsg back out the shard the request
//        arrived on (shard index rides the IPv4 identification field)
//
// Each net worker owns one socket and one forwarding ring, paced by a
// PollController (busy / yield / Metronome-style adaptive sleep). With
// reuseport, all sockets bind the same address:port and the kernel shards
// flows across them — the socket world's RSS.
//
// Wire format on the socket: PspHeader | payload (the kernel owns the real
// Ethernet/IP/UDP framing). The synthesized headers exist so the dispatch
// pipeline — written against full frames — runs unchanged.
#ifndef PSP_SRC_NET_UDP_INGRESS_H_
#define PSP_SRC_NET_UDP_INGRESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/memory_pool.h"
#include "src/common/spsc_ring.h"
#include "src/net/ingress.h"
#include "src/net/packet.h"
#include "src/net/poll_control.h"

namespace psp {

// Counters a telemetry snapshot can fold in (all monotonically increasing).
struct UdpIngressStats {
  uint64_t rx_datagrams = 0;    // datagrams accepted and forwarded
  uint64_t rx_malformed = 0;    // too short / bad magic / oversized, dropped
  uint64_t ring_full_drops = 0; // dispatcher behind, forwarding ring full
  uint64_t tx_datagrams = 0;    // responses handed to the kernel
  uint64_t tx_batches = 0;      // sendmmsg rounds (syscalls) on the TX path
  uint64_t tx_drops = 0;        // sendmsg failures (response lost)
  uint64_t sleeps = 0;          // adaptive-poll sleeps across net workers
  uint64_t slept_nanos = 0;     // total time adaptive pollers spent asleep
  uint64_t net_cpu_nanos = 0;   // CLOCK_THREAD_CPUTIME_ID across net workers
  uint64_t net_wall_nanos = 0;  // wall time the net-worker loops were live
  // Accepted datagrams per shard socket (index = shard/net-worker). With
  // reuseport this is the observable skew of the kernel's flow sharding.
  std::vector<uint64_t> rx_per_shard;
};

class UdpIngress final : public IngressSource, public EgressSink {
 public:
  // `config.mode` must be kUdp and `config` must already Validate().
  // ring_depth (power of two) sizes each shard's forwarding ring; frames are
  // carved from `pool`; yield_on_idle maps the runtime's cooperative-idling
  // knob onto the dispatcher-side IdleHint.
  UdpIngress(const IngressConfig& config, size_t ring_depth, MemoryPool* pool,
             bool yield_on_idle);
  ~UdpIngress() override;

  UdpIngress(const UdpIngress&) = delete;
  UdpIngress& operator=(const UdpIngress&) = delete;

  // Binds every shard socket. Returns "" on success, else a description of
  // the failure (nothing stays half-open). With listen_port == 0 the first
  // socket picks an ephemeral port and the rest bind to what it got.
  std::string Open();
  void Close();

  // The bound port (resolves ephemeral binds); 0 before Open().
  uint16_t port() const { return port_; }

  // Body of net-worker thread `shard` (one thread per shard, spawned by the
  // runtime). Polls the shard socket in recvmmsg batches, validates,
  // wraps, and forwards until `stop` becomes true. Pacing on empty polls
  // follows config.poll.
  void RunNetWorker(uint32_t shard, const std::atomic<bool>& stop);

  // IngressSource (dispatcher side): fair round-robin fan-in across the
  // shard rings.
  size_t PollBurst(PacketRef* out, size_t max_n) override;
  void IdleHint() override;
  const char* Name() const override { return "udp"; }

  // EgressSink (worker side, thread-safe): routes each response out the
  // shard socket its request arrived on and releases the buffer. Always
  // takes ownership of all n frames — a kernel-refused datagram is counted
  // in tx_drops, not retried.
  size_t SendBurst(const PacketRef* frames, size_t n, uint32_t queue) override;

  UdpIngressStats stats() const;

 private:
  struct Shard {
    int fd = -1;
    std::unique_ptr<SpscRing<PacketRef>> ring;
    std::unique_ptr<PollController> poller;
    // unique_ptr keeps Shard movable for shards_.resize(); a bare atomic
    // member would delete the move constructor.
    std::unique_ptr<std::atomic<uint64_t>> rx;
  };

  IngressConfig config_;
  size_t ring_depth_;
  MemoryPool* pool_;
  bool yield_on_idle_;
  std::vector<Shard> shards_;
  uint16_t port_ = 0;
  uint32_t listen_addr_host_ = 0;  // resolved listen address, host order
  size_t next_shard_ = 0;          // PollBurst fan-in cursor (dispatcher only)

  std::atomic<uint64_t> rx_datagrams_{0};
  std::atomic<uint64_t> rx_malformed_{0};
  std::atomic<uint64_t> ring_full_drops_{0};
  std::atomic<uint64_t> tx_datagrams_{0};
  std::atomic<uint64_t> tx_batches_{0};
  std::atomic<uint64_t> tx_drops_{0};
  std::atomic<uint64_t> net_cpu_nanos_{0};
  std::atomic<uint64_t> net_wall_nanos_{0};
};

}  // namespace psp

#endif  // PSP_SRC_NET_UDP_INGRESS_H_
