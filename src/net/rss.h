// Receive Side Scaling: Toeplitz hashing over the IPv4/UDP 4-tuple, as NICs
// implement it. Used by the d-FCFS baseline ("d-FCFS models Receive Side
// Scaling", §2) and by Shenango's IOKernel model, which "uses RSS hashes to
// steer packets to application cores" (§5.1).
#ifndef PSP_SRC_NET_RSS_H_
#define PSP_SRC_NET_RSS_H_

#include <array>
#include <cstdint>

#include "src/net/packet.h"

namespace psp {

// Microsoft's canonical 40-byte RSS key (the default in most NIC drivers).
inline constexpr std::array<uint8_t, 40> kDefaultRssKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

// Toeplitz hash over (src_addr, dst_addr, src_port, dst_port), host order.
uint32_t ToeplitzHash(const FlowTuple& flow,
                      const std::array<uint8_t, 40>& key = kDefaultRssKey);

// Maps a flow to one of `num_queues` RX queues via the indirection table
// convention (hash % table size with an identity table).
uint32_t RssQueueForFlow(const FlowTuple& flow, uint32_t num_queues);

}  // namespace psp

#endif  // PSP_SRC_NET_RSS_H_
