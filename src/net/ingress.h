// The ingress/egress seam of the threaded runtime: where request frames come
// from and where response frames go. The dispatch pipeline (parse → classify
// → DARC → workers) is written against these two small interfaces, so the
// in-process ring substrate (SimulatedNic + LoadGenerator, the paper's
// simulated DPDK queues) and the kernel UDP socket frontend
// (src/net/udp_ingress.h, real datagrams from an external client) are
// interchangeable implementations — and the fleet front-end's submit ring
// rides the same seam via the Frame template parameter.
//
// Contracts:
//   * PollBurst is single-consumer: exactly one thread (the dispatcher, or
//     the fleet front-end) polls a given source.
//   * SendBurst may be called concurrently from every worker thread; `queue`
//     names the caller's TX context (worker w uses queue w+1, matching the
//     SimulatedNic queue map).
//   * SendBurst takes ownership of the frames it accepts (count returned);
//     the caller keeps — and must release — the rest. The UDP sink copies
//     into the kernel and frees the buffer itself; the NIC sink hands the
//     buffer to the egress ring for the in-process client to free.
//   * IdleHint() is the consumer saying "a full poll round found nothing":
//     the source may yield or briefly sleep (bounded by its poll policy)
//     before the next poll. It must be safe to call it every round.
#ifndef PSP_SRC_NET_INGRESS_H_
#define PSP_SRC_NET_INGRESS_H_

#include <cstddef>
#include <string>
#include <thread>

#include "src/common/spsc_ring.h"
#include "src/net/nic.h"
#include "src/net/packet.h"
#include "src/net/poll_control.h"

namespace psp {

// Where the runtime's request frames come from.
enum class IngressMode {
  kRing,  // in-process: SimulatedNic RX queues fed by LoadGenerator
  kUdp,   // kernel UDP sockets: recvmmsg net workers, external clients
};

inline const char* IngressModeName(IngressMode mode) {
  return mode == IngressMode::kRing ? "ring" : "udp";
}

// The runtime's ingress frontend configuration (RuntimeConfig::ingress).
struct IngressConfig {
  IngressMode mode = IngressMode::kRing;

  // Ring mode only: run the net worker on its own thread (the
  // Shinjuku/Shenango arrangement). Default false: net worker and dispatcher
  // share one thread, Perséphone's own configuration ("Perséphone runs both
  // its net worker and dispatcher on the same hardware thread", §5.1). The
  // net worker performs the paper's layer-2 checks and forwards frames to
  // the dispatcher over an SPSC ring. UDP mode always runs dedicated net
  // workers, so setting this there is rejected as a misconfiguration.
  bool dedicated_net_worker = false;

  // UDP mode: listen address (loopback by default — there is no auth layer).
  std::string listen_addr = "127.0.0.1";
  // UDP mode: -1 = unset (invalid — choose a port), 0 = bind an ephemeral
  // port (read it back via Persephone::udp_port()), else the fixed port.
  int listen_port = -1;
  // UDP mode: socket-polling net worker threads. Each owns one socket and
  // one forwarding ring into the dispatcher; >1 requires reuseport so the
  // kernel shards flows across the sockets.
  uint32_t num_net_workers = 1;
  // UDP mode: SO_REUSEPORT sharding — N sockets bound to the same
  // address:port, kernel-steered by flow hash (the socket world's RSS).
  bool reuseport = false;
  // UDP mode: SO_RCVBUF/SO_SNDBUF request per socket (loopback bursts
  // overflow the default budget long before the NIC would).
  int socket_buffer_bytes = 1 << 20;

  // Net-worker pacing on empty polls (ring-mode dedicated net worker and
  // every UDP net worker). See src/net/poll_control.h.
  PollControlConfig poll;

  // Empty string = valid; otherwise a description of the misconfiguration.
  std::string Validate() const;
};

template <typename Frame>
class IngressSourceT {
 public:
  virtual ~IngressSourceT() = default;

  // Fills out[0..max_n) with up to max_n frames; returns the count (0 when
  // nothing is pending). Frames come out in arrival order per producer.
  virtual size_t PollBurst(Frame* out, size_t max_n) = 0;

  // Consumer found no work this round (see header comment).
  virtual void IdleHint() {}

  // Implementation name, for logs and the conformance tests.
  virtual const char* Name() const = 0;
};

// The runtime's packet-carrying instantiation.
using IngressSource = IngressSourceT<PacketRef>;

class EgressSink {
 public:
  virtual ~EgressSink() = default;

  // Transmits up to n response frames from TX context `queue`. Returns how
  // many frames the sink took ownership of (see header comment).
  virtual size_t SendBurst(const PacketRef* frames, size_t n,
                           uint32_t queue) = 0;

  virtual const char* Name() const = 0;
};

// An SPSC ring behind the IngressSource interface: the producer side is
// exposed via ring() (the ring-mode net worker forwards validated frames
// here; the fleet front-end's client Submit()s typed entries the same way).
template <typename Frame>
class RingIngressSource final : public IngressSourceT<Frame> {
 public:
  // depth must be a power of two; yield_on_idle maps the runtime's
  // cooperative-idling knob onto IdleHint.
  RingIngressSource(size_t depth, bool yield_on_idle)
      : ring_(depth), yield_on_idle_(yield_on_idle) {}

  SpscRing<Frame>& ring() { return ring_; }

  size_t PollBurst(Frame* out, size_t max_n) override {
    return ring_.TryPopBurst(out, max_n);
  }

  void IdleHint() override {
    if (yield_on_idle_) {
      std::this_thread::yield();
    }
  }

  const char* Name() const override { return "ring"; }

 private:
  SpscRing<Frame> ring_;
  bool yield_on_idle_;
};

// Direct NIC RX-queue poll (the paper's own arrangement: net worker and
// dispatcher share one hardware thread, so the dispatcher polls RX itself).
class NicIngressSource final : public IngressSource {
 public:
  NicIngressSource(SimulatedNic* nic, uint32_t queue, bool yield_on_idle)
      : nic_(nic), queue_(queue), yield_on_idle_(yield_on_idle) {}

  size_t PollBurst(PacketRef* out, size_t max_n) override {
    size_t n = 0;
    while (n < max_n && nic_->PollRx(queue_, &out[n])) {
      ++n;
    }
    return n;
  }

  void IdleHint() override {
    if (yield_on_idle_) {
      std::this_thread::yield();
    }
  }

  const char* Name() const override { return "nic"; }

 private:
  SimulatedNic* nic_;
  uint32_t queue_;
  bool yield_on_idle_;
};

// TX into the simulated NIC: frames land on the egress ring the in-process
// load generator drains (ownership passes to that consumer).
class NicEgressSink final : public EgressSink {
 public:
  explicit NicEgressSink(SimulatedNic* nic) : nic_(nic) {}

  size_t SendBurst(const PacketRef* frames, size_t n,
                   uint32_t queue) override {
    size_t sent = 0;
    while (sent < n && nic_->Transmit(queue, frames[sent])) {
      ++sent;
    }
    return sent;
  }

  const char* Name() const override { return "nic"; }

 private:
  SimulatedNic* nic_;
};

}  // namespace psp

#endif  // PSP_SRC_NET_INGRESS_H_
