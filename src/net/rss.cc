#include "src/net/rss.h"

namespace psp {
namespace {

// Feeds `bits` (given as a big-endian byte span) into the Toeplitz hash.
void HashBytes(const uint8_t* bytes, size_t len,
               const std::array<uint8_t, 40>& key, size_t* key_bit,
               uint32_t* result) {
  for (size_t i = 0; i < len; ++i) {
    const uint8_t byte = bytes[i];
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) {
        // 32-bit window of the key starting at *key_bit.
        uint32_t window = 0;
        const size_t base = *key_bit;
        for (int b = 0; b < 32; ++b) {
          const size_t kb = base + static_cast<size_t>(b);
          const uint8_t kbyte = key[(kb / 8) % key.size()];
          const uint8_t kbit = (kbyte >> (7 - kb % 8)) & 1;
          window = (window << 1) | kbit;
        }
        *result ^= window;
      }
      ++*key_bit;
    }
  }
}

}  // namespace

uint32_t ToeplitzHash(const FlowTuple& flow,
                      const std::array<uint8_t, 40>& key) {
  uint32_t result = 0;
  size_t key_bit = 0;

  const uint8_t src_addr[4] = {
      static_cast<uint8_t>(flow.src_addr >> 24),
      static_cast<uint8_t>(flow.src_addr >> 16),
      static_cast<uint8_t>(flow.src_addr >> 8),
      static_cast<uint8_t>(flow.src_addr)};
  const uint8_t dst_addr[4] = {
      static_cast<uint8_t>(flow.dst_addr >> 24),
      static_cast<uint8_t>(flow.dst_addr >> 16),
      static_cast<uint8_t>(flow.dst_addr >> 8),
      static_cast<uint8_t>(flow.dst_addr)};
  const uint8_t ports[4] = {
      static_cast<uint8_t>(flow.src_port >> 8),
      static_cast<uint8_t>(flow.src_port),
      static_cast<uint8_t>(flow.dst_port >> 8),
      static_cast<uint8_t>(flow.dst_port)};

  HashBytes(src_addr, 4, key, &key_bit, &result);
  HashBytes(dst_addr, 4, key, &key_bit, &result);
  HashBytes(ports, 4, key, &key_bit, &result);
  return result;
}

uint32_t RssQueueForFlow(const FlowTuple& flow, uint32_t num_queues) {
  if (num_queues == 0) {
    return 0;
  }
  return ToeplitzHash(flow) % num_queues;
}

}  // namespace psp
