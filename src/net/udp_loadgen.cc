#include "src/net/udp_loadgen.h"

#include <arpa/inet.h>
#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>

#include "src/net/packet.h"

namespace psp {
namespace {

// Datagram scratch: PSP header + payload must fit a standard frame's payload.
constexpr size_t kDatagramCap = kMaxPacketSize - kHeadersSize;

}  // namespace

UdpLoadGenerator::UdpLoadGenerator(std::vector<UdpRequestSpec> mix,
                                   UdpLoadGenConfig config)
    : mix_(std::move(mix)), config_(config) {
  assert(!mix_.empty());
  double total = 0;
  for (const auto& m : mix_) {
    total += m.ratio;
  }
  double acc = 0;
  for (const auto& m : mix_) {
    acc += m.ratio / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

UdpLoadGenReport UdpLoadGenerator::Run(std::string* error) {
  UdpLoadGenReport report;
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why + ": " + std::strerror(errno);
    }
    return report;
  };

  sockaddr_in server{};
  server.sin_family = AF_INET;
  server.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.host.c_str(), &server.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "cannot parse host '" + config_.host + "'";
    }
    return report;
  }

  std::vector<int> fds;
  const auto close_all = [&]() {
    for (int fd : fds) {
      ::close(fd);
    }
  };
  for (uint32_t i = 0; i < std::max(1u, config_.num_flows); ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      close_all();
      return fail("socket");
    }
    fds.push_back(fd);
    const int buf = config_.socket_buffer_bytes;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
    // connect() pins this flow's ephemeral source port — the reuseport
    // steering key — and lets us use send()/recv().
    if (::connect(fd, reinterpret_cast<sockaddr*>(&server), sizeof(server)) !=
        0) {
      close_all();
      return fail("connect");
    }
  }

  Rng rng(config_.seed);
  const TscClock& clock = TscClock::Global();
  const double gap_mean = 1e9 / config_.rate_rps;

  std::unordered_map<uint32_t, uint32_t> deadline_by_wire;
  for (const auto& m : mix_) {
    report.latency[m.wire_id];  // pre-create slots
    if (m.deadline_us > 0) {
      deadline_by_wire[m.wire_id] = m.deadline_us;
      report.deadline_checked[m.wire_id] = 0;
      report.deadline_missed[m.wire_id] = 0;
    }
  }

  const Nanos start = clock.Now();
  const uint64_t warmup_cutoff = static_cast<uint64_t>(
      config_.warmup_fraction * static_cast<double>(config_.total_requests));
  Nanos next_send = start;
  uint64_t sent = 0;
  uint64_t received = 0;
  Nanos last_activity = start;
  std::byte datagram[kDatagramCap];
  size_t drain_cursor = 0;
  // Scheduled send instants of in-flight sampled requests, keyed by
  // request_id (globally unique here — one counter across all flows). Small:
  // at most outstanding/sample_every entries.
  std::unordered_map<uint64_t, Nanos> sampled_due;

  // Pull one response off any client socket; false when all are empty.
  const auto drain_one = [&]() -> bool {
    for (size_t i = 0; i < fds.size(); ++i) {
      const int fd = fds[(drain_cursor + i) % fds.size()];
      std::byte in[kDatagramCap];
      const ssize_t r = ::recv(fd, in, sizeof(in), 0);
      if (r < static_cast<ssize_t>(sizeof(PspHeader))) {
        continue;
      }
      PspHeader psp;
      std::memcpy(&psp, in, sizeof(psp));
      if (psp.magic != PspHeader::kMagic) {
        continue;
      }
      const Nanos now = clock.Now();
      if (psp.request_id >= warmup_cutoff) {
        const Nanos latency = now - psp.client_timestamp;
        report.latency[psp.request_type].Add(latency);
        report.overall.Add(latency);
        if (const auto budget = deadline_by_wire.find(psp.request_type);
            budget != deadline_by_wire.end()) {
          ++report.deadline_checked[psp.request_type];
          if (latency > static_cast<Nanos>(budget->second) * kMicrosecond) {
            ++report.deadline_missed[psp.request_type];
          }
        }
        if ((psp.trace_flags & PspHeader::kFlagTraceSampled) != 0) {
          ClientSpanRecord rec;
          rec.request_id = psp.request_id;
          rec.flow = psp.client_id;
          rec.wire_type = psp.request_type;
          rec.send_ns = psp.client_timestamp;
          rec.recv_ns = now;
          rec.server_rx_ns = psp.server_rx_timestamp;
          rec.server_tx_ns = psp.server_tx_timestamp;
          const auto due = sampled_due.find(psp.request_id);
          rec.due_ns = due != sampled_due.end() ? due->second : rec.send_ns;
          report.samples.push_back(rec);
          // Sojourn is offset-free (both stamps on the server clock);
          // network time is what remains of the RTT. Guard against an
          // unstamped echo or cross-clock skew making either negative.
          if (rec.server_tx_ns >= rec.server_rx_ns && rec.server_rx_ns > 0) {
            const Nanos sojourn = rec.server_tx_ns - rec.server_rx_ns;
            report.server_sojourn[psp.request_type].Add(sojourn);
            if (latency >= sojourn) {
              report.net_time[psp.request_type].Add(latency - sojourn);
            }
          }
        }
      }
      if ((psp.trace_flags & PspHeader::kFlagTraceSampled) != 0) {
        sampled_due.erase(psp.request_id);
      }
      ++received;
      last_activity = now;
      drain_cursor = (drain_cursor + i) % fds.size();
      return true;
    }
    return false;
  };

  while (sent < config_.total_requests) {
    const Nanos now = clock.Now();
    if (now >= next_send) {
      const double u = rng.NextDouble();
      const size_t slot = static_cast<size_t>(
          std::upper_bound(cumulative_.begin(), cumulative_.end(), u) -
          cumulative_.begin());
      const auto& spec = mix_[std::min(slot, mix_.size() - 1)];

      const bool sampled =
          config_.sample_every > 0 && sent % config_.sample_every == 0;
      PspHeader psp;
      psp.magic = PspHeader::kMagic;
      psp.request_type = spec.wire_id;
      psp.request_id = sent;
      psp.client_id = static_cast<uint32_t>(sent % fds.size());
      psp.client_timestamp = clock.Now();
      psp.trace_flags = sampled ? PspHeader::kFlagTraceSampled : 0;
      psp.deadline_us = spec.deadline_us;
      psp.server_rx_timestamp = 0;
      psp.server_tx_timestamp = 0;
      if (sampled) {
        // `next_send` is still this request's scheduled instant; due→send
        // is the client-queue span in the joined trace.
        sampled_due[sent] = next_send;
      }
      const uint32_t payload_len =
          spec.build_payload
              ? spec.build_payload(
                    datagram + sizeof(PspHeader),
                    static_cast<uint32_t>(kDatagramCap - sizeof(PspHeader)),
                    rng)
              : 0;
      psp.payload_length = payload_len;
      std::memcpy(datagram, &psp, sizeof(psp));

      const int fd = fds[sent % fds.size()];
      if (::send(fd, datagram, sizeof(PspHeader) + payload_len, 0) < 0) {
        ++report.send_drops;
      }
      ++sent;
      // Open loop: next send time never depends on responses.
      double uu = rng.NextDouble();
      if (uu <= 0) {
        uu = 1e-18;
      }
      next_send += static_cast<Nanos>(-gap_mean * std::log(1.0 - uu)) + 1;
      last_activity = now;
    } else if (!drain_one()) {
      std::this_thread::yield();
    }
  }

  // Drain outstanding responses until quiescent or timeout. send_drops never
  // produce responses; anything else lost on the wire hits the timeout.
  while (received + report.send_drops < sent) {
    if (!drain_one()) {
      if (clock.Now() - last_activity > config_.drain_timeout) {
        break;
      }
      std::this_thread::yield();
    }
  }

  close_all();
  report.sent = sent;
  report.received = received;
  report.elapsed = clock.Now() - start;
  return report;
}

}  // namespace psp
