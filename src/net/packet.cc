#include "src/net/packet.h"

#include <algorithm>

namespace psp {
namespace {

constexpr std::array<uint8_t, 6> kClientMac = {0x02, 0x00, 0x00, 0x00, 0x00,
                                               0x01};
constexpr std::array<uint8_t, 6> kServerMac = {0x02, 0x00, 0x00, 0x00, 0x00,
                                               0x02};

}  // namespace

uint16_t Ipv4Checksum(const Ipv4Header& header) {
  // Sum 16-bit words with the checksum field treated as zero.
  Ipv4Header copy = header;
  copy.checksum = 0;
  const auto* words = reinterpret_cast<const uint16_t*>(&copy);
  uint32_t sum = 0;
  for (size_t i = 0; i < sizeof(Ipv4Header) / 2; ++i) {
    sum += words[i];
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint32_t BuildRequestPacket(const RequestFrame& frame, std::byte* buf,
                            size_t buf_size) {
  const uint32_t total = static_cast<uint32_t>(
      kHeadersSize + sizeof(PspHeader) + frame.payload_length);
  if (total > buf_size || total > kMaxPacketSize) {
    return 0;
  }

  auto* eth = reinterpret_cast<EthernetHeader*>(buf);
  eth->dst = kServerMac;
  eth->src = kClientMac;
  eth->ether_type = HostToNet16(EthernetHeader::kEtherTypeIpv4);

  auto* ip = reinterpret_cast<Ipv4Header*>(buf + sizeof(EthernetHeader));
  ip->version_ihl = 0x45;
  ip->tos = 0;
  ip->total_length = HostToNet16(static_cast<uint16_t>(
      total - sizeof(EthernetHeader)));
  ip->identification = 0;
  ip->flags_fragment = HostToNet16(0x4000);  // don't fragment
  ip->ttl = 64;
  ip->protocol = Ipv4Header::kProtocolUdp;
  ip->src_addr = HostToNet32(frame.flow.src_addr);
  ip->dst_addr = HostToNet32(frame.flow.dst_addr);
  ip->checksum = 0;
  ip->checksum = Ipv4Checksum(*ip);

  auto* udp = reinterpret_cast<UdpHeader*>(buf + sizeof(EthernetHeader) +
                                           sizeof(Ipv4Header));
  udp->src_port = HostToNet16(frame.flow.src_port);
  udp->dst_port = HostToNet16(frame.flow.dst_port);
  udp->length = HostToNet16(static_cast<uint16_t>(
      sizeof(UdpHeader) + sizeof(PspHeader) + frame.payload_length));
  udp->checksum = 0;  // optional for IPv4 UDP

  // The request header lands at offset 42 (unaligned): build it locally and
  // memcpy it into place.
  PspHeader psp;
  psp.magic = PspHeader::kMagic;
  psp.request_type = frame.request_type;
  psp.request_id = frame.request_id;
  psp.client_id = frame.client_id;
  psp.payload_length = frame.payload_length;
  psp.client_timestamp = frame.client_timestamp;
  psp.trace_flags = frame.trace_flags;
  psp.deadline_us = frame.deadline_us;
  psp.server_rx_timestamp = 0;
  psp.server_tx_timestamp = 0;
  std::memcpy(buf + kRequestOffset, &psp, sizeof(psp));

  if (frame.payload_length > 0 && frame.payload != nullptr) {
    std::memcpy(buf + kRequestOffset + sizeof(PspHeader), frame.payload,
                frame.payload_length);
  }
  return total;
}

uint32_t WrapDatagramFrame(std::byte* buf, uint32_t datagram_length,
                           const FlowTuple& flow, uint16_t ident) {
  const uint32_t total =
      static_cast<uint32_t>(kHeadersSize) + datagram_length;
  if (total > kMaxPacketSize) {
    return 0;
  }

  auto* eth = reinterpret_cast<EthernetHeader*>(buf);
  eth->dst = kServerMac;
  eth->src = kClientMac;
  eth->ether_type = HostToNet16(EthernetHeader::kEtherTypeIpv4);

  auto* ip = reinterpret_cast<Ipv4Header*>(buf + sizeof(EthernetHeader));
  ip->version_ihl = 0x45;
  ip->tos = 0;
  ip->total_length =
      HostToNet16(static_cast<uint16_t>(total - sizeof(EthernetHeader)));
  ip->identification = HostToNet16(ident);
  ip->flags_fragment = HostToNet16(0x4000);
  ip->ttl = 64;
  ip->protocol = Ipv4Header::kProtocolUdp;
  ip->src_addr = HostToNet32(flow.src_addr);
  ip->dst_addr = HostToNet32(flow.dst_addr);
  ip->checksum = 0;
  ip->checksum = Ipv4Checksum(*ip);

  auto* udp = reinterpret_cast<UdpHeader*>(buf + sizeof(EthernetHeader) +
                                           sizeof(Ipv4Header));
  udp->src_port = HostToNet16(flow.src_port);
  udp->dst_port = HostToNet16(flow.dst_port);
  udp->length = HostToNet16(
      static_cast<uint16_t>(sizeof(UdpHeader) + datagram_length));
  udp->checksum = 0;
  return total;
}

uint16_t FrameIdent(const std::byte* frame) {
  const auto* ip =
      reinterpret_cast<const Ipv4Header*>(frame + sizeof(EthernetHeader));
  return NetToHost16(ip->identification);
}

std::optional<ParsedRequest> ParseRequestPacket(const std::byte* data,
                                                uint32_t length) {
  if (length < kHeadersSize + sizeof(PspHeader)) {
    return std::nullopt;
  }
  const auto* eth = reinterpret_cast<const EthernetHeader*>(data);
  if (NetToHost16(eth->ether_type) != EthernetHeader::kEtherTypeIpv4) {
    return std::nullopt;
  }
  const auto* ip =
      reinterpret_cast<const Ipv4Header*>(data + sizeof(EthernetHeader));
  if (ip->version_ihl != 0x45 || ip->protocol != Ipv4Header::kProtocolUdp) {
    return std::nullopt;
  }
  const uint16_t ip_total = NetToHost16(ip->total_length);
  if (ip_total + sizeof(EthernetHeader) > length) {
    return std::nullopt;
  }
  const auto* udp = reinterpret_cast<const UdpHeader*>(
      data + sizeof(EthernetHeader) + sizeof(Ipv4Header));
  ParsedRequest out;
  PspHeader wire;
  std::memcpy(&wire, data + kRequestOffset, sizeof(PspHeader));
  out.psp.magic = wire.magic;
  out.psp.request_type = wire.request_type;
  out.psp.request_id = wire.request_id;
  out.psp.client_id = wire.client_id;
  out.psp.payload_length = wire.payload_length;
  out.psp.client_timestamp = wire.client_timestamp;
  out.psp.trace_flags = wire.trace_flags;
  out.psp.deadline_us = wire.deadline_us;
  out.psp.server_rx_timestamp = wire.server_rx_timestamp;
  out.psp.server_tx_timestamp = wire.server_tx_timestamp;
  if (out.psp.magic != PspHeader::kMagic) {
    return std::nullopt;
  }
  if (kRequestOffset + sizeof(PspHeader) + out.psp.payload_length > length) {
    return std::nullopt;
  }

  out.flow.src_addr = NetToHost32(ip->src_addr);
  out.flow.dst_addr = NetToHost32(ip->dst_addr);
  out.flow.src_port = NetToHost16(udp->src_port);
  out.flow.dst_port = NetToHost16(udp->dst_port);
  out.payload = data + kRequestOffset + sizeof(PspHeader);
  out.payload_length = out.psp.payload_length;
  return out;
}

uint32_t FormatResponseInPlace(std::byte* data, uint32_t response_payload_len) {
  auto* eth = reinterpret_cast<EthernetHeader*>(data);
  const std::array<uint8_t, 6> dst = eth->dst;
  eth->dst = eth->src;
  eth->src = dst;

  // Member-wise swaps via locals: packed struct members cannot be bound to
  // references (std::swap), and some sit at unaligned offsets.
  auto* ip = reinterpret_cast<Ipv4Header*>(data + sizeof(EthernetHeader));
  const uint32_t src_addr = ip->src_addr;
  ip->src_addr = ip->dst_addr;
  ip->dst_addr = src_addr;

  auto* udp = reinterpret_cast<UdpHeader*>(data + sizeof(EthernetHeader) +
                                           sizeof(Ipv4Header));
  const uint16_t src_port = udp->src_port;
  udp->src_port = udp->dst_port;
  udp->dst_port = src_port;

  // Unaligned in-place field update via memcpy.
  std::memcpy(data + kRequestOffset +
                  offsetof(PspHeader, payload_length),
              &response_payload_len, sizeof(response_payload_len));

  const uint32_t total = static_cast<uint32_t>(
      kHeadersSize + sizeof(PspHeader) + response_payload_len);
  ip->total_length =
      HostToNet16(static_cast<uint16_t>(total - sizeof(EthernetHeader)));
  ip->checksum = 0;
  ip->checksum = Ipv4Checksum(*ip);
  udp->length = HostToNet16(static_cast<uint16_t>(
      sizeof(UdpHeader) + sizeof(PspHeader) + response_payload_len));
  return total;
}

void StampServerTimestamps(std::byte* frame, Nanos server_rx,
                           Nanos server_tx) {
  const int64_t rx = server_rx;
  const int64_t tx = server_tx;
  std::memcpy(frame + kRequestOffset + offsetof(PspHeader, server_rx_timestamp),
              &rx, sizeof(rx));
  std::memcpy(frame + kRequestOffset + offsetof(PspHeader, server_tx_timestamp),
              &tx, sizeof(tx));
}

}  // namespace psp
