// Socket-side open-loop load generator: the external client for the UDP
// ingress frontend. Plays the same role as the in-process LoadGenerator
// (src/runtime/loadgen.h) — Poisson arrivals of typed requests, client-side
// latency histograms — but speaks real datagrams from its own process, so it
// measures the full path: kernel TX, loopback/NIC, recvmmsg net worker,
// dispatch, worker, sendmsg back.
//
// Deliberately depends only on src/common + the wire format: tools/psp_loadgen
// links this without pulling in the server runtime.
#ifndef PSP_SRC_NET_UDP_LOADGEN_H_
#define PSP_SRC_NET_UDP_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/time.h"

namespace psp {

// One request type in the client mix (wire-level: no TypeId/registry here).
// build_payload fills the application payload after the PSP header and
// returns its length.
struct UdpRequestSpec {
  uint32_t wire_id = 0;
  std::string name;
  double ratio = 0;
  std::function<uint32_t(std::byte* payload, uint32_t capacity, Rng& rng)>
      build_payload;
};

struct UdpLoadGenConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double rate_rps = 2000;
  uint64_t total_requests = 1000;
  uint64_t seed = 1;
  // Client sockets. Each connect()s from its own ephemeral source port, so
  // with the server in reuseport mode the kernel spreads these flows across
  // the net-worker shards. Requests round-robin over the flows.
  uint32_t num_flows = 1;
  // Discard this fraction of earliest sends from the report (matches the
  // in-process LoadGenerator's warmup handling).
  double warmup_fraction = 0.1;
  // Give up waiting for outstanding responses this long after the last
  // activity (datagrams are lossy by design).
  Nanos drain_timeout = 500 * kMillisecond;
  int socket_buffer_bytes = 1 << 20;
};

struct UdpLoadGenReport {
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t send_drops = 0;  // kernel refused the datagram (buffer full)
  Nanos elapsed = 0;
  std::map<uint32_t, Histogram> latency;  // client-observed RTT per wire_id
  Histogram overall;

  double AchievedRps() const {
    return elapsed > 0
               ? static_cast<double>(sent) * 1e9 / static_cast<double>(elapsed)
               : 0;
  }
};

class UdpLoadGenerator {
 public:
  UdpLoadGenerator(std::vector<UdpRequestSpec> mix, UdpLoadGenConfig config);

  // Opens the client sockets, runs the open loop in the calling thread until
  // every request is sent and responses are drained (or the drain timeout
  // expires), then closes the sockets. On socket setup failure, returns a
  // report with sent == 0 and puts the reason in *error if non-null.
  UdpLoadGenReport Run(std::string* error = nullptr);

 private:
  std::vector<UdpRequestSpec> mix_;
  std::vector<double> cumulative_;
  UdpLoadGenConfig config_;
};

}  // namespace psp

#endif  // PSP_SRC_NET_UDP_LOADGEN_H_
