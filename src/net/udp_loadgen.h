// Socket-side open-loop load generator: the external client for the UDP
// ingress frontend. Plays the same role as the in-process LoadGenerator
// (src/runtime/loadgen.h) — Poisson arrivals of typed requests, client-side
// latency histograms — but speaks real datagrams from its own process, so it
// measures the full path: kernel TX, loopback/NIC, recvmmsg net worker,
// dispatch, worker, sendmsg back.
//
// Deliberately depends only on src/common + the wire format: tools/psp_loadgen
// links this without pulling in the server runtime.
#ifndef PSP_SRC_NET_UDP_LOADGEN_H_
#define PSP_SRC_NET_UDP_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/time.h"

namespace psp {

// One request type in the client mix (wire-level: no TypeId/registry here).
// build_payload fills the application payload after the PSP header and
// returns its length.
struct UdpRequestSpec {
  uint32_t wire_id = 0;
  std::string name;
  double ratio = 0;
  // Latency budget stamped into the wire header (PspHeader::deadline_us);
  // 0 = no deadline. The server turns it into an absolute deadline at
  // ingress; the client also judges its own RTT against it (miss accounting).
  uint32_t deadline_us = 0;
  std::function<uint32_t(std::byte* payload, uint32_t capacity, Rng& rng)>
      build_payload;
};

struct UdpLoadGenConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double rate_rps = 2000;
  uint64_t total_requests = 1000;
  uint64_t seed = 1;
  // Client sockets. Each connect()s from its own ephemeral source port, so
  // with the server in reuseport mode the kernel spreads these flows across
  // the net-worker shards. Requests round-robin over the flows.
  uint32_t num_flows = 1;
  // Discard this fraction of earliest sends from the report (matches the
  // in-process LoadGenerator's warmup handling).
  double warmup_fraction = 0.1;
  // Give up waiting for outstanding responses this long after the last
  // activity (datagrams are lossy by design).
  Nanos drain_timeout = 500 * kMillisecond;
  int socket_buffer_bytes = 1 << 20;
  // Distributed-tracing sampling: every Nth request carries the PSP
  // kFlagTraceSampled bit (forcing a server-side lifecycle record) and
  // produces a ClientSpanRecord on the response. 0 disables tracing.
  uint32_t sample_every = 0;
};

// Client-side view of one sampled request, all client-clock nanoseconds
// except the echoed server stamps (server clock; the trace join aligns the
// domains by min-one-way-delay). due_ns is the open-loop scheduled send
// instant, so due→send is client-queue time (send-loop backlog).
struct ClientSpanRecord {
  uint64_t request_id = 0;
  uint32_t flow = 0;       // wire client_id (socket index)
  uint32_t wire_type = 0;  // request_type on the wire
  Nanos due_ns = 0;
  Nanos send_ns = 0;
  Nanos recv_ns = 0;
  Nanos server_rx_ns = 0;  // server clock, 0 if the server did not stamp
  Nanos server_tx_ns = 0;  // server clock
};

struct UdpLoadGenReport {
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t send_drops = 0;  // kernel refused the datagram (buffer full)
  Nanos elapsed = 0;
  std::map<uint32_t, Histogram> latency;  // client-observed RTT per wire_id
  Histogram overall;
  // Client-side deadline accounting per wire_id (post-warmup, like the
  // histograms; only populated for types with deadline_us > 0): responses
  // received, and how many of them exceeded the type's budget end-to-end.
  std::map<uint32_t, uint64_t> deadline_checked;
  std::map<uint32_t, uint64_t> deadline_missed;
  // Sampled per-request records (empty unless config.sample_every > 0),
  // in receive order. Post-warmup requests only, like the histograms.
  std::vector<ClientSpanRecord> samples;
  // Network-time decomposition over the sampled subset, per wire_id:
  // server sojourn (server_tx - server_rx, offset-free — both stamps share
  // the server clock) and network time (RTT minus sojourn: kernel TX path,
  // wire both ways, kernel RX path, and both NIC queues).
  std::map<uint32_t, Histogram> server_sojourn;
  std::map<uint32_t, Histogram> net_time;

  double AchievedRps() const {
    return elapsed > 0
               ? static_cast<double>(sent) * 1e9 / static_cast<double>(elapsed)
               : 0;
  }
};

class UdpLoadGenerator {
 public:
  UdpLoadGenerator(std::vector<UdpRequestSpec> mix, UdpLoadGenConfig config);

  // Opens the client sockets, runs the open loop in the calling thread until
  // every request is sent and responses are drained (or the drain timeout
  // expires), then closes the sockets. On socket setup failure, returns a
  // report with sent == 0 and puts the reason in *error if non-null.
  UdpLoadGenReport Run(std::string* error = nullptr);

 private:
  std::vector<UdpRequestSpec> mix_;
  std::vector<double> cumulative_;
  UdpLoadGenConfig config_;
};

}  // namespace psp

#endif  // PSP_SRC_NET_UDP_LOADGEN_H_
