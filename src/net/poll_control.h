// Net-worker poll pacing: how an ingress poll loop behaves when a round finds
// no packets. The paper's testbed busy-polls (one isolated core per role);
// Metronome (PAPERS.md, "adaptive and precise intermittent packet retrieval")
// shows that an idle net worker can instead sleep in short, adaptively sized
// increments and trade CPU for a *bounded* wakeup latency — exactly the knob
// a kernel-socket ingress needs so DARC's deliberate idling does not turn
// into a silently burning core per UDP shard.
//
// Policies:
//   kBusy     pure spin: lowest wakeup latency, one full core per poller.
//   kYield    cooperative spin (sched_yield per empty round): the default, and
//             the only livelock-free choice on machines with fewer cores than
//             threads.
//   kAdaptive Metronome-style: spin/yield through a short idle streak, then
//             nanosleep with exponential backoff from `min_sleep` capped at
//             `wakeup_budget` — the worst case added to a packet that arrives
//             just after the poller dozes off. Any work resets the backoff.
#ifndef PSP_SRC_NET_POLL_CONTROL_H_
#define PSP_SRC_NET_POLL_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "src/common/time.h"

namespace psp {

enum class PollPolicy { kBusy, kYield, kAdaptive };

inline const char* PollPolicyName(PollPolicy policy) {
  switch (policy) {
    case PollPolicy::kBusy:
      return "busy";
    case PollPolicy::kYield:
      return "yield";
    case PollPolicy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

struct PollControlConfig {
  PollPolicy policy = PollPolicy::kYield;
  // kAdaptive: empty poll rounds tolerated (spinning) before the first sleep.
  uint32_t idle_streak_before_sleep = 64;
  // kAdaptive: first sleep length; doubles per additional idle round.
  Nanos min_sleep = 2 * kMicrosecond;
  // kAdaptive: cap on any single sleep = the wakeup-latency budget, the worst
  // case added to a frame arriving the instant the poller goes to sleep.
  Nanos wakeup_budget = 100 * kMicrosecond;

  // Empty string = valid; otherwise a description of the misconfiguration.
  std::string Validate() const {
    if (policy != PollPolicy::kAdaptive) {
      return "";
    }
    if (min_sleep <= 0) {
      return "poll: adaptive policy needs min_sleep > 0";
    }
    if (wakeup_budget < min_sleep) {
      return "poll: wakeup_budget must be >= min_sleep (the budget caps each "
             "sleep)";
    }
    if (idle_streak_before_sleep == 0) {
      return "poll: idle_streak_before_sleep must be > 0 (sleeping on the "
             "first empty poll would add the budget to every packet gap)";
    }
    return "";
  }
};

// One controller per poll loop (single caller thread); the sleep counters are
// atomics so telemetry snapshots can read them from other threads mid-run.
class PollController {
 public:
  explicit PollController(const PollControlConfig& config) : config_(config) {}

  // The poll round made progress: reset the idle streak and backoff.
  void OnWork() {
    idle_streak_ = 0;
    next_sleep_ = 0;
  }

  // The poll round found nothing: spin, yield, or sleep per policy.
  void OnIdle() {
    switch (config_.policy) {
      case PollPolicy::kBusy:
        return;
      case PollPolicy::kYield:
        std::this_thread::yield();
        return;
      case PollPolicy::kAdaptive:
        if (++idle_streak_ <= config_.idle_streak_before_sleep) {
          std::this_thread::yield();
          return;
        }
        if (next_sleep_ <= 0) {
          next_sleep_ = config_.min_sleep;
        }
        std::this_thread::sleep_for(std::chrono::nanoseconds(next_sleep_));
        sleeps_.fetch_add(1, std::memory_order_relaxed);
        slept_nanos_.fetch_add(static_cast<uint64_t>(next_sleep_),
                               std::memory_order_relaxed);
        next_sleep_ = next_sleep_ < config_.wakeup_budget / 2
                          ? next_sleep_ * 2
                          : config_.wakeup_budget;
        return;
    }
  }

  // The sleep the *next* idle round beyond the streak would take (test hook).
  Nanos next_sleep() const { return next_sleep_; }
  uint64_t sleeps() const { return sleeps_.load(std::memory_order_relaxed); }
  Nanos slept_nanos() const {
    return static_cast<Nanos>(slept_nanos_.load(std::memory_order_relaxed));
  }
  const PollControlConfig& config() const { return config_; }

 private:
  PollControlConfig config_;
  uint32_t idle_streak_ = 0;
  Nanos next_sleep_ = 0;
  std::atomic<uint64_t> sleeps_{0};
  std::atomic<uint64_t> slept_nanos_{0};
};

}  // namespace psp

#endif  // PSP_SRC_NET_POLL_CONTROL_H_
