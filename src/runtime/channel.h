// Dispatcher ↔ worker communication channel (paper §4.3.2): a pair of
// single-producer single-consumer rings carrying work orders one way and
// completion signals the other, in the lockless Barrelfish-inspired pattern.
#ifndef PSP_SRC_RUNTIME_CHANNEL_H_
#define PSP_SRC_RUNTIME_CHANNEL_H_

#include <memory>

#include "src/common/spsc_ring.h"
#include "src/core/request.h"

namespace psp {

// Dispatcher -> worker: run this request.
struct WorkOrder {
  uint64_t request_id = 0;
  TypeIndex type = kInvalidTypeIndex;
  Nanos arrival = 0;
  void* payload = nullptr;      // NIC buffer (zero-copy handoff)
  uint32_t payload_length = 0;
  uint32_t frame_length = 0;    // full frame length for TX reuse
  // Wire identity (PSP header request_id / client_id) carried through so the
  // worker can commit it with the lifecycle record for cross-process joins.
  uint64_t wire_id = 0;
  uint32_t client_id = 0;
  // Absolute deadline (deadline tier; 0 = none), echoed back on the
  // completion signal so the dispatcher can count misses without a lookup.
  Nanos deadline = 0;
  // Lifecycle trace stamps accumulated on the dispatcher side; the worker
  // adds its stages and commits the record (inert unless trace.sampled).
  TraceContext trace;
};

// Worker -> dispatcher: request done; profiled service time attached so the
// dispatcher can update the type's profile (§4.3.3). The original arrival
// stamp rides along so the dispatcher can compute the end-to-end sojourn for
// the time-series recorder without a lookup table.
struct CompletionSignal {
  uint64_t request_id = 0;
  TypeIndex type = kInvalidTypeIndex;
  Nanos arrival = 0;
  Nanos service_time = 0;
  Nanos deadline = 0;  // absolute deadline carried from the work order
};

class WorkerChannel {
 public:
  // Burst width for the dispatcher's per-channel drains: deep enough to
  // absorb a busy worker's backlog in one index update, small enough to live
  // on the dispatcher's stack.
  static constexpr size_t kCompletionBurst = 16;

  explicit WorkerChannel(size_t depth)
      : orders_(depth), completions_(depth) {}

  // Dispatcher side.
  bool PushOrder(const WorkOrder& order) { return orders_.TryPush(order); }
  bool PopCompletion(CompletionSignal* out) {
    return completions_.TryPop(out);
  }
  // Drains up to `max_n` completion signals with one shared-index update
  // (DPDK rx_burst-style; see SpscRing::TryPopBurst).
  size_t PopCompletionBurst(CompletionSignal* out, size_t max_n) {
    return completions_.TryPopBurst(out, max_n);
  }

  // Worker side.
  bool PopOrder(WorkOrder* out) { return orders_.TryPop(out); }
  size_t PopOrderBurst(WorkOrder* out, size_t max_n) {
    return orders_.TryPopBurst(out, max_n);
  }
  bool PushCompletion(const CompletionSignal& signal) {
    return completions_.TryPush(signal);
  }

 private:
  SpscRing<WorkOrder> orders_;
  SpscRing<CompletionSignal> completions_;
};

}  // namespace psp

#endif  // PSP_SRC_RUNTIME_CHANNEL_H_
