#include "src/runtime/loadgen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>

#include "src/net/packet.h"

namespace psp {

LoadGenerator::LoadGenerator(Persephone* server,
                             std::vector<ClientRequestSpec> mix,
                             LoadGenConfig config)
    : server_(server), mix_(std::move(mix)), config_(config) {
  assert(!mix_.empty());
  double total = 0;
  for (const auto& m : mix_) {
    total += m.ratio;
  }
  double acc = 0;
  for (const auto& m : mix_) {
    acc += m.ratio / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

LoadGenReport LoadGenerator::Run() {
  LoadGenReport report;
  Rng rng(config_.seed);
  BufferCache cache(&server_->pool());
  const TscClock& clock = TscClock::Global();
  const double gap_mean = 1e9 / config_.rate_rps;

  for (const auto& m : mix_) {
    report.latency[m.wire_id];  // pre-create slots
  }

  const Nanos start = clock.Now();
  const uint64_t warmup_cutoff = static_cast<uint64_t>(
      config_.warmup_fraction * static_cast<double>(config_.total_requests));
  Nanos next_send = start;
  uint64_t sent = 0;
  uint64_t received = 0;
  Nanos last_activity = start;

  const auto drain_one = [&]() -> bool {
    PacketRef pkt;
    if (!server_->nic().PollEgress(&pkt)) {
      return false;
    }
    const Nanos now = clock.Now();
    const auto parsed = ParseRequestPacket(pkt.data, pkt.length);
    if (parsed.has_value()) {
      const Nanos latency = now - parsed->psp.client_timestamp;
      // request_id doubles as the send sequence number for warmup filtering.
      if (parsed->psp.request_id >= warmup_cutoff) {
        report.latency[parsed->psp.request_type].Add(latency);
        report.overall.Add(latency);
      }
      ++received;
    }
    server_->pool().FreeGlobal(pkt.data);
    last_activity = now;
    return true;
  };

  while (sent < config_.total_requests) {
    const Nanos now = clock.Now();
    if (now >= next_send) {
      // Pick a type by ratio.
      const double u = rng.NextDouble();
      const size_t slot = static_cast<size_t>(
          std::upper_bound(cumulative_.begin(), cumulative_.end(), u) -
          cumulative_.begin());
      const auto& spec = mix_[std::min(slot, mix_.size() - 1)];

      std::byte* buf = cache.Alloc();
      if (buf == nullptr) {
        // Pool exhausted: drain responses to recycle buffers.
        while (!drain_one()) {
          std::this_thread::yield();
        }
        continue;
      }
      std::byte payload_scratch[1024];
      const uint32_t payload_len =
          spec.build_payload
              ? spec.build_payload(payload_scratch, sizeof(payload_scratch),
                                   rng)
              : 0;
      RequestFrame frame;
      frame.flow = FlowTuple{0x0A000001u + static_cast<uint32_t>(rng.NextBounded(6)),
                             0x0A0000FF, static_cast<uint16_t>(rng.NextBounded(60000) + 1024),
                             6789};
      frame.request_type = spec.wire_id;
      frame.request_id = sent;
      frame.client_id = 1;
      frame.client_timestamp = clock.Now();
      frame.payload = payload_scratch;
      frame.payload_length = payload_len;
      const uint32_t len =
          BuildRequestPacket(frame, buf, server_->pool().buffer_size());
      assert(len > 0);
      if (!server_->nic().DeliverToQueue(0, PacketRef{buf, len})) {
        ++report.send_drops;
        cache.Free(buf);
      }
      ++sent;
      // Open loop: the next send time does not depend on responses.
      double uu = rng.NextDouble();
      if (uu <= 0) {
        uu = 1e-18;
      }
      next_send += static_cast<Nanos>(-gap_mean * std::log(1.0 - uu)) + 1;
      last_activity = now;
    } else if (!drain_one()) {
      std::this_thread::yield();
    }
  }

  // Drain outstanding responses until quiescent or timeout.
  while (received + report.send_drops < sent) {
    if (!drain_one()) {
      if (clock.Now() - last_activity > config_.drain_timeout) {
        break;
      }
      std::this_thread::yield();
    }
  }

  report.sent = sent;
  report.received = received;
  report.elapsed = clock.Now() - start;
  return report;
}

}  // namespace psp
