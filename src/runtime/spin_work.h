// Calibrated busy-work for synthetic service times in the threaded runtime
// (the stand-in for the paper's spin-loop workloads, §5.1).
#ifndef PSP_SRC_RUNTIME_SPIN_WORK_H_
#define PSP_SRC_RUNTIME_SPIN_WORK_H_

#include <cstdint>

#include "src/common/time.h"

namespace psp {

// Spins the CPU for approximately `duration` using the calibrated TSC clock.
// Precision is sub-microsecond on an idle core.
inline void SpinFor(Nanos duration) {
  const TscClock& clock = TscClock::Global();
  clock.SpinUntil(clock.Now() + duration);
}

// A deterministic integer workload that cannot be optimised away; used where
// pure spinning would let the CPU idle-boost and skew calibration.
inline uint64_t ChurnFor(Nanos duration) {
  const TscClock& clock = TscClock::Global();
  const Nanos deadline = clock.Now() + duration;
  uint64_t acc = 0x9E3779B97F4A7C15ULL;
  while (clock.Now() < deadline) {
    acc ^= acc << 13;
    acc ^= acc >> 7;
    acc ^= acc << 17;
  }
  return acc;
}

}  // namespace psp

#endif  // PSP_SRC_RUNTIME_SPIN_WORK_H_
