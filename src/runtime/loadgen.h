// In-process open-loop load generator: plays the role of the paper's client
// machines (§5.1) against the threaded runtime. Generates Poisson arrivals of
// typed requests, timestamps them in the request header, drains responses
// from the NIC egress, and reports client-observed latency per type.
#ifndef PSP_SRC_RUNTIME_LOADGEN_H_
#define PSP_SRC_RUNTIME_LOADGEN_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/runtime/persephone.h"

namespace psp {

// One request type in the client mix. build_payload fills the application
// payload (after the PSP header) and returns its length.
struct ClientRequestSpec {
  TypeId wire_id = 0;
  std::string name;
  double ratio = 0;
  std::function<uint32_t(std::byte* payload, uint32_t capacity, Rng& rng)>
      build_payload;
};

struct LoadGenConfig {
  double rate_rps = 20000;
  uint64_t total_requests = 10000;
  uint64_t seed = 1;
  // Give up waiting for outstanding responses this long after the last send
  // (covers flow-control drops).
  Nanos drain_timeout = 500 * kMillisecond;
  // Discard this fraction of earliest sends from the report.
  double warmup_fraction = 0.1;
};

struct LoadGenReport {
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t send_drops = 0;  // NIC RX queue full at delivery
  Nanos elapsed = 0;
  std::map<TypeId, Histogram> latency;  // client-observed, per type
  Histogram overall;

  double AchievedRps() const {
    return elapsed > 0
               ? static_cast<double>(sent) * 1e9 / static_cast<double>(elapsed)
               : 0;
  }
};

class LoadGenerator {
 public:
  LoadGenerator(Persephone* server, std::vector<ClientRequestSpec> mix,
                LoadGenConfig config);

  // Runs in the calling thread until all requests are sent and responses
  // drained (or the drain timeout expires).
  LoadGenReport Run();

 private:
  Persephone* server_;
  std::vector<ClientRequestSpec> mix_;
  std::vector<double> cumulative_;
  LoadGenConfig config_;
};

}  // namespace psp

#endif  // PSP_SRC_RUNTIME_LOADGEN_H_
