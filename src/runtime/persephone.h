// The threaded Perséphone runtime (paper §4.3): a net-worker/dispatcher
// thread running the DARC scheduler, plus application worker threads, all
// communicating over lock-free SPSC channels and a shared NIC buffer pool.
//
// This is the execution engine a real deployment would use; the simulated NIC
// stands in for DPDK hardware queues (see DESIGN.md). An in-process load
// generator (LoadGenerator) plays the role of the client machines.
//
// Threading model:
//   * exactly one dispatcher thread: polls NIC RX, parses + classifies,
//     enqueues into typed queues, runs Algorithm 1, pushes work orders;
//   * N application worker threads: pop orders, invoke the registered
//     handler, format the response into the same buffer (zero-copy), TX via
//     their private network context, signal completion.
#ifndef PSP_SRC_RUNTIME_PERSEPHONE_H_
#define PSP_SRC_RUNTIME_PERSEPHONE_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/memory_pool.h"
#include "src/core/classifier.h"
#include "src/core/scheduler.h"
#include "src/introspect/admin.h"
#include "src/introspect/outliers.h"
#include "src/net/ingress.h"
#include "src/net/nic.h"
#include "src/net/udp_ingress.h"
#include "src/profile/sampler.h"
#include "src/runtime/channel.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeledger.h"

namespace psp {

// Application logic for one request type. Receives the request payload (the
// bytes after the PSP header) and a scratch view of the same buffer to write
// the response payload into. Returns the response payload length.
using RequestHandler = std::function<uint32_t(
    const std::byte* payload, uint32_t payload_length, std::byte* response,
    uint32_t response_capacity)>;

struct RuntimeConfig {
  uint32_t num_workers = 2;
  SchedulerConfig scheduler;
  size_t channel_depth = 512;
  size_t nic_queue_depth = 1024;
  size_t pool_buffers = 8192;
  // Cooperative yielding keeps the runtime functional on machines with fewer
  // cores than threads (true busy-poll pins one core per thread, as on the
  // paper's testbed).
  bool yield_when_idle = true;
  // Best-effort CPU pinning (the paper's testbed pins every role to a
  // dedicated core via isolcpus). Core map, with T = net-worker thread count
  // (0 on the inline ring path, 1 for ring + dedicated_net_worker,
  // ingress.num_net_workers in udp mode), everything modulo the online core
  // count:
  //   core 0              dispatcher, sharing with net worker 0 when one
  //                       exists (the paper's shared-hardware-thread
  //                       arrangement, §5.1)
  //   cores 1 .. T-1      net workers 1 .. T-1 (udp mode with several shards)
  //   core max(1,T) + w   application worker w
  // No-op when the machine has fewer than two cores or pinning is
  // unsupported.
  bool pin_threads = false;
  // Ingress frontend: where request frames come from (in-process ring vs
  // kernel UDP sockets), net-worker threading and poll pacing. See
  // src/net/ingress.h.
  IngressConfig ingress;
  // Observability: lifecycle-trace sampling + ring sizing (see
  // src/telemetry/telemetry.h). Counters are always on.
  TelemetryConfig telemetry;
  // Live introspection plane (off by default): loopback HTTP endpoint serving
  // /metrics, snapshots, on-demand trace capture and runtime config. See
  // src/introspect/admin.h and docs/OBSERVABILITY.md, "Live introspection".
  AdminConfig admin;
  // Tail-outlier capture: K slowest sampled requests per type per window,
  // served at /outliers.json. Requires tracing (the feed is sampled traces).
  OutlierConfig outliers;

  // Empty string = valid; otherwise a description of the misconfiguration.
  // Persephone's constructor calls this (plus scheduler.Validate with the
  // effective worker count) and throws std::invalid_argument.
  std::string Validate() const;
};

// Per-worker occupancy since Start(): busy time is accumulated while a
// handler runs, so busy/wall exposes DARC's deliberate idling per core.
// worker_utilization() snapshots busy and wall consistently (wall is derived
// after busy is read, and never reported smaller than busy), so the fraction
// is meaningful even mid-run.
struct WorkerUtilization {
  Nanos busy = 0;
  Nanos wall = 0;
  uint64_t requests = 0;

  double BusyFraction() const {
    if (wall <= 0) {
      return 0.0;
    }
    const double f = static_cast<double>(busy) / static_cast<double>(wall);
    return f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f);
  }
};

class Persephone {
 public:
  explicit Persephone(RuntimeConfig config);
  ~Persephone();

  Persephone(const Persephone&) = delete;
  Persephone& operator=(const Persephone&) = delete;

  // --- Setup (before Start) -------------------------------------------------
  void set_classifier(std::unique_ptr<RequestClassifier> classifier) {
    classifier_ = std::move(classifier);
  }

  // Registers a request type with its application handler. Seeds let DARC
  // start with a steady-state reservation; pass 0/0 to rely on profiling.
  TypeIndex RegisterType(TypeId wire_id, std::string name,
                         RequestHandler handler, Nanos expected_mean = 0,
                         double expected_ratio = 0);

  // Handler for UNKNOWN requests (optional; default echoes 0 bytes).
  void set_unknown_handler(RequestHandler handler);

  // --- Lifecycle --------------------------------------------------------------
  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- Client-facing (the "wire") ---------------------------------------------
  SimulatedNic& nic() { return *nic_; }
  MemoryPool& pool() { return *pool_; }

  // UDP mode: the bound listen port (resolves an ephemeral bind; valid after
  // Start()). 0 in ring mode or before the sockets are open.
  uint16_t udp_port() const { return udp_ ? udp_->port() : 0; }
  // UDP mode: the socket frontend, for its counters (nullptr in ring mode).
  const UdpIngress* udp_ingress() const { return udp_.get(); }

  const DarcScheduler& scheduler() const { return *scheduler_; }

  // --- Observability ----------------------------------------------------------
  // The unified introspection surface: counters, gauges, per-worker
  // utilization, scheduler state and sampled lifecycle traces, in one
  // self-contained snapshot. Safe to call while the server runs.
  TelemetrySnapshot telemetry_snapshot() const;
  Telemetry& telemetry() { return *telemetry_; }
  const Telemetry& telemetry() const { return *telemetry_; }

  // The admin plane, when config.admin.enabled (nullptr otherwise). Started
  // and stopped with the runtime; admin_port() resolves an ephemeral bind.
  const AdminServer* admin() const { return admin_.get(); }
  uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }
  // The tail-outlier recorder, when config.outliers.enabled.
  const OutlierRecorder* outliers() const { return outliers_.get(); }

  // Occupancy snapshot for worker `id` (valid after Start()).
  WorkerUtilization worker_utilization(uint32_t id) const;
  uint32_t num_workers() const { return config_.num_workers; }

  // The worker time-provenance ledger: per-worker wall time decomposed into
  // busy/steal/reserved_idle/free_idle (worker slots, stamped by the
  // scheduler on the dispatcher thread) plus poll_spin/dispatch_overhead
  // (the dispatcher pseudo-slot, classified per loop iteration).
  const WorkerTimeLedger& time_ledger() const { return time_ledger_; }

  // The in-process sampling profiler (always constructed; does nothing until
  // armed via Start or the admin plane's POST /profile/start).
  CpuSampler& cpu_sampler() { return *cpu_sampler_; }

 private:
  void NetWorkerLoop();
  void DispatcherLoop();
  void WorkerLoop(uint32_t worker_id);
  // Low-overhead time-series watchdog (only spawned when the recorder is
  // enabled): closes due intervals during idle stretches and triggers any
  // pending SLO flight-recorder dump. Sleeps, never busy-polls.
  void SamplerLoop();
  // Stamps queue depths, reserved shares and per-worker busy fractions into
  // a closing interval (recorder gauge hook; runs under the roll lock).
  void SampleTimeSeriesGauges(IntervalRecord* rec);
  // Ingress burst width (dispatcher RX batches, net-worker forwarding): the
  // DPDK-conventional 16 — deep enough to amortise the shared-index update,
  // shallow enough not to add queueing delay at the dispatch stage.
  static constexpr size_t kIngressBurst = 16;

  // Net-worker threads this configuration runs (see the pin_threads core
  // map): 0 on the inline ring path, 1 for ring + dedicated_net_worker,
  // ingress.num_net_workers in udp mode.
  uint32_t NumNetThreads() const {
    if (config_.ingress.mode == IngressMode::kUdp) {
      return config_.ingress.num_net_workers;
    }
    return config_.ingress.dedicated_net_worker ? 1 : 0;
  }
  // Parses, classifies and enqueues one ingress frame (dispatcher thread).
  void IngestPacket(const PacketRef& packet, Nanos now, TraceSampler* sampler,
                    TimeSeriesRecorder* ts);
  void IdlePause() const {
    if (config_.yield_when_idle) {
      std::this_thread::yield();
    }
  }

  // Builds the AdminHooks bundle wiring the endpoint to this runtime.
  AdminHooks MakeAdminHooks();
  // Applies one POST /config key=value pair; "" on success, else the error.
  std::string ApplyConfigKey(const std::string& key, const std::string& value);

  RuntimeConfig config_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<MemoryPool> pool_;
  std::unique_ptr<SimulatedNic> nic_;
  std::unique_ptr<DarcScheduler> scheduler_;
  std::unique_ptr<RequestClassifier> classifier_;
  std::vector<std::unique_ptr<WorkerChannel>> channels_;
  // The ingress/egress seam (src/net/ingress.h). Exactly one owning pair is
  // populated per mode; the raw pointers are what the engine threads use:
  //   ring, inline:    nic_source_ + nic_sink_ (dispatcher polls RX itself)
  //   ring, dedicated: ring_source_ + nic_sink_ (net worker feeds the ring)
  //   udp:             udp_ is both source and sink
  std::unique_ptr<NicIngressSource> nic_source_;
  std::unique_ptr<RingIngressSource<PacketRef>> ring_source_;
  std::unique_ptr<NicEgressSink> nic_sink_;
  std::unique_ptr<UdpIngress> udp_;
  IngressSource* ingress_source_ = nullptr;
  EgressSink* egress_sink_ = nullptr;
  std::vector<RequestHandler> handlers_;  // indexed by TypeIndex
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  struct WorkerCounters {
    std::atomic<uint64_t> busy{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<int64_t> started_at{0};
  };
  std::vector<std::unique_ptr<WorkerCounters>> worker_counters_;

  // Registry-owned counters resolved once at construction; completed/dropped
  // live in the scheduler (single source of truth, no double counting).
  Counter* rx_packets_ = nullptr;
  Counter* malformed_ = nullptr;
  uint64_t next_request_id_ = 0;

  // Time-series recorder slot per TypeIndex (empty when the recorder is off).
  std::vector<size_t> series_slots_;
  // Previous per-state ledger totals per worker for interval deltas; only
  // touched by the gauge hook (serialised by the recorder's roll lock).
  std::vector<std::array<uint64_t, kNumWorkerTimeStates>> ts_prev_state_;

  // Wall-time provenance: every worker's time decomposed into exhaustive
  // states, stamped by the scheduler (worker slots) and the dispatcher loop
  // (the pseudo-slot). Opened at construction, so sums track process wall.
  WorkerTimeLedger time_ledger_;
  // In-process SIGPROF sampling profiler; engine threads register themselves
  // (with their ledger state word) on entry to their loops.
  std::unique_ptr<CpuSampler> cpu_sampler_;

  // Live introspection plane (null unless enabled in the config).
  std::unique_ptr<OutlierRecorder> outliers_;
  std::unique_ptr<AdminServer> admin_;
  // On-demand trace capture: start timestamp, or -1 when no capture is
  // armed. POST /trace/stop exports only records at or after this mark.
  std::atomic<Nanos> trace_capture_start_{-1};
};

}  // namespace psp

#endif  // PSP_SRC_RUNTIME_PERSEPHONE_H_
