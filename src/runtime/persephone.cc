#include "src/runtime/persephone.h"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "src/telemetry/trace_export.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <unistd.h>

#include "src/net/packet.h"

namespace psp {
namespace {

// Pins the calling thread to `cpu` (mod the online-core count); best effort.
void PinCurrentThread(uint32_t cpu) {
#if defined(__linux__)
  const long cores = sysconf(_SC_NPROCESSORS_ONLN);
  if (cores <= 1) {
    return;  // nothing to separate onto
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % static_cast<uint32_t>(cores), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

// Registers the calling engine thread with the sampling profiler for its
// lifetime (loops have multiple exit paths; unregistering must not be
// skipped, or the sampler would keep a stale tid).
class ScopedProfileThread {
 public:
  ScopedProfileThread(CpuSampler* sampler, const char* role,
                      const std::atomic<uint32_t>* state_word,
                      uint32_t fallback_packed)
      : sampler_(sampler) {
    sampler_->RegisterCurrentThread(role, state_word, fallback_packed);
  }
  ~ScopedProfileThread() { sampler_->UnregisterCurrentThread(); }

  ScopedProfileThread(const ScopedProfileThread&) = delete;
  ScopedProfileThread& operator=(const ScopedProfileThread&) = delete;

 private:
  CpuSampler* sampler_;
};

}  // namespace

std::string RuntimeConfig::Validate() const {
  if (num_workers == 0) {
    return "runtime: num_workers must be > 0";
  }
  if (channel_depth == 0) {
    return "runtime: channel_depth must be > 0";
  }
  if (nic_queue_depth == 0) {
    return "runtime: nic_queue_depth must be > 0";
  }
  if (pool_buffers < nic_queue_depth) {
    return "runtime: pool_buffers must be >= nic_queue_depth (every RX "
           "descriptor needs a backing buffer)";
  }
  if (const std::string error = telemetry.Validate(); !error.empty()) {
    return error;
  }
  if (const std::string error = admin.Validate(); !error.empty()) {
    return error;
  }
  if (const std::string error = outliers.Validate(); !error.empty()) {
    return error;
  }
  if (outliers.enabled && !telemetry.enable_tracing) {
    return "runtime: outlier capture requires telemetry.enable_tracing (the "
           "feed is sampled lifecycle traces)";
  }
  if (const std::string error = ingress.Validate(); !error.empty()) {
    return "runtime: " + error;
  }
  // Validate the scheduler config with the worker count the runtime will
  // actually impose on it.
  SchedulerConfig effective = scheduler;
  effective.num_workers = num_workers;
  return effective.Validate();
}

Persephone::Persephone(RuntimeConfig config) : config_(std::move(config)) {
  if (const std::string error = config_.Validate(); !error.empty()) {
    throw std::invalid_argument(error);
  }
  // One trace ring per worker thread (workers commit completed records).
  telemetry_ = std::make_unique<Telemetry>(config_.telemetry,
                                           config_.num_workers);
  rx_packets_ = &telemetry_->registry().GetCounter("runtime.rx_packets");
  malformed_ = &telemetry_->registry().GetCounter("runtime.malformed");
  pool_ = std::make_unique<MemoryPool>(kMaxPacketSize, config_.pool_buffers);
  // Queue 0: dispatcher RX; queues 1..N: per-worker TX contexts.
  nic_ = std::make_unique<SimulatedNic>(config_.num_workers + 1,
                                        config_.nic_queue_depth, pool_.get());
  SchedulerConfig sched = config_.scheduler;
  sched.num_workers = config_.num_workers;
  scheduler_ = std::make_unique<DarcScheduler>(sched);
  scheduler_->AttachTelemetry(telemetry_.get());
  // Wall-time provenance starts at construction (the ledger's notion of
  // "wall" is process lifetime, so state shares always sum to 100%); the
  // scheduler stamps worker transitions, the dispatcher loop its own.
  time_ledger_.Open(config_.num_workers, TscClock::Global().Now());
  scheduler_->AttachTimeLedger(&time_ledger_);
  cpu_sampler_ = std::make_unique<CpuSampler>();
  classifier_ = std::make_unique<HeaderFieldClassifier>();
  channels_.reserve(config_.num_workers);
  for (uint32_t w = 0; w < config_.num_workers; ++w) {
    channels_.push_back(std::make_unique<WorkerChannel>(config_.channel_depth));
    worker_counters_.push_back(std::make_unique<WorkerCounters>());
  }
  // Wire the ingress/egress seam for the configured mode (see the member
  // comment in the header for the map).
  if (config_.ingress.mode == IngressMode::kUdp) {
    udp_ = std::make_unique<UdpIngress>(config_.ingress,
                                        config_.nic_queue_depth, pool_.get(),
                                        config_.yield_when_idle);
    ingress_source_ = udp_.get();
    egress_sink_ = udp_.get();
  } else {
    nic_sink_ = std::make_unique<NicEgressSink>(nic_.get());
    egress_sink_ = nic_sink_.get();
    if (config_.ingress.dedicated_net_worker) {
      ring_source_ = std::make_unique<RingIngressSource<PacketRef>>(
          config_.nic_queue_depth, config_.yield_when_idle);
      ingress_source_ = ring_source_.get();
    } else {
      nic_source_ = std::make_unique<NicIngressSource>(
          nic_.get(), 0, config_.yield_when_idle);
      ingress_source_ = nic_source_.get();
    }
  }
  // Slot 0 (UNKNOWN) default handler: empty response.
  handlers_.push_back([](const std::byte*, uint32_t, std::byte*, uint32_t) {
    return 0u;
  });

  // Continuous observability: one time-series per registered type (keyed by
  // TypeIndex, so slot == TypeIndex), engine gauges stamped at every interval
  // close, and full runtime snapshots embedded in flight-recorder dumps.
  if (telemetry_->timeseries() != nullptr) {
    series_slots_.push_back(
        telemetry_->RegisterSeries(scheduler_->unknown_type(), "UNKNOWN"));
    ts_prev_state_.resize(config_.num_workers);
    telemetry_->timeseries()->set_gauge_sampler(
        [this](IntervalRecord* rec) { SampleTimeSeriesGauges(rec); });
    telemetry_->set_flight_snapshot_provider(
        [this] { return telemetry_snapshot(); });
  }
  if (config_.outliers.enabled) {
    outliers_ = std::make_unique<OutlierRecorder>(config_.outliers);
  }
  if (config_.admin.enabled) {
    admin_ = std::make_unique<AdminServer>(config_.admin, MakeAdminHooks());
  }
}

Persephone::~Persephone() { Stop(); }

TypeIndex Persephone::RegisterType(TypeId wire_id, std::string name,
                                   RequestHandler handler, Nanos expected_mean,
                                   double expected_ratio) {
  assert(!running());
  const TypeIndex index = scheduler_->RegisterType(
      wire_id, std::move(name), expected_mean, expected_ratio);
  handlers_.resize(std::max<size_t>(handlers_.size(), index + 1));
  handlers_[index] = std::move(handler);
  if (telemetry_->timeseries() != nullptr) {
    series_slots_.resize(std::max<size_t>(series_slots_.size(), index + 1));
    series_slots_[index] =
        telemetry_->RegisterSeries(index, scheduler_->type_name(index));
  }
  return index;
}

void Persephone::set_unknown_handler(RequestHandler handler) {
  handlers_[scheduler_->unknown_type()] = std::move(handler);
}

void Persephone::Start() {
  assert(!running());
  stop_.store(false, std::memory_order_release);
  // Bind the admin plane before any engine thread exists: a bind failure
  // (e.g. a fixed port already taken) aborts the start cleanly.
  if (admin_) {
    if (const std::string error = admin_->Start(); !error.empty()) {
      throw std::runtime_error(error);
    }
  }
  // Apply seeded reservations if every registered type carries hints;
  // otherwise DARC bootstraps through its c-FCFS profiling window.
  if (config_.scheduler.mode != PolicyMode::kCFcfs &&
      scheduler_->profiler().HasDemands()) {
    scheduler_->ActivateSeededReservation(TscClock::Global().Now());
  }
  if (udp_) {
    // Bind the shard sockets before any engine thread exists, so a failure
    // (port taken, bad address) aborts the start cleanly.
    if (const std::string error = udp_->Open(); !error.empty()) {
      if (admin_) {
        admin_->Stop();
      }
      throw std::runtime_error(error);
    }
    for (uint32_t i = 0; i < config_.ingress.num_net_workers; ++i) {
      threads_.emplace_back([this, i] {
        if (config_.pin_threads) {
          PinCurrentThread(i);  // shard 0 shares core 0 with the dispatcher
        }
        // No ledger slot: net workers poll sockets, so all their CPU
        // samples are tagged poll_spin.
        ScopedProfileThread profiled(
            cpu_sampler_.get(), "net", nullptr,
            WorkerTimeLedger::Pack(WorkerTimeState::kPollSpin,
                                   WorkerTimeLedger::kUntyped));
        udp_->RunNetWorker(i, stop_);
      });
    }
  } else if (config_.ingress.dedicated_net_worker) {
    threads_.emplace_back([this] { NetWorkerLoop(); });
  }
  threads_.emplace_back([this] { DispatcherLoop(); });
  for (uint32_t w = 0; w < config_.num_workers; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
  if (telemetry_->timeseries() != nullptr) {
    threads_.emplace_back([this] { SamplerLoop(); });
  }
  running_.store(true, std::memory_order_release);
}

void Persephone::Stop() {
  if (threads_.empty()) {
    if (admin_) {
      admin_->Stop();  // Start() may have bound it before a failed launch
    }
    return;
  }
  // Stop serving first so no scrape observes a half-torn-down engine.
  if (admin_) {
    admin_->Stop();
  }
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    t.join();
  }
  threads_.clear();
  // Release frames the dispatcher never consumed (net-worker forwarding
  // rings, NIC RX) so the pool's buffer accounting balances across restarts.
  {
    PacketRef leftover[kIngressBurst];
    size_t n;
    while ((n = ingress_source_->PollBurst(leftover, kIngressBurst)) > 0) {
      for (size_t i = 0; i < n; ++i) {
        pool_->FreeGlobal(leftover[i].data);
      }
    }
  }
  if (udp_) {
    udp_->Close();
  }
  // Drain completion signals the dispatcher had not absorbed before the stop
  // flag landed, so scheduler-side counts (the single source of truth for
  // `completed`) match the work the workers actually finished.
  const Nanos now = TscClock::Global().Now();
  TimeSeriesRecorder* const ts = telemetry_->timeseries();
  CompletionSignal signals[WorkerChannel::kCompletionBurst];
  for (uint32_t w = 0; w < config_.num_workers; ++w) {
    size_t n;
    while ((n = channels_[w]->PopCompletionBurst(
                signals, WorkerChannel::kCompletionBurst)) > 0) {
      for (size_t i = 0; i < n; ++i) {
        scheduler_->OnCompletion(w, signals[i].type, signals[i].service_time,
                                 now, signals[i].deadline);
        if (ts != nullptr) {
          ts->RecordCompletion(series_slots_[signals[i].type],
                               now - signals[i].arrival,
                               signals[i].service_time, now);
          if (signals[i].deadline > 0 && now > signals[i].deadline) {
            ts->RecordDeadlineMiss(series_slots_[signals[i].type], now);
          }
        }
      }
    }
  }
  // Close the final (partial) interval so short runs still produce a series,
  // and flush any SLO alert raised by it.
  telemetry_->AdvanceTimeSeries(now, /*flush=*/true);
  running_.store(false, std::memory_order_release);
}

WorkerUtilization Persephone::worker_utilization(uint32_t id) const {
  WorkerUtilization u;
  if (id >= worker_counters_.size()) {
    return u;
  }
  const WorkerCounters& counters = *worker_counters_[id];
  // Consistent snapshot: read the epoch first, then busy, then derive wall
  // from a clock read taken *after* busy. Mid-run, the worker may add busy
  // time between the two reads; clamping wall to >= busy keeps the pair
  // coherent (BusyFraction() in [0, 1]) instead of transiently > 100%.
  const int64_t started = counters.started_at.load(std::memory_order_acquire);
  u.busy = static_cast<Nanos>(counters.busy.load(std::memory_order_acquire));
  u.requests = counters.requests.load(std::memory_order_relaxed);
  if (started > 0) {
    const Nanos wall = TscClock::Global().Now() - started;
    u.wall = wall > u.busy ? wall : u.busy;
  }
  return u;
}

TelemetrySnapshot Persephone::telemetry_snapshot() const {
  TelemetrySnapshot snap = telemetry_->Snapshot();
  scheduler_->ExportTelemetry(&snap);
  snap.counters["nic.rx_drops"] += nic_->rx_drops();
  if (udp_) {
    // Socket-frontend counters, folded in here so psp_net stays free of the
    // telemetry dependency.
    const UdpIngressStats s = udp_->stats();
    snap.counters["ingress.rx_datagrams"] += s.rx_datagrams;
    snap.counters["ingress.malformed"] += s.rx_malformed;
    snap.counters["ingress.ring_full_drops"] += s.ring_full_drops;
    snap.counters["ingress.tx_datagrams"] += s.tx_datagrams;
    snap.counters["ingress.tx_batches"] += s.tx_batches;
    snap.counters["ingress.tx_drops"] += s.tx_drops;
    snap.counters["ingress.poll_sleeps"] += s.sleeps;
    snap.counters["ingress.poll_slept_nanos"] += s.slept_nanos;
    for (size_t i = 0; i < s.rx_per_shard.size(); ++i) {
      snap.counters["ingress.shard." + std::to_string(i) + ".rx_datagrams"] +=
          s.rx_per_shard[i];
    }
  }
  // The full time-provenance ledger: every worker's wall time decomposed
  // into exhaustive states, plus the dispatcher pseudo-slot (last record).
  snap.worker_time = time_ledger_.SnapshotTotals(
      TscClock::Global().Now(), [this](uint32_t type) {
        return type < scheduler_->num_types()
                   ? scheduler_->type_name(static_cast<TypeIndex>(type))
                   : std::string();
      });
  for (uint32_t w = 0; w < config_.num_workers; ++w) {
    const WorkerUtilization u = worker_utilization(w);
    const std::string prefix = "worker." + std::to_string(w);
    snap.counters[prefix + ".requests"] += u.requests;
    snap.gauges[prefix + ".busy_nanos"] = u.busy;
    // busy_permille derives from the time ledger (dispatch-to-completion
    // occupancy as the scheduler sees it) rather than handler wall time;
    // same name and scale, provenance noted in docs/OBSERVABILITY.md.
    int64_t permille = 0;
    if (w < snap.worker_time.size()) {
      const WorkerTimeRecord& record = snap.worker_time[w];
      const uint64_t wall = record.WallNs();
      if (wall > 0) {
        permille = static_cast<int64_t>(record.BusyNs() * 1000 / wall);
      }
    }
    snap.gauges[prefix + ".busy_permille"] = permille;
  }
  return snap;
}

AdminHooks Persephone::MakeAdminHooks() {
  AdminHooks hooks;
  hooks.snapshot = [this] { return telemetry_snapshot(); };
  if (outliers_) {
    hooks.outliers_json = [this] {
      std::map<uint32_t, std::string> names;
      for (TypeIndex t = 0; t < scheduler_->num_types(); ++t) {
        names.emplace(t, scheduler_->type_name(t));
      }
      return outliers_->ToJson(names);
    };
  }
  hooks.trace_start = [this](std::string* error) -> std::string {
    Nanos expected = -1;
    const Nanos now = TscClock::Global().Now();
    if (!trace_capture_start_.compare_exchange_strong(expected, now)) {
      *error = "trace capture already armed";
      return "";
    }
    telemetry_->RecordEvent(now, "trace capture armed");
    return "{\"ok\":true,\"started_at\":" + std::to_string(now) + "}\n";
  };
  hooks.trace_stop = [this](std::string* error) -> std::string {
    const Nanos start = trace_capture_start_.exchange(-1);
    if (start < 0) {
      *error = "no trace capture armed";
      return "";
    }
    // Bound the capture to [start, now]: the rings only hold the most recent
    // records anyway, but filtering keeps the export focused on the window
    // the operator actually asked for.
    TelemetrySnapshot snap = telemetry_snapshot();
    std::vector<RequestTrace> kept;
    kept.reserve(snap.traces.size());
    for (const RequestTrace& t : snap.traces) {
      if (t.At(TraceStage::kTx) >= start) {
        kept.push_back(t);
      }
    }
    snap.traces = std::move(kept);
    std::vector<TelemetryEvent> events;
    events.reserve(snap.events.size());
    for (const TelemetryEvent& e : snap.events) {
      if (e.at >= start) {
        events.push_back(e);
      }
    }
    snap.events = std::move(events);
    return ExportCatapultTrace(snap);
  };
  hooks.flight_dump = [this](std::string*) {
    const TelemetrySnapshot snap = telemetry_snapshot();
    const TimeSeriesRecorder* const ts = telemetry_->timeseries();
    return BuildFlightRecord(
        telemetry_->slo() ? telemetry_->slo()->alerts()
                          : std::vector<SloAlert>{},
        ts != nullptr ? ts->Recent(64) : std::vector<IntervalRecord>{}, snap);
  };
  hooks.set_config = [this](const std::string& key, const std::string& value) {
    return ApplyConfigKey(key, value);
  };
  hooks.profile_start = [this](const std::string& query,
                               std::string* error) -> std::string {
    int hz = 99;
    double duration_sec = 0.0;
    size_t pos = 0;
    while (pos <= query.size()) {
      size_t end = query.find('&', pos);
      if (end == std::string::npos) {
        end = query.size();
      }
      const std::string pair = query.substr(pos, end - pos);
      pos = end + 1;
      const size_t eq = pair.find('=');
      if (pair.empty() || eq == std::string::npos || eq == 0) {
        continue;
      }
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      char* parse_end = nullptr;
      if (key == "hz") {
        const long parsed = std::strtol(value.c_str(), &parse_end, 10);
        if (parse_end == value.c_str() || *parse_end != '\0' || parsed < 1 ||
            parsed > 10000) {
          *error = "profiler: hz must be an integer in [1, 10000]";
          return "";
        }
        hz = static_cast<int>(parsed);
      } else if (key == "dur") {
        const double parsed = std::strtod(value.c_str(), &parse_end);
        if (parse_end == value.c_str() || *parse_end != '\0' || parsed < 0 ||
            parsed > 3600) {
          *error = "profiler: dur must be seconds in [0, 3600]";
          return "";
        }
        duration_sec = parsed;
      }
    }
    if (!cpu_sampler_->Start(hz, duration_sec)) {
      *error = "profile capture already running";
      return "";
    }
    telemetry_->RecordEvent(TscClock::Global().Now(),
                            "profile capture started");
    std::string out = "{\"ok\":true,\"hz\":" + std::to_string(hz);
    if (duration_sec > 0) {
      out += ",\"duration_sec\":" + std::to_string(duration_sec);
    }
    out += "}\n";
    return out;
  };
  hooks.profile_stop = [this](std::string* error) -> std::string {
    if (!cpu_sampler_->Stop()) {
      *error = "no profile capture running";
      return "";
    }
    return "{\"ok\":true,\"samples\":" +
           std::to_string(cpu_sampler_->total_samples()) +
           ",\"dropped\":" + std::to_string(cpu_sampler_->dropped_samples()) +
           "}\n";
  };
  hooks.profile_folded = [this] {
    return cpu_sampler_->Folded([this](uint32_t type) {
      return type < scheduler_->num_types()
                 ? scheduler_->type_name(static_cast<TypeIndex>(type))
                 : std::string();
    });
  };
  return hooks;
}

std::string Persephone::ApplyConfigKey(const std::string& key,
                                       const std::string& value) {
  if (key == "sampling") {
    char* end = nullptr;
    const unsigned long n = std::strtoul(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || n > UINT32_MAX) {
      return "config: sampling expects an unsigned integer, got \"" + value +
             "\"";
    }
    return telemetry_->SetSampleEvery(static_cast<uint32_t>(n));
  }
  // slo.<TYPE>.slowdown=<double>
  constexpr const char kSloPrefix[] = "slo.";
  constexpr const char kSloSuffix[] = ".slowdown";
  if (key.size() > sizeof(kSloPrefix) + sizeof(kSloSuffix) - 2 &&
      key.compare(0, sizeof(kSloPrefix) - 1, kSloPrefix) == 0 &&
      key.compare(key.size() - (sizeof(kSloSuffix) - 1),
                  sizeof(kSloSuffix) - 1, kSloSuffix) == 0) {
    const std::string type_name =
        key.substr(sizeof(kSloPrefix) - 1,
                   key.size() - sizeof(kSloPrefix) - sizeof(kSloSuffix) + 2);
    char* end = nullptr;
    const double slowdown = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return "config: slowdown expects a number, got \"" + value + "\"";
    }
    return telemetry_->SetSloTarget(type_name, slowdown);
  }
  return "config: unknown key \"" + key +
         "\" (supported: sampling, slo.<TYPE>.slowdown)";
}

void Persephone::NetWorkerLoop() {
  if (config_.pin_threads) {
    PinCurrentThread(0);
  }
  ScopedProfileThread profiled(
      cpu_sampler_.get(), "net", nullptr,
      WorkerTimeLedger::Pack(WorkerTimeState::kPollSpin,
                             WorkerTimeLedger::kUntyped));
  // The paper's net worker: "a layer 2 forwarder [that] performs simple
  // checks on Ethernet and IP headers" (§6) before handing frames to the
  // dispatcher. Full request parsing/classification stays on the dispatcher.
  // Frames are gathered and forwarded in bursts (DPDK rx_burst-style): one
  // shared-index update per burst on the forwarding ring. Empty polls follow
  // the configured pacing policy, like the UDP net workers.
  PollController poller(config_.ingress.poll);
  SpscRing<PacketRef>& ring = ring_source_->ring();
  PacketRef batch[kIngressBurst];
  while (!stop_.load(std::memory_order_acquire)) {
    size_t n = 0;
    PacketRef packet;
    while (n < kIngressBurst && nic_->PollRx(0, &packet)) {
      bool ok = packet.length >= kHeadersSize;
      if (ok) {
        const auto* eth = reinterpret_cast<const EthernetHeader*>(packet.data);
        const auto* ip = reinterpret_cast<const Ipv4Header*>(
            packet.data + sizeof(EthernetHeader));
        ok = NetToHost16(eth->ether_type) == EthernetHeader::kEtherTypeIpv4 &&
             ip->version_ihl == 0x45;
      }
      if (!ok) {
        malformed_->Add();
        pool_->FreeGlobal(packet.data);
        continue;
      }
      batch[n++] = packet;
    }
    if (n == 0) {
      poller.OnIdle();
      continue;
    }
    poller.OnWork();
    size_t forwarded = 0;
    while (forwarded < n) {
      forwarded += ring.TryPushBurst(batch + forwarded, n - forwarded);
      if (forwarded < n) {
        if (stop_.load(std::memory_order_acquire)) {
          for (size_t i = forwarded; i < n; ++i) {
            pool_->FreeGlobal(batch[i].data);
          }
          return;
        }
        IdlePause();  // dispatcher backpressure
      }
    }
  }
}

void Persephone::DispatcherLoop() {
  if (config_.pin_threads) {
    PinCurrentThread(0);  // shares the net worker's core, as in the paper
  }
  const TscClock& clock = TscClock::Global();
  // 1-in-N lifecycle sampling; the decision is one branch per request, so
  // the untraced hot path stays within the paper's dispatch budget.
  TraceSampler sampler(telemetry_->sample_every());
  // Time-series hooks: nullptr when disabled, then the hot path pays nothing
  // beyond one pointer test per event.
  TimeSeriesRecorder* const ts = telemetry_->timeseries();
  CompletionSignal signals[WorkerChannel::kCompletionBurst];
  PacketRef ingress[kIngressBurst];
  const uint32_t dispatcher_slot = time_ledger_.dispatcher_slot();
  ScopedProfileThread profiled(
      cpu_sampler_.get(), "dispatcher",
      time_ledger_.packed_state(dispatcher_slot),
      WorkerTimeLedger::Pack(WorkerTimeState::kPollSpin,
                             WorkerTimeLedger::kUntyped));
  // Each iteration is classified after the fact — it was dispatch/completion
  // bookkeeping if anything progressed, an empty poll otherwise — and the
  // span up to this iteration's single clock read is charged accordingly
  // (zero extra clock reads on the hot path).
  WorkerTimeState iteration_state = WorkerTimeState::kPollSpin;
  while (!stop_.load(std::memory_order_acquire)) {
    bool progressed = false;
    const Nanos now = clock.Now();
    time_ledger_.AccountSpan(dispatcher_slot, iteration_state, now);
    // Pick up live sampling changes (POST /config sampling=N): one relaxed
    // load per loop iteration, a no-op store-free branch when unchanged.
    sampler.set_every(telemetry_->sample_every());

    // 1. Absorb completion signals (frees workers, feeds the profiler) —
    // burst drains: one channel-index update per batch of signals.
    for (uint32_t w = 0; w < config_.num_workers; ++w) {
      size_t drained;
      while ((drained = channels_[w]->PopCompletionBurst(
                  signals, WorkerChannel::kCompletionBurst)) > 0) {
        for (size_t i = 0; i < drained; ++i) {
          const CompletionSignal& signal = signals[i];
          scheduler_->OnCompletion(w, signal.type, signal.service_time, now,
                                   signal.deadline);
          if (ts != nullptr) {
            ts->RecordCompletion(series_slots_[signal.type],
                                 now - signal.arrival, signal.service_time,
                                 now);
            if (signal.deadline > 0 && now > signal.deadline) {
              ts->RecordDeadlineMiss(series_slots_[signal.type], now);
            }
          }
        }
        progressed = true;
      }
    }

    // 2. Ingest new packets in bursts (one ring-index update per batch):
    // parse, classify, enqueue into typed queues.
    size_t n_rx;
    while ((n_rx = ingress_source_->PollBurst(ingress, kIngressBurst)) > 0) {
      progressed = true;
      for (size_t rx = 0; rx < n_rx; ++rx) {
        IngestPacket(ingress[rx], now, &sampler, ts);
      }
    }

    // 3. Algorithm 1: push ready work to free workers.
    while (auto assignment = scheduler_->NextAssignment(now)) {
      WorkOrder order;
      order.request_id = assignment->request.id;
      order.type = assignment->request.type;
      order.arrival = assignment->request.arrival;
      order.payload = assignment->request.payload;
      order.payload_length = assignment->request.payload_length;
      order.wire_id = assignment->request.wire_id;
      order.client_id = assignment->request.client_id;
      order.deadline = assignment->request.deadline;
      order.trace = assignment->request.trace;
      if (order.trace.sampled != 0) {
        order.trace.Mark(TraceStage::kDispatched, clock.Now());
      }
      const bool pushed = channels_[assignment->worker]->PushOrder(order);
      assert(pushed && "worker has at most one outstanding order");
      (void)pushed;
      progressed = true;
    }

    iteration_state = progressed ? WorkerTimeState::kDispatchOverhead
                                 : WorkerTimeState::kPollSpin;
    if (!progressed) {
      // Let the source pace the idle round (yield, or nothing when the
      // runtime is configured to busy-poll).
      ingress_source_->IdleHint();
    }
  }
  time_ledger_.AccountSpan(dispatcher_slot, iteration_state,
                           clock.Now());  // close the final span
}

void Persephone::IngestPacket(const PacketRef& packet, Nanos now,
                              TraceSampler* sampler, TimeSeriesRecorder* ts) {
  const TscClock& clock = TscClock::Global();
  rx_packets_->Add();
  const auto parsed = ParseRequestPacket(packet.data, packet.length);
  if (!parsed.has_value()) {
    malformed_->Add();
    pool_->FreeGlobal(packet.data);
    return;
  }
  const TypeId wire = classifier_->Classify(
      packet.data + kRequestOffset,
      packet.length - static_cast<uint32_t>(kRequestOffset));
  Request request;
  request.id = next_request_id_++;
  request.type = scheduler_->ResolveType(wire);
  request.arrival = now;
  request.payload = packet.data;
  request.payload_length = packet.length;
  request.wire_id = parsed->psp.request_id;
  request.client_id = parsed->psp.client_id;
  // Deadline stamping (deadline tier): an explicit wire budget from the
  // client wins; otherwise the per-type target configured on the scheduler
  // applies. Both are budgets relative to arrival; 0 means no deadline.
  if (parsed->psp.deadline_us != 0) {
    request.deadline =
        now + static_cast<Nanos>(parsed->psp.deadline_us) * kMicrosecond;
  } else if (const Nanos budget = scheduler_->DeadlineTargetOf(request.type);
             budget > 0) {
    request.deadline = now + budget;
  }
  // The client's in-band sampling election forces a lifecycle record (the
  // distributed-tracing join needs exactly these requests); local 1-in-N
  // sampling still ticks independently so server-only visibility survives
  // clients that never set the bit.
  const bool wire_sampled =
      (parsed->psp.trace_flags & PspHeader::kFlagTraceSampled) != 0;
  if (sampler->Tick() || wire_sampled) {
    request.trace.sampled = 1;
    // The NIC's hardware-style stamp captures RX-queue wait; fall back to
    // the poll instant for frames delivered without one.
    request.trace.Mark(TraceStage::kRx,
                       packet.rx_timestamp != 0 ? packet.rx_timestamp : now);
    const Nanos classified = clock.Now();
    request.trace.Mark(TraceStage::kClassified, classified);
    request.trace.Mark(TraceStage::kEnqueued, classified);
  }
  // Series semantics match the simulator: arrivals = offered load (recorded
  // whether or not flow control sheds the request).
  if (ts != nullptr) {
    ts->RecordArrival(series_slots_[request.type], now);
  }
  const DarcScheduler::EnqueueResult enq = scheduler_->TryEnqueue(request, now);
  if (enq != DarcScheduler::EnqueueResult::kOk) {
    // Flow-control shed (§4.3.3) or deadline admission shed; the scheduler
    // counts the drop either way.
    if (ts != nullptr) {
      ts->RecordDrop(series_slots_[request.type], now);
      if (enq == DarcScheduler::EnqueueResult::kShed) {
        ts->RecordDeadlineShed(series_slots_[request.type], now);
      }
    }
    pool_->FreeGlobal(packet.data);
  }
}

void Persephone::SamplerLoop() {
  // Watchdog cadence: a quarter of the interval width (floor 1 ms) keeps
  // closes timely without measurable CPU cost. The dispatcher also closes
  // intervals inline on the hot path, so this thread mostly matters during
  // idle stretches and for flight-recorder dumps.
  const Nanos interval = telemetry_->config().timeseries.interval;
  Nanos tick = interval / 4;
  if (tick < kMillisecond) {
    tick = kMillisecond;
  }
  ScopedProfileThread profiled(
      cpu_sampler_.get(), "sampler", nullptr,
      WorkerTimeLedger::Pack(WorkerTimeState::kDispatchOverhead,
                             WorkerTimeLedger::kUntyped));
  const TscClock& clock = TscClock::Global();
  while (!stop_.load(std::memory_order_acquire)) {
    telemetry_->AdvanceTimeSeries(clock.Now());
    std::this_thread::sleep_for(std::chrono::nanoseconds(tick));
  }
}

void Persephone::SampleTimeSeriesGauges(IntervalRecord* rec) {
  // Runs under the recorder's roll lock (so ts_prev_state_ needs no further
  // guarding); everything read here is a relaxed atomic or mutex-published.
  for (TypeIntervalStats& stats : rec->types) {
    const auto type = static_cast<TypeIndex>(stats.type);
    if (type >= scheduler_->num_types()) {
      continue;
    }
    stats.queue_depth = static_cast<int64_t>(scheduler_->queue_depth(type));
    stats.reserved_workers = scheduler_->reserved_workers_of(type);
  }
  // Interval worker occupancy, derived from the time ledger: per-worker
  // busy+steal share, plus the aggregate per-state decomposition across all
  // workers (permille of summed worker wall time in this interval).
  rec->worker_busy_permille.resize(config_.num_workers, 0);
  rec->worker_state_permille.assign(kNumWorkerTimeStates, 0);
  const Nanos now = TscClock::Global().Now();
  const std::vector<WorkerTimeRecord> totals =
      time_ledger_.SnapshotTotals(now, nullptr);
  std::array<uint64_t, kNumWorkerTimeStates> interval_sum{};
  uint64_t wall_sum = 0;
  for (uint32_t w = 0; w < config_.num_workers && w < totals.size(); ++w) {
    std::array<uint64_t, kNumWorkerTimeStates>& prev = ts_prev_state_[w];
    uint64_t wall = 0;
    uint64_t busy = 0;
    for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
      const uint64_t current = totals[w].state_ns[s];
      const uint64_t delta = current >= prev[s] ? current - prev[s] : 0;
      prev[s] = current;
      wall += delta;
      interval_sum[s] += delta;
      if (s == static_cast<size_t>(WorkerTimeState::kBusy) ||
          s == static_cast<size_t>(WorkerTimeState::kSteal)) {
        busy += delta;
      }
    }
    wall_sum += wall;
    rec->worker_busy_permille[w] =
        wall > 0 ? static_cast<int64_t>(busy * 1000 / wall) : 0;
  }
  if (wall_sum > 0) {
    for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
      rec->worker_state_permille[s] =
          static_cast<int64_t>(interval_sum[s] * 1000 / wall_sum);
    }
  }
}

void Persephone::WorkerLoop(uint32_t worker_id) {
  if (config_.pin_threads) {
    // App workers start after the net-worker cores (see the core map in the
    // header): base 1 covers the inline/dedicated ring paths, where net I/O
    // shares core 0 with the dispatcher.
    PinCurrentThread(std::max<uint32_t>(1, NumNetThreads()) + worker_id);
  }
  const TscClock& clock = TscClock::Global();
  WorkerChannel& channel = *channels_[worker_id];
  WorkerCounters& counters = *worker_counters_[worker_id];
  counters.started_at.store(clock.Now(), std::memory_order_relaxed);
  // The scheduler (dispatcher thread) owns this worker's ledger slot; the
  // packed state word is what tags this thread's profile samples.
  ScopedProfileThread profiled(
      cpu_sampler_.get(), "worker", time_ledger_.packed_state(worker_id),
      WorkerTimeLedger::Pack(WorkerTimeState::kFreeIdle,
                             WorkerTimeLedger::kUntyped));

  while (!stop_.load(std::memory_order_acquire)) {
    WorkOrder order;
    if (!channel.PopOrder(&order)) {
      IdlePause();
      continue;
    }
    auto* frame = static_cast<std::byte*>(order.payload);
    const Nanos start = clock.Now();
    if (order.trace.sampled != 0) {
      order.trace.Mark(TraceStage::kHandlerStart, start);
    }

    // Application processing: payload in, response payload out — into the
    // same buffer region (zero-copy TX reuse, §4.3.1). Handlers must finish
    // reading the request before writing the response.
    std::byte* response_area = frame + kRequestOffset + sizeof(PspHeader);
    const uint32_t capacity = static_cast<uint32_t>(
        pool_->buffer_size() - kRequestOffset - sizeof(PspHeader));
    const std::byte* request_payload = response_area;
    const uint32_t request_payload_len =
        order.payload_length > kRequestOffset + sizeof(PspHeader)
            ? order.payload_length -
                  static_cast<uint32_t>(kRequestOffset + sizeof(PspHeader))
            : 0;
    const uint32_t response_len = handlers_[order.type](
        request_payload, request_payload_len, response_area, capacity);
    if (order.trace.sampled != 0) {
      order.trace.Mark(TraceStage::kHandlerEnd, clock.Now());
    }

    const uint32_t frame_len = FormatResponseInPlace(frame, response_len);
    if (order.trace.sampled != 0) {
      // Echo the server's rx/tx stamps onto the wire BEFORE the frame leaves
      // (the egress sink may hand the buffer to the kernel immediately), so
      // the client can decompose its RTT into wire time and server sojourn.
      const Nanos tx_now = clock.Now();
      order.trace.Mark(TraceStage::kTx, tx_now);
      StampServerTimestamps(
          frame, order.trace.stamp[static_cast<size_t>(TraceStage::kRx)],
          tx_now);
    }
    const PacketRef response{frame, frame_len};
    if (egress_sink_->SendBurst(&response, 1, worker_id + 1) == 0) {
      // Egress full (client not draining): release the buffer.
      pool_->FreeGlobal(frame);
    }
    const Nanos service = clock.Now() - start;
    counters.busy.fetch_add(static_cast<uint64_t>(service),
                            std::memory_order_relaxed);
    counters.requests.fetch_add(1, std::memory_order_relaxed);
    if (order.trace.sampled != 0) {
      // Commit the completed lifecycle record into this worker's ring.
      RequestTrace record;
      record.request_id = order.request_id;
      record.type = order.type;
      record.worker = worker_id;
      record.wire_request_id = order.wire_id;
      record.client_id = order.client_id;
      record.stamp = order.trace.stamp;
      telemetry_->ring(worker_id).Push(record);
      if (outliers_) {
        // Sampled records only, so the mutex inside is touched 1-in-N times.
        outliers_->Offer(record, start + service);
      }
    }

    CompletionSignal signal{order.request_id, order.type, order.arrival,
                            service, order.deadline};
    const bool pushed = channel.PushCompletion(signal);
    assert(pushed);
    (void)pushed;
  }
}

}  // namespace psp
