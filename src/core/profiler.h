// Workload profiling windows (paper §3 "Profiling the workload and updating
// reservations" and §4.3.3).
//
// The dispatcher maintains, per request type, a moving average of service
// time and an occurrence counter, gathered when workers signal completions.
// Two signals gate a reservation update: a request experiencing queueing
// delay beyond `slo_slowdown ×` its type's profiled service time, and the
// window's CPU-demand estimate deviating from the currently applied demand by
// more than `min_demand_deviation`. A lower bound on window samples guards
// against reacting to bursts. During the first window the system runs c-FCFS.
#ifndef PSP_SRC_CORE_PROFILER_H_
#define PSP_SRC_CORE_PROFILER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/time.h"
#include "src/core/request.h"
#include "src/core/reservation.h"

namespace psp {

struct ProfilerConfig {
  // Minimum completions observed in a window before a transition is allowed
  // (50 000 in the paper's experiments).
  uint64_t min_window_samples = 50000;
  // Minimum L1 deviation between the window's demand fractions and the
  // currently applied ones (10% in the paper's experiments).
  double min_demand_deviation = 0.10;
  // EWMA smoothing factor for per-type service times within a window.
  double ewma_alpha = 1.0 / 128.0;
  // Queueing-delay SLO multiplier: a dispatch whose queueing delay exceeds
  // slo_slowdown × the type's mean service time raises the update signal
  // ("DARC updates reservations whenever a request experiences queuing delays
  // of ten times its average profiled service time", §5.1).
  double slo_slowdown = 10.0;
};

class Profiler {
 public:
  explicit Profiler(const ProfilerConfig& config) : config_(config) {}

  // Grows the per-type tables to cover `count` types.
  void ResizeTypes(size_t count);

  // Called when a worker signals completion (≈75-cycle budget in the paper).
  void RecordCompletion(TypeIndex type, Nanos service_time);

  // Called at dispatch time with the request's queueing delay. Raises the
  // update signal when the delay violates the slowdown SLO for its type.
  void ObserveQueueingDelay(TypeIndex type, Nanos delay);

  // Current per-type mean service time estimate in nanos (lifetime estimate,
  // falling back to a seeded hint before any samples arrive). 0 = unknown.
  Nanos MeanServiceTime(TypeIndex type) const;

  // Seeds a type's profile (expected mean + relative occurrence weight),
  // letting deployments start with a steady-state reservation instead of the
  // c-FCFS bootstrap window.
  void SeedProfile(TypeIndex type, Nanos mean, double ratio);

  // Whether any profile (seeded or measured) can produce demands yet.
  bool HasDemands() const;

  // Checks the transition conditions (≈300-cycle budget). When a reservation
  // update is warranted, returns the new demand vector, records it as the
  // applied demand, and rolls the window. `force` bypasses the delay-signal
  // and deviation gates (used for the bootstrap transition).
  std::optional<std::vector<TypeDemand>> CheckUpdate(bool force = false);

  // Demands from the current window (or seeds), without rolling the window.
  std::vector<TypeDemand> SnapshotDemands() const;

  uint64_t window_samples() const { return window_total_; }
  bool delay_signal() const { return delay_signal_; }
  uint64_t windows_completed() const { return windows_completed_; }

 private:
  struct TypeStats {
    // Window-local EWMA of service time and sample count.
    double window_ewma = 0;
    uint64_t window_count = 0;
    // Long-run estimate used for SLO checks and as fallback between windows.
    double lifetime_ewma = 0;
    uint64_t lifetime_count = 0;
    // Seeded hints (used until real samples arrive).
    double seed_mean = 0;
    double seed_ratio = 0;
  };

  std::vector<TypeDemand> BuildDemands() const;
  void RollWindow();

  ProfilerConfig config_;
  std::vector<TypeStats> types_;
  uint64_t window_total_ = 0;
  bool delay_signal_ = false;
  uint64_t windows_completed_ = 0;
  // Demand fractions applied by the last reservation, for deviation checks.
  std::vector<double> applied_fractions_;
};

}  // namespace psp

#endif  // PSP_SRC_CORE_PROFILER_H_
