// Request classifiers (paper §4.2): user-defined functions that accept a
// pointer to an application payload (layer 4 and above) and return a request
// type. Unrecognised requests map to kUnknownTypeId and are served from the
// spillway at low priority. At most one classifier is active at a time.
#ifndef PSP_SRC_CORE_CLASSIFIER_H_
#define PSP_SRC_CORE_CLASSIFIER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/request.h"

namespace psp {

class RequestClassifier {
 public:
  virtual ~RequestClassifier() = default;

  // payload points at the application-level bytes (the PSP request header for
  // our wire protocol). Must be cheap: classifiers are "bumps-in-the-wire" on
  // the dispatch critical path.
  virtual TypeId Classify(const std::byte* payload, size_t length) const = 0;

  virtual std::string Name() const = 0;
};

// Reads the request type from a fixed-offset 32-bit header field — the common
// case for protocols like Memcached/Redis/Protobuf where "the request type's
// position is known in the header". This is the classifier used by all paper
// experiments (≈100 ns budget).
class HeaderFieldClassifier final : public RequestClassifier {
 public:
  // field_offset: byte offset of the little-endian u32 type field within the
  // payload. Defaults to PspHeader::request_type's offset (4).
  explicit HeaderFieldClassifier(size_t field_offset = 4)
      : field_offset_(field_offset) {}

  TypeId Classify(const std::byte* payload, size_t length) const override {
    if (payload == nullptr || length < field_offset_ + sizeof(TypeId)) {
      return kUnknownTypeId;
    }
    TypeId value;
    __builtin_memcpy(&value, payload + field_offset_, sizeof(TypeId));
    return value;
  }

  std::string Name() const override { return "header-field"; }

 private:
  size_t field_offset_;
};

// Wraps an arbitrary user function (the general "arbitrarily complex
// classifiers" escape hatch of §4.2).
class CallbackClassifier final : public RequestClassifier {
 public:
  using Fn = std::function<TypeId(const std::byte*, size_t)>;

  CallbackClassifier(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  TypeId Classify(const std::byte* payload, size_t length) const override {
    return fn_(payload, length);
  }

  std::string Name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

// A deliberately broken classifier that assigns uniformly random types — the
// adversarial case of §5.6 (Fig 9), whose behaviour must converge to c-FCFS.
class RandomClassifier final : public RequestClassifier {
 public:
  RandomClassifier(std::vector<TypeId> type_ids, uint64_t seed)
      : type_ids_(std::move(type_ids)), rng_(seed) {}

  TypeId Classify(const std::byte*, size_t) const override {
    return type_ids_[rng_.NextBounded(type_ids_.size())];
  }

  std::string Name() const override { return "random"; }

 private:
  std::vector<TypeId> type_ids_;
  mutable Rng rng_;
};

}  // namespace psp

#endif  // PSP_SRC_CORE_CLASSIFIER_H_
