// A fixed-capacity bitset over worker ids with fast "first free worker in
// this set" queries — the data structure behind Algorithm 1's scan over
// reserved ∪ stealable workers and the dispatcher's free-worker list.
#ifndef PSP_SRC_CORE_WORKER_SET_H_
#define PSP_SRC_CORE_WORKER_SET_H_

#include <array>
#include <cstdint>

#include "src/core/request.h"

namespace psp {

inline constexpr uint32_t kMaxWorkers = 256;

class WorkerSet {
 public:
  constexpr WorkerSet() = default;

  void Set(WorkerId id) { words_[id >> 6] |= 1ULL << (id & 63); }
  void Clear(WorkerId id) { words_[id >> 6] &= ~(1ULL << (id & 63)); }
  bool Test(WorkerId id) const {
    return (words_[id >> 6] >> (id & 63)) & 1ULL;
  }

  // Sets [begin, end) word-at-a-time: the first and last words get edge
  // masks, fully covered words in between are written whole.
  void SetRange(WorkerId begin, WorkerId end) {
    if (begin >= end) {
      return;
    }
    const uint32_t first_word = begin >> 6;
    const uint32_t last_word = (end - 1) >> 6;
    const uint64_t head_mask = ~0ULL << (begin & 63);
    const uint64_t tail_mask = ~0ULL >> (63 - ((end - 1) & 63));
    if (first_word == last_word) {
      words_[first_word] |= head_mask & tail_mask;
      return;
    }
    words_[first_word] |= head_mask;
    for (uint32_t w = first_word + 1; w < last_word; ++w) {
      words_[w] = ~0ULL;
    }
    words_[last_word] |= tail_mask;
  }

  // Clears [begin, end) word-at-a-time with the same edge-mask scheme.
  void ClearRange(WorkerId begin, WorkerId end) {
    if (begin >= end) {
      return;
    }
    const uint32_t first_word = begin >> 6;
    const uint32_t last_word = (end - 1) >> 6;
    const uint64_t head_mask = ~0ULL << (begin & 63);
    const uint64_t tail_mask = ~0ULL >> (63 - ((end - 1) & 63));
    if (first_word == last_word) {
      words_[first_word] &= ~(head_mask & tail_mask);
      return;
    }
    words_[first_word] &= ~head_mask;
    for (uint32_t w = first_word + 1; w < last_word; ++w) {
      words_[w] = 0;
    }
    words_[last_word] &= ~tail_mask;
  }

  void ClearAll() { words_.fill(0); }

  bool Empty() const {
    for (const uint64_t w : words_) {
      if (w != 0) {
        return false;
      }
    }
    return true;
  }

  uint32_t Count() const {
    uint32_t n = 0;
    for (const uint64_t w : words_) {
      n += static_cast<uint32_t>(__builtin_popcountll(w));
    }
    return n;
  }

  // Lowest worker id present in (*this ∩ other), or kInvalidWorker.
  WorkerId FirstCommon(const WorkerSet& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      const uint64_t inter = words_[i] & other.words_[i];
      if (inter != 0) {
        return static_cast<WorkerId>(i * 64 +
                                     static_cast<uint32_t>(__builtin_ctzll(inter)));
      }
    }
    return kInvalidWorker;
  }

  // Lowest worker id present, or kInvalidWorker.
  WorkerId First() const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] != 0) {
        return static_cast<WorkerId>(
            i * 64 + static_cast<uint32_t>(__builtin_ctzll(words_[i])));
      }
    }
    return kInvalidWorker;
  }

  WorkerSet Union(const WorkerSet& other) const {
    WorkerSet out;
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = words_[i] | other.words_[i];
    }
    return out;
  }

  WorkerSet Intersect(const WorkerSet& other) const {
    WorkerSet out;
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = words_[i] & other.words_[i];
    }
    return out;
  }

  bool operator==(const WorkerSet& other) const = default;

 private:
  std::array<uint64_t, kMaxWorkers / 64> words_{};
};

}  // namespace psp

#endif  // PSP_SRC_CORE_WORKER_SET_H_
