#include "src/core/reservation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace psp {
namespace {

// Hands out worker ids 0..W-1 in ascending order; once exhausted, cycles over
// the designated spillway cores (the trailing `num_spillway` ids). This is
// the paper's next_free_worker(): "If there are no more free workers,
// next_free_worker() returns a spillway core."
class WorkerAllocator {
 public:
  WorkerAllocator(uint32_t num_workers, uint32_t num_spillway)
      : num_workers_(num_workers),
        num_spillway_(std::min(std::max(num_spillway, 1u), num_workers)) {}

  // Returns {worker, was_spillway}.
  std::pair<WorkerId, bool> Next() {
    if (next_ < num_workers_) {
      return {next_++, false};
    }
    const WorkerId w = num_workers_ - num_spillway_ + spillway_cursor_;
    spillway_cursor_ = (spillway_cursor_ + 1) % num_spillway_;
    return {w, true};
  }

  // Workers not yet handed out as reservations.
  WorkerSet Remaining() const {
    WorkerSet s;
    s.SetRange(next_, num_workers_);
    return s;
  }

  WorkerSet SpillwaySet() const {
    WorkerSet s;
    s.SetRange(num_workers_ - num_spillway_, num_workers_);
    return s;
  }

 private:
  uint32_t num_workers_;
  uint32_t num_spillway_;
  WorkerId next_ = 0;
  uint32_t spillway_cursor_ = 0;
};

}  // namespace

std::vector<std::vector<size_t>> GroupTypes(const std::vector<TypeDemand>& demands,
                                            double delta) {
  std::vector<size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return demands[a].mean_service_nanos < demands[b].mean_service_nanos;
  });

  std::vector<std::vector<size_t>> groups;
  for (const size_t idx : order) {
    const double mean = demands[idx].mean_service_nanos;
    if (!groups.empty()) {
      const double head_mean =
          demands[groups.back().front()].mean_service_nanos;
      // A type joins the current group while its mean service time falls
      // within a factor δ of the group head's.
      if (head_mean <= 0 ? mean <= 0 : mean <= delta * head_mean) {
        groups.back().push_back(idx);
        continue;
      }
    }
    groups.push_back({idx});
  }
  return groups;
}

Reservation ComputeReservation(const std::vector<TypeDemand>& demands,
                               const ReservationConfig& config) {
  Reservation out;
  out.num_workers = config.num_workers;
  TypeIndex max_type = 0;
  for (const auto& d : demands) {
    max_type = std::max(max_type, d.type);
  }
  out.group_of_type.assign(demands.empty() ? 0 : max_type + 1, 0);
  if (demands.empty() || config.num_workers == 0) {
    return out;
  }

  // Normalise occurrence ratios; split off zero-demand types (unseen in the
  // current window): they are served from the spillway, never from a
  // dedicated reservation.
  double ratio_sum = 0;
  for (const auto& d : demands) {
    ratio_sum += std::max(0.0, d.ratio);
  }
  std::vector<TypeDemand> active;
  std::vector<size_t> idle_types;  // indices into `demands`
  active.reserve(demands.size());
  for (size_t i = 0; i < demands.size(); ++i) {
    const double r =
        ratio_sum > 0 ? std::max(0.0, demands[i].ratio) / ratio_sum : 0.0;
    if (r > 0 && demands[i].mean_service_nanos > 0) {
      TypeDemand d = demands[i];
      d.ratio = r;
      active.push_back(d);
    } else {
      idle_types.push_back(i);
    }
  }

  WorkerAllocator alloc(config.num_workers, config.num_spillway);

  if (!active.empty()) {
    // S ← Σ S_j · R_j over the whole workload.
    double total_weighted = 0;
    for (const auto& d : active) {
      total_weighted += d.mean_service_nanos * d.ratio;
    }

    const auto groups = GroupTypes(active, config.delta);
    for (const auto& member_idx : groups) {
      ReservedGroup g;
      double group_weighted = 0;
      double group_ratio = 0;
      for (const size_t mi : member_idx) {
        g.members.push_back(active[mi].type);
        group_weighted += active[mi].mean_service_nanos * active[mi].ratio;
        group_ratio += active[mi].ratio;
      }
      g.mean_service_nanos = group_ratio > 0 ? group_weighted / group_ratio : 0;
      g.demand_fraction = total_weighted > 0 ? group_weighted / total_weighted : 0;
      g.demand_workers = g.demand_fraction * config.num_workers;

      uint32_t p = static_cast<uint32_t>(std::llround(g.demand_workers));
      if (p == 0) {
        p = 1;  // "We always assign at least one worker to a group."
      }
      for (uint32_t i = 0; i < p; ++i) {
        const auto [w, was_spillway] = alloc.Next();
        g.reserved.Set(w);
        g.uses_spillway = g.uses_spillway || was_spillway;
      }
      g.reserved_count = g.reserved.Count();
      // Workers not yet reserved when this group was processed: the group may
      // steal cycles from them (shorter groups steal from longer ones).
      g.stealable = alloc.Remaining();
      out.groups.push_back(std::move(g));
    }
  }

  // Idle/unseen types share a trailing spillway group.
  if (!idle_types.empty()) {
    ReservedGroup g;
    for (const size_t i : idle_types) {
      g.members.push_back(demands[i].type);
    }
    g.reserved = alloc.SpillwaySet();
    g.reserved_count = g.reserved.Count();
    g.uses_spillway = true;
    out.groups.push_back(std::move(g));
  }

  // Map types to their group and account CPU waste. A group's granted surplus
  // (rounding up, or the minimum-one-worker floor) counts as waste only when
  // no shorter group can absorb it by stealing: shorter groups steal from
  // workers reserved later, so a surplus on group g offsets the accumulated
  // deficit of earlier groups (§5.4.3: TPC-C has "no average CPU waste"
  // because under-provisioned A and B steal from over-provisioned C), while a
  // surplus on the *first* group is unreachable by anyone and is pure waste
  // (Eq. 2 / the 0.86-core figure of §5.2).
  double deficit_pool = 0;
  for (size_t gi = 0; gi < out.groups.size(); ++gi) {
    auto& g = out.groups[gi];
    for (const TypeIndex t : g.members) {
      if (t < out.group_of_type.size()) {
        out.group_of_type[t] = static_cast<uint32_t>(gi);
      }
    }
    if (g.uses_spillway) {
      continue;
    }
    const double surplus =
        static_cast<double>(g.reserved_count) - g.demand_workers;
    if (surplus >= 0) {
      if (gi == 0) {
        out.cpu_waste += surplus;
      } else {
        const double absorbed = std::min(surplus, deficit_pool);
        out.cpu_waste += surplus - absorbed;
        deficit_pool -= absorbed;
      }
    } else {
      deficit_pool += -surplus;
    }
  }
  return out;
}

Reservation ComputeStaticReservation(const std::vector<TypeDemand>& demands,
                                     uint32_t num_workers,
                                     uint32_t reserved_for_short) {
  Reservation out;
  out.num_workers = num_workers;
  TypeIndex max_type = 0;
  for (const auto& d : demands) {
    max_type = std::max(max_type, d.type);
  }
  out.group_of_type.assign(demands.empty() ? 0 : max_type + 1, 0);
  if (demands.empty() || num_workers == 0) {
    return out;
  }
  const uint32_t k = std::min(reserved_for_short, num_workers);

  // Shortest type by declared mean service time, ignoring unseen types
  // (zero mean), which carry no information.
  size_t shortest = 0;
  bool found = false;
  for (size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].mean_service_nanos <= 0) {
      continue;
    }
    if (!found ||
        demands[i].mean_service_nanos < demands[shortest].mean_service_nanos) {
      shortest = i;
      found = true;
    }
  }

  ReservedGroup short_group;
  short_group.members.push_back(demands[shortest].type);
  short_group.mean_service_nanos = demands[shortest].mean_service_nanos;
  short_group.reserved.SetRange(0, k);
  short_group.reserved_count = k;
  short_group.stealable.SetRange(k, num_workers);

  ReservedGroup long_group;
  for (size_t i = 0; i < demands.size(); ++i) {
    if (i != shortest) {
      long_group.members.push_back(demands[i].type);
    }
  }
  if (k < num_workers) {
    long_group.reserved.SetRange(k, num_workers);
  } else {
    // Fully reserved for shorts: longs fall back to the spillway core so they
    // are starved of reservations but never denied service outright.
    long_group.reserved.Set(num_workers - 1);
    long_group.uses_spillway = true;
  }
  long_group.reserved_count = long_group.reserved.Count();

  for (const TypeIndex t : short_group.members) {
    if (t < out.group_of_type.size()) {
      out.group_of_type[t] = 0;
    }
  }
  for (const TypeIndex t : long_group.members) {
    if (t < out.group_of_type.size()) {
      out.group_of_type[t] = 1;
    }
  }
  out.groups.push_back(std::move(short_group));
  if (!long_group.members.empty()) {
    out.groups.push_back(std::move(long_group));
  }
  return out;
}

}  // namespace psp
