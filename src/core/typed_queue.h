// Bounded FIFO request queue specialised for a single request type
// (paper §4.3: "typed queues, i.e., buffers specialized for a single request
// type"). Bounded capacity implements the flow-control rule of §4.3.3: "the
// dispatcher drops requests from typed queues that are full", shedding load
// only for overloaded types.
#ifndef PSP_SRC_CORE_TYPED_QUEUE_H_
#define PSP_SRC_CORE_TYPED_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "src/core/request.h"

namespace psp {

// All mutation happens on the single scheduling thread; size_/drops_ are
// relaxed atomics only so cross-thread introspection (telemetry snapshots,
// the time-series gauge sampler) reads them race-free. Single-writer
// load+store increments keep the hot path at plain-store cost (no RMW).
class TypedQueue {
 public:
  explicit TypedQueue(size_t capacity = 4096)
      : capacity_(capacity), slots_(capacity) {}

  TypedQueue(TypedQueue&& other) noexcept
      : capacity_(other.capacity_),
        slots_(std::move(other.slots_)),
        head_(other.head_),
        tail_(other.tail_) {
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    drops_.store(other.drops_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }

  // Returns false (and counts a drop) when the queue is full.
  bool Push(const Request& request) {
    const size_t size = size_.load(std::memory_order_relaxed);
    if (size == capacity_) {
      CountDrop();
      return false;
    }
    slots_[tail_] = request;
    tail_ = Next(tail_);
    size_.store(size + 1, std::memory_order_relaxed);
    return true;
  }

  // Re-inserts a request at the head (used by preemptive policies that
  // enqueue preempted work "at the head of their respective queue", §5.1).
  bool PushFront(const Request& request) {
    const size_t size = size_.load(std::memory_order_relaxed);
    if (size == capacity_) {
      CountDrop();
      return false;
    }
    head_ = Prev(head_);
    slots_[head_] = request;
    size_.store(size + 1, std::memory_order_relaxed);
    return true;
  }

  bool Pop(Request* out) {
    const size_t size = size_.load(std::memory_order_relaxed);
    if (size == 0) {
      return false;
    }
    *out = slots_[head_];
    head_ = Next(head_);
    size_.store(size - 1, std::memory_order_relaxed);
    return true;
  }

  const Request& Front() const { return slots_[head_]; }

  bool Empty() const { return Size() == 0; }
  size_t Size() const { return size_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }
  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }

  // Queueing delay of the head request at `now`; 0 when empty.
  Nanos HeadDelay(Nanos now) const {
    return Empty() ? 0 : now - slots_[head_].arrival;
  }

 private:
  size_t Next(size_t i) const { return i + 1 == capacity_ ? 0 : i + 1; }
  size_t Prev(size_t i) const { return i == 0 ? capacity_ - 1 : i - 1; }

  void CountDrop() {
    drops_.store(drops_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  }

  size_t capacity_;
  std::vector<Request> slots_;
  size_t head_ = 0;
  size_t tail_ = 0;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> drops_{0};
};

}  // namespace psp

#endif  // PSP_SRC_CORE_TYPED_QUEUE_H_
