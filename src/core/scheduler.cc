#include "src/core/scheduler.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/sched/admission.h"
#include "src/sched/slack_reservation.h"

namespace psp {
namespace {

// kDarcSlack feeds ComputeSlackReservation budgets parallel to `demands`.
std::vector<Nanos> BudgetsFor(const std::vector<TypeDemand>& demands,
                              const std::vector<Nanos>& targets) {
  std::vector<Nanos> budgets;
  budgets.reserve(demands.size());
  for (const TypeDemand& d : demands) {
    budgets.push_back(d.type < targets.size() ? targets[d.type] : 0);
  }
  return budgets;
}

}  // namespace

std::string SchedulerConfig::Validate() const {
  if (num_workers == 0) {
    return "scheduler: num_workers must be > 0";
  }
  if (num_workers > kMaxWorkers) {
    return "scheduler: num_workers exceeds kMaxWorkers (" +
           std::to_string(kMaxWorkers) + ")";
  }
  if (typed_queue_capacity == 0) {
    return "scheduler: typed_queue_capacity must be > 0";
  }
  if (num_spillway > num_workers) {
    return "scheduler: num_spillway exceeds num_workers";
  }
  if (delta <= 1.0) {
    return "scheduler: delta (grouping factor) must be > 1";
  }
  if (mode == PolicyMode::kDarcStatic && static_reserved >= num_workers) {
    return "scheduler: static_reserved must leave at least one worker for "
           "other types (static_reserved < num_workers)";
  }
  if (const std::string error = deadline.Validate(); !error.empty()) {
    return "scheduler: " + error;
  }
  if (deadline.shed && !deadline.enabled() && mode != PolicyMode::kEdf &&
      mode != PolicyMode::kDarcSlack) {
    return "scheduler: deadline.shed without any deadline targets";
  }
  return "";
}

DarcScheduler::DarcScheduler(const SchedulerConfig& config)
    : config_(config),
      profiler_(config.profiler),
      edf_queue_(config.typed_queue_capacity) {
  if (const std::string error = config_.Validate(); !error.empty()) {
    throw std::invalid_argument(error);
  }
  free_.SetRange(0, config_.num_workers);
  free_count_.store(config_.num_workers, std::memory_order_relaxed);
  all_workers_.SetRange(0, config_.num_workers);
  const uint32_t spill =
      std::min(std::max(config_.num_spillway, 1u), config_.num_workers);
  spillway_.SetRange(config_.num_workers - spill, config_.num_workers);

  // Slot 0 is the UNKNOWN type: low-priority queue served on spillway cores.
  wire_ids_.push_back(kUnknownTypeId);
  names_.push_back("UNKNOWN");
  queues_.emplace_back(config_.typed_queue_capacity);
  seed_means_.push_back(0);
  seed_ratios_.push_back(0);
  deadline_targets_.push_back(0);  // UNKNOWN carries no deadline budget
  deadline_types_.emplace_back();
  profiler_.ResizeTypes(1);
  RebuildPriorityOrder();
}

TypeIndex DarcScheduler::RegisterType(TypeId wire_id, std::string name,
                                      Nanos expected_mean,
                                      double expected_ratio) {
  assert(wire_id != kUnknownTypeId);
  const auto index = static_cast<TypeIndex>(wire_ids_.size());
  wire_ids_.push_back(wire_id);
  names_.push_back(std::move(name));
  queues_.emplace_back(config_.typed_queue_capacity);
  seed_means_.push_back(expected_mean);
  seed_ratios_.push_back(expected_ratio);
  // The budget is resolved once against the *seeded* mean: a deterministic
  // per-type constant (ingress stamping must not drift with the profile).
  deadline_targets_.push_back(
      config_.deadline.BudgetFor(names_.back(), expected_mean));
  deadline_types_.emplace_back();
  profiler_.ResizeTypes(wire_ids_.size());
  if (expected_mean > 0) {
    profiler_.SeedProfile(index, expected_mean, expected_ratio);
  }
  RebuildPriorityOrder();
  return index;
}

TypeIndex DarcScheduler::ResolveType(TypeId wire_id) const {
  // Linear scan: the paper's workloads have ≤ 5 types; registries stay tiny.
  for (size_t i = 1; i < wire_ids_.size(); ++i) {
    if (wire_ids_[i] == wire_id) {
      return static_cast<TypeIndex>(i);
    }
  }
  return kUnknownSlot;
}

void DarcScheduler::ActivateSeededReservation(Nanos now) {
  // The UNKNOWN slot is excluded: ApplyReservation routes it to the spillway.
  std::vector<TypeDemand> demands;
  demands.reserve(names_.size());
  for (size_t i = 1; i < names_.size(); ++i) {
    demands.push_back(TypeDemand{static_cast<TypeIndex>(i),
                                 static_cast<double>(seed_means_[i]),
                                 seed_ratios_[i]});
  }
  if (config_.mode == PolicyMode::kDarcStatic) {
    ApplyReservation(ComputeStaticReservation(demands, config_.num_workers,
                                              config_.static_reserved),
                     now);
  } else {
    ApplyAdaptiveReservation(demands, now);
  }
}

void DarcScheduler::ApplyAdaptiveReservation(
    const std::vector<TypeDemand>& demands, Nanos now) {
  const ReservationConfig rc{config_.num_workers, config_.delta,
                             config_.num_spillway};
  if (config_.mode == PolicyMode::kDarcSlack) {
    ApplyReservation(ComputeSlackReservation(
                         demands, BudgetsFor(demands, deadline_targets_), rc),
                     now);
  } else {
    ApplyReservation(ComputeReservation(demands, rc), now);
  }
}

void DarcScheduler::ResizeWorkers(uint32_t new_count, Nanos now) {
  assert(new_count > 0 && new_count <= kMaxWorkers);
  const uint32_t old_count = config_.num_workers;
  config_.num_workers = new_count;
  if (telemetry_ != nullptr) {
    telemetry_->RecordEvent(now, "scheduler: resized workers " +
                                     std::to_string(old_count) + " -> " +
                                     std::to_string(new_count));
  }

  all_workers_.ClearAll();
  all_workers_.SetRange(0, new_count);
  const uint32_t spill =
      std::min(std::max(config_.num_spillway, 1u), new_count);
  spillway_.ClearAll();
  spillway_.SetRange(new_count - spill, new_count);

  if (new_count > old_count) {
    // Grown workers start idle.
    free_.SetRange(old_count, new_count);
  } else {
    // Retired workers leave the free list now; busy ones simply never return
    // to it (OnCompletion ignores out-of-range workers).
    free_.ClearRange(new_count, old_count);
  }
  free_count_.store(free_.Count(), std::memory_order_relaxed);
  if (time_ledger_ != nullptr) {
    time_ledger_->SetNumWorkers(new_count, now);
  }

  if (!darc_active_.load(std::memory_order_relaxed)) {
    ReclassifyIdleWorkers(now);
    return;
  }
  // Re-derive the reservation for the new pool from the freshest profile.
  std::vector<TypeDemand> demands = profiler_.SnapshotDemands();
  // Strip the UNKNOWN slot; ApplyReservation routes it to the spillway.
  if (!demands.empty()) {
    demands.erase(demands.begin());
    // A freshly-rolled window can be empty: fall back to lifetime means,
    // then seeds, so a resize never degrades every type to the spillway.
    double ratio_total = 0;
    for (auto& d : demands) {
      if (d.mean_service_nanos <= 0) {
        const Nanos lifetime = profiler_.MeanServiceTime(d.type);
        if (lifetime > 0) {
          d.mean_service_nanos = static_cast<double>(lifetime);
        } else if (d.type < seed_means_.size()) {
          d.mean_service_nanos = static_cast<double>(seed_means_[d.type]);
        }
      }
      if (d.ratio <= 0 && d.type < seed_ratios_.size()) {
        d.ratio = seed_ratios_[d.type];
      }
      ratio_total += d.ratio;
    }
    if (ratio_total <= 0) {
      for (auto& d : demands) {
        d.ratio = 1.0;  // no occurrence data at all: split evenly
      }
    }
  }
  if (config_.mode == PolicyMode::kDarcStatic) {
    ApplyReservation(ComputeStaticReservation(demands, new_count,
                                              config_.static_reserved),
                     now);
  } else {
    ApplyAdaptiveReservation(demands, now);
  }
}

Nanos DarcScheduler::ExpectedMeanOf(TypeIndex t) const {
  const Nanos profiled = profiler_.MeanServiceTime(t);
  if (profiled > 0) {
    return profiled;
  }
  return t < seed_means_.size() ? seed_means_[t] : 0;
}

DarcScheduler::EnqueueResult DarcScheduler::TryEnqueue(const Request& request,
                                                       Nanos now) {
  assert(request.type < queues_.size());
  const TypeIndex type = request.type;

  // Admission control (src/sched/admission.h): shed a request whose
  // predicted completion already misses its deadline, before it consumes
  // queue space. The per-type shed counters feed psp_deadline_* telemetry;
  // the engines route kShed into their existing drop paths.
  if (config_.deadline.shed && request.deadline > 0) {
    const uint32_t servers =
        darc_active_.load(std::memory_order_relaxed)
            ? std::max(reserved_workers_of(type), 1u)
            : config_.num_workers;
    const AdmissionDecision decision = PredictAdmission(
        now, request.deadline, queue_depth(type), ExpectedMeanOf(type),
        servers,
        static_cast<int64_t>(config_.deadline.shed_safety * 1000.0));
    if (!decision.admit) {
      counters_.dropped.fetch_add(1, std::memory_order_relaxed);
      deadline_counters_.shed.fetch_add(1, std::memory_order_relaxed);
      const uint64_t sheds =
          deadline_types_[type].shed.fetch_add(1, std::memory_order_relaxed) +
          1;
      if (telemetry_ != nullptr && (sheds & (sheds - 1)) == 0) {
        telemetry_->RecordEvent(
            now, "scheduler: deadline shed #" + std::to_string(sheds) +
                     " type " + names_[type] + " (predicted completion " +
                     std::to_string(decision.predicted_completion) +
                     " > deadline " + std::to_string(request.deadline) + ")");
      }
      return EnqueueResult::kShed;
    }
  }

  bool pushed;
  if (config_.mode == PolicyMode::kEdf) {
    pushed = edf_queue_.Push(request);
    if (pushed) {
      deadline_types_[type].edf_depth.fetch_add(1, std::memory_order_relaxed);
    } else {
      deadline_types_[type].queue_drops.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  } else {
    pushed = queues_[type].Push(request);
  }
  if (!pushed) {
    counters_.dropped.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) {
      // Rate-limited (power-of-two drop counts) so a sustained overload
      // doesn't flood the bounded event buffer.
      const uint64_t drops = queue_drops(type);
      if ((drops & (drops - 1)) == 0) {
        telemetry_->RecordEvent(
            now, "scheduler: queue drop #" + std::to_string(drops) +
                     " type " + names_[type] + " (depth " +
                     std::to_string(queue_depth(type)) + ")");
      }
    }
    return EnqueueResult::kQueueFull;
  }
  counters_.enqueued.fetch_add(1, std::memory_order_relaxed);
  if (request.deadline > 0) {
    deadline_counters_.stamped.fetch_add(1, std::memory_order_relaxed);
  }
  return EnqueueResult::kOk;
}

DarcScheduler::Assignment DarcScheduler::MakeAssignment(TypeIndex type,
                                                        WorkerId worker,
                                                        bool stolen,
                                                        Nanos now) {
  Assignment a;
  // Every dispatch path checks the queue is non-empty before getting here; a
  // false Pop would hand out a default-constructed request.
  const bool popped = queues_[type].Pop(&a.request);
  assert(popped);
  (void)popped;
  a.worker = worker;
  a.stolen = stolen;
  FinishAssignment(&a, type, now);
  return a;
}

void DarcScheduler::FinishAssignment(Assignment* a, TypeIndex type,
                                     Nanos now) {
  MarkWorkerBusy(a->worker);
  if (time_ledger_ != nullptr) {
    time_ledger_->Transition(
        a->worker, a->stolen ? WorkerTimeState::kSteal : WorkerTimeState::kBusy,
        type, now);
  }
  counters_.dispatched.fetch_add(1, std::memory_order_relaxed);
  if (a->stolen) {
    counters_.stolen_dispatches.fetch_add(1, std::memory_order_relaxed);
  }
  profiler_.ObserveQueueingDelay(type, now - a->request.arrival);
  if (a->request.deadline > 0) {
    // Dispatch-time slack: positive = time to spare when service starts,
    // negative = already late. Sum/count render as a Prometheus summary.
    TypeDeadlineStats& stats = deadline_types_[type];
    stats.slack_sum_nanos.fetch_add(
        static_cast<int64_t>(a->request.deadline - now),
        std::memory_order_relaxed);
    stats.slack_samples.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<DarcScheduler::Assignment> DarcScheduler::DispatchEdf(
    Nanos now) {
  // Earliest deadline first, globally across types: one O(1) bucketed-queue
  // pop plus the lowest free worker. Ties (same bucket) drain in FIFO push
  // order — the deterministic tie-break the replay goldens rely on.
  Assignment a;
  if (!edf_queue_.PopEarliest(&a.request)) {
    return std::nullopt;
  }
  a.worker = free_.First();
  a.stolen = false;
  deadline_types_[a.request.type].edf_depth.fetch_sub(
      1, std::memory_order_relaxed);
  FinishAssignment(&a, a.request.type, now);
  return a;
}

std::optional<DarcScheduler::Assignment> DarcScheduler::NextAssignment(
    Nanos now) {
  if (free_.Empty()) {
    return std::nullopt;
  }
  switch (config_.mode) {
    case PolicyMode::kCFcfs:
      return DispatchFcfs(now);
    case PolicyMode::kFixedPriority:
      return DispatchFixedPriority(now);
    case PolicyMode::kEdf:
      return DispatchEdf(now);
    case PolicyMode::kDarc:
    case PolicyMode::kDarcStatic:
    case PolicyMode::kDarcSlack:
      if (!darc_active_.load(std::memory_order_relaxed)) {
        // Bootstrap windows run c-FCFS until the first profile lands (§3).
        return DispatchFcfs(now);
      }
      return DispatchDarc(now);
  }
  return std::nullopt;
}

std::optional<DarcScheduler::Assignment> DarcScheduler::DispatchDarc(
    Nanos now) {
  // Algorithm 1: iterate typed queues sorted by ascending mean service time;
  // for each non-empty queue, search the group's reserved workers first, then
  // its stealable workers. With group_fcfs (the paper's single-queue
  // abstraction), when several types of the *same* group have waiting
  // requests, the globally oldest head goes first.
  uint32_t pending_group = UINT32_MAX;
  TypeIndex pending_type = kInvalidTypeIndex;
  WorkerId pending_worker = kInvalidWorker;
  bool pending_stolen = false;
  Nanos pending_arrival = 0;

  for (const TypeIndex type : priority_order_) {
    if (queues_[type].Empty()) {
      continue;
    }
    const uint32_t gi = type < reservation_.group_of_type.size()
                            ? reservation_.group_of_type[type]
                            : 0;
    if (gi >= reservation_.groups.size()) {
      continue;
    }
    // Crossed into a later group with a dispatchable candidate pending from
    // an earlier one: the earlier group wins.
    if (pending_type != kInvalidTypeIndex && gi != pending_group) {
      break;
    }
    const ReservedGroup& group = reservation_.groups[gi];
    WorkerId w = free_.FirstCommon(group.reserved);
    bool stolen = false;
    if (w == kInvalidWorker && config_.enable_stealing) {
      w = free_.FirstCommon(group.stealable);
      stolen = w != kInvalidWorker;
    }
    if (w == kInvalidWorker) {
      continue;
    }
    if (!config_.group_fcfs) {
      return MakeAssignment(type, w, stolen, now);
    }
    const Nanos arrival = queues_[type].Front().arrival;
    if (pending_type == kInvalidTypeIndex || arrival < pending_arrival) {
      pending_group = gi;
      pending_type = type;
      pending_worker = w;
      pending_stolen = stolen;
      pending_arrival = arrival;
    }
  }
  if (pending_type != kInvalidTypeIndex) {
    return MakeAssignment(pending_type, pending_worker, pending_stolen, now);
  }
  return std::nullopt;
}

std::optional<DarcScheduler::Assignment> DarcScheduler::DispatchFcfs(
    Nanos now) {
  // Centralized FCFS: dispatch the globally oldest queued request to any free
  // worker (typed queues are each FIFO, so the oldest overall is some head).
  TypeIndex best = kInvalidTypeIndex;
  Nanos best_arrival = 0;
  for (TypeIndex t = 0; t < queues_.size(); ++t) {
    if (queues_[t].Empty()) {
      continue;
    }
    const Nanos arr = queues_[t].Front().arrival;
    if (best == kInvalidTypeIndex || arr < best_arrival) {
      best = t;
      best_arrival = arr;
    }
  }
  if (best == kInvalidTypeIndex) {
    return std::nullopt;
  }
  const WorkerId w = free_.First();
  return MakeAssignment(best, w, /*stolen=*/false, now);
}

std::optional<DarcScheduler::Assignment> DarcScheduler::DispatchFixedPriority(
    Nanos now) {
  for (const TypeIndex type : priority_order_) {
    if (queues_[type].Empty()) {
      continue;
    }
    const WorkerId w = free_.First();
    return MakeAssignment(type, w, /*stolen=*/false, now);
  }
  return std::nullopt;
}

void DarcScheduler::OnCompletion(WorkerId worker, TypeIndex type,
                                 Nanos service_time, Nanos now,
                                 Nanos deadline) {
  assert(worker < kMaxWorkers);
  if (worker < config_.num_workers && !free_.Test(worker)) {
    MarkWorkerFree(worker);
    if (time_ledger_ != nullptr) {
      time_ledger_->Transition(worker, IdleStateOf(worker),
                               WorkerTimeLedger::kUntyped, now);
    }
  }
  // Workers at or beyond num_workers were retired by ResizeWorkers while
  // running; their completion still feeds the profiler but they never
  // re-enter the free list.
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  profiler_.RecordCompletion(type, service_time);
  if (deadline > 0) {
    if (now > deadline) {
      deadline_counters_.missed.fetch_add(1, std::memory_order_relaxed);
      deadline_types_[type].missed.fetch_add(1, std::memory_order_relaxed);
    } else {
      deadline_counters_.met.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (config_.mode != PolicyMode::kDarc &&
      config_.mode != PolicyMode::kDarcStatic &&
      config_.mode != PolicyMode::kDarcSlack) {
    return;
  }
  if (!darc_active_.load(std::memory_order_relaxed)) {
    // Bootstrap: transition out of c-FCFS once the first window has enough
    // samples.
    if (profiler_.window_samples() >= config_.profiler.min_window_samples) {
      if (auto demands = profiler_.CheckUpdate(/*force=*/true)) {
        NoteWindowRollover(now);
        if (telemetry_ != nullptr) {
          telemetry_->RecordEvent(
              now, "scheduler: bootstrap complete, leaving c-FCFS");
        }
        if (config_.mode == PolicyMode::kDarcStatic) {
          ApplyReservation(
              ComputeStaticReservation(*demands, config_.num_workers,
                                       config_.static_reserved),
              now);
        } else {
          ApplyAdaptiveReservation(*demands, now);
        }
      }
    }
    return;
  }
  if (config_.mode == PolicyMode::kDarcStatic) {
    return;  // static reservations never adapt
  }
  if (auto demands = profiler_.CheckUpdate()) {
    NoteWindowRollover(now);
    ApplyAdaptiveReservation(*demands, now);
  }
}

void DarcScheduler::NoteWindowRollover(Nanos now) {
  if (telemetry_ == nullptr) {
    return;
  }
  telemetry_->RecordEvent(
      now, "profiler: window #" +
               std::to_string(profiler_.windows_completed()) +
               " rolled, recomputing reservation");
}

void DarcScheduler::ExportTelemetry(TelemetrySnapshot* out) const {
  out->counters["scheduler.enqueued"] +=
      counters_.enqueued.load(std::memory_order_relaxed);
  out->counters["scheduler.dropped"] +=
      counters_.dropped.load(std::memory_order_relaxed);
  out->counters["scheduler.dispatched"] +=
      counters_.dispatched.load(std::memory_order_relaxed);
  out->counters["scheduler.completed"] +=
      counters_.completed.load(std::memory_order_relaxed);
  out->counters["scheduler.reservation_updates"] +=
      counters_.reservation_updates.load(std::memory_order_relaxed);
  out->counters["scheduler.stolen_dispatches"] +=
      counters_.stolen_dispatches.load(std::memory_order_relaxed);
  out->gauges["scheduler.idle_workers"] = idle_workers();
  out->gauges["scheduler.darc_active"] =
      darc_active_.load(std::memory_order_relaxed) ? 1 : 0;
  for (TypeIndex t = 0; t < names_.size(); ++t) {
    const std::string prefix = "scheduler.type." + names_[t];
    out->gauges[prefix + ".queue_depth"] =
        static_cast<int64_t>(queue_depth(t));
    out->counters[prefix + ".queue_drops"] += queue_drops(t);
    out->gauges[prefix + ".reserved_workers"] = reserved_workers_of(t);
    out->type_names.emplace(t, names_[t]);
  }

  // Deadline tier: exported only when the tier is in play, so engines
  // without deadlines keep their exact pre-existing telemetry surface.
  // The flat counters fold to psp_deadline_*_total in the Prometheus
  // renderer; the structured per-type records carry the slack summary.
  const bool deadline_active = config_.deadline.enabled() ||
                               config_.mode == PolicyMode::kEdf ||
                               config_.mode == PolicyMode::kDarcSlack;
  if (deadline_active) {
    out->counters["deadline.stamped"] += deadline_stamped();
    out->counters["deadline.shed"] += deadline_shed();
    out->counters["deadline.missed"] += deadline_missed();
    out->counters["deadline.met"] += deadline_met();
    for (TypeIndex t = 0; t < names_.size(); ++t) {
      const TypeDeadlineStats& stats = deadline_types_[t];
      DeadlineTypeStats rec;
      rec.type = t;
      rec.name = names_[t];
      rec.missed = stats.missed.load(std::memory_order_relaxed);
      rec.shed = stats.shed.load(std::memory_order_relaxed);
      rec.slack_sum_nanos =
          stats.slack_sum_nanos.load(std::memory_order_relaxed);
      rec.slack_samples = stats.slack_samples.load(std::memory_order_relaxed);
      rec.budget_nanos = deadline_targets_[t];
      out->deadline_types.push_back(std::move(rec));
    }
  }
}

void DarcScheduler::ApplyReservation(Reservation reservation, Nanos now) {
  // Route the UNKNOWN slot (and any type the reservation does not cover) to
  // the spillway group: find or synthesise a group covering spillway cores.
  reservation.group_of_type.resize(names_.size(), 0);
  uint32_t spill_group = UINT32_MAX;
  for (size_t gi = 0; gi < reservation.groups.size(); ++gi) {
    for (const TypeIndex t : reservation.groups[gi].members) {
      if (t == kUnknownSlot) {
        spill_group = static_cast<uint32_t>(gi);
      }
    }
  }
  if (spill_group == UINT32_MAX) {
    ReservedGroup g;
    g.members.push_back(kUnknownSlot);
    g.reserved = spillway_;
    g.reserved_count = g.reserved.Count();
    g.uses_spillway = true;
    reservation.groups.push_back(std::move(g));
    spill_group = static_cast<uint32_t>(reservation.groups.size() - 1);
  }
  reservation.group_of_type[kUnknownSlot] = spill_group;

  reservation_ = std::move(reservation);
  darc_active_.store(true, std::memory_order_relaxed);
  const uint64_t update_seq =
      counters_.reservation_updates.fetch_add(1, std::memory_order_relaxed) +
      1;

  // Per-type reserved-group core counts from the freshly applied reservation.
  std::vector<uint32_t> reserved_now(names_.size(), 0);
  for (TypeIndex t = 0; t < names_.size(); ++t) {
    const uint32_t gi = reservation_.group_of_type[t];
    if (gi < reservation_.groups.size()) {
      reserved_now[t] = reservation_.groups[gi].reserved_count;
    }
  }

  if (telemetry_ != nullptr) {
    std::string what =
        "scheduler: reservation update #" + std::to_string(update_seq);
    for (size_t gi = 0; gi < reservation_.groups.size(); ++gi) {
      const ReservedGroup& group = reservation_.groups[gi];
      what += gi == 0 ? " [" : " | ";
      for (size_t m = 0; m < group.members.size(); ++m) {
        if (m > 0) {
          what += ',';
        }
        what += names_[group.members[m]];
      }
      what += ':';
      what += std::to_string(group.reserved_count);
    }
    what += "]";
    telemetry_->RecordEvent(now, std::move(what));

    // Per-type transition events (only for types whose share changed) make
    // reservation shifts grep-able in the event log without parsing shares.
    for (TypeIndex t = 1; t < names_.size(); ++t) {
      const uint32_t before =
          t < published_reserved_.size() ? published_reserved_[t] : 0;
      if (before != reserved_now[t]) {
        std::string msg = "scheduler: type ";
        msg += names_[t];
        msg += " reserved cores ";
        msg += std::to_string(before);
        msg += " -> ";
        msg += std::to_string(reserved_now[t]);
        telemetry_->RecordEvent(now, std::move(msg));
      }
    }

    // Structured, machine-readable counterpart (drives the time-series
    // recorder's reservation track and the trace exporter's counter tracks).
    ReservationUpdate update;
    update.at = now;
    update.seq = update_seq;
    update.window = profiler_.windows_completed();
    update.shares.reserve(names_.size());
    for (TypeIndex t = 0; t < names_.size(); ++t) {
      ReservationShare share;
      share.type = t;
      share.name = names_[t];
      share.reserved_workers = reserved_now[t];
      update.shares.push_back(std::move(share));
    }
    telemetry_->RecordReservationUpdate(std::move(update));
  }

  {
    std::lock_guard<std::mutex> lock(published_mutex_);
    published_reserved_ = std::move(reserved_now);
  }
  ReclassifyIdleWorkers(now);
  RebuildPriorityOrder();
}

void DarcScheduler::ReclassifyIdleWorkers(Nanos now) {
  reserved_union_.ClearAll();
  for (const ReservedGroup& group : reservation_.groups) {
    reserved_union_ = reserved_union_.Union(group.reserved);
  }
  reserved_union_ = reserved_union_.Intersect(all_workers_);
  if (time_ledger_ == nullptr) {
    return;
  }
  for (WorkerId w = 0; w < config_.num_workers; ++w) {
    if (free_.Test(w)) {
      time_ledger_->Transition(w, IdleStateOf(w), WorkerTimeLedger::kUntyped,
                               now);
    }
  }
}

void DarcScheduler::RebuildPriorityOrder() {
  priority_order_.clear();
  for (TypeIndex t = 1; t < names_.size(); ++t) {
    priority_order_.push_back(t);
  }
  if (config_.mode == PolicyMode::kDarcSlack) {
    // Tightest deadline budget first: the group whose requests have the
    // least room gets the scan's first shot at a free worker. Budget-less
    // types sort after budgeted ones, by mean as usual.
    std::sort(priority_order_.begin(), priority_order_.end(),
              [this](TypeIndex a, TypeIndex b) {
                const Nanos ba = deadline_targets_[a];
                const Nanos bb = deadline_targets_[b];
                if ((ba > 0) != (bb > 0)) {
                  return ba > 0;  // budgeted types first
                }
                if (ba != bb) {
                  return ba < bb;
                }
                return a < b;
              });
    priority_order_.push_back(kUnknownSlot);
    return;
  }
  std::sort(priority_order_.begin(), priority_order_.end(),
            [this](TypeIndex a, TypeIndex b) {
              Nanos ma = profiler_.MeanServiceTime(a);
              Nanos mb = profiler_.MeanServiceTime(b);
              if (ma == 0) {
                ma = seed_means_[a];
              }
              if (mb == 0) {
                mb = seed_means_[b];
              }
              if (ma != mb) {
                return ma < mb;
              }
              return a < b;
            });
  // UNKNOWN requests are "placed in a low priority queue" (§4.2): last.
  priority_order_.push_back(kUnknownSlot);
}

uint32_t DarcScheduler::reserved_workers_of(TypeIndex t) const {
  if (!darc_active_.load(std::memory_order_relaxed)) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(published_mutex_);
  if (t >= published_reserved_.size()) {
    return 0;
  }
  return published_reserved_[t];
}

}  // namespace psp
