#include "src/core/profiler.h"

#include <algorithm>
#include <cmath>

namespace psp {

void Profiler::ResizeTypes(size_t count) {
  if (count > types_.size()) {
    types_.resize(count);
  }
}

void Profiler::RecordCompletion(TypeIndex type, Nanos service_time) {
  if (type >= types_.size()) {
    return;
  }
  TypeStats& t = types_[type];
  const double s = static_cast<double>(service_time);
  if (t.window_count == 0) {
    t.window_ewma = s;
  } else {
    t.window_ewma += config_.ewma_alpha * (s - t.window_ewma);
  }
  ++t.window_count;
  if (t.lifetime_count == 0) {
    t.lifetime_ewma = s;
  } else {
    t.lifetime_ewma += config_.ewma_alpha * (s - t.lifetime_ewma);
  }
  ++t.lifetime_count;
  ++window_total_;
}

void Profiler::ObserveQueueingDelay(TypeIndex type, Nanos delay) {
  const Nanos mean = MeanServiceTime(type);
  if (mean > 0 &&
      static_cast<double>(delay) > config_.slo_slowdown * static_cast<double>(mean)) {
    delay_signal_ = true;
  }
}

Nanos Profiler::MeanServiceTime(TypeIndex type) const {
  if (type >= types_.size()) {
    return 0;
  }
  const TypeStats& t = types_[type];
  if (t.lifetime_count > 0) {
    return static_cast<Nanos>(t.lifetime_ewma);
  }
  return static_cast<Nanos>(t.seed_mean);
}

void Profiler::SeedProfile(TypeIndex type, Nanos mean, double ratio) {
  ResizeTypes(type + 1);
  types_[type].seed_mean = static_cast<double>(mean);
  types_[type].seed_ratio = ratio;
}

bool Profiler::HasDemands() const {
  for (const auto& t : types_) {
    if (t.window_count > 0 || t.seed_ratio > 0) {
      return true;
    }
  }
  return false;
}

std::vector<TypeDemand> Profiler::BuildDemands() const {
  std::vector<TypeDemand> demands(types_.size());
  for (size_t i = 0; i < types_.size(); ++i) {
    const TypeStats& t = types_[i];
    demands[i].type = static_cast<TypeIndex>(i);
    if (t.window_count > 0 && window_total_ > 0) {
      demands[i].mean_service_nanos = t.window_ewma;
      demands[i].ratio = static_cast<double>(t.window_count) /
                         static_cast<double>(window_total_);
    } else if (t.window_count == 0 && window_total_ == 0 && t.seed_ratio > 0) {
      demands[i].mean_service_nanos = t.seed_mean;
      demands[i].ratio = t.seed_ratio;
    } else {
      // Unseen this window: zero demand, served from the spillway.
      demands[i].mean_service_nanos = 0;
      demands[i].ratio = 0;
    }
  }
  return demands;
}

std::vector<TypeDemand> Profiler::SnapshotDemands() const {
  return BuildDemands();
}

std::optional<std::vector<TypeDemand>> Profiler::CheckUpdate(bool force) {
  if (!force) {
    if (!delay_signal_ || window_total_ < config_.min_window_samples) {
      return std::nullopt;
    }
  } else if (!HasDemands()) {
    return std::nullopt;
  }

  std::vector<TypeDemand> demands = BuildDemands();

  // Demand fractions for the deviation gate.
  double weighted_total = 0;
  for (const auto& d : demands) {
    weighted_total += d.mean_service_nanos * d.ratio;
  }
  std::vector<double> fractions(demands.size(), 0.0);
  if (weighted_total > 0) {
    for (size_t i = 0; i < demands.size(); ++i) {
      fractions[i] = demands[i].mean_service_nanos * demands[i].ratio /
                     weighted_total;
    }
  }

  if (!force && !applied_fractions_.empty()) {
    double deviation = 0;
    const size_t n = std::max(fractions.size(), applied_fractions_.size());
    for (size_t i = 0; i < n; ++i) {
      const double cur = i < fractions.size() ? fractions[i] : 0.0;
      const double old = i < applied_fractions_.size() ? applied_fractions_[i] : 0.0;
      deviation += std::abs(cur - old);
    }
    if (deviation < config_.min_demand_deviation) {
      // Signal observed but demand did not actually move: stay put, clear the
      // signal, and keep accumulating in a fresh window.
      delay_signal_ = false;
      RollWindow();
      return std::nullopt;
    }
  }

  applied_fractions_ = std::move(fractions);
  delay_signal_ = false;
  RollWindow();
  ++windows_completed_;
  return demands;
}

void Profiler::RollWindow() {
  for (auto& t : types_) {
    t.window_ewma = 0;
    t.window_count = 0;
  }
  window_total_ = 0;
}

}  // namespace psp
