// Core request representation shared by the discrete-event simulator and the
// threaded runtime. The scheduler is engine-agnostic: it sees opaque requests
// tagged with a type index and timestamps expressed in Nanos.
#ifndef PSP_SRC_CORE_REQUEST_H_
#define PSP_SRC_CORE_REQUEST_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/telemetry/lifecycle.h"

namespace psp {

using WorkerId = uint32_t;
inline constexpr WorkerId kInvalidWorker = ~WorkerId{0};

// External request-type identifier produced by classifiers (application
// protocol value, e.g. a TPC-C transaction id).
using TypeId = uint32_t;

// Classifier output for unrecognised requests. They are placed in a
// low-priority queue served by the spillway core(s) (paper §4.2).
inline constexpr TypeId kUnknownTypeId = ~TypeId{0};

// Dense internal index assigned by the scheduler's type registry.
using TypeIndex = uint32_t;
inline constexpr TypeIndex kInvalidTypeIndex = ~TypeIndex{0};

struct Request {
  uint64_t id = 0;
  // Internal type index (registry slot), not the wire TypeId.
  TypeIndex type = kInvalidTypeIndex;
  // When the request entered the dispatcher's typed queue.
  Nanos arrival = 0;
  // The true service demand for simulation engines (the scheduler itself
  // never reads this; policies that cheat, like oracle SJF, may).
  Nanos service_demand = 0;
  // Opaque payload handle for the threaded runtime (points into a NIC
  // buffer); unused by the simulator.
  void* payload = nullptr;
  uint32_t payload_length = 0;
  // Wire identity from the PSP header (client's request_id / client_id),
  // preserved so sampled lifecycle records can be joined with client-side
  // trace samples across the process boundary. 0 when not from a wire.
  uint64_t wire_id = 0;
  uint32_t client_id = 0;
  // Absolute completion deadline (engine clock). 0 = no deadline. Stamped at
  // ingress from the wire budget (PspHeader::deadline_us) when the client set
  // one, else from the type's DeadlineConfig target; consumed by the EDF
  // dispatch order, the admission-control shed predicate and the miss/slack
  // accounting in OnCompletion.
  Nanos deadline = 0;
  // Lifecycle trace stamps, carried in-band while the request flows through
  // the pipeline. Zero-initialised and inert unless trace.sampled is set.
  TraceContext trace;
};

}  // namespace psp

#endif  // PSP_SRC_CORE_REQUEST_H_
