// DARC worker reservation — Algorithm 2 of the paper.
//
// Given per-type CPU demand profiles (mean service time S_i and occurrence
// ratio R_i, Eq. 1), the algorithm:
//   1. groups types whose mean service times fall within a factor δ of each
//      other ("grouping lets all request types fit onto a limited number of
//      cores and reduces the number of fractional ties");
//   2. walks groups in ascending service-time order, reserving
//      round(Δ_g · W) workers per group (minimum 1);
//   3. when free workers run out, next_free_worker() returns a spillway core,
//      so no group is ever denied service;
//   4. grants each group the right to *steal* every worker not yet reserved
//      at its turn — i.e., shorter groups may run on cores dedicated to
//      longer ones, never the reverse (cycle stealing, CSCQ-style).
#ifndef PSP_SRC_CORE_RESERVATION_H_
#define PSP_SRC_CORE_RESERVATION_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/core/request.h"
#include "src/core/worker_set.h"

namespace psp {

// One type's profiled demand (inputs to Eq. 1).
struct TypeDemand {
  TypeIndex type = kInvalidTypeIndex;
  double mean_service_nanos = 0;  // S_i
  double ratio = 0;               // R_i (normalised occurrence)
};

// A reserved group of similar types.
struct ReservedGroup {
  std::vector<TypeIndex> members;   // ascending mean service time
  double mean_service_nanos = 0;    // demand-weighted group service time
  double demand_fraction = 0;       // Δ_g in [0, 1]
  double demand_workers = 0;        // Δ_g · W before rounding
  uint32_t reserved_count = 0;      // workers granted (≥ 1)
  bool uses_spillway = false;       // granted only spillway capacity
  WorkerSet reserved;               // dedicated workers
  WorkerSet stealable;              // workers this group may steal
};

struct Reservation {
  std::vector<ReservedGroup> groups;        // ascending service time
  std::vector<uint32_t> group_of_type;      // TypeIndex -> group index
  // Average CPU waste in cores (Eq. 2): Σ over groups with fractional demand
  // f ≥ 0.5 of (1 − f), taking the min-1-worker floor into account.
  double cpu_waste = 0;
  uint32_t num_workers = 0;
};

struct ReservationConfig {
  uint32_t num_workers = 14;
  // Service-time similarity factor δ: consecutive types (sorted ascending)
  // join the current group while mean ≤ δ × group head's mean.
  double delta = 2.0;
  // Number of trailing worker ids designated as spillway cores; they are
  // handed out when next_free_worker() exhausts the free list and always
  // serve UNKNOWN requests. The paper's experiments use 1 (§3).
  uint32_t num_spillway = 1;
};

// Groups types by δ-similarity. `demands` need not be sorted. Returned groups
// (as index lists into `demands`) are sorted by ascending mean service time.
std::vector<std::vector<size_t>> GroupTypes(const std::vector<TypeDemand>& demands,
                                            double delta);

// Runs Algorithm 2. Types with zero observed ratio still get (spillway)
// service. Demands need not be normalised; ratios are normalised internally.
Reservation ComputeReservation(const std::vector<TypeDemand>& demands,
                               const ReservationConfig& config);

// Builds the degenerate "DARC-static" reservation of §5.3: the shortest type
// gets `reserved_for_short` dedicated workers plus the right to steal all
// others; every other type shares the remaining workers without stealing.
// With reserved_for_short == 0 this is plain Fixed Priority.
Reservation ComputeStaticReservation(const std::vector<TypeDemand>& demands,
                                     uint32_t num_workers,
                                     uint32_t reserved_for_short);

}  // namespace psp

#endif  // PSP_SRC_CORE_RESERVATION_H_
