// The DARC scheduler: typed queues + Algorithm 1 dispatch + Algorithm 2
// reservations + profiling windows, behind an engine-agnostic interface.
//
// Both execution engines drive it the same way:
//   * Enqueue(request, now)          when a classified request arrives,
//   * NextAssignment(now) in a loop  after every arrival/completion event,
//   * OnCompletion(worker, ...)      when a worker signals completion.
//
// Besides DARC proper, the scheduler implements the in-Perséphone policy
// variants the paper evaluates: c-FCFS (Fig 3), Fixed Priority and
// "DARC-static" with a manually chosen reservation (Fig 4).
#ifndef PSP_SRC_CORE_SCHEDULER_H_
#define PSP_SRC_CORE_SCHEDULER_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/profiler.h"
#include "src/core/request.h"
#include "src/core/reservation.h"
#include "src/core/typed_queue.h"
#include "src/core/worker_set.h"
#include "src/sched/deadline.h"
#include "src/sched/edf_queue.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeledger.h"

namespace psp {

enum class PolicyMode {
  kDarc,         // full DARC: profiling windows + Algorithm 2 reservations
  kDarcStatic,   // manual reservation for the shortest type (§5.3)
  kCFcfs,        // centralized FCFS within the Perséphone pipeline
  kFixedPriority,// shortest-mean-first priority, no reservations
  kEdf,          // earliest-deadline-first over one bucketed EDF queue
  kDarcSlack     // DARC with deadline-risk-weighted reservations
};

struct SchedulerConfig {
  PolicyMode mode = PolicyMode::kDarc;
  uint32_t num_workers = 14;
  double delta = 2.0;            // δ grouping factor
  uint32_t num_spillway = 1;
  uint32_t static_reserved = 0;  // kDarcStatic: cores reserved for shorts
  size_t typed_queue_capacity = 4096;
  // Ablation knob: disable cycle stealing (short groups may then run only on
  // their reserved cores — pure static partitioning with DARC sizing).
  bool enable_stealing = true;
  // Within a reservation group, dequeue member types in global FCFS order
  // (the paper's "single queue abstraction", §3) instead of Algorithm 1's
  // literal fixed type order. Groups are still visited shortest-first.
  bool group_fcfs = true;
  ProfilerConfig profiler;
  // Deadline tier (src/sched/): per-type budgets resolved at RegisterType,
  // exposed through DeadlineTargetOf for ingress stamping, consumed by the
  // kEdf dispatch order, kDarcSlack reservations and (when deadline.shed)
  // the admission-control predicate in TryEnqueue.
  DeadlineConfig deadline;

  // Empty string = valid; otherwise a description of the misconfiguration.
  // DarcScheduler's constructor calls this and throws std::invalid_argument
  // instead of silently misbehaving.
  std::string Validate() const;
};

class DarcScheduler {
 public:
  explicit DarcScheduler(const SchedulerConfig& config);

  // --- Type registry -------------------------------------------------------

  // Registers an application request type (wire id as produced by the
  // classifier). Optionally seeds its expected mean service time and
  // occurrence ratio so reservations can be computed before profiling data
  // exists. Returns the dense internal index.
  TypeIndex RegisterType(TypeId wire_id, std::string name,
                         Nanos expected_mean = 0, double expected_ratio = 0);

  // Maps a classifier result to the internal index; unrecognised wire ids
  // resolve to the UNKNOWN slot (low-priority, spillway-served).
  TypeIndex ResolveType(TypeId wire_id) const;
  TypeIndex unknown_type() const { return kUnknownSlot; }
  size_t num_types() const { return names_.size(); }
  const std::string& type_name(TypeIndex t) const { return names_[t]; }

  // Applies the seeded profiles immediately (skips the c-FCFS bootstrap
  // window). Requires every registered type to carry seed hints. `now`
  // timestamps the resulting reservation-update event.
  void ActivateSeededReservation(Nanos now = 0);

  // Datacenter core-allocator hook (§6): grows or shrinks the worker pool at
  // runtime and recomputes the reservation for the new size. Shrinking
  // retires the highest-numbered workers: any request already running there
  // completes normally, after which the worker is never assigned again.
  // `now` timestamps the resize + reservation-update events.
  void ResizeWorkers(uint32_t new_count, Nanos now = 0);

  // The type's relative deadline budget (0 = none), resolved from
  // SchedulerConfig::deadline at registration against the seeded mean.
  // Engines stamp `Request::deadline = arrival + budget` at ingress when the
  // wire carried no explicit budget.
  Nanos DeadlineTargetOf(TypeIndex t) const {
    return t < deadline_targets_.size() ? deadline_targets_[t] : 0;
  }

  // --- Data path -----------------------------------------------------------

  enum class EnqueueResult {
    kOk,         // admitted
    kQueueFull,  // flow-control drop (queue at capacity)
    kShed        // admission control predicted a deadline miss
  };

  // Enqueues into the request's typed queue (or the EDF queue under kEdf),
  // running the admission-control shed predicate first when the deadline
  // tier has shedding enabled.
  EnqueueResult TryEnqueue(const Request& request, Nanos now);

  // Legacy boolean surface; false = not admitted (either drop reason).
  bool Enqueue(const Request& request, Nanos now) {
    return TryEnqueue(request, now) == EnqueueResult::kOk;
  }

  struct Assignment {
    Request request;
    WorkerId worker = kInvalidWorker;
    bool stolen = false;  // dispatched onto a stealable (not reserved) worker
  };

  // One step of Algorithm 1: picks the highest-priority dispatchable request
  // and a worker for it. Call in a loop until nullopt after every event.
  std::optional<Assignment> NextAssignment(Nanos now);

  // Worker signalled completion of a request of type `type` that occupied the
  // CPU for `service_time`. `deadline` is the completed request's absolute
  // deadline (0 = none) and feeds the miss/met accounting — the engines
  // carry it through their completion signals.
  void OnCompletion(WorkerId worker, TypeIndex type, Nanos service_time,
                    Nanos now, Nanos deadline = 0);

  // --- Telemetry / introspection -------------------------------------------

  // Hooks the scheduler up to an engine's telemetry: reservation changes,
  // worker-pool resizes, profiler window rollovers and queue drops are
  // recorded as timestamped events, and each applied reservation is also
  // published as a structured ReservationUpdate (machine-readable shares).
  // Counters are kept internally (always on) and published through
  // ExportTelemetry.
  void AttachTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  // Hooks the scheduler up to the engine's worker time-provenance ledger
  // (not owned; must outlive the scheduler's data path). The scheduler
  // stamps the worker-slot state machine — busy/steal on dispatch,
  // reserved_idle/free_idle on completion and at every reservation change —
  // which is what makes the ledger identical across both substrates.
  void AttachTimeLedger(WorkerTimeLedger* ledger) { time_ledger_ = ledger; }

  // Publishes the scheduler's counters ("scheduler.*") and per-type queue
  // gauges into `out`. Safe to call from any thread while the data path runs.
  void ExportTelemetry(TelemetrySnapshot* out) const;

  bool darc_active() const {
    return darc_active_.load(std::memory_order_relaxed);
  }
  const Reservation& reservation() const { return reservation_; }
  const Profiler& profiler() const { return profiler_; }
  // Applied reservation count; cheap enough to poll (one relaxed load).
  uint64_t reservation_updates() const {
    return counters_.reservation_updates.load(std::memory_order_relaxed);
  }
  uint64_t completed() const {
    return counters_.completed.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    return counters_.dropped.load(std::memory_order_relaxed);
  }
  uint64_t stolen_dispatches() const {
    return counters_.stolen_dispatches.load(std::memory_order_relaxed);
  }
  uint64_t queue_drops(TypeIndex t) const {
    return queues_[t].drops() +
           deadline_types_[t].queue_drops.load(std::memory_order_relaxed);
  }
  size_t queue_depth(TypeIndex t) const {
    if (config_.mode == PolicyMode::kEdf) {
      return deadline_types_[t].edf_depth.load(std::memory_order_relaxed);
    }
    return queues_[t].Size();
  }
  // --- Deadline tier introspection (all one relaxed load) ------------------
  uint64_t deadline_stamped() const {
    return deadline_counters_.stamped.load(std::memory_order_relaxed);
  }
  uint64_t deadline_shed() const {
    return deadline_counters_.shed.load(std::memory_order_relaxed);
  }
  uint64_t deadline_missed() const {
    return deadline_counters_.missed.load(std::memory_order_relaxed);
  }
  uint64_t deadline_met() const {
    return deadline_counters_.met.load(std::memory_order_relaxed);
  }
  uint64_t deadline_missed_of(TypeIndex t) const {
    return deadline_types_[t].missed.load(std::memory_order_relaxed);
  }
  uint64_t deadline_shed_of(TypeIndex t) const {
    return deadline_types_[t].shed.load(std::memory_order_relaxed);
  }
  // Reserved-core count of `t`'s group, from a copy published under a mutex
  // at every reservation change — safe to call from any thread while the
  // data path runs (the live Reservation vectors are dispatcher-private).
  uint32_t reserved_workers_of(TypeIndex t) const;
  bool AllWorkersIdle() const { return idle_workers() == config_.num_workers; }
  uint32_t idle_workers() const {
    return free_count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr TypeIndex kUnknownSlot = 0;

  void ApplyReservation(Reservation reservation, Nanos now);
  void NoteWindowRollover(Nanos now);
  // Idle provenance: a free worker inside some group's reserved set while
  // DARC is active is idling "on purpose" (the paper's ideal idling).
  WorkerTimeState IdleStateOf(WorkerId worker) const {
    return darc_active_.load(std::memory_order_relaxed) &&
                   reserved_union_.Test(worker)
               ? WorkerTimeState::kReservedIdle
               : WorkerTimeState::kFreeIdle;
  }
  // Recomputes reserved_union_ from the applied reservation and re-stamps
  // every currently-free worker's idle class in the ledger.
  void ReclassifyIdleWorkers(Nanos now);
  void RebuildPriorityOrder();
  std::optional<Assignment> DispatchDarc(Nanos now);
  std::optional<Assignment> DispatchFcfs(Nanos now);
  std::optional<Assignment> DispatchFixedPriority(Nanos now);
  std::optional<Assignment> DispatchEdf(Nanos now);
  Assignment MakeAssignment(TypeIndex type, WorkerId worker, bool stolen,
                            Nanos now);
  // Shared dispatch epilogue: worker/ledger/counter bookkeeping plus the
  // dispatch-time slack sample for deadlined requests.
  void FinishAssignment(Assignment* a, TypeIndex type, Nanos now);
  // Expected mean for the admission model: freshest profile, seed fallback.
  Nanos ExpectedMeanOf(TypeIndex t) const;
  // Recomputes the full-DARC / slack-DARC reservation from `demands`
  // (kDarcSlack routes through ComputeSlackReservation).
  void ApplyAdaptiveReservation(const std::vector<TypeDemand>& demands,
                                Nanos now);

  // The only two mutation paths for the free-worker bookkeeping: bitset and
  // mirror counter move together, and the counter uses a single relaxed RMW
  // (fetch_sub/fetch_add) instead of a load/store pair.
  void MarkWorkerBusy(WorkerId worker) {
    free_.Clear(worker);
    free_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  void MarkWorkerFree(WorkerId worker) {
    free_.Set(worker);
    free_count_.fetch_add(1, std::memory_order_relaxed);
  }

  // Counters are relaxed atomics so cross-thread introspection (telemetry
  // snapshots taken while the dispatcher runs) is race-free. All increments
  // happen on the single scheduling thread.
  struct AtomicCounters {
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> dispatched{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> reservation_updates{0};
    std::atomic<uint64_t> stolen_dispatches{0};
  };

  // Deadline-tier counters, same single-writer relaxed-atomic discipline.
  struct DeadlineCounters {
    std::atomic<uint64_t> stamped{0};  // admitted requests carrying a deadline
    std::atomic<uint64_t> shed{0};     // admission-control drops
    std::atomic<uint64_t> missed{0};   // completed after their deadline
    std::atomic<uint64_t> met{0};      // completed at or before their deadline
  };

  // Per-type deadline-tier state. Lives in a deque (types register
  // dynamically and atomics are immovable). edf_depth/queue_drops stand in
  // for the typed queues' own gauges under kEdf, where all requests share
  // one EDF queue; slack is sampled at dispatch (deadline - now) and
  // exported as a Prometheus summary's sum/count pair.
  struct TypeDeadlineStats {
    std::atomic<uint64_t> missed{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<int64_t> slack_sum_nanos{0};
    std::atomic<uint64_t> slack_samples{0};
    std::atomic<uint64_t> edf_depth{0};
    std::atomic<uint64_t> queue_drops{0};  // EDF-queue-full drops, per type
  };

  SchedulerConfig config_;
  Profiler profiler_;
  Telemetry* telemetry_ = nullptr;  // optional, not owned
  WorkerTimeLedger* time_ledger_ = nullptr;  // optional, not owned

  std::vector<TypeId> wire_ids_;       // TypeIndex -> wire id
  std::vector<std::string> names_;
  std::vector<TypedQueue> queues_;     // TypeIndex -> typed queue
  std::vector<Nanos> seed_means_;
  std::vector<double> seed_ratios_;
  // TypeIndex -> relative deadline budget (0 = none), resolved from
  // config_.deadline at registration.
  std::vector<Nanos> deadline_targets_;
  // Single cross-type EDF queue (kEdf); idle otherwise.
  EdfQueue edf_queue_;
  DeadlineCounters deadline_counters_;
  std::deque<TypeDeadlineStats> deadline_types_;  // TypeIndex-parallel

  // Types sorted by ascending mean service time (UNKNOWN last).
  std::vector<TypeIndex> priority_order_;

  Reservation reservation_;
  // false while bootstrapping in c-FCFS; relaxed-atomic so introspection can
  // read it while the data path runs.
  std::atomic<bool> darc_active_{false};
  WorkerSet free_;
  WorkerSet all_workers_;
  WorkerSet spillway_;
  // Union of every reserved group's worker set under the applied
  // reservation; drives the reserved_idle vs free_idle ledger split.
  WorkerSet reserved_union_;
  // Mirror of free_.Count(), maintained at every Set/Clear site so
  // idle_workers() is one relaxed load instead of a racy bitset scan.
  std::atomic<uint32_t> free_count_{0};
  AtomicCounters counters_;

  // Cross-thread introspection copy of the applied reservation: per-type
  // reserved-group core counts, rewritten under the mutex by
  // ApplyReservation (cold path) and read by reserved_workers_of.
  mutable std::mutex published_mutex_;
  std::vector<uint32_t> published_reserved_;
};

}  // namespace psp

#endif  // PSP_SRC_CORE_SCHEDULER_H_
