// Quickstart: stand up a Perséphone server with DARC scheduling, register two
// request types with a classifier-friendly header protocol, drive it with the
// in-process open-loop load generator, and print client-observed latencies.
//
//   $ ./examples/quickstart [num_workers] [requests]
//
// The workload is a small High-Bimodal mix: 90% short (5 µs) and 10% long
// (200 µs) requests. DARC reserves a core for the shorts so their tail
// latency stays near service time even while longs queue.
//
// Set PSP_ADMIN=1 to serve the live introspection plane on an ephemeral
// loopback port (printed at startup; scrape it with tools/pspctl). With
// PSP_ADMIN_SERVE_MS=N the server stays up N ms after the load finishes so an
// external scraper has a window — this is what scripts/check.sh's
// `introspect` smoke step uses.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/apps/synthetic.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"

int main(int argc, char** argv) {
  const uint32_t num_workers =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 2;
  const uint64_t requests =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 2000;

  // 1. Configure the runtime: worker count and the DARC scheduler.
  psp::RuntimeConfig config;
  config.num_workers = num_workers;
  config.scheduler.mode = psp::PolicyMode::kDarc;

  // Opt-in live introspection: loopback /metrics + snapshots + outliers.
  const char* admin_env = std::getenv("PSP_ADMIN");
  const bool admin_on = admin_env != nullptr && admin_env[0] == '1';
  if (admin_on) {
    config.admin.enabled = true;  // port 0 = ephemeral, printed below
    config.outliers.enabled = true;
    config.telemetry.timeseries.enabled = true;
  }

  psp::Persephone server(config);

  // 2. Register request types. The wire id is what the classifier extracts
  //    from the request header; the seeds (expected mean service time and
  //    occurrence ratio) let DARC start with a steady-state reservation.
  server.RegisterType(/*wire_id=*/1, "SHORT", psp::MakeSpinHandler(),
                      psp::FromMicros(5), /*expected_ratio=*/0.9);
  server.RegisterType(/*wire_id=*/2, "LONG", psp::MakeSpinHandler(),
                      psp::FromMicros(200), /*expected_ratio=*/0.1);

  // 3. Start the pipeline: one net-worker/dispatcher thread + workers.
  server.Start();
  std::printf("Perséphone up: %u workers, DARC active=%s\n", num_workers,
              server.scheduler().darc_active() ? "yes" : "no");
  if (admin_on) {
    // pspctl and scripts/check.sh parse this line for the ephemeral port.
    std::printf("admin: listening on 127.0.0.1:%u\n", server.admin_port());
    std::fflush(stdout);
  }
  for (psp::TypeIndex t = 1; t < server.scheduler().num_types(); ++t) {
    std::printf("  type %-6s guaranteed cores: %u\n",
                server.scheduler().type_name(t).c_str(),
                server.scheduler().reserved_workers_of(t));
  }

  // 4. Drive it: open-loop Poisson client at a modest rate.
  psp::LoadGenConfig lg;
  lg.rate_rps = 5000;
  lg.total_requests = requests;
  psp::LoadGenerator client(
      &server,
      {psp::MakeSpinSpec(1, "SHORT", 0.9, psp::FromMicros(5)),
       psp::MakeSpinSpec(2, "LONG", 0.1, psp::FromMicros(200))},
      lg);
  const psp::LoadGenReport report = client.Run();
  // Optional post-load serve window so an external scraper can hit the
  // endpoint while the runtime is still live.
  if (const char* serve_ms = std::getenv("PSP_ADMIN_SERVE_MS");
      admin_on && serve_ms != nullptr) {
    const int ms = std::atoi(serve_ms);
    if (ms > 0) {
      std::printf("admin: serving for %d ms\n", ms);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
  server.Stop();

  // 5. Report: client-observed latency from the load generator...
  std::printf("\nsent %llu, received %llu (%.0f rps achieved)\n",
              static_cast<unsigned long long>(report.sent),
              static_cast<unsigned long long>(report.received),
              report.AchievedRps());
  for (const auto& [wire_id, hist] : report.latency) {
    if (hist.Count() == 0) {
      continue;
    }
    std::printf("  type %u: p50 %.1f us, p99 %.1f us, p99.9 %.1f us "
                "(%llu samples)\n",
                wire_id, psp::ToMicros(hist.Percentile(50)),
                psp::ToMicros(hist.Percentile(99)),
                psp::ToMicros(hist.Percentile(99.9)),
                static_cast<unsigned long long>(hist.Count()));
  }

  // ...and the server's own view through the unified telemetry snapshot:
  // every counter/gauge in one table, plus the per-stage latency breakdown
  // reconstructed from sampled lifecycle traces (rx → queueing → service →
  // tx). The same API works on the simulator (see policy_explorer).
  const psp::TelemetrySnapshot snap = server.telemetry_snapshot();
  std::printf("\n%s", snap.ToTable().c_str());
  std::printf("\n%s", snap.StageReport().c_str());
  for (uint32_t w = 0; w < server.num_workers(); ++w) {
    const psp::WorkerUtilization u = server.worker_utilization(w);
    std::printf("  worker %u: %llu requests, %.1f%% busy\n", w,
                static_cast<unsigned long long>(u.requests),
                u.BusyFraction() * 100);
  }
  return 0;
}
