// Adaptive reservations demo (the §5.5 mechanism, interactive form): a
// workload whose composition flips mid-run, with DARC's profiling windows
// re-deriving the core reservation on the fly. Prints the guaranteed-core
// timeline so you can watch the scheduler converge after each flip.
//
//   $ ./examples/adaptive_reservations [workers] [phase_ms]
#include <cstdio>
#include <cstdlib>

#include "src/sim/cluster.h"
#include "src/sim/policies/persephone.h"

int main(int argc, char** argv) {
  const uint32_t workers =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 14;
  const psp::Nanos phase_ms =
      argc > 2 ? std::atoll(argv[2]) : 1500;

  // Three phases: bimodal, flipped bimodal, shorts-only.
  psp::WorkloadSpec workload;
  workload.name = "flipping";
  workload.phases.push_back(psp::WorkloadPhase{
      phase_ms * psp::kMillisecond,
      {psp::WorkloadType{1, "A", 100.0, 0.5},
       psp::WorkloadType{2, "B", 1.0, 0.5}},
      1.0});
  workload.phases.push_back(psp::WorkloadPhase{
      phase_ms * psp::kMillisecond,
      {psp::WorkloadType{1, "A", 1.0, 0.5},
       psp::WorkloadType{2, "B", 100.0, 0.5}},
      1.0});
  workload.phases.push_back(psp::WorkloadPhase{
      0,
      {psp::WorkloadType{1, "A", 1.0, 1.0}},
      1.0});

  psp::ClusterConfig config;
  config.num_workers = workers;
  config.rate_rps = 0.8 * workload.PeakLoadRps(workers);
  config.duration = 3 * phase_ms * psp::kMillisecond;
  config.warmup_fraction = 0;
  config.seed = 1;

  psp::PersephoneOptions options;
  options.scheduler.mode = psp::PolicyMode::kDarc;
  options.seed_profiles = false;  // learn everything from live profiling
  options.scheduler.profiler.min_window_samples = 10000;

  auto policy = std::make_unique<psp::PersephonePolicy>(options);
  psp::PersephonePolicy* darc = policy.get();
  psp::ClusterEngine engine(workload, config, std::move(policy));

  // Sample the reservation every 50 ms of simulated time.
  std::printf("t_ms  darc  cores(A)  cores(B)  updates\n");
  const psp::Nanos step = 50 * psp::kMillisecond;
  for (psp::Nanos t = step; t <= config.duration; t += step) {
    engine.sim().ScheduleAt(t, [t, darc] {
      const auto& s = darc->scheduler();
      std::printf("%-5lld %-5s %-9u %-9u %llu\n",
                  static_cast<long long>(t / psp::kMillisecond),
                  s.darc_active() ? "on" : "boot",
                  s.reserved_workers_of(s.ResolveType(1)),
                  s.reserved_workers_of(s.ResolveType(2)),
                  static_cast<unsigned long long>(s.reservation_updates()));
    });
  }
  engine.Run();

  std::printf("\nfinal p99.9 latency: A %.1f us, B %.1f us; drops %llu\n",
              psp::ToMicros(engine.metrics().TypeLatency(1, 99.9)),
              psp::ToMicros(engine.metrics().TypeLatency(2, 99.9)),
              static_cast<unsigned long long>(engine.metrics().TotalDrops()));
  std::printf("phase plan: [A=100us B=1us] -> [A=1us B=100us] -> [A only]\n");
  std::printf("expected: B starts with ~1 guaranteed core, then A and B swap "
              "after the flip. The last phase needs no further update: A (the "
              "short class) already steals B's now-idle cores, and any B "
              "stragglers drain via the spillway - reservations only move "
              "when the queueing-delay SLO is violated AND demand shifts.\n");
  return 0;
}
