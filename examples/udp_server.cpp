// UDP-mode Perséphone server: the kernel-socket ingress frontend serving the
// synthetic spin workload to an *external* client (tools/psp_loadgen).
//
//   terminal 1:  ./examples/udp_server --port 9042
//   terminal 2:  ./tools/psp_loadgen --port 9042 --rate 2000 --requests 5000
//
// Flags:
//   --port P         listen port (0 = ephemeral, printed at startup; default 0)
//   --workers N      application worker threads (default 2)
//   --net-workers N  socket-polling net workers; >1 turns on SO_REUSEPORT
//                    sharding (give the loadgen --flows >= N so the kernel
//                    has flows to spread) (default 1)
//   --poll P         net-worker pacing on empty polls: busy | yield |
//                    adaptive (Metronome-style sleep backoff) (default yield)
//   --policy P       dispatch policy: darc | c-fcfs | edf (default darc).
//                    edf turns the deadline tier on: wire budgets stamped by
//                    the loadgen become absolute deadlines at ingress and the
//                    psp_deadline_* families appear on /metrics
//   --serve-ms N     exit after N ms of serving (default: run until EOF on
//                    stdin closes — Ctrl-D / kill)
//
// With PSP_ADMIN=1 in the environment the live admin plane comes up too
// (ephemeral loopback port), making /metrics and /lifecycle.json scrapeable
// by pspctl and psp_tracejoin while the server runs.
//
// Prints "udp: listening on <addr>:<port>" once the sockets are bound
// (and "admin: listening on 127.0.0.1:<port>" when the admin plane is on);
// scripts/check.sh's smokes parse those lines for the ephemeral ports.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/apps/synthetic.h"
#include "src/runtime/persephone.h"

int main(int argc, char** argv) {
  uint32_t workers = 2;
  uint32_t net_workers = 1;
  int port = 0;
  int serve_ms = -1;
  psp::PollPolicy poll = psp::PollPolicy::kYield;
  psp::PolicyMode mode = psp::PolicyMode::kDarc;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--port" && v != nullptr) {
      port = std::atoi(v);
      ++i;
    } else if (arg == "--workers" && v != nullptr) {
      workers = static_cast<uint32_t>(std::atoi(v));
      ++i;
    } else if (arg == "--net-workers" && v != nullptr) {
      net_workers = static_cast<uint32_t>(std::atoi(v));
      ++i;
    } else if (arg == "--poll" && v != nullptr) {
      if (std::strcmp(v, "busy") == 0) {
        poll = psp::PollPolicy::kBusy;
      } else if (std::strcmp(v, "yield") == 0) {
        poll = psp::PollPolicy::kYield;
      } else if (std::strcmp(v, "adaptive") == 0) {
        poll = psp::PollPolicy::kAdaptive;
      } else {
        std::fprintf(stderr, "bad --poll '%s' (busy|yield|adaptive)\n", v);
        return 2;
      }
      ++i;
    } else if (arg == "--policy" && v != nullptr) {
      if (std::strcmp(v, "darc") == 0) {
        mode = psp::PolicyMode::kDarc;
      } else if (std::strcmp(v, "c-fcfs") == 0) {
        mode = psp::PolicyMode::kCFcfs;
      } else if (std::strcmp(v, "edf") == 0) {
        mode = psp::PolicyMode::kEdf;
      } else {
        std::fprintf(stderr, "bad --policy '%s' (darc|c-fcfs|edf)\n", v);
        return 2;
      }
      ++i;
    } else if (arg == "--serve-ms" && v != nullptr) {
      serve_ms = std::atoi(v);
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port P] [--workers N] [--net-workers N] "
                   "[--poll busy|yield|adaptive] [--policy darc|c-fcfs|edf] "
                   "[--serve-ms N]\n",
                   argv[0]);
      return 2;
    }
  }

  psp::RuntimeConfig config;
  config.num_workers = workers;
  config.scheduler.mode = mode;
  config.ingress.mode = psp::IngressMode::kUdp;
  config.ingress.listen_port = port;
  config.ingress.num_net_workers = net_workers;
  config.ingress.reuseport = net_workers > 1;
  config.ingress.poll.policy = poll;
  if (const char* admin_env = std::getenv("PSP_ADMIN");
      admin_env != nullptr && std::strcmp(admin_env, "1") == 0) {
    config.admin.enabled = true;  // ephemeral loopback port, printed below
  }

  psp::Persephone server(config);
  server.RegisterType(/*wire_id=*/1, "SHORT", psp::MakeSpinHandler(),
                      psp::FromMicros(5), /*expected_ratio=*/0.9);
  server.RegisterType(/*wire_id=*/2, "LONG", psp::MakeSpinHandler(),
                      psp::FromMicros(200), /*expected_ratio=*/0.1);
  server.Start();

  // scripts/check.sh and humans alike read the resolved port off this line.
  std::printf("udp: listening on %s:%u (%u net worker%s, poll=%s)\n",
              config.ingress.listen_addr.c_str(), server.udp_port(),
              net_workers, net_workers == 1 ? "" : "s",
              psp::PollPolicyName(poll));
  if (server.admin_port() != 0) {
    std::printf("admin: listening on 127.0.0.1:%u\n", server.admin_port());
  }
  std::fflush(stdout);

  if (serve_ms >= 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
  } else {
    // Serve until stdin closes (Ctrl-D, or the parent killing the pipe).
    while (std::getchar() != EOF) {
    }
  }

  server.Stop();
  const psp::TelemetrySnapshot snap = server.telemetry_snapshot();
  std::printf("completed %lld requests (rx %lld datagrams, malformed %lld, "
              "tx %lld)\n",
              static_cast<long long>(snap.counter("scheduler.completed")),
              static_cast<long long>(snap.counter("ingress.rx_datagrams")),
              static_cast<long long>(snap.counter("ingress.malformed")),
              static_cast<long long>(snap.counter("ingress.tx_datagrams")));
  return 0;
}
