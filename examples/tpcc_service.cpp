// A TPC-C-style OLTP service on Perséphone: five transaction types with the
// Table-4 mix (44% Payment, 4% OrderStatus, 44% NewOrder, 4% Delivery,
// 4% StockLevel) executed against a real in-memory warehouse database.
// DARC groups transactions of similar cost and reserves cores per group —
// the §5.4.3 scenario as a runnable service.
//
//   $ ./examples/tpcc_service [num_workers] [requests]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/apps/tpcc.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"

namespace {

struct TxnSpec {
  psp::TpccTxn txn;
  const char* name;
  double ratio;
  double expected_us;  // Table 4 profile
};

constexpr TxnSpec kMix[] = {
    {psp::TpccTxn::kPayment, "Payment", 0.44, 5.7},
    {psp::TpccTxn::kOrderStatus, "OrderStatus", 0.04, 6.0},
    {psp::TpccTxn::kNewOrder, "NewOrder", 0.44, 20.0},
    {psp::TpccTxn::kDelivery, "Delivery", 0.04, 88.0},
    {psp::TpccTxn::kStockLevel, "StockLevel", 0.04, 100.0},
};

}  // namespace

int main(int argc, char** argv) {
  const uint32_t num_workers =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 2;
  const uint64_t requests =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 2000;

  psp::RuntimeConfig config;
  config.num_workers = num_workers;
  config.scheduler.mode = psp::PolicyMode::kDarc;
  psp::Persephone server(config);

  psp::TpccScale scale;
  auto db = std::make_shared<psp::TpccDb>(scale);

  for (const auto& spec : kMix) {
    const psp::TpccTxn txn = spec.txn;
    server.RegisterType(
        static_cast<psp::TypeId>(txn), spec.name,
        [db, txn](const std::byte* payload, uint32_t length,
                  std::byte* response, uint32_t capacity) -> uint32_t {
          const auto request = psp::DecodeTpccRequest(txn, payload, length);
          if (!request.has_value()) {
            return 0;
          }
          return psp::ExecuteTpccRequest(*db, *request, response, capacity);
        },
        psp::FromMicros(spec.expected_us), spec.ratio);
  }
  server.Start();

  std::printf("TPC-C service: %u warehouses, %u workers\n", scale.warehouses,
              num_workers);
  std::printf("DARC reservation (Table-4 seeds):\n");
  for (const auto& group : server.scheduler().reservation().groups) {
    std::printf("  group [");
    for (size_t i = 0; i < group.members.size(); ++i) {
      std::printf("%s%s", i > 0 ? "," : "",
                  server.scheduler().type_name(group.members[i]).c_str());
    }
    std::printf("] reserved=%u stealable=%u%s\n", group.reserved_count,
                group.stealable.Count(),
                group.uses_spillway ? " (spillway)" : "");
  }

  std::vector<psp::ClientRequestSpec> mix;
  for (const auto& spec : kMix) {
    psp::ClientRequestSpec client_spec;
    client_spec.wire_id = static_cast<psp::TypeId>(spec.txn);
    client_spec.name = spec.name;
    client_spec.ratio = spec.ratio;
    const psp::TpccTxn txn = spec.txn;
    client_spec.build_payload = [txn, scale](std::byte* payload,
                                             uint32_t capacity,
                                             psp::Rng& rng) {
      const psp::TpccRequest request =
          psp::MakeRandomTpccRequest(txn, scale, rng);
      return psp::EncodeTpccRequest(request, payload, capacity);
    };
    mix.push_back(std::move(client_spec));
  }

  psp::LoadGenConfig lg;
  lg.rate_rps = 4000;
  lg.total_requests = requests;
  psp::LoadGenerator client(&server, std::move(mix), lg);
  const psp::LoadGenReport report = client.Run();
  server.Stop();

  std::printf("\nsent %llu, received %llu\n",
              static_cast<unsigned long long>(report.sent),
              static_cast<unsigned long long>(report.received));
  std::printf("%-12s %10s %10s %10s\n", "txn", "p50_us", "p99_us", "p999_us");
  for (const auto& spec : kMix) {
    const auto it = report.latency.find(static_cast<psp::TypeId>(spec.txn));
    if (it == report.latency.end() || it->second.Count() == 0) {
      continue;
    }
    std::printf("%-12s %10.1f %10.1f %10.1f\n", spec.name,
                psp::ToMicros(it->second.Percentile(50)),
                psp::ToMicros(it->second.Percentile(99)),
                psp::ToMicros(it->second.Percentile(99.9)));
  }
  // Post-run consistency audit on every warehouse.
  bool consistent = true;
  for (uint32_t w = 0; w < scale.warehouses; ++w) {
    consistent = consistent && db->CheckYtdConsistency(w);
  }
  std::printf("database consistency: %s\n", consistent ? "OK" : "VIOLATED");
  return consistent ? 0 : 1;
}
