// Rack-scale fleet demo: N simulated Perséphone/DARC servers behind an
// inter-server dispatch policy, writing the fleet introspection artifacts
// (fleet.json, metrics.prom, per-server subdirectories) to --out.
//
// Same seed + same flags => byte-identical fleet.json; scripts/check.sh
// runs this twice and compares to enforce the fleet determinism contract.
//
// Usage:
//   fleet_demo [--servers N] [--policy random|rss|rr|po2c|shortest-q]
//              [--seed S] [--duration-ms MS] [--load F] [--out DIR]
//              [--engine auto|heap|wheel]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/fleet/fleet_sim.h"
#include "src/sim/policies/persephone.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--servers N] [--policy NAME] [--seed S] "
               "[--duration-ms MS] [--load F] [--out DIR] "
               "[--engine auto|heap|wheel]\n"
               "  policies: random rss rr po2c shortest-q\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psp;

  uint32_t servers = 4;
  FleetPolicyKind kind = FleetPolicyKind::kPowerOfTwo;
  uint64_t seed = 42;
  long duration_ms = 50;
  double load = 0.7;
  std::string out_dir;
  EngineBackend backend = EngineBackend::kAuto;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--servers" && value != nullptr) {
      servers = static_cast<uint32_t>(std::atoi(value));
      ++i;
    } else if (arg == "--policy" && value != nullptr) {
      if (!ParseFleetPolicy(value, &kind)) {
        std::fprintf(stderr, "unknown policy: %s\n", value);
        return Usage(argv[0]);
      }
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      seed = static_cast<uint64_t>(std::atoll(value));
      ++i;
    } else if (arg == "--duration-ms" && value != nullptr) {
      duration_ms = std::atol(value);
      ++i;
    } else if (arg == "--load" && value != nullptr) {
      load = std::atof(value);
      ++i;
    } else if (arg == "--out" && value != nullptr) {
      out_dir = value;
      ++i;
    } else if (arg == "--engine" && value != nullptr) {
      if (!ParseEngineBackend(value, &backend)) {
        std::fprintf(stderr, "unknown engine backend: %s\n", value);
        return Usage(argv[0]);
      }
      ++i;
    } else {
      return Usage(argv[0]);
    }
  }
  if (servers == 0 || duration_ms <= 0 || load <= 0) {
    return Usage(argv[0]);
  }

  const WorkloadSpec workload = HighBimodal();
  FleetSimConfig config;
  config.num_servers = servers;
  config.server.num_workers = 8;
  config.rate_rps =
      load * static_cast<double>(servers) * workload.PeakLoadRps(8);
  config.duration = duration_ms * kMillisecond;
  config.seed = seed;
  config.engine_backend = backend;
  config.policy = FleetPolicyConfig::Default(kind);
  config.introspect_dir = out_dir;

  FleetSimulation fleet(workload, config, [](uint32_t) {
    PersephoneOptions options;
    options.scheduler.mode = PolicyMode::kDarc;
    return std::make_unique<PersephonePolicy>(options);
  });
  fleet.Run();

  std::printf("fleet: %u servers, policy=%s, engine=%s, seed=%llu, %ld ms at "
              "%.0f%% load\n",
              servers, FleetPolicyName(kind).c_str(),
              EngineBackendName(backend),
              static_cast<unsigned long long>(seed), duration_ms, load * 100);
  std::printf("  generated %llu requests, fleet p99.9 slowdown %.1fx\n",
              static_cast<unsigned long long>(fleet.generated()),
              fleet.metrics().OverallSlowdown(99.9));
  for (uint32_t i = 0; i < fleet.num_servers(); ++i) {
    std::printf("  server %u: %llu dispatched\n", i,
                static_cast<unsigned long long>(fleet.dispatched(i)));
  }
  if (!out_dir.empty()) {
    std::printf("  wrote %s/fleet.json and %s/metrics.prom\n",
                out_dir.c_str(), out_dir.c_str());
  }
  return 0;
}
