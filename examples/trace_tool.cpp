// Trace utility: synthesise workload traces in the CSV format understood by
// the replay engine (src/sim/trace.h) and by `policy_explorer --trace`.
//
//   $ ./examples/trace_tool high-bimodal 100000 500 42 > capture.csv
//   $ ./examples/policy_explorer 14 - --trace capture.csv
//
// args: workload (high-bimodal | extreme-bimodal | tpcc | rocksdb),
//       rate_rps, duration_ms, seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/sim/trace.h"

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "high-bimodal";
  const double rate = argc > 2 ? std::atof(argv[2]) : 100000.0;
  const long duration_ms = argc > 3 ? std::atol(argv[3]) : 500;
  const uint64_t seed = argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4])) : 42;

  psp::WorkloadSpec workload;
  if (std::strcmp(name, "high-bimodal") == 0) {
    workload = psp::HighBimodal();
  } else if (std::strcmp(name, "extreme-bimodal") == 0) {
    workload = psp::ExtremeBimodal();
  } else if (std::strcmp(name, "tpcc") == 0) {
    workload = psp::TpccMix();
  } else if (std::strcmp(name, "rocksdb") == 0) {
    workload = psp::RocksDbMix();
  } else {
    std::fprintf(stderr,
                 "unknown workload '%s' (try high-bimodal, extreme-bimodal, "
                 "tpcc, rocksdb)\n",
                 name);
    return 1;
  }

  const auto trace = psp::SynthesizeTrace(
      workload, rate, duration_ms * psp::kMillisecond, seed);
  std::fprintf(stderr, "synthesised %zu requests (%s @ %.0f rps, %ld ms)\n",
               trace.size(), name, rate, duration_ms);
  psp::WriteTraceCsv(trace, std::cout);
  return 0;
}
