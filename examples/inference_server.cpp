// An ML inference service on Perséphone (§4.1's "fast inference engines"):
// two GBDT models behind one endpoint — a light ranker (64 trees) answering
// in microseconds and a heavy ensemble (4096 trees) taking ~100× longer.
// DARC keeps the light model's tail latency protected from heavy requests.
//
//   $ ./examples/inference_server [num_workers] [requests] [heavy_pct]
//
// The live introspection plane is on by default here (this is the
// "production-shaped" example): while the service runs, scrape
//   pspctl --port <printed port> metrics      # Prometheus exposition
//   pspctl --port <printed port> outliers     # K slowest requests per type
// Set PSP_ADMIN=0 to turn it off, PSP_ADMIN_SERVE_MS=N to keep serving N ms
// after the load completes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "src/apps/inference.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"

namespace {

constexpr psp::TypeId kLightType = 1;
constexpr psp::TypeId kHeavyType = 2;
constexpr uint32_t kFeatures = 32;

psp::RequestHandler MakeModelHandler(std::shared_ptr<psp::GbdtModel> model) {
  return [model](const std::byte* payload, uint32_t length,
                 std::byte* response, uint32_t capacity) -> uint32_t {
    const auto request = psp::DecodeInferenceRequest(payload, length);
    if (!request.has_value()) {
      return 0;
    }
    return psp::ExecuteInference(*model, *request, response, capacity);
  };
}

psp::ClientRequestSpec MakeQuerySpec(psp::TypeId wire_id, const char* name,
                                     double ratio) {
  psp::ClientRequestSpec spec;
  spec.wire_id = wire_id;
  spec.name = name;
  spec.ratio = ratio;
  spec.build_payload = [](std::byte* payload, uint32_t capacity,
                          psp::Rng& rng) -> uint32_t {
    float features[kFeatures];
    for (auto& f : features) {
      f = static_cast<float>(rng.NextDouble());
    }
    return psp::EncodeInferenceRequest(features, kFeatures, payload, capacity);
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t num_workers =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 2;
  const uint64_t requests =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1200;
  const double heavy_pct = argc > 3 ? std::atof(argv[3]) : 5.0;

  auto light = std::make_shared<psp::GbdtModel>(64, 6, kFeatures, 1);
  auto heavy = std::make_shared<psp::GbdtModel>(4096, 8, kFeatures, 2);

  psp::RuntimeConfig config;
  config.num_workers = num_workers;
  config.scheduler.mode = psp::PolicyMode::kDarc;
  const char* admin_env = std::getenv("PSP_ADMIN");
  const bool admin_on = admin_env == nullptr || admin_env[0] != '0';
  if (admin_on) {
    config.admin.enabled = true;  // ephemeral loopback port, printed below
    config.outliers.enabled = true;
    config.telemetry.timeseries.enabled = true;
  }
  psp::Persephone server(config);
  server.RegisterType(kLightType, "LIGHT", MakeModelHandler(light),
                      psp::FromMicros(3), 1.0 - heavy_pct / 100.0);
  server.RegisterType(kHeavyType, "HEAVY", MakeModelHandler(heavy),
                      psp::FromMicros(300), heavy_pct / 100.0);
  server.Start();

  std::printf("inference service: light=%u trees, heavy=%u trees, %u "
              "workers, %.1f%% heavy queries\n",
              light->num_trees(), heavy->num_trees(), num_workers, heavy_pct);
  std::printf("DARC: LIGHT guaranteed %u core(s)\n",
              server.scheduler().reserved_workers_of(
                  server.scheduler().ResolveType(kLightType)));
  if (admin_on) {
    std::printf("admin: listening on 127.0.0.1:%u (try: pspctl --port %u "
                "metrics)\n",
                server.admin_port(), server.admin_port());
    std::fflush(stdout);
  }

  psp::LoadGenConfig lg;
  lg.rate_rps = 4000;
  lg.total_requests = requests;
  psp::LoadGenerator client(
      &server,
      {MakeQuerySpec(kLightType, "LIGHT", 1.0 - heavy_pct / 100.0),
       MakeQuerySpec(kHeavyType, "HEAVY", heavy_pct / 100.0)},
      lg);
  const psp::LoadGenReport report = client.Run();
  if (const char* serve_ms = std::getenv("PSP_ADMIN_SERVE_MS");
      admin_on && serve_ms != nullptr) {
    const int ms = std::atoi(serve_ms);
    if (ms > 0) {
      std::printf("admin: serving for %d ms\n", ms);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
  server.Stop();

  std::printf("\nsent %llu, received %llu\n",
              static_cast<unsigned long long>(report.sent),
              static_cast<unsigned long long>(report.received));
  for (const auto& [wire_id, hist] : report.latency) {
    if (hist.Count() == 0) {
      continue;
    }
    std::printf("  %-6s p50 %8.1f us   p99 %8.1f us   p99.9 %8.1f us\n",
                wire_id == kLightType ? "LIGHT" : "HEAVY",
                psp::ToMicros(hist.Percentile(50)),
                psp::ToMicros(hist.Percentile(99)),
                psp::ToMicros(hist.Percentile(99.9)));
  }
  return 0;
}
