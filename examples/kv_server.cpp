// A RocksDB-style key-value service on Perséphone (the §5.4.4 scenario):
// point GETs (microseconds) mixed with 5000-key SCANs (hundreds of µs), a
// 420× service-time dispersion. Runs the same client mix under c-FCFS and
// under DARC and prints the per-op latency comparison — on multi-core
// machines the GET tail improves dramatically under DARC.
//
//   $ ./examples/kv_server [num_workers] [requests] [scan_pct]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/apps/kvstore.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"

namespace {

constexpr psp::TypeId kGetType = 1;
constexpr psp::TypeId kScanType = 2;
constexpr uint64_t kKeys = 5000;

psp::RequestHandler MakeKvHandler(std::shared_ptr<psp::KvStore> store) {
  return [store](const std::byte* payload, uint32_t length,
                 std::byte* response, uint32_t capacity) -> uint32_t {
    const auto request = psp::DecodeKvRequest(payload, length);
    if (!request.has_value()) {
      return 0;
    }
    return psp::ExecuteKvRequest(*store, *request, response, capacity);
  };
}

psp::LoadGenReport RunOnce(psp::PolicyMode mode, uint32_t num_workers,
                           uint64_t requests, double scan_ratio) {
  psp::RuntimeConfig config;
  config.num_workers = num_workers;
  config.scheduler.mode = mode;

  psp::Persephone server(config);
  auto store = std::make_shared<psp::KvStore>();
  psp::LoadKvDataset(*store, kKeys, 64);

  server.RegisterType(kGetType, "GET", MakeKvHandler(store),
                      psp::FromMicros(2), 1.0 - scan_ratio);
  server.RegisterType(kScanType, "SCAN", MakeKvHandler(store),
                      psp::FromMicros(300), scan_ratio);
  server.Start();

  psp::ClientRequestSpec get_spec;
  get_spec.wire_id = kGetType;
  get_spec.name = "GET";
  get_spec.ratio = 1.0 - scan_ratio;
  get_spec.build_payload = [](std::byte* payload, uint32_t capacity,
                              psp::Rng& rng) {
    psp::KvRequest r;
    r.op = psp::KvOp::kGet;
    r.key = rng.NextBounded(kKeys);
    return psp::EncodeKvRequest(r, payload, capacity);
  };
  psp::ClientRequestSpec scan_spec;
  scan_spec.wire_id = kScanType;
  scan_spec.name = "SCAN";
  scan_spec.ratio = scan_ratio;
  scan_spec.build_payload = [](std::byte* payload, uint32_t capacity,
                               psp::Rng&) {
    psp::KvRequest r;
    r.op = psp::KvOp::kScan;
    r.key = 0;
    r.count = kKeys;
    return psp::EncodeKvRequest(r, payload, capacity);
  };

  psp::LoadGenConfig lg;
  lg.rate_rps = 3000;
  lg.total_requests = requests;
  psp::LoadGenerator client(&server, {get_spec, scan_spec}, lg);
  const psp::LoadGenReport report = client.Run();

  std::printf("  [%s] GETs guaranteed %u core(s) of %u\n",
              mode == psp::PolicyMode::kDarc ? "DARC" : "c-FCFS",
              server.scheduler().darc_active()
                  ? server.scheduler().reserved_workers_of(
                        server.scheduler().ResolveType(kGetType))
                  : 0,
              num_workers);
  server.Stop();
  return report;
}

void PrintReport(const char* name, const psp::LoadGenReport& report) {
  std::printf("%s:\n", name);
  const auto print_type = [&](psp::TypeId id, const char* label) {
    const auto it = report.latency.find(id);
    if (it == report.latency.end() || it->second.Count() == 0) {
      return;
    }
    std::printf("  %-5s p50 %8.1f us   p99 %8.1f us   p99.9 %8.1f us\n",
                label, psp::ToMicros(it->second.Percentile(50)),
                psp::ToMicros(it->second.Percentile(99)),
                psp::ToMicros(it->second.Percentile(99.9)));
  };
  print_type(kGetType, "GET");
  print_type(kScanType, "SCAN");
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t num_workers =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 2;
  const uint64_t requests =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1500;
  const double scan_pct = argc > 3 ? std::atof(argv[3]) : 10.0;

  std::printf("KV service: %llu keys, %u workers, %.0f%% SCANs\n\n",
              static_cast<unsigned long long>(kKeys), num_workers, scan_pct);

  const auto cfcfs =
      RunOnce(psp::PolicyMode::kCFcfs, num_workers, requests, scan_pct / 100);
  PrintReport("c-FCFS", cfcfs);
  std::printf("\n");
  const auto darc =
      RunOnce(psp::PolicyMode::kDarc, num_workers, requests, scan_pct / 100);
  PrintReport("DARC", darc);
  return 0;
}
