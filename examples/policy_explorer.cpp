// Policy explorer: compare every scheduling policy in the library on a
// user-defined n-modal workload, using the deterministic discrete-event
// testbed model. Useful for answering "would DARC help *my* mix?".
//
//   $ ./examples/policy_explorer [workers] [load] [mean_us:ratio ...]
//   $ ./examples/policy_explorer 14 0.8 1:0.5 100:0.5
//   $ ./examples/policy_explorer 16 0.9 0.5:99.5 500:0.5
//   $ ./examples/policy_explorer 14 - --trace capture.csv   # replay a trace
//
// Defaults to High Bimodal on 14 workers at 80% load. Trace files use the
// CSV format of src/sim/trace.h (send_us,type,service_us per line).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/trace.h"
#include "src/sim/policies/c_fcfs.h"
#include "src/sim/policies/d_fcfs.h"
#include "src/sim/policies/oracle_policies.h"
#include "src/sim/policies/persephone.h"
#include "src/sim/policies/time_sharing.h"
#include "src/sim/policies/work_stealing.h"

namespace {

psp::WorkloadSpec ParseWorkload(int argc, char** argv, int first_arg) {
  psp::WorkloadSpec spec;
  spec.name = "custom";
  psp::WorkloadPhase phase;
  for (int i = first_arg; i < argc; ++i) {
    const char* colon = std::strchr(argv[i], ':');
    if (colon == nullptr) {
      std::fprintf(stderr, "ignoring malformed type spec '%s'\n", argv[i]);
      continue;
    }
    psp::WorkloadType type;
    type.wire_id = static_cast<psp::TypeId>(phase.types.size() + 1);
    type.mean_us = std::atof(argv[i]);
    type.ratio = std::atof(colon + 1);
    type.name = "T" + std::to_string(type.wire_id) + "(" +
                std::to_string(type.mean_us) + "us)";
    if (type.mean_us <= 0 || type.ratio <= 0) {
      std::fprintf(stderr, "ignoring non-positive type spec '%s'\n", argv[i]);
      continue;
    }
    phase.types.push_back(std::move(type));
  }
  if (phase.types.empty()) {
    phase.types = {psp::WorkloadType{1, "SHORT", 1.0, 0.5},
                   psp::WorkloadType{2, "LONG", 100.0, 0.5}};
  }
  spec.phases.push_back(std::move(phase));
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t workers =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 14;
  const double load = argc > 2 ? std::atof(argv[2]) : 0.8;

  // Trace replay mode: --trace <file> replaces the synthetic generator.
  std::vector<psp::TraceEntry> trace;
  psp::WorkloadSpec workload;
  if (argc > 4 && std::strcmp(argv[3], "--trace") == 0) {
    std::string error;
    const auto parsed = psp::ParseTraceCsvFile(argv[4], &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "trace error: %s\n", error.c_str());
      return 1;
    }
    trace = *parsed;
    // Derive a workload spec (type means/ratios) from the trace itself so
    // DARC can be seeded and metrics get names.
    std::map<psp::TypeId, std::pair<double, uint64_t>> stats;
    for (const auto& e : trace) {
      auto& [sum, n] = stats[e.wire_type];
      sum += static_cast<double>(e.service);
      ++n;
    }
    psp::WorkloadPhase phase;
    for (const auto& [type, agg] : stats) {
      psp::WorkloadType t;
      t.wire_id = type;
      t.name = "T" + std::to_string(type);
      t.mean_us = agg.first / static_cast<double>(agg.second) / 1e3;
      t.ratio = static_cast<double>(agg.second) /
                static_cast<double>(trace.size());
      phase.types.push_back(std::move(t));
    }
    workload.name = std::string("trace:") + argv[4];
    workload.phases.push_back(std::move(phase));
    std::printf("replaying %zu requests from %s (%zu types)\n\n",
                trace.size(), argv[4], stats.size());
  } else {
    workload = ParseWorkload(argc, argv, 3);
  }

  const double peak = workload.PeakLoadRps(workers);
  std::printf("workload '%s': mean service %.2f us, peak %.0f kRPS on %u "
              "workers; evaluating at %.0f%% load\n\n",
              workload.name.c_str(), workload.MeanServiceNanos() / 1e3,
              peak / 1e3, workers, load * 100);

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<psp::SchedulingPolicy>()> make;
  };
  const std::vector<Entry> policies = {
      {"d-FCFS",
       [] { return std::make_unique<psp::DecentralizedFcfsPolicy>(); }},
      {"c-FCFS", [] { return std::make_unique<psp::CentralFcfsPolicy>(); }},
      {"work-stealing",
       [] { return std::make_unique<psp::WorkStealingPolicy>(); }},
      {"shinjuku-mq",
       [] {
         psp::TimeSharingOptions o;
         o.multi_queue = true;
         o.preempt_overhead = 2 * psp::kMicrosecond;
         return std::make_unique<psp::TimeSharingPolicy>(o);
       }},
      {"sjf",
       [] { return std::make_unique<psp::ShortestJobFirstPolicy>(); }},
      {"edf",
       [] { return std::make_unique<psp::EarliestDeadlineFirstPolicy>(10.0); }},
      {"static-partition",
       [] { return std::make_unique<psp::StaticPartitionPolicy>(); }},
      {"darc",
       [] {
         psp::PersephoneOptions o;
         o.scheduler.mode = psp::PolicyMode::kDarc;
         return std::make_unique<psp::PersephonePolicy>(o);
       }},
  };

  std::printf("%-18s %14s %12s", "policy", "p999_slowdown", "drops");
  for (const auto& type : workload.types()) {
    std::printf(" %16s", (type.name + "_p999us").c_str());
  }
  std::printf("\n");

  std::string darc_stage_report;
  for (const auto& entry : policies) {
    psp::ClusterConfig config;
    config.num_workers = workers;
    config.rate_rps = load * peak;
    config.duration = 300 * psp::kMillisecond;
    config.net_one_way = 5 * psp::kMicrosecond;
    config.telemetry.sample_every = 16;  // lifecycle traces for StageReport
    auto engine_ptr =
        trace.empty()
            ? std::make_unique<psp::ClusterEngine>(workload, config,
                                                   entry.make())
            : std::make_unique<psp::ClusterEngine>(workload, config,
                                                   entry.make(), trace);
    psp::ClusterEngine& engine = *engine_ptr;
    engine.Run();
    const psp::Metrics& metrics = engine.metrics();
    std::printf("%-18s %14.1f %12llu", entry.name,
                metrics.OverallSlowdown(99.9),
                static_cast<unsigned long long>(metrics.TotalDrops()));
    for (const auto& type : workload.types()) {
      std::printf(" %16.1f",
                  psp::ToMicros(metrics.TypeLatency(type.wire_id, 99.9)));
    }
    std::printf("\n");
    if (std::strcmp(entry.name, "darc") == 0) {
      // Same unified snapshot API as the threaded runtime (see quickstart):
      // per-stage latency decomposition from sampled lifecycle traces.
      darc_stage_report = engine.telemetry_snapshot().StageReport();
    }
  }
  if (!darc_stage_report.empty()) {
    std::printf("\ndarc stage breakdown (sampled lifecycle traces):\n%s",
                darc_stage_report.c_str());
  }
  return 0;
}
