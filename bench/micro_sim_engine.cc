// Microbenchmarks for the discrete-event engine (src/sim/event_queue.h):
// events/sec through schedule+drain churn, with heap allocations per event
// measured via an instrumented global operator new.
//
// An in-file "legacy" engine — std::priority_queue over std::function
// events, the seed implementation — runs the same workloads. The report
// harness (scripts/bench_report.sh) gates on the paired-speedup counters
// (BM_ScheduleDrainSpeedup, >= 3x at representative batch sizes) and on
// zero steady-state allocations for the new engine.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <vector>

#include "src/common/time.h"
#include "src/sim/event_queue.h"

// --- Instrumented global allocator -------------------------------------------
// Counts every heap allocation in the process. Benchmarks snapshot the
// counter around their measured region after a warmup pass, so steady-state
// allocs/event is exact (google-benchmark's own bookkeeping between
// iterations is outside the snapshots' deltas only if it doesn't allocate in
// the hot loop, which it does not).
namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

namespace {
void* CountingAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountingAlloc(size); }
void* operator new[](std::size_t size) { return CountingAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace psp {
namespace {

// --- Legacy engine (the seed implementation) ---------------------------------
// Binary heap via std::priority_queue; one std::function per event. Kept
// verbatim in spirit: (time, seq) ordering, move-out-of-top dispatch.
class LegacySimulation {
 public:
  void ScheduleAt(Nanos time, std::function<void()> fn) {
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }
  void ScheduleAfter(Nanos delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }
  void RunToCompletion() {
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.time;
      ++executed_;
      event.fn();
    }
  }
  void RunUntil(Nanos until) {
    while (!queue_.empty() && queue_.top().time <= until) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.time;
      ++executed_;
      event.fn();
    }
    if (now_ < until) {
      now_ = until;
    }
  }
  Nanos Now() const { return now_; }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Nanos time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

// A representative event payload: the engine's real call sites capture a
// `this` pointer plus a few scalars (32-40 bytes) — beyond std::function's
// small-buffer size, so the legacy engine pays one heap allocation per event.
struct ChurnHandler {
  uint64_t* fired;
  uint64_t a;
  uint64_t b;
  uint64_t c;
  void operator()() const {
    ++*fired;
    benchmark::DoNotOptimize(a + b + c);
  }
};
static_assert(sizeof(ChurnHandler) == 32);

// Deterministic out-of-order schedule times: exercises heap sift paths
// instead of the trivial append-only fast path.
inline Nanos ChurnTime(Nanos base, uint64_t i, uint64_t batch) {
  return base + static_cast<Nanos>((i * 7919) % batch);
}

// One schedule+drain round of `batch` events, identical for both engines.
template <typename Engine>
void ChurnRound(Engine& engine, uint64_t batch, uint64_t* fired) {
  const Nanos base = engine.Now() + 1;
  for (uint64_t i = 0; i < batch; ++i) {
    engine.ScheduleAt(ChurnTime(base, i, batch),
                      ChurnHandler{fired, i, i + 1, i + 2});
  }
  engine.RunToCompletion();
}

template <typename Engine>
void RunEngineChurn(benchmark::State& state) {
  Engine engine;
  uint64_t fired = 0;
  const auto batch = static_cast<uint64_t>(state.range(0));
  ChurnRound(engine, batch, &fired);  // warmup: size arena / queue storage
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    ChurnRound(engine, batch, &fired);
  }
  const uint64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);
  benchmark::DoNotOptimize(fired);
  const auto events = static_cast<uint64_t>(state.iterations()) * batch;
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["allocs_per_event"] = benchmark::Counter(
      events > 0
          ? static_cast<double>(allocs_after - allocs_before) /
                static_cast<double>(events)
          : 0.0);
}

void BM_EngineScheduleDrain(benchmark::State& state) {
  RunEngineChurn<Simulation>(state);
}
BENCHMARK(BM_EngineScheduleDrain)->Arg(256)->Arg(4096);

void BM_LegacyScheduleDrain(benchmark::State& state) {
  RunEngineChurn<LegacySimulation>(state);
}
BENCHMARK(BM_LegacyScheduleDrain)->Arg(256)->Arg(4096);

// Paired comparison: alternates engine and legacy churn rounds inside the
// same measured loop and reports the TSC ratio as `speedup`. On shared boxes
// the clock wanders on a seconds scale, so two separately-timed benchmarks
// minutes apart can drift 30-50% for reasons that have nothing to do with
// the code; interleaving at round granularity (tens of microseconds) makes
// the noise hit both engines equally and cancel in the ratio. This counter
// is what scripts/bench_report.sh gates on.
//
// Three backend flavours: the default (auto — what every experiment binary
// runs, with a `wheel_active` counter recording which backend the density
// heuristic settled on) plus heap- and wheel-pinned runs so the report can
// show both backends' curves side by side. The wheel variant also reports
// cascades per event — near zero here, since churn schedules land within a
// 16K-tick horizon (at most two levels).
void RunSpeedupChurn(benchmark::State& state, EngineBackend backend) {
  Simulation engine(backend);
  LegacySimulation legacy;
  uint64_t fired = 0;
  const auto batch = static_cast<uint64_t>(state.range(0));
  ChurnRound(engine, batch, &fired);  // warmup both
  ChurnRound(legacy, batch, &fired);
  uint64_t tsc_engine = 0;
  uint64_t tsc_legacy = 0;
  for (auto _ : state) {
    const uint64_t t0 = ReadTsc();
    ChurnRound(engine, batch, &fired);
    const uint64_t t1 = ReadTsc();
    ChurnRound(legacy, batch, &fired);
    const uint64_t t2 = ReadTsc();
    tsc_engine += t1 - t0;
    tsc_legacy += t2 - t1;
  }
  benchmark::DoNotOptimize(fired);
  const auto events = static_cast<uint64_t>(state.iterations()) * batch;
  state.SetItemsProcessed(static_cast<int64_t>(events) * 2);
  if (tsc_engine > 0) {
    state.counters["speedup"] = benchmark::Counter(
        static_cast<double>(tsc_legacy) / static_cast<double>(tsc_engine));
  }
  if (backend == EngineBackend::kAuto) {
    // The selection decision: 1 when the density heuristic kept (or chose)
    // the wheel for this batch size, 0 when it migrated to the heap.
    state.counters["wheel_active"] =
        benchmark::Counter(engine.wheel_active() ? 1.0 : 0.0);
    state.counters["backend_switches"] =
        benchmark::Counter(static_cast<double>(engine.backend_switches()));
  }
  if (backend == EngineBackend::kWheel && events > 0) {
    state.counters["cascades_per_event"] = benchmark::Counter(
        static_cast<double>(engine.wheel_cascades()) /
        static_cast<double>(events));
  }
}

void BM_ScheduleDrainSpeedup(benchmark::State& state) {
  RunSpeedupChurn(state, EngineBackend::kAuto);
}
BENCHMARK(BM_ScheduleDrainSpeedup)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_ScheduleDrainSpeedupHeap(benchmark::State& state) {
  RunSpeedupChurn(state, EngineBackend::kHeap);
}
BENCHMARK(BM_ScheduleDrainSpeedupHeap)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_ScheduleDrainSpeedupWheel(benchmark::State& state) {
  RunSpeedupChurn(state, EngineBackend::kWheel);
}
BENCHMARK(BM_ScheduleDrainSpeedupWheel)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

// Adversarial wheel workload: every schedule lands far outside the level-0
// window (spans up to ~2^34 ticks), so each event is inserted at level 3-4
// and must cascade down through every intermediate level before it can run.
// This is the wheel's worst case — the report gates that it stays
// allocation-free and records the cascade amplification (moves per event).
void BM_CascadeStress(benchmark::State& state) {
  Simulation engine(EngineBackend::kWheel);
  uint64_t fired = 0;
  const auto batch = static_cast<uint64_t>(state.range(0));
  auto round = [&] {
    const Nanos base = engine.Now() + 1;
    for (uint64_t i = 0; i < batch; ++i) {
      // Deterministic spread over a ~2^34-tick horizon: bits of a cheap
      // integer hash, biased so every level 0-4 gets traffic.
      const uint64_t h = (i * 0x9E3779B97F4A7C15ull) >> 30;
      engine.ScheduleAt(base + static_cast<Nanos>(h),
                        ChurnHandler{&fired, i, i + 1, i + 2});
    }
    engine.RunToCompletion();
  };
  round();  // warmup: size arena + wheel nodes
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  const uint64_t cascades_before = engine.wheel_cascades();
  for (auto _ : state) {
    round();
  }
  const uint64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);
  benchmark::DoNotOptimize(fired);
  const auto events = static_cast<uint64_t>(state.iterations()) * batch;
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["allocs_per_event"] = benchmark::Counter(
      events > 0
          ? static_cast<double>(allocs_after - allocs_before) /
                static_cast<double>(events)
          : 0.0);
  state.counters["cascades_per_event"] = benchmark::Counter(
      events > 0
          ? static_cast<double>(engine.wheel_cascades() - cascades_before) /
                static_cast<double>(events)
          : 0.0);
  state.counters["rollovers"] =
      benchmark::Counter(static_cast<double>(engine.wheel_rollovers()));
}
BENCHMARK(BM_CascadeStress)->Arg(4096);

// Steady-state self-rescheduling: a fixed population of pending events where
// every handler re-arms itself — the simulator's hot loop shape (arrivals
// and completions re-scheduling continuously). Verifies zero allocations per
// event after warmup via both the global allocator hook and the engine's own
// arena instrumentation.
struct SelfReschedule {
  Simulation* sim;
  uint64_t* fired;
  uint64_t stride;
  void operator()() const {
    ++*fired;
    sim->ScheduleAfter(static_cast<Nanos>(stride), *this);
  }
};

void BM_EngineSteadyState(benchmark::State& state) {
  Simulation engine;
  uint64_t fired = 0;
  constexpr uint64_t kPending = 512;
  engine.Reserve(kPending);
  for (uint64_t i = 0; i < kPending; ++i) {
    engine.ScheduleAt(static_cast<Nanos>(1 + (i * 7919) % kPending),
                      SelfReschedule{&engine, &fired, 1 + i % 97});
  }
  engine.RunUntil(engine.Now() + 4 * kPending);  // warmup
  const uint64_t arena_before = engine.arena_allocations();
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  uint64_t events = 0;
  for (auto _ : state) {
    const uint64_t before = engine.executed_events();
    engine.RunUntil(engine.Now() + kPending);
    events += engine.executed_events() - before;
  }
  const uint64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["allocs_per_event"] = benchmark::Counter(
      events > 0 ? static_cast<double>(allocs_after - allocs_before) /
                       static_cast<double>(events)
                 : 0.0);
  state.counters["arena_growths"] = benchmark::Counter(
      static_cast<double>(engine.arena_allocations() - arena_before));
}
BENCHMARK(BM_EngineSteadyState);

// Legacy twin of BM_EngineSteadyState: same 512 self-rescheduling handlers on
// the std::function engine, so the report can compare the hot-loop shape
// apples to apples.
struct LegacySelfReschedule {
  LegacySimulation* sim;
  uint64_t* fired;
  uint64_t stride;
  void operator()() const {
    ++*fired;
    sim->ScheduleAfter(static_cast<Nanos>(stride), *this);
  }
};

void BM_LegacySteadyState(benchmark::State& state) {
  LegacySimulation engine;
  uint64_t fired = 0;
  constexpr uint64_t kPending = 512;
  for (uint64_t i = 0; i < kPending; ++i) {
    engine.ScheduleAt(static_cast<Nanos>(1 + (i * 7919) % kPending),
                      LegacySelfReschedule{&engine, &fired, 1 + i % 97});
  }
  engine.RunUntil(engine.Now() + 4 * kPending);  // warmup
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  uint64_t events = 0;
  for (auto _ : state) {
    const uint64_t before = engine.executed_events();
    engine.RunUntil(engine.Now() + kPending);
    events += engine.executed_events() - before;
  }
  const uint64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["allocs_per_event"] = benchmark::Counter(
      events > 0 ? static_cast<double>(allocs_after - allocs_before) /
                       static_cast<double>(events)
                 : 0.0);
}
BENCHMARK(BM_LegacySteadyState);

}  // namespace
}  // namespace psp

BENCHMARK_MAIN();
