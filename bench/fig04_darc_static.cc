// Figure 4 (§5.3, "How much non work-conservation is useful?"): sweep the
// number of cores manually reserved for short requests ("DARC-static") from
// 0 to 14 at 95% load, for High Bimodal (a) and Extreme Bimodal (b), plus the
// c-FCFS reference line.
//
// Paper shape: the overall p99.9 slowdown minimum sits at 1 reserved core for
// High Bimodal (≈4.4× better than 0 = Fixed Priority) and 2 cores for Extreme
// Bimodal (≈1.5×); large reservations starve long requests and blow up the
// tail — validating DARC's automatic choice.
#include <cstdio>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;
constexpr double kLoad = 0.95;

void RunPanel(const char* title, const WorkloadSpec& workload) {
  const double peak = workload.PeakLoadRps(kWorkers);
  std::printf("%s at %.0f%% load (%.0f kRPS)\n", title, kLoad * 100,
              kLoad * peak / 1e3);

  // c-FCFS reference line.
  ClusterEngine reference(workload, TestbedConfig(kWorkers, kLoad * peak),
                          MakePspCFcfs());
  reference.Run();
  const double cfcfs = reference.metrics().OverallSlowdown(99.9);

  Table table({"reserved_cores", "p999_slowdown", "p999_short_us",
               "p999_long_us", "drops"});
  // Where the cycles went per reservation size: the time-ledger breakdown
  // (share of worker wall time; states are exhaustive, so sum_pct is 100).
  // reserved_idle_pct is the paper's deliberate idling — it should grow with
  // the reservation while p99.9 first improves, then collapses.
  Table provenance({"reserved_cores", "busy_pct", "steal_pct",
                    "reserved_idle_pct", "free_idle_pct", "sum_pct",
                    "p999_slowdown"});
  double fp_slowdown = 0;
  double best_slowdown = 1e18;
  uint32_t best_reserved = 0;
  // Sweep stops one short of kWorkers: the scheduler (correctly) rejects
  // reserving every core, since no worker would remain for other types.
  for (uint32_t reserved = 0; reserved < kWorkers; ++reserved) {
    ClusterEngine engine(workload, TestbedConfig(kWorkers, kLoad * peak),
                         MakeDarcStatic(reserved));
    engine.Run();
    const Metrics& m = engine.metrics();
    const double slowdown = m.OverallSlowdown(99.9);
    if (reserved == 0) {
      fp_slowdown = slowdown;
    }
    if (slowdown < best_slowdown && m.TotalDrops() == 0) {
      best_slowdown = slowdown;
      best_reserved = reserved;
    }
    table.AddRow({std::to_string(reserved), Fmt(slowdown, 1),
                  FmtMicros(m.TypeLatency(1, 99.9)),
                  FmtMicros(m.TypeLatency(2, 99.9)),
                  std::to_string(m.TotalDrops())});
    const WorkerTimeShares shares =
        ComputeWorkerTimeShares(engine.telemetry_snapshot());
    provenance.AddRow(
        {std::to_string(reserved), Fmt(shares.Pct(WorkerTimeState::kBusy), 1),
         Fmt(shares.Pct(WorkerTimeState::kSteal), 1),
         Fmt(shares.Pct(WorkerTimeState::kReservedIdle), 1),
         Fmt(shares.Pct(WorkerTimeState::kFreeIdle), 1), Fmt(shares.Sum(), 1),
         Fmt(slowdown, 1)});
  }
  table.Print();
  std::printf("\nWorker time provenance (%% of worker wall time):\n");
  provenance.Print();
  std::printf("c-FCFS reference p999 slowdown: %.1f\n", cfcfs);
  std::printf("Best: %u reserved core(s), slowdown %.1f (%.1fx better than "
              "Fixed Priority = 0 reserved)\n\n",
              best_reserved, best_slowdown, fp_slowdown / best_slowdown);
}

void Main() {
  std::printf("Figure 4: gradually adjusting the degree of work conservation "
              "(DARC-static)\n\n");
  RunPanel("(a) High Bimodal", HighBimodal());
  RunPanel("(b) Extreme Bimodal", ExtremeBimodal());
  std::printf("(paper: best at 1 core for High Bimodal [4.4x], 2 cores for "
              "Extreme Bimodal [1.5x])\n");
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
