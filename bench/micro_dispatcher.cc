// Microbenchmarks for the dispatcher's per-request costs (§4.3.3): the paper
// reports ≈75 cycles to update a request's profile, ≈300 cycles to check
// whether a reservation update is required, ≈1000 cycles to perform one, and
// ≈100 ns for a header-field classifier.
#include <benchmark/benchmark.h>

#include "src/core/classifier.h"
#include "src/core/profiler.h"
#include "src/core/reservation.h"
#include "src/core/scheduler.h"
#include "src/net/packet.h"

namespace psp {
namespace {

ProfilerConfig BenchProfiler() {
  ProfilerConfig c;
  c.min_window_samples = UINT64_MAX;  // never transition during the loop
  return c;
}

void BM_ProfileUpdate(benchmark::State& state) {
  Profiler profiler(BenchProfiler());
  profiler.ResizeTypes(8);
  uint64_t i = 0;
  for (auto _ : state) {
    profiler.RecordCompletion(static_cast<TypeIndex>(i & 7),
                              static_cast<Nanos>(1000 + (i & 1023)));
    ++i;
  }
  benchmark::DoNotOptimize(profiler.window_samples());
}
BENCHMARK(BM_ProfileUpdate);

void BM_UpdateCheck(benchmark::State& state) {
  Profiler profiler(BenchProfiler());
  profiler.ResizeTypes(4);
  for (int i = 0; i < 1000; ++i) {
    profiler.RecordCompletion(static_cast<TypeIndex>(i & 3), 1000 + i);
  }
  for (auto _ : state) {
    auto update = profiler.CheckUpdate();
    benchmark::DoNotOptimize(update);
  }
}
BENCHMARK(BM_UpdateCheck);

void BM_ReservationUpdate(benchmark::State& state) {
  const std::vector<TypeDemand> demands = {
      {0, 5700, 0.44}, {1, 6000, 0.04}, {2, 20000, 0.44},
      {3, 88000, 0.04}, {4, 100000, 0.04}};
  const ReservationConfig config{14, 2.0, 1};
  for (auto _ : state) {
    const Reservation r = ComputeReservation(demands, config);
    benchmark::DoNotOptimize(r.cpu_waste);
  }
}
BENCHMARK(BM_ReservationUpdate);

void BM_HeaderClassifier(benchmark::State& state) {
  std::byte frame[256];
  RequestFrame f;
  f.flow = FlowTuple{1, 2, 3, 4};
  f.request_type = 3;
  const uint32_t len = BuildRequestPacket(f, frame, sizeof(frame));
  HeaderFieldClassifier classifier;
  for (auto _ : state) {
    const TypeId t = classifier.Classify(frame + kRequestOffset,
                                         len - kRequestOffset);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_HeaderClassifier);

void BM_PacketParse(benchmark::State& state) {
  std::byte frame[256];
  RequestFrame f;
  f.flow = FlowTuple{1, 2, 3, 4};
  const uint32_t len = BuildRequestPacket(f, frame, sizeof(frame));
  for (auto _ : state) {
    auto parsed = ParseRequestPacket(frame, len);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_PacketParse);

// One full dispatch decision: enqueue + Algorithm 1 + completion, on a
// seeded High Bimodal scheduler. This is the per-request scheduler cost the
// 7 Mpps dispatcher budget must cover.
void BM_DispatchDecision(benchmark::State& state) {
  SchedulerConfig config;
  config.num_workers = 14;
  config.profiler.min_window_samples = UINT64_MAX;
  DarcScheduler scheduler(config);
  const TypeIndex short_t = scheduler.RegisterType(1, "S", 1000, 0.5);
  scheduler.RegisterType(2, "L", 100000, 0.5);
  scheduler.ActivateSeededReservation();

  uint64_t id = 0;
  for (auto _ : state) {
    Request r;
    r.id = id;
    r.type = short_t;
    r.arrival = static_cast<Nanos>(id);
    scheduler.Enqueue(r, r.arrival);
    auto a = scheduler.NextAssignment(r.arrival);
    benchmark::DoNotOptimize(a);
    scheduler.OnCompletion(a->worker, short_t, 1000,
                           static_cast<Nanos>(id + 1));
    ++id;
  }
}
BENCHMARK(BM_DispatchDecision);

void BM_DispatchDecisionFiveTypes(benchmark::State& state) {
  SchedulerConfig config;
  config.num_workers = 14;
  config.profiler.min_window_samples = UINT64_MAX;
  DarcScheduler scheduler(config);
  const double us = 1000;
  const TypeIndex types[5] = {
      scheduler.RegisterType(1, "Payment", static_cast<Nanos>(5.7 * us), 0.44),
      scheduler.RegisterType(2, "OrderStatus", static_cast<Nanos>(6 * us), 0.04),
      scheduler.RegisterType(3, "NewOrder", static_cast<Nanos>(20 * us), 0.44),
      scheduler.RegisterType(4, "Delivery", static_cast<Nanos>(88 * us), 0.04),
      scheduler.RegisterType(5, "StockLevel", static_cast<Nanos>(100 * us), 0.04)};
  scheduler.ActivateSeededReservation();

  uint64_t id = 0;
  for (auto _ : state) {
    Request r;
    r.id = id;
    r.type = types[id % 5];
    r.arrival = static_cast<Nanos>(id);
    scheduler.Enqueue(r, r.arrival);
    auto a = scheduler.NextAssignment(r.arrival);
    benchmark::DoNotOptimize(a);
    if (a) {
      scheduler.OnCompletion(a->worker, a->request.type, 1000,
                             static_cast<Nanos>(id + 1));
    }
    ++id;
  }
}
BENCHMARK(BM_DispatchDecisionFiveTypes);

}  // namespace
}  // namespace psp

BENCHMARK_MAIN();
