// Profiler-overhead bench: sampling the runtime at the default 99 Hz must
// not disturb the data path it observes. Runs the same open-loop spin
// workload against a live runtime in interleaved rounds — profiler idle vs
// capturing (every thread armed with a per-thread CPU-time SIGPROF timer) —
// and compares the client-observed p99.9 (min across rounds per variant,
// robust to shared-box noise). Acceptance: the profiled p99.9 stays within
// 5% of baseline.
//
// Env: PSP_BENCH_REQUESTS (per round, default 20000), PSP_BENCH_ROUNDS
// (default 5), PSP_BENCH_PROFILE_HZ (default 99), PSP_BENCH_JSON=1 (emit a
// JSON result line for scripts/bench_report.sh).
// Exit codes: 0 ok, 1 gate breach, 2 operational failure (profiled rounds
// collected no samples at all).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "src/apps/synthetic.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"

namespace psp {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0'
             ? std::strtoull(value, nullptr, 10)
             : fallback;
}

int Main() {
  const uint64_t requests = EnvOr("PSP_BENCH_REQUESTS", 20000);
  const int rounds = static_cast<int>(EnvOr("PSP_BENCH_ROUNDS", 5));
  const int hz = static_cast<int>(EnvOr("PSP_BENCH_PROFILE_HZ", 99));
  const bool json = EnvOr("PSP_BENCH_JSON", 0) != 0;

  RuntimeConfig config;
  config.num_workers = 2;
  config.telemetry.sample_every = 64;
  Persephone server(config);
  server.RegisterType(1, "SPIN", MakeSpinHandler(), FromMicros(5), 1.0);
  server.Start();

  uint64_t samples_total = 0;
  auto run_round = [&](bool profiled, uint64_t seed) {
    if (profiled) {
      server.cpu_sampler().Start(hz);
    }
    LoadGenConfig lg;
    lg.rate_rps = 20000;
    lg.total_requests = requests;
    lg.seed = seed;
    LoadGenerator gen(&server, {MakeSpinSpec(1, "SPIN", 1.0, FromMicros(5))},
                      lg);
    const LoadGenReport report = gen.Run();
    if (profiled) {
      server.cpu_sampler().Stop();
      samples_total += server.cpu_sampler().total_samples();
    }
    return static_cast<double>(report.overall.Percentile(99.9));
  };

  // Warm-up round (TSC calibration, allocator, code paths) — not measured.
  run_round(false, 1);

  // Three interleaved measurement streams: two idle (A/A — they differ only
  // by ambient noise) and one profiling. min-of-rounds for the compared
  // values; the noise floor is calibrated from the FULL range of idle
  // rounds, not the spread of the two idle mins (mins of independent
  // streams converge to the same floor as rounds grow, which would
  // understate what a single noisy round can do to the profiled stream).
  double base_p999 = 1e18;
  double idle_max = 0.0;
  double profiled_p999 = 1e18;
  for (int round = 0; round < rounds; ++round) {
    const auto r = static_cast<uint64_t>(round);
    const double a = run_round(false, 100 + r);
    profiled_p999 = std::min(profiled_p999, run_round(true, 200 + r));
    const double b = run_round(false, 300 + r);
    base_p999 = std::min(base_p999, std::min(a, b));
    idle_max = std::max(idle_max, std::max(a, b));
  }
  server.Stop();

  const double noise_pct = (idle_max - base_p999) / base_p999 * 100.0;
  const double delta_pct = (profiled_p999 - base_p999) / base_p999 * 100.0;

  std::printf("# profile-under-load, %d rounds x %" PRIu64
              " requests per variant, %d Hz CPU-time sampling\n",
              rounds, requests, hz);
  std::printf("%-24s %10.0f ns  (idle-round spread %.2f%%)\n",
              "p99.9 (profiler idle)", base_p999, noise_pct);
  std::printf("%-24s %10.0f ns  (delta %+.2f%%)\n", "p99.9 (profiling)",
              profiled_p999, delta_pct);
  std::printf("%-24s %10" PRIu64 "\n", "samples collected", samples_total);
  if (json) {
    std::printf("{\"p999_base_nanos\":%.0f,\"p999_profiled_nanos\":%.0f,"
                "\"delta_pct\":%.3f,\"noise_pct\":%.3f,\"hz\":%d,"
                "\"samples\":%" PRIu64 "}\n",
                base_p999, profiled_p999, delta_pct, noise_pct, hz,
                samples_total);
  }

  if (samples_total == 0) {
    std::printf("profile-check: FAIL (profiled rounds collected 0 samples)\n");
    return 2;
  }
  // The gate: <5% when the machine can resolve 5% (quiet multicore boxes);
  // when two identical idle variants already differ by more than that
  // (single-core/shared CI), the profiler only fails by exceeding the
  // measured noise floor plus the budget.
  const double budget = 5.0 + noise_pct;
  const bool ok = delta_pct < budget;
  if (noise_pct >= 5.0) {
    std::printf("profile-overhead-check: %s (%+.2f%% vs noise-adjusted "
                "budget %.2f%%; idle-round spread %.2f%% exceeds the 5%% "
                "gate this host can resolve)\n",
                ok ? "PASS" : "FAIL", delta_pct, budget, noise_pct);
  } else {
    std::printf("profile-overhead-check: %s (%+.2f%% < %.2f%%)\n",
                ok ? "PASS" : "FAIL", delta_pct, budget);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace psp

int main() { return psp::Main(); }
