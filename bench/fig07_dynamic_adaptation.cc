// Figure 7 (§5.5, "Handling workload changes"): four phases over two request
// types A and B at 80% utilisation, with DARC profiling windows driving
// reservation updates; c-FCFS as the baseline. Prints a per-100 ms timeline
// of p99.9 latency per type plus a sampled timeline of the cores guaranteed
// to each type.
//
// Paper shape: after each phase flip the profiler re-converges within
// ~500 ms. Phase plan (service time µs @ ratio):
//   P1  A:100@50%  B:1@50%    → B gets 1 core + 13 stealable, A gets 13
//   P2  A:1@50%    B:100@50%  → swapped (misclassification stress)
//   P3  A:1@94%    B:100@6%   → A's demand rises to 2 cores (rate scaled to
//                               hold 80% utilisation)
//   P4  A:1@100%              → no update needed: A already steals all
//                               cores; pending B requests drain on the
//                               spillway core
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/telemetry/slo.h"
#include "src/telemetry/trace_export.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;
constexpr double kUtil = 0.80;

void PrintTimeline(const ClusterEngine& engine) {
  Table table({"t_ms", "A_p999_us", "B_p999_us", "A_count", "B_count"});
  const auto series_a = engine.metrics().TimeSeries(1);
  const auto series_b = engine.metrics().TimeSeries(2);
  size_t bi = 0;
  for (const auto& bucket : series_a) {
    while (bi < series_b.size() && series_b[bi].start < bucket.start) {
      ++bi;
    }
    const bool has_b =
        bi < series_b.size() && series_b[bi].start == bucket.start;
    table.AddRow({std::to_string(bucket.start / kMillisecond),
                  FmtMicros(bucket.p999_latency),
                  has_b ? FmtMicros(series_b[bi].p999_latency) : "-",
                  std::to_string(bucket.count),
                  has_b ? std::to_string(series_b[bi].count) : "0"});
  }
  table.Print();
}

void Main() {
  const WorkloadSpec workload = FourPhaseAdaptation(2 * kSecond);
  const double rate = kUtil * workload.PeakLoadRps(kWorkers);
  std::printf("Figure 7: 4-phase adaptation at 80%% utilisation "
              "(phase length %lld ms, base rate %.0f kRPS; phases 3-4 scale "
              "it %.1fx)\n\n",
              static_cast<long long>(workload.phases[0].duration /
                                     kMillisecond),
              rate / 1e3, workload.phases[2].load_scale);

  ClusterConfig config = TestbedConfig(kWorkers, rate);
  config.duration = 4 * workload.phases[0].duration;
  config.warmup_fraction = 0;  // the timeline IS the result
  config.time_series_bucket = 100 * kMillisecond;
  // Continuous observability: the windowed recorder captures the same
  // dynamics machine-readably (per-type rates, queue depths, reserved shares,
  // windowed slowdowns); the simulator samples every completion so the series
  // is bit-deterministic for the seed.
  config.telemetry.timeseries.enabled = true;
  config.telemetry.timeseries.interval = 100 * kMillisecond;
  config.telemetry.timeseries.slowdown_sample_every = 1;

  // --- DARC with live profiling --------------------------------------------
  PersephoneOptions options;
  options.scheduler.mode = PolicyMode::kDarc;
  options.seed_profiles = false;
  options.scheduler.profiler.min_window_samples = 20000;
  options.scheduler.profiler.slo_slowdown = 10.0;

  {
    ClusterEngine engine(workload, config,
                         std::make_unique<PersephonePolicy>(options));
    auto& darc = static_cast<PersephonePolicy&>(engine.policy());

    // Sample guaranteed cores every 250 ms of simulated time (the second row
    // of the paper's figure).
    struct CoreSample {
      Nanos t;
      uint32_t a;
      uint32_t b;
      uint64_t updates;
    };
    std::vector<CoreSample> core_timeline;
    for (Nanos t = 250 * kMillisecond; t <= config.duration;
         t += 250 * kMillisecond) {
      engine.sim().ScheduleAt(t, [t, &darc, &core_timeline] {
        const auto& s = darc.scheduler();
        core_timeline.push_back(
            CoreSample{t, s.reserved_workers_of(s.ResolveType(1)),
                       s.reserved_workers_of(s.ResolveType(2)),
                       s.reservation_updates()});
      });
    }
    engine.Run();

    std::printf("DARC: p99.9 latency per 100ms bucket\n");
    PrintTimeline(engine);

    std::printf("\nDARC: guaranteed cores over time (update events where the "
                "counter steps)\n");
    Table cores({"t_ms", "A_cores", "B_cores", "updates"});
    for (const auto& sample : core_timeline) {
      cores.AddRow({std::to_string(sample.t / kMillisecond),
                    std::to_string(sample.a), std::to_string(sample.b),
                    std::to_string(sample.updates)});
    }
    cores.Print();

    // The structured reservation-update series: every applied reservation,
    // stamped with virtual time and the profiler window that triggered it —
    // the exact moments the core timeline above only samples.
    std::printf("\nDARC: reservation-update events (structured series)\n");
    Table updates({"t_ms", "seq", "window", "A_cores", "B_cores"});
    for (const ReservationUpdate& u : engine.telemetry().reservation_updates()) {
      uint32_t a = 0;
      uint32_t b = 0;
      for (const ReservationShare& share : u.shares) {
        if (share.name == "A") {
          a = share.reserved_workers;
        } else if (share.name == "B") {
          b = share.reserved_workers;
        }
      }
      updates.AddRow({std::to_string(u.at / kMillisecond),
                      std::to_string(u.seq), std::to_string(u.window),
                      std::to_string(a), std::to_string(b)});
    }
    updates.Print();

    // Optional Perfetto export: PSP_TRACE_OUT=/path/trace.json then load the
    // file in https://ui.perfetto.dev (docs/OBSERVABILITY.md).
    if (const char* trace_out = std::getenv("PSP_TRACE_OUT")) {
      const std::string json =
          ExportCatapultTrace(engine.telemetry_snapshot());
      if (WriteTextFile(trace_out, json)) {
        std::printf("\nwrote Perfetto trace to %s (%zu bytes)\n", trace_out,
                    json.size());
      } else {
        std::printf("\nfailed to write Perfetto trace to %s\n", trace_out);
      }
    }
    std::printf("\n");
  }

  // --- c-FCFS baseline -------------------------------------------------------
  {
    ClusterEngine engine(workload, config, MakePspCFcfs());
    engine.Run();
    std::printf("c-FCFS (baseline): p99.9 latency per 100ms bucket\n");
    PrintTimeline(engine);
  }
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
