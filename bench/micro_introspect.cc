// Scrape-under-load bench: the admin plane must be able to serve a 10 Hz
// Prometheus scraper without disturbing the data path. Runs the same
// open-loop spin workload against a live runtime in interleaved rounds —
// scraper idle vs. scraping GET /metrics every 100 ms — and compares the
// client-observed p99 (min across rounds per variant, robust to shared-box
// noise the same way micro_telemetry's min-of-batches is). Acceptance: the
// scraped p99 stays within 5% of baseline.
//
// Env: PSP_BENCH_REQUESTS (per round, default 20000), PSP_BENCH_ROUNDS
// (default 5), PSP_BENCH_JSON=1 (emit a JSON result line for
// scripts/bench_report.sh).
// Exit codes: 0 ok, 1 gate breach, 2 operational failure (no scrapes landed
// or malformed exposition).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "src/apps/synthetic.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"

namespace psp {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0'
             ? std::strtoull(value, nullptr, 10)
             : fallback;
}

// Minimal blocking GET against the loopback admin port; returns the body or
// "" on failure.
std::string ScrapeMetrics(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const char req[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  if (::write(fd, req, sizeof(req) - 1) !=
      static_cast<ssize_t>(sizeof(req) - 1)) {
    ::close(fd);
    return "";
  }
  std::string response;
  char chunk[8192];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

int Main() {
  const uint64_t requests = EnvOr("PSP_BENCH_REQUESTS", 20000);
  const int rounds = static_cast<int>(EnvOr("PSP_BENCH_ROUNDS", 5));
  const bool json = EnvOr("PSP_BENCH_JSON", 0) != 0;

  RuntimeConfig config;
  config.num_workers = 2;
  config.telemetry.sample_every = 64;
  config.telemetry.timeseries.enabled = true;
  config.telemetry.timeseries.interval = 50 * kMillisecond;
  config.admin.enabled = true;  // ephemeral loopback port
  config.outliers.enabled = true;
  config.outliers.k = 8;
  Persephone server(config);
  server.RegisterType(1, "SPIN", MakeSpinHandler(), FromMicros(5), 1.0);
  server.Start();
  const uint16_t port = server.admin_port();

  // 10 Hz scraper, gated by `armed` so the idle variant shares the thread's
  // scheduling footprint and differs only in the scrapes themselves.
  std::atomic<bool> armed{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<uint64_t> bad_scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (!armed.load(std::memory_order_acquire)) {
        continue;
      }
      const std::string body = ScrapeMetrics(port);
      if (body.find("psp_up 1") != std::string::npos) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      } else {
        bad_scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  auto run_round = [&](bool scraped, uint64_t seed) {
    armed.store(scraped, std::memory_order_release);
    LoadGenConfig lg;
    lg.rate_rps = 20000;
    lg.total_requests = requests;
    lg.seed = seed;
    LoadGenerator gen(&server, {MakeSpinSpec(1, "SPIN", 1.0, FromMicros(5))},
                      lg);
    const LoadGenReport report = gen.Run();
    armed.store(false, std::memory_order_release);
    return static_cast<double>(report.overall.Percentile(0.99));
  };

  // Warm-up round (TSC calibration, allocator, code paths) — not measured.
  run_round(false, 1);

  double base_p99 = 1e18;
  double scraped_p99 = 1e18;
  for (int round = 0; round < rounds; ++round) {
    base_p99 = std::min(base_p99,
                        run_round(false, 100 + static_cast<uint64_t>(round)));
    scraped_p99 = std::min(
        scraped_p99, run_round(true, 200 + static_cast<uint64_t>(round)));
  }

  stop.store(true, std::memory_order_release);
  scraper.join();
  server.Stop();

  const double delta_pct = (scraped_p99 - base_p99) / base_p99 * 100.0;
  const uint64_t total_scrapes = scrapes.load();
  const uint64_t failed = bad_scrapes.load();

  std::printf("# scrape-under-load, %d rounds x %" PRIu64
              " requests per variant, 10 Hz GET /metrics\n",
              rounds, requests);
  std::printf("%-24s %10.0f ns\n", "p99 (scraper idle)", base_p99);
  std::printf("%-24s %10.0f ns  (delta %+.2f%%)\n", "p99 (10 Hz scrape)",
              scraped_p99, delta_pct);
  std::printf("%-24s %10" PRIu64 " ok, %" PRIu64 " failed\n", "scrapes",
              total_scrapes, failed);
  if (json) {
    std::printf("{\"p99_base_nanos\":%.0f,\"p99_scraped_nanos\":%.0f,"
                "\"delta_pct\":%.3f,\"scrapes\":%" PRIu64
                ",\"bad_scrapes\":%" PRIu64 "}\n",
                base_p99, scraped_p99, delta_pct, total_scrapes, failed);
  }

  if (total_scrapes == 0 || failed > 0) {
    std::printf("scrape-check: FAIL (%" PRIu64 " ok, %" PRIu64 " failed)\n",
                total_scrapes, failed);
    return 2;
  }
  const bool ok = delta_pct < 5.0;
  std::printf("scrape-overhead-check: %s (%+.2f%% < 5%%)\n",
              ok ? "PASS" : "FAIL", delta_pct);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace psp

int main() { return psp::Main(); }
