// Extension (§6, "DARC in the datacenter ecosystem"): DARC cooperating with
// a core allocator. A three-phase load pattern (30% → 90% → 30% of a
// 14-worker peak) drives a utilisation-band allocator that grows/shrinks the
// active worker pool; DARC re-derives reservations on every allocation event.
// Compared against a fixed 14-worker DARC and a fixed 6-worker DARC.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/policies/elastic.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kMaxWorkersInPool = 14;

WorkloadSpec PhasedLoad(Nanos phase) {
  WorkloadSpec w = HighBimodal();
  WorkloadPhase base = w.phases[0];
  w.phases.clear();
  base.duration = phase;
  base.load_scale = 0.3;
  w.phases.push_back(base);
  base.load_scale = 0.9;
  w.phases.push_back(base);
  base.load_scale = 0.3;
  base.duration = 0;
  w.phases.push_back(base);
  return w;
}

void Main() {
  const Nanos phase = 400 * kMillisecond;
  const WorkloadSpec workload = PhasedLoad(phase);
  const double peak = HighBimodal().PeakLoadRps(kMaxWorkersInPool);
  std::printf("Extension: elastic core allocation under a 30%%/90%%/30%% "
              "load pattern (pool max %u workers)\n\n",
              kMaxWorkersInPool);

  ClusterConfig config = TestbedConfig(kMaxWorkersInPool, peak);
  config.duration = 3 * phase;
  config.warmup_fraction = 0.05;

  // Elastic DARC.
  ElasticOptions elastic;
  elastic.scheduler.mode = PolicyMode::kDarc;
  elastic.min_workers = 2;
  elastic.initial_workers = 4;
  elastic.allocation_period = 10 * kMillisecond;
  {
    ClusterEngine engine(workload, config,
                         std::make_unique<ElasticDarcPolicy>(elastic));
    auto& policy = static_cast<ElasticDarcPolicy&>(engine.policy());
    engine.Run();
    std::printf("elastic-darc: p999 slowdown %.1f, drops %llu, final pool %u "
                "workers, %zu allocation events\n",
                engine.metrics().OverallSlowdown(99.9),
                static_cast<unsigned long long>(engine.metrics().TotalDrops()),
                policy.active_workers(), policy.allocation_log().size());
    std::printf("allocation timeline (ms -> workers): ");
    for (const auto& [t, n] : policy.allocation_log()) {
      std::printf("%lld->%u ", static_cast<long long>(t / kMillisecond), n);
    }
    std::printf("\n");
    // Core-seconds consumed: integral of the active pool over time.
    double core_seconds = 0;
    Nanos prev_t = 0;
    uint32_t prev_n = elastic.initial_workers;
    for (const auto& [t, n] : policy.allocation_log()) {
      core_seconds += static_cast<double>(t - prev_t) / 1e9 * prev_n;
      prev_t = t;
      prev_n = n;
    }
    core_seconds += static_cast<double>(config.duration - prev_t) / 1e9 * prev_n;
    std::printf("core-seconds consumed: %.2f (fixed-14 would use %.2f)\n\n",
                core_seconds, 14.0 * static_cast<double>(config.duration) / 1e9);
  }

  // Fixed baselines.
  for (const uint32_t fixed : {14u, 6u}) {
    ClusterConfig fixed_config = config;
    fixed_config.num_workers = fixed;
    ClusterEngine engine(workload, fixed_config, MakeDarc());
    engine.Run();
    std::printf("fixed-%u-darc: p999 slowdown %.1f, drops %llu\n", fixed,
                engine.metrics().OverallSlowdown(99.9),
                static_cast<unsigned long long>(engine.metrics().TotalDrops()));
  }
  std::printf("\n(the elastic pool tracks the load phases: it should grow "
              "toward ~13 workers in the 90%% phase and release cores in the "
              "30%% phases, meeting the SLO with fewer core-seconds than the "
              "fixed-14 configuration)\n");
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
