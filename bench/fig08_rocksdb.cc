// Figure 8 (§5.4.4): the RocksDB service — 50% GET (1.5 µs), 50% SCAN over
// 5000 keys (635 µs) — across Shenango c-FCFS, Shinjuku (multi-queue, 15 µs
// interrupts, per the paper) and Perséphone/DARC.
//
// Paper shape: for a 20× p99.9 slowdown objective DARC sustains 2.3× and
// 1.3× more throughput than Shenango and Shinjuku; DARC reserves 1 core for
// GETs, idling ≈0.96 core on average; Shinjuku caps near 75% of peak.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;
constexpr double kSlo = 20.0;

void Main() {
  const WorkloadSpec workload = RocksDbMix();
  const double peak = workload.PeakLoadRps(kWorkers);
  std::printf("Figure 8: RocksDB GET/SCAN across systems (peak %.1f kRPS)\n\n",
              peak / 1e3);

  struct System {
    const char* name;
    std::function<std::unique_ptr<SchedulingPolicy>()> make;
  };
  const std::vector<System> systems = {
      {"shenango-c-FCFS", [] { return MakeShenangoCFcfs(); }},
      {"shinjuku-mq(15us)",
       [] { return MakeShinjuku(15 * kMicrosecond, /*multi_queue=*/true); }},
      {"persephone-DARC", [] { return MakeDarc(); }},
  };

  Table table({"load", "system", "p999_slowdown", "p999_GET_us",
               "p999_SCAN_us", "preemptions"});
  const auto loads = DefaultLoads();
  std::vector<std::vector<double>> slowdowns(systems.size());
  double darc_waste = 0;
  uint32_t darc_reserved = 0;

  for (const double load : loads) {
    for (size_t s = 0; s < systems.size(); ++s) {
      ClusterEngine engine(workload, TestbedConfig(kWorkers, load * peak),
                           systems[s].make());
      engine.Run();
      const Metrics& m = engine.metrics();
      const double drop_pct =
          100.0 * static_cast<double>(m.TotalDrops()) /
          static_cast<double>(std::max<uint64_t>(1, engine.generated()));
      // Shedding >0.1% of load disqualifies the point (the paper's Shinjuku
      // "starts dropping packets" past ~75% and its curve ends there).
      slowdowns[s].push_back(drop_pct > 0.1 ? 1e9 : m.OverallSlowdown(99.9));
      table.AddRow({Fmt(load, 2), systems[s].name,
                    Fmt(m.OverallSlowdown(99.9), 1),
                    FmtMicros(m.TypeLatency(1, 99.9)),
                    FmtMicros(m.TypeLatency(2, 99.9)),
                    std::to_string(engine.policy().preemptions())});
      if (s == 2) {
        const auto& darc = static_cast<PersephonePolicy&>(engine.policy());
        darc_waste = darc.scheduler().reservation().cpu_waste;
        darc_reserved = darc.scheduler().reserved_workers_of(
            darc.scheduler().ResolveType(1));
      }
    }
  }
  table.Print();

  std::printf("\nDARC reserves %u core(s) for GETs, static CPU waste %.2f "
              "(paper: 1 core, ~0.96 idle)\n",
              darc_reserved, darc_waste);
  std::printf("Sustained load @ %.0fx p999 slowdown (paper: DARC 2.3x "
              "Shenango, 1.3x Shinjuku):\n",
              kSlo);
  std::vector<double> sustained(systems.size());
  for (size_t s = 0; s < systems.size(); ++s) {
    sustained[s] = MaxLoadUnderSlo(loads, slowdowns[s], kSlo);
    std::printf("  %-20s %.0f%% of peak\n", systems[s].name,
                sustained[s] * 100);
  }
  if (sustained[0] > 0 && sustained[1] > 0) {
    std::printf("  DARC ratios: %.2fx vs Shenango, %.2fx vs Shinjuku\n",
                sustained[2] / sustained[0], sustained[2] / sustained[1]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
