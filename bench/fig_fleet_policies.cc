// Fleet extension (RackSched-style tier above the paper's single server):
// N Perséphone/DARC servers behind one rack dispatcher, comparing the
// inter-server policies — random, RSS-hash affinity, round-robin,
// power-of-two-choices on sampled depth, centralized shortest-queue with
// bounded-staleness depth tracking — on fleet-wide p99.9 slowdown under
// High and Extreme Bimodal at 2–8 servers.
//
// Expected shape (mirrors the load-balancing literature): the depth-aware
// policies (po2c, shortest-q) beat the oblivious ones (random, rss) at high
// load because heavy-tailed service times make per-server queue depth wildly
// uneven; round-robin sits between. The headline the report gates on: po2c
// p99.9 <= random p99.9 at 70% fleet load.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/fleet/fleet_sim.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkersPerServer = 8;

FleetSimConfig FleetConfig(uint32_t servers, double rate,
                           FleetPolicyKind kind) {
  FleetSimConfig config;
  config.num_servers = servers;
  config.server.num_workers = kWorkersPerServer;
  // Per-server pipeline calibrated like the testbed model; the rack hop
  // (client -> dispatcher) carries the 5 us one-way, the dispatcher ->
  // server hop is the intra-rack 1 us.
  config.server.net_one_way = kMicrosecond;
  config.server.dispatch_cost = 100;
  config.server.completion_cost = 40;
  config.net_one_way = 5 * kMicrosecond;
  config.dispatch_cost = 50;
  config.rate_rps = rate;
  config.duration = BenchDuration();
  config.seed = BenchSeed();
  config.policy = FleetPolicyConfig::Default(kind);
  return config;
}

void SweepWorkload(const char* workload_name, const WorkloadSpec& workload,
                   Table* table) {
  const double peak = workload.PeakLoadRps(kWorkersPerServer);
  const std::vector<uint32_t> fleets = {2, 4, 8};
  const std::vector<double> loads = {0.5, 0.7, 0.85};
  const std::vector<FleetPolicyKind> policies = {
      FleetPolicyKind::kRandom,     FleetPolicyKind::kRssHash,
      FleetPolicyKind::kRoundRobin, FleetPolicyKind::kPowerOfTwo,
      FleetPolicyKind::kShortestQueue,
  };

  // Headline ratios at the gated point (70% load, 4 servers).
  double random_p999 = 0, po2c_p999 = 0, shortest_p999 = 0;

  for (const uint32_t servers : fleets) {
    for (const double load : loads) {
      const double rate = load * static_cast<double>(servers) * peak;
      for (const FleetPolicyKind kind : policies) {
        FleetSimulation fleet(workload, FleetConfig(servers, rate, kind),
                              [](uint32_t) { return MakeDarc(); });
        fleet.Run();
        const double p999 = fleet.metrics().OverallSlowdown(99.9);
        const double achieved =
            fleet.metrics().ThroughputRps(fleet.MeasuredWindow());
        // Fleet-wide time provenance: every server's worker ledger records
        // pooled, so reserved_idle_pct is the rack's deliberate-idling share
        // under this inter-server policy (sum_pct is 100 by construction).
        std::vector<WorkerTimeRecord> ledgers;
        for (uint32_t i = 0; i < fleet.num_servers(); ++i) {
          const TelemetrySnapshot snap = fleet.server(i).telemetry_snapshot();
          ledgers.insert(ledgers.end(), snap.worker_time.begin(),
                         snap.worker_time.end());
        }
        const WorkerTimeShares shares = WorkerTimeSharesFromRecords(ledgers);
        table->AddRow({workload_name, std::to_string(servers), Fmt(load, 2),
                       FleetPolicyName(kind), Fmt(p999, 1),
                       Fmt(achieved / 1e3, 0),
                       std::to_string(fleet.metrics().TotalDrops()),
                       Fmt(shares.Pct(WorkerTimeState::kBusy), 1),
                       Fmt(shares.Pct(WorkerTimeState::kSteal), 1),
                       Fmt(shares.Pct(WorkerTimeState::kReservedIdle), 1),
                       Fmt(shares.Pct(WorkerTimeState::kFreeIdle), 1),
                       Fmt(shares.Sum(), 1)});
        if (servers == 4 && load == 0.7) {
          if (kind == FleetPolicyKind::kRandom) random_p999 = p999;
          if (kind == FleetPolicyKind::kPowerOfTwo) po2c_p999 = p999;
          if (kind == FleetPolicyKind::kShortestQueue) shortest_p999 = p999;
        }
      }
    }
  }

  if (random_p999 > 0) {
    std::printf("\n%s @ 70%% load, 4 servers: po2c improves fleet p99.9 "
                "slowdown over random by %.2fx, shortest-q by %.2fx\n",
                workload_name, random_p999 / po2c_p999,
                random_p999 / shortest_p999);
  }
}

void Main() {
  std::printf("Fleet policies: %u-worker DARC servers behind a rack "
              "dispatcher (5us client hop, 1us rack hop)\n\n",
              kWorkersPerServer);
  Table table({"workload", "servers", "load", "policy", "p999_slowdown",
               "achieved_kRPS", "drops", "busy_pct", "steal_pct",
               "reserved_idle_pct", "free_idle_pct", "sum_pct"});
  SweepWorkload("HighBimodal", HighBimodal(), &table);
  SweepWorkload("ExtremeBimodal", ExtremeBimodal(), &table);
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
