// Figure 1 (§2, "The Case for Idling"): idealised 16-worker simulation of
// Extreme Bimodal (99.5% × 0.5 µs, 0.5% × 500 µs) comparing d-FCFS, c-FCFS,
// TS (5 µs quantum, 1 µs preemption overhead) and DARC.
//
// Paper shape to reproduce: for a 10× per-type p99.9 slowdown SLO,
// c-FCFS ≈ 2.1 Mrps, TS ≈ 3.7 Mrps, DARC ≈ 5.1 Mrps of a 5.3 Mrps peak, and
// at DARC's operating point short requests see ~µs-scale p99.9 latency while
// c-FCFS sees ~ms-scale.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 16;
constexpr double kSlo = 10.0;

struct System {
  const char* name;
  std::function<std::unique_ptr<SchedulingPolicy>()> make;
};

void Main() {
  const WorkloadSpec workload = ExtremeBimodal();
  const double peak = workload.PeakLoadRps(kWorkers);
  std::printf("Figure 1: achievable throughput vs p99.9 slowdown "
              "(Extreme Bimodal, %u workers, peak %.2f Mrps)\n\n",
              kWorkers, peak / 1e6);

  const std::vector<System> systems = {
      {"d-FCFS", [] { return std::make_unique<DecentralizedFcfsPolicy>(); }},
      {"c-FCFS", [] { return std::make_unique<CentralFcfsPolicy>(); }},
      {"TS(5us,1us)",
       [] {
         // The paper's idealised TS model: block-triggered preemption, at
         // most once per 5 us quantum, 1 us overhead per preemption (§2, §6).
         TimeSharingOptions o;
         o.quantum = 5 * kMicrosecond;
         o.preempt_overhead = kMicrosecond;
         o.trigger_on_block = true;
         return std::make_unique<TimeSharingPolicy>(o);
       }},
      {"DARC", [] { return MakeDarc(); }},
  };

  Table table({"load", "offered_Mrps", "policy", "p999_slow_short",
               "p999_slow_long", "p999_lat_short_us", "p999_lat_long_us",
               "drops"});

  std::vector<std::vector<double>> per_type_worst(systems.size());
  const auto loads = DefaultLoads();
  for (const double load : loads) {
    for (size_t s = 0; s < systems.size(); ++s) {
      const ClusterConfig config = IdealConfig(kWorkers, load * peak);
      ClusterEngine engine(workload, config, systems[s].make());
      engine.Run();
      const Metrics& m = engine.metrics();
      const double slow_short = m.TypeSlowdown(1, 99.9);
      const double slow_long = m.TypeSlowdown(2, 99.9);
      per_type_worst[s].push_back(std::max(slow_short, slow_long));
      table.AddRow({Fmt(load, 2), Fmt(load * peak / 1e6, 2), systems[s].name,
                    Fmt(slow_short, 2), Fmt(slow_long, 2),
                    FmtMicros(m.TypeLatency(1, 99.9)),
                    FmtMicros(m.TypeLatency(2, 99.9)),
                    std::to_string(m.TotalDrops())});
    }
  }
  table.Print();

  std::printf("\nSustainable throughput at %gx per-type p99.9 slowdown SLO "
              "(paper: c-FCFS 2.1 Mrps / TS 3.7 / DARC 5.1):\n",
              kSlo);
  for (size_t s = 0; s < systems.size(); ++s) {
    const double frac = MaxLoadUnderSlo(loads, per_type_worst[s], kSlo);
    std::printf("  %-12s %.2f Mrps (%.0f%% of peak)\n", systems[s].name,
                frac * peak / 1e6, frac * 100);
  }
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
