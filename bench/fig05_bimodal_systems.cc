// Figure 5 (§5.4.1–5.4.2): High Bimodal (a) and Extreme Bimodal (b) across
// the three systems — Shenango (d-FCFS and c-FCFS via work stealing),
// Shinjuku (preemptive TS; multi-queue for High Bimodal, single-queue for
// Extreme Bimodal, per the paper), and Perséphone/DARC — on the testbed
// model (14 workers, 10 µs RTT).
//
// Paper shape:
//  (a) DARC sustains 2.35×/1.3× more load than Shenango/Shinjuku at a 20×
//      slowdown target; Shinjuku caps near 75% load (5 µs interrupts);
//  (b) DARC and Shinjuku sustain ~1.4× Shenango at a 50× target; Shinjuku
//      caps near 55%; DARC reserves 2 cores; long-request latency for DARC
//      stays competitive with Shenango while Shinjuku adds ≥24% overhead.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;

struct System {
  const char* name;
  std::function<std::unique_ptr<SchedulingPolicy>()> make;
};

void RunPanel(const char* title, const WorkloadSpec& workload,
              const std::vector<System>& systems, double slo) {
  const double peak = workload.PeakLoadRps(kWorkers);
  std::printf("%s (peak %.0f kRPS)\n", title, peak / 1e3);
  Table table({"load", "system", "p999_slowdown", "p999_short_us",
               "p999_long_us", "drop_pct", "preemptions"});
  const auto loads = DefaultLoads();
  std::vector<std::vector<double>> slowdowns(systems.size());
  for (const double load : loads) {
    for (size_t s = 0; s < systems.size(); ++s) {
      ClusterEngine engine(workload, TestbedConfig(kWorkers, load * peak),
                           systems[s].make());
      engine.Run();
      const Metrics& m = engine.metrics();
      const double drop_pct =
          100.0 * static_cast<double>(m.TotalDrops()) /
          static_cast<double>(std::max<uint64_t>(1, engine.generated()));
      // A system that sheds load has effectively failed the SLO at this
      // point even if survivor latency looks fine.
      const double slowdown =
          drop_pct > 0.1 ? 1e9 : m.OverallSlowdown(99.9);
      slowdowns[s].push_back(slowdown);
      table.AddRow({Fmt(load, 2), systems[s].name,
                    Fmt(m.OverallSlowdown(99.9), 1),
                    FmtMicros(m.TypeLatency(1, 99.9)),
                    FmtMicros(m.TypeLatency(2, 99.9)), Fmt(drop_pct, 2),
                    std::to_string(engine.policy().preemptions())});
    }
  }
  table.Print();

  std::printf("Sustained load @ overall p999 slowdown <= %.0fx:\n", slo);
  std::vector<double> sustained(systems.size());
  for (size_t s = 0; s < systems.size(); ++s) {
    sustained[s] = MaxLoadUnderSlo(loads, slowdowns[s], slo);
    std::printf("  %-22s %.0f%% of peak (%.0f kRPS)\n", systems[s].name,
                sustained[s] * 100, sustained[s] * peak / 1e3);
  }
  if (sustained[1] > 0 && sustained.size() >= 4 && sustained[3] > 0) {
    std::printf("  DARC vs Shenango(c-FCFS): %.2fx, vs Shinjuku: %.2fx\n",
                sustained[3] / std::max(1e-9, sustained[1]),
                sustained[3] / std::max(1e-9, sustained[2]));
  }
  std::printf("\n");
}

void Main() {
  std::printf("Figure 5: bimodal workloads across Shenango, Shinjuku and "
              "Persephone (testbed model)\n\n");

  const std::vector<System> high_systems = {
      {"shenango-d-FCFS",
       [] { return MakeShenangoDFcfs(); }},
      {"shenango-c-FCFS",
       [] { return MakeShenangoCFcfs(); }},
      {"shinjuku-mq(5us)",
       [] { return MakeShinjuku(5 * kMicrosecond, /*multi_queue=*/true); }},
      {"persephone-DARC", [] { return MakeDarc(); }},
  };
  RunPanel("(a) High Bimodal", HighBimodal(), high_systems, 20.0);

  const std::vector<System> extreme_systems = {
      {"shenango-d-FCFS",
       [] { return MakeShenangoDFcfs(); }},
      {"shenango-c-FCFS",
       [] { return MakeShenangoCFcfs(); }},
      {"shinjuku-sq(5us)",
       [] { return MakeShinjuku(5 * kMicrosecond, /*multi_queue=*/false); }},
      {"persephone-DARC", [] { return MakeDarc(); }},
  };
  RunPanel("(b) Extreme Bimodal", ExtremeBimodal(), extreme_systems, 50.0);

  std::printf("(paper: (a) DARC 2.35x Shenango / 1.3x Shinjuku at 20x; "
              "(b) DARC+Shinjuku 1.4x Shenango at 50x, Shinjuku capped near "
              "55%% load)\n");
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
