// Time-series recorder overhead bench: continuous observability must not
// blow the dispatcher's ~100 ns per-request budget (§4.3.3). Runs the full
// dispatch-decision loop (enqueue + Algorithm 1 + completion on a seeded High
// Bimodal scheduler, the same loop as micro_telemetry) three ways — recorder
// off, recorder on with the default 1-in-16 slowdown sampling, and recorder
// sampling every completion (the simulator's setting) — and prints ns/op plus
// the on/off delta. Acceptance (ISSUE): the default-sampling delta stays
// within 5%. Also reports the isolated costs of RecordArrival and
// RecordCompletion.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/common/time.h"
#include "src/core/scheduler.h"
#include "src/telemetry/timeseries.h"

namespace psp {
namespace {

constexpr uint64_t kIters = 400000;
// Same measurement discipline as micro_telemetry: the variants run
// round-robin in short batches and each keeps its minimum batch time, which
// is robust to scheduler noise on shared machines (the deltas at stake are a
// few ns on a ~60 ns op).
constexpr uint64_t kBatch = 2000;
constexpr int kRounds = 1500;

DarcScheduler* MakeScheduler() {
  SchedulerConfig config;
  config.num_workers = 14;
  config.profiler.min_window_samples = UINT64_MAX;  // no mid-loop transitions
  auto* scheduler = new DarcScheduler(config);
  scheduler->RegisterType(1, "S", 1000, 0.5);
  scheduler->RegisterType(2, "L", 100000, 0.5);
  scheduler->ActivateSeededReservation();
  return scheduler;
}

TimeSeriesRecorder* MakeRecorder(uint32_t sample_every) {
  TimeSeriesConfig config;
  config.enabled = true;
  // Timestamps below advance ~1 ns per op, so a 1 ms grid rolls a handful of
  // times across the run — rollovers are exercised but amortised, exactly as
  // on a real dispatcher (min-of-batches absorbs the occasional close).
  config.interval = kMillisecond;
  config.capacity = 512;
  config.slowdown_sample_every = sample_every;
  auto* recorder = new TimeSeriesRecorder(config);
  recorder->RegisterSeries(0, "UNKNOWN");
  const size_t slot = recorder->RegisterSeries(1, "S");
  recorder->SetSlowdownTarget(slot, 10.0);  // violation check included
  return recorder;
}

// One timed batch of the dispatch loop. With a recorder, each request pays
// the runtime's exact stamping points: RecordArrival at ingest and
// RecordCompletion (sojourn + service) when the completion is absorbed.
double TimedBatch(DarcScheduler* scheduler, TimeSeriesRecorder* recorder,
                  uint64_t* next_id) {
  const TypeIndex short_t = scheduler->ResolveType(1);
  const size_t slot = 1;  // registration order above: UNKNOWN, S
  const TscClock& clock = TscClock::Global();
  const Nanos begin = clock.Now();
  for (uint64_t i = 0; i < kBatch; ++i) {
    const uint64_t id = (*next_id)++;
    Request r;
    r.id = id;
    r.type = short_t;
    r.arrival = static_cast<Nanos>(id);
    scheduler->Enqueue(r, r.arrival);
    if (recorder != nullptr) {
      recorder->RecordArrival(slot, r.arrival);
    }
    auto a = scheduler->NextAssignment(r.arrival);
    const Nanos done = static_cast<Nanos>(id + 1);
    scheduler->OnCompletion(a->worker, short_t, 1000, done);
    if (recorder != nullptr) {
      recorder->RecordCompletion(slot, done - r.arrival, 1000, done);
    }
  }
  const Nanos end = clock.Now();
  return static_cast<double>(end - begin) / static_cast<double>(kBatch);
}

struct PassResults {
  double off = 1e18;
  double sampled = 1e18;
  double full = 1e18;
};

PassResults BestPasses(DarcScheduler* scheduler, TimeSeriesRecorder* sampled,
                       TimeSeriesRecorder* full) {
  PassResults best;
  uint64_t next_id = 0;
  for (int round = 0; round < kRounds; ++round) {
    best.off = std::min(best.off, TimedBatch(scheduler, nullptr, &next_id));
    best.sampled =
        std::min(best.sampled, TimedBatch(scheduler, sampled, &next_id));
    best.full = std::min(best.full, TimedBatch(scheduler, full, &next_id));
  }
  return best;
}

double BenchRecordArrival(TimeSeriesRecorder* recorder) {
  const TscClock& clock = TscClock::Global();
  const Nanos begin = clock.Now();
  for (uint64_t i = 0; i < kIters; ++i) {
    recorder->RecordArrival(1, static_cast<Nanos>(i));
  }
  const Nanos end = clock.Now();
  return static_cast<double>(end - begin) / static_cast<double>(kIters);
}

double BenchRecordCompletion(TimeSeriesRecorder* recorder) {
  const TscClock& clock = TscClock::Global();
  const Nanos begin = clock.Now();
  for (uint64_t i = 0; i < kIters; ++i) {
    recorder->RecordCompletion(1, 5000, 1000, static_cast<Nanos>(i));
  }
  const Nanos end = clock.Now();
  return static_cast<double>(end - begin) / static_cast<double>(kIters);
}

int Main() {
  std::unique_ptr<DarcScheduler> scheduler(MakeScheduler());
  std::unique_ptr<TimeSeriesRecorder> sampled(MakeRecorder(16));
  std::unique_ptr<TimeSeriesRecorder> full(MakeRecorder(1));

  // Warm caches + the TSC calibration before any timed batch.
  {
    uint64_t warm_id = 0;
    for (int i = 0; i < 20; ++i) {
      TimedBatch(scheduler.get(), sampled.get(), &warm_id);
    }
  }

  const PassResults best =
      BestPasses(scheduler.get(), sampled.get(), full.get());
  const double sampled_delta = (best.sampled - best.off) / best.off * 100.0;
  const double full_delta = (best.full - best.off) / best.off * 100.0;

  std::printf("# dispatch-decision loop, %d interleaved rounds of %" PRIu64
              "-op batches (min per variant)\n",
              kRounds, kBatch);
  std::printf("%-28s %8.2f ns/op\n", "recorder off", best.off);
  std::printf("%-28s %8.2f ns/op  (delta %+.2f%%)\n",
              "recorder on (1-in-16)", best.sampled, sampled_delta);
  std::printf("%-28s %8.2f ns/op  (delta %+.2f%%)\n",
              "recorder on (every)", best.full, full_delta);

  TimeSeriesRecorder* iso = sampled.get();
  std::printf("%-28s %8.2f ns/op\n", "RecordArrival",
              BenchRecordArrival(iso));
  std::printf("%-28s %8.2f ns/op\n", "RecordCompletion",
              BenchRecordCompletion(iso));

  // Acceptance gate (ISSUE: recorder overhead < 5% of dispatch-loop
  // throughput at the default sampling).
  const bool ok = sampled_delta < 5.0;
  std::printf("recorder-overhead-check: %s (%.2f%% < 5%%)\n",
              ok ? "PASS" : "FAIL", sampled_delta);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace psp

int main() { return psp::Main(); }
