// Microbenchmarks for the network buffer pool (§4.3.1): thread-local cache
// hit path vs the shared ring path, and packet build/format costs.
#include <benchmark/benchmark.h>

#include "src/common/histogram.h"
#include "src/common/memory_pool.h"
#include "src/net/packet.h"
#include "src/net/rss.h"

namespace psp {
namespace {

void BM_PoolCachedAllocFree(benchmark::State& state) {
  MemoryPool pool(kMaxPacketSize, 4096);
  BufferCache cache(&pool, 32);
  for (auto _ : state) {
    std::byte* buf = cache.Alloc();
    benchmark::DoNotOptimize(buf);
    cache.Free(buf);
  }
}
BENCHMARK(BM_PoolCachedAllocFree);

void BM_PoolGlobalAllocFree(benchmark::State& state) {
  MemoryPool pool(kMaxPacketSize, 4096);
  for (auto _ : state) {
    std::byte* buf = pool.AllocGlobal();
    benchmark::DoNotOptimize(buf);
    pool.FreeGlobal(buf);
  }
}
BENCHMARK(BM_PoolGlobalAllocFree);

void BM_BuildRequestPacket(benchmark::State& state) {
  std::byte buf[kMaxPacketSize];
  std::byte payload[64] = {};
  RequestFrame frame;
  frame.flow = FlowTuple{0x0A000001, 0x0A000002, 1234, 6789};
  frame.payload = payload;
  frame.payload_length = sizeof(payload);
  for (auto _ : state) {
    const uint32_t len = BuildRequestPacket(frame, buf, sizeof(buf));
    benchmark::DoNotOptimize(len);
  }
}
BENCHMARK(BM_BuildRequestPacket);

void BM_FormatResponseInPlace(benchmark::State& state) {
  std::byte buf[kMaxPacketSize];
  RequestFrame frame;
  frame.flow = FlowTuple{0x0A000001, 0x0A000002, 1234, 6789};
  BuildRequestPacket(frame, buf, sizeof(buf));
  for (auto _ : state) {
    const uint32_t len = FormatResponseInPlace(buf, 32);
    benchmark::DoNotOptimize(len);
  }
}
BENCHMARK(BM_FormatResponseInPlace);

void BM_ToeplitzHash(benchmark::State& state) {
  FlowTuple flow{0x0A000001, 0x0A000002, 1234, 6789};
  for (auto _ : state) {
    const uint32_t h = ToeplitzHash(flow);
    benchmark::DoNotOptimize(h);
    ++flow.src_port;
  }
}
BENCHMARK(BM_ToeplitzHash);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Add(v);
    v = (v * 1103515245 + 12345) & 0xFFFFF;
  }
  benchmark::DoNotOptimize(h.Count());
}
BENCHMARK(BM_HistogramAdd);

void BM_HistogramPercentile(benchmark::State& state) {
  Histogram h;
  for (int64_t i = 0; i < 100000; ++i) {
    h.Add((i * 7919) & 0xFFFFF);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Percentile(99.9));
  }
}
BENCHMARK(BM_HistogramPercentile);

}  // namespace
}  // namespace psp

BENCHMARK_MAIN();
