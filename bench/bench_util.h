// Shared harness for the paper-figure benchmarks: system presets calibrated
// per DESIGN.md §5, load sweeps, and aligned table / CSV output.
//
// Environment knobs (all optional):
//   PSP_BENCH_DURATION_MS  sending window per point (default 250)
//   PSP_BENCH_CSV          "1" = emit CSV instead of aligned tables
//   PSP_BENCH_JSON         "1" = emit a JSON array of row objects (wins over
//                          CSV; consumed by scripts/bench_report.sh)
//   PSP_BENCH_SEED         RNG seed (default 42)
#ifndef PSP_BENCH_BENCH_UTIL_H_
#define PSP_BENCH_BENCH_UTIL_H_

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/policies/c_fcfs.h"
#include "src/sim/policies/d_fcfs.h"
#include "src/sim/policies/oracle_policies.h"
#include "src/sim/policies/persephone.h"
#include "src/sim/policies/time_sharing.h"
#include "src/sim/policies/work_stealing.h"

namespace psp {
namespace bench {

inline Nanos BenchDuration() {
  const char* env = std::getenv("PSP_BENCH_DURATION_MS");
  const long ms = env != nullptr ? std::atol(env) : 250;
  return (ms > 0 ? ms : 250) * kMillisecond;
}

inline uint64_t BenchSeed() {
  const char* env = std::getenv("PSP_BENCH_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::atoll(env)) : 42;
}

inline bool CsvMode() {
  const char* env = std::getenv("PSP_BENCH_CSV");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

inline bool JsonMode() {
  const char* env = std::getenv("PSP_BENCH_JSON");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

// --- System presets (calibration per DESIGN.md §5) ---------------------------

// The idealised §2 simulator: no network, no pipeline costs.
inline ClusterConfig IdealConfig(uint32_t workers, double rate) {
  ClusterConfig c;
  c.num_workers = workers;
  c.rate_rps = rate;
  c.duration = BenchDuration();
  c.net_one_way = 0;
  c.dispatch_cost = 0;
  c.completion_cost = 0;
  c.seed = BenchSeed();
  return c;
}

// The CloudLab-like testbed model: 10 µs RTT + per-stage pipeline costs.
inline ClusterConfig TestbedConfig(uint32_t workers, double rate) {
  ClusterConfig c;
  c.num_workers = workers;
  c.rate_rps = rate;
  c.duration = BenchDuration();
  c.net_one_way = 5 * kMicrosecond;
  c.dispatch_cost = 100;   // net worker + classifier + decision (§5.1)
  c.completion_cost = 40;  // ≈88 cycles @2.6 GHz (§4.3.2)
  c.seed = BenchSeed();
  return c;
}

inline std::unique_ptr<SchedulingPolicy> MakeDarc() {
  PersephoneOptions o;
  o.scheduler.mode = PolicyMode::kDarc;
  return std::make_unique<PersephonePolicy>(o);
}

inline std::unique_ptr<SchedulingPolicy> MakeDarcStatic(uint32_t reserved) {
  PersephoneOptions o;
  o.scheduler.mode = PolicyMode::kDarcStatic;
  o.scheduler.static_reserved = reserved;
  return std::make_unique<PersephonePolicy>(o);
}

inline std::unique_ptr<SchedulingPolicy> MakePspCFcfs(
    DeadlineConfig deadline = {}) {
  PersephoneOptions o;
  o.scheduler.mode = PolicyMode::kCFcfs;
  o.scheduler.deadline = std::move(deadline);
  return std::make_unique<PersephonePolicy>(o);
}

// Deadline-tier policies (src/sched): bucketed EDF dispatch, and the
// slack-aware DARC variant that inflates reservations for deadline-at-risk
// types. Both need per-type budgets to do anything interesting; DARC/c-FCFS
// accept the same config so miss accounting is apples-to-apples.
inline std::unique_ptr<SchedulingPolicy> MakeEdf(DeadlineConfig deadline) {
  PersephoneOptions o;
  o.scheduler.mode = PolicyMode::kEdf;
  o.scheduler.deadline = std::move(deadline);
  return std::make_unique<PersephonePolicy>(o);
}

inline std::unique_ptr<SchedulingPolicy> MakeDarcSlack(
    DeadlineConfig deadline) {
  PersephoneOptions o;
  o.scheduler.mode = PolicyMode::kDarcSlack;
  o.scheduler.deadline = std::move(deadline);
  return std::make_unique<PersephonePolicy>(o);
}

inline std::unique_ptr<SchedulingPolicy> MakeDarcWithDeadlines(
    DeadlineConfig deadline) {
  PersephoneOptions o;
  o.scheduler.mode = PolicyMode::kDarc;
  o.scheduler.deadline = std::move(deadline);
  return std::make_unique<PersephonePolicy>(o);
}

// Shenango models: IOKernel RSS steering with (c-FCFS) or without (d-FCFS)
// work stealing.
inline std::unique_ptr<SchedulingPolicy> MakeShenangoCFcfs() {
  return std::make_unique<WorkStealingPolicy>();
}
inline std::unique_ptr<SchedulingPolicy> MakeShenangoDFcfs() {
  return std::make_unique<DecentralizedFcfsPolicy>();
}

// Shinjuku model: ≈2 µs measured per-interrupt cost on the testbed (§1);
// quantum per workload as reported in §5.4.
inline std::unique_ptr<SchedulingPolicy> MakeShinjuku(
    Nanos quantum, bool multi_queue, Nanos overhead = 2 * kMicrosecond) {
  TimeSharingOptions o;
  o.quantum = quantum;
  o.preempt_overhead = overhead;
  o.multi_queue = multi_queue;
  return std::make_unique<TimeSharingPolicy>(o);
}

// --- Sweeps -------------------------------------------------------------------

// Default load fractions for throughput-vs-slowdown curves.
inline std::vector<double> DefaultLoads() {
  return {0.05, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95};
}

struct RunResult {
  double offered_rps = 0;
  double achieved_rps = 0;
  double overall_slowdown_p999 = 0;
  uint64_t drops = 0;
  ClusterEngine* engine = nullptr;  // valid only inside RunPoint's callback
};

// Runs one (workload, load, policy) point and returns headline metrics.
// `inspect` (optional) receives the finished engine for extra columns.
template <typename PolicyFactory, typename Inspect>
RunResult RunPoint(const WorkloadSpec& workload, const ClusterConfig& config,
                   PolicyFactory&& factory, Inspect&& inspect) {
  ClusterEngine engine(workload, config, factory());
  engine.Run();
  RunResult r;
  r.offered_rps = config.rate_rps;
  r.achieved_rps = engine.metrics().ThroughputRps(engine.MeasuredWindow());
  r.overall_slowdown_p999 = engine.metrics().OverallSlowdown(99.9);
  r.drops = engine.metrics().TotalDrops();
  r.engine = &engine;
  inspect(engine);
  r.engine = nullptr;
  return r;
}

// --- Worker time provenance ---------------------------------------------------

// Aggregate worker-time shares: percent of summed worker wall time per
// ledger state. Worker slots only — the dispatcher pseudo-slot tracks a
// different resource and is reported separately by the exporters. In the
// simulator the decomposition is exact, so Sum() is 100.0 whenever any wall
// time was observed.
struct WorkerTimeShares {
  std::array<double, kNumWorkerTimeStates> pct{};

  double Pct(WorkerTimeState state) const {
    return pct[static_cast<size_t>(state)];
  }
  double Sum() const {
    double sum = 0;
    for (const double v : pct) {
      sum += v;
    }
    return sum;
  }
};

inline WorkerTimeShares WorkerTimeSharesFromRecords(
    const std::vector<WorkerTimeRecord>& records) {
  WorkerTimeShares shares;
  std::array<uint64_t, kNumWorkerTimeStates> sums{};
  uint64_t wall = 0;
  for (const WorkerTimeRecord& rec : records) {
    if (rec.role != "worker") {
      continue;
    }
    for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
      sums[s] += rec.state_ns[s];
      wall += rec.state_ns[s];
    }
  }
  if (wall == 0) {
    return shares;
  }
  for (size_t s = 0; s < kNumWorkerTimeStates; ++s) {
    shares.pct[s] =
        100.0 * static_cast<double>(sums[s]) / static_cast<double>(wall);
  }
  return shares;
}

inline WorkerTimeShares ComputeWorkerTimeShares(const TelemetrySnapshot& snap) {
  return WorkerTimeSharesFromRecords(snap.worker_time);
}

// --- Output -------------------------------------------------------------------

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    if (JsonMode()) {
      std::printf("%s\n", ToJson().c_str());
      return;
    }
    if (CsvMode()) {
      PrintCsv();
      return;
    }
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    PrintRow(headers_, width);
    std::string rule;
    for (size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(width[i], '-') + (i + 1 < headers_.size() ? "-+-" : "");
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, width);
    }
  }

  // Machine-readable form: a JSON array of row objects keyed by header.
  // Cells that parse fully as numbers are emitted as JSON numbers so
  // downstream tooling (scripts/bench_report.sh) needs no re-parsing.
  std::string ToJson() const {
    std::string out = "[";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out += r == 0 ? "\n  {" : ",\n  {";
      for (size_t i = 0; i < rows_[r].size() && i < headers_.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += '"';
        out += JsonEscape(headers_[i]);
        out += "\": ";
        out += JsonValue(rows_[r][i]);
      }
      out += '}';
    }
    out += rows_.empty() ? "]" : "\n]";
    return out;
  }

 private:
  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  static std::string JsonValue(const std::string& cell) {
    if (!cell.empty()) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      // Whole cell parses and is finite ("inf"/"nan" are not valid JSON).
      if (end == cell.c_str() + cell.size() && std::isfinite(v)) {
        return cell;
      }
    }
    std::string quoted = "\"";
    quoted += JsonEscape(cell);
    quoted += '"';
    return quoted;
  }

  void PrintCsv() const {
    const auto emit = [](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", row[i].c_str(), i + 1 < row.size() ? "," : "\n");
      }
    };
    emit(headers_);
    for (const auto& row : rows_) {
      emit(row);
    }
  }

  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& width) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s%s", static_cast<int>(width[i]), row[i].c_str(),
                  i + 1 < row.size() ? " | " : "\n");
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtMicros(Nanos ns, int precision = 1) {
  return Fmt(ToMicros(ns), precision);
}

// Reports the first sweep load at which `slowdowns` stays at or below `slo`,
// expressed as the highest sustainable offered load (paper's "sustains X Mrps
// at a target SLO"). Returns the last load meeting the SLO, or 0.
inline double MaxLoadUnderSlo(const std::vector<double>& loads,
                              const std::vector<double>& slowdowns,
                              double slo) {
  double best = 0;
  for (size_t i = 0; i < loads.size() && i < slowdowns.size(); ++i) {
    if (slowdowns[i] > 0 && slowdowns[i] <= slo) {
      best = std::max(best, loads[i]);
    }
  }
  return best;
}

}  // namespace bench
}  // namespace psp

#endif  // PSP_BENCH_BENCH_UTIL_H_
