// Figure 10 (§6): single-queue preemptive systems with varying preemption
// costs against DARC, on the §2 idealised simulator (Extreme Bimodal, 16
// workers). "TS 4µs" takes 2 µs to propagate the preemption event (the
// victim keeps running) plus 2 µs of pure overhead; "TS 2µs"/"TS 1µs" scale
// both down; "TS 0µs" is ideal instant preemption.
//
// Paper shape: TS 0µs performs similarly or better than DARC; at 1 µs of
// total preemption cost a TS system already sustains ~30% less load than
// ideal for a 10× short-request slowdown target; DARC needs no interrupts.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 16;
constexpr double kSlo = 10.0;

std::unique_ptr<SchedulingPolicy> MakeTriggeredTs(Nanos delay,
                                                  Nanos overhead) {
  TimeSharingOptions o;
  // §6 model: "a preemption event can be triggered as soon as a short
  // request is blocked" — no minimum quantum between preemptions.
  o.quantum = 0;
  o.preempt_delay = delay;
  o.preempt_overhead = overhead;
  o.trigger_on_block = true;
  return std::make_unique<TimeSharingPolicy>(o);
}

void Main() {
  const WorkloadSpec workload = ExtremeBimodal();
  const double peak = workload.PeakLoadRps(kWorkers);
  std::printf("Figure 10: preemption overheads vs DARC "
              "(Extreme Bimodal, %u workers, ideal network, peak %.2f "
              "Mrps)\n\n",
              kWorkers, peak / 1e6);

  struct System {
    const char* name;
    std::function<std::unique_ptr<SchedulingPolicy>()> make;
  };
  const std::vector<System> systems = {
      {"TS 0us", [] { return MakeTriggeredTs(0, 0); }},
      {"TS 1us", [] { return MakeTriggeredTs(FromMicros(0.5), FromMicros(0.5)); }},
      {"TS 2us", [] { return MakeTriggeredTs(kMicrosecond, kMicrosecond); }},
      {"TS 4us",
       [] { return MakeTriggeredTs(2 * kMicrosecond, 2 * kMicrosecond); }},
      {"DARC", [] { return MakeDarc(); }},
  };

  Table table({"load", "system", "p999_slow_short", "p999_slow_long",
               "preemptions"});
  const auto loads = DefaultLoads();
  std::vector<std::vector<double>> short_slow(systems.size());
  for (const double load : loads) {
    for (size_t s = 0; s < systems.size(); ++s) {
      ClusterEngine engine(workload, IdealConfig(kWorkers, load * peak),
                           systems[s].make());
      engine.Run();
      const Metrics& m = engine.metrics();
      short_slow[s].push_back(m.TypeSlowdown(1, 99.9));
      table.AddRow({Fmt(load, 2), systems[s].name,
                    Fmt(m.TypeSlowdown(1, 99.9), 2),
                    Fmt(m.TypeSlowdown(2, 99.9), 2),
                    std::to_string(engine.policy().preemptions())});
    }
  }
  table.Print();

  std::printf("\nSustained load @ %.0fx short-request p99.9 slowdown:\n",
              kSlo);
  std::vector<double> sustained(systems.size());
  for (size_t s = 0; s < systems.size(); ++s) {
    sustained[s] = MaxLoadUnderSlo(loads, short_slow[s], kSlo);
    std::printf("  %-8s %.0f%% of peak (%.2f Mrps)\n", systems[s].name,
                sustained[s] * 100, sustained[s] * peak / 1e6);
  }
  if (sustained[0] > 0) {
    std::printf("  TS 1us sustains %.0f%% less than ideal TS 0us "
                "(paper: ~30%% less)\n",
                100.0 * (1.0 - sustained[1] / sustained[0]));
  }
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
