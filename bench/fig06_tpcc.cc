// Figure 6 (§5.4.3): the TPC-C transaction mix (Table 4) across Shenango
// (c-FCFS), Shinjuku (multi-queue, 10 µs interrupts — "TPC-C is most
// favorable to Shinjuku... preempting every 10 µs") and Perséphone/DARC.
// Columns: overall p99.9 slowdown + per-transaction p99.9 latency.
//
// Paper shape: DARC groups {Payment,OrderStatus} {NewOrder}
// {Delivery,StockLevel} → 2/6/6 cores; at 85% load it improves Payment /
// OrderStatus / NewOrder p99.9 latency by ≈9.2× / 7× / 3.6× over c-FCFS,
// cuts overall slowdown up to 4.6× (3.1× vs Shinjuku), costs ~5% throughput
// to StockLevel; sustains 1.2×/1.05× more load at a 10× slowdown target.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;

void Main() {
  const WorkloadSpec workload = TpccMix();
  const double peak = workload.PeakLoadRps(kWorkers);
  std::printf("Figure 6: TPC-C across Shenango, Shinjuku and Persephone "
              "(peak %.0f kRPS)\n\n",
              peak / 1e3);

  struct System {
    const char* name;
    std::function<std::unique_ptr<SchedulingPolicy>()> make;
  };
  const std::vector<System> systems = {
      {"shenango-c-FCFS", [] { return MakeShenangoCFcfs(); }},
      {"shinjuku-mq(10us)",
       [] { return MakeShinjuku(10 * kMicrosecond, /*multi_queue=*/true); }},
      {"persephone-DARC", [] { return MakeDarc(); }},
  };

  Table table({"load", "system", "p999_slowdown", "Payment_us",
               "OrderStatus_us", "NewOrder_us", "Delivery_us",
               "StockLevel_us"});
  const auto loads = DefaultLoads();
  std::vector<std::vector<double>> slowdowns(systems.size());
  // Per-system latencies at the 85%-load point, for headline ratios.
  std::vector<std::vector<double>> lat_at_85(systems.size());
  std::vector<double> slow_at_85(systems.size());

  for (const double load : loads) {
    for (size_t s = 0; s < systems.size(); ++s) {
      ClusterEngine engine(workload, TestbedConfig(kWorkers, load * peak),
                           systems[s].make());
      engine.Run();
      const Metrics& m = engine.metrics();
      slowdowns[s].push_back(m.OverallSlowdown(99.9));
      std::vector<std::string> row = {Fmt(load, 2), systems[s].name,
                                      Fmt(m.OverallSlowdown(99.9), 1)};
      std::vector<double> lats;
      for (TypeId t = 1; t <= 5; ++t) {
        row.push_back(FmtMicros(m.TypeLatency(t, 99.9)));
        lats.push_back(ToMicros(m.TypeLatency(t, 99.9)));
      }
      table.AddRow(std::move(row));
      if (load == 0.85) {
        lat_at_85[s] = lats;
        slow_at_85[s] = m.OverallSlowdown(99.9);
      }
    }
  }
  table.Print();

  // DARC grouping sanity (the paper's §5.4.3 allocation).
  {
    ClusterEngine engine(workload, TestbedConfig(kWorkers, 0.5 * peak),
                         MakeDarc());
    engine.Run();
    const auto& darc = static_cast<PersephonePolicy&>(engine.policy());
    const Reservation& r = darc.scheduler().reservation();
    std::printf("\nDARC reservation (paper: A={Payment,OrderStatus}:2, "
                "B={NewOrder}:6, C={Delivery,StockLevel}:6):\n");
    for (const auto& g : r.groups) {
      std::printf("  group [");
      for (size_t i = 0; i < g.members.size(); ++i) {
        std::printf("%s%s", i > 0 ? "," : "",
                    darc.scheduler().type_name(g.members[i]).c_str());
      }
      std::printf("] reserved=%u stealable=%u%s\n", g.reserved_count,
                  g.stealable.Count(), g.uses_spillway ? " (spillway)" : "");
    }
    std::printf("  CPU waste: %.2f cores (paper: 0)\n", r.cpu_waste);
  }

  if (!lat_at_85[0].empty() && !lat_at_85[2].empty()) {
    std::printf("\nAt 85%% load, DARC vs Shenango c-FCFS p99.9 latency "
                "(paper: 9.2x / 7x / 3.6x):\n");
    const char* names[3] = {"Payment", "OrderStatus", "NewOrder"};
    for (int i = 0; i < 3; ++i) {
      std::printf("  %-12s %.1fx better\n", names[i],
                  lat_at_85[0][i] / std::max(1e-9, lat_at_85[2][i]));
    }
    std::printf("Overall slowdown reduction at 85%%: %.1fx vs Shenango "
                "(paper: up to 4.6x), %.1fx vs Shinjuku (paper: up to 3.1x)\n",
                slow_at_85[0] / std::max(1e-9, slow_at_85[2]),
                slow_at_85[1] / std::max(1e-9, slow_at_85[2]));
  }

  std::printf("\nSustained load @ 10x overall slowdown "
              "(paper: DARC 1.2x Shenango, 1.05x Shinjuku):\n");
  std::vector<double> sustained(systems.size());
  for (size_t s = 0; s < systems.size(); ++s) {
    sustained[s] = MaxLoadUnderSlo(loads, slowdowns[s], 10.0);
    std::printf("  %-20s %.0f%% of peak\n", systems[s].name,
                sustained[s] * 100);
  }
  if (sustained[0] > 0 && sustained[1] > 0) {
    std::printf("  DARC ratios: %.2fx vs Shenango, %.2fx vs Shinjuku\n",
                sustained[2] / sustained[0], sustained[2] / sustained[1]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
