// Tables 1 & 5: the policy taxonomy, regenerated empirically. For each
// policy we run probe workloads and *measure* the claimed properties instead
// of just printing them:
//   * typed queues      — does short-vs-long latency differ under pressure?
//   * work conservation — do workers idle while work waits? (probe: DARC
//     idles its short-reserved core under long-only load)
//   * preemption        — does the policy slice long requests?
//   * HOL prevention    — do shorts keep ~service-time latency at high load?
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "src/sim/policies/drr.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 8;

struct Probe {
  const char* name;
  std::function<std::unique_ptr<SchedulingPolicy>()> make;
};

void Main() {
  std::printf("Tables 1 & 5: empirical policy taxonomy (probes on %u "
              "workers)\n\n",
              kWorkers);
  const WorkloadSpec workload = HighBimodal();
  const double peak = workload.PeakLoadRps(kWorkers);

  const std::vector<Probe> probes = {
      {"d-FCFS", [] { return std::make_unique<DecentralizedFcfsPolicy>(); }},
      {"c-FCFS", [] { return std::make_unique<CentralFcfsPolicy>(); }},
      {"shenango-ws", [] { return MakeShenangoCFcfs(); }},
      {"TS/shinjuku",
       [] { return MakeShinjuku(5 * kMicrosecond, /*multi_queue=*/true,
                                kMicrosecond); }},
      {"DRR", [] { return std::make_unique<DeficitRoundRobinPolicy>(); }},
      {"SJF", [] { return std::make_unique<ShortestJobFirstPolicy>(); }},
      {"EDF",
       [] { return std::make_unique<EarliestDeadlineFirstPolicy>(10.0); }},
      {"static-partition",
       [] { return std::make_unique<StaticPartitionPolicy>(); }},
      {"FP",
       [] {
         PersephoneOptions o;
         o.scheduler.mode = PolicyMode::kFixedPriority;
         return std::make_unique<PersephonePolicy>(o);
       }},
      {"CSCQ/darc-static", [] { return MakeDarcStatic(1); }},
      {"DARC", [] { return MakeDarc(); }},
  };

  Table table({"policy", "preemptive", "work_conserving", "prevents_HOL",
               "p999_short_us@0.8", "p999_long_us@0.8"});

  for (const auto& probe : probes) {
    // Probe run at 80% load.
    ClusterEngine engine(workload, IdealConfig(kWorkers, 0.8 * peak),
                         probe.make());
    engine.Run();
    const Metrics& m = engine.metrics();
    const bool preemptive = engine.policy().preemptions() > 0;
    // HOL prevented if shorts' p99.9 stays within 25 µs despite 100 µs longs.
    const bool prevents_hol = m.TypeLatency(1, 99.9) < FromMicros(25);

    // Work-conservation probe: a long-dominated workload at 93% load. A
    // policy that walls off even one core for the (negligible) short class
    // leaves the long class with 7/8 cores — over 100% effective utilisation
    // — so its median latency diverges from the c-FCFS baseline. Imbalance
    // without rebalancing (d-FCFS) diverges the same way, matching Table 1's
    // "uncontrolled form of non work conservation".
    WorkloadSpec longs_only;
    longs_only.name = "longs";
    longs_only.phases.push_back(WorkloadPhase{
        0,
        {WorkloadType{1, "SHORT", 1.0, 0.001},
         WorkloadType{2, "LONG", 100.0, 0.999}},
        1.0});
    const double probe_rate = 0.93 * longs_only.PeakLoadRps(kWorkers);
    ClusterConfig probe_config = IdealConfig(kWorkers, probe_rate);
    probe_config.duration *= 4;  // give unstable queues time to diverge
    ClusterEngine probe_engine(longs_only, probe_config, probe.make());
    probe_engine.Run();
    ClusterEngine baseline_engine(longs_only, probe_config,
                                  std::make_unique<CentralFcfsPolicy>());
    baseline_engine.Run();
    // Preemptive policies never idle a core while work waits (their capacity
    // loss is overhead, not idling), so they are work conserving by
    // construction; for the rest, divergence vs the c-FCFS baseline at the
    // median or the tail exposes idle-while-work-waits behaviour.
    const auto diverges = [&](double pct) {
      return static_cast<double>(probe_engine.metrics().TypeLatency(2, pct)) >=
             10.0 *
                 static_cast<double>(baseline_engine.metrics().TypeLatency(2, pct));
    };
    const bool work_conserving = preemptive || (!diverges(50.0) && !diverges(99.0));

    table.AddRow({probe.name, preemptive ? "yes" : "no",
                  work_conserving ? "yes" : "no", prevents_hol ? "yes" : "no",
                  FmtMicros(m.TypeLatency(1, 99.9)),
                  FmtMicros(m.TypeLatency(2, 99.9))});
  }
  table.Print();
  std::printf("\n(paper Table 1: DARC is the only non-preemptive, "
              "non-work-conserving, typed-queue policy; Table 5 adds that it "
              "prevents HOL blocking while FP does not. d-FCFS's "
              "'uncontrolled' idling needs flow imbalance to show - see its "
              "High Bimodal tail column rather than the symmetric WC "
              "probe.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
