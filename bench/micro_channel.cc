// Microbenchmarks for the dispatcher↔worker channels (§4.3.2): the paper
// reports ≈88 cycles per operation on its lightweight RPC channel. We measure
// single-threaded push+pop round trips (the uncontended fast path the number
// refers to) and cross-thread throughput.
#include <benchmark/benchmark.h>

#include <thread>

#include "src/common/mpsc_ring.h"
#include "src/common/spsc_ring.h"
#include "src/common/time.h"
#include "src/runtime/channel.h"

namespace psp {
namespace {

void BM_SpscPushPop(benchmark::State& state) {
  SpscRing<uint64_t> ring(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v);
    uint64_t out;
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpscPushPop);

void BM_SpscBatchedPushPop(benchmark::State& state) {
  // Fill/drain in batches of 64: amortises the shared-index refresh, the
  // pattern the dispatcher sees under load.
  SpscRing<uint64_t> ring(1024);
  for (auto _ : state) {
    for (uint64_t i = 0; i < 64; ++i) {
      ring.TryPush(i);
    }
    uint64_t out;
    while (ring.TryPop(&out)) {
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_SpscBatchedPushPop);

void BM_WorkerChannelRoundTrip(benchmark::State& state) {
  // One work order out + one completion back: the per-request channel cost
  // in the Perséphone pipeline.
  WorkerChannel channel(512);
  WorkOrder order;
  order.type = 1;
  CompletionSignal signal{0, 1, 1000};
  for (auto _ : state) {
    channel.PushOrder(order);
    WorkOrder o;
    channel.PopOrder(&o);
    channel.PushCompletion(signal);
    CompletionSignal s;
    channel.PopCompletion(&s);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_WorkerChannelRoundTrip);

void BM_MpscPushPop(benchmark::State& state) {
  MpscRing<uint32_t> ring(1024);
  uint32_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v);
    uint32_t out;
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_MpscPushPop);

void BM_SpscCrossThread(benchmark::State& state) {
  // Producer thread feeds; the benchmark thread drains. On single-core
  // machines this measures the yielding path rather than true parallelism.
  SpscRing<uint64_t> ring(4096);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!ring.TryPush(v)) {
        std::this_thread::yield();
      } else {
        ++v;
      }
    }
  });
  uint64_t drained = 0;
  for (auto _ : state) {
    uint64_t out;
    if (ring.TryPop(&out)) {
      benchmark::DoNotOptimize(out);
      ++drained;
    } else {
      std::this_thread::yield();
    }
  }
  stop.store(true);
  producer.join();
  state.SetItemsProcessed(static_cast<int64_t>(drained));
}
BENCHMARK(BM_SpscCrossThread);

// Reports cycles per operation alongside time, to compare against the
// paper's "88 cycles on average".
void BM_SpscPushPopCycles(benchmark::State& state) {
  SpscRing<uint64_t> ring(1024);
  const TscClock& clock = TscClock::Global();
  uint64_t ops = 0;
  const uint64_t tsc_start = ReadTsc();
  for (auto _ : state) {
    ring.TryPush(ops);
    uint64_t out;
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
    ++ops;
  }
  const uint64_t tsc_end = ReadTsc();
  if (ops > 0) {
    state.counters["cycles_per_op"] = benchmark::Counter(
        static_cast<double>(tsc_end - tsc_start) / (2.0 * static_cast<double>(ops)));
  }
  (void)clock;
}
BENCHMARK(BM_SpscPushPopCycles);

// Burst counterpart of BM_SpscPushPopCycles: pushes and pops in bursts of 16
// (one shared-index update per burst). Comparing cycles_per_op between the
// two shows the amortisation the dispatcher gets from rx_burst-style I/O.
void BM_SpscBurstPushPopCycles(benchmark::State& state) {
  SpscRing<uint64_t> ring(1024);
  constexpr size_t kBurst = 16;
  uint64_t in[kBurst];
  uint64_t out[kBurst] = {};
  for (size_t i = 0; i < kBurst; ++i) {
    in[i] = i;
  }
  uint64_t ops = 0;
  const uint64_t tsc_start = ReadTsc();
  for (auto _ : state) {
    ring.TryPushBurst(in, kBurst);
    ring.TryPopBurst(out, kBurst);
    benchmark::DoNotOptimize(out[kBurst - 1]);
    ops += kBurst;
  }
  const uint64_t tsc_end = ReadTsc();
  if (ops > 0) {
    state.counters["cycles_per_op"] = benchmark::Counter(
        static_cast<double>(tsc_end - tsc_start) /
        (2.0 * static_cast<double>(ops)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops) * 2);
}
BENCHMARK(BM_SpscBurstPushPopCycles);

void BM_MpscBurstPushPop(benchmark::State& state) {
  MpscRing<uint64_t> ring(1024);
  constexpr size_t kBurst = 16;
  uint64_t in[kBurst];
  uint64_t out[kBurst] = {};
  for (size_t i = 0; i < kBurst; ++i) {
    in[i] = i;
  }
  for (auto _ : state) {
    ring.TryPushBurst(in, kBurst);  // one CAS claims all 16 cells
    ring.TryPopBurst(out, kBurst);
    benchmark::DoNotOptimize(out[kBurst - 1]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBurst *
                          2);
}
BENCHMARK(BM_MpscBurstPushPop);

void BM_SpscCrossThreadBurst(benchmark::State& state) {
  // Cross-thread variant with burst I/O on both sides: the net-worker ->
  // dispatcher forwarding path under load.
  SpscRing<uint64_t> ring(4096);
  constexpr size_t kBurst = 16;
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    uint64_t batch[kBurst];
    uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (size_t i = 0; i < kBurst; ++i) {
        batch[i] = v + i;
      }
      const size_t n = ring.TryPushBurst(batch, kBurst);
      if (n == 0) {
        std::this_thread::yield();
      } else {
        v += n;
      }
    }
  });
  uint64_t drained = 0;
  uint64_t out[kBurst] = {};
  for (auto _ : state) {
    const size_t n = ring.TryPopBurst(out, kBurst);
    if (n == 0) {
      std::this_thread::yield();
    } else {
      benchmark::DoNotOptimize(out[n - 1]);
      drained += n;
    }
  }
  stop.store(true);
  producer.join();
  state.SetItemsProcessed(static_cast<int64_t>(drained));
}
BENCHMARK(BM_SpscCrossThreadBurst);

}  // namespace
}  // namespace psp

BENCHMARK_MAIN();
