// Telemetry overhead bench: the recorder must not blow the dispatcher's
// ~100 ns per-request budget (§4.3.3). Runs the full dispatch-decision loop
// (enqueue + Algorithm 1 + completion on a seeded High Bimodal scheduler,
// the same loop as micro_dispatcher's BM_DispatchDecision) three ways —
// tracing off, 1-in-64 sampling (the default), and tracing every request —
// and prints ns/op plus the on/off delta. Acceptance: the 1-in-64 delta
// stays within 5%. Also reports the isolated costs of a TraceRing push and
// a relaxed Counter increment.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/time.h"
#include "src/core/scheduler.h"
#include "src/telemetry/telemetry.h"

namespace psp {
namespace {

constexpr uint64_t kIters = 400000;
// Overhead measurement: the three variants (off / 1-in-64 / every request)
// run round-robin in ~120 µs batches, and each variant keeps the minimum
// batch time. Fine-grained interleaving + min-of-many-batches is robust to
// the scheduler noise and CPU throttling of shared machines, where timing
// whole passes back-to-back is not (the deltas at stake are ~2 ns on a
// ~60 ns op).
constexpr uint64_t kBatch = 2000;
constexpr int kRounds = 1500;

DarcScheduler* MakeScheduler() {
  SchedulerConfig config;
  config.num_workers = 14;
  config.profiler.min_window_samples = UINT64_MAX;  // no mid-loop transitions
  auto* scheduler = new DarcScheduler(config);
  scheduler->RegisterType(1, "S", 1000, 0.5);
  scheduler->RegisterType(2, "L", 100000, 0.5);
  scheduler->ActivateSeededReservation();
  return scheduler;
}

// One timed batch of the dispatch loop with lifecycle tracing driven by
// `sampler` (persistent across batches so 1-in-N cadence carries over).
// Mirrors the runtime's stamping points: rx/classified/enqueued on the
// dispatcher side, dispatched/handler/tx on the worker side, then the ring
// commit.
double TimedBatch(DarcScheduler* scheduler, TraceRing* ring,
                  TraceSampler* sampler, uint64_t* next_id) {
  const TypeIndex short_t = scheduler->ResolveType(1);
  const TscClock& clock = TscClock::Global();
  const Nanos begin = clock.Now();
  for (uint64_t i = 0; i < kBatch; ++i) {
    const uint64_t id = (*next_id)++;
    Request r;
    r.id = id;
    r.type = short_t;
    r.arrival = static_cast<Nanos>(id);
    if (sampler->Tick()) {
      r.trace.sampled = 1;
      const Nanos now = clock.Now();
      r.trace.Mark(TraceStage::kRx, now);
      r.trace.Mark(TraceStage::kClassified, now);
      r.trace.Mark(TraceStage::kEnqueued, clock.Now());
    }
    scheduler->Enqueue(r, r.arrival);
    auto a = scheduler->NextAssignment(r.arrival);
    if (a && a->request.trace.sampled != 0) {
      TraceContext trace = a->request.trace;
      trace.Mark(TraceStage::kDispatched, clock.Now());
      const Nanos start = clock.Now();
      trace.Mark(TraceStage::kHandlerStart, start);
      trace.Mark(TraceStage::kHandlerEnd, clock.Now());
      trace.Mark(TraceStage::kTx, clock.Now());
      RequestTrace record;
      record.request_id = a->request.id;
      record.type = a->request.type;
      record.worker = a->worker;
      record.stamp = trace.stamp;
      ring->Push(record);
    }
    scheduler->OnCompletion(a->worker, short_t, 1000,
                            static_cast<Nanos>(id + 1));
  }
  const Nanos end = clock.Now();
  return static_cast<double>(end - begin) / static_cast<double>(kBatch);
}

struct PassResults {
  double off = 1e18;
  double sampled = 1e18;
  double full = 1e18;
};

PassResults BestPasses(DarcScheduler* scheduler, TraceRing* ring) {
  PassResults best;
  TraceSampler off(0);
  TraceSampler sampled(64);
  TraceSampler full(1);
  uint64_t next_id = 0;
  for (int round = 0; round < kRounds; ++round) {
    best.off = std::min(best.off, TimedBatch(scheduler, ring, &off, &next_id));
    best.sampled =
        std::min(best.sampled, TimedBatch(scheduler, ring, &sampled, &next_id));
    best.full =
        std::min(best.full, TimedBatch(scheduler, ring, &full, &next_id));
  }
  return best;
}

double BenchRingPush(TraceRing* ring) {
  const TscClock& clock = TscClock::Global();
  RequestTrace record;
  record.stamp[0] = 1;
  const Nanos begin = clock.Now();
  for (uint64_t i = 0; i < kIters; ++i) {
    record.request_id = i;
    ring->Push(record);
  }
  const Nanos end = clock.Now();
  return static_cast<double>(end - begin) / static_cast<double>(kIters);
}

double BenchCounterAdd(Counter* counter) {
  const TscClock& clock = TscClock::Global();
  const Nanos begin = clock.Now();
  for (uint64_t i = 0; i < kIters; ++i) {
    counter->Add();
  }
  const Nanos end = clock.Now();
  return static_cast<double>(end - begin) / static_cast<double>(kIters);
}

int Main() {
  TraceRing ring(4096);

  DarcScheduler* scheduler = MakeScheduler();
  // Warm caches + the TSC calibration before any timed batch.
  {
    TraceSampler warm(0);
    uint64_t warm_id = 0;
    for (int i = 0; i < 20; ++i) {
      TimedBatch(scheduler, &ring, &warm, &warm_id);
    }
  }

  const PassResults best = BestPasses(scheduler, &ring);
  const double off_ns = best.off;
  const double sampled_ns = best.sampled;
  const double full_ns = best.full;
  delete scheduler;

  const double sampled_delta = (sampled_ns - off_ns) / off_ns * 100.0;
  const double full_delta = (full_ns - off_ns) / off_ns * 100.0;

  std::printf("# dispatch-decision loop, %d interleaved rounds of %" PRIu64
              "-op batches (min per variant)\n",
              kRounds, kBatch);
  std::printf("%-28s %8.2f ns/op\n", "tracing off", off_ns);
  std::printf("%-28s %8.2f ns/op  (delta %+.2f%%)\n", "tracing 1-in-64",
              sampled_ns, sampled_delta);
  std::printf("%-28s %8.2f ns/op  (delta %+.2f%%)\n", "tracing every request",
              full_ns, full_delta);

  std::printf("%-28s %8.2f ns/op\n", "TraceRing::Push", BenchRingPush(&ring));
  Counter counter;
  std::printf("%-28s %8.2f ns/op\n", "Counter::Add (relaxed)",
              BenchCounterAdd(&counter));

  // Acceptance gate (ISSUE: 1-in-64 delta within 5%). Leave some slack for
  // timer noise before failing hard; the delta is also printed above.
  const bool ok = sampled_delta < 5.0;
  std::printf("sampled-overhead-check: %s (%.2f%% < 5%%)\n",
              ok ? "PASS" : "FAIL", sampled_delta);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace psp

int main() { return psp::Main(); }
