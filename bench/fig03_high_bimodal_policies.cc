// Figure 3 (§5.2): High Bimodal (50% × 1 µs, 50% × 100 µs) under d-FCFS,
// c-FCFS and DARC inside the Perséphone pipeline (testbed model: 10 µs RTT,
// 14 workers). Columns mirror the paper: overall p99.9 slowdown, p99.9
// latency of short requests, p99.9 latency of long requests, vs total load.
//
// Paper shape: DARC cuts slowdown vs c-FCFS by up to ~15.7×, sustains ~2.3×
// more load under a 20 µs short-request SLO, at up to ~4.2× higher long-
// request tail latency; DARC reserves 1 core and wastes ≈0.86 core.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;

void Main() {
  const WorkloadSpec workload = HighBimodal();
  const double peak = workload.PeakLoadRps(kWorkers);
  std::printf("Figure 3: High Bimodal within Persephone "
              "(14 workers, peak %.0f kRPS, 10us RTT)\n\n",
              peak / 1e3);

  struct System {
    const char* name;
    std::function<std::unique_ptr<SchedulingPolicy>()> make;
  };
  const std::vector<System> systems = {
      {"d-FCFS", [] { return std::make_unique<DecentralizedFcfsPolicy>(); }},
      {"c-FCFS", [] { return MakePspCFcfs(); }},
      {"DARC", [] { return MakeDarc(); }},
  };

  Table table({"load", "offered_kRPS", "policy", "p999_slowdown",
               "p999_short_us", "p999_long_us"});
  const auto loads = DefaultLoads();
  std::vector<std::vector<double>> slowdowns(systems.size());
  std::vector<std::vector<double>> short_lat(systems.size());
  double darc_waste = 0;

  for (const double load : loads) {
    for (size_t s = 0; s < systems.size(); ++s) {
      ClusterEngine engine(workload, TestbedConfig(kWorkers, load * peak),
                           systems[s].make());
      engine.Run();
      const Metrics& m = engine.metrics();
      slowdowns[s].push_back(m.OverallSlowdown(99.9));
      short_lat[s].push_back(ToMicros(m.TypeLatency(1, 99.9)));
      table.AddRow({Fmt(load, 2), Fmt(load * peak / 1e3, 0), systems[s].name,
                    Fmt(m.OverallSlowdown(99.9), 1),
                    FmtMicros(m.TypeLatency(1, 99.9)),
                    FmtMicros(m.TypeLatency(2, 99.9))});
      if (s == 2) {
        auto& darc = static_cast<PersephonePolicy&>(engine.policy());
        darc_waste = darc.scheduler().reservation().cpu_waste;
      }
    }
  }
  table.Print();

  // Headline comparisons at a common high-load point (~0.8).
  size_t hi = 0;
  for (size_t i = 0; i < loads.size(); ++i) {
    if (loads[i] <= 0.8) {
      hi = i;
    }
  }
  std::printf("\nAt %.0f%% load: DARC improves overall p99.9 slowdown over "
              "c-FCFS by %.1fx (paper: up to 15.7x)\n",
              loads[hi] * 100, slowdowns[1][hi] / slowdowns[2][hi]);

  // Sustainable load under a 20 µs p99.9 SLO for short requests (§5.2).
  const auto sustained = [&](size_t s) {
    double best = 0;
    for (size_t i = 0; i < loads.size(); ++i) {
      if (short_lat[s][i] > 0 && short_lat[s][i] <= 20.0) {
        best = std::max(best, loads[i]);
      }
    }
    return best;
  };
  const double c_sustained = sustained(1);
  const double darc_sustained = sustained(2);
  std::printf("Sustained load @ 20us short p99.9 SLO: c-FCFS %.0f%%, DARC "
              "%.0f%% (paper ratio: 2.3x)\n",
              c_sustained * 100, darc_sustained * 100);
  if (c_sustained > 0) {
    std::printf("  ratio: %.2fx\n", darc_sustained / c_sustained);
  }
  std::printf("DARC average CPU waste: %.2f cores (paper: 0.86)\n",
              darc_waste);
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
