// Ingress-frontend bench: packets/sec and client-observed p99.9 for the
// three ingress paths behind the IngressSource seam —
//   ring          in-process LoadGenerator against the simulated-NIC ring
//                 (the zero-syscall baseline),
//   udp-yield     real loopback datagrams through the kernel-socket net
//                 worker with yield-on-idle polling,
//   udp-adaptive  same socket path with the Metronome-style adaptive sleep
//                 controller,
//   udp-sampled   the yield path with 1-in-64 distributed-trace sampling on
//                 the wire (client stamps + server echo + lifecycle ring),
// all at the same offered rate and mix (90% 5us / 10% 200us spins). Rounds
// are interleaved and each variant keeps its min-across-rounds p99.9, the
// same shared-box-noise defence micro_introspect uses.
//
// A second stage measures what adaptive polling buys: an idle UDP server is
// held for a fixed window under busy vs adaptive polling and the net
// worker's CPU fraction (CLOCK_THREAD_CPUTIME_ID over wall) is compared.
//
// Gates (exit 1): each socket variant's p99.9 must stay within a bounded
// factor of the ring baseline (with an absolute floor so a microsecond-level
// ring round can't fail the socket path on syscall cost alone), the
// adaptive idle CPU fraction must undercut busy polling's, and 1-in-64
// trace sampling must cost < 5% of the unsampled yield path's p99.9. The
// trace-overhead gate is enforced only when the host has enough cores to
// run the pipeline's threads in parallel — on an oversubscribed box the
// p99.9 delta between two multi-threaded runs measures the kernel
// scheduler, not the tracing code; the number is still printed and exported
// (trace_overhead_enforced=0 in the JSON line) but does not fail the bench.
// Exit 2 = operational failure (loadgen error, nothing served, no idle
// sample).
//
// Env: PSP_BENCH_REQUESTS (per round, default 2000), PSP_BENCH_ROUNDS
// (default 2), PSP_BENCH_RATE (default 2000), PSP_BENCH_IDLE_MS (default
// 300), PSP_BENCH_JSON=1 (emit a JSON result line for
// scripts/bench_report.sh).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/apps/synthetic.h"
#include "src/net/udp_loadgen.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"

namespace psp {
namespace {

// Socket p99.9 must stay within this factor of the ring baseline...
constexpr double kTargetFactor = 25.0;
// ...or under this absolute floor (syscall cost dominates tiny baselines).
constexpr double kFloorNanos = 2e6;
// Wire-level trace sampling may regress the yield path's p99.9 by at most
// this much (the tentpole's "tracing is cheap enough to leave on" budget).
constexpr double kTraceOverheadBudgetPct = 5.0;
// 1-in-N sampling used by the udp-sampled variant; matches the server-side
// TelemetryConfig default so the bench measures the shipping configuration.
constexpr uint32_t kTraceSampleEvery = 64;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0'
             ? std::strtoull(value, nullptr, 10)
             : fallback;
}

RuntimeConfig BaseConfig() {
  RuntimeConfig config;
  config.num_workers = 2;
  config.scheduler.mode = PolicyMode::kDarc;
  config.pool_buffers = 1024;
  return config;
}

void RegisterMix(Persephone& server) {
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(5), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(200), 0.1);
}

UdpRequestSpec UdpSpin(uint32_t wire_id, std::string name, double ratio,
                       Nanos spin) {
  UdpRequestSpec spec;
  spec.wire_id = wire_id;
  spec.name = std::move(name);
  spec.ratio = ratio;
  spec.build_payload = [spin](std::byte* payload, uint32_t capacity,
                              Rng&) -> uint32_t {
    if (capacity < sizeof(Nanos)) {
      return 0;
    }
    std::memcpy(payload, &spin, sizeof(spin));
    return sizeof(spin);
  };
  return spec;
}

struct Row {
  double p999_nanos = 1e18;  // min across rounds
  double rps = 0;            // best achieved rate across rounds
  uint64_t received = 0;     // total across rounds
  bool ok = true;
};

// One round of the in-process ring baseline: LoadGenerator delivers frames
// straight into the simulated NIC's RX ring, no kernel in the path.
void RingRound(double rate, uint64_t requests, uint64_t seed, Row* row) {
  Persephone server(BaseConfig());
  RegisterMix(server);
  server.Start();
  LoadGenConfig lg;
  lg.rate_rps = rate;
  lg.total_requests = requests;
  lg.seed = seed;
  LoadGenerator gen(&server,
                    {MakeSpinSpec(1, "SHORT", 0.9, FromMicros(5)),
                     MakeSpinSpec(2, "LONG", 0.1, FromMicros(200))},
                    lg);
  const LoadGenReport report = gen.Run();
  server.Stop();
  if (report.received == 0) {
    row->ok = false;
    return;
  }
  row->p999_nanos = std::min(
      row->p999_nanos, static_cast<double>(report.overall.Percentile(99.9)));
  row->rps = std::max(row->rps, report.AchievedRps());
  row->received += report.received;
}

// One round over real loopback datagrams through the kernel-socket frontend.
// sample_every > 0 turns on client-side wire trace sampling (1-in-N).
void UdpRound(PollPolicy policy, double rate, uint64_t requests, uint64_t seed,
              Row* row, uint32_t sample_every = 0) {
  RuntimeConfig config = BaseConfig();
  config.ingress.mode = IngressMode::kUdp;
  config.ingress.listen_port = 0;  // ephemeral
  config.ingress.poll.policy = policy;
  Persephone server(config);
  RegisterMix(server);
  server.Start();

  UdpLoadGenConfig lg;
  lg.port = server.udp_port();
  lg.rate_rps = rate;
  lg.total_requests = requests;
  lg.seed = seed;
  lg.sample_every = sample_every;
  lg.drain_timeout = 2 * kSecond;
  UdpLoadGenerator gen({UdpSpin(1, "SHORT", 0.9, FromMicros(5)),
                        UdpSpin(2, "LONG", 0.1, FromMicros(200))},
                       lg);
  std::string error;
  const UdpLoadGenReport report = gen.Run(&error);
  server.Stop();
  if (!error.empty() || report.received == 0) {
    std::fprintf(stderr, "udp round (%s) failed: %s (received %" PRIu64 ")\n",
                 PollPolicyName(policy),
                 error.empty() ? "no responses" : error.c_str(),
                 report.received);
    row->ok = false;
    return;
  }
  row->p999_nanos = std::min(
      row->p999_nanos, static_cast<double>(report.overall.Percentile(99.9)));
  row->rps = std::max(row->rps, report.AchievedRps());
  row->received += report.received;
}

// Holds an idle UDP server for `idle_ms` and returns the net worker's CPU
// fraction over the window (-1 if no sample landed).
double IdleCpuFraction(PollPolicy policy, uint64_t idle_ms) {
  RuntimeConfig config = BaseConfig();
  config.ingress.mode = IngressMode::kUdp;
  config.ingress.listen_port = 0;
  config.ingress.poll.policy = policy;
  Persephone server(config);
  RegisterMix(server);
  server.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(idle_ms));
  server.Stop();
  const UdpIngressStats stats = server.udp_ingress()->stats();
  if (stats.net_wall_nanos == 0) {
    return -1.0;
  }
  return static_cast<double>(stats.net_cpu_nanos) /
         static_cast<double>(stats.net_wall_nanos);
}

int Main() {
  const uint64_t requests = EnvOr("PSP_BENCH_REQUESTS", 2000);
  const int rounds = static_cast<int>(EnvOr("PSP_BENCH_ROUNDS", 2));
  const double rate = static_cast<double>(EnvOr("PSP_BENCH_RATE", 2000));
  const uint64_t idle_ms = EnvOr("PSP_BENCH_IDLE_MS", 300);
  const bool json = EnvOr("PSP_BENCH_JSON", 0) != 0;

  // Warm-up (TSC calibration, allocator, socket path) — not measured.
  {
    Row scratch;
    RingRound(rate, std::max<uint64_t>(requests / 4, 50), 1, &scratch);
    UdpRound(PollPolicy::kYield, rate, std::max<uint64_t>(requests / 4, 50),
             1, &scratch);
  }

  Row ring, udp_yield, udp_adaptive, udp_sampled;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = 100 + static_cast<uint64_t>(round);
    RingRound(rate, requests, seed, &ring);
    UdpRound(PollPolicy::kYield, rate, requests, seed, &udp_yield);
    UdpRound(PollPolicy::kAdaptive, rate, requests, seed, &udp_adaptive);
    UdpRound(PollPolicy::kYield, rate, requests, seed, &udp_sampled,
             kTraceSampleEvery);
  }

  const double idle_busy = IdleCpuFraction(PollPolicy::kBusy, idle_ms);
  const double idle_adaptive = IdleCpuFraction(PollPolicy::kAdaptive, idle_ms);

  // Threads a UDP round needs runnable at once: net worker + dispatcher +
  // app workers + the loadgen client. Below that, p99.9 deltas between two
  // runs are scheduler noise and the trace-overhead gate goes advisory.
  const unsigned threads_needed = 1 + 1 + BaseConfig().num_workers + 1;
  const unsigned cores = std::thread::hardware_concurrency();
  const bool trace_overhead_enforced = cores >= threads_needed;

  if (!ring.ok || !udp_yield.ok || !udp_adaptive.ok || !udp_sampled.ok ||
      idle_busy < 0 || idle_adaptive < 0) {
    std::fprintf(stderr, "micro_ingress: operational failure\n");
    return 2;
  }

  std::printf("# ingress frontends, %d rounds x %" PRIu64
              " requests at %.0f rps (90%% 5us / 10%% 200us)\n",
              rounds, requests, rate);
  std::printf("%-14s %14s %12s %10s\n", "frontend", "p99.9 (ns)", "rps",
              "received");
  std::printf("%-14s %14.0f %12.0f %10" PRIu64 "\n", "ring", ring.p999_nanos,
              ring.rps, ring.received);
  std::printf("%-14s %14.0f %12.0f %10" PRIu64 "\n", "udp-yield",
              udp_yield.p999_nanos, udp_yield.rps, udp_yield.received);
  std::printf("%-14s %14.0f %12.0f %10" PRIu64 "\n", "udp-adaptive",
              udp_adaptive.p999_nanos, udp_adaptive.rps,
              udp_adaptive.received);
  std::printf("%-14s %14.0f %12.0f %10" PRIu64 "\n", "udp-sampled",
              udp_sampled.p999_nanos, udp_sampled.rps, udp_sampled.received);
  const double trace_overhead_pct =
      udp_yield.p999_nanos > 0
          ? (udp_sampled.p999_nanos - udp_yield.p999_nanos) /
                udp_yield.p999_nanos * 100.0
          : 0.0;
  std::printf("trace sampling (1-in-%u) p99.9 overhead: %.2f%%\n",
              kTraceSampleEvery, trace_overhead_pct);
  std::printf("idle net-worker CPU over %" PRIu64
              " ms: busy %.1f%%, adaptive %.1f%%\n",
              idle_ms, idle_busy * 100.0, idle_adaptive * 100.0);
  if (json) {
    std::printf(
        "{\"ring_p999_nanos\":%.0f,\"ring_rps\":%.0f,"
        "\"udp_yield_p999_nanos\":%.0f,\"udp_yield_rps\":%.0f,"
        "\"udp_adaptive_p999_nanos\":%.0f,\"udp_adaptive_rps\":%.0f,"
        "\"udp_sampled_p999_nanos\":%.0f,\"udp_sampled_rps\":%.0f,"
        "\"trace_overhead_pct\":%.2f,\"trace_overhead_budget_pct\":%.1f,"
        "\"trace_overhead_enforced\":%d,"
        "\"idle_cpu_busy\":%.4f,\"idle_cpu_adaptive\":%.4f,"
        "\"target_factor\":%.1f,\"floor_nanos\":%.0f}\n",
        ring.p999_nanos, ring.rps, udp_yield.p999_nanos, udp_yield.rps,
        udp_adaptive.p999_nanos, udp_adaptive.rps, udp_sampled.p999_nanos,
        udp_sampled.rps, trace_overhead_pct, kTraceOverheadBudgetPct,
        trace_overhead_enforced ? 1 : 0, idle_busy, idle_adaptive,
        kTargetFactor, kFloorNanos);
  }

  const double bound =
      std::max(kTargetFactor * ring.p999_nanos, kFloorNanos);
  bool ok = true;
  for (const auto& [name, row] :
       {std::pair<const char*, const Row*>{"udp-yield", &udp_yield},
        {"udp-adaptive", &udp_adaptive}}) {
    const bool within = row->p999_nanos <= bound;
    std::printf("socket-tail-check (%s): %s (%.0f ns <= %.0f ns)\n", name,
                within ? "PASS" : "FAIL", row->p999_nanos, bound);
    ok = ok && within;
  }
  // The sampled variant also rides the ring-relative bound...
  const bool sampled_within = udp_sampled.p999_nanos <= bound;
  std::printf("socket-tail-check (udp-sampled): %s (%.0f ns <= %.0f ns)\n",
              sampled_within ? "PASS" : "FAIL", udp_sampled.p999_nanos,
              bound);
  ok = ok && sampled_within;
  // ...and its marginal cost over the unsampled yield path is bounded.
  const bool trace_ok = trace_overhead_pct < kTraceOverheadBudgetPct;
  if (trace_overhead_enforced) {
    std::printf("trace-overhead-check: %s (%.2f%% < %.1f%%)\n",
                trace_ok ? "PASS" : "FAIL", trace_overhead_pct,
                kTraceOverheadBudgetPct);
    ok = ok && trace_ok;
  } else {
    std::printf(
        "trace-overhead-check: SKIP (%.2f%% measured; host has %u cores "
        "< %u pipeline threads, p99.9 delta is scheduler noise)\n",
        trace_overhead_pct, cores, threads_needed);
  }
  const bool idle_ok = idle_adaptive < idle_busy;
  std::printf("idle-cpu-check: %s (adaptive %.1f%% < busy %.1f%%)\n",
              idle_ok ? "PASS" : "FAIL", idle_adaptive * 100.0,
              idle_busy * 100.0);
  ok = ok && idle_ok;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace psp

int main() { return psp::Main(); }
