// Deadline tier (src/sched): DARC vs EDF vs slack-DARC vs c-FCFS on
// deadline-miss-rate and goodput at 70–85% load, under High Bimodal and the
// TPC-C mix (testbed model: 10 µs RTT, 14 workers).
//
// Budgets are per-type with deliberately different tightness: every type gets
// budget = max(20 µs, 1.4 × mean). Short types therefore carry generous slack
// (20× mean for the 1 µs bimodal SHORT) while long types run tight (1.4×
// mean), so head-of-line blocking converts directly into misses and the
// slack-aware reservation has genuine at-risk types to shift cores toward.
// Shedding stays off here: all four policies see every request, so miss-rate
// differences are pure scheduling.
//
// Expected shape (gated by scripts/bench_report.sh): EDF and slack-DARC beat
// plain DARC and c-FCFS on miss rate across the sweep, with goodput no worse.
// One structural caveat: on a two-type mix the slack re-weighting cannot move
// the integer core split (the short type's demand share is ~1% and already
// sits on the 1-core reservation floor), so slack-DARC exactly matches plain
// DARC on High Bimodal and earns its lead on the five-type TPC-C mix.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;

// Uniform tightness rule (see header comment): loose floor for shorts, 1.4×
// mean for longs. Keeps the config derivable from the workload alone.
DeadlineConfig BudgetsFor(const WorkloadSpec& workload) {
  DeadlineConfig config;
  for (const auto& t : workload.AllTypes()) {
    DeadlineTarget target;
    target.type_name = t.name;
    target.budget = FromMicros(std::max(20.0, 1.4 * t.mean_us));
    config.targets.push_back(target);
  }
  return config;
}

void Main() {
  std::printf("Deadline tier: miss rate and goodput by policy "
              "(14 workers, 10us RTT, budget = max(20us, 1.4x mean))\n\n");

  struct System {
    const char* name;
    std::function<std::unique_ptr<SchedulingPolicy>(DeadlineConfig)> make;
  };
  const std::vector<System> systems = {
      {"c-FCFS", [](DeadlineConfig d) { return MakePspCFcfs(std::move(d)); }},
      {"DARC",
       [](DeadlineConfig d) { return MakeDarcWithDeadlines(std::move(d)); }},
      {"EDF", [](DeadlineConfig d) { return MakeEdf(std::move(d)); }},
      {"slack-DARC",
       [](DeadlineConfig d) { return MakeDarcSlack(std::move(d)); }},
  };
  const std::vector<double> loads = {0.70, 0.75, 0.80, 0.85};

  Table table({"workload", "load", "policy", "miss_rate_pct", "goodput_krps",
               "p999_slowdown"});
  // miss-rate sums across the sweep, per system, for the headline comparison.
  std::vector<double> miss_sum(systems.size(), 0);

  for (const WorkloadSpec& workload : {HighBimodal(), TpccMix()}) {
    const double peak = workload.PeakLoadRps(kWorkers);
    const DeadlineConfig budgets = BudgetsFor(workload);
    for (const double load : loads) {
      for (size_t s = 0; s < systems.size(); ++s) {
        ClusterEngine engine(workload, TestbedConfig(kWorkers, load * peak),
                             systems[s].make(budgets));
        engine.Run();
        const Metrics& m = engine.metrics();
        const double miss_pct = m.DeadlineMissRate() * 100.0;
        miss_sum[s] += miss_pct;
        table.AddRow({workload.name, Fmt(load, 2), systems[s].name,
                      Fmt(miss_pct, 3),
                      Fmt(m.GoodputRps(engine.MeasuredWindow()) / 1e3, 1),
                      Fmt(m.OverallSlowdown(99.9), 1)});
      }
    }
  }
  table.Print();

  std::printf("\nMean miss rate across the sweep:");
  for (size_t s = 0; s < systems.size(); ++s) {
    std::printf(" %s %.3f%%%s", systems[s].name,
                miss_sum[s] / (2.0 * static_cast<double>(loads.size())),
                s + 1 < systems.size() ? "," : "\n");
  }
  std::printf("Expected ordering: EDF and slack-DARC at or below plain DARC "
              "and c-FCFS.\n");
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
