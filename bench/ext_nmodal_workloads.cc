// Extension: beyond the paper's 2- and 5-type mixes — a Facebook-USR-style
// trimodal cache mix (97% tiny GETs) and an 8-type geometric mix where the
// number of request types exceeds what per-type reservations could naively
// handle, exercising δ-grouping at scale (§3: "grouping lets DARC handle
// workloads where the number of distinct types is higher than the number of
// workers" — here, than sensible per-type shares).
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;

WorkloadSpec GeometricMix(size_t types) {
  WorkloadSpec w;
  w.name = "geometric-" + std::to_string(types);
  WorkloadPhase phase;
  double mean = 1.0;
  for (size_t i = 0; i < types; ++i) {
    phase.types.push_back(WorkloadType{static_cast<TypeId>(i + 1),
                                       "T" + std::to_string(i + 1), mean,
                                       1.0 / static_cast<double>(types)});
    mean *= 2.5;  // 1, 2.5, 6.25, ... ~610 µs at 8 types
  }
  w.phases.push_back(std::move(phase));
  return w;
}

void RunPanel(const WorkloadSpec& workload) {
  const double peak = workload.PeakLoadRps(kWorkers);
  std::printf("%s (mean %.1f us, peak %.0f kRPS)\n", workload.name.c_str(),
              workload.MeanServiceNanos() / 1e3, peak / 1e3);

  struct System {
    const char* name;
    std::function<std::unique_ptr<SchedulingPolicy>()> make;
  };
  const std::vector<System> systems = {
      {"c-FCFS", [] { return MakeShenangoCFcfs(); }},
      {"shinjuku-mq",
       [] { return MakeShinjuku(5 * kMicrosecond, /*multi_queue=*/true); }},
      {"DARC", [] { return MakeDarc(); }},
  };

  Table table({"load", "system", "p999_slowdown", "shortest_p999_us",
               "longest_p999_us", "groups"});
  const TypeId shortest = workload.types().front().wire_id;
  const TypeId longest = workload.types().back().wire_id;
  for (const double load : {0.5, 0.7, 0.85, 0.95}) {
    for (const auto& system : systems) {
      ClusterEngine engine(workload, TestbedConfig(kWorkers, load * peak),
                           system.make());
      engine.Run();
      std::string groups = "-";
      if (std::string(system.name) == "DARC") {
        const auto& darc = static_cast<PersephonePolicy&>(engine.policy());
        size_t n = 0;
        for (const auto& g : darc.scheduler().reservation().groups) {
          if (!(g.members.size() == 1 && g.members[0] == 0)) {
            ++n;  // skip the synthesized UNKNOWN group
          }
        }
        groups = std::to_string(n);
      }
      table.AddRow({Fmt(load, 2), system.name,
                    Fmt(engine.metrics().OverallSlowdown(99.9), 1),
                    FmtMicros(engine.metrics().TypeLatency(shortest, 99.9)),
                    FmtMicros(engine.metrics().TypeLatency(longest, 99.9)),
                    groups});
    }
  }
  table.Print();
  std::printf("\n");
}

void Main() {
  std::printf("Extension: n-modal workloads beyond the paper's mixes\n\n");
  RunPanel(FacebookUsrLike());
  RunPanel(GeometricMix(8));
  std::printf("(DARC should group the 8 geometric types into a handful of "
              "reservations and keep the shortest types' tails protected at "
              "high load)\n");
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
