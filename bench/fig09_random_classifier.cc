// Figure 9 (§5.6): DARC configured with a broken classifier that assigns each
// request a uniformly random type, on High Bimodal over an 8-worker setup
// (the paper's two-node Silver 4114 testbed). Expected shape: DARC-random's
// behaviour converges to c-FCFS, far from properly-classified DARC.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 8;

void Main() {
  const WorkloadSpec workload = HighBimodal();
  const double peak = workload.PeakLoadRps(kWorkers);
  std::printf("Figure 9: DARC with a random classifier "
              "(High Bimodal, %u workers, peak %.0f kRPS)\n\n",
              kWorkers, peak / 1e3);

  struct System {
    const char* name;
    std::function<std::unique_ptr<SchedulingPolicy>()> make;
  };
  const std::vector<System> systems = {
      {"c-FCFS", [] { return MakePspCFcfs(); }},
      {"DARC-random",
       [] {
         PersephoneOptions o;
         o.scheduler.mode = PolicyMode::kDarc;
         o.random_classifier = true;
         return std::make_unique<PersephonePolicy>(o);
       }},
      {"DARC", [] { return MakeDarc(); }},
  };

  Table table({"load", "system", "p999_slowdown", "p999_short_us",
               "p999_long_us"});
  const auto loads = DefaultLoads();
  std::vector<double> random_line;
  std::vector<double> cfcfs_line;
  for (const double load : loads) {
    for (size_t s = 0; s < systems.size(); ++s) {
      ClusterEngine engine(workload, TestbedConfig(kWorkers, load * peak),
                           systems[s].make());
      engine.Run();
      const Metrics& m = engine.metrics();
      if (s == 0) {
        cfcfs_line.push_back(m.OverallSlowdown(99.9));
      }
      if (s == 1) {
        random_line.push_back(m.OverallSlowdown(99.9));
      }
      table.AddRow({Fmt(load, 2), systems[s].name,
                    Fmt(m.OverallSlowdown(99.9), 1),
                    FmtMicros(m.TypeLatency(1, 99.9)),
                    FmtMicros(m.TypeLatency(2, 99.9))});
    }
  }
  table.Print();

  // Convergence check: mean |log-ratio| between DARC-random and c-FCFS.
  double acc = 0;
  int n = 0;
  for (size_t i = 0; i < random_line.size(); ++i) {
    if (random_line[i] > 0 && cfcfs_line[i] > 0) {
      acc += std::abs(std::log(random_line[i] / cfcfs_line[i]));
      ++n;
    }
  }
  std::printf("\nMean |log slowdown-ratio| DARC-random vs c-FCFS: %.2f "
              "(0 = identical; paper: 'similar behaviors')\n",
              n > 0 ? acc / n : 0.0);
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
