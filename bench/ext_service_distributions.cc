// Extension: sensitivity to per-type service-time *variance*. The paper's
// synthetic workloads use fixed service times per type; real types have
// spread. DARC's reservations depend only on per-type means (Eq. 1), so it
// should keep its advantage when each type's service time is exponential or
// lognormal around the same means — with some erosion, since a "short"
// request can now occasionally run long on a short-reserved core.
#include <cstdio>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;
constexpr double kLoad = 0.80;

WorkloadSpec ShapedHighBimodal(ServiceShape shape, double sigma = 1.0) {
  WorkloadSpec w = HighBimodal();
  for (auto& t : w.phases[0].types) {
    t.shape = shape;
    t.lognormal_sigma = sigma;
  }
  const char* names[] = {"fixed", "exponential", "lognormal"};
  w.name = std::string("high-bimodal-") + names[static_cast<int>(shape)];
  return w;
}

void Main() {
  std::printf("Extension: DARC vs c-FCFS when per-type service times have "
              "variance (High Bimodal means, %u workers, %.0f%% load)\n\n",
              kWorkers, kLoad * 100);
  Table table({"shape", "policy", "p999_slowdown", "p999_short_us",
               "p999_long_us"});
  double darc_fixed = 0;
  double darc_worst = 0;
  for (const auto& [shape, label] :
       std::vector<std::pair<ServiceShape, const char*>>{
           {ServiceShape::kFixed, "fixed"},
           {ServiceShape::kExponential, "exponential"},
           {ServiceShape::kLognormal, "lognormal(s=1)"}}) {
    const WorkloadSpec workload = ShapedHighBimodal(shape);
    const double rate = kLoad * workload.PeakLoadRps(kWorkers);
    for (const bool use_darc : {false, true}) {
      ClusterEngine engine(workload, TestbedConfig(kWorkers, rate),
                           use_darc ? MakeDarc() : MakePspCFcfs());
      engine.Run();
      const double slowdown = engine.metrics().OverallSlowdown(99.9);
      table.AddRow({label, use_darc ? "DARC" : "c-FCFS", Fmt(slowdown, 1),
                    FmtMicros(engine.metrics().TypeLatency(1, 99.9)),
                    FmtMicros(engine.metrics().TypeLatency(2, 99.9))});
      if (use_darc) {
        if (shape == ServiceShape::kFixed) {
          darc_fixed = slowdown;
        }
        darc_worst = std::max(darc_worst, slowdown);
      }
    }
  }
  table.Print();
  std::printf("\nDARC p999 slowdown erosion from service-time variance: "
              "%.1fx (fixed %.1f -> worst shaped %.1f)\n",
              darc_fixed > 0 ? darc_worst / darc_fixed : 0, darc_fixed,
              darc_worst);
  std::printf("(DARC should still beat c-FCFS on every shape: its "
              "reservations key off per-type means, which variance does not "
              "move)\n");
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::Main();
  return 0;
}
