// Ablations for DARC's design choices (DESIGN.md §3/§4 knobs):
//   A. δ grouping factor — "Operators can tune the δ grouping factor to
//      adjust non work conservation to their desired SLOs" (§3).
//   B. cycle stealing on/off — the burst-absorption mechanism (§3).
//   C. spillway core count (§3).
//   D. typed-queue capacity under overload — flow control "sheds load only
//      for overloaded types without impacting the rest" (§4.3.3).
//   E. profiling-window sensitivity — the paper gates reservation updates on
//      ≥50 000 window samples and ≥10% demand deviation (§4.3.3); we sweep
//      both on a flipping workload to expose the stability/agility trade.
#include <cstdio>

#include "bench/bench_util.h"

namespace psp {
namespace bench {
namespace {

constexpr uint32_t kWorkers = 14;

std::unique_ptr<SchedulingPolicy> MakeTunedDarc(double delta,
                                                bool stealing = true,
                                                uint32_t spillway = 1,
                                                size_t queue_cap = 4096) {
  PersephoneOptions o;
  o.scheduler.mode = PolicyMode::kDarc;
  o.scheduler.delta = delta;
  o.scheduler.enable_stealing = stealing;
  o.scheduler.num_spillway = spillway;
  o.scheduler.typed_queue_capacity = queue_cap;
  return std::make_unique<PersephonePolicy>(o);
}

void DeltaSweep() {
  std::printf("A. delta (grouping factor) sweep on TPC-C at 85%% load\n");
  const WorkloadSpec workload = TpccMix();
  const double rate = 0.85 * workload.PeakLoadRps(kWorkers);
  Table table({"delta", "groups", "p999_slowdown", "Payment_p999_us",
               "StockLevel_p999_us", "cpu_waste"});
  for (const double delta : {1.01, 1.5, 2.0, 3.0, 5.0, 20.0}) {
    ClusterEngine engine(workload, TestbedConfig(kWorkers, rate),
                         MakeTunedDarc(delta));
    engine.Run();
    const auto& darc = static_cast<PersephonePolicy&>(engine.policy());
    const Reservation& r = darc.scheduler().reservation();
    // Exclude the synthesised UNKNOWN spillway group from the count.
    size_t real_groups = 0;
    for (const auto& g : r.groups) {
      bool unknown_only = g.members.size() == 1 && g.members[0] == 0;
      if (!unknown_only) {
        ++real_groups;
      }
    }
    table.AddRow({Fmt(delta, 2), std::to_string(real_groups),
                  Fmt(engine.metrics().OverallSlowdown(99.9), 1),
                  FmtMicros(engine.metrics().TypeLatency(1, 99.9)),
                  FmtMicros(engine.metrics().TypeLatency(5, 99.9)),
                  Fmt(r.cpu_waste, 2)});
  }
  table.Print();
  std::printf("(delta→1 degenerates to per-type groups; huge delta merges "
              "everything into one group = no isolation)\n\n");
}

void StealingAblation() {
  std::printf("B. cycle stealing on/off at 95%% load\n");
  Table table({"workload", "stealing", "p999_slowdown", "p999_short_us",
               "drops"});
  for (const auto* name : {"high-bimodal", "extreme-bimodal"}) {
    const WorkloadSpec workload =
        std::string(name) == "high-bimodal" ? HighBimodal() : ExtremeBimodal();
    const double rate = 0.95 * workload.PeakLoadRps(kWorkers);
    for (const bool stealing : {true, false}) {
      ClusterEngine engine(workload, TestbedConfig(kWorkers, rate),
                           MakeTunedDarc(2.0, stealing));
      engine.Run();
      table.AddRow({name, stealing ? "on" : "off",
                    Fmt(engine.metrics().OverallSlowdown(99.9), 1),
                    FmtMicros(engine.metrics().TypeLatency(1, 99.9)),
                    std::to_string(engine.metrics().TotalDrops())});
    }
  }
  table.Print();
  std::printf("(without stealing, short bursts overflow their reserved "
              "cores: the tail and drop counts blow up — §3's rationale for "
              "selective work conservation)\n\n");
}

void SpillwaySweep() {
  std::printf("C. spillway core count on TPC-C at 85%% load\n");
  const WorkloadSpec workload = TpccMix();
  const double rate = 0.85 * workload.PeakLoadRps(kWorkers);
  Table table({"spillway_cores", "p999_slowdown", "StockLevel_p999_us"});
  for (const uint32_t spill : {1u, 2u, 3u}) {
    ClusterEngine engine(workload, TestbedConfig(kWorkers, rate),
                         MakeTunedDarc(2.0, true, spill));
    engine.Run();
    table.AddRow({std::to_string(spill),
                  Fmt(engine.metrics().OverallSlowdown(99.9), 1),
                  FmtMicros(engine.metrics().TypeLatency(5, 99.9))});
  }
  table.Print();
  std::printf("\n");
}

void FlowControlAblation() {
  std::printf("D. flow control under overload: longs offered at 2x their "
              "capacity share, shorts at half of theirs\n");
  // Shorts well under capacity, longs far over: only the long queue should
  // shed.
  WorkloadSpec workload;
  workload.name = "overload";
  workload.phases.push_back(WorkloadPhase{
      0,
      {WorkloadType{1, "SHORT", 1.0, 0.30},
       WorkloadType{2, "LONG", 100.0, 0.70}},
      1.0});
  const double rate = 1.35 * workload.PeakLoadRps(kWorkers);
  Table table({"queue_capacity", "short_drop_pct", "long_drop_pct",
               "short_p999_us"});
  for (const size_t cap : {256u, 1024u, 4096u}) {
    ClusterEngine engine(workload, TestbedConfig(kWorkers, rate),
                         MakeTunedDarc(2.0, true, 1, cap));
    engine.Run();
    const Metrics& m = engine.metrics();
    const auto drop_pct = [&](TypeId t) {
      const double total = static_cast<double>(m.TypeCount(t) + m.TypeDrops(t));
      return total > 0 ? 100.0 * static_cast<double>(m.TypeDrops(t)) / total
                       : 0.0;
    };
    table.AddRow({std::to_string(cap), Fmt(drop_pct(1), 2),
                  Fmt(drop_pct(2), 2), FmtMicros(m.TypeLatency(1, 99.9))});
  }
  table.Print();
  std::printf("(only the overloaded long type sheds; shorts keep flowing "
              "with protected tails — §4.3.3)\n");
}

void WindowSensitivity() {
  std::printf("E. profiling-window sensitivity on a mid-run service-time "
              "flip (80%% load)\n");
  // Two phases: B short then B long; DARC must re-reserve after the flip.
  WorkloadSpec workload;
  workload.name = "flip";
  workload.phases.push_back(WorkloadPhase{
      300 * kMillisecond,
      {WorkloadType{1, "A", 100.0, 0.5}, WorkloadType{2, "B", 1.0, 0.5}},
      1.0});
  workload.phases.push_back(WorkloadPhase{
      0,
      {WorkloadType{1, "A", 1.0, 0.5}, WorkloadType{2, "B", 100.0, 0.5}},
      1.0});
  const double rate = 0.8 * HighBimodal().PeakLoadRps(kWorkers);

  Table table({"min_samples", "min_deviation", "updates",
               "A_p999_us_postflip", "B_p999_us_postflip"});
  for (const uint64_t min_samples : {2000u, 20000u, 50000u, 200000u}) {
    for (const double min_dev : {0.02, 0.10, 0.30}) {
      ClusterConfig config = TestbedConfig(kWorkers, rate);
      config.duration = 600 * kMillisecond;
      config.warmup_fraction = 0.55;  // measure the post-flip half only

      PersephoneOptions options;
      options.scheduler.mode = PolicyMode::kDarc;
      options.seed_profiles = false;
      options.scheduler.profiler.min_window_samples = min_samples;
      options.scheduler.profiler.min_demand_deviation = min_dev;
      ClusterEngine engine(workload, config,
                           std::make_unique<PersephonePolicy>(options));
      auto& darc = static_cast<PersephonePolicy&>(engine.policy());
      engine.Run();
      table.AddRow({std::to_string(min_samples), Fmt(min_dev, 2),
                    std::to_string(darc.scheduler().reservation_updates()),
                    FmtMicros(engine.metrics().TypeLatency(1, 99.9)),
                    FmtMicros(engine.metrics().TypeLatency(2, 99.9))});
    }
  }
  table.Print();
  std::printf("(the trade is stale-reservation lag vs burst over-reaction: "
              "small windows re-converge within the post-flip horizon [A's "
              "tail recovers to ~service+RTT]; windows of ~1 flip-horizon "
              "leave the stale reservation pinning the new-short type for a "
              "full window [A's tail up to ~100x worse]; windows too large "
              "to ever fill never leave the c-FCFS bootstrap at all. The "
              "deviation gate is load-bearing only for small demand shifts — "
              "this flip moves demand by ~97 points, so every setting "
              "passes it. The paper's 50000 samples must be read against "
              "its testbed rates [~1-5 Mrps => 10-50 ms windows], not as an "
              "absolute)\n");
}

}  // namespace
}  // namespace bench
}  // namespace psp

int main() {
  psp::bench::DeltaSweep();
  psp::bench::StealingAblation();
  psp::bench::SpillwaySweep();
  psp::bench::FlowControlAblation();
  psp::bench::WindowSensitivity();
  return 0;
}
