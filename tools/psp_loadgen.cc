// psp_loadgen: external UDP load generator for a Perséphone server running
// the socket ingress (IngressMode::kUdp). Open-loop Poisson arrivals of typed
// spin requests; reports client-observed RTT percentiles per type.
//
// Two-terminal quickstart (see README.md):
//   terminal 1:  ./examples/udp_server --port 9042
//   terminal 2:  ./tools/psp_loadgen --port 9042 --rate 2000 --requests 5000
//
// Request mix: repeat --type id:NAME:ratio:spin_us (default 1:SHORT:0.9:5
// plus 2:LONG:0.1:200, the paper's high-bimodal shape scaled down). The spin
// duration rides the payload, matching the synthetic app's handler.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/net/udp_loadgen.h"

namespace {

struct TypeArg {
  uint32_t wire_id;
  std::string name;
  double ratio;
  double spin_us;
  uint32_t deadline_us = 0;  // 0 = no deadline
};

// --deadline-us NAME:N — looked up against the --type names after parsing.
struct DeadlineArg {
  std::string type_name;
  uint32_t budget_us;
};

bool ParseDeadlineArg(const std::string& arg, DeadlineArg* out) {
  const size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= arg.size()) {
    return false;
  }
  char* end = nullptr;
  const long budget = std::strtol(arg.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || budget <= 0 || budget > INT32_MAX) {
    return false;
  }
  out->type_name = arg.substr(0, colon);
  out->budget_us = static_cast<uint32_t>(budget);
  return true;
}

bool ParseTypeArg(const std::string& arg, TypeArg* out) {
  // id:NAME:ratio:spin_us
  unsigned id = 0;
  char name[64] = {0};
  double ratio = 0;
  double spin_us = 0;
  if (std::sscanf(arg.c_str(), "%u:%63[^:]:%lf:%lf", &id, name, &ratio,
                  &spin_us) != 4 ||
      ratio <= 0 || spin_us < 0) {
    return false;
  }
  *out = TypeArg{id, name, ratio, spin_us};
  return true;
}

psp::UdpRequestSpec SpinSpec(const TypeArg& t) {
  psp::UdpRequestSpec spec;
  spec.wire_id = t.wire_id;
  spec.name = t.name;
  spec.ratio = t.ratio;
  spec.deadline_us = t.deadline_us;
  const psp::Nanos spin = psp::FromMicros(t.spin_us);
  spec.build_payload = [spin](std::byte* payload, uint32_t capacity,
                              psp::Rng&) -> uint32_t {
    if (capacity < sizeof(psp::Nanos)) {
      return 0;
    }
    std::memcpy(payload, &spin, sizeof(spin));
    return sizeof(spin);
  };
  return spec;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [--host H] [--rate RPS] [--requests N] [--seed S]\n"
      "          [--flows F] [--type id:NAME:ratio:spin_us]... [--json]\n"
      "          [--sample N] [--prom FILE] [--deadline-us NAME:N]...\n"
      "Sends an open-loop Poisson stream of typed spin requests to a\n"
      "Persephone UDP server and reports client-observed RTTs.\n"
      "--flows F uses F client sockets (distinct source ports) so a\n"
      "reuseport server spreads the flows across its net-worker shards.\n"
      "--sample N marks every Nth request for distributed tracing (the\n"
      "server echoes its rx/tx stamps); sampled per-request records land in\n"
      "the --json report, and --prom FILE writes the psp_net_* network-time\n"
      "decomposition as Prometheus text exposition.\n"
      "--deadline-us NAME:N stamps an N-microsecond latency budget into the\n"
      "wire header of every NAME request (the server's deadline tier turns\n"
      "it into an absolute deadline at ingress) and reports client-observed\n"
      "deadline misses per type.\n",
      argv0);
  return 2;
}

// Writes the client-side network-time decomposition (sampled subset) as
// Prometheus text exposition 0.0.4: RTT, echoed server sojourn, and their
// difference (time on the wire + kernel + NIC queues), per type, as
// summaries; sample counts as a counter. Same conventions as the server's
// /metrics page so `pspctl checkfile` accepts it.
bool WriteNetProm(const char* path, const std::vector<TypeArg>& types,
                  const psp::UdpLoadGenReport& report) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    return false;
  }
  const auto summary = [&](const char* name, const char* help,
                           const std::map<uint32_t, psp::Histogram>& per_type) {
    std::fprintf(f, "# HELP %s %s\n# TYPE %s summary\n", name, help, name);
    for (const TypeArg& t : types) {
      const auto it = per_type.find(t.wire_id);
      if (it == per_type.end() || it->second.Count() == 0) {
        continue;
      }
      const psp::Histogram& h = it->second;
      for (const auto& [q, p] : {std::pair<const char*, double>{"0.5", 50},
                                 {"0.99", 99},
                                 {"0.999", 99.9}}) {
        std::fprintf(f, "%s{type=\"%s\",quantile=\"%s\"} %.3f\n", name,
                     t.name.c_str(), q, psp::ToMicros(h.Percentile(p)));
      }
      std::fprintf(f, "%s_sum{type=\"%s\"} %.3f\n", name, t.name.c_str(),
                   psp::ToMicros(static_cast<psp::Nanos>(
                       h.Mean() * static_cast<double>(h.Count()))));
      std::fprintf(f, "%s_count{type=\"%s\"} %llu\n", name, t.name.c_str(),
                   static_cast<unsigned long long>(h.Count()));
    }
  };
  summary("psp_net_client_rtt_us",
          "Client-observed RTT per type (post-warmup requests).",
          report.latency);
  summary("psp_net_server_sojourn_us",
          "Server sojourn echoed on sampled responses (server tx - rx).",
          report.server_sojourn);
  summary("psp_net_time_us",
          "Network time: client RTT minus echoed server sojourn.",
          report.net_time);
  std::fprintf(f,
               "# HELP psp_net_samples_total Sampled trace records captured.\n"
               "# TYPE psp_net_samples_total counter\n"
               "psp_net_samples_total %llu\n",
               static_cast<unsigned long long>(report.samples.size()));
  std::fprintf(f, "psp_up 1\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  psp::UdpLoadGenConfig config;
  std::vector<TypeArg> types;
  std::vector<DeadlineArg> deadlines;
  bool json = false;
  bool have_port = false;
  const char* prom_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.port = static_cast<uint16_t>(std::atoi(v));
      have_port = true;
    } else if (arg == "--rate") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.rate_rps = std::atof(v);
    } else if (arg == "--requests") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.total_requests = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--flows") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.num_flows = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--type") {
      const char* v = next();
      TypeArg t;
      if (v == nullptr || !ParseTypeArg(v, &t)) {
        std::fprintf(stderr, "bad --type '%s' (want id:NAME:ratio:spin_us)\n",
                     v == nullptr ? "" : v);
        return 2;
      }
      types.push_back(t);
    } else if (arg == "--deadline-us") {
      const char* v = next();
      DeadlineArg d;
      if (v == nullptr || !ParseDeadlineArg(v, &d)) {
        std::fprintf(stderr, "bad --deadline-us '%s' (want NAME:budget_us)\n",
                     v == nullptr ? "" : v);
        return 2;
      }
      deadlines.push_back(d);
    } else if (arg == "--sample") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.sample_every = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--prom") {
      prom_path = next();
      if (prom_path == nullptr) return Usage(argv[0]);
    } else if (arg == "--json") {
      json = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!have_port || config.port == 0 || config.rate_rps <= 0 ||
      config.total_requests == 0 || config.num_flows == 0) {
    return Usage(argv[0]);
  }
  if (types.empty()) {
    types.push_back(TypeArg{1, "SHORT", 0.9, 5});
    types.push_back(TypeArg{2, "LONG", 0.1, 200});
  }
  for (const DeadlineArg& d : deadlines) {
    bool matched = false;
    for (TypeArg& t : types) {
      if (t.name == d.type_name) {
        t.deadline_us = d.budget_us;
        matched = true;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "--deadline-us %s:%u names no --type\n",
                   d.type_name.c_str(), d.budget_us);
      return 2;
    }
  }

  std::vector<psp::UdpRequestSpec> mix;
  mix.reserve(types.size());
  for (const TypeArg& t : types) {
    mix.push_back(SpinSpec(t));
  }

  psp::UdpLoadGenerator gen(std::move(mix), config);
  std::string error;
  const psp::UdpLoadGenReport report = gen.Run(&error);
  if (!error.empty()) {
    std::fprintf(stderr, "psp_loadgen: %s\n", error.c_str());
    return 1;
  }

  if (json) {
    std::printf(
        "{\"sent\":%llu,\"received\":%llu,\"send_drops\":%llu,"
        "\"achieved_rps\":%.1f,\"overall\":{\"count\":%llu,\"p50_us\":%.1f,"
        "\"p99_us\":%.1f,\"p999_us\":%.1f},\"types\":[",
        static_cast<unsigned long long>(report.sent),
        static_cast<unsigned long long>(report.received),
        static_cast<unsigned long long>(report.send_drops),
        report.AchievedRps(),
        static_cast<unsigned long long>(report.overall.Count()),
        psp::ToMicros(report.overall.Percentile(50)),
        psp::ToMicros(report.overall.Percentile(99)),
        psp::ToMicros(report.overall.Percentile(99.9)));
    bool first = true;
    for (const TypeArg& t : types) {
      const auto it = report.latency.find(t.wire_id);
      if (it == report.latency.end()) {
        continue;
      }
      std::printf(
          "%s{\"name\":\"%s\",\"wire_id\":%u,\"count\":%llu,\"p50_us\":%.1f,"
          "\"p99_us\":%.1f,\"p999_us\":%.1f",
          first ? "" : ",", t.name.c_str(), t.wire_id,
          static_cast<unsigned long long>(it->second.Count()),
          psp::ToMicros(it->second.Percentile(50)),
          psp::ToMicros(it->second.Percentile(99)),
          psp::ToMicros(it->second.Percentile(99.9)));
      if (t.deadline_us > 0) {
        const auto checked = report.deadline_checked.find(t.wire_id);
        const auto missed = report.deadline_missed.find(t.wire_id);
        const unsigned long long n_checked =
            checked != report.deadline_checked.end() ? checked->second : 0;
        const unsigned long long n_missed =
            missed != report.deadline_missed.end() ? missed->second : 0;
        std::printf(",\"deadline_us\":%u,\"deadline_checked\":%llu,"
                    "\"deadline_missed\":%llu,\"miss_rate_pct\":%.3f",
                    t.deadline_us, n_checked, n_missed,
                    n_checked > 0
                        ? 100.0 * static_cast<double>(n_missed) /
                              static_cast<double>(n_checked)
                        : 0.0);
      }
      std::printf("}");
      first = false;
    }
    std::printf("]");
    if (config.sample_every > 0) {
      // Per-request trace records (see docs/API.md "psp_loadgen --json").
      // Client-clock fields are ns; server stamps are the server's clock.
      std::printf(",\"sample_every\":%u,\"samples\":[", config.sample_every);
      first = true;
      for (const psp::ClientSpanRecord& s : report.samples) {
        std::printf("%s{\"request_id\":%llu,\"flow\":%u,\"wire_type\":%u,"
                    "\"due_ns\":%lld,\"send_ns\":%lld,\"recv_ns\":%lld,"
                    "\"server_rx_ns\":%lld,\"server_tx_ns\":%lld}",
                    first ? "" : ",",
                    static_cast<unsigned long long>(s.request_id), s.flow,
                    s.wire_type, static_cast<long long>(s.due_ns),
                    static_cast<long long>(s.send_ns),
                    static_cast<long long>(s.recv_ns),
                    static_cast<long long>(s.server_rx_ns),
                    static_cast<long long>(s.server_tx_ns));
        first = false;
      }
      std::printf("],\"net\":[");
      first = true;
      for (const TypeArg& t : types) {
        const auto sj = report.server_sojourn.find(t.wire_id);
        const auto nt = report.net_time.find(t.wire_id);
        if (sj == report.server_sojourn.end() || sj->second.Count() == 0) {
          continue;
        }
        std::printf(
            "%s{\"name\":\"%s\",\"wire_id\":%u,\"count\":%llu,"
            "\"sojourn_p50_us\":%.1f,\"sojourn_p99_us\":%.1f,"
            "\"net_p50_us\":%.1f,\"net_p99_us\":%.1f}",
            first ? "" : ",", t.name.c_str(), t.wire_id,
            static_cast<unsigned long long>(sj->second.Count()),
            psp::ToMicros(sj->second.Percentile(50)),
            psp::ToMicros(sj->second.Percentile(99)),
            nt != report.net_time.end() && nt->second.Count() > 0
                ? psp::ToMicros(nt->second.Percentile(50))
                : 0.0,
            nt != report.net_time.end() && nt->second.Count() > 0
                ? psp::ToMicros(nt->second.Percentile(99))
                : 0.0);
        first = false;
      }
      std::printf("]");
    }
    std::printf("}\n");
  } else {
    std::printf("sent %llu  received %llu  send_drops %llu  achieved %.0f rps\n",
                static_cast<unsigned long long>(report.sent),
                static_cast<unsigned long long>(report.received),
                static_cast<unsigned long long>(report.send_drops),
                report.AchievedRps());
    for (const TypeArg& t : types) {
      const auto it = report.latency.find(t.wire_id);
      if (it == report.latency.end() || it->second.Count() == 0) {
        continue;
      }
      std::printf("  %-8s n=%-7llu p50 %8.1f us  p99 %8.1f us  p99.9 %8.1f us",
                  t.name.c_str(),
                  static_cast<unsigned long long>(it->second.Count()),
                  psp::ToMicros(it->second.Percentile(50)),
                  psp::ToMicros(it->second.Percentile(99)),
                  psp::ToMicros(it->second.Percentile(99.9)));
      if (t.deadline_us > 0) {
        const auto checked = report.deadline_checked.find(t.wire_id);
        const auto missed = report.deadline_missed.find(t.wire_id);
        const unsigned long long n_checked =
            checked != report.deadline_checked.end() ? checked->second : 0;
        const unsigned long long n_missed =
            missed != report.deadline_missed.end() ? missed->second : 0;
        std::printf("  deadline %uus miss %llu/%llu", t.deadline_us, n_missed,
                    n_checked);
      }
      std::printf("\n");
    }
    std::printf("  %-8s n=%-7llu p50 %8.1f us  p99 %8.1f us  p99.9 %8.1f us\n",
                "ALL",
                static_cast<unsigned long long>(report.overall.Count()),
                psp::ToMicros(report.overall.Percentile(50)),
                psp::ToMicros(report.overall.Percentile(99)),
                psp::ToMicros(report.overall.Percentile(99.9)));
  }
  if (!json && config.sample_every > 0) {
    std::printf("  sampled %zu trace records (1 in %u)\n",
                report.samples.size(), config.sample_every);
  }
  if (prom_path != nullptr && !WriteNetProm(prom_path, types, report)) {
    std::fprintf(stderr, "psp_loadgen: cannot write %s\n", prom_path);
    return 1;
  }
  // A run that got nothing back is a failure for scripts (server down, wrong
  // port, firewalled loopback).
  return report.received > 0 ? 0 : 1;
}
