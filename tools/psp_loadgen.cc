// psp_loadgen: external UDP load generator for a Perséphone server running
// the socket ingress (IngressMode::kUdp). Open-loop Poisson arrivals of typed
// spin requests; reports client-observed RTT percentiles per type.
//
// Two-terminal quickstart (see README.md):
//   terminal 1:  ./examples/udp_server --port 9042
//   terminal 2:  ./tools/psp_loadgen --port 9042 --rate 2000 --requests 5000
//
// Request mix: repeat --type id:NAME:ratio:spin_us (default 1:SHORT:0.9:5
// plus 2:LONG:0.1:200, the paper's high-bimodal shape scaled down). The spin
// duration rides the payload, matching the synthetic app's handler.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/net/udp_loadgen.h"

namespace {

struct TypeArg {
  uint32_t wire_id;
  std::string name;
  double ratio;
  double spin_us;
};

bool ParseTypeArg(const std::string& arg, TypeArg* out) {
  // id:NAME:ratio:spin_us
  unsigned id = 0;
  char name[64] = {0};
  double ratio = 0;
  double spin_us = 0;
  if (std::sscanf(arg.c_str(), "%u:%63[^:]:%lf:%lf", &id, name, &ratio,
                  &spin_us) != 4 ||
      ratio <= 0 || spin_us < 0) {
    return false;
  }
  *out = TypeArg{id, name, ratio, spin_us};
  return true;
}

psp::UdpRequestSpec SpinSpec(const TypeArg& t) {
  psp::UdpRequestSpec spec;
  spec.wire_id = t.wire_id;
  spec.name = t.name;
  spec.ratio = t.ratio;
  const psp::Nanos spin = psp::FromMicros(t.spin_us);
  spec.build_payload = [spin](std::byte* payload, uint32_t capacity,
                              psp::Rng&) -> uint32_t {
    if (capacity < sizeof(psp::Nanos)) {
      return 0;
    }
    std::memcpy(payload, &spin, sizeof(spin));
    return sizeof(spin);
  };
  return spec;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [--host H] [--rate RPS] [--requests N] [--seed S]\n"
      "          [--flows F] [--type id:NAME:ratio:spin_us]... [--json]\n"
      "Sends an open-loop Poisson stream of typed spin requests to a\n"
      "Persephone UDP server and reports client-observed RTTs.\n"
      "--flows F uses F client sockets (distinct source ports) so a\n"
      "reuseport server spreads the flows across its net-worker shards.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  psp::UdpLoadGenConfig config;
  std::vector<TypeArg> types;
  bool json = false;
  bool have_port = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.port = static_cast<uint16_t>(std::atoi(v));
      have_port = true;
    } else if (arg == "--rate") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.rate_rps = std::atof(v);
    } else if (arg == "--requests") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.total_requests = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--flows") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.num_flows = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--type") {
      const char* v = next();
      TypeArg t;
      if (v == nullptr || !ParseTypeArg(v, &t)) {
        std::fprintf(stderr, "bad --type '%s' (want id:NAME:ratio:spin_us)\n",
                     v == nullptr ? "" : v);
        return 2;
      }
      types.push_back(t);
    } else if (arg == "--json") {
      json = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!have_port || config.port == 0 || config.rate_rps <= 0 ||
      config.total_requests == 0 || config.num_flows == 0) {
    return Usage(argv[0]);
  }
  if (types.empty()) {
    types.push_back(TypeArg{1, "SHORT", 0.9, 5});
    types.push_back(TypeArg{2, "LONG", 0.1, 200});
  }

  std::vector<psp::UdpRequestSpec> mix;
  mix.reserve(types.size());
  for (const TypeArg& t : types) {
    mix.push_back(SpinSpec(t));
  }

  psp::UdpLoadGenerator gen(std::move(mix), config);
  std::string error;
  const psp::UdpLoadGenReport report = gen.Run(&error);
  if (!error.empty()) {
    std::fprintf(stderr, "psp_loadgen: %s\n", error.c_str());
    return 1;
  }

  if (json) {
    std::printf(
        "{\"sent\":%llu,\"received\":%llu,\"send_drops\":%llu,"
        "\"achieved_rps\":%.1f,\"overall\":{\"count\":%llu,\"p50_us\":%.1f,"
        "\"p99_us\":%.1f,\"p999_us\":%.1f},\"types\":[",
        static_cast<unsigned long long>(report.sent),
        static_cast<unsigned long long>(report.received),
        static_cast<unsigned long long>(report.send_drops),
        report.AchievedRps(),
        static_cast<unsigned long long>(report.overall.Count()),
        psp::ToMicros(report.overall.Percentile(50)),
        psp::ToMicros(report.overall.Percentile(99)),
        psp::ToMicros(report.overall.Percentile(99.9)));
    bool first = true;
    for (const TypeArg& t : types) {
      const auto it = report.latency.find(t.wire_id);
      if (it == report.latency.end()) {
        continue;
      }
      std::printf(
          "%s{\"name\":\"%s\",\"wire_id\":%u,\"count\":%llu,\"p50_us\":%.1f,"
          "\"p99_us\":%.1f,\"p999_us\":%.1f}",
          first ? "" : ",", t.name.c_str(), t.wire_id,
          static_cast<unsigned long long>(it->second.Count()),
          psp::ToMicros(it->second.Percentile(50)),
          psp::ToMicros(it->second.Percentile(99)),
          psp::ToMicros(it->second.Percentile(99.9)));
      first = false;
    }
    std::printf("]}\n");
  } else {
    std::printf("sent %llu  received %llu  send_drops %llu  achieved %.0f rps\n",
                static_cast<unsigned long long>(report.sent),
                static_cast<unsigned long long>(report.received),
                static_cast<unsigned long long>(report.send_drops),
                report.AchievedRps());
    for (const TypeArg& t : types) {
      const auto it = report.latency.find(t.wire_id);
      if (it == report.latency.end() || it->second.Count() == 0) {
        continue;
      }
      std::printf("  %-8s n=%-7llu p50 %8.1f us  p99 %8.1f us  p99.9 %8.1f us\n",
                  t.name.c_str(),
                  static_cast<unsigned long long>(it->second.Count()),
                  psp::ToMicros(it->second.Percentile(50)),
                  psp::ToMicros(it->second.Percentile(99)),
                  psp::ToMicros(it->second.Percentile(99.9)));
    }
    std::printf("  %-8s n=%-7llu p50 %8.1f us  p99 %8.1f us  p99.9 %8.1f us\n",
                "ALL",
                static_cast<unsigned long long>(report.overall.Count()),
                psp::ToMicros(report.overall.Percentile(50)),
                psp::ToMicros(report.overall.Percentile(99)),
                psp::ToMicros(report.overall.Percentile(99.9)));
  }
  // A run that got nothing back is a failure for scripts (server down, wrong
  // port, firewalled loopback).
  return report.received > 0 ? 0 : 1;
}
