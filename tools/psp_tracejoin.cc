// psp_tracejoin: joins the client and server halves of a sampled
// distributed trace into one Perfetto/catapult file.
//
//   psp_tracejoin --client report.json [--server lifecycle.json]
//                 [--admin HOST:PORT] --out trace.json
//
// --client takes the psp_loadgen --json report (run the loadgen with
// --sample N so it contains "samples"). The server half comes from a file
// (--server, a saved /lifecycle.json body, e.g. `pspctl lifecycle --out f`)
// or straight from a live admin endpoint (--admin fetches /lifecycle.json).
// The tool estimates the client↔server clock offset by min-one-way-delay
// alignment, joins on (client_id, request_id), and writes a trace where
// each sampled request decomposes into client-queue → wire-out → the
// server's seven lifecycle stages → wire-back.
//
// Exit codes: 0 success, 1 usage, 2 I/O or transport failure, 3 malformed
// input, 4 join produced no spans (the trace file is still written).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/introspect/tracejoin.h"

namespace {

int Usage(const char* detail) {
  std::fprintf(stderr,
               "psp_tracejoin: %s\n"
               "usage: psp_tracejoin --client REPORT.json "
               "[--server LIFECYCLE.json | --admin HOST:PORT] "
               "--out TRACE.json\n",
               detail);
  return 1;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// One-shot HTTP GET of /lifecycle.json from the admin endpoint (same minimal
// client shape as pspctl; this tool stays usable without it on the box).
bool FetchLifecycle(const std::string& host, int port, std::string* body,
                    std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address: " + host;
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  const std::string req = "GET /lifecycle.json HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
  size_t done = 0;
  while (done < req.size()) {
    const ssize_t n = ::write(fd, req.data() + done, req.size() - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      *error = "send failed";
      ::close(fd);
      return false;
    }
    done += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos ||
      response.compare(0, 5, "HTTP/") != 0) {
    *error = "malformed HTTP response";
    return false;
  }
  const int status = std::atoi(response.c_str() + response.find(' ') + 1);
  if (status != 200) {
    *error = "HTTP " + std::to_string(status);
    return false;
  }
  *body = response.substr(header_end + 4);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string client_path;
  std::string server_path;
  std::string admin_host;
  int admin_port = 0;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psp_tracejoin: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--client") {
      client_path = next("--client");
    } else if (arg == "--server") {
      server_path = next("--server");
    } else if (arg == "--admin") {
      const std::string hp = next("--admin");
      const size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        return Usage("--admin expects HOST:PORT");
      }
      admin_host = hp.substr(0, colon);
      admin_port = std::atoi(hp.c_str() + colon + 1);
    } else if (arg == "--out") {
      out_path = next("--out");
    } else {
      return Usage(("unknown argument: " + arg).c_str());
    }
  }
  if (client_path.empty() || out_path.empty()) {
    return Usage("--client and --out are required");
  }
  if (server_path.empty() && admin_port <= 0) {
    return Usage("need a server half: --server FILE or --admin HOST:PORT");
  }

  std::string client_json;
  if (!ReadFile(client_path, &client_json)) {
    std::fprintf(stderr, "psp_tracejoin: cannot read %s\n",
                 client_path.c_str());
    return 2;
  }
  std::string server_json;
  if (!server_path.empty()) {
    if (!ReadFile(server_path, &server_json)) {
      std::fprintf(stderr, "psp_tracejoin: cannot read %s\n",
                   server_path.c_str());
      return 2;
    }
  } else {
    std::string error;
    if (!FetchLifecycle(admin_host, admin_port, &server_json, &error)) {
      std::fprintf(stderr, "psp_tracejoin: fetch lifecycle: %s\n",
                   error.c_str());
      return 2;
    }
  }

  std::vector<psp::ClientTraceRecord> client;
  std::vector<psp::ServerTraceRecord> server;
  std::string error;
  if (!psp::ParseClientSamplesJson(client_json, &client, &error)) {
    std::fprintf(stderr, "psp_tracejoin: client report: %s\n", error.c_str());
    return 3;
  }
  if (!psp::ParseLifecycleJson(server_json, &server, &error)) {
    std::fprintf(stderr, "psp_tracejoin: lifecycle: %s\n", error.c_str());
    return 3;
  }

  const psp::ClockOffsetEstimate clocks = psp::EstimateClockOffset(client);
  psp::JoinStats stats;
  const std::vector<psp::JoinedSpan> spans =
      psp::JoinTraces(client, server, &stats);
  const std::string trace = psp::ExportJoinedTrace(spans, clocks);

  std::ofstream out(out_path, std::ios::binary);
  out.write(trace.data(), static_cast<std::streamsize>(trace.size()));
  if (!out) {
    std::fprintf(stderr, "psp_tracejoin: write %s failed\n", out_path.c_str());
    return 2;
  }

  std::fprintf(stderr,
               "joined %zu spans (%zu client-only, %zu server-only, "
               "%zu duplicate keys) from %zu client / %zu server records\n",
               stats.joined, stats.client_only, stats.server_only,
               stats.duplicate_keys, client.size(), server.size());
  if (clocks.valid) {
    std::fprintf(stderr,
                 "clock offset (server - client): %lld ns "
                 "(± %lld ns, %zu samples)\n",
                 static_cast<long long>(clocks.offset),
                 static_cast<long long>(clocks.uncertainty), clocks.samples);
  } else {
    std::fprintf(stderr, "clock offset: no usable samples\n");
  }
  return stats.joined > 0 ? 0 : 4;
}
