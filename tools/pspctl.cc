// pspctl: command-line client for the live introspection plane
// (src/introspect/admin.h). Deliberately standalone — plain POSIX sockets,
// no psp libraries — so it builds anywhere and exercises the endpoint the
// way an external scraper would.
//
// Usage:
//   pspctl [--port P | --host H:P | --uds PATH] [--out FILE] [--check] CMD
//
// Commands:
//   metrics            GET /metrics   (--check validates the exposition)
//   snapshot           GET /snapshot.json
//   fleet              GET /fleet.json (fleet endpoints only; 404 elsewhere)
//   timeseries         GET /timeseries.json
//   outliers           GET /outliers.json
//   lifecycle          GET /lifecycle.json (sampled per-request records)
//   health             GET /healthz
//   trace start        POST /trace/start   (arms an on-demand capture)
//   trace stop         POST /trace/stop    (returns the trace; use --out)
//   profile [HZ [DUR]] one-shot CPU profile: POST /profile/start?hz=HZ,
//                      wait DUR seconds locally (defaults 99 Hz, 2 s),
//                      POST /profile/stop, GET /profile.folded and print
//                      the folded stacks (use --out for flamegraph.pl).
//   profile start [HZ [DUR]] | profile stop | profile folded
//                      drive the endpoints individually (start with DUR
//                      arms the server-side auto-stop).
//   flight             POST /flightrecorder/dump
//   set KEY=VALUE...   POST /config  (e.g. set sampling=64)
//   federate H:P...    scrape /metrics from N independent server processes
//                      and merge: every sample gains a server="i" label,
//                      counter families are summed into psp_fleet_*
//                      families, psp_fleet_servers counts the endpoints.
//                      --check validates the merged page.
//   checkfile FILE     run the --check exposition validator on a local file
//                      (e.g. psp_loadgen --prom output); no endpoint needed.
//
// The port defaults to $PSP_ADMIN_PORT. Exit codes: 0 success, 1 usage,
// 2 connect/transport failure, 3 HTTP error status, 4 --check failed.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string uds_path;
  std::string out_file;
  bool check = false;
};

int UsageError(const char* detail) {
  std::fprintf(stderr,
               "pspctl: %s\n"
               "usage: pspctl [--port P | --host H:P | --uds PATH] "
               "[--out FILE] [--check]\n"
               "              metrics|snapshot|fleet|timeseries|outliers|"
               "lifecycle|health|flight|trace start|stop|set K=V...\n"
               "       pspctl [endpoint flags] profile [HZ [DUR_SEC]]\n"
               "       pspctl [endpoint flags] profile start [HZ [DUR]]|"
               "stop|folded\n"
               "       pspctl [--out FILE] [--check] federate HOST:PORT...\n"
               "       pspctl checkfile FILE\n",
               detail);
  return 1;
}

int Connect(const Options& opt, std::string* error) {
  if (!opt.uds_path.empty()) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::strerror(errno);
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      *error = opt.uds_path + ": " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opt.port));
  if (::inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address: " + opt.host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = opt.host + ":" + std::to_string(opt.port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

// Issues one request; returns the HTTP status (or -1 on transport failure)
// and fills `body`.
int Request(const Options& opt, const std::string& method,
            const std::string& path, const std::string& payload,
            std::string* body, std::string* error) {
  const int fd = Connect(opt, error);
  if (fd < 0) {
    return -1;
  }
  std::string req = method + " " + path + " HTTP/1.1\r\nHost: " + opt.host +
                    "\r\nConnection: close\r\nContent-Length: " +
                    std::to_string(payload.size()) + "\r\n\r\n" + payload;
  if (!SendAll(fd, req)) {
    *error = "send failed";
    ::close(fd);
    return -1;
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos ||
      response.compare(0, 5, "HTTP/") != 0) {
    *error = "malformed HTTP response";
    return -1;
  }
  const size_t sp = response.find(' ');
  const int status = std::atoi(response.c_str() + sp + 1);
  *body = response.substr(header_end + 4);
  return status;
}

// Minimal exposition-format validator: every non-comment, non-blank line
// must be `name[{labels}] value`, names legal, HELP/TYPE comments well
// formed. Returns "" when valid, else the first problem.
std::string CheckExposition(const std::string& text) {
  size_t pos = 0;
  int line_no = 0;
  bool any_sample = false;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      if (line.compare(0, 7, "# HELP ") != 0 &&
          line.compare(0, 7, "# TYPE ") != 0) {
        return "line " + std::to_string(line_no) +
               ": comment is neither HELP nor TYPE";
      }
      continue;
    }
    // name
    size_t i = 0;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i == 0 || std::isdigit(static_cast<unsigned char>(line[0]))) {
      return "line " + std::to_string(line_no) + ": bad metric name";
    }
    // optional {labels}
    if (i < line.size() && line[i] == '{') {
      bool in_quotes = false;
      bool escaped = false;
      ++i;
      for (; i < line.size(); ++i) {
        const char c = line[i];
        if (escaped) {
          escaped = false;
          continue;
        }
        if (in_quotes && c == '\\') {
          escaped = true;
          continue;
        }
        if (c == '"') {
          in_quotes = !in_quotes;
          continue;
        }
        if (!in_quotes && c == '}') {
          break;
        }
      }
      if (i >= line.size() || line[i] != '}') {
        return "line " + std::to_string(line_no) + ": unterminated labels";
      }
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      return "line " + std::to_string(line_no) + ": missing value separator";
    }
    const std::string value = line.substr(i + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return "line " + std::to_string(line_no) + ": bad sample value \"" +
             value + "\"";
    }
    any_sample = true;
  }
  if (!any_sample) {
    return "no samples in exposition";
  }
  return "";
}

// One parsed exposition sample: name, the raw label block (without braces,
// possibly empty) and the value text.
struct Sample {
  std::string name;
  std::string labels;
  std::string value;
};

// Splits a non-comment exposition line; false for lines CheckExposition
// would reject anyway (federate runs after per-page validation).
bool ParseSampleLine(const std::string& line, Sample* out) {
  size_t i = 0;
  while (i < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[i])) ||
          line[i] == '_' || line[i] == ':')) {
    ++i;
  }
  if (i == 0) {
    return false;
  }
  out->name = line.substr(0, i);
  out->labels.clear();
  if (i < line.size() && line[i] == '{') {
    const size_t open = i;
    bool in_quotes = false;
    bool escaped = false;
    ++i;
    for (; i < line.size(); ++i) {
      const char c = line[i];
      if (escaped) {
        escaped = false;
        continue;
      }
      if (in_quotes && c == '\\') {
        escaped = true;
        continue;
      }
      if (c == '"') {
        in_quotes = !in_quotes;
        continue;
      }
      if (!in_quotes && c == '}') {
        break;
      }
    }
    if (i >= line.size()) {
      return false;
    }
    out->labels = line.substr(open + 1, i - open - 1);
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    return false;
  }
  out->value = line.substr(i + 1);
  return true;
}

// Merges N /metrics pages from independent server processes into one
// exposition: per-server samples labelled server="i" (family HELP/TYPE kept
// from the first page that declares them), counter families summed across
// servers into psp_fleet_* (the same labelling convention FleetSnapshot uses
// for in-process fleets), plus psp_fleet_servers and a terminal psp_up.
std::string FederateMetrics(const std::vector<std::string>& pages) {
  struct Family {
    std::string help;
    std::string type;
    // Per-server sample lines, already server-labelled.
    std::vector<std::string> lines;
    // Aggregation: labels -> summed value (counters only).
    std::vector<std::pair<std::string, double>> sums;
    bool integral = true;
  };
  std::vector<std::string> order;  // first-seen family order
  std::vector<Family> families;
  const auto family_of = [&](const std::string& name) -> Family& {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == name) {
        return families[i];
      }
    }
    order.push_back(name);
    families.emplace_back();
    return families.back();
  };

  for (size_t server = 0; server < pages.size(); ++server) {
    const std::string& page = pages[server];
    size_t pos = 0;
    while (pos < page.size()) {
      size_t eol = page.find('\n', pos);
      if (eol == std::string::npos) {
        eol = page.size();
      }
      const std::string line = page.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) {
        continue;
      }
      if (line[0] == '#') {
        // "# HELP name text" / "# TYPE name kind"
        const bool is_help = line.compare(0, 7, "# HELP ") == 0;
        const bool is_type = line.compare(0, 7, "# TYPE ") == 0;
        if (!is_help && !is_type) {
          continue;
        }
        const size_t name_begin = 7;
        const size_t name_end = line.find(' ', name_begin);
        if (name_end == std::string::npos) {
          continue;
        }
        Family& fam = family_of(line.substr(name_begin, name_end - name_begin));
        std::string& slot = is_help ? fam.help : fam.type;
        if (slot.empty()) {
          slot = line.substr(name_end + 1);
        }
        continue;
      }
      Sample sample;
      if (!ParseSampleLine(line, &sample)) {
        continue;
      }
      if (sample.name == "psp_up") {
        continue;  // re-emitted once, terminal, for the merged page
      }
      Family& fam = family_of(sample.name);
      std::string labelled = "server=\"" + std::to_string(server) + "\"";
      if (!sample.labels.empty()) {
        labelled += "," + sample.labels;
      }
      fam.lines.push_back(sample.name + "{" + labelled + "} " + sample.value);
      char* end = nullptr;
      const double v = std::strtod(sample.value.c_str(), &end);
      if (end != sample.value.c_str() && *end == '\0') {
        bool found = false;
        for (auto& [labels, sum] : fam.sums) {
          if (labels == sample.labels) {
            sum += v;
            found = true;
            break;
          }
        }
        if (!found) {
          fam.sums.emplace_back(sample.labels, v);
        }
        if (v != static_cast<double>(static_cast<long long>(v))) {
          fam.integral = false;
        }
      }
    }
  }

  std::string out;
  const auto append_value = [&](double v, bool integral) {
    char buf[64];
    if (integral && v < 9e15 && v > -9e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%.9g", v);
    }
    out += buf;
  };
  for (size_t i = 0; i < order.size(); ++i) {
    const Family& fam = families[i];
    if (fam.lines.empty()) {
      continue;
    }
    if (!fam.help.empty()) {
      out += "# HELP " + order[i] + " " + fam.help + "\n";
    }
    if (!fam.type.empty()) {
      out += "# TYPE " + order[i] + " " + fam.type + "\n";
    }
    for (const std::string& line : fam.lines) {
      out += line + "\n";
    }
  }
  // Fleet roll-up: counters are meaningfully summable across processes.
  for (size_t i = 0; i < order.size(); ++i) {
    const Family& fam = families[i];
    if (fam.type != "counter" || fam.sums.empty()) {
      continue;
    }
    const std::string fleet_name =
        order[i].compare(0, 4, "psp_") == 0
            ? "psp_fleet_" + order[i].substr(4)
            : "psp_fleet_" + order[i];
    out += "# HELP " + fleet_name + " Sum of " + order[i] +
           " across federated servers.\n";
    out += "# TYPE " + fleet_name + " counter\n";
    for (const auto& [labels, sum] : fam.sums) {
      out += fleet_name;
      if (!labels.empty()) {
        out += "{" + labels + "}";
      }
      out += " ";
      append_value(sum, fam.integral);
      out += "\n";
    }
  }
  out += "# HELP psp_fleet_servers Endpoints merged into this page.\n";
  out += "# TYPE psp_fleet_servers gauge\n";
  out += "psp_fleet_servers " + std::to_string(pages.size()) + "\n";
  out += "psp_up 1\n";
  return out;
}

int Emit(const Options& opt, const std::string& body) {
  if (opt.out_file.empty()) {
    std::fwrite(body.data(), 1, body.size(), stdout);
    return 0;
  }
  std::ofstream out(opt.out_file, std::ios::binary);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) {
    std::fprintf(stderr, "pspctl: write %s failed\n", opt.out_file.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const char* env = std::getenv("PSP_ADMIN_PORT")) {
    opt.port = std::atoi(env);
  }
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pspctl: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opt.port = std::atoi(next("--port"));
    } else if (arg == "--host") {
      const std::string hp = next("--host");
      const size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        return UsageError("--host expects HOST:PORT");
      }
      opt.host = hp.substr(0, colon);
      opt.port = std::atoi(hp.c_str() + colon + 1);
    } else if (arg == "--uds") {
      opt.uds_path = next("--uds");
    } else if (arg == "--out") {
      opt.out_file = next("--out");
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--help" || arg == "-h") {
      UsageError("help");
      return 0;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    return UsageError("missing command");
  }

  // Commands with their own endpoint story come first: checkfile is purely
  // local, federate names its endpoints as positional HOST:PORT arguments.
  if (args[0] == "checkfile") {
    if (args.size() != 2) {
      return UsageError("checkfile expects exactly one FILE argument");
    }
    std::ifstream in(args[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "pspctl: cannot read %s\n", args[1].c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (const std::string problem = CheckExposition(ss.str());
        !problem.empty()) {
      std::fprintf(stderr, "pspctl: %s: malformed exposition: %s\n",
                   args[1].c_str(), problem.c_str());
      return 4;
    }
    return 0;
  }
  if (args[0] == "federate") {
    if (args.size() < 2) {
      return UsageError("federate expects one or more HOST:PORT arguments");
    }
    std::vector<std::string> pages;
    for (size_t i = 1; i < args.size(); ++i) {
      const size_t colon = args[i].rfind(':');
      if (colon == std::string::npos) {
        return UsageError(("federate endpoint is not HOST:PORT: " + args[i])
                              .c_str());
      }
      Options endpoint;
      endpoint.host = args[i].substr(0, colon);
      endpoint.port = std::atoi(args[i].c_str() + colon + 1);
      if (endpoint.port <= 0) {
        return UsageError(("bad port in endpoint: " + args[i]).c_str());
      }
      std::string body;
      std::string error;
      const int status =
          Request(endpoint, "GET", "/metrics", "", &body, &error);
      if (status < 0) {
        std::fprintf(stderr, "pspctl: %s: %s\n", args[i].c_str(),
                     error.c_str());
        return 2;
      }
      if (status >= 400) {
        std::fprintf(stderr, "pspctl: %s: HTTP %d\n", args[i].c_str(), status);
        return 3;
      }
      pages.push_back(std::move(body));
    }
    const std::string merged = FederateMetrics(pages);
    if (opt.check) {
      if (const std::string problem = CheckExposition(merged);
          !problem.empty()) {
        std::fprintf(stderr, "pspctl: malformed federated exposition: %s\n",
                     problem.c_str());
        return 4;
      }
    }
    return Emit(opt, merged);
  }

  if (opt.uds_path.empty() && opt.port <= 0) {
    return UsageError("no endpoint: pass --port/--host/--uds or set "
                      "PSP_ADMIN_PORT");
  }

  if (args[0] == "profile") {
    // Sub-forms that map to a single endpoint fall through to the generic
    // request path below; the argument-less / numeric form is the one-shot
    // capture loop (start -> local wait -> stop -> fetch folded stacks).
    auto one_request = [&](const std::string& method, const std::string& path,
                           std::string* body) -> int {
      std::string error;
      const int status = Request(opt, method, path, "", body, &error);
      if (status < 0) {
        std::fprintf(stderr, "pspctl: %s\n", error.c_str());
        return 2;
      }
      if (status >= 400) {
        std::fprintf(stderr, "pspctl: %s: HTTP %d: %s", path.c_str(), status,
                     body->c_str());
        return 3;
      }
      return 0;
    };
    std::string body;
    if (args.size() >= 2 && args[1] == "stop") {
      if (const int rc = one_request("POST", "/profile/stop", &body)) {
        return rc;
      }
      return Emit(opt, body);
    }
    if (args.size() >= 2 && args[1] == "folded") {
      if (const int rc = one_request("GET", "/profile.folded", &body)) {
        return rc;
      }
      return Emit(opt, body);
    }
    const bool explicit_start = args.size() >= 2 && args[1] == "start";
    const size_t num_begin = explicit_start ? 2 : 1;
    double hz = 99.0;
    double dur_sec = 2.0;
    bool dur_given = false;
    if (args.size() > num_begin) {
      hz = std::atof(args[num_begin].c_str());
    }
    if (args.size() > num_begin + 1) {
      dur_sec = std::atof(args[num_begin + 1].c_str());
      dur_given = true;
    }
    if (hz < 1 || hz > 10000 || dur_sec < 0 || dur_sec > 3600) {
      return UsageError("profile expects HZ in [1,10000], DUR in [0,3600]");
    }
    std::string start_path =
        "/profile/start?hz=" + std::to_string(static_cast<int>(hz));
    if (explicit_start) {
      // Explicit start hands the stop to the server-side auto-stop timer
      // (when DUR is given) or to a later `pspctl profile stop`.
      if (dur_given) {
        start_path += "&dur=" + std::to_string(dur_sec);
      }
      if (const int rc = one_request("POST", start_path, &body)) {
        return rc;
      }
      return Emit(opt, body);
    }
    // One-shot: no server-side dur — this process owns the stop, so the
    // explicit /profile/stop below can never race an auto-stop into a 409.
    if (const int rc = one_request("POST", start_path, &body)) {
      return rc;
    }
    std::fprintf(stderr, "pspctl: profiling at %d Hz for %.1f s...\n",
                 static_cast<int>(hz), dur_sec);
    timespec wait{};
    wait.tv_sec = static_cast<time_t>(dur_sec);
    wait.tv_nsec =
        static_cast<long>((dur_sec - std::floor(dur_sec)) * 1e9);
    while (::nanosleep(&wait, &wait) != 0 && errno == EINTR) {
    }
    if (const int rc = one_request("POST", "/profile/stop", &body)) {
      return rc;
    }
    std::fprintf(stderr, "pspctl: %s\n", body.c_str());
    if (const int rc = one_request("GET", "/profile.folded", &body)) {
      return rc;
    }
    return Emit(opt, body);
  }

  const std::string& cmd = args[0];
  std::string method = "GET";
  std::string path;
  std::string payload;
  if (cmd == "metrics") {
    path = "/metrics";
  } else if (cmd == "snapshot") {
    path = "/snapshot.json";
  } else if (cmd == "fleet") {
    path = "/fleet.json";
  } else if (cmd == "timeseries") {
    path = "/timeseries.json";
  } else if (cmd == "outliers") {
    path = "/outliers.json";
  } else if (cmd == "lifecycle") {
    path = "/lifecycle.json";
  } else if (cmd == "health") {
    path = "/healthz";
  } else if (cmd == "flight") {
    method = "POST";
    path = "/flightrecorder/dump";
  } else if (cmd == "trace") {
    if (args.size() != 2 || (args[1] != "start" && args[1] != "stop")) {
      return UsageError("trace expects 'start' or 'stop'");
    }
    method = "POST";
    path = "/trace/" + args[1];
  } else if (cmd == "set") {
    if (args.size() < 2) {
      return UsageError("set expects KEY=VALUE arguments");
    }
    method = "POST";
    path = "/config";
    for (size_t i = 1; i < args.size(); ++i) {
      payload += args[i];
      payload += '\n';
    }
  } else {
    return UsageError(("unknown command: " + cmd).c_str());
  }

  std::string body;
  std::string error;
  const int status = Request(opt, method, path, payload, &body, &error);
  if (status < 0) {
    std::fprintf(stderr, "pspctl: %s\n", error.c_str());
    return 2;
  }
  if (status >= 400) {
    std::fprintf(stderr, "pspctl: HTTP %d: %s", status, body.c_str());
    return 3;
  }
  if (opt.check && cmd == "metrics") {
    if (const std::string problem = CheckExposition(body); !problem.empty()) {
      std::fprintf(stderr, "pspctl: malformed exposition: %s\n",
                   problem.c_str());
      return 4;
    }
  }
  return Emit(opt, body);
}
