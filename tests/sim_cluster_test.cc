// End-to-end simulation tests: request conservation, latency sanity, and the
// paper's qualitative orderings (DARC < c-FCFS < d-FCFS slowdown on bimodal
// workloads at high load; TS between c-FCFS and DARC; etc.).
#include "src/sim/cluster.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/policies/c_fcfs.h"
#include "src/sim/policies/d_fcfs.h"
#include "src/sim/policies/oracle_policies.h"
#include "src/sim/policies/persephone.h"
#include "src/sim/policies/time_sharing.h"
#include "src/sim/policies/work_stealing.h"

namespace psp {
namespace {

ClusterConfig FastConfig(double load_fraction, const WorkloadSpec& w,
                         uint32_t workers = 14) {
  ClusterConfig c;
  c.num_workers = workers;
  c.rate_rps = w.PeakLoadRps(workers) * load_fraction;
  c.duration = 300 * kMillisecond;
  c.net_one_way = 0;   // ideal network for policy-only comparisons
  c.dispatch_cost = 0;
  c.completion_cost = 0;
  c.seed = 7;
  return c;
}

PersephoneOptions DarcOptions() {
  PersephoneOptions o;
  o.scheduler.mode = PolicyMode::kDarc;
  return o;
}

double RunOverallSlowdown(const WorkloadSpec& w, ClusterConfig c,
                          std::unique_ptr<SchedulingPolicy> policy) {
  ClusterEngine engine(w, c, std::move(policy));
  engine.Run();
  return engine.metrics().OverallSlowdown(99.9);
}

TEST(ClusterEngine, ConservesRequests) {
  const WorkloadSpec w = HighBimodal();
  ClusterConfig c = FastConfig(0.5, w);
  ClusterEngine engine(w, c, std::make_unique<CentralFcfsPolicy>());
  engine.Run();
  // All generated requests completed or dropped (none lost). Completions
  // include warmup ones, which metrics exclude: compare via drop counter.
  const uint64_t measured = engine.metrics().TotalCount();
  const uint64_t drops = engine.metrics().TotalDrops();
  EXPECT_EQ(drops, 0u);
  EXPECT_GT(measured, 0u);
  EXPECT_LE(measured, engine.generated());
  // Roughly 90% of generated fall after warmup.
  EXPECT_NEAR(static_cast<double>(measured),
              0.9 * static_cast<double>(engine.generated()),
              0.02 * static_cast<double>(engine.generated()));
}

TEST(ClusterEngine, SnapshotExportsEventQueueBackend) {
  const WorkloadSpec w = HighBimodal();
  ClusterConfig c = FastConfig(0.5, w);
  c.engine_backend = EngineBackend::kWheel;
  ClusterEngine engine(w, c, std::make_unique<CentralFcfsPolicy>());
  engine.Run();
  const TelemetrySnapshot snap = engine.telemetry_snapshot();
  // Owned-simulation mode surfaces the backend counters (fleet servers leave
  // them to the fleet snapshot instead).
  ASSERT_TRUE(snap.counters.count("sim.engine.executed"));
  EXPECT_EQ(snap.counters.at("sim.engine.executed"),
            engine.sim().executed_events());
  ASSERT_TRUE(snap.gauges.count("sim.engine.wheel_active"));
  EXPECT_EQ(snap.gauges.at("sim.engine.wheel_active"), 1);
  ASSERT_TRUE(snap.counters.count("sim.engine.cascades"));
  ASSERT_TRUE(snap.counters.count("sim.engine.rollovers"));
  ASSERT_TRUE(snap.counters.count("sim.engine.backend_switches"));
  EXPECT_EQ(snap.counters.at("sim.engine.backend_switches"), 0u);
}

TEST(ClusterEngine, LowLoadLatencyIsServiceTimePlusNetwork) {
  const WorkloadSpec w = HighBimodal();
  ClusterConfig c = FastConfig(0.05, w);
  c.net_one_way = 5 * kMicrosecond;
  ClusterEngine engine(w, c, std::make_unique<CentralFcfsPolicy>());
  engine.Run();
  // Short requests: 1 µs service + 10 µs RTT ≈ 11 µs at near-zero load.
  const Nanos p50 = engine.metrics().TypeLatency(1, 50.0);
  EXPECT_NEAR(static_cast<double>(p50), 11000.0, 500.0);
  const Nanos p50_long = engine.metrics().TypeLatency(2, 50.0);
  EXPECT_NEAR(static_cast<double>(p50_long), 110000.0, 2000.0);
}

TEST(ClusterEngine, ThroughputMatchesOfferedLoad) {
  const WorkloadSpec w = ExtremeBimodal();
  ClusterConfig c = FastConfig(0.5, w);
  ClusterEngine engine(w, c, std::make_unique<CentralFcfsPolicy>());
  engine.Run();
  const double offered = c.rate_rps;
  const double measured = engine.metrics().ThroughputRps(engine.MeasuredWindow());
  EXPECT_NEAR(measured, offered, offered * 0.03);
}

TEST(ClusterEngine, DispatcherSerialResourceIsABottleneck) {
  // With a 1 µs per-request dispatch cost the pipeline saturates at 1 Mrps
  // regardless of worker count. At 2 Mrps offered the dispatcher queue grows
  // for the whole run, so median latency reaches ~half the sending window —
  // despite workers being nearly idle (service is only 0.1 µs).
  WorkloadSpec w;
  w.name = "tiny";
  w.phases.push_back(
      WorkloadPhase{0, {WorkloadType{1, "T", 0.1, 1.0}}, 1.0});
  ClusterConfig c;
  c.num_workers = 14;
  c.rate_rps = 2e6;
  c.duration = 50 * kMillisecond;
  c.net_one_way = 0;
  c.dispatch_cost = 1000;  // 1 µs
  c.completion_cost = 0;
  ClusterEngine engine(w, c, std::make_unique<CentralFcfsPolicy>());
  engine.Run();
  EXPECT_GT(engine.metrics().OverallLatency(50.0), 5 * kMillisecond);
}

// --- Paper orderings ----------------------------------------------------------

TEST(PolicyComparison, DarcBeatsCFcfsOnHighBimodalAtHighLoad) {
  const WorkloadSpec w = HighBimodal();
  const double darc = RunOverallSlowdown(
      w, FastConfig(0.8, w), std::make_unique<PersephonePolicy>(DarcOptions()));
  const double cfcfs = RunOverallSlowdown(w, FastConfig(0.8, w),
                                          std::make_unique<CentralFcfsPolicy>());
  // §5.2: DARC improves overall p99.9 slowdown by an order of magnitude.
  EXPECT_LT(darc * 3, cfcfs);
  EXPECT_LT(darc, 25.0);
}

TEST(PolicyComparison, CFcfsBeatsDFcfs) {
  const WorkloadSpec w = HighBimodal();
  const double cfcfs = RunOverallSlowdown(w, FastConfig(0.6, w),
                                          std::make_unique<CentralFcfsPolicy>());
  const double dfcfs = RunOverallSlowdown(
      w, FastConfig(0.6, w), std::make_unique<DecentralizedFcfsPolicy>());
  EXPECT_LT(cfcfs, dfcfs);
}

TEST(PolicyComparison, WorkStealingApproximatesCentralQueue) {
  const WorkloadSpec w = HighBimodal();
  const double ws = RunOverallSlowdown(w, FastConfig(0.6, w),
                                       std::make_unique<WorkStealingPolicy>());
  const double cfcfs = RunOverallSlowdown(w, FastConfig(0.6, w),
                                          std::make_unique<CentralFcfsPolicy>());
  const double dfcfs = RunOverallSlowdown(
      w, FastConfig(0.6, w), std::make_unique<DecentralizedFcfsPolicy>());
  EXPECT_LT(ws, dfcfs);            // stealing rescues imbalance
  EXPECT_LT(ws, cfcfs * 3 + 5.0);  // and lands near the central queue
}

TEST(PolicyComparison, TimeSharingProtectsShortsBetterThanCFcfs) {
  const WorkloadSpec w = ExtremeBimodal();
  ClusterConfig c = FastConfig(0.7, w, 16);
  TimeSharingOptions ts;
  ts.quantum = 5 * kMicrosecond;
  ts.preempt_overhead = kMicrosecond;
  const double tshare = RunOverallSlowdown(
      w, c, std::make_unique<TimeSharingPolicy>(ts));
  const double cfcfs =
      RunOverallSlowdown(w, c, std::make_unique<CentralFcfsPolicy>());
  EXPECT_LT(tshare, cfcfs);
}

TEST(PolicyComparison, DarcBeatsTimeSharingAtVeryHighLoad) {
  const WorkloadSpec w = ExtremeBimodal();
  ClusterConfig c = FastConfig(0.9, w, 16);
  TimeSharingOptions ts;
  const double tshare =
      RunOverallSlowdown(w, c, std::make_unique<TimeSharingPolicy>(ts));
  const double darc = RunOverallSlowdown(
      w, c, std::make_unique<PersephonePolicy>(DarcOptions()));
  EXPECT_LT(darc, tshare);
}

TEST(PolicyComparison, SjfProtectsShortsOnBimodal) {
  const WorkloadSpec w = HighBimodal();
  const double sjf = RunOverallSlowdown(
      w, FastConfig(0.7, w), std::make_unique<ShortestJobFirstPolicy>());
  const double cfcfs = RunOverallSlowdown(w, FastConfig(0.7, w),
                                          std::make_unique<CentralFcfsPolicy>());
  EXPECT_LT(sjf, cfcfs);
}

TEST(PolicyComparison, StaticPartitionServesBothTypes) {
  const WorkloadSpec w = HighBimodal();
  ClusterConfig c = FastConfig(0.5, w);
  ClusterEngine engine(w, c, std::make_unique<StaticPartitionPolicy>());
  engine.Run();
  EXPECT_GT(engine.metrics().TypeCount(1), 0u);
  EXPECT_GT(engine.metrics().TypeCount(2), 0u);
}

TEST(PolicyComparison, EdfCompletesEverything) {
  const WorkloadSpec w = TpccMix();
  ClusterConfig c = FastConfig(0.6, w);
  ClusterEngine engine(w, c,
                       std::make_unique<EarliestDeadlineFirstPolicy>(10.0));
  engine.Run();
  EXPECT_EQ(engine.metrics().TotalDrops(), 0u);
  EXPECT_GT(engine.metrics().TotalCount(), 0u);
}

// --- DARC specifics in the full pipeline ---------------------------------------

TEST(DarcInPipeline, ShortTailLatencyStaysNearServiceTime) {
  const WorkloadSpec w = HighBimodal();
  ClusterConfig c = FastConfig(0.8, w);
  ClusterEngine engine(w, c,
                       std::make_unique<PersephonePolicy>(DarcOptions()));
  engine.Run();
  // Shorts are protected: p99.9 latency within tens of µs (c-FCFS would show
  // ~100 µs+ because shorts queue behind 100 µs longs).
  EXPECT_LT(engine.metrics().TypeLatency(1, 99.9), FromMicros(60));
}

TEST(DarcInPipeline, BootstrapsFromProfilingWithoutSeeds) {
  const WorkloadSpec w = HighBimodal();
  ClusterConfig c = FastConfig(0.6, w);
  c.duration = 400 * kMillisecond;
  PersephoneOptions options = DarcOptions();
  options.seed_profiles = false;
  options.scheduler.profiler.min_window_samples = 5000;
  auto policy = std::make_unique<PersephonePolicy>(options);
  PersephonePolicy* policy_ptr = policy.get();
  ClusterEngine engine(w, c, std::move(policy));
  engine.Run();
  EXPECT_TRUE(policy_ptr->scheduler().darc_active());
  EXPECT_GE(policy_ptr->scheduler().reservation_updates(), 1u);
  // The profiled reservation matches the seeded one: 1 core for shorts.
  EXPECT_EQ(policy_ptr->scheduler().reserved_workers_of(
                policy_ptr->scheduler().ResolveType(1)),
            1u);
}

TEST(DarcInPipeline, RandomClassifierConvergesToCFcfs) {
  const WorkloadSpec w = HighBimodal();
  ClusterConfig c = FastConfig(0.6, w, 8);
  PersephoneOptions random_options = DarcOptions();
  random_options.random_classifier = true;
  const double random_slowdown = RunOverallSlowdown(
      w, c, std::make_unique<PersephonePolicy>(random_options));
  const double cfcfs =
      RunOverallSlowdown(w, c, std::make_unique<CentralFcfsPolicy>());
  // §5.6: "DARC-random and c-FCFS exhibit similar behaviors" — same order of
  // magnitude, far from DARC's protected slowdown.
  const double darc = RunOverallSlowdown(
      w, c, std::make_unique<PersephonePolicy>(DarcOptions()));
  EXPECT_GT(random_slowdown, darc);
  EXPECT_LT(random_slowdown, cfcfs * 5 + 10);
  EXPECT_GT(random_slowdown * 5, cfcfs);
}

TEST(DarcInPipeline, AdaptsAcrossPhaseChange) {
  // Two-phase workload: B short then B long. The profiler must re-reserve.
  WorkloadSpec w;
  w.name = "flip";
  w.phases.push_back(WorkloadPhase{
      200 * kMillisecond,
      {WorkloadType{1, "A", 100.0, 0.5}, WorkloadType{2, "B", 1.0, 0.5}},
      1.0});
  w.phases.push_back(WorkloadPhase{
      0,
      {WorkloadType{1, "A", 1.0, 0.5}, WorkloadType{2, "B", 100.0, 0.5}},
      1.0});
  ClusterConfig c;
  c.num_workers = 14;
  c.rate_rps = 0.7 * 14e9 / 50500.0;
  c.duration = 500 * kMillisecond;
  c.net_one_way = 0;
  c.dispatch_cost = 0;
  c.completion_cost = 0;
  PersephoneOptions options = DarcOptions();
  options.seed_profiles = false;
  options.scheduler.profiler.min_window_samples = 5000;
  auto policy = std::make_unique<PersephonePolicy>(options);
  PersephonePolicy* policy_ptr = policy.get();
  ClusterEngine engine(w, c, std::move(policy));
  engine.Run();
  const auto& s = policy_ptr->scheduler();
  // After the flip, A (now short) holds few cores, B (now long) holds many.
  EXPECT_LE(s.reserved_workers_of(s.ResolveType(1)), 3u);
  EXPECT_GE(s.reserved_workers_of(s.ResolveType(2)), 11u);
  EXPECT_GE(s.reservation_updates(), 2u);
}

}  // namespace
}  // namespace psp
