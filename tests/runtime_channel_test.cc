// Worker-channel and spin-work tests for the threaded runtime.
#include "src/runtime/channel.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/runtime/spin_work.h"

namespace psp {
namespace {

TEST(WorkerChannel, OrderRoundTrip) {
  WorkerChannel channel(8);
  WorkOrder in;
  in.request_id = 42;
  in.type = 3;
  in.arrival = 1000;
  in.payload_length = 64;
  EXPECT_TRUE(channel.PushOrder(in));
  WorkOrder out;
  ASSERT_TRUE(channel.PopOrder(&out));
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.type, 3u);
  EXPECT_EQ(out.arrival, 1000);
  EXPECT_EQ(out.payload_length, 64u);
  EXPECT_FALSE(channel.PopOrder(&out));
}

TEST(WorkerChannel, CompletionRoundTrip) {
  WorkerChannel channel(8);
  CompletionSignal in{7, 2, /*arrival=*/100, 12345};
  EXPECT_TRUE(channel.PushCompletion(in));
  CompletionSignal out;
  ASSERT_TRUE(channel.PopCompletion(&out));
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_EQ(out.type, 2u);
  EXPECT_EQ(out.service_time, 12345);
}

TEST(WorkerChannel, DirectionsAreIndependent) {
  WorkerChannel channel(4);
  // Fill the order direction completely.
  WorkOrder order;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(channel.PushOrder(order));
  }
  EXPECT_FALSE(channel.PushOrder(order));
  // Completions still flow.
  EXPECT_TRUE(channel.PushCompletion(CompletionSignal{}));
}

TEST(WorkerChannel, CrossThreadPingPong) {
  WorkerChannel channel(16);
  constexpr uint64_t kRounds = 20000;
  std::thread worker([&] {
    for (uint64_t i = 0; i < kRounds; ++i) {
      WorkOrder order;
      while (!channel.PopOrder(&order)) {
        std::this_thread::yield();
      }
      CompletionSignal signal{order.request_id, order.type, order.arrival,
                              static_cast<Nanos>(order.request_id * 2)};
      while (!channel.PushCompletion(signal)) {
        std::this_thread::yield();
      }
    }
  });
  for (uint64_t i = 0; i < kRounds; ++i) {
    WorkOrder order;
    order.request_id = i;
    order.type = static_cast<TypeIndex>(i & 3);
    while (!channel.PushOrder(order)) {
      std::this_thread::yield();
    }
    CompletionSignal signal;
    while (!channel.PopCompletion(&signal)) {
      std::this_thread::yield();
    }
    ASSERT_EQ(signal.request_id, i);
    ASSERT_EQ(signal.service_time, static_cast<Nanos>(i * 2));
  }
  worker.join();
}

TEST(SpinWork, SpinForApproximatesDuration) {
  const TscClock& clock = TscClock::Global();
  const Nanos start = clock.Now();
  SpinFor(FromMicros(500));
  const Nanos elapsed = clock.Now() - start;
  EXPECT_GE(elapsed, FromMicros(490));
  // Upper bound is loose: the thread may get descheduled on busy machines.
  EXPECT_LT(elapsed, FromMicros(500) + 100 * kMillisecond);
}

TEST(SpinWork, ChurnForMakesProgressAndReturnsValue) {
  const uint64_t v = ChurnFor(FromMicros(100));
  EXPECT_NE(v, 0u);
}

}  // namespace
}  // namespace psp
