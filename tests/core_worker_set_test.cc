// WorkerSet bitset tests, including the cross-word paths Algorithm 1 relies
// on for systems with more than 64 workers.
#include "src/core/worker_set.h"

#include <gtest/gtest.h>

namespace psp {
namespace {

TEST(WorkerSet, SetTestClear) {
  WorkerSet s;
  EXPECT_FALSE(s.Test(5));
  s.Set(5);
  EXPECT_TRUE(s.Test(5));
  s.Clear(5);
  EXPECT_FALSE(s.Test(5));
}

TEST(WorkerSet, EmptyAndCount) {
  WorkerSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  s.SetRange(3, 9);
  EXPECT_FALSE(s.Empty());
  EXPECT_EQ(s.Count(), 6u);
}

TEST(WorkerSet, FirstReturnsLowest) {
  WorkerSet s;
  EXPECT_EQ(s.First(), kInvalidWorker);
  s.Set(42);
  s.Set(7);
  s.Set(199);
  EXPECT_EQ(s.First(), 7u);
}

TEST(WorkerSet, FirstCommonAcrossWords) {
  WorkerSet a;
  WorkerSet b;
  a.Set(10);
  a.Set(70);   // second word
  a.Set(130);  // third word
  b.Set(70);
  b.Set(130);
  EXPECT_EQ(a.FirstCommon(b), 70u);
  b.Clear(70);
  EXPECT_EQ(a.FirstCommon(b), 130u);
  b.Clear(130);
  EXPECT_EQ(a.FirstCommon(b), kInvalidWorker);
}

TEST(WorkerSet, UnionAndIntersect) {
  WorkerSet a;
  WorkerSet b;
  a.SetRange(0, 4);
  b.SetRange(2, 6);
  EXPECT_EQ(a.Union(b).Count(), 6u);
  EXPECT_EQ(a.Intersect(b).Count(), 2u);
  EXPECT_TRUE(a.Intersect(b).Test(2));
  EXPECT_TRUE(a.Intersect(b).Test(3));
}

TEST(WorkerSet, HighestWorkerId) {
  WorkerSet s;
  s.Set(kMaxWorkers - 1);
  EXPECT_TRUE(s.Test(kMaxWorkers - 1));
  EXPECT_EQ(s.First(), kMaxWorkers - 1);
  EXPECT_EQ(s.Count(), 1u);
}

TEST(WorkerSet, ClearAll) {
  WorkerSet s;
  s.SetRange(0, 100);
  s.ClearAll();
  EXPECT_TRUE(s.Empty());
}

// Range ops are word-at-a-time with edge masks: cross-check against the
// per-bit reference over boundaries that exercise every mask path.
TEST(WorkerSet, SetRangeMatchesPerBitReference) {
  const struct {
    WorkerId begin;
    WorkerId end;
  } kRanges[] = {
      {0, 0},     // empty
      {5, 5},     // empty, non-zero begin
      {0, 1},     // single bit, word edge
      {63, 64},   // last bit of word 0
      {64, 65},   // first bit of word 1
      {3, 61},    // inside one word
      {60, 70},   // spans one boundary, no full word
      {10, 200},  // spans full interior words
      {0, kMaxWorkers},  // everything
      {kMaxWorkers - 1, kMaxWorkers},
  };
  for (const auto& r : kRanges) {
    WorkerSet fast;
    fast.SetRange(r.begin, r.end);
    WorkerSet slow;
    for (WorkerId i = r.begin; i < r.end; ++i) {
      slow.Set(i);
    }
    EXPECT_TRUE(fast == slow) << "SetRange(" << r.begin << ", " << r.end
                              << ")";
  }
}

TEST(WorkerSet, ClearRangeMatchesPerBitReference) {
  const struct {
    WorkerId begin;
    WorkerId end;
  } kRanges[] = {
      {0, 0},    {5, 5},   {0, 1},    {63, 64},
      {64, 65},  {3, 61},  {60, 70},  {10, 200},
      {0, kMaxWorkers},    {kMaxWorkers - 1, kMaxWorkers},
  };
  for (const auto& r : kRanges) {
    WorkerSet fast;
    fast.SetRange(0, kMaxWorkers);
    fast.ClearRange(r.begin, r.end);
    WorkerSet slow;
    slow.SetRange(0, kMaxWorkers);
    for (WorkerId i = r.begin; i < r.end; ++i) {
      slow.Clear(i);
    }
    EXPECT_TRUE(fast == slow) << "ClearRange(" << r.begin << ", " << r.end
                              << ")";
    EXPECT_EQ(fast.Count(), kMaxWorkers - (r.end - r.begin));
  }
}

TEST(WorkerSet, ClearRangeLeavesNeighborsAlone) {
  WorkerSet s;
  s.Set(59);
  s.SetRange(60, 70);
  s.Set(70);
  s.ClearRange(60, 70);
  EXPECT_TRUE(s.Test(59));
  EXPECT_TRUE(s.Test(70));
  EXPECT_EQ(s.Count(), 2u);
}

TEST(WorkerSet, Equality) {
  WorkerSet a;
  WorkerSet b;
  a.Set(9);
  EXPECT_FALSE(a == b);
  b.Set(9);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace psp
