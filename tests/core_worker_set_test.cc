// WorkerSet bitset tests, including the cross-word paths Algorithm 1 relies
// on for systems with more than 64 workers.
#include "src/core/worker_set.h"

#include <gtest/gtest.h>

namespace psp {
namespace {

TEST(WorkerSet, SetTestClear) {
  WorkerSet s;
  EXPECT_FALSE(s.Test(5));
  s.Set(5);
  EXPECT_TRUE(s.Test(5));
  s.Clear(5);
  EXPECT_FALSE(s.Test(5));
}

TEST(WorkerSet, EmptyAndCount) {
  WorkerSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  s.SetRange(3, 9);
  EXPECT_FALSE(s.Empty());
  EXPECT_EQ(s.Count(), 6u);
}

TEST(WorkerSet, FirstReturnsLowest) {
  WorkerSet s;
  EXPECT_EQ(s.First(), kInvalidWorker);
  s.Set(42);
  s.Set(7);
  s.Set(199);
  EXPECT_EQ(s.First(), 7u);
}

TEST(WorkerSet, FirstCommonAcrossWords) {
  WorkerSet a;
  WorkerSet b;
  a.Set(10);
  a.Set(70);   // second word
  a.Set(130);  // third word
  b.Set(70);
  b.Set(130);
  EXPECT_EQ(a.FirstCommon(b), 70u);
  b.Clear(70);
  EXPECT_EQ(a.FirstCommon(b), 130u);
  b.Clear(130);
  EXPECT_EQ(a.FirstCommon(b), kInvalidWorker);
}

TEST(WorkerSet, UnionAndIntersect) {
  WorkerSet a;
  WorkerSet b;
  a.SetRange(0, 4);
  b.SetRange(2, 6);
  EXPECT_EQ(a.Union(b).Count(), 6u);
  EXPECT_EQ(a.Intersect(b).Count(), 2u);
  EXPECT_TRUE(a.Intersect(b).Test(2));
  EXPECT_TRUE(a.Intersect(b).Test(3));
}

TEST(WorkerSet, HighestWorkerId) {
  WorkerSet s;
  s.Set(kMaxWorkers - 1);
  EXPECT_TRUE(s.Test(kMaxWorkers - 1));
  EXPECT_EQ(s.First(), kMaxWorkers - 1);
  EXPECT_EQ(s.Count(), 1u);
}

TEST(WorkerSet, ClearAll) {
  WorkerSet s;
  s.SetRange(0, 100);
  s.ClearAll();
  EXPECT_TRUE(s.Empty());
}

TEST(WorkerSet, Equality) {
  WorkerSet a;
  WorkerSet b;
  a.Set(9);
  EXPECT_FALSE(a == b);
  b.Set(9);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace psp
